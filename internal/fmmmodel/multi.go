package fmmmodel

import (
	"sfcacd/internal/acd"
	"sfcacd/internal/keynav"
	"sfcacd/internal/obs"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/topology"
)

// This file provides multi-topology evaluation. The communication
// event stream of an assignment does not depend on the network, so the
// paper's 4x4 SFC-combination tables (one particle order against four
// processor orders) can share a single traversal per particle order.
// The traversal aggregates the stream into a topology-independent
// communication matrix (internal/commmat); evaluating each topology is
// then a contraction — one distance lookup per distinct rank pair
// instead of one interface call per event — turning the sweep from
// O(events x topologies) into O(events + distinctPairs x topologies).
// The single-topology NFI/FFI paths stay on the direct per-event
// accumulation and serve as the differential-testing oracle.

// NFIMulti computes the near-field accumulator of the assignment under
// each of the given topologies from one shared communication matrix.
// The results are identical (exact Sum/Count/Zeros) to running NFI per
// topology.
func NFIMulti(a *acd.Assignment, topos []topology.Topology, opts NFIOptions) []acd.Accumulator {
	defer obs.StartSpan("accumulation.nfi").End()
	opts.normalize()
	m := NFIMatrix(a, opts)
	total := contractAll(m, topos, opts.Workers)
	for t := range total {
		total[t].Record()
	}
	return total
}

// FFIMulti computes the far-field breakdown of the assignment under
// each of the given topologies, sharing one aggregation of the
// interaction structure. opts.Engine picks the structure: the dense
// representative quadtree (built and released here) or the
// assignment's key-space occupancy index.
func FFIMulti(a *acd.Assignment, topos []topology.Topology, opts FFIOptions) []FFIResult {
	opts.Engine = resolveEngine(opts.Engine, a.Order)
	if opts.Engine == keynav.EngineKeys {
		defer obs.StartSpan("accumulation.ffi").End()
		if opts.Workers <= 0 {
			opts.Workers = defaultWorkers()
		}
		if len(topos) == 0 {
			return nil
		}
		ms := FFIMatricesFromIndex(a.KeyIndex(), topos[0].P(), opts.Workers)
		return ms.ContractAll(topos, opts.Workers)
	}
	tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	defer tree.Release()
	return FFIMultiFromTree(tree, topos, opts)
}

// FFIMultiFromTree is FFIMulti over a prebuilt representative tree. The
// far-field matrices are kept separate per communication type, so the
// per-type breakdown of FFIResult matches the direct FFIFromTree path
// exactly; the anterpolation accumulator reuses the interpolation
// contraction because hop distance is symmetric.
func FFIMultiFromTree(tree *quadtree.RankTree, topos []topology.Topology, opts FFIOptions) []FFIResult {
	defer obs.StartSpan("accumulation.ffi").End()
	if opts.Workers <= 0 {
		opts.Workers = defaultWorkers()
	}
	if len(topos) == 0 {
		return make([]FFIResult, 0)
	}
	ms := FFIMatricesFromTree(tree, topos[0].P(), opts.Workers)
	return ms.ContractAll(topos, opts.Workers)
}

// ContractAll contracts the far-field matrices against every topology
// in one fused pass per matrix, through the cached per-topology
// distance tables. Parallelism lives inside each matrix and is bounded
// by workers (the old per-topology goroutine fan-out ignored the cap);
// results are byte-identical to per-topology ContractTable loops at
// any worker count. The anterpolation accumulator reuses the
// interpolation contraction because hop distance is symmetric.
func (ms FFIMatrices) ContractAll(topos []topology.Topology, workers int) []FFIResult {
	res := make([]FFIResult, len(topos))
	if len(topos) == 0 {
		return res
	}
	span := obs.StartSpan("commmat.contract")
	dts := make([]*topology.DistanceTable, len(topos))
	interp := make([]*acd.Accumulator, len(topos))
	il := make([]*acd.Accumulator, len(topos))
	for t, topo := range topos {
		dts[t] = distanceTableFor(topo)
		interp[t] = &res[t].Interpolation
		il[t] = &res[t].InteractionList
	}
	ms.Interpolation.ContractTableMulti(dts, interp, workers)
	ms.InteractionList.ContractTableMultiSym(dts, il, workers)
	for t := range res {
		res[t].Anterpolation = res[t].Interpolation
	}
	span.End()
	for t := range res {
		res[t].recordMatrixPath()
	}
	return res
}
