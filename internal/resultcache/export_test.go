package resultcache

import (
	"bytes"
	"encoding/json"
	"testing"
)

func wireTestEntry() Entry {
	k := KeyFor("table12", "params/v1:n=400", "sfcacd/results/v1")
	return Entry{
		Key:        k,
		Experiment: "table12",
		Params:     json.RawMessage(`{"Particles":400}`),
		Result:     json.RawMessage(`[{"acd":1.5}]`),
		Manifest:   json.RawMessage(`{"schema":"sfcacd/run-manifest/v1"}`),
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	e := wireTestEntry()
	data, err := Export(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Import(data, e.Key)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if got.Key != e.Key || got.Experiment != e.Experiment ||
		!bytes.Equal(got.Params, e.Params) || !bytes.Equal(got.Result, e.Result) ||
		!bytes.Equal(got.Manifest, e.Manifest) {
		t.Errorf("round trip changed the entry:\n got %+v\nwant %+v", got, e)
	}
}

// TestImportRejectsCorruption flips every byte of the wire form in
// turn; no corruption may import successfully (JSON that fails to
// parse and JSON that parses to a different payload are both caught).
func TestImportRejectsCorruption(t *testing.T) {
	e := wireTestEntry()
	data, err := Export(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := Import(mut, e.Key); err == nil {
			t.Fatalf("corruption at byte %d imported cleanly: %s", i, mut)
		}
	}
}

func TestImportRejectsWrongKey(t *testing.T) {
	e := wireTestEntry()
	data, err := Export(e)
	if err != nil {
		t.Fatal(err)
	}
	other := KeyFor("fig6", "params/v1:n=400", "sfcacd/results/v1")
	if _, err := Import(data, other); err == nil {
		t.Error("entry imported under a key it does not answer")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	k := KeyFor("a", "b", "c")
	got, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Errorf("ParseKey(%q) = %v", k.String(), got)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Error("bad hex parsed")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Error("short key parsed")
	}
}
