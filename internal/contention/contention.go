// Package contention extends the contention-unaware ACD metric toward
// the paper's first future-work item: modeling network contention. It
// routes every communication event over physical links using
// dimension-ordered (XY) routing on a mesh or torus and reports
// per-link load statistics — the maximum link load bounds the
// serialized communication time under uniform message sizes, while the
// ACD only captures the total distance traveled.
package contention

import (
	"sfcacd/internal/geom"
	"sfcacd/internal/topology"
)

// GridTopology is the subset of mesh/torus behaviour the router needs.
type GridTopology interface {
	topology.Topology
	Coord(rank int) geom.Point
	Side() uint32
}

// direction indices for the four outgoing links of a node.
const (
	dirXPlus = iota
	dirXMinus
	dirYPlus
	dirYMinus
	numDirs
)

// Tracker accumulates per-link loads of routed messages.
type Tracker struct {
	topo  GridTopology
	wrap  bool
	side  int
	loads []uint32 // node*numDirs + dir
	// Messages is the number of routed messages (including zero-hop).
	Messages uint64
	// Hops is the total number of link traversals.
	Hops uint64
}

// NewTracker returns a tracker for the given mesh or torus. Wraparound
// routing is enabled iff the topology is a torus.
func NewTracker(topo GridTopology) *Tracker {
	side := int(topo.Side())
	return &Tracker{
		topo:  topo,
		wrap:  topo.Name() == "torus",
		side:  side,
		loads: make([]uint32, side*side*numDirs),
	}
}

// linkIndex identifies the outgoing link of the node at (x, y) in
// direction dir.
func (t *Tracker) linkIndex(x, y, dir int) int {
	return (y*t.side+x)*numDirs + dir
}

// step moves one hop from (x, y) toward target coordinate tc along the
// given axis, recording the link, and returns the new coordinate.
func (t *Tracker) stepAxis(x, y, cur, tc int, xAxis bool) int {
	delta := tc - cur
	forward := delta > 0
	if t.wrap {
		// Choose the shorter way around.
		d := delta
		if d < 0 {
			d = -d
		}
		if wrapD := t.side - d; wrapD < d {
			forward = !forward
		}
	}
	var dir int
	var next int
	if forward {
		next = cur + 1
		if xAxis {
			dir = dirXPlus
		} else {
			dir = dirYPlus
		}
	} else {
		next = cur - 1
		if xAxis {
			dir = dirXMinus
		} else {
			dir = dirYMinus
		}
	}
	if t.wrap {
		next = (next + t.side) % t.side
	}
	t.loads[t.linkIndex(x, y, dir)]++
	t.Hops++
	return next
}

// Route sends one message from src to dst using XY dimension-ordered
// routing (X first, then Y), updating link loads.
func (t *Tracker) Route(src, dst int32) {
	t.Messages++
	if src == dst {
		return
	}
	a := t.topo.Coord(int(src))
	b := t.topo.Coord(int(dst))
	x, y := int(a.X), int(a.Y)
	for x != int(b.X) {
		x = t.stepAxis(x, y, x, int(b.X), true)
	}
	for y != int(b.Y) {
		y = t.stepAxis(x, y, y, int(b.Y), false)
	}
}

// Stats summarizes the link load distribution.
type Stats struct {
	// Messages is the number of routed messages.
	Messages uint64
	// Hops is the total link traversals (equals the ACD numerator under
	// minimal routing).
	Hops uint64
	// MaxLinkLoad is the load of the most congested link.
	MaxLinkLoad uint32
	// MeanLinkLoad is the average load over links that carried traffic.
	MeanLinkLoad float64
	// UsedLinks is the number of links that carried any traffic.
	UsedLinks int
}

// Stats returns the current load summary.
func (t *Tracker) Stats() Stats {
	s := Stats{Messages: t.Messages, Hops: t.Hops}
	var sum uint64
	for _, l := range t.loads {
		if l == 0 {
			continue
		}
		s.UsedLinks++
		sum += uint64(l)
		if l > s.MaxLinkLoad {
			s.MaxLinkLoad = l
		}
	}
	if s.UsedLinks > 0 {
		s.MeanLinkLoad = float64(sum) / float64(s.UsedLinks)
	}
	return s
}
