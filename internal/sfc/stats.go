package sfc

import "sfcacd/internal/obs"

// Encode/decode call-volume counters, one pair per curve plus
// package-wide rollups ("sfc.encode", "sfc.decode"). Counts are method
// invocations: a curve that delegates to another (Moore composes
// rotated Hilbert sub-curves) ticks both curves' counters, which is
// the truthful cost accounting — the delegate's work really runs.
//
// The hot path pays exactly one atomic add per call, on the per-curve
// counter; the rollups are derived by a snapshot hook that folds the
// per-curve deltas in whenever the registry is read. The hint routes
// concurrent callers (the anns full-grid scans) onto different counter
// stripes; single-goroutine callers land on one uncontended stripe
// (~a few ns against tens of ns per encode).
type curveStats struct {
	encode, decode *obs.Counter
}

var (
	encodeTotal = obs.GetCounter("sfc.encode")
	decodeTotal = obs.GetCounter("sfc.decode")
	// allStats collects every curveStats ever minted so the snapshot
	// hook can sum them. Populated only from package init.
	allStats []curveStats
)

func newCurveStats(name string) curveStats {
	s := curveStats{
		encode: obs.GetCounter("sfc.encode." + name),
		decode: obs.GetCounter("sfc.decode." + name),
	}
	allStats = append(allStats, s)
	return s
}

func (s curveStats) countEncode(hint int) { s.encode.IncAt(hint) }
func (s curveStats) countDecode(hint int) { s.decode.IncAt(hint) }

func init() {
	// Fold per-curve counts into the rollups on every registry read.
	// Tracking the last published sums keeps repeated snapshots exact;
	// when the sums shrink the registry was Reset (which zeroed the
	// rollups too), so republishing restarts from zero.
	var lastEnc, lastDec uint64
	obs.Default().OnSnapshot(func() {
		var enc, dec uint64
		for _, s := range allStats {
			enc += s.encode.Value()
			dec += s.decode.Value()
		}
		if enc < lastEnc || dec < lastDec {
			lastEnc, lastDec = 0, 0
		}
		encodeTotal.Add(enc - lastEnc)
		decodeTotal.Add(dec - lastDec)
		lastEnc, lastDec = enc, dec
	})
}

var (
	hilbertStats  = newCurveStats("hilbert")
	mortonStats   = newCurveStats("morton")
	grayStats     = newCurveStats("gray")
	rowMajorStats = newCurveStats("rowmajor")
	snakeStats    = newCurveStats("snake")
	mooreStats    = newCurveStats("moore")
	// The n-dimensional generalizations share one pair: their names
	// embed the dimension (hilbert3d, morton4d, ...), which would
	// mint unbounded metric names.
	ndStats = newCurveStats("nd")
)
