package acd

import (
	"testing"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

// setDenseLimit overrides the dense/sparse cutover for the duration of
// a test, restoring it on cleanup. Tests normally run at orders small
// enough that only the dense path is exercised; forcing the limit to
// zero routes the same assignment through the sparse map.
func setDenseLimit(t testing.TB, v uint64) {
	t.Helper()
	old := denseLimit
	denseLimit = v
	t.Cleanup(func() { denseLimit = old })
}

// TestRankTableDenseSparseEquality runs the same assignment through
// both rank-table representations and requires identical answers on
// every cell of the grid.
func TestRankTableDenseSparseEquality(t *testing.T) {
	const order, n, p = 6, 500, 16
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(3), order, n)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Assign(pts, sfc.Hilbert, order, p)
	if err != nil {
		t.Fatal(err)
	}
	// The table is lazy, so force the dense build before lowering the
	// cutover.
	dense.RankAt(pts[0])
	setDenseLimit(t, 0)
	sparse, err := Assign(pts, sfc.Hilbert, order, p)
	if err != nil {
		t.Fatal(err)
	}
	side := geom.Side(order)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			q := geom.Pt(x, y)
			d, s := dense.RankAt(q), sparse.RankAt(q)
			if d != s {
				t.Fatalf("RankAt%v: dense %d != sparse %d", q, d, s)
			}
		}
	}
	if dense.denseRank == nil {
		t.Fatal("dense assignment did not take the dense path")
	}
	if sparse.sparseRank == nil {
		t.Fatal("sparse assignment did not take the sparse path")
	}
}

// TestRankTableLazyBuild pins the lazy protocol: Assign leaves the
// table unbuilt, the first RankAt builds it, and Release retires the
// assignment (every cell reads empty, no rebuild).
func TestRankTableLazyBuild(t *testing.T) {
	const order, n, p = 5, 100, 8
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(5), order, n)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(pts, sfc.Morton, order, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.tableReady.Load() {
		t.Fatal("Assign built the rank table eagerly")
	}
	if got := a.RankAt(a.Particles[0]); got != a.Ranks[0] {
		t.Fatalf("first RankAt = %d, want %d", got, a.Ranks[0])
	}
	if !a.tableReady.Load() {
		t.Fatal("RankAt did not build the rank table")
	}
	if a.KeyIndex() == nil {
		t.Fatal("KeyIndex returned nil on a live assignment")
	}
	a.Release()
	if got := a.RankAt(a.Particles[0]); got != -1 {
		t.Fatalf("RankAt after Release = %d, want -1", got)
	}
	if a.KeyIndex() != nil {
		t.Fatal("KeyIndex rebuilt after Release")
	}
}

// TestFromOwnersEagerTable pins that the explicit-ownership
// constructor still detects duplicates (it probes the table while
// filling, so the table must be eager).
func TestFromOwnersEagerTable(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(1, 1)}
	if _, err := FromOwners(pts, []int32{0, 1, 0}, 4, 2); err == nil {
		t.Fatal("FromOwners accepted a duplicate cell")
	}
	a, err := FromOwners(pts[:2], []int32{0, 1}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.tableReady.Load() {
		t.Fatal("FromOwners left the table lazy")
	}
	if got := a.RankAt(geom.Pt(2, 2)); got != 1 {
		t.Fatalf("RankAt = %d, want 1", got)
	}
}

// BenchmarkRankAt measures the per-probe cost of the two rank-table
// representations; BenchmarkKeyNavLookup in internal/keynav is the
// key-search figure these compare against. The probe pattern matches
// the near-field inner loop: a particle's immediate neighbor cell.
func BenchmarkRankAt(b *testing.B) {
	const order, n, p = 8, 15625, 64
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(1), order, n)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		limit uint64
	}{{"dense", uint64(1) << 24}, {"sparse", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			setDenseLimit(b, mode.limit)
			a, err := Assign(pts, sfc.Hilbert, order, p)
			if err != nil {
				b.Fatal(err)
			}
			a.RankAt(pts[0]) // build the table outside the loop
			b.ResetTimer()
			hits := 0
			for i := 0; i < b.N; i++ {
				q := a.Particles[i%n]
				if a.RankAt(geom.Pt(q.X^1, q.Y)) >= 0 {
					hits++
				}
			}
			_ = hits
		})
	}
}

// BenchmarkAssign isolates construction cost now that the table is
// lazy: the "untouched" case never probes, the "probed" case pays one
// table build.
func BenchmarkAssign(b *testing.B) {
	const order, n, p = 8, 15625, 64
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(1), order, n)
	if err != nil {
		b.Fatal(err)
	}
	for _, probe := range []bool{false, true} {
		name := "untouched"
		if probe {
			name = "probed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := Assign(pts, sfc.Hilbert, order, p)
				if err != nil {
					b.Fatal(err)
				}
				if probe {
					a.RankAt(pts[0])
				}
				a.Release()
			}
		})
	}
}
