package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is one request-scoped span tree. Unlike the process-wide
// default tracer (whose merged tree feeds run manifests), every trace
// owns a private Tracer, so concurrent requests never share cursors
// and a request's phases — cache lookup, queue wait, compute, the
// sweep cells under it — attribute to exactly one trace.
//
// The wiring is Span.Attach: the HTTP layer attaches the handler
// goroutine to the trace's root span, the serving layer attaches the
// compute goroutine, and sweep workers attach to the sweep span they
// are handed — from there, every package-level StartSpan call made on
// those goroutines lands in this trace (see StartSpan). Library code
// needs no knowledge of traces.
//
// All methods are safe on a nil *Trace (they no-op or return zero
// values), so instrumented code can call them unconditionally.
type Trace struct {
	id    string
	name  string
	start time.Time

	tracer *Tracer
	root   *Span

	mu       sync.Mutex
	attrs    map[string]string
	status   int
	finished bool
	duration time.Duration
}

// NewTrace returns a live trace rooted at a span named "request".
// The id is caller-provided (honored from an X-Trace-Id header or
// drawn from a deterministic source); start stamps the trace's origin
// under whatever clock the caller uses.
func NewTrace(id, name string, start time.Time) *Trace {
	t := NewTracer()
	tr := &Trace{id: id, name: name, start: start, tracer: t}
	tr.root = t.Start("request")
	return tr
}

// ID returns the trace id.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Name returns the request name the trace was created with
// (conventionally "METHOD /path").
func (tr *Trace) Name() string {
	if tr == nil {
		return ""
	}
	return tr.name
}

// StartTime returns the trace's origin timestamp.
func (tr *Trace) StartTime() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// Root returns the root span, the attachment point for goroutines
// that work on this request. Nil for a nil trace (Attach on a nil
// span would panic; callers guard with `if tr != nil`).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// StartSpan opens a phase on the trace's tracer, nesting under the
// calling goroutine's attached cursor when one exists. On a nil trace
// it returns a nil span, whose End/Annotate are no-ops.
func (tr *Trace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return tr.tracer.Start(name)
}

// Annotate sets a trace-level key=value attribute (cache status,
// error class, coalesce fan-in, ...). Last write per key wins.
func (tr *Trace) Annotate(key, value string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.attrs == nil {
		tr.attrs = make(map[string]string)
	}
	tr.attrs[key] = value
}

// Attrs returns a copy of the trace-level attributes.
func (tr *Trace) Attrs() map[string]string {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.attrs) == 0 {
		return nil
	}
	out := make(map[string]string, len(tr.attrs))
	for k, v := range tr.attrs {
		out[k] = v
	}
	return out
}

// Finish ends the root span and freezes the trace's status and
// duration (now minus the start time). Spans opened by goroutines
// that outlive the request — a detached computation whose waiter
// timed out — may still End after Finish; they keep folding into the
// tree and show up when the trace is next rendered. Finish is
// idempotent: the first call wins.
func (tr *Trace) Finish(status int, now time.Time) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if !tr.finished {
		tr.finished = true
		tr.status = status
		tr.duration = now.Sub(tr.start)
	}
	tr.mu.Unlock()
	tr.root.End()
}

// Finished reports whether Finish ran, and if so the status and
// duration it recorded.
func (tr *Trace) Finished() (status int, d time.Duration, ok bool) {
	if tr == nil {
		return 0, 0, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.status, tr.duration, tr.finished
}

// TraceSnapshot is the JSON rendering of one trace.
type TraceSnapshot struct {
	// ID is the trace id (the X-Trace-Id of the request).
	ID string `json:"id"`
	// Name is the request name ("METHOD /path").
	Name string `json:"name"`
	// Start is the trace origin in RFC 3339 with nanoseconds.
	Start string `json:"start"`
	// Status is the HTTP status recorded at Finish (0 while live).
	Status int `json:"status,omitempty"`
	// DurationNs is the frozen request duration, or time elapsed so
	// far for a trace still in flight.
	DurationNs int64 `json:"duration_ns"`
	// Complete is false while the request is still being served.
	Complete bool `json:"complete"`
	// Attrs are the trace-level annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Spans is the span tree; the single top-level node is "request".
	Spans []PhaseSnapshot `json:"spans,omitempty"`
}

// Snapshot renders the trace's current state; now supplies the elapsed
// time for traces that have not finished. Safe to call at any point —
// spans still open appear with their call counts and the durations of
// completed activations.
func (tr *Trace) Snapshot(now time.Time) TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	tr.mu.Lock()
	s := TraceSnapshot{
		ID:         tr.id,
		Name:       tr.name,
		Start:      tr.start.UTC().Format(time.RFC3339Nano),
		Status:     tr.status,
		Complete:   tr.finished,
		DurationNs: tr.duration.Nanoseconds(),
	}
	if !tr.finished {
		s.DurationNs = now.Sub(tr.start).Nanoseconds()
	}
	if len(tr.attrs) > 0 {
		s.Attrs = make(map[string]string, len(tr.attrs))
		for k, v := range tr.attrs {
			s.Attrs[k] = v
		}
	}
	tr.mu.Unlock()
	s.Spans = tr.tracer.Snapshot()
	return s
}

// traceCtxKey keys the active trace in a context.
type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying tr.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}
