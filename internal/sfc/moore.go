package sfc

import "sfcacd/internal/geom"

// mooreCurve is the Moore curve: the closed-loop variant of the
// Hilbert curve (its last cell is adjacent to its first). It is built
// from four rotated copies of H_{k-1} arranged in a ring — left column
// traversed upward, right column downward — and is an extension beyond
// the paper's four curves, useful for ring-like processor labelings
// where rank p-1 communicates with rank 0.
type mooreCurve struct{}

// Moore is the closed Hilbert loop extension curve.
var Moore Curve = mooreCurve{}

func (mooreCurve) Name() string { return "moore" }

// Quadrant visit order: lower-left, upper-left, upper-right,
// lower-right. The two left quadrants hold H_{k-1} rotated 90° CCW
// ((x,y) -> (s-1-y, x)), the two right quadrants rotated 90° CW
// ((x,y) -> (y, s-1-x)).

func (mooreCurve) Index(order uint, p geom.Point) uint64 {
	checkPoint(order, p)
	mooreStats.countEncode(int(p.X))
	if order == 0 {
		return 0
	}
	s := geom.Side(order - 1)
	cells := uint64(s) * uint64(s)
	x, y := p.X, p.Y
	var quadrant uint64
	switch {
	case x < s && y < s:
		quadrant = 0
	case x < s: // y >= s
		quadrant = 1
		y -= s
	case y >= s:
		quadrant = 2
		x -= s
		y -= s
	default:
		quadrant = 3
		x -= s
	}
	var hx, hy uint32
	if quadrant < 2 {
		// Invert the CCW rotation: (hx,hy) -> (s-1-hy, hx) = (x,y).
		hx, hy = y, s-1-x
	} else {
		// Invert the CW rotation: (hx,hy) -> (hy, s-1-hx) = (x,y).
		hx, hy = s-1-y, x
	}
	return quadrant*cells + Hilbert.Index(order-1, geom.Pt(hx, hy))
}

func (mooreCurve) Point(order uint, d uint64) geom.Point {
	checkIndex(order, d)
	mooreStats.countDecode(int(d))
	if order == 0 {
		return geom.Pt(0, 0)
	}
	s := geom.Side(order - 1)
	cells := uint64(s) * uint64(s)
	quadrant := d / cells
	h := Hilbert.Point(order-1, d%cells)
	var x, y uint32
	if quadrant < 2 {
		x, y = s-1-h.Y, h.X
	} else {
		x, y = h.Y, s-1-h.X
	}
	switch quadrant {
	case 1:
		y += s
	case 2:
		x += s
		y += s
	case 3:
		x += s
	}
	return geom.Pt(x, y)
}
