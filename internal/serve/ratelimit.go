package serve

import (
	"container/list"
	"sync"
	"time"

	"sfcacd/internal/obs"
)

// maxTrackedClients bounds the rate limiter's per-client state; when
// exceeded, the least-recently-seen client is forgotten (it restarts
// with a full bucket, which errs toward admitting).
const maxTrackedClients = 4096

// RateLimiter applies a token bucket per client: each client earns
// rate tokens per second up to burst, and a request (or batch cell)
// spends one. It layers in front of the admission queue — the queue
// protects the process from aggregate overload, the limiter keeps one
// client from monopolizing it.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	clients map[string]*list.Element
	ll      *list.List // front = most recently seen; values are *rlClient

	limited      *obs.Counter
	clientsGauge *obs.Gauge

	// now is swapped by tests for deterministic refill.
	now func() time.Time
}

// rlClient is one client's bucket.
type rlClient struct {
	id     string
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter of rate requests per second per
// client with the given burst (0 means twice the rate, at least 1).
// A rate <= 0 returns nil, the unlimited state — call sites treat a
// nil *RateLimiter as always allowing.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	return &RateLimiter{
		rate:         rate,
		burst:        b,
		clients:      make(map[string]*list.Element),
		ll:           list.New(),
		limited:      obs.GetCounter("serve.rate_limited"),
		clientsGauge: obs.GetGauge("serve.rate_clients"),
		now:          time.Now,
	}
}

// Allow spends n tokens from client's bucket. When the bucket holds
// fewer, nothing is spent and the returned Retry-After duration says
// when n tokens will have accrued. A nil limiter always allows.
func (l *RateLimiter) Allow(client string, n int) (bool, time.Duration) {
	if l == nil || n <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.client(client, now)
	c.tokens += now.Sub(c.last).Seconds() * l.rate
	if c.tokens > l.burst {
		c.tokens = l.burst
	}
	c.last = now
	if c.tokens >= float64(n) {
		c.tokens -= float64(n)
		return true, 0
	}
	l.limited.Inc()
	deficit := float64(n) - c.tokens
	return false, time.Duration(deficit / l.rate * float64(time.Second))
}

// client returns the bucket of id, creating it full and evicting the
// least-recently-seen client beyond the tracking bound.
func (l *RateLimiter) client(id string, now time.Time) *rlClient {
	if el, ok := l.clients[id]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*rlClient)
	}
	c := &rlClient{id: id, tokens: l.burst, last: now}
	l.clients[id] = l.ll.PushFront(c)
	for len(l.clients) > maxTrackedClients {
		oldest := l.ll.Back()
		delete(l.clients, oldest.Value.(*rlClient).id)
		l.ll.Remove(oldest)
	}
	l.clientsGauge.Set(float64(len(l.clients)))
	return c
}
