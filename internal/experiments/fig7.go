package experiments

import (
	"context"
	"fmt"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// Fig7Result holds the processor-count sweep of Figure 7 on a torus:
// ACD as a function of p, per curve (same curve for particle and
// processor order).
type Fig7Result struct {
	// ProcCounts are the swept processor counts (powers of 4).
	ProcCounts []int
	// Curves are the curve names.
	Curves []string
	// NFI[c][i] and FFI[c][i] are the ACD values of curve c at
	// ProcCounts[i].
	NFI [][]float64
	FFI [][]float64
}

// SeriesTables renders the two panels of Figure 7.
func (f Fig7Result) SeriesTables() (nfi, ffi *tablefmt.SeriesTable) {
	mk := func(title string, cells [][]float64) *tablefmt.SeriesTable {
		st := &tablefmt.SeriesTable{Title: title, XLabel: "processors"}
		for _, p := range f.ProcCounts {
			st.X = append(st.X, float64(p))
		}
		for c, name := range f.Curves {
			st.Series = append(st.Series, tablefmt.Series{Name: name, Y: cells[c]})
		}
		return st
	}
	return mk("Figure 7(a): NFI ACD vs processor count (torus)", f.NFI),
		mk("Figure 7(b): FFI ACD vs processor count (torus)", f.FFI)
}

// RunFig7 reproduces Figure 7: a fixed uniform input, the torus
// topology, and the processor count swept over 4^o for o in
// procOrders. The paper sweeps roughly 1,024 through 65,536 processors
// with 1,000,000 particles.
func RunFig7(ctx context.Context, p Params, procOrders []uint) (Fig7Result, error) {
	if err := p.Validate(); err != nil {
		return Fig7Result{}, err
	}
	if len(procOrders) == 0 {
		return Fig7Result{}, fmt.Errorf("experiments: no processor orders to sweep")
	}
	curves := sfc.All()
	res := Fig7Result{
		Curves: curveNames(curves),
		NFI:    zeroRect(len(curves), len(procOrders)),
		FFI:    zeroRect(len(curves), len(procOrders)),
	}
	for _, o := range procOrders {
		res.ProcCounts = append(res.ProcCounts, 1<<(2*o))
	}
	for trial := 0; trial < p.Trials; trial++ {
		pts, err := samplePoints(dist.Uniform, p, trial)
		if err != nil {
			return Fig7Result{}, err
		}
		for c, curve := range curves {
			for i, po := range procOrders {
				if err := ctx.Err(); err != nil {
					return Fig7Result{}, err
				}
				procs := 1 << (2 * po)
				a, err := acd.Assign(pts, curve, p.Order, procs)
				if err != nil {
					return Fig7Result{}, err
				}
				// Even with a single torus per step, the matrix path
				// pays off: the event stream collapses to its distinct
				// rank pairs before any distance is computed.
				topos := []topology.Topology{topology.NewTorus(po, curve)}
				nfi := fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{
					Radius: p.Radius, Metric: geom.MetricChebyshev, Workers: p.Workers,
				})
				tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
				ffi := fmmmodel.FFIMultiFromTree(tree, topos, fmmmodel.FFIOptions{Workers: p.Workers})
				res.NFI[c][i] += nfi[0].ACD()
				res.FFI[c][i] += ffi[0].Total().ACD()
			}
		}
	}
	scaleMatrix(res.NFI, 1/float64(p.Trials))
	scaleMatrix(res.FFI, 1/float64(p.Trials))
	return res, nil
}
