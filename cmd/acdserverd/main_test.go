package main

import (
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
)

// flushRecorder counts Flush calls behind the plain ResponseRecorder.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// TestStatusRecorderForwardsFlush pins the logging-wrapper bugfix:
// handlers behind logRequests must still see an http.Flusher when the
// underlying writer has one, and the flush must reach it.
func TestStatusRecorderForwardsFlush(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(discard{}, nil))
	var sawFlusher bool
	h := logRequests(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		sawFlusher = ok
		if ok {
			f.Flush()
		}
	}))

	under := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(under, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !sawFlusher {
		t.Fatal("handler behind logRequests did not see an http.Flusher")
	}
	if under.flushes != 1 {
		t.Errorf("underlying writer flushed %d times, want 1", under.flushes)
	}
}

// TestStatusRecorderUnwrap: http.ResponseController resolves optional
// interfaces through Unwrap; the recorder must expose the underlying
// writer there.
func TestStatusRecorderUnwrap(t *testing.T) {
	under := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	rec := &statusRecorder{ResponseWriter: under, status: http.StatusOK}
	if got := rec.Unwrap(); got != http.ResponseWriter(under) {
		t.Errorf("Unwrap = %T, want the wrapped writer", got)
	}
	if err := http.NewResponseController(rec).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush through the recorder: %v", err)
	}
}

// TestStatusRecorderNoFlusher: a bare writer without Flush stays safe —
// the forwarded Flush is a no-op rather than a panic.
func TestStatusRecorderNoFlusher(t *testing.T) {
	rec := &statusRecorder{ResponseWriter: bareWriter{httptest.NewRecorder()}, status: http.StatusOK}
	rec.Flush() // must not panic
}

// bareWriter hides ResponseRecorder's optional interfaces.
type bareWriter struct{ w *httptest.ResponseRecorder }

func (b bareWriter) Header() http.Header         { return b.w.Header() }
func (b bareWriter) Write(p []byte) (int, error) { return b.w.Write(p) }
func (b bareWriter) WriteHeader(status int)      { b.w.WriteHeader(status) }

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
