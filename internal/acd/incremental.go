package acd

import (
	"fmt"

	"sfcacd/internal/geom"
	"sfcacd/internal/obs"
	"sfcacd/internal/partition"
)

// This file is the delta-assignment half of the incremental pipeline
// (internal/incr): instead of re-running the full §IV ordering +
// partitioning at every timestep, the maintainer keeps last tick's
// sorted permutation and ownership and recomputes owners only for the
// particles whose position in curve order crossed a chunk boundary.

// OwnerDelta records one particle whose owning rank changes when the
// balanced-chunk partition is reapplied to the current curve order.
// ID is the particle's stable identity (its index in the maintainer's
// identity-ordered arrays), not its sorted position.
type OwnerDelta struct {
	ID       int
	Old, New int32
}

// DeltaOwners compares the owners implied by the current sorted
// permutation against the recorded ones and appends an OwnerDelta for
// every mismatch to out (which is returned, append-style). perm holds
// particle identities in curve order; owners holds the recorded rank
// per identity. Nothing is mutated — the caller decides whether to
// apply the deltas or to trigger a full repartition instead, after
// inspecting the drift gauge len(result)/n.
//
// The scan walks rank ranges (partition.Start/End) rather than calling
// ChunkOf per particle: the target rank is constant across each range,
// so the common all-owners-match case costs one comparison per
// particle.
func DeltaOwners(perm []int, owners []int32, p int, out []OwnerDelta) []OwnerDelta {
	n := len(perm)
	for r := 0; r < p; r++ {
		lo, hi := partition.Start(r, n, p), partition.End(r, n, p)
		for i := lo; i < hi; i++ {
			id := perm[i]
			if old := owners[id]; old != int32(r) {
				out = append(out, OwnerDelta{ID: id, Old: old, New: int32(r)})
			}
		}
	}
	return out
}

// RepartitionPolicy decides, from the drift gauge (fraction of
// particles whose owner changed this tick), whether the maintainer
// should fall back to a full rebuild of its derived state. It is a
// hysteresis loop: rebuilding starts when the gauge reaches Hi and
// continues until it falls below Lo, so a workload oscillating around
// a single threshold does not flap between mechanisms.
type RepartitionPolicy struct {
	// Hi is the gauge at or above which rebuilding engages.
	Hi float64
	// Lo is the gauge below which rebuilding disengages.
	Lo float64

	rebuilding bool
}

// DefaultRepartitionPolicy returns the policy used by the registry
// experiments: engage full rebuilds at 25% owner churn, return to
// delta maintenance below 10%.
func DefaultRepartitionPolicy() RepartitionPolicy {
	return RepartitionPolicy{Hi: 0.25, Lo: 0.10}
}

// Decide consumes one tick's drift gauge and reports whether this tick
// should rebuild. Call it exactly once per tick: the hysteresis state
// advances on every call.
func (rp *RepartitionPolicy) Decide(gauge float64) bool {
	if rp.rebuilding {
		if gauge < rp.Lo {
			rp.rebuilding = false
		}
	} else if gauge >= rp.Hi {
		rp.rebuilding = true
	}
	return rp.rebuilding
}

// FromSorted builds an Assignment from particles already in curve
// order with distinct cells — the incremental maintainer's bridge back
// to the batch ACD model, which skips the sort Assign would redo. The
// caller guarantees ordering and distinctness (the maintainer's sorted
// permutation plus the one-particle-per-cell invariant); they are not
// re-verified here. Ranks are the balanced consecutive chunks, and the
// cell->rank table stays lazy exactly as in Assign.
func FromSorted(particles []geom.Point, order uint, p int) (*Assignment, error) {
	if p < 1 {
		return nil, fmt.Errorf("acd: p = %d must be positive", p)
	}
	if len(particles) == 0 {
		return nil, fmt.Errorf("acd: no particles")
	}
	assignCounter.Inc()
	defer obs.StartTimer(assignTime)()
	defer obs.StartSpan("partitioning").End()
	n := len(particles)
	a := &Assignment{
		Order:     order,
		P:         p,
		Particles: append([]geom.Point(nil), particles...),
		Ranks:     make([]int32, n),
		side:      geom.Side(order),
	}
	for r := 0; r < p; r++ {
		lo, hi := partition.Start(r, n, p), partition.End(r, n, p)
		for i := lo; i < hi; i++ {
			a.Ranks[i] = int32(r)
		}
	}
	return a, nil
}
