package experiments

import (
	"context"
	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// Fig6Topologies lists the six network topologies of Figure 6 in the
// paper's order.
var Fig6Topologies = []string{"bus", "ring", "mesh", "torus", "quadtree", "hypercube"}

// Fig6Result holds the topology comparison of Figure 6: NFI and FFI
// ACD per {topology, SFC} pair, with the same curve used for both
// particle and processor ordering.
type Fig6Result struct {
	// Topologies are the row names.
	Topologies []string
	// Curves are the column names.
	Curves []string
	// NFI[t][c] and FFI[t][c] are the ACD values.
	NFI [][]float64
	FFI [][]float64
}

// Matrices renders the two panels of Figure 6.
func (f Fig6Result) Matrices() (nfi, ffi *tablefmt.Matrix) {
	mk := func(title string, cells [][]float64) *tablefmt.Matrix {
		return &tablefmt.Matrix{
			Title:      title,
			Corner:     "topology\\SFC",
			Cols:       f.Curves,
			Rows:       f.Topologies,
			Cells:      cells,
			MarkMinima: true,
		}
	}
	return mk("Figure 6(a): NFI ACD by topology", f.NFI),
		mk("Figure 6(b): FFI ACD by topology", f.FFI)
}

// RunFig6 reproduces Figure 6: uniformly distributed particles, the
// same SFC used for particle and processor ordering, ACD under each of
// the six topologies. The paper used 1,000,000 particles on 4096x4096
// with NFI radius 4 (and omitted bus/ring and row-major NFI bars from
// the plot because they dwarf the rest; we report them).
func RunFig6(ctx context.Context, p Params) (Fig6Result, error) {
	if err := p.Validate(); err != nil {
		return Fig6Result{}, err
	}
	curves := sfc.All()
	res := Fig6Result{
		Topologies: append([]string(nil), Fig6Topologies...),
		Curves:     curveNames(curves),
		NFI:        zeroRect(len(Fig6Topologies), len(curves)),
		FFI:        zeroRect(len(Fig6Topologies), len(curves)),
	}
	nc := len(curves)
	nt := len(Fig6Topologies)
	type cellOut struct {
		nfi, ffi []float64 // per topology
	}
	groups := make([]shared[[]geom.Point], p.Trials)
	outs := make([]cellOut, p.Trials*nc)
	pool := sweepPool(p.Workers, len(outs))
	inner := innerWorkers(p.Workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		c := cell % nc
		trial := cell / nc
		pts, err := groups[trial].get(func() ([]geom.Point, error) {
			return samplePoints(dist.Uniform, p, trial)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		a, err := acd.Assign(pts, curve, p.Order, p.P())
		if err != nil {
			return err
		}
		topos := make([]topology.Topology, nt)
		for t, name := range Fig6Topologies {
			topo, err := topology.New(name, p.P(), curve)
			if err != nil {
				return err
			}
			topos[t] = topo
		}
		engine := p.engine()
		nfiAccs := fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{
			Radius: p.Radius, Metric: geom.MetricChebyshev, Workers: inner, Engine: engine,
		})
		ffiAccs := fmmmodel.FFIMulti(a, topos, fmmmodel.FFIOptions{Workers: inner, Engine: engine})
		o := cellOut{nfi: make([]float64, nt), ffi: make([]float64, nt)}
		for t := range topos {
			o.nfi[t] = nfiAccs[t].ACD()
			o.ffi[t] = ffiAccs[t].Total().ACD()
		}
		a.Release()
		outs[cell] = o
		return nil
	})
	if err != nil {
		return Fig6Result{}, err
	}
	for cell, o := range outs {
		c := cell % nc
		for t := 0; t < nt; t++ {
			res.NFI[t][c] += o.nfi[t]
			res.FFI[t][c] += o.ffi[t]
		}
	}
	scaleMatrix(res.NFI, 1/float64(p.Trials))
	scaleMatrix(res.FFI, 1/float64(p.Trials))
	return res, nil
}

func zeroRect(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}
