package fmmmodel

import (
	"fmt"
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

// The matrix path (aggregate once, contract per topology) must
// reproduce the direct per-event path bit for bit: identical Sum,
// Count, and Zeros, not merely close ACD values. Integer accumulation
// is commutative, so any divergence is a real defect — a lost or
// double-counted event, a broken symmetry argument, or a wrong distance.

// allTopologies returns one instance of each of the paper's six network
// types, sized for p = 64.
func allTopologies() []topology.Topology {
	return []topology.Topology{
		topology.NewBus(64),
		topology.NewRing(64),
		topology.NewMesh(3, sfc.Hilbert),
		topology.NewTorus(3, sfc.RowMajor),
		topology.NewHypercube(6),
		topology.NewQuadtreeNet(3),
	}
}

// TestDifferentialMatrixVsDirect sweeps seeds x particle orders x radii
// and checks the matrix path against the direct oracle on all six
// topologies, for both interaction families.
func TestDifferentialMatrixVsDirect(t *testing.T) {
	const order = 6
	topos := allTopologies()
	curves := []sfc.Curve{sfc.RowMajor, sfc.Morton, sfc.Gray, sfc.Hilbert}
	for seed := int64(1); seed <= 2; seed++ {
		pts, err := dist.SampleUnique(dist.Uniform, rng.New(uint64(seed)), order, 400)
		if err != nil {
			t.Fatal(err)
		}
		for _, curve := range curves {
			a, err := acd.Assign(pts, curve, order, 64)
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("seed%d/%s", seed, curve.Name())

			for _, radius := range []int{1, 2} {
				opts := NFIOptions{Radius: radius, Metric: geom.MetricChebyshev}
				multi := NFIMulti(a, topos, opts)
				for i, topo := range topos {
					if single := NFI(a, topo, opts); multi[i] != single {
						t.Errorf("%s r=%d %s: NFI matrix %+v != direct %+v", name, radius, topo.Name(), multi[i], single)
					}
				}
			}

			tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
			multi := FFIMultiFromTree(tree, topos, FFIOptions{})
			for i, topo := range topos {
				if single := FFIFromTree(tree, topo, FFIOptions{}); multi[i] != single {
					t.Errorf("%s %s: FFI matrix %+v != direct %+v", name, topo.Name(), multi[i], single)
				}
			}
		}
	}
}

// TestNFIMatrixContractsExactly pins the symmetric-canonical
// convention at the matrix level: contracting the canonical matrix
// with the Sym variant reproduces the ordered direct stream.
func TestNFIMatrixContractsExactly(t *testing.T) {
	const order = 6
	pts, err := dist.SampleUnique(dist.Normal, rng.New(9), order, 500)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Morton, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	opts := NFIOptions{Radius: 1, Metric: geom.MetricChebyshev}
	m := NFIMatrix(a, opts)
	for _, topo := range allTopologies() {
		var viaSym acd.Accumulator
		m.ContractSym(topo, &viaSym)
		var viaTable acd.Accumulator
		m.ContractTableSym(topology.NewDistanceTable(topo), &viaTable)
		direct := NFI(a, topo, opts)
		if viaSym != direct || viaTable != direct {
			t.Errorf("%s: ContractSym %+v / table %+v != direct %+v", topo.Name(), viaSym, viaTable, direct)
		}
	}
}
