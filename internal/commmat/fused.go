// Fused multi-topology contraction: one pass over the distinct rank
// pairs evaluates K distance tables at once. The per-topology
// ContractTable loop reads every pair K times and re-derives the
// topology-independent tallies (event count, zero-hop count) K times;
// the fused pass streams each pair exactly once, gathers its row
// neighbors into registers, and runs one tight sum loop per table
// while the K distance rows for that source stay cache-hot.
//
// Two invariants make the fusion both exact and deterministic:
//
//   - Hop distance is a metric (Topology: zero iff the ranks are
//     equal), so Count and Zeros of a contraction do not depend on the
//     topology at all — Count is the (weighted) event total and Zeros
//     the (weighted) diagonal events. The fused pass computes both
//     once per row and reduces the per-table work to the Sum
//     multiply-add.
//   - All tallies are exact integer sums, and the parallel path splits
//     rows into worker-count-independent ranges (cut purely by the
//     matrix's pair counts), contracts each range into a pooled
//     accumulator slab, and merges the slabs in fixed range order — so
//     the result is byte-identical to the sequential per-topology loop
//     at any worker count.
//
// Distance-table state stays pinned to the sequential path by a serial
// plan step: before any parallel work, RowFor is replayed per table in
// exactly the order (and with exactly the pair volumes) the sequential
// contraction would issue, so which rows materialize — and therefore
// the topology.distance.analytic accounting — cannot depend on
// scheduling. Direct Distance calls for unmaterialized rows are
// tallied per table and flushed once per table, like the sequential
// path.
package commmat

import (
	"sync"
	"sync/atomic"

	"sfcacd/internal/acd"
	"sfcacd/internal/obs"
	"sfcacd/internal/topology"
)

// fusedCounter counts fused multi-table contraction passes
// ("commmat.fused_contractions") — the manifest evidence that the
// multi-topology call sites actually run the fused path.
var fusedCounter = obs.GetCounter("commmat.fused_contractions")

// fusedRangePairs is the distinct-pair volume one work range targets.
// Ranges are cut from the matrix's own row pair counts, never from the
// worker count, so the range boundaries — and with them the merge
// structure — are a pure function of the matrix.
const fusedRangePairs = 4096

// fusedSlab is the per-range result: one accumulator and one
// direct-call tally per table. Slabs are pooled — a sweep contracts
// thousands of ranges and the slabs are the only per-range allocation.
type fusedSlab struct {
	accs   []acd.Accumulator
	direct []uint64
}

var slabPool = sync.Pool{New: func() any { return new(fusedSlab) }}

func getSlab(k int) *fusedSlab {
	s := slabPool.Get().(*fusedSlab)
	if cap(s.accs) < k {
		s.accs = make([]acd.Accumulator, k)
		s.direct = make([]uint64, k)
	}
	s.accs = s.accs[:k]
	s.direct = s.direct[:k]
	for i := range s.accs {
		s.accs[i] = acd.Accumulator{}
		s.direct[i] = 0
	}
	return s
}

// rowRange is one unit of parallel work: a contiguous row interval cut
// by pair volume.
type rowRange struct{ lo, hi int }

// fusedPlan is the pooled per-contraction scratch: the planned distance
// rows (k tables x numRows, table-major), the per-row pair counts the
// ranges are cut from, and the per-table topology handles. Pooling it
// matters — a sweep contracts hundreds of matrices and the rows slice
// alone is k*numRows pointers.
type fusedPlan struct {
	rows   [][]uint16
	lens   []int32
	unders []topology.Topology
	sums   []topology.PairContractor
	blocks []topology.RowBlockContractor
	// allNil[t] marks a table whose plan materialized no rows at all —
	// the whole contraction for it is direct, so a range can hand the
	// topology one RowBlockContractor dispatch per range instead of one
	// per row.
	allNil []bool
	direct []uint64
	ranges []rowRange
}

var planPool = sync.Pool{New: func() any { return new(fusedPlan) }}

func getPlan(k, numRows int) *fusedPlan {
	pl := planPool.Get().(*fusedPlan)
	if cap(pl.rows) < k*numRows {
		pl.rows = make([][]uint16, k*numRows)
	}
	pl.rows = pl.rows[:k*numRows]
	if cap(pl.lens) < numRows {
		pl.lens = make([]int32, numRows)
	}
	pl.lens = pl.lens[:numRows]
	if cap(pl.unders) < k {
		pl.unders = make([]topology.Topology, k)
		pl.sums = make([]topology.PairContractor, k)
		pl.blocks = make([]topology.RowBlockContractor, k)
		pl.allNil = make([]bool, k)
		pl.direct = make([]uint64, k)
	}
	pl.unders = pl.unders[:k]
	pl.sums = pl.sums[:k]
	pl.blocks = pl.blocks[:k]
	pl.allNil = pl.allNil[:k]
	pl.direct = pl.direct[:k]
	for t := range pl.direct {
		pl.direct[t] = 0
	}
	pl.ranges = pl.ranges[:0]
	return pl
}

// putPlan clears the plan's references (so pooled plans never pin
// distance tables past their cache eviction) and returns it.
func putPlan(pl *fusedPlan) {
	clear(pl.rows)
	clear(pl.unders)
	clear(pl.sums)
	clear(pl.blocks)
	planPool.Put(pl)
}

// ContractTableMulti contracts the matrix against every distance table
// in one fused pass, adding table k's contraction into accs[k]. The
// result of each accumulator is exactly (Sum/Count/Zeros equality)
// what ContractTable against the same table would produce, at any
// worker count; workers <= 1 runs on the calling goroutine.
func (m *Matrix) ContractTableMulti(dts []*topology.DistanceTable, accs []*acd.Accumulator, workers int) {
	m.contractTableMulti(dts, accs, 1, workers)
}

// ContractTableMultiSym is ContractTableMulti for a symmetric-canonical
// matrix: every pair's events count once per direction, matching
// ContractTableSym.
func (m *Matrix) ContractTableMultiSym(dts []*topology.DistanceTable, accs []*acd.Accumulator, workers int) {
	m.contractTableMulti(dts, accs, 2, workers)
}

func (m *Matrix) contractTableMulti(dts []*topology.DistanceTable, accs []*acd.Accumulator, weight, workers int) {
	if len(dts) != len(accs) {
		panic("commmat: ContractTableMulti needs one accumulator per table")
	}
	k := len(dts)
	if k == 0 {
		return
	}
	if k == 1 {
		// A single table gains nothing from fusion — the sequential
		// contraction is the same work without the plan pass — so
		// single-topology call sites (the metrics sweep, per-tick
		// incremental contractions) delegate and never regress.
		m.contractTable(dts[0], accs[0], weight)
		return
	}
	fusedCounter.Inc()

	// Plan (serial): replay the sequential contraction's exact RowFor
	// sequence per table, each table's batch under one lock. This both
	// fixes which rows materialize — pinning the distance-query
	// accounting to the sequential path — and captures the row pointers
	// the parallel phase reads. The per-row pair counts double as the
	// range-cutting weights.
	numRows := len(m.rowSrc)
	if m.dense != nil {
		numRows = m.p
	}
	pl := getPlan(k, numRows)
	if m.dense != nil {
		for src := 0; src < m.p; src++ {
			base := src * m.p
			nnz := int32(0)
			for dst := 0; dst < m.p; dst++ {
				if m.dense[base+dst] != 0 {
					nnz++
				}
			}
			pl.lens[src] = nnz
		}
	} else {
		for r := range m.rowSrc {
			pl.lens[r] = m.rowStart[r+1] - m.rowStart[r]
		}
	}
	for t, dt := range dts {
		pl.unders[t] = dt.Underlying()
		pl.sums[t], _ = pl.unders[t].(topology.PairContractor)
		pl.blocks[t], _ = pl.unders[t].(topology.RowBlockContractor)
		rows := pl.rows[t*numRows : (t+1)*numRows]
		if m.dense != nil {
			// The sequential dense loop announces m.p lookups per row
			// (it scans the full row), so the plan does too.
			dt.DenseRows(m.p, rows)
		} else {
			dt.RowsFor(m.rowSrc, pl.lens, rows)
		}
		pl.allNil[t] = true
		for _, row := range rows {
			if row != nil {
				pl.allNil[t] = false
				break
			}
		}
	}

	lo, pairs := 0, 0
	for r := 0; r < numRows; r++ {
		pairs += int(pl.lens[r])
		if pairs >= fusedRangePairs {
			pl.ranges = append(pl.ranges, rowRange{lo, r + 1})
			lo, pairs = r+1, 0
		}
	}
	if lo < numRows {
		pl.ranges = append(pl.ranges, rowRange{lo, numRows})
	}
	ranges := pl.ranges

	// Contract every range into its own slab. Workers pull ranges from
	// a shared cursor; each range's slab is identified by range index,
	// so scheduling never reaches the results.
	slabs := make([]*fusedSlab, len(ranges))
	run := func() {
		var dsts []int32
		var ns []uint32
		if m.dense != nil {
			dsts = make([]int32, 0, m.p)
			ns = make([]uint32, 0, m.p)
		}
		for i := range ranges {
			slabs[i] = getSlab(k)
			m.fuseRange(ranges[i].lo, ranges[i].hi, pl, numRows, weight, slabs[i], &dsts, &ns)
		}
	}
	if workers > len(ranges) {
		workers = len(ranges)
	}
	if workers <= 1 {
		run()
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var dsts []int32
				var ns []uint32
				if m.dense != nil {
					dsts = make([]int32, 0, m.p)
					ns = make([]uint32, 0, m.p)
				}
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(ranges) {
						return
					}
					s := getSlab(k)
					m.fuseRange(ranges[i].lo, ranges[i].hi, pl, numRows, weight, s, &dsts, &ns)
					slabs[i] = s
				}
			}()
		}
		wg.Wait()
	}

	// Merge in fixed range order and flush each table's direct-call
	// volume once, like its sequential contraction would. The ranges
	// only tally Sum; Count and Zeros are topology-independent matrix
	// constants (hop distance is zero iff the ranks are equal), applied
	// here once per table.
	w := uint64(weight)
	for t := range accs {
		accs[t].Count += w * m.events
		accs[t].Zeros += w * m.diag
	}
	for _, s := range slabs {
		for t := range accs {
			accs[t].Merge(s.accs[t])
			pl.direct[t] += s.direct[t]
		}
		slabPool.Put(s)
	}
	for t := range dts {
		topology.CountDistanceQueries(pl.direct[t])
	}
	putPlan(pl)
}

// fuseRange contracts rows [lo, hi) into the slab: per row, the
// nonzero (dst, count) pairs are gathered once (dense form) or sliced
// in place (CSR), the topology-independent tallies computed once, and
// each table reduced with a tight Sum loop over its distance row —
// falling back to one batched DistanceSum (or, for topologies without
// one, per-pair Distance calls), tallied per table, for rows the plan
// left unmaterialized.
func (m *Matrix) fuseRange(lo, hi int, pl *fusedPlan, numRows, weight int, slab *fusedSlab, dsts *[]int32, ns *[]uint32) {
	w := uint64(weight)
	if m.dense != nil {
		for src := lo; src < hi; src++ {
			base := src * m.p
			rd, rn := (*dsts)[:0], (*ns)[:0]
			for dst := 0; dst < m.p; dst++ {
				if n := m.dense[base+dst]; n != 0 {
					rd = append(rd, int32(dst))
					rn = append(rn, n)
				}
			}
			*dsts, *ns = rd, rn
			if len(rd) == 0 {
				continue
			}
			for t := range slab.accs {
				var s uint64
				if row := pl.rows[t*numRows+src]; row != nil {
					for i, d := range rd {
						s += uint64(row[d]) * uint64(rn[i])
					}
				} else {
					s = fuseDirect(pl, t, src, rd, rn)
					slab.direct[t] += uint64(len(rd))
				}
				slab.accs[t].Sum += w * s
			}
		}
		return
	}
	// CSR: tables iterate outer, rows inner. The range's pair data is a
	// few tens of KB and stays cache-resident across the K passes, and
	// a table whose plan materialized nothing contracts the whole range
	// in one RowBlockContractor dispatch.
	for t := range slab.accs {
		if pl.allNil[t] {
			var s uint64
			if bc := pl.blocks[t]; bc != nil {
				s = bc.DistanceSumRows(m.rowSrc[lo:hi], m.rowStart[lo:hi+1], m.dsts, m.counts)
			} else {
				for r := lo; r < hi; r++ {
					rlo, rhi := m.rowStart[r], m.rowStart[r+1]
					s += fuseDirect(pl, t, int(m.rowSrc[r]), m.dsts[rlo:rhi], m.counts[rlo:rhi])
				}
			}
			slab.accs[t].Sum += w * s
			slab.direct[t] += uint64(m.rowStart[hi] - m.rowStart[lo])
			continue
		}
		for r := lo; r < hi; r++ {
			rlo, rhi := m.rowStart[r], m.rowStart[r+1]
			rd, rn := m.dsts[rlo:rhi], m.counts[rlo:rhi]
			var s uint64
			if row := pl.rows[t*numRows+r]; row != nil {
				for i, d := range rd {
					s += uint64(row[d]) * uint64(rn[i])
				}
			} else {
				s = fuseDirect(pl, t, int(m.rowSrc[r]), rd, rn)
				slab.direct[t] += uint64(len(rd))
			}
			slab.accs[t].Sum += w * s
		}
	}
}

// fuseDirect answers one unmaterialized row for table t: a single
// batched DistanceSum dispatch when the topology supports it, a
// per-pair Distance loop otherwise.
func fuseDirect(pl *fusedPlan, t, src int, rd []int32, rn []uint32) uint64 {
	if pc := pl.sums[t]; pc != nil {
		return pc.DistanceSum(src, rd, rn)
	}
	topo := pl.unders[t]
	var s uint64
	for i, d := range rd {
		s += uint64(topo.Distance(src, int(d))) * uint64(rn[i])
	}
	return s
}

// ContractTableMultiSym contracts the maintained matrix against every
// distance table in one fused pass with symmetric-canonical weighting,
// adding table k's contraction into accs[k] — exactly what K calls of
// ContractTableSym would produce. The maintainer is single-goroutine,
// so the pass is serial: rows are buffered once from Visit and the K
// distance rows for each source are looked up back to back, in the
// same per-table RowFor order as the sequential path.
func (m *Mutable) ContractTableMultiSym(dts []*topology.DistanceTable, accs []*acd.Accumulator) {
	if len(dts) != len(accs) {
		panic("commmat: ContractTableMultiSym needs one accumulator per table")
	}
	if len(dts) == 0 {
		return
	}
	if len(dts) == 1 {
		// See Matrix.contractTableMulti: one table contracts cheaper
		// without the fusion scaffolding.
		m.ContractTableSym(dts[0], accs[0])
		return
	}
	fusedCounter.Inc()
	unders := make([]topology.Topology, len(dts))
	sums := make([]topology.PairContractor, len(dts))
	for t, dt := range dts {
		unders[t] = dt.Underlying()
		sums[t], _ = unders[t].(topology.PairContractor)
	}
	direct := make([]uint64, len(dts))
	curSrc := int32(-1)
	var dsts []int32
	var counts []uint32
	flushRow := func() {
		if len(dsts) == 0 {
			return
		}
		var ev, zeros uint64
		for i, d := range dsts {
			n := uint64(counts[i])
			ev += n
			if d == curSrc {
				zeros = n
			}
		}
		for t, dt := range dts {
			var s uint64
			if row := dt.RowFor(int(curSrc), len(dsts)); row != nil {
				for i, d := range dsts {
					s += uint64(row[d]) * uint64(counts[i])
				}
			} else {
				if pc := sums[t]; pc != nil {
					s = pc.DistanceSum(int(curSrc), dsts, counts)
				} else {
					topo := unders[t]
					for i, d := range dsts {
						s += uint64(topo.Distance(int(curSrc), int(d))) * uint64(counts[i])
					}
				}
				direct[t] += uint64(len(dsts))
			}
			accs[t].Sum += 2 * s
			accs[t].Count += 2 * ev
			accs[t].Zeros += 2 * zeros
		}
		dsts, counts = dsts[:0], counts[:0]
	}
	m.Visit(func(src, dst int32, n uint32) {
		if src != curSrc {
			flushRow()
			curSrc = src
		}
		dsts = append(dsts, dst)
		counts = append(counts, n)
	})
	flushRow()
	for t := range dts {
		topology.CountDistanceQueries(direct[t])
	}
}
