package stats

import (
	"math"
	"testing"

	"sfcacd/internal/rng"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{4.5})
	if s.N != 1 || s.Mean != 4.5 || s.Min != 4.5 || s.Max != 4.5 || s.Std != 0 || s.HalfWidth != 0 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %f", s.Mean)
	}
	// Sample std with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %f, want %f", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Errorf("summary %+v", s)
	}
	if s.HalfWidth <= 0 {
		t.Errorf("half width %f", s.HalfWidth)
	}
}

func TestRunTrialsDeterministic(t *testing.T) {
	f := func(trial int, r *rng.Rand) float64 {
		return float64(trial) + r.Float64()
	}
	a := RunTrials(8, 42, f)
	b := RunTrials(8, 42, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d diverged: %f vs %f", i, a[i], b[i])
		}
	}
	c := RunTrials(8, 43, f)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different base seeds gave identical trials")
	}
}

func TestRunTrialsOrder(t *testing.T) {
	out := RunTrials(16, 1, func(trial int, r *rng.Rand) float64 { return float64(trial) })
	for i, v := range out {
		if v != float64(i) {
			t.Fatalf("trial order scrambled: out[%d] = %f", i, v)
		}
	}
}

func TestMeanOfTrials(t *testing.T) {
	s := MeanOfTrials(5, 7, func(trial int, r *rng.Rand) float64 { return 2.0 })
	if s.N != 5 || s.Mean != 2 || s.Std != 0 {
		t.Fatalf("summary %+v", s)
	}
}
