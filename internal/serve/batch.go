package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"sfcacd/internal/experiments"
	"sfcacd/internal/obs"
)

// maxBatchCells bounds one batch's expansion; a sweep larger than
// this must be split by the client.
const maxBatchCells = 1024

// maxBatchWorkers bounds a batch's cell-level parallelism. Local
// cells still pass the admission queue, so this caps outstanding
// peer-forwarded cells, not compute.
const maxBatchWorkers = 32

// BatchRequest is the body of POST /v1/batch: a parameter sweep to
// fan out as independent cells. The cell space is the cross product
// of Experiments and every combination of Sweep values, each merged
// over Preset + Params exactly as a single POST /v1/experiments/{name}
// body would be.
type BatchRequest struct {
	// Experiments names the registry entries to run; required.
	Experiments []string `json:"experiments"`
	// Preset selects the base configuration per cell: "scaled"
	// (default) or "paper".
	Preset string `json:"preset,omitempty"`
	// Params is a partial experiments.Params object merged over the
	// preset for every cell.
	Params json.RawMessage `json:"params,omitempty"`
	// Sweep maps Params field names to the values to sweep; the cells
	// are the cross product. Field names follow sorted order, the last
	// field varying fastest, so cell indices are deterministic.
	Sweep map[string][]json.RawMessage `json:"sweep,omitempty"`
	// Workers bounds concurrent cells; 0 means the server's worker
	// count, capped at 32.
	Workers int `json:"workers,omitempty"`
}

// CellEvent is one streamed batch completion (SSE "cell" events /
// NDJSON lines with type "cell").
type CellEvent struct {
	Type       string `json:"type"`
	Cell       int    `json:"cell"`
	Experiment string `json:"experiment"`
	// Node is the fleet member that served the cell ("" outside fleet
	// mode).
	Node string `json:"node,omitempty"`
	// Cache is the serving path: hit|miss|coalesced|peer, or "error".
	Cache  string          `json:"cache,omitempty"`
	Key    string          `json:"key,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// BatchSummary ends the stream (SSE "done" event / NDJSON line with
// type "done").
type BatchSummary struct {
	Type   string         `json:"type"`
	Cells  int            `json:"cells"`
	Errors int            `json:"errors"`
	Cache  map[string]int `json:"cache"`
}

// batchCell is one expanded, validated cell.
type batchCell struct {
	experiment string
	params     experiments.Params
}

var batchCells = obs.GetCounter("serve.batch_cells")

// expandBatch resolves a request into its ordered cell list:
// experiment-major, sweep combinations in odometer order over the
// sorted field names (last field fastest). Every cell is merged and
// validated before anything runs, so a bad sweep fails the whole
// batch with a 400 instead of a half-streamed response.
func expandBatch(req BatchRequest) ([]batchCell, error) {
	if len(req.Experiments) == 0 {
		return nil, fmt.Errorf("batch: experiments list is empty")
	}
	fields := make([]string, 0, len(req.Sweep))
	for f, vals := range req.Sweep {
		if len(vals) == 0 {
			return nil, fmt.Errorf("batch: sweep field %q has no values", f)
		}
		fields = append(fields, f)
	}
	sort.Strings(fields)

	combos := 1
	for _, f := range fields {
		combos *= len(req.Sweep[f])
	}
	if n := combos * len(req.Experiments); n > maxBatchCells {
		return nil, fmt.Errorf("batch: %d cells exceed the %d-cell bound", n, maxBatchCells)
	}

	cells := make([]batchCell, 0, combos*len(req.Experiments))
	idx := make([]int, len(fields)) // odometer over sweep values
	for _, name := range req.Experiments {
		base, err := mergeParams(name, req.Preset, req.Params)
		if err != nil {
			return nil, fmt.Errorf("batch: %v", err)
		}
		for i := range idx {
			idx[i] = 0
		}
		for c := 0; c < combos; c++ {
			p := base
			if len(fields) > 0 {
				assign := make(map[string]json.RawMessage, len(fields))
				for i, f := range fields {
					assign[f] = req.Sweep[f][idx[i]]
				}
				obj, err := json.Marshal(assign)
				if err != nil {
					return nil, fmt.Errorf("batch: %v", err)
				}
				dec := json.NewDecoder(strings.NewReader(string(obj)))
				dec.DisallowUnknownFields()
				if err := dec.Decode(&p); err != nil {
					return nil, fmt.Errorf("batch: bad sweep value: %v", err)
				}
			}
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("batch: cell %d (%s): %v", len(cells), name, err)
			}
			cells = append(cells, batchCell{experiment: name, params: p})
			for i := len(fields) - 1; i >= 0; i-- { // last field fastest
				idx[i]++
				if idx[i] < len(req.Sweep[fields[i]]) {
					break
				}
				idx[i] = 0
			}
		}
	}
	return cells, nil
}

// handleBatch answers POST /v1/batch: the expanded cells run on the
// sweep scheduler (local cells under this node's admission queue,
// remote cells forwarded to their owner replica) and each completion
// streams back immediately — SSE by default, NDJSON under
// Accept: application/x-ndjson — so a client watching a long sweep
// sees cells finish as they finish.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad batch body: %v", err)})
		return
	}
	cells, err := expandBatch(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// The middleware charged one token; a batch costs one per cell.
	if r.Header.Get(HeaderFleetForwarded) == "" && len(cells) > 1 {
		if ok, retry := s.limiter.Allow(clientID(r), len(cells)-1); !ok {
			writeRateLimited(w, retry)
			return
		}
	}
	batchCells.Add(uint64(len(cells)))

	ndjson := strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	}
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	workers := req.Workers
	if workers <= 0 {
		workers = s.workers
	}
	if workers > maxBatchWorkers {
		workers = maxBatchWorkers
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	// Cells run on the sweep scheduler and report completions over a
	// channel; this goroutine owns the ResponseWriter and streams them
	// in completion order. Cells never return errors (failures are
	// per-cell events), so the scheduler never aborts early — only a
	// client disconnect (r.Context()) cancels the remaining cells.
	events := make(chan CellEvent)
	go func() {
		defer close(events)
		experiments.RunCells(r.Context(), workers, len(cells), func(i int) error {
			ev := s.batchCell(r.Context(), cells[i], req.Preset)
			ev.Cell = i
			select {
			case events <- ev:
			case <-r.Context().Done():
			}
			return nil
		})
	}()

	sum := BatchSummary{Type: "done", Cells: len(cells), Cache: map[string]int{}}
	for ev := range events {
		if ev.Error != "" {
			sum.Errors++
		}
		if ev.Cache != "" {
			sum.Cache[ev.Cache]++
		}
		writeEvent(w, ndjson, "cell", ev)
		rc.Flush()
	}
	if r.Context().Err() != nil {
		return // client gone; nothing left to write
	}
	writeEvent(w, ndjson, "done", sum)
	rc.Flush()
}

// writeEvent frames one streamed object: an SSE event or an NDJSON
// line.
func writeEvent(w io.Writer, ndjson bool, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"type":"error","error":%q}`, err.Error()))
	}
	if ndjson {
		fmt.Fprintf(w, "%s\n", data)
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// batchCell serves one cell: forwarded to its owner replica in fleet
// mode (degrading to local on any forward failure), else locally
// through Do — the same admission, coalescing, caching, and peer-fill
// path a single request takes.
func (s *Server) batchCell(ctx context.Context, c batchCell, preset string) CellEvent {
	ev := CellEvent{Type: "cell", Experiment: c.experiment}
	if s.peers != nil {
		ev.Node = s.peers.Self().ID
		if owner, self := s.peers.Owner(RequestKey(c.experiment, c.params)); !self {
			if done := s.forwardCell(ctx, &ev, owner, c, preset); done {
				return ev
			}
		}
	}
	resp, err := s.Do(ctx, c.experiment, c.params)
	if err != nil {
		ev.Cache, ev.Error = "error", err.Error()
		return ev
	}
	ev.Cache = string(resp.Status)
	ev.Key = resp.Entry.Key.String()
	ev.Params = resp.Entry.Params
	ev.Result = resp.Entry.Result
	return ev
}

// forwardCell runs a cell on its owner replica, filling ev from the
// owner's response. It reports false when the forward failed and the
// cell should run locally instead.
func (s *Server) forwardCell(ctx context.Context, ev *CellEvent, owner MemberInfo, c batchCell, preset string) bool {
	body, err := json.Marshal(c.params)
	if err != nil {
		return false
	}
	fr, err := s.peers.Forward(ctx, owner, c.experiment, preset, body)
	if err != nil {
		return false
	}
	ev.Node = owner.ID
	if fr.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(fr.Body, &eb) == nil && eb.Error != "" {
			ev.Cache, ev.Error = "error", eb.Error
		} else {
			ev.Cache, ev.Error = "error", fmt.Sprintf("peer %s answered %d", owner.ID, fr.StatusCode)
		}
		return true
	}
	var env Envelope
	if err := json.Unmarshal(fr.Body, &env); err != nil {
		return false // relay failure: compute locally
	}
	ev.Cache = forwardCache(fr.Cache)
	ev.Key = env.Key
	ev.Params = env.Params
	ev.Result = env.Result
	return true
}
