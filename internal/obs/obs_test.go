package obs

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	// Hammer one counter from many goroutines through every increment
	// path; the folded value must be exact. Run with -race to verify
	// the striping is data-race free.
	reg := NewRegistry()
	c := reg.GetCounter("test.concurrent")
	const goroutines = 16
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 4 {
				case 0:
					c.Inc()
				case 1:
					c.Add(1)
				case 2:
					c.IncAt(g)
				default:
					c.AddAt(g*31+i, 1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterHintsFold(t *testing.T) {
	var c Counter
	for hint := -3; hint < 40; hint++ {
		c.AddAt(hint, 2)
	}
	if got := c.Value(); got != 2*43 {
		t.Fatalf("striped sum = %d, want %d", got, 2*43)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.GetGauge("test.gauge")
	g.Set(1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Set/Value = %v, want 1.5", got)
	}
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("Add = %v, want 1.0", got)
	}
	g.SetMax(0.5) // below current: no-op
	if got := g.Value(); got != 1.0 {
		t.Fatalf("SetMax(0.5) = %v, want 1.0", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax(7) = %v, want 7", got)
	}
}

func TestRegistryIdentityAndReset(t *testing.T) {
	reg := NewRegistry()
	a := reg.GetCounter("same")
	b := reg.GetCounter("same")
	if a != b {
		t.Fatal("GetCounter returned distinct instances for one name")
	}
	a.Add(5)
	reg.GetGauge("g").Set(3)
	reg.GetHistogram("h", []float64{1, 2}).Observe(1.5)
	reg.Reset()
	snap := reg.Snapshot()
	if snap.Counters["same"] != 0 || snap.Gauges["g"] != 0 || snap.Histograms["h"].Count != 0 {
		t.Fatalf("Reset left values: %+v", snap)
	}
	a.Inc() // instance stays live after Reset
	if got := reg.Snapshot().Counters["same"]; got != 1 {
		t.Fatalf("post-reset increment = %d, want 1", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.GetCounter("c1").Add(3)
	reg.GetCounter("c2").AddAt(9, 4)
	reg.GetGauge("g1").Set(2.25)
	snap := reg.Snapshot()
	if snap.Counters["c1"] != 3 || snap.Counters["c2"] != 4 {
		t.Fatalf("counters snapshot = %v", snap.Counters)
	}
	if snap.Gauges["g1"] != 2.25 {
		t.Fatalf("gauges snapshot = %v", snap.Gauges)
	}
	names := reg.CounterNames()
	if len(names) != 2 || names[0] != "c1" || names[1] != "c2" {
		t.Fatalf("CounterNames = %v", names)
	}
}

func TestOnSnapshotHook(t *testing.T) {
	reg := NewRegistry()
	part := reg.GetCounter("part.a")
	total := reg.GetCounter("total")
	// Derived-rollup pattern: fold the per-part delta into the total on
	// every snapshot (as internal/sfc does for sfc.encode).
	var last uint64
	reg.OnSnapshot(func() {
		v := part.Value()
		if v < last {
			last = 0
		}
		total.Add(v - last)
		last = v
	})
	part.Add(7)
	if got := reg.Snapshot().Counters["total"]; got != 7 {
		t.Fatalf("total after first snapshot = %d, want 7", got)
	}
	// Repeated snapshots must not double-count.
	if got := reg.Snapshot().Counters["total"]; got != 7 {
		t.Fatalf("total after second snapshot = %d, want 7", got)
	}
	part.Add(5)
	if got := reg.Snapshot().Counters["total"]; got != 12 {
		t.Fatalf("total after increment = %d, want 12", got)
	}
	// Reset zeroes both; the hook restarts from zero.
	reg.Reset()
	part.Add(2)
	if got := reg.Snapshot().Counters["total"]; got != 2 {
		t.Fatalf("total after reset = %d, want 2", got)
	}
}
