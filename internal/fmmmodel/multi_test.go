package fmmmodel

import (
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

// TestNFIMultiMatchesSingle: evaluating N topologies in one pass gives
// exactly the same accumulators as N single passes.
func TestNFIMultiMatchesSingle(t *testing.T) {
	const order = 6
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(1), order, 500)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	topos := []topology.Topology{
		topology.NewTorus(3, sfc.Hilbert),
		topology.NewTorus(3, sfc.RowMajor),
		topology.NewMesh(3, sfc.Gray),
		topology.NewHypercube(6),
		topology.NewBus(64),
	}
	opts := NFIOptions{Radius: 2, Metric: geom.MetricChebyshev}
	multi := NFIMulti(a, topos, opts)
	for i, topo := range topos {
		single := NFI(a, topo, opts)
		if multi[i] != single {
			t.Fatalf("topology %d (%s): multi %+v != single %+v", i, topo.Name(), multi[i], single)
		}
	}
}

// TestFFIMultiMatchesSingle mirrors the NFI check for the far field.
func TestFFIMultiMatchesSingle(t *testing.T) {
	const order = 5
	pts, err := dist.SampleUnique(dist.Exponential, rng.New(2), order, 300)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Morton, order, 16)
	if err != nil {
		t.Fatal(err)
	}
	topos := []topology.Topology{
		topology.NewTorus(2, sfc.Hilbert),
		topology.NewQuadtreeNet(2),
		topology.NewRing(16),
	}
	multi := FFIMulti(a, topos, FFIOptions{})
	for i, topo := range topos {
		single := FFI(a, topo, FFIOptions{})
		if multi[i] != single {
			t.Fatalf("topology %d (%s): multi %+v != single %+v", i, topo.Name(), multi[i], single)
		}
	}
}

// TestMultiDeterministicAcrossWorkers pins the parallel multi paths.
func TestMultiDeterministicAcrossWorkers(t *testing.T) {
	const order = 6
	pts, err := dist.SampleUnique(dist.Normal, rng.New(3), order, 600)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Gray, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	topos := []topology.Topology{
		topology.NewTorus(3, sfc.Hilbert),
		topology.NewMesh(3, sfc.Morton),
	}
	nfiBase := NFIMulti(a, topos, NFIOptions{Radius: 1, Workers: 1})
	ffiBase := FFIMulti(a, topos, FFIOptions{Workers: 1})
	for _, w := range []int{2, 8, 32} {
		nfi := NFIMulti(a, topos, NFIOptions{Radius: 1, Workers: w})
		ffi := FFIMulti(a, topos, FFIOptions{Workers: w})
		for i := range topos {
			if nfi[i] != nfiBase[i] || ffi[i] != ffiBase[i] {
				t.Fatalf("workers=%d: results diverged", w)
			}
		}
	}
}
