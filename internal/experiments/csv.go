package experiments

import (
	"fmt"
	"io"
	"strconv"

	"sfcacd/internal/geom"
	"sfcacd/internal/tablefmt"
)

// This file provides machine-readable CSV emitters for every
// experiment result, so the figures can be re-plotted with external
// tools.

func f(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

// WriteCSV emits one CSV per distribution with columns
// (distribution, family, proc_curve, particle_curve, acd).
func (t Table12Result) WriteCSV(w io.Writer) error {
	header := []string{"distribution", "family", "proc_curve", "particle_curve", "acd"}
	var rows [][]string
	for r, proc := range t.Curves {
		for c, part := range t.Curves {
			rows = append(rows,
				[]string{t.Distribution, "nfi", proc, part, f(t.NFI[r][c])},
				[]string{t.Distribution, "ffi", proc, part, f(t.FFI[r][c])})
		}
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits (side, curve, anns) rows.
func (r Fig5Result) WriteCSV(w io.Writer) error {
	header := []string{"side", "curve", "radius", "anns"}
	var rows [][]string
	for c, name := range r.Curves {
		for i, o := range r.Orders {
			rows = append(rows, []string{
				strconv.Itoa(int(geom.Side(o))), name, strconv.Itoa(r.Radius), f(r.ANNS[c][i]),
			})
		}
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits (topology, curve, family, acd) rows.
func (r Fig6Result) WriteCSV(w io.Writer) error {
	header := []string{"topology", "curve", "family", "acd"}
	var rows [][]string
	for t, topo := range r.Topologies {
		for c, curve := range r.Curves {
			rows = append(rows,
				[]string{topo, curve, "nfi", f(r.NFI[t][c])},
				[]string{topo, curve, "ffi", f(r.FFI[t][c])})
		}
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits (processors, curve, family, acd) rows.
func (r Fig7Result) WriteCSV(w io.Writer) error {
	header := []string{"processors", "curve", "family", "acd"}
	var rows [][]string
	for c, curve := range r.Curves {
		for i, p := range r.ProcCounts {
			rows = append(rows,
				[]string{strconv.Itoa(p), curve, "nfi", f(r.NFI[c][i])},
				[]string{strconv.Itoa(p), curve, "ffi", f(r.FFI[c][i])})
		}
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits (radius, curve, acd) rows.
func (r RadiusSweepResult) WriteCSV(w io.Writer) error {
	header := []string{"radius", "curve", "acd"}
	var rows [][]string
	for c, curve := range r.Curves {
		for i, radius := range r.Radii {
			rows = append(rows, []string{strconv.Itoa(radius), curve, f(r.NFI[c][i])})
		}
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits (query_side, curve, clusters) rows.
func (r ClusterResult) WriteCSV(w io.Writer) error {
	header := []string{"query_side", "curve", "clusters"}
	var rows [][]string
	for c, curve := range r.Curves {
		for q, qs := range r.QuerySides {
			rows = append(rows, []string{fmt.Sprint(qs), curve, f(r.Avg[c][q])})
		}
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits (tick, curve, acd, gauge, touched, moved,
// repartitions) rows for the incremental pipeline study.
func (r DynamicIncrResult) WriteCSV(w io.Writer) error {
	header := []string{"tick", "curve", "acd", "gauge", "touched", "moved", "repartitions"}
	var rows [][]string
	for c, curve := range r.Curves {
		for t, tick := range r.Ticks {
			rows = append(rows, []string{
				strconv.Itoa(tick), curve, f(r.ACD[c][t]), f(r.Gauge[c][t]),
				strconv.Itoa(r.Touched[c][t]), strconv.Itoa(r.Moved[t]),
				strconv.Itoa(r.Repartitions[c]),
			})
		}
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits (step, curve, policy, acd) rows.
func (r DynamicResult) WriteCSV(w io.Writer) error {
	header := []string{"step", "curve", "policy", "acd"}
	var rows [][]string
	for c, curve := range r.Curves {
		for s, step := range r.Steps {
			rows = append(rows,
				[]string{strconv.Itoa(step), curve, "static", f(r.Static[c][s])},
				[]string{strconv.Itoa(step), curve, "reorder", f(r.Reorder[c][s])})
		}
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits (curve, nfi, ffi, anns) rows.
func (r ThreeDResult) WriteCSV(w io.Writer) error {
	header := []string{"curve", "nfi", "ffi", "anns"}
	var rows [][]string
	for c, curve := range r.Curves {
		rows = append(rows, []string{curve, f(r.NFI[c]), f(r.FFI[c]), f(r.ANNS[c])})
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits the wrap-link ablation rows.
func (r MeshTorusResult) WriteCSV(w io.Writer) error {
	header := []string{"curve", "mesh_nfi", "torus_nfi", "mesh_ffi", "torus_ffi"}
	var rows [][]string
	for c, curve := range r.Curves {
		rows = append(rows, []string{
			curve, f(r.MeshNFI[c]), f(r.TorusNFI[c]), f(r.MeshFFI[c]), f(r.TorusFFI[c]),
		})
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits the size-sweep rows (particles, curve, family, acd).
func (r SizeSweepResult) WriteCSV(w io.Writer) error {
	header := []string{"particles", "curve", "family", "acd"}
	var rows [][]string
	for c, curve := range r.Curves {
		for i, n := range r.Sizes {
			rows = append(rows,
				[]string{strconv.Itoa(n), curve, "nfi", f(r.NFI[c][i])},
				[]string{strconv.Itoa(n), curve, "ffi", f(r.FFI[c][i])})
		}
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits the load-balance rows.
func (r LoadBalanceResult) WriteCSV(w io.Writer) error {
	header := []string{"curve", "count_imbalance", "work_imbalance", "count_acd", "work_acd"}
	var rows [][]string
	for c, curve := range r.Curves {
		rows = append(rows, []string{
			curve, f(r.CountImbalance[c]), f(r.WorkImbalance[c]), f(r.CountACD[c]), f(r.WorkACD[c]),
		})
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits the execution-model rows.
func (r ExecModelResult) WriteCSV(w io.Writer) error {
	header := []string{"curve", "acd", "makespan", "max_sends"}
	var rows [][]string
	for c, curve := range r.Curves {
		rows = append(rows, []string{curve, f(r.ACD[c]), f(r.Makespan[c]), f(r.MaxSends[c])})
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits the metric-landscape rows.
func (r MetricsResult) WriteCSV(w io.Writer) error {
	header := []string{"curve", "anns", "max_stretch", "all_pairs", "clusters", "nfi_acd", "ffi_acd"}
	var rows [][]string
	for c, curve := range r.Curves {
		rows = append(rows, []string{
			curve, f(r.ANNS[c]), f(r.MaxStretch[c]), f(r.AllPairs[c]),
			f(r.Clusters[c]), f(r.NFI[c]), f(r.FFI[c]),
		})
	}
	return tablefmt.WriteCSV(w, header, rows)
}

// WriteCSV emits the contention rows.
func (r ContentionResult) WriteCSV(w io.Writer) error {
	header := []string{"curve", "grid", "acd", "max_link", "mean_link"}
	var rows [][]string
	for c, curve := range r.Curves {
		rows = append(rows,
			[]string{curve, "mesh", f(r.MeshACD[c]), f(r.MeshMaxLoad[c]), f(r.MeshMeanLoad[c])},
			[]string{curve, "torus", f(r.TorusACD[c]), f(r.TorusMaxLoad[c]), f(r.TorusMeanLoad[c])})
	}
	return tablefmt.WriteCSV(w, header, rows)
}
