package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"sfcacd/internal/experiments"
	"sfcacd/internal/obs"
)

// maxBodyBytes bounds a request body; parameter JSON is tiny.
const maxBodyBytes = 1 << 20

// maxTraceIDLen bounds an honored X-Trace-Id header.
const maxTraceIDLen = 64

// Envelope is the JSON body of a successful experiment response. Raw
// fields replay the cached bytes verbatim, so the body of a cache hit
// is byte-identical to the body of the miss that produced it; only
// the X-Cache header differs.
type Envelope struct {
	Experiment string          `json:"experiment"`
	Key        string          `json:"key"`
	Params     json.RawMessage `json:"params"`
	Result     json.RawMessage `json:"result"`
	Manifest   json.RawMessage `json:"manifest,omitempty"`
}

// errorBody is the JSON body of a failed request.
type errorBody struct {
	Error      string `json:"error"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	// Timeout is the per-request compute deadline that a 504 ran into,
	// as a Go duration string.
	Timeout string `json:"timeout,omitempty"`
}

// listEntry is one experiment in the GET /v1/experiments listing.
type listEntry struct {
	Name        string             `json:"name"`
	Description string             `json:"description"`
	PaperParams experiments.Params `json:"paper_params"`
	// ScaledParams is the default configuration a POST without a body
	// runs (the paper preset scaled down defaultScaleSteps times).
	ScaledParams experiments.Params `json:"scaled_params"`
}

// defaultScaleSteps matches acdbench's default -scale: POSTed bodies
// override a preset scaled down this many steps unless ?preset=paper.
const defaultScaleSteps = 2

// NewHandler returns the daemon's HTTP API over s:
//
//	POST /v1/experiments/{name}   run (or serve from cache) one experiment
//	GET  /v1/experiments          registry listing
//	GET  /healthz                 liveness
//	GET  /readyz                  readiness (503 once draining)
//	GET  /metrics                 Prometheus text exposition
//	                              (JSON snapshot via Accept: application/json)
//	GET  /metrics.json            obs registry snapshot, always JSON
//	GET  /debug/traces            retained-trace index
//	GET  /debug/traces/{id}       one trace's span tree
//	GET  /debug/pprof/...         pprof handlers
//
// Every non-/debug/ request is traced: the response carries
// X-Trace-Id (honored from the request when present), and completed
// traces are offered to the server's tail-sampling trace store.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments/{name}", s.handleRun)
	mux.HandleFunc("GET /v1/experiments", handleList)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obs.Default().Snapshot())
	})
	mux.HandleFunc("GET /debug/traces", s.handleTraceIndex)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.withTracing(mux)
}

// withTracing gives every non-/debug/ request a request-scoped trace:
// an id (honored from X-Trace-Id, else drawn from the trace store's
// deterministic source), a root span the handler goroutine attaches
// to, and — after the response is written — a tail-sampling offer to
// the retention store. /debug/ endpoints are exempt so reading traces
// does not mint traces.
func (s *Server) withTracing(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/debug/") {
			next.ServeHTTP(w, r)
			return
		}
		id := sanitizeTraceID(r.Header.Get("X-Trace-Id"))
		if id == "" {
			id = s.traces.NewID()
		}
		tr := obs.NewTrace(id, r.Method+" "+r.URL.Path, s.traces.Now())
		w.Header().Set("X-Trace-Id", id)
		detach := tr.Root().Attach()
		rec := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
		detach()
		tr.Finish(rec.status, s.traces.Now())
		s.traces.Offer(tr)
	})
}

// sanitizeTraceID returns the id if it is safe to echo into headers,
// logs, and URL paths — ASCII letters, digits, '-', '_', at most
// maxTraceIDLen — and "" otherwise.
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > maxTraceIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return ""
		}
	}
	return id
}

// statusWriter captures the response status for trace finalization,
// forwarding Flush and exposing Unwrap like the daemon's logging
// recorder so streaming handlers behind the middleware keep working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// handleReady answers GET /readyz: 200 while serving, 503 once
// SetDraining has run, so fleet load balancers stop routing here
// before Shutdown closes the listener.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics answers GET /metrics, content-negotiated: Prometheus
// text exposition by default, the JSON registry snapshot when the
// Accept header asks for application/json.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := obs.Default().Snapshot()
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// handleTraceIndex answers GET /debug/traces with the retained-trace
// index, newest first.
func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.traces.List()})
}

// handleTraceGet answers GET /debug/traces/{id} with one trace's full
// span tree. Traces of still-running detached computations render
// their current, partially complete state.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no retained trace %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, tr.Snapshot(s.traces.Now()))
}

// handleRun answers POST /v1/experiments/{name}. The body, when
// present, is a partial experiments.Params JSON object merged over the
// preset selected by ?preset=scaled (default) or ?preset=paper.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	spec, ok := experiments.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown experiment %q", name)})
		return
	}
	params := spec.Paper
	switch preset := r.URL.Query().Get("preset"); preset {
	case "", "scaled":
		params = params.Scale(defaultScaleSteps)
	case "paper":
	default:
		writeError(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown preset %q (use scaled or paper)", preset)})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	// io.EOF means an absent body: run the preset as-is.
	if err := dec.Decode(&params); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad params body: %v", err)})
		return
	}

	resp, err := s.Do(r.Context(), name, params)
	if err != nil {
		writeDoError(w, r, err)
		return
	}
	w.Header().Set("X-Cache", string(resp.Status))
	writeJSON(w, http.StatusOK, Envelope{
		Experiment: resp.Entry.Experiment,
		Key:        resp.Entry.Key.String(),
		Params:     resp.Entry.Params,
		Result:     resp.Entry.Result,
		Manifest:   resp.Entry.Manifest,
	})
}

// writeDoError maps Server.Do errors onto HTTP statuses. Every error
// body goes through writeError — one encoding path, every response
// with Content-Length.
func writeDoError(w http.ResponseWriter, r *http.Request, err error) {
	var overload *OverloadError
	var deadline *DeadlineError
	switch {
	case errors.Is(err, ErrUnknownExperiment):
		writeError(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrInvalidParams):
		writeError(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), QueueDepth: overload.QueueDepth})
	case errors.As(err, &deadline):
		writeError(w, http.StatusGatewayTimeout, errorBody{Error: err.Error(), Timeout: deadline.Timeout.String()})
	case r.Context().Err() != nil:
		// The client is gone; nothing useful can be written. 499 is
		// the de-facto "client closed request" status.
		w.WriteHeader(499)
	default:
		writeError(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// handleList answers GET /v1/experiments from the registry.
func handleList(w http.ResponseWriter, r *http.Request) {
	specs := experiments.Registry()
	out := make([]listEntry, len(specs))
	for i, spec := range specs {
		out[i] = listEntry{
			Name:         spec.Name,
			Description:  spec.Desc,
			PaperParams:  spec.Paper,
			ScaledParams: spec.Paper.Scale(defaultScaleSteps),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// writeJSON writes v as a JSON response with Content-Length.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshal of the response types cannot fail in practice; keep a
		// non-recursive fallback for safety.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)+1))
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
}

// writeError writes a JSON error body through the same path as every
// success body.
func writeError(w http.ResponseWriter, status int, body errorBody) {
	writeJSON(w, status, body)
}
