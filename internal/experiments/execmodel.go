package experiments

import (
	"context"
	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/execmodel"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// ExecModelResult holds the ACD-validation study: per curve, the NFI
// ACD alongside the bulk-synchronous modeled makespan and total cost,
// so the correlation the ACD metric promises can be inspected
// directly.
type ExecModelResult struct {
	Curves []string
	// ACD is the plain near-field ACD.
	ACD []float64
	// Makespan is max over processors of alpha*sends + beta*hops +
	// gamma*work.
	Makespan []float64
	// MaxSends is the message count of the busiest processor.
	MaxSends []float64
}

// Matrix renders the study.
func (r ExecModelResult) Matrix() *tablefmt.Matrix {
	m := &tablefmt.Matrix{
		Title:  "ACD vs modeled execution time (NFI, torus)",
		Corner: "SFC",
		Cols:   []string{"ACD", "makespan", "max sends"},
		Rows:   r.Curves,
	}
	for i := range r.Curves {
		m.Cells = append(m.Cells, []float64{r.ACD[i], r.Makespan[i], r.MaxSends[i]})
	}
	return m
}

// RunExecModel computes ACD and modeled makespan per curve for a
// uniform input on a torus with the default cost parameters.
func RunExecModel(ctx context.Context, p Params) (ExecModelResult, error) {
	if err := p.Validate(); err != nil {
		return ExecModelResult{}, err
	}
	curves := sfc.All()
	n := len(curves)
	res := ExecModelResult{
		Curves:   curveNames(curves),
		ACD:      make([]float64, n),
		Makespan: make([]float64, n),
		MaxSends: make([]float64, n),
	}
	type cellOut struct {
		acd, makespan, maxSends float64
	}
	groups := make([]shared[[]geom.Point], p.Trials)
	outs := make([]cellOut, p.Trials*n)
	pool := sweepPool(p.Workers, len(outs))
	inner := innerWorkers(p.Workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		c := cell % n
		trial := cell / n
		pts, err := groups[trial].get(func() ([]geom.Point, error) {
			return samplePoints(dist.Uniform, p, trial)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		a, err := acd.Assign(pts, curve, p.Order, p.P())
		if err != nil {
			return err
		}
		topo := topology.NewTorus(p.ProcOrder, curve)
		opts := fmmmodel.NFIOptions{Radius: p.Radius, Metric: geom.MetricChebyshev, Workers: inner}
		tally := execmodel.CollectNFI(a, topo, opts)
		ms, err := tally.Makespan(execmodel.DefaultCost)
		if err != nil {
			return err
		}
		var maxSends uint64
		for _, s := range tally.Sends {
			if s > maxSends {
				maxSends = s
			}
		}
		o := cellOut{acd: fmmmodel.NFI(a, topo, opts).ACD(), makespan: ms, maxSends: float64(maxSends)}
		a.Release()
		outs[cell] = o
		return nil
	})
	if err != nil {
		return ExecModelResult{}, err
	}
	f := 1 / float64(p.Trials)
	for cell, o := range outs {
		c := cell % n
		res.ACD[c] += o.acd * f
		res.Makespan[c] += o.makespan * f
		res.MaxSends[c] += o.maxSends * f
	}
	return res, nil
}
