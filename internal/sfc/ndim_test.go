package sfc

import (
	"testing"

	"sfcacd/internal/geom"
)

func TestMortonNDMatches2D(t *testing.T) {
	m := MortonND{N: 2}
	const order = 5
	side := geom.Side(order)
	coords := make([]uint32, 2)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			coords[0], coords[1] = x, y
			want := Morton.Index(order, geom.Pt(x, y))
			if got := m.IndexND(order, coords); got != want {
				t.Fatalf("MortonND(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestNDRoundTrip(t *testing.T) {
	curves := []NDCurve{
		MortonND{N: 2}, MortonND{N: 3}, MortonND{N: 4},
		HilbertND{N: 2}, HilbertND{N: 3}, HilbertND{N: 4},
	}
	for _, c := range curves {
		for order := uint(1); order <= 3; order++ {
			total := uint64(1) << (uint(c.Dims()) * order)
			out := make([]uint32, c.Dims())
			seen := make(map[string]bool, total)
			for d := uint64(0); d < total; d++ {
				c.CoordsND(order, d, out)
				key := ""
				for _, v := range out {
					if v >= geom.Side(order) {
						t.Fatalf("%s order %d: coord %d out of range", c.Name(), order, v)
					}
					key += string(rune(v)) + ","
				}
				if seen[key] {
					t.Fatalf("%s order %d: duplicate cell at d=%d", c.Name(), order, d)
				}
				seen[key] = true
				if got := c.IndexND(order, out); got != d {
					t.Fatalf("%s order %d: round trip %d -> %v -> %d", c.Name(), order, d, out, got)
				}
			}
		}
	}
}

func TestHilbertNDUnitSteps(t *testing.T) {
	// Consecutive Hilbert positions differ by 1 in exactly one
	// coordinate, in any dimension.
	for _, n := range []int{2, 3, 4} {
		h := HilbertND{N: n}
		for order := uint(1); order <= 3; order++ {
			total := uint64(1) << (uint(n) * order)
			if total > 1<<14 {
				continue
			}
			prev := make([]uint32, n)
			cur := make([]uint32, n)
			h.CoordsND(order, 0, prev)
			for d := uint64(1); d < total; d++ {
				h.CoordsND(order, d, cur)
				dist := 0
				for i := 0; i < n; i++ {
					delta := int(cur[i]) - int(prev[i])
					if delta < 0 {
						delta = -delta
					}
					dist += delta
				}
				if dist != 1 {
					t.Fatalf("hilbert%dd order %d: step %d moves L1 distance %d", n, order, d, dist)
				}
				copy(prev, cur)
			}
		}
	}
}

func TestNDNamesAndDims(t *testing.T) {
	if (MortonND{N: 3}).Name() != "morton3d" || (HilbertND{N: 3}).Name() != "hilbert3d" {
		t.Error("unexpected ND names")
	}
	if (MortonND{N: 3}).Dims() != 3 || (HilbertND{N: 4}).Dims() != 4 {
		t.Error("unexpected dims")
	}
}

func TestNDPanics(t *testing.T) {
	cases := []func(){
		func() { MortonND{N: 2}.IndexND(40, []uint32{0, 0}) },     // too many bits
		func() { MortonND{N: 2}.IndexND(3, []uint32{0}) },         // wrong coord count
		func() { HilbertND{N: 2}.CoordsND(3, 0, []uint32{0}) },    // wrong out count
		func() { MortonND{N: 0}.IndexND(3, nil) },                 // bad dims
		func() { HilbertND{N: 3}.IndexND(22, []uint32{0, 0, 0}) }, // 66 bits
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
