// Package dist provides the three input particle distributions used in
// the paper's experiments (§II-C): uniform, bivariate normal (centrally
// clustered, Figure 2(b)), and exponential (skewed into one quadrant,
// Figure 2(c)). Samplers draw integer cells on a 2^k x 2^k spatial
// resolution from a deterministic rng.Rand stream.
package dist

import (
	"fmt"
	"math"

	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
)

// Sampler draws a single random cell on the grid of the given order.
type Sampler interface {
	// Name returns the distribution's canonical lower-case name.
	Name() string
	// Sample draws one cell on the 2^order x 2^order grid.
	Sample(r *rng.Rand, order uint) geom.Point
}

// Canonical sampler singletons with the parameterizations used by the
// experiments.
var (
	// Uniform selects every cell with equal probability.
	Uniform Sampler = uniform{}
	// Normal is a symmetric bivariate normal centered on the grid with
	// sigma = side/8, clipped to the grid by rejection. Particles
	// cluster around the center — the location of the largest
	// discontinuities of the recursive SFCs.
	Normal Sampler = normal{sigmaDiv: 8}
	// Exponential draws both coordinates from an exponential with scale
	// side/8, clipped by rejection, clustering particles in the corner
	// quadrant.
	Exponential Sampler = exponential{scaleDiv: 8}
)

// All returns the three paper distributions in the paper's order.
func All() []Sampler { return []Sampler{Uniform, Normal, Exponential} }

// ByName resolves a sampler by name.
func ByName(name string) (Sampler, error) {
	switch name {
	case "uniform":
		return Uniform, nil
	case "normal", "gaussian", "bivariate-normal":
		return Normal, nil
	case "exponential", "exp":
		return Exponential, nil
	}
	return nil, fmt.Errorf("dist: unknown distribution %q", name)
}

type uniform struct{}

func (uniform) Name() string { return "uniform" }

func (uniform) Sample(r *rng.Rand, order uint) geom.Point {
	side := geom.Side(order)
	return geom.Pt(r.Uint32n(side), r.Uint32n(side))
}

type normal struct {
	sigmaDiv float64
}

func (normal) Name() string { return "normal" }

func (n normal) Sample(r *rng.Rand, order uint) geom.Point {
	side := geom.Side(order)
	mu := float64(side) / 2
	sigma := float64(side) / n.sigmaDiv
	for {
		x := mu + sigma*r.NormFloat64()
		y := mu + sigma*r.NormFloat64()
		if x >= 0 && y >= 0 && x < float64(side) && y < float64(side) {
			return geom.Pt(uint32(x), uint32(y))
		}
	}
}

type exponential struct {
	scaleDiv float64
}

func (exponential) Name() string { return "exponential" }

func (e exponential) Sample(r *rng.Rand, order uint) geom.Point {
	side := geom.Side(order)
	scale := float64(side) / e.scaleDiv
	for {
		x := scale * r.ExpFloat64()
		y := scale * r.ExpFloat64()
		if x < float64(side) && y < float64(side) {
			return geom.Pt(uint32(x), uint32(y))
		}
	}
}

// SampleN draws n cells (duplicates allowed).
func SampleN(s Sampler, r *rng.Rand, order uint, n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = s.Sample(r, order)
	}
	return out
}

// SampleUnique draws n distinct cells by rejection, honouring the
// paper's assumption that a cell at the finest resolution contains at
// most one particle. It fails if n exceeds the number of cells or if
// the distribution is so concentrated that rejection stalls.
func SampleUnique(s Sampler, r *rng.Rand, order uint, n int) ([]geom.Point, error) {
	cells := geom.Cells(order)
	if uint64(n) > cells {
		return nil, fmt.Errorf("dist: cannot place %d unique particles in %d cells", n, cells)
	}
	side := geom.Side(order)
	occupied := newBitmap(cells)
	out := make([]geom.Point, 0, n)
	// Generous stall guard: the worst-case experiment (normal at ~25%
	// overall fill with a saturated center) needs only a few rejections
	// per particle.
	maxAttempts := 200*uint64(n) + 100000
	var attempts uint64
	for len(out) < n {
		if attempts++; attempts > maxAttempts {
			return nil, fmt.Errorf("dist: %s sampler stalled after %d attempts placing %d/%d particles",
				s.Name(), attempts, len(out), n)
		}
		p := s.Sample(r, order)
		id := geom.CellID(p, side)
		if occupied.testAndSet(id) {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}

// bitmap is a dense bit set over cell ids.
type bitmap []uint64

func newBitmap(bits uint64) bitmap {
	return make(bitmap, (bits+63)/64)
}

// testAndSet sets bit i and reports whether it was already set.
func (b bitmap) testAndSet(i uint64) bool {
	w, mask := i/64, uint64(1)<<(i%64)
	old := b[w]&mask != 0
	b[w] |= mask
	return old
}

// Moments summarizes a sample cloud; used by tests and by cmd/sfcviz to
// regenerate Figure 2 descriptively.
type Moments struct {
	MeanX, MeanY float64
	StdX, StdY   float64
}

// ComputeMoments returns per-axis mean and standard deviation.
func ComputeMoments(pts []geom.Point) Moments {
	if len(pts) == 0 {
		return Moments{}
	}
	var sx, sy, sxx, syy float64
	for _, p := range pts {
		sx += float64(p.X)
		sy += float64(p.Y)
		sxx += float64(p.X) * float64(p.X)
		syy += float64(p.Y) * float64(p.Y)
	}
	n := float64(len(pts))
	m := Moments{MeanX: sx / n, MeanY: sy / n}
	m.StdX = math.Sqrt(sxx/n - m.MeanX*m.MeanX)
	m.StdY = math.Sqrt(syy/n - m.MeanY*m.MeanY)
	return m
}
