package sfc

import (
	"sort"
	"testing"

	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
)

// oracleSort is the stdlib implementation the radix sort replaced:
// a stable comparator sort of the permutation by key.
func oracleSort(perm []int, keys []uint64) {
	sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
}

func randomKeys(n int, spread uint64, seed uint64) []uint64 {
	r := rng.New(seed)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64() % spread
	}
	return keys
}

func identity(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// TestSortPermByKeysMatchesOracle compares the radix sort against the
// stdlib stable sort across sizes straddling the insertion cutoff,
// key spreads dense enough to force duplicates (the stability-visible
// case), and degenerate orders.
func TestSortPermByKeysMatchesOracle(t *testing.T) {
	sizes := []int{0, 1, 2, 17, radixCutoff - 1, radixCutoff, radixCutoff + 1, 1000, 5000}
	spreads := []uint64{1, 7, 1 << 8, 1 << 16, 1 << 40, 1 << 63}
	for _, n := range sizes {
		for _, spread := range spreads {
			keys := randomKeys(n, spread, uint64(n)*31+spread)
			got := identity(n)
			want := identity(n)
			SortPermByKeys(got, keys)
			oracleSort(want, keys)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d spread=%d: perm[%d] = %d, want %d (stability or ordering broken)",
						n, spread, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSortPermByKeysPresorted checks already-sorted and reverse-sorted
// inputs, which exercise the trivial-pass skip.
func TestSortPermByKeysPresorted(t *testing.T) {
	n := 3000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) << 20 // only bytes 2..4 vary: most passes trivial
	}
	got := identity(n)
	SortPermByKeys(got, keys)
	for i := range got {
		if got[i] != i {
			t.Fatalf("sorted input permuted: perm[%d] = %d", i, got[i])
		}
	}
	for i := range keys {
		keys[i] = uint64(n-i) << 20
	}
	got = identity(n)
	want := identity(n)
	SortPermByKeys(got, keys)
	oracleSort(want, keys)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reverse input: perm[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestSortPermByKeysAllEqual pins stability directly: equal keys must
// keep input order.
func TestSortPermByKeysAllEqual(t *testing.T) {
	for _, n := range []int{radixCutoff / 2, radixCutoff * 4} {
		keys := make([]uint64, n)
		got := identity(n)
		SortPermByKeys(got, keys)
		for i := range got {
			if got[i] != i {
				t.Fatalf("n=%d: equal keys reordered: perm[%d] = %d", n, i, got[i])
			}
		}
	}
}

// TestSortPointsKeysReturnsInputOrderKeys checks the second return
// value: keys indexed by input position, matching curve.Index.
func TestSortPointsKeysReturnsInputOrderKeys(t *testing.T) {
	c, _ := ByName("hilbert")
	const order = 5
	r := rng.New(99)
	side := geom.Side(order)
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Pt(r.Uint32n(side), r.Uint32n(side))
	}
	perm, keys := SortPointsKeys(c, order, pts)
	if len(perm) != len(pts) || len(keys) != len(pts) {
		t.Fatalf("lengths: perm=%d keys=%d, want %d", len(perm), len(keys), len(pts))
	}
	for i, p := range pts {
		if want := c.Index(order, p); keys[i] != want {
			t.Fatalf("keys[%d] = %d, want Index = %d", i, keys[i], want)
		}
	}
	for i := 1; i < len(perm); i++ {
		a, b := keys[perm[i-1]], keys[perm[i]]
		if a > b {
			t.Fatalf("perm not sorted at %d: %d > %d", i, a, b)
		}
		if a == b && perm[i-1] > perm[i] {
			t.Fatalf("perm not stable at %d", i)
		}
	}
}
