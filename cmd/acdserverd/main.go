// Command acdserverd serves the experiment registry over HTTP: each
// deterministic experiment is computed once per distinct parameter
// set, cached by content address, and replayed byte-identically on
// every later request. Concurrent identical requests coalesce onto a
// single computation; a bounded worker pool with an admission queue
// applies backpressure instead of unbounded latency.
//
// Multiple daemons form a serving fleet: a consistent-hash ring over
// the content-address key assigns every request an owner replica,
// requests landing elsewhere are proxied to the owner, and local cache
// misses peer-fill from ring siblings before recomputing. Fleet mode
// is enabled by -advertise; a fleet of one behaves exactly like the
// plain daemon.
//
// Usage:
//
//	acdserverd                                # listen on :8080
//	acdserverd -addr :9000 -workers 4         # bounded pool
//	acdserverd -cachedir /var/cache/sfcacd    # persistent result store
//	acdserverd -addr :8081 -node-id a -advertise http://10.0.0.1:8081 \
//	           -peers b=http://10.0.0.2:8081  # two-node fleet member
//
// API:
//
//	POST /v1/experiments/{name}   JSON Params in (optional; merged over
//	                              ?preset=scaled|paper), result +
//	                              manifest out, X-Cache: hit|miss|coalesced|peer
//	POST /v1/batch                parameter sweep fan-out; streams each
//	                              cell completion as SSE (NDJSON via
//	                              Accept: application/x-ndjson)
//	GET  /v1/experiments          registry listing
//	GET  /internal/v1/peek/{key}  fleet peer protocol: presence probe
//	GET  /internal/v1/result/{key} fleet peer protocol: entry transfer
//	GET  /healthz                 liveness (+ node id and membership in fleet mode)
//	GET  /readyz                  readiness (503 once shutdown begins)
//	GET  /metrics                 Prometheus text exposition (JSON via
//	                              Accept: application/json or /metrics.json)
//	GET  /debug/traces            tail-sampled trace index
//	GET  /debug/traces/{id}       one request's span tree
//	GET  /debug/pprof/            pprof handlers
//
// Every request is traced: responses carry X-Trace-Id (honored from
// the request header when present), request logs carry trace_id, and
// errored/slow/sampled traces are retained for /debug/traces.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sfcacd/internal/faultinject"
	"sfcacd/internal/fleet"
	"sfcacd/internal/obs/tracestore"
	"sfcacd/internal/resultcache"
	"sfcacd/internal/serve"
)

// peerList collects repeated -peers flags (each itself may be a
// comma-separated list of "id=url" or bare "url" members).
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*p = append(*p, part)
		}
	}
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 0, "concurrent experiment computations (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 0, "admission queue bound beyond the worker pool (0 = 64)")
		cacheBytes = flag.Int64("cache-bytes", 0, "in-memory result cache budget in bytes (0 = 256 MiB)")
		cacheDir   = flag.String("cachedir", "", "also persist results in this content-addressed directory")
		computeTO  = flag.Duration("compute-timeout", serve.DefaultComputeTimeout,
			"per-request compute deadline before a 504 (negative disables)")
		faults = flag.String("faults", "",
			"fault-injection spec, comma-separated site=prob[:delay] (e.g. resultcache.disk.get=0.1,serve.compute=1:250ms)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for the deterministic fault injector")
		traceCap  = flag.Int("trace-capacity", tracestore.DefaultCapacity,
			"retained error/sampled traces for /debug/traces")
		traceSlow = flag.Int("trace-slowest", tracestore.DefaultSlowestK,
			"always-retained slowest traces (negative disables)")
		traceProb = flag.Float64("trace-sample", tracestore.DefaultSampleProb,
			"keep probability for healthy traces (negative disables)")
		traceSeed = flag.Uint64("trace-seed", 0,
			"seed for the trace sampling/ID streams (0 = from the clock)")
		verbose = flag.Bool("v", false, "enable debug-level logging")

		nodeID    = flag.String("node-id", "", "this node's name on the fleet ring (default: the advertise URL)")
		advertise = flag.String("advertise", "", "base URL peers reach this node at; enables fleet mode")
		peerTO    = flag.Duration("peer-timeout", fleet.DefaultTimeout, "deadline for one peer cache-protocol exchange")
		rateLimit = flag.Float64("rate-limit", 0, "per-client requests/second on /v1/ (0 = unlimited; batches cost one per cell)")
		rateBurst = flag.Int("rate-burst", 0, "per-client token-bucket capacity (0 = twice -rate-limit)")
	)
	var peers peerList
	flag.Var(&peers, "peers", "fleet members as id=url or url, comma-separated or repeated")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	injector, err := faultinject.Parse(*faults, *faultSeed)
	if err != nil {
		logger.Error("faults", "err", err)
		return 1
	}
	if injector != nil {
		logger.Warn("fault injection armed", "spec", *faults, "seed", *faultSeed)
	}

	opts := serve.Options{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheBytes:     *cacheBytes,
		ComputeTimeout: *computeTO,
		Faults:         injector,
		RateLimit:      *rateLimit,
		RateBurst:      *rateBurst,
		Traces: tracestore.New(tracestore.Options{
			Capacity:   *traceCap,
			SlowestK:   *traceSlow,
			SampleProb: *traceProb,
			Seed:       *traceSeed,
		}),
	}
	if *cacheDir != "" {
		disk, err := resultcache.OpenDisk(*cacheDir)
		if err != nil {
			logger.Error("cachedir", "err", err)
			return 1
		}
		disk.SetFaults(injector)
		opts.Disk = disk
		logger.Info("persistent result store open", "dir", disk.Dir())
	}
	server := serve.New(opts)

	handler := serve.NewHandler(server)
	if *advertise != "" {
		node, err := fleet.New(fleet.Config{
			NodeID:    *nodeID,
			Advertise: *advertise,
			Peers:     peers,
			Timeout:   *peerTO,
			Faults:    injector,
			Store:     server,
		})
		if err != nil {
			logger.Error("fleet", "err", err)
			return 1
		}
		server.SetPeers(node)
		mux := http.NewServeMux()
		mux.Handle("/internal/v1/", node.Handler())
		mux.Handle("/", handler)
		handler = mux
		ids := make([]string, 0, len(node.Members()))
		for _, m := range node.Members() {
			ids = append(ids, m.ID)
		}
		logger.Info("fleet member", "node", node.Self().ID,
			"advertise", node.Self().URL, "members", strings.Join(ids, ","))
	} else if len(peers) > 0 {
		logger.Error("fleet", "err", "-peers requires -advertise (the URL peers reach this node at)")
		return 1
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(logger, handler),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	logger.Info("acdserverd listening", "addr", *addr,
		"workers", server.Workers(), "queue", server.QueueDepth(),
		"compute_timeout", *computeTO)

	select {
	case err := <-errc:
		logger.Error("serve", "err", err)
		return 1
	case <-ctx.Done():
	}

	// Shutdown stops accepting and waits for in-flight requests;
	// Drain then waits for detached computations (whose waiters may
	// already be gone) to finish their cache writes. A timeout in
	// either is an unclean stop and must exit nonzero so orchestrators
	// notice, instead of reporting a drained shutdown that wasn't.
	logger.Info("shutting down")
	server.SetDraining() // flips /readyz to 503 so balancers stop routing here
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown timed out with requests in flight", "err", err)
		return 1
	}
	if err := server.Drain(shutdownCtx); err != nil {
		logger.Error("shutdown timed out with computations running", "err", err)
		return 1
	}
	logger.Info("drained cleanly")
	return 0
}

// logRequests logs one line per completed request: debug level for
// 2xx, info for everything else, so failures surface without -v. The
// trace_id field joins the log line to /debug/traces/{id}.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		level := slog.LevelDebug
		if rec.status < 200 || rec.status >= 300 {
			level = slog.LevelInfo
		}
		logger.Log(r.Context(), level, "request",
			"method", r.Method, "path", r.URL.Path, "status", rec.status,
			"cache", rec.Header().Get("X-Cache"),
			"trace_id", rec.Header().Get("X-Trace-Id"),
			"dur", time.Since(start).Round(time.Microsecond))
	})
}

// statusRecorder captures the response status for logging. Embedding
// only the interface would hide the underlying writer's optional
// interfaces, so Flush is forwarded explicitly (streaming and pprof
// responses assert http.Flusher) and Unwrap exposes the wrapped writer
// to http.ResponseController for everything else.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }
