package commmat

import (
	"math/rand"
	"sync"
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/topology"
)

// refMatrix is the brute-force reference: a plain map from packed
// (src, dst) to count.
type refMatrix map[uint64]uint32

func (r refMatrix) add(src, dst int32) {
	r[uint64(uint32(src))<<32|uint64(uint32(dst))]++
}

// randomEvents yields a deterministic event stream over p ranks whose
// deltas mix tight locality (the banded fast path) with occasional far
// jumps (the overflow path), including dst < src pairs.
func randomEvents(seed int64, p, n int) [][2]int32 {
	rng := rand.New(rand.NewSource(seed))
	events := make([][2]int32, n)
	for i := range events {
		src := int32(rng.Intn(p))
		var dst int32
		switch rng.Intn(10) {
		case 0: // far jump anywhere
			dst = int32(rng.Intn(p))
		case 1: // behind the source
			dst = src - int32(rng.Intn(64))
			if dst < 0 {
				dst = 0
			}
		default: // tight forward locality
			dst = src + int32(rng.Intn(48))
			if dst >= int32(p) {
				dst = int32(p) - 1
			}
		}
		events[i] = [2]int32{src, dst}
	}
	return events
}

// checkAgainstRef verifies the matrix against the brute-force map and
// that Visit yields strictly ascending (src, dst) order.
func checkAgainstRef(t *testing.T, m *Matrix, ref refMatrix) {
	t.Helper()
	var events uint64
	seen := 0
	prev := int64(-1)
	m.Visit(func(src, dst int32, n uint32) {
		key := int64(src)<<32 | int64(dst)
		if key <= prev {
			t.Fatalf("Visit order not ascending: (%d,%d) after %d", src, dst, prev)
		}
		prev = key
		want := ref[uint64(uint32(src))<<32|uint64(uint32(dst))]
		if n != want {
			t.Fatalf("pair (%d,%d): got %d events, want %d", src, dst, n, want)
		}
		seen++
		events += uint64(n)
	})
	if seen != len(ref) {
		t.Fatalf("matrix has %d pairs, reference has %d", seen, len(ref))
	}
	if m.Pairs() != len(ref) || m.Events() != events {
		t.Fatalf("accounting: Pairs=%d Events=%d, want %d/%d", m.Pairs(), m.Events(), len(ref), events)
	}
}

func buildWith(p, workers int, events [][2]int32) *Matrix {
	b := NewBuilder(p, workers)
	for i, e := range events {
		b.Shard(i%workers).Add(e[0], e[1])
	}
	return b.Finalize()
}

// TestBuilderMatchesBruteForce covers every aggregation mode: dense
// final form, full-grid CSR, banded grid with overflow, a deliberately
// narrow band, and the overflow-only fallback for huge p.
func TestBuilderMatchesBruteForce(t *testing.T) {
	cases := []struct {
		name string
		p, n int
	}{
		{"dense", 64, 5000},            // p*p <= denseCells
		{"fullCSR", 600, 20000},        // full grid, CSR output
		{"banded", 4096, 40000},        // p*p > maxScratchCells: delta band
		{"overflowOnly", 200000, 3000}, // stride rounds to 0
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events := randomEvents(int64(tc.p), tc.p, tc.n)
			ref := refMatrix{}
			for _, e := range events {
				ref.add(e[0], e[1])
			}
			for _, workers := range []int{1, 3} {
				checkAgainstRef(t, buildWith(tc.p, workers, events), ref)
			}
		})
	}
}

// TestBandedHintStaysExact pins that a caller-supplied band narrower
// than the stream's real spread only moves pairs to the overflow path,
// never changes the result.
func TestBandedHintStaysExact(t *testing.T) {
	const p, n = 2000, 30000
	events := randomEvents(7, p, n)
	ref := refMatrix{}
	for _, e := range events {
		ref.add(e[0], e[1])
	}
	b := NewBuilderBanded(p, 2, 64)
	for i, e := range events {
		b.Shard(i%2).Add(e[0], e[1])
	}
	checkAgainstRef(t, b.Finalize(), ref)
}

// TestDeterministicAcrossWorkers: the finalized matrix is identical no
// matter how the stream is sharded.
func TestDeterministicAcrossWorkers(t *testing.T) {
	const p, n = 4096, 30000
	events := randomEvents(11, p, n)
	base := buildWith(p, 1, events)
	for _, workers := range []int{2, 5, 16} {
		m := buildWith(p, workers, events)
		if m.Pairs() != base.Pairs() || m.Events() != base.Events() {
			t.Fatalf("workers=%d: pairs/events diverged", workers)
		}
		type pair struct {
			src, dst int32
			n        uint32
		}
		var a, b []pair
		base.Visit(func(s, d int32, n uint32) { a = append(a, pair{s, d, n}) })
		m.Visit(func(s, d int32, n uint32) { b = append(b, pair{s, d, n}) })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: entry %d diverged: %+v vs %+v", workers, i, a[i], b[i])
			}
		}
	}
}

// TestBuildSerialMatchesBuilder: the convenience path is the builder.
func TestBuildSerialMatchesBuilder(t *testing.T) {
	const p, n = 600, 8000
	events := randomEvents(13, p, n)
	ref := refMatrix{}
	for _, e := range events {
		ref.add(e[0], e[1])
	}
	m := BuildSerial(p, func(emit func(src, dst int32)) {
		for _, e := range events {
			emit(e[0], e[1])
		}
	})
	checkAgainstRef(t, m, ref)
}

// TestContractEquivalence: Contract == per-event accumulation,
// ContractTable == Contract, and the Sym variants weight each pair
// exactly twice.
func TestContractEquivalence(t *testing.T) {
	for _, p := range []int{64, 600, 4096} {
		events := randomEvents(int64(p)+1, p, 20000)
		m := buildWith(p, 2, events)
		topo := topology.NewBus(p)

		var direct acd.Accumulator
		for _, e := range events {
			direct.Add(topo.Distance(int(e[0]), int(e[1])))
		}
		var viaMatrix, viaTable, sym, symTable acd.Accumulator
		m.Contract(topo, &viaMatrix)
		dt := topology.NewDistanceTable(topo)
		m.ContractTable(dt, &viaTable)
		m.ContractSym(topo, &sym)
		m.ContractTableSym(dt, &symTable)

		if viaMatrix != direct {
			t.Fatalf("p=%d: Contract %+v != direct %+v", p, viaMatrix, direct)
		}
		if viaTable != direct {
			t.Fatalf("p=%d: ContractTable %+v != direct %+v", p, viaTable, direct)
		}
		want := acd.Accumulator{Sum: 2 * direct.Sum, Count: 2 * direct.Count, Zeros: 2 * direct.Zeros}
		if sym != want || symTable != want {
			t.Fatalf("p=%d: Sym contraction %+v / %+v != doubled %+v", p, sym, symTable, want)
		}
	}
}

// TestConcurrentShards drives all shards from separate goroutines —
// the case the race detector must bless.
func TestConcurrentShards(t *testing.T) {
	const p, workers, perWorker = 4096, 8, 5000
	b := NewBuilder(p, workers)
	ref := refMatrix{}
	streams := make([][][2]int32, workers)
	for w := range streams {
		streams[w] = randomEvents(int64(100+w), p, perWorker)
		for _, e := range streams[w] {
			ref.add(e[0], e[1])
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := b.Shard(w)
			for _, e := range streams[w] {
				s.Add(e[0], e[1])
			}
		}(w)
	}
	wg.Wait()
	checkAgainstRef(t, b.Finalize(), ref)
}
