// rankmapping demonstrates the paper's second, emerging use-case for
// space-filling curves: assigning ranks to the processors of a
// physical network (processor-order SFCs, §I). It compares how each
// placement curve maps a skewed FMM workload onto a mesh — the
// scenario of a many-core chip where the programmer controls core
// labeling.
//
// Run with: go run ./examples/rankmapping
package main

import (
	"fmt"
	"log"

	"sfcacd"
)

func main() {
	const (
		order     = 9 // 512x512 resolution
		particles = 20000
		procOrder = 4 // 256 cores on a 16x16 mesh
	)
	// A skewed input: the exponential distribution clusters particles
	// in one quadrant, the hardest case for naive placements.
	pts, err := sfcacd.SampleUnique(sfcacd.Exponential, sfcacd.NewRand(11), order, particles)
	if err != nil {
		log.Fatal(err)
	}
	// Particle ordering is fixed (Hilbert, the paper's recommendation);
	// only the processor placement varies.
	a, err := sfcacd.Assign(pts, sfcacd.Hilbert, order, 1<<(2*procOrder))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("exponential input, hilbert particle order, %d-core mesh\n\n", 1<<(2*procOrder))
	fmt.Printf("%-9s  %10s  %10s  %12s\n", "placement", "NFI ACD", "FFI ACD", "broadcast ACD")
	for _, placement := range sfcacd.Curves() {
		mesh := sfcacd.NewMesh(procOrder, placement)
		nfi := sfcacd.NFI(a, mesh, sfcacd.NFIOptions{Radius: 1})
		ffi := sfcacd.FFI(a, mesh, sfcacd.FFIOptions{}).Total()
		bcast := sfcacd.Broadcast(mesh, 0)
		fmt.Printf("%-9s  %10.3f  %10.3f  %12.3f\n",
			placement.Name(), nfi.ACD(), ffi.ACD(), bcast.ACD())
	}
	fmt.Println("\nlower is better: a locality-preserving placement keeps chunk-adjacent")
	fmt.Println("ranks physically adjacent, shrinking every hop count")
}
