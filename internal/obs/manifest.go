package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// ManifestSchema identifies the manifest JSON layout. Bump when
// changing field names or semantics.
const ManifestSchema = "sfcacd/run-manifest/v1"

// Manifest is the JSON artifact a benchmark run emits: what ran, with
// which parameters, how long each phase took, and what the metric
// registries observed. It is the expected before/after evidence format
// for performance PRs (see README, "Profiling and run manifests").
//
// Field order is fixed by this struct and map keys marshal sorted, so
// two manifests with equal values are byte-identical.
type Manifest struct {
	Schema      string             `json:"schema"`
	Tool        string             `json:"tool,omitempty"`
	CreatedAt   string             `json:"created_at,omitempty"`
	Env         *Env               `json:"env,omitempty"`
	Experiments []ExperimentRecord `json:"experiments,omitempty"`
	Metrics     Snapshot           `json:"metrics"`
	Mem         *MemPeaks          `json:"mem,omitempty"`
}

// Env records the execution environment.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// ExperimentRecord is one experiment's entry: its parameters, total
// wall time, and collected phase tree.
type ExperimentRecord struct {
	Name   string          `json:"name"`
	Params any             `json:"params,omitempty"`
	WallNs int64           `json:"wall_ns"`
	Phases []PhaseSnapshot `json:"phases,omitempty"`
}

// MemPeaks holds peak and cumulative runtime.MemStats figures, folded
// over every ObserveMemStats call.
type MemPeaks struct {
	PeakHeapAllocBytes uint64 `json:"peak_heap_alloc_bytes"`
	PeakSysBytes       uint64 `json:"peak_sys_bytes"`
	TotalAllocBytes    uint64 `json:"total_alloc_bytes"`
	Mallocs            uint64 `json:"mallocs"`
	NumGC              uint32 `json:"num_gc"`
	GCPauseTotalNs     uint64 `json:"gc_pause_total_ns"`
}

// NewManifest returns a manifest stamped with the current time and
// environment.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Schema:    ManifestSchema,
		Tool:      tool,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Env: &Env{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
	}
}

// AddExperiment appends one experiment record.
func (m *Manifest) AddExperiment(name string, params any, wall time.Duration, phases []PhaseSnapshot) {
	m.Experiments = append(m.Experiments, ExperimentRecord{
		Name:   name,
		Params: params,
		WallNs: wall.Nanoseconds(),
		Phases: phases,
	})
}

// ObserveMemStats reads runtime.MemStats and folds it into Mem,
// keeping peaks of the level quantities and the latest cumulative
// ones. Call it after each experiment to approximate peak usage.
func (m *Manifest) ObserveMemStats() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if m.Mem == nil {
		m.Mem = &MemPeaks{}
	}
	if ms.HeapAlloc > m.Mem.PeakHeapAllocBytes {
		m.Mem.PeakHeapAllocBytes = ms.HeapAlloc
	}
	if ms.Sys > m.Mem.PeakSysBytes {
		m.Mem.PeakSysBytes = ms.Sys
	}
	m.Mem.TotalAllocBytes = ms.TotalAlloc
	m.Mem.Mallocs = ms.Mallocs
	m.Mem.NumGC = ms.NumGC
	m.Mem.GCPauseTotalNs = ms.PauseTotalNs
}

// Deterministic strips or zeroes every field whose value depends on
// wall-clock time or the host machine, leaving only seed-reproducible
// content: experiment names, parameters, phase structure and call
// counts, counter and gauge values, and histogram observation counts.
// Used by the golden-file manifest test and by `acdbench
// -deterministic`.
func (m *Manifest) Deterministic() {
	m.CreatedAt = ""
	m.Env = nil
	m.Mem = nil
	for i := range m.Experiments {
		m.Experiments[i].WallNs = 0
		zeroPhaseNs(m.Experiments[i].Phases)
	}
	for name, h := range m.Metrics.Histograms {
		h.Sum = 0
		h.Min = 0
		h.Max = 0
		for i := range h.Counts {
			h.Counts[i] = 0
		}
		m.Metrics.Histograms[name] = h
	}
}

func zeroPhaseNs(phases []PhaseSnapshot) {
	for i := range phases {
		phases[i].Ns = 0
		zeroPhaseNs(phases[i].Children)
	}
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path, failing on any write or
// close error so truncated manifests are never reported as success.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing manifest %s: %w", path, err)
	}
	return f.Close()
}
