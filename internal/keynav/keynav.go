// Package keynav is the key-space neighbor engine: it answers the
// neighbor and interaction-list queries of the FMM communication model
// by arithmetic on a radix-sorted array of Morton keys, in the style
// of Holzmüller's algebraic neighbor-finding, instead of probing a
// dense rank table or walking a quadtree.
//
// The Index holds every particle as a (Morton key, rank) pair sorted
// by key, searched through a small top-level radix directory that cuts
// a binary search to a couple of iterations inside one cache line.
// On top of the sorted finest level, each coarser level is one linear
// scan: the level-l key of a cell is its finest key shifted right by
// 2(Order-l), so the particles of a cell form a contiguous prefix
// group and the cell's representative (minimum owning rank, the §III
// convention) is the group minimum. The per-level slabs replace
// quadtree.RankTree's dense 4^l arrays: memory is proportional to the
// number of occupied cells, not to the grid.
//
// The quadtree/rank-table path remains the differential oracle: for
// every query family here there is a test pinning exact equality of
// the produced event multisets against the tree enumeration.
package keynav

import (
	"fmt"
	"math/bits"
	"sync"

	"sfcacd/internal/geom"
	"sfcacd/internal/obs"
	"sfcacd/internal/sfc"
)

var buildCounter = obs.GetCounter("keynav.builds")

// Engine selects how the accumulation passes resolve neighbor cells
// and enumerate the far-field interaction structure.
type Engine uint8

const (
	// EngineTree is the original path: the assignment's rank table for
	// near-field probes and the dense per-level quadtree.RankTree for
	// the far field. It doubles as the differential oracle.
	EngineTree Engine = iota
	// EngineKeys resolves everything on the sorted Morton key array:
	// no rank table, no tree arenas.
	EngineKeys
	// EngineAuto defers the choice to the accumulation pass, which
	// picks per regime: the tree path where the dense rank table fits
	// its memory budget, the key-space engine where it would not
	// (large orders, 3D grids). Results are bit-identical either way —
	// auto only moves cost.
	EngineAuto
)

// ParseEngine resolves an engine name; "" means EngineTree.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "tree":
		return EngineTree, nil
	case "keys":
		return EngineKeys, nil
	case "auto":
		return EngineAuto, nil
	}
	return EngineTree, fmt.Errorf("keynav: unknown engine %q (want tree, keys, or auto)", s)
}

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineKeys:
		return "keys"
	case EngineAuto:
		return "auto"
	}
	return "tree"
}

// level is one resolution level of the index: occupied cells as sorted
// level keys, their representative ranks, the start of each cell's
// child group in the next-finer level, and a radix directory over the
// keys. At the finest level keys/reps alias the particle arrays and
// childStart is nil.
type level struct {
	keys       []uint64
	reps       []int32
	childStart []int32 // len(keys)+1; indices into the next-finer level
	dir        []int32 // len (1<<dirBits)+1; bucket b covers dir[b]..dir[b+1]
	shift      uint    // key -> directory bucket shift
}

// find returns the position of key k in the level, or -1. The
// directory narrows the search to one bucket (a few entries), so the
// binary search typically resolves within a single cache line.
func (lv *level) find(k uint64) int {
	b := k >> lv.shift
	lo, hi := int(lv.dir[b]), int(lv.dir[b+1])
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if lv.keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(lv.keys) && lv.keys[lo] == k {
		return lo
	}
	return -1
}

// lowerBound returns the first position whose key is >= k (len(keys)
// if none), narrowed through the directory like find.
func (lv *level) lowerBound(k uint64) int {
	b := k >> lv.shift
	lo, hi := int(lv.dir[b]), int(lv.dir[b+1])
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if lv.keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// buildDir (re)builds the level's radix directory for the given total
// key width in bits.
func (lv *level) buildDir(keyBits uint) {
	db := dirBits(len(lv.keys), keyBits)
	lv.shift = keyBits - db
	size := (1 << db) + 1
	lv.dir = grow(lv.dir, size)
	for i := range lv.dir {
		lv.dir[i] = 0
	}
	// Count per bucket (shifted one slot so the prefix sum lands on
	// bucket starts), then accumulate.
	for _, k := range lv.keys {
		lv.dir[(k>>lv.shift)+1]++
	}
	for i := 1; i < size; i++ {
		lv.dir[i] += lv.dir[i-1]
	}
}

// dirBits sizes a directory at roughly one bucket per four keys,
// bounded by the key width and a 4M-entry cap.
func dirBits(n int, keyBits uint) uint {
	b := uint(bits.Len(uint(n)))
	if b > 2 {
		b -= 2
	} else {
		b = 0
	}
	if b > keyBits {
		b = keyBits
	}
	if b > 22 {
		b = 22
	}
	return b
}

// grow returns s resized to n, reallocating only when the capacity is
// short. Contents are unspecified.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Index is the key-space occupancy index of one assignment: particles
// as sorted (Morton key, rank) pairs plus the per-level representative
// slabs. Build with Build; recycle with Release.
type Index struct {
	// Order is the finest resolution order (grid side 2^Order).
	Order uint
	// lv[l] holds level l; lv[Order] is the particle level.
	lv []level
	// keys/ranks back the finest level (also aliased by lv[Order]).
	keys  []uint64
	ranks []int32
}

// indexPool recycles Index slabs between builds: parallel sweep cells
// each build one per assignment, so pooling keeps the allocator out of
// the sweep hot path (same discipline as quadtree's slab pool).
var indexPool = sync.Pool{New: func() any { return new(Index) }}

// Build constructs the index from particle cells and their owning
// ranks (parallel slices, as held by acd.Assignment). The inputs are
// not modified and not retained.
func Build(order uint, pts []geom.Point, ranks []int32) *Index {
	ix := indexPool.Get().(*Index)
	ix.Rebuild(order, pts, ranks)
	return ix
}

// Rebuild refills the index in place from new particle data, reusing
// every slab the previous build left behind. The incremental pipeline
// holds one Index per maintained curve across timesteps and rebuilds
// it on repartition ticks; in-place reuse keeps those rebuilds out of
// both the allocator and the shared build pool.
func (ix *Index) Rebuild(order uint, pts []geom.Point, ranks []int32) {
	if len(pts) != len(ranks) {
		panic("keynav: pts and ranks length mismatch")
	}
	defer obs.StartSpan("keybuild").End()
	buildCounter.Inc()
	n := len(pts)
	ix.Order = order
	ix.keys = grow(ix.keys, n)
	ix.ranks = grow(ix.ranks, n)
	sorted := true
	for i, p := range pts {
		k := sfc.MortonKey(p.X, p.Y)
		ix.keys[i] = k
		ix.ranks[i] = ranks[i]
		if i > 0 && k < ix.keys[i-1] {
			sorted = false
		}
	}
	// Morton particle order arrives sorted; the other curves pay one
	// radix pair sort.
	if !sorted {
		sortPairs(ix.keys, ix.ranks, 2*order)
	}
	ix.buildLevels()
}

// buildLevels derives every coarser level from the finest by one
// linear scan per level over right-shifted keys, taking prefix-group
// minima as representatives.
func (ix *Index) buildLevels() {
	order := ix.Order
	if cap(ix.lv) < int(order)+1 {
		lv := make([]level, order+1)
		copy(lv, ix.lv)
		ix.lv = lv
	}
	ix.lv = ix.lv[:order+1]
	fin := &ix.lv[order]
	fin.keys, fin.reps, fin.childStart = ix.keys, ix.ranks, nil
	fin.buildDir(2 * order)
	for l := int(order) - 1; l >= 0; l-- {
		src := &ix.lv[l+1]
		dst := &ix.lv[l]
		// A parent has at least one child, so the level can only
		// shrink; sizing at the child count avoids a counting pass.
		dst.keys = grow(dst.keys, len(src.keys))[:0]
		dst.reps = grow(dst.reps, len(src.keys))[:0]
		dst.childStart = grow(dst.childStart, len(src.keys)+1)[:0]
		for i, k := range src.keys {
			pk := k >> 2
			if j := len(dst.keys) - 1; j >= 0 && dst.keys[j] == pk {
				if r := src.reps[i]; r < dst.reps[j] {
					dst.reps[j] = r
				}
				continue
			}
			dst.keys = append(dst.keys, pk)
			dst.reps = append(dst.reps, src.reps[i])
			dst.childStart = append(dst.childStart, int32(i))
		}
		dst.childStart = append(dst.childStart, int32(len(src.keys)))
		dst.buildDir(2 * uint(l))
	}
}

// Release returns the index's slabs to the build pool. The index must
// not be used afterwards. Only owners that know the index is dead (the
// sweep scheduler's cells, via acd.Assignment.Release) should call it.
func (ix *Index) Release() {
	if ix == nil {
		return
	}
	indexPool.Put(ix)
}

// N returns the particle count.
func (ix *Index) N() int { return len(ix.keys) }

// LevelLen returns the number of occupied cells at a level.
func (ix *Index) LevelLen(l uint) int { return len(ix.lv[l].keys) }

// RankAt returns the rank owning the particle in the given finest cell,
// or -1 if the cell is empty.
func (ix *Index) RankAt(p geom.Point) int32 {
	fin := &ix.lv[ix.Order]
	if i := fin.find(sfc.MortonKey(p.X, p.Y)); i >= 0 {
		return fin.reps[i]
	}
	return -1
}

// Rep returns the representative (minimum) rank of cell (x, y) at the
// given level, or -1 if the cell is empty — the RankTree.Rep oracle's
// signature, answered by key search.
func (ix *Index) Rep(l uint, x, y uint32) int32 {
	if l > ix.Order {
		panic(fmt.Sprintf("keynav: level %d beyond order %d", l, ix.Order))
	}
	side := geom.Side(l)
	if x >= side || y >= side {
		panic(fmt.Sprintf("keynav: cell (%d,%d) outside level %d", x, y, l))
	}
	if i := ix.lv[l].find(sfc.MortonKey(x, y)); i >= 0 {
		return ix.lv[l].reps[i]
	}
	return -1
}

// nearScan bounds the sequential probe of rankNear before it falls
// back to the directory search: eight keys is one cache line of the
// sorted array.
const nearScan = 8

// rankNear resolves the rank of the cell with key kt, hinted that the
// probe originates from sorted position i. Neighbor cells usually sit
// a handful of positions ahead in key order, so a short forward scan
// answers most probes (including definite misses, when the scan passes
// kt) without touching the directory.
func (ix *Index) rankNear(i int, kt uint64) int32 {
	fin := &ix.lv[ix.Order]
	if kt > fin.keys[i] {
		end := i + nearScan
		if end > len(fin.keys) {
			end = len(fin.keys)
		}
		for j := i + 1; j < end; j++ {
			if kj := fin.keys[j]; kj >= kt {
				if kj == kt {
					return fin.reps[j]
				}
				return -1
			}
		}
		if end == len(fin.keys) {
			return -1
		}
	}
	if j := fin.find(kt); j >= 0 {
		return fin.reps[j]
	}
	return -1
}

// VisitUpperNeighborPairs calls fn(rank, neighborRank) for every
// occupied cell q within metric distance radius of particle i that
// follows i's cell in row-major order, for every particle i in
// [lo, hi). The enumeration mirrors geom.VisitUpperNeighborhood
// exactly (same clamping at the grid edges), so over the full particle
// range the emitted rank pairs are the near-field upper event stream.
// Neighbor cells are reached by dilated-integer arithmetic on the key
// and resolved against the sorted array.
func (ix *Index) VisitUpperNeighborPairs(lo, hi, radius int, m geom.Metric, fn func(rank, neighbor int32)) {
	if radius <= 0 {
		return
	}
	side := int(geom.Side(ix.Order))
	fin := &ix.lv[ix.Order]
	for i := lo; i < hi; i++ {
		x, y := sfc.MortonCoords(fin.keys[i])
		mine := fin.reps[i]
		for dy := 0; dy <= radius; dy++ {
			yq := int(y) + dy
			if yq >= side {
				break
			}
			span := radius
			if m == geom.MetricManhattan {
				span = radius - dy
			}
			x0 := int(x) - span
			if dy == 0 {
				x0 = int(x) + 1
			}
			if x0 < 0 {
				x0 = 0
			}
			x1 := int(x) + span
			if x1 >= side {
				x1 = side - 1
			}
			ypart := sfc.MortonYPart(uint32(yq))
			xpart := sfc.MortonXPart(uint32(x0))
			if dy == 0 {
				// Same-row probes start at x+1, whose key follows the
				// particle's own sorted position: hint from there.
				for xq := x0; xq <= x1; xq++ {
					kt := ypart | xpart
					xpart = sfc.MortonIncX(xpart)
					if r := ix.rankNear(i, kt); r >= 0 {
						fn(mine, r)
					}
				}
				continue
			}
			// Rows above the particle sit far from position i in key
			// order, but the row's own targets ascend, so after one
			// directory placement a cursor rides the row: each next
			// target is resolved by a short forward scan from the
			// previous one, falling back to the directory only when
			// the gap holds more than a cache line of other-row keys.
			c := -1
			for xq := x0; xq <= x1; xq++ {
				kt := ypart | xpart
				xpart = sfc.MortonIncX(xpart)
				j := -1
				if c >= 0 && kt > fin.keys[c] {
					end := c + 1 + nearScan
					if end > len(fin.keys) {
						end = len(fin.keys)
					}
					for t := c + 1; t < end; t++ {
						if fin.keys[t] >= kt {
							j = t
							break
						}
					}
					if j < 0 {
						if end == len(fin.keys) {
							// Every remaining key is below kt; the rest
							// of the row is unoccupied.
							break
						}
						j = fin.lowerBound(kt)
					}
				} else {
					j = fin.lowerBound(kt)
				}
				if j < len(fin.keys) && fin.keys[j] == kt {
					fn(mine, fin.reps[j])
					c = j
				} else {
					c = j - 1
				}
			}
		}
	}
}

// VisitParentLinks calls fn(parentRep, rep) for every occupied cell in
// positions [lo, hi) of level l >= 1 — the interpolation link stream.
// The parent level is walked in lockstep (both levels are sorted by
// key and children form contiguous groups), so after one search to
// place the cursor the pass is two linear scans.
func (ix *Index) VisitParentLinks(l uint, lo, hi int, fn func(parentRep, rep int32)) {
	if l < 1 || lo >= hi {
		return
	}
	cur := &ix.lv[l]
	par := &ix.lv[l-1]
	j := par.find(cur.keys[lo] >> 2)
	for i := lo; i < hi; i++ {
		pk := cur.keys[i] >> 2
		for par.keys[j] != pk {
			j++
		}
		fn(par.reps[j], cur.reps[i])
	}
}

// parentUpper lists the row-major-upper neighbor offsets of a parent
// cell; visiting each unordered pair of Chebyshev-adjacent parents
// exactly once partitions the interaction lists, because every
// interaction-list pair at level l lives between two distinct adjacent
// cells at level l-1 (children of one parent are mutually adjacent and
// never in each other's lists).
var parentUpper = [4]struct{ dx, dy int32 }{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}

// ilCross[o][sa] is the bitmask of child sub-positions sb of the o-th
// upper parent neighbor whose cells are interaction-list partners
// (Chebyshev distance > 1) of the child at sub-position sa. Sub
// positions are the low two key bits: bit 0 = x, bit 1 = y.
var ilCross [4][4]uint8

// sibDelta[sa][o] is the key delta of the o-th upper parent neighbor
// when it stays inside sa's aligned sibling quad (0 when the offset
// crosses the quad boundary and needs a directory probe): incrementing
// an even coordinate only sets the low dilated bit, so the sibling's
// key is the parent's plus the sub-position difference.
var sibDelta = [4][4]uint8{
	{1, 0, 2, 3}, // (even, even): +x, +y, and +x+y are siblings
	{0, 1, 2, 0}, // (odd, even): -x+y and +y are siblings
	{1, 0, 0, 0}, // (even, odd): +x is a sibling
	{0, 0, 0, 0}, // (odd, odd): every upper offset leaves the quad
}

func init() {
	for o, off := range parentUpper {
		for sa := 0; sa < 4; sa++ {
			for sb := 0; sb < 4; sb++ {
				dx := int(2*off.dx) + sb&1 - sa&1
				dy := int(2*off.dy) + sb>>1 - sa>>1
				if max(abs(dx), abs(dy)) > 1 {
					ilCross[o][sa] |= 1 << sb
				}
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// VisitUpperILPairs calls fn(rep, otherRep) once for every unordered
// interaction-list pair of occupied cells at level l >= 2 whose
// parents lie in positions [plo, phi) of level l-1 (the pair is
// attributed to its row-major-lower parent). Instead of scanning the
// 6x6 candidate window around every cell, the pass enumerates adjacent
// parent pairs — four upper neighbor probes per occupied parent — and
// crosses their child groups, which are contiguous runs of the level-l
// slab, filtering sibling-adjacency by the precomputed ilCross masks.
func (ix *Index) VisitUpperILPairs(l uint, plo, phi int, fn func(rep, other int32)) {
	if l < 2 {
		return
	}
	par := &ix.lv[l-1]
	ch := &ix.lv[l]
	pside := int32(geom.Side(l - 1))
	for j := plo; j < phi; j++ {
		kj := par.keys[j]
		px, py := sfc.MortonCoords(kj)
		aLo, aHi := par.childStart[j], par.childStart[j+1]
		sa := kj & 3
		for o, off := range parentUpper {
			var jq int
			if d := sibDelta[sa][o]; d != 0 {
				// The neighbor is a sibling within the same aligned
				// 2x2 quad (always inside the grid): its key is kj+d,
				// and the only keys in (kj, kj+3] are siblings, so the
				// next <= 3 slab entries decide occupancy without a
				// directory probe.
				kt := kj + uint64(d)
				jq = -1
				for t := j + 1; t < len(par.keys) && par.keys[t] <= kt; t++ {
					if par.keys[t] == kt {
						jq = t
						break
					}
				}
			} else {
				qx := int32(px) + off.dx
				qy := int32(py) + off.dy
				if qx < 0 || qx >= pside || qy >= pside {
					continue
				}
				jq = par.find(sfc.MortonKey(uint32(qx), uint32(qy)))
			}
			if jq < 0 {
				continue
			}
			bLo, bHi := par.childStart[jq], par.childStart[jq+1]
			for ai := aLo; ai < aHi; ai++ {
				bm := ilCross[o][ch.keys[ai]&3]
				ra := ch.reps[ai]
				for bi := bLo; bi < bHi; bi++ {
					if bm>>(ch.keys[bi]&3)&1 != 0 {
						fn(ra, ch.reps[bi])
					}
				}
			}
		}
	}
}
