package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"sfcacd/internal/obs"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if err := in.Check("anything"); err != nil {
		t.Errorf("nil injector injected: %v", err)
	}
	if err := in.CheckCtx(context.Background(), "anything"); err != nil {
		t.Errorf("nil injector injected via CheckCtx: %v", err)
	}
}

func TestUnconfiguredSiteNeverInjects(t *testing.T) {
	in := New(1)
	in.Enable("a", 1, Fault{})
	for i := 0; i < 100; i++ {
		if err := in.Check("b"); err != nil {
			t.Fatalf("unconfigured site injected: %v", err)
		}
	}
}

func TestEnableAlwaysInjects(t *testing.T) {
	in := New(1)
	in.Enable("disk.get", 1, Fault{})
	err := in.Check("disk.get")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Check = %v, want ErrInjected", err)
	}
}

func TestEnableCustomError(t *testing.T) {
	want := errors.New("boom")
	in := New(1)
	in.Enable("s", 1, Fault{Err: want})
	if err := in.Check("s"); !errors.Is(err, want) {
		t.Fatalf("Check = %v, want %v", err, want)
	}
}

func TestEnableNInjectsExactly(t *testing.T) {
	in := New(1)
	in.EnableN("s", 3, Fault{})
	injected := 0
	for i := 0; i < 10; i++ {
		if in.Check("s") != nil {
			injected++
		}
	}
	if injected != 3 {
		t.Errorf("EnableN(3) injected %d times, want 3", injected)
	}
}

func TestDisable(t *testing.T) {
	in := New(1)
	in.Enable("s", 1, Fault{})
	in.Disable("s")
	if err := in.Check("s"); err != nil {
		t.Errorf("disabled site injected: %v", err)
	}
}

// TestDeterministicReplay pins the seeding contract: equal seeds give
// equal per-site decision sequences, different seeds give different
// ones, and a site's stream does not depend on draws at other sites.
func TestDeterministicReplay(t *testing.T) {
	pattern := func(in *Injector, site string, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = in.Check(site) != nil
		}
		return out
	}

	a, b := New(42), New(42)
	a.Enable("x", 0.5, Fault{})
	b.Enable("x", 0.5, Fault{})
	// Interleave draws at an unrelated site in b only: x's stream must
	// not shift.
	b.Enable("noise", 0.5, Fault{})
	pa := make([]bool, 64)
	pb := make([]bool, 64)
	for i := range pa {
		pa[i] = a.Check("x") != nil
		b.Check("noise")
		pb[i] = b.Check("x") != nil
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("same-seed streams diverge at draw %d", i)
		}
	}

	c := New(43)
	c.Enable("x", 0.5, Fault{})
	if pc := pattern(c, "x", 64); equalBools(pa, pc) {
		t.Error("different seeds produced identical 64-draw patterns")
	}

	// Sanity: prob 0.5 injects some but not all of 64 draws.
	hits := 0
	for _, v := range pa {
		if v {
			hits++
		}
	}
	if hits == 0 || hits == 64 {
		t.Errorf("prob=0.5 injected %d/64 draws", hits)
	}
}

func equalBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLatencyOnlyFault(t *testing.T) {
	in := New(1)
	in.Enable("slow", 1, Fault{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Check("slow"); err != nil {
		t.Fatalf("latency-only fault returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("Check returned after %v, want >= 20ms", d)
	}
}

func TestCheckCtxAbortsDelay(t *testing.T) {
	in := New(1)
	in.Enable("slow", 1, Fault{Delay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.CheckCtx(ctx, "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CheckCtx = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("CheckCtx did not abort the injected delay")
	}
}

func TestObsCounters(t *testing.T) {
	in := New(7)
	in.EnableN("counted.site", 2, Fault{})
	siteBefore := obs.GetCounter("faultinject.counted.site").Value()
	totalBefore := obs.GetCounter("faultinject.injected").Value()
	for i := 0; i < 5; i++ {
		in.Check("counted.site")
	}
	if got := obs.GetCounter("faultinject.counted.site").Value() - siteBefore; got != 2 {
		t.Errorf("site counter delta = %d, want 2", got)
	}
	if got := obs.GetCounter("faultinject.injected").Value() - totalBefore; got != 2 {
		t.Errorf("total counter delta = %d, want 2", got)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("a=1,b=0.25:150ms", 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Check("a"); !errors.Is(err, ErrInjected) {
		t.Errorf("parsed always-on site a: Check = %v", err)
	}
	in.mu.Lock()
	b := in.sites["b"]
	in.mu.Unlock()
	if b == nil || b.prob != 0.25 || b.fault.Delay != 150*time.Millisecond {
		t.Errorf("parsed site b = %+v", b)
	}

	if in, err := Parse("", 9); in != nil || err != nil {
		t.Errorf("empty spec = (%v, %v), want disabled nil injector", in, err)
	}
	for _, bad := range []string{"noequals", "=1", "a=2", "a=-0.5", "a=0.5:nonsense", "a=x"} {
		if _, err := Parse(bad, 9); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
