package experiments

import (
	"context"
	"sfcacd/internal/acd"
	"sfcacd/internal/contention"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/primitives"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// PrimitivesResult holds the §VII generality study: the ACD of each
// standard communication primitive on a mesh and torus under each
// processor-order curve (placement is the only thing the curve
// changes here).
type PrimitivesResult struct {
	// Patterns are the primitive names (rows).
	Patterns []string
	// Curves are the placement curve names (columns).
	Curves []string
	// Mesh[p][c] and Torus[p][c] are ACD values.
	Mesh  [][]float64
	Torus [][]float64
}

// Matrices renders the two panels.
func (r PrimitivesResult) Matrices() (mesh, torus *tablefmt.Matrix) {
	mk := func(title string, cells [][]float64) *tablefmt.Matrix {
		return &tablefmt.Matrix{
			Title:      title,
			Corner:     "primitive\\SFC",
			Cols:       r.Curves,
			Rows:       r.Patterns,
			Cells:      cells,
			MarkMinima: true,
		}
	}
	return mk("Communication primitives on the mesh (§VII)", r.Mesh),
		mk("Communication primitives on the torus (§VII)", r.Torus)
}

// RunPrimitives evaluates every §VII primitive under every
// processor-order curve at p = 4^ProcOrder. Deterministic: no
// sampling is involved.
func RunPrimitives(procOrder uint) PrimitivesResult {
	curves := sfc.All()
	pats := primitives.Patterns()
	res := PrimitivesResult{
		Curves: curveNames(curves),
		Mesh:   zeroRect(len(pats), len(curves)),
		Torus:  zeroRect(len(pats), len(curves)),
	}
	for _, p := range pats {
		res.Patterns = append(res.Patterns, p.Name)
	}
	for c, curve := range curves {
		mesh := topology.NewMesh(procOrder, curve)
		torus := topology.NewTorus(procOrder, curve)
		for i, p := range pats {
			for g, topo := range []topology.Topology{mesh, torus} {
				acc := p.Run(topo)
				acc.Record()
				// Each primitive event costs one Distance query.
				topology.CountDistanceQueries(acc.Count)
				if g == 0 {
					res.Mesh[i][c] = acc.ACD()
				} else {
					res.Torus[i][c] = acc.ACD()
				}
			}
		}
	}
	return res
}

// ContentionResult extends the ACD with link-congestion statistics
// (future-work item i): NFI traffic routed with XY routing over the
// mesh and torus, per curve (same curve both roles).
type ContentionResult struct {
	Curves []string
	// Per curve: ACD (hops per message) and the max/mean link load.
	MeshACD, MeshMaxLoad, MeshMeanLoad    []float64
	TorusACD, TorusMaxLoad, TorusMeanLoad []float64
}

// Matrix renders the study.
func (r ContentionResult) Matrix() *tablefmt.Matrix {
	m := &tablefmt.Matrix{
		Title:  "NFI contention under XY routing",
		Corner: "SFC",
		Cols: []string{
			"mesh ACD", "mesh max link", "mesh mean link",
			"torus ACD", "torus max link", "torus mean link",
		},
		Rows: r.Curves,
	}
	for i := range r.Curves {
		m.Cells = append(m.Cells, []float64{
			r.MeshACD[i], r.MeshMaxLoad[i], r.MeshMeanLoad[i],
			r.TorusACD[i], r.TorusMaxLoad[i], r.TorusMeanLoad[i],
		})
	}
	return m
}

// RunContention routes the near-field traffic of a uniform input over
// the mesh and torus and reports congestion alongside the ACD.
func RunContention(ctx context.Context, p Params) (ContentionResult, error) {
	if err := p.Validate(); err != nil {
		return ContentionResult{}, err
	}
	curves := sfc.All()
	n := len(curves)
	res := ContentionResult{
		Curves:        curveNames(curves),
		MeshACD:       make([]float64, n),
		MeshMaxLoad:   make([]float64, n),
		MeshMeanLoad:  make([]float64, n),
		TorusACD:      make([]float64, n),
		TorusMaxLoad:  make([]float64, n),
		TorusMeanLoad: make([]float64, n),
	}
	for trial := 0; trial < p.Trials; trial++ {
		pts, err := samplePoints(dist.Uniform, p, trial)
		if err != nil {
			return ContentionResult{}, err
		}
		for c, curve := range curves {
			if err := ctx.Err(); err != nil {
				return ContentionResult{}, err
			}
			a, err := acd.Assign(pts, curve, p.Order, p.P())
			if err != nil {
				return ContentionResult{}, err
			}
			grids := []contention.GridTopology{
				topology.NewMesh(p.ProcOrder, curve),
				topology.NewTorus(p.ProcOrder, curve),
			}
			for g, grid := range grids {
				tr := contention.NewTracker(grid)
				fmmmodel.VisitNFIPairs(a, fmmmodel.NFIOptions{
					Radius: p.Radius, Metric: geom.MetricChebyshev,
				}, tr.Route)
				s := tr.Stats()
				acdVal := 0.0
				if s.Messages > 0 {
					acdVal = float64(s.Hops) / float64(s.Messages)
				}
				f := 1 / float64(p.Trials)
				if g == 0 {
					res.MeshACD[c] += acdVal * f
					res.MeshMaxLoad[c] += float64(s.MaxLinkLoad) * f
					res.MeshMeanLoad[c] += s.MeanLinkLoad * f
				} else {
					res.TorusACD[c] += acdVal * f
					res.TorusMaxLoad[c] += float64(s.MaxLinkLoad) * f
					res.TorusMeanLoad[c] += s.MeanLinkLoad * f
				}
			}
		}
	}
	return res, nil
}
