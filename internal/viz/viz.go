// Package viz renders the paper's illustrative figures as text and
// SVG: curve paths (Figure 1), sampler densities (Figure 2), and
// particle orderings (Figure 3). cmd/sfcviz is a thin wrapper around
// this package.
package viz

import (
	"fmt"
	"strings"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

// ASCIIPath draws the curve as a connected path using 'o' for cells
// and '-'/'|' for unit links, on a (2*side-1)^2 canvas with y growing
// upward (matching the paper's figures). Non-unit jumps (Z and Gray
// discontinuities) are left unconnected.
func ASCIIPath(c sfc.Curve, order uint) string {
	if order > 6 {
		panic("viz: ASCII path limited to order <= 6")
	}
	side := int(geom.Side(order))
	w := 2*side - 1
	canvas := make([][]rune, w)
	for i := range canvas {
		canvas[i] = make([]rune, w)
		for j := range canvas[i] {
			canvas[i][j] = ' '
		}
	}
	var prev geom.Point
	sfc.Walk(c, order, func(d uint64, p geom.Point) {
		canvas[int(p.Y)*2][int(p.X)*2] = 'o'
		if d > 0 {
			dx, dy := int(p.X)-int(prev.X), int(p.Y)-int(prev.Y)
			if dx == 0 && abs(dy) == 1 {
				canvas[int(p.Y)+int(prev.Y)][int(p.X)*2] = '|'
			} else if dy == 0 && abs(dx) == 1 {
				canvas[int(p.Y)*2][int(p.X)+int(prev.X)] = '-'
			}
		}
		prev = p
	})
	var b strings.Builder
	for y := w - 1; y >= 0; y-- {
		b.WriteString(strings.TrimRight(string(canvas[y]), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SVGPath renders the curve as an SVG polyline document.
func SVGPath(c sfc.Curve, order uint, cellPx int) string {
	if cellPx < 1 {
		cellPx = 16
	}
	side := int(geom.Side(order))
	size := side * cellPx
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size)
	b.WriteString(`<polyline fill="none" stroke="black" stroke-width="2" points="`)
	sfc.Walk(c, order, func(d uint64, p geom.Point) {
		fmt.Fprintf(&b, "%d,%d ", int(p.X)*cellPx+cellPx/2, (side-1-int(p.Y))*cellPx+cellPx/2)
	})
	b.WriteString(`"/>` + "\n</svg>\n")
	return b.String()
}

// DensityMap renders an ASCII density shading of n samples from the
// sampler on a 2^order grid, darkest where most samples land.
func DensityMap(s dist.Sampler, seed uint64, order uint, n int) string {
	side := int(geom.Side(order))
	shades := []rune(" .:-=+*#%@")
	r := rng.New(seed)
	counts := make([]int, side*side)
	maxC := 1
	for i := 0; i < n; i++ {
		p := s.Sample(r, order)
		id := int(p.Y)*side + int(p.X)
		counts[id]++
		if counts[id] > maxC {
			maxC = counts[id]
		}
	}
	var b strings.Builder
	for y := side - 1; y >= 0; y-- {
		row := make([]rune, side)
		for x := 0; x < side; x++ {
			row[x] = shades[counts[y*side+x]*(len(shades)-1)/maxC]
		}
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// RankMap renders the linear order a curve assigns to a particle set
// as a grid of ranks ('.' marks empty cells), y growing upward.
func RankMap(c sfc.Curve, order uint, pts []geom.Point) string {
	if order > 6 {
		panic("viz: rank map limited to order <= 6")
	}
	side := int(geom.Side(order))
	perm := sfc.SortPoints(c, order, pts)
	rank := make(map[geom.Point]int, len(pts))
	for ord, i := range perm {
		rank[pts[i]] = ord
	}
	var b strings.Builder
	for y := side - 1; y >= 0; y-- {
		for x := 0; x < side; x++ {
			if v, ok := rank[geom.Pt(uint32(x), uint32(y))]; ok {
				fmt.Fprintf(&b, "%4d", v)
			} else {
				b.WriteString("   .")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// OrderingList formats the particles of pts in the curve's linear
// order, one "(x,y)" per entry.
func OrderingList(c sfc.Curve, order uint, pts []geom.Point) string {
	perm := sfc.SortPoints(c, order, pts)
	parts := make([]string, len(perm))
	for i, idx := range perm {
		parts[i] = pts[idx].String()
	}
	return strings.Join(parts, " ")
}
