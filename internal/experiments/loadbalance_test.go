package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunLoadBalance(t *testing.T) {
	p := testParams
	res, err := RunLoadBalance(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 {
		t.Fatalf("curves %v", res.Curves)
	}
	for c := range res.Curves {
		// Work-weighted chunking must improve (or match) the work
		// imbalance of the skewed input for every curve.
		if res.WorkImbalance[c] > res.CountImbalance[c]+1e-9 {
			t.Errorf("%s: work imbalance %f worse than count %f",
				res.Curves[c], res.WorkImbalance[c], res.CountImbalance[c])
		}
		if res.WorkImbalance[c] < 1 || res.CountImbalance[c] < 1 {
			t.Errorf("%s: imbalance below 1", res.Curves[c])
		}
		// Rebalancing must not blow up the communication metric: the
		// ACD stays in the same ballpark (within 2x).
		if res.WorkACD[c] > 2*res.CountACD[c]+1 {
			t.Errorf("%s: work-balanced ACD %f far above count-balanced %f",
				res.Curves[c], res.WorkACD[c], res.CountACD[c])
		}
	}
	var b strings.Builder
	if err := res.Matrix().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "load balancing") {
		t.Error("title missing")
	}
	bad := p
	bad.Trials = 0
	if _, err := RunLoadBalance(context.Background(), bad); err == nil {
		t.Error("bad params accepted")
	}
}

func TestRunLoadBalanceDeterministic(t *testing.T) {
	a, err := RunLoadBalance(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoadBalance(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Curves {
		if a.WorkACD[c] != b.WorkACD[c] || a.CountImbalance[c] != b.CountImbalance[c] {
			t.Fatal("RunLoadBalance not deterministic")
		}
	}
}
