package obs

import (
	"sync"
	"time"
)

// Tracer builds a hierarchical wall-clock phase tree. Unlike a
// distributed-tracing span store, same-named phases under the same
// parent are merged: starting "sampling" fifteen times under one
// experiment yields a single node with Calls == 15 and the summed
// duration. That keeps run manifests compact and structurally
// deterministic for seeded runs even when call counts are large.
//
// Start/End follow stack (LIFO) discipline on a single goroutine per
// tracer; the experiment drivers are sequential, so this holds by
// construction. The tracer itself is mutex-guarded, so concurrent use
// is memory-safe — interleaved phases from racing goroutines would
// merely nest unpredictably.
type Tracer struct {
	mu      sync.Mutex
	gen     uint64
	root    *phase
	current *phase
}

// phase is one node of the live tree.
type phase struct {
	name     string
	calls    uint64
	ns       int64
	parent   *phase
	children []*phase
	index    map[string]*phase
}

func (p *phase) child(name string) *phase {
	if c, ok := p.index[name]; ok {
		return c
	}
	c := &phase{name: name, parent: p}
	if p.index == nil {
		p.index = make(map[string]*phase)
	}
	p.index[name] = c
	p.children = append(p.children, c)
	return c
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	root := &phase{}
	return &Tracer{root: root, current: root}
}

var defaultTracer = NewTracer()

// DefaultTracer returns the process-wide tracer that StartSpan and
// TakeSpans operate on.
func DefaultTracer() *Tracer { return defaultTracer }

// Span is an in-progress timing of one phase activation. End it
// exactly once (End is idempotent; extra calls are no-ops).
type Span struct {
	t     *Tracer
	node  *phase
	prev  *phase
	gen   uint64
	start time.Time
	done  bool
}

// Start opens (or re-enters) the named phase as a child of the
// currently open phase and makes it current.
func (t *Tracer) Start(name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	node := t.current.child(name)
	node.calls++
	t.current = node
	return &Span{t: t, node: node, prev: node.parent, gen: t.gen, start: time.Now()}
}

// End closes the span, folding its elapsed wall time into the phase
// node and restoring the parent as current. Ending a span that
// outlived a Take/Reset is a safe no-op.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	elapsed := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gen != s.gen {
		return // the tree this span belongs to was already collected
	}
	s.node.ns += int64(elapsed)
	t.current = s.prev
}

// PhaseSnapshot is one node of a collected phase tree.
type PhaseSnapshot struct {
	// Name is the phase name passed to Start.
	Name string `json:"name"`
	// Calls is how many times the phase was entered.
	Calls uint64 `json:"calls"`
	// Ns is the summed wall-clock time of completed activations.
	Ns int64 `json:"ns"`
	// Children are nested phases in first-entered order.
	Children []PhaseSnapshot `json:"children,omitempty"`
}

func snapshotPhase(p *phase) PhaseSnapshot {
	s := PhaseSnapshot{Name: p.name, Calls: p.calls, Ns: p.ns}
	for _, c := range p.children {
		s.Children = append(s.Children, snapshotPhase(c))
	}
	return s
}

// Snapshot copies the current phase tree (top-level phases) without
// clearing it.
func (t *Tracer) Snapshot() []PhaseSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshotPhase(t.root).Children
}

// Take returns the current phase tree and resets the tracer to empty.
// Spans still open when Take is called are abandoned: their phases
// keep the call count, but the in-flight duration is dropped.
func (t *Tracer) Take() []PhaseSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := snapshotPhase(t.root).Children
	t.root = &phase{}
	t.current = t.root
	t.gen++
	return out
}

// Reset discards the phase tree.
func (t *Tracer) Reset() { t.Take() }

// StartSpan opens a phase on the default tracer.
func StartSpan(name string) *Span { return defaultTracer.Start(name) }

// TakeSpans collects and clears the default tracer's phase tree.
func TakeSpans() []PhaseSnapshot { return defaultTracer.Take() }

// StartTimer returns a stop function that, when called, observes the
// elapsed nanoseconds into the histogram.
func StartTimer(h *Histogram) func() {
	start := time.Now()
	return func() { h.Observe(float64(time.Since(start).Nanoseconds())) }
}
