package fmmmodel

import (
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

func fullGrid(order uint) []geom.Point {
	side := geom.Side(order)
	pts := make([]geom.Point, 0, side*side)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			pts = append(pts, geom.Pt(x, y))
		}
	}
	return pts
}

// TestNFIHandComputed checks the fully worked 2x2 example: particles at
// all four cells, Hilbert particle order, one particle per processor,
// bus topology.
func TestNFIHandComputed(t *testing.T) {
	a, err := acd.Assign(fullGrid(1), sfc.Hilbert, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	bus := topology.NewBus(4)
	res := NFI(a, bus, NFIOptions{Radius: 1, Metric: geom.MetricChebyshev})
	// All 4 cells are mutually Chebyshev-adjacent: 12 ordered pairs.
	// Hilbert ranks around the square are 0,1,2,3; bus distances sum
	// to 2*(1+2+3+1+2+1) = 20.
	if res.Count != 12 {
		t.Fatalf("count = %d, want 12", res.Count)
	}
	if res.Sum != 20 {
		t.Fatalf("sum = %d, want 20", res.Sum)
	}
}

// TestFFIHandComputed checks the 2x2 far-field example: only
// interpolation/anterpolation exist (no interaction lists below level
// 2). Each leaf representative sends to the root representative
// (rank 0) over a bus.
func TestFFIHandComputed(t *testing.T) {
	a, err := acd.Assign(fullGrid(1), sfc.Hilbert, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	bus := topology.NewBus(4)
	res := FFI(a, bus, FFIOptions{})
	if res.InteractionList.Count != 0 {
		t.Fatalf("interaction list events = %d, want 0", res.InteractionList.Count)
	}
	// Four parent-child links with distances 0,1,2,3.
	if res.Interpolation.Count != 4 || res.Interpolation.Sum != 6 {
		t.Fatalf("interpolation = %+v", res.Interpolation)
	}
	if res.Anterpolation != res.Interpolation {
		t.Fatalf("anterpolation %+v != interpolation %+v", res.Anterpolation, res.Interpolation)
	}
	total := res.Total()
	if total.Count != 8 || total.Sum != 12 {
		t.Fatalf("total = %+v", total)
	}
}

// bruteFFI is an independent reference implementation of the far-field
// model: scan all cell pairs at every level.
func bruteFFI(a *acd.Assignment, topo topology.Topology) FFIResult {
	tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	var res FFIResult
	for l := uint(1); l <= a.Order; l++ {
		side := geom.Side(l)
		for y := uint32(0); y < side; y++ {
			for x := uint32(0); x < side; x++ {
				rep := tree.Rep(l, x, y)
				if rep == -1 {
					continue
				}
				d := topo.Distance(int(rep), int(tree.Rep(l-1, x/2, y/2)))
				res.Interpolation.Add(d)
				res.Anterpolation.Add(d)
				if l < 2 {
					continue
				}
				for by := uint32(0); by < side; by++ {
					for bx := uint32(0); bx < side; bx++ {
						other := tree.Rep(l, bx, by)
						if other == -1 {
							continue
						}
						av, bv := geom.Pt(x, y), geom.Pt(bx, by)
						if geom.Chebyshev(av, bv) <= 1 {
							continue
						}
						if geom.Chebyshev(geom.Pt(x/2, y/2), geom.Pt(bx/2, by/2)) > 1 {
							continue
						}
						res.InteractionList.Add(topo.Distance(int(rep), int(other)))
					}
				}
			}
		}
	}
	return res
}

func TestFFIMatchesBruteForce(t *testing.T) {
	const order = 4
	r := rng.New(5)
	for _, sampler := range dist.All() {
		pts, err := dist.SampleUnique(sampler, r, order, 90)
		if err != nil {
			t.Fatal(err)
		}
		for _, pc := range []sfc.Curve{sfc.Hilbert, sfc.RowMajor} {
			a, err := acd.Assign(pts, pc, order, 16)
			if err != nil {
				t.Fatal(err)
			}
			for _, topoName := range []string{"bus", "torus", "hypercube", "quadtree"} {
				topo, err := topology.New(topoName, 16, sfc.Morton)
				if err != nil {
					t.Fatal(err)
				}
				got := FFI(a, topo, FFIOptions{})
				want := bruteFFI(a, topo)
				if got != want {
					t.Fatalf("%s/%s/%s: FFI %+v, brute force %+v",
						sampler.Name(), pc.Name(), topoName, got, want)
				}
			}
		}
	}
}

// bruteNFI is an independent near-field reference: scan all particle
// pairs.
func bruteNFI(a *acd.Assignment, topo topology.Topology, radius int, m geom.Metric) acd.Accumulator {
	var res acd.Accumulator
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if i == j {
				continue
			}
			if m.Dist(a.Particles[i], a.Particles[j]) <= radius {
				res.Add(topo.Distance(int(a.Ranks[i]), int(a.Ranks[j])))
			}
		}
	}
	return res
}

func TestNFIMatchesBruteForce(t *testing.T) {
	const order = 5
	r := rng.New(6)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 150)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Gray, order, 16)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewTorus(2, sfc.Hilbert)
	for _, radius := range []int{1, 2, 4} {
		for _, m := range []geom.Metric{geom.MetricChebyshev, geom.MetricManhattan} {
			got := NFI(a, topo, NFIOptions{Radius: radius, Metric: m})
			want := bruteNFI(a, topo, radius, m)
			if got != want {
				t.Fatalf("r=%d m=%v: NFI %+v, brute force %+v", radius, m, got, want)
			}
		}
	}
}

func TestNFIDeterministicAcrossWorkerCounts(t *testing.T) {
	const order = 5
	r := rng.New(7)
	pts, err := dist.SampleUnique(dist.Normal, r, order, 200)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 16)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewMesh(2, sfc.Hilbert)
	base := NFI(a, topo, NFIOptions{Radius: 2, Workers: 1})
	for _, w := range []int{2, 3, 8, 64} {
		if got := NFI(a, topo, NFIOptions{Radius: 2, Workers: w}); got != base {
			t.Fatalf("workers=%d: %+v != %+v", w, got, base)
		}
	}
}

func TestFFIDeterministicAcrossWorkerCounts(t *testing.T) {
	const order = 5
	r := rng.New(8)
	pts, err := dist.SampleUnique(dist.Exponential, r, order, 200)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Morton, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewTorus(3, sfc.Morton)
	base := FFI(a, topo, FFIOptions{Workers: 1})
	for _, w := range []int{2, 7, 32} {
		if got := FFI(a, topo, FFIOptions{Workers: w}); got != base {
			t.Fatalf("workers=%d: %+v != %+v", w, got, base)
		}
	}
}

func TestNFIRadiusGrowsACD(t *testing.T) {
	// Larger radii add longer-range pairs, so the ACD must not drop
	// (paper §VI-C: "larger radii ... result in higher ACD values").
	const order = 6
	r := rng.New(9)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 500)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewTorus(3, sfc.Hilbert)
	prev := 0.0
	for _, radius := range []int{1, 2, 4, 8} {
		got := NFI(a, topo, NFIOptions{Radius: radius}).ACD()
		if got < prev*0.95 { // allow slight non-monotonicity from averaging
			t.Fatalf("radius %d ACD %f dropped well below %f", radius, got, prev)
		}
		prev = got
	}
}

func TestSingleProcessorZeroACD(t *testing.T) {
	// Everything on one processor: every communication is zero hops.
	const order = 4
	r := rng.New(10)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewBus(1)
	if got := NFI(a, topo, NFIOptions{Radius: 3}); got.Sum != 0 || got.Count == 0 {
		t.Fatalf("NFI on 1 processor = %+v", got)
	}
	if got := FFI(a, topo, FFIOptions{}).Total(); got.Sum != 0 || got.Count == 0 {
		t.Fatalf("FFI on 1 processor = %+v", got)
	}
}

func TestFFIFromTreeMatchesFFI(t *testing.T) {
	const order = 4
	r := rng.New(11)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 80)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 16)
	if err != nil {
		t.Fatal(err)
	}
	tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	topo := topology.NewHypercube(4)
	if got, want := FFIFromTree(tree, topo, FFIOptions{}), FFI(a, topo, FFIOptions{}); got != want {
		t.Fatalf("FFIFromTree %+v != FFI %+v", got, want)
	}
}

func TestHilbertBeatsRowMajorOnTorus(t *testing.T) {
	// The paper's headline ordering: {Hilbert ≈ Z} < Gray << Row-major.
	// At modest scale, check Hilbert/Hilbert strictly beats
	// RowMajor/RowMajor for both interaction families.
	const order = 8
	r := rng.New(12)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 4000)
	if err != nil {
		t.Fatal(err)
	}
	const procOrder = 4 // 256 processors
	run := func(c sfc.Curve) (nfi, ffi float64) {
		a, err := acd.Assign(pts, c, order, 1<<(2*procOrder))
		if err != nil {
			t.Fatal(err)
		}
		topo := topology.NewTorus(procOrder, c)
		return NFI(a, topo, NFIOptions{Radius: 1}).ACD(), FFI(a, topo, FFIOptions{}).Total().ACD()
	}
	hn, hf := run(sfc.Hilbert)
	rn, rf := run(sfc.RowMajor)
	if hn >= rn {
		t.Errorf("NFI: hilbert %f >= rowmajor %f", hn, rn)
	}
	if hf >= rf {
		t.Errorf("FFI: hilbert %f >= rowmajor %f", hf, rf)
	}
}
