package commmat

import (
	"math/bits"
	"sort"

	"sfcacd/internal/acd"
	"sfcacd/internal/topology"
)

// Mutable is a long-lived, retractable aggregation of a
// symmetric-canonical communication event stream (every unordered rank
// pair recorded once, as src <= dst). Where Builder aggregates one
// frozen stream and finalizes, Mutable supports Sub — the incremental
// pipeline retracts the events of moved particles and re-adds them
// under their new ranks, carrying the matrix across timesteps instead
// of rebuilding it.
//
// The layout mirrors the Builder's banded scratch: counts indexed by
// (src, dst-src delta) with an occupancy bitmap, plus an overflow map
// for the rare pair beyond the band. Unlike the pooled scratch it is
// owned by one maintainer for its whole life and is never shared, so
// all updates are plain (single-goroutine) arithmetic.
type Mutable struct {
	p      int
	stride int // band width in deltas; 0 = map-only aggregation
	grid   []uint32
	bm     []uint64
	over   map[uint64]uint32
	events uint64
	pairs  int
}

// NewMutable returns an empty mutable matrix over p ranks.
func NewMutable(p int) *Mutable {
	if p < 1 {
		panic("commmat: mutable matrix needs at least 1 rank")
	}
	m := &Mutable{p: p, stride: scratchStride(p)}
	if m.stride > 0 {
		cells := p * m.stride
		m.grid = make([]uint32, cells)
		m.bm = make([]uint64, (cells+63)/64)
	}
	return m
}

// P returns the number of processor ranks.
func (m *Mutable) P() int { return m.p }

// Events returns the current total event count.
func (m *Mutable) Events() uint64 { return m.events }

// Pairs returns the number of distinct pairs with a nonzero count.
func (m *Mutable) Pairs() int { return m.pairs }

// slot locates the pair's band index, or -1 for overflow pairs. It
// panics on non-canonical or out-of-range pairs: the maintainer owns
// canonicalization, and a silent fix here would hide a corrupted
// retraction stream.
func (m *Mutable) slot(src, dst int32) int {
	if src < 0 || dst < src || int(dst) >= m.p {
		panic("commmat: mutable pair must be canonical 0 <= src <= dst < p")
	}
	d := int(dst) - int(src)
	if d >= m.stride {
		return -1
	}
	return int(src)*m.stride + d
}

// Add records one canonical communication event.
func (m *Mutable) Add(src, dst int32) {
	m.events++
	if idx := m.slot(src, dst); idx >= 0 {
		c := m.grid[idx]
		m.grid[idx] = c + 1
		if c == 0 {
			m.bm[idx>>6] |= 1 << (uint(idx) & 63)
			m.pairs++
		}
		return
	}
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	if m.over == nil {
		m.over = make(map[uint64]uint32)
	}
	if m.over[key]++; m.over[key] == 1 {
		m.pairs++
	}
}

// Sub retracts one previously added event. Retracting a pair with no
// recorded events panics: the incremental maintainer's retraction
// stream must mirror its addition stream exactly, and a miscount here
// means the maintained matrix has already diverged from the oracle.
func (m *Mutable) Sub(src, dst int32) {
	if idx := m.slot(src, dst); idx >= 0 {
		c := m.grid[idx]
		if c == 0 {
			panic("commmat: Sub of pair with no events")
		}
		m.grid[idx] = c - 1
		if c == 1 {
			m.bm[idx>>6] &^= 1 << (uint(idx) & 63)
			m.pairs--
		}
		m.events--
		return
	}
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	c := m.over[key]
	if c == 0 {
		panic("commmat: Sub of pair with no events")
	}
	if c == 1 {
		delete(m.over, key)
		m.pairs--
	} else {
		m.over[key] = c - 1
	}
	m.events--
}

// Reset empties the matrix in time proportional to its occupancy (set
// bitmap words, not grid size), for the repartition path that refills
// from scratch.
func (m *Mutable) Reset() {
	for w, word := range m.bm {
		if word == 0 {
			continue
		}
		m.bm[w] = 0
		base := w << 6
		for word != 0 {
			m.grid[base+bits.TrailingZeros64(word)] = 0
			word &= word - 1
		}
	}
	for k := range m.over {
		delete(m.over, k)
	}
	m.events = 0
	m.pairs = 0
}

// sortedOverflow returns the overflow keys in ascending order.
func (m *Mutable) sortedOverflow() []uint64 {
	if len(m.over) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(m.over))
	for k := range m.over {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Visit calls fn for every pair with a nonzero count in ascending
// (src, dst) order — the same order Matrix.Visit produces, which is
// what makes the maintained matrix comparable against the from-scratch
// build with Equal.
func (m *Mutable) Visit(fn func(src, dst int32, n uint32)) {
	keys := m.sortedOverflow()
	k := 0
	// Overflow deltas exceed the band, so within one source row every
	// overflow dst sorts after every band dst: flush rows strictly
	// before the current band row, then drain the rest at the end.
	flush := func(uptoSrc int32) {
		for k < len(keys) && int32(keys[k]>>32) < uptoSrc {
			fn(int32(keys[k]>>32), int32(uint32(keys[k])), m.over[keys[k]])
			k++
		}
	}
	if m.grid != nil {
		// The global bit order is (src, delta) = (src, dst) order; track
		// the row bounds as the scan advances (strides are not always
		// word-aligned when the band spans all of p).
		curSrc, rowBase, rowEnd := int32(0), 0, m.stride
		for w, word := range m.bm {
			for word != 0 {
				idx := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				for idx >= rowEnd {
					curSrc++
					rowBase = rowEnd
					rowEnd += m.stride
				}
				flush(curSrc)
				fn(curSrc, curSrc+int32(idx-rowBase), m.grid[idx])
			}
		}
	}
	flush(int32(m.p))
}

// Matrix materializes the current state as an immutable Matrix in the
// exact form Builder.Finalize produces for the same stream (dense or
// CSR by the same p threshold) — the bridge back to the batch
// contraction paths and the differential oracle's comparison target.
// The commmat build counters are not touched: the incremental layer
// accounts its maintenance through its own metrics.
func (m *Mutable) Matrix() *Matrix {
	mat := &Matrix{p: m.p, events: m.events, pairs: m.pairs}
	if m.p*m.p <= denseCells {
		mat.dense = make([]uint32, m.p*m.p)
		m.Visit(func(src, dst int32, n uint32) {
			mat.dense[int(src)*m.p+int(dst)] = n
		})
		mat.computeDiag()
		return mat
	}
	mat.rowStart = append(mat.rowStart, 0)
	mat.dsts = make([]int32, 0, m.pairs)
	mat.counts = make([]uint32, 0, m.pairs)
	m.Visit(func(src, dst int32, n uint32) {
		if len(mat.rowSrc) == 0 || mat.rowSrc[len(mat.rowSrc)-1] != src {
			mat.rowSrc = append(mat.rowSrc, src)
			mat.rowStart = append(mat.rowStart, int32(len(mat.dsts)))
		}
		mat.dsts = append(mat.dsts, dst)
		mat.counts = append(mat.counts, n)
		mat.rowStart[len(mat.rowStart)-1] = int32(len(mat.dsts))
	})
	mat.computeDiag()
	return mat
}

// ContractSym contracts the maintained matrix against a topology with
// symmetric-canonical weighting (each pair counts both directions),
// without materializing a Matrix.
func (m *Mutable) ContractSym(t topology.Topology, acc *acd.Accumulator) {
	m.Visit(func(src, dst int32, n uint32) {
		acc.AddN(t.Distance(int(src), int(dst)), 2*int(n))
	})
	topology.CountDistanceQueries(uint64(m.pairs))
}

// ContractTableSym is ContractSym against a distance table: rows dense
// enough for a table row contract with array indexing, the rest with
// direct Distance calls (same policy as Matrix.ContractTableSym).
func (m *Mutable) ContractTableSym(dt *topology.DistanceTable, acc *acd.Accumulator) {
	t := dt.Underlying()
	direct := uint64(0)
	curSrc := int32(-1)
	var dsts []int32
	var counts []uint32
	flushRow := func() {
		if len(dsts) == 0 {
			return
		}
		if row := dt.RowFor(int(curSrc), len(dsts)); row != nil {
			for i, d := range dsts {
				acc.AddN(int(row[d]), 2*int(counts[i]))
			}
		} else {
			for i, d := range dsts {
				acc.AddN(t.Distance(int(curSrc), int(d)), 2*int(counts[i]))
			}
			direct += uint64(len(dsts))
		}
		dsts, counts = dsts[:0], counts[:0]
	}
	m.Visit(func(src, dst int32, n uint32) {
		if src != curSrc {
			flushRow()
			curSrc = src
		}
		dsts = append(dsts, dst)
		counts = append(counts, n)
	})
	flushRow()
	topology.CountDistanceQueries(direct)
}

// Equal reports whether two matrices hold identical aggregations: the
// same rank count, total events, and per-pair counts. It is
// form-insensitive — a dense and a CSR matrix compare equal when their
// contents match — which lets differential oracles compare maintained
// state against from-scratch builds byte-for-byte at the pair level.
func Equal(a, b *Matrix) bool {
	if a.p != b.p || a.events != b.events || a.pairs != b.pairs {
		return false
	}
	type pair struct {
		src, dst int32
		n        uint32
	}
	as := make([]pair, 0, a.pairs)
	a.Visit(func(src, dst int32, n uint32) {
		as = append(as, pair{src, dst, n})
	})
	i := 0
	ok := true
	b.Visit(func(src, dst int32, n uint32) {
		if !ok || i >= len(as) {
			ok = false
			return
		}
		if p := as[i]; p.src != src || p.dst != dst || p.n != n {
			ok = false
		}
		i++
	})
	return ok && i == len(as)
}
