package anns

import (
	"math"
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

func TestPairCountR1(t *testing.T) {
	for order := uint(1); order <= 5; order++ {
		side := geom.Side(order)
		res := Stretch(sfc.Hilbert, order, Options{Radius: 1})
		if res.Pairs != NearestNeighborPairs(side) {
			t.Fatalf("order %d: %d pairs, want %d", order, res.Pairs, NearestNeighborPairs(side))
		}
	}
}

func TestRowMajorMatchesClosedForm(t *testing.T) {
	for order := uint(1); order <= 7; order++ {
		got := Stretch(sfc.RowMajor, order, Options{Radius: 1}).Mean
		want := RowMajorExact(order)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("order %d: rowmajor ANNS %f, closed form %f", order, got, want)
		}
	}
}

func TestSnakeEqualsRowMajorANNS(t *testing.T) {
	// The snake scan has the same r=1 ANNS as row-major: vertical pairs
	// stretch 1, horizontal pairs average side.
	for order := uint(1); order <= 6; order++ {
		s := Stretch(sfc.Snake, order, Options{Radius: 1}).Mean
		r := Stretch(sfc.RowMajor, order, Options{Radius: 1}).Mean
		if math.Abs(s-r) > 1e-9 {
			t.Fatalf("order %d: snake %f != rowmajor %f", order, s, r)
		}
	}
}

func TestTwoByTwoAllCurvesEqual(t *testing.T) {
	// On the 2x2 grid every bijective order yields ANNS 1.5.
	for _, c := range sfc.Extended() {
		got := Stretch(c, 1, Options{Radius: 1}).Mean
		if math.Abs(got-1.5) > 1e-9 {
			t.Errorf("%s: 2x2 ANNS = %f, want 1.5", c.Name(), got)
		}
	}
}

func TestPaperOrderingZAndRowMajorBeatHilbertAndGray(t *testing.T) {
	// The paper's surprising §V result: in 2D, the Z-curve and
	// row-major significantly outperform Gray and Hilbert under ANNS,
	// at every resolution, and the gap grows with resolution.
	for order := uint(4); order <= 7; order++ {
		h := Stretch(sfc.Hilbert, order, Options{Radius: 1}).Mean
		z := Stretch(sfc.Morton, order, Options{Radius: 1}).Mean
		g := Stretch(sfc.Gray, order, Options{Radius: 1}).Mean
		r := Stretch(sfc.RowMajor, order, Options{Radius: 1}).Mean
		if !(z < g && z < h) {
			t.Errorf("order %d: Z (%f) should beat Gray (%f) and Hilbert (%f)", order, z, g, h)
		}
		if !(r < g && r < h) {
			t.Errorf("order %d: RowMajor (%f) should beat Gray (%f) and Hilbert (%f)", order, r, g, h)
		}
	}
}

func TestRelativeOrderingStableAcrossRadii(t *testing.T) {
	// §V: "irregardless the radius used, the relative ordering of the
	// curves was the same".
	const order = 6
	type ranked struct {
		name string
		c    sfc.Curve
	}
	curves := []ranked{
		{"hilbert", sfc.Hilbert}, {"morton", sfc.Morton},
		{"gray", sfc.Gray}, {"rowmajor", sfc.RowMajor},
	}
	orderAt := func(radius int) []string {
		vals := make(map[string]float64)
		for _, cr := range curves {
			vals[cr.name] = Stretch(cr.c, order, Options{Radius: radius}).Mean
		}
		names := []string{"hilbert", "morton", "gray", "rowmajor"}
		// Simple selection sort by value.
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if vals[names[j]] < vals[names[i]] {
					names[i], names[j] = names[j], names[i]
				}
			}
		}
		return names
	}
	base := orderAt(1)
	for _, radius := range []int{2, 4, 6} {
		got := orderAt(radius)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("radius %d ordering %v differs from r=1 ordering %v", radius, got, base)
			}
		}
	}
}

func TestStretchDeterministicAcrossWorkers(t *testing.T) {
	const order = 5
	base := Stretch(sfc.Gray, order, Options{Radius: 3, Workers: 1})
	for _, w := range []int{2, 5, 16} {
		got := Stretch(sfc.Gray, order, Options{Radius: 3, Workers: w})
		if got.Pairs != base.Pairs || math.Abs(got.Mean-base.Mean) > 1e-9 {
			t.Fatalf("workers=%d: %+v != %+v", w, got, base)
		}
	}
}

func TestChebyshevOptionCountsMorePairs(t *testing.T) {
	const order = 4
	man := Stretch(sfc.Hilbert, order, Options{Radius: 2})
	che := Stretch(sfc.Hilbert, order, Options{Radius: 2, Ball: ChebyshevBall})
	if che.Pairs <= man.Pairs {
		t.Fatalf("chebyshev pairs %d <= manhattan pairs %d", che.Pairs, man.Pairs)
	}
}

func TestDegenerateGrid(t *testing.T) {
	// Order 0: a single cell, no pairs.
	res := Stretch(sfc.Hilbert, 0, Options{Radius: 1})
	if res.Pairs != 0 || res.Mean != 0 {
		t.Fatalf("order 0 result %+v", res)
	}
}

// TestANNSEqualsNFIOnBus realizes the paper's §V reduction: input every
// point of the resolution, one particle per processor in curve order,
// bus network, radius 1 — the near-field ACD equals the ANNS.
func TestANNSEqualsNFIOnBus(t *testing.T) {
	const order = 3
	side := geom.Side(order)
	pts := make([]geom.Point, 0, side*side)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			pts = append(pts, geom.Pt(x, y))
		}
	}
	for _, c := range sfc.All() {
		a, err := acd.Assign(pts, c, order, len(pts))
		if err != nil {
			t.Fatal(err)
		}
		bus := topology.NewBus(len(pts))
		nfi := fmmmodel.NFI(a, bus, fmmmodel.NFIOptions{Radius: 1, Metric: geom.MetricManhattan})
		anns := Stretch(c, order, Options{Radius: 1})
		if math.Abs(nfi.ACD()-anns.Mean) > 1e-9 {
			t.Errorf("%s: NFI-on-bus ACD %f != ANNS %f", c.Name(), nfi.ACD(), anns.Mean)
		}
	}
}
