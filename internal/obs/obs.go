// Package obs is the repository's stdlib-only observability layer:
// named counters, gauges, fixed-bucket histograms, and hierarchical
// wall-clock phase spans, collected in thread-safe registries and
// exportable as JSON run manifests (manifest.go).
//
// Design constraints, in order:
//
//  1. Hot-path safety. The instrumented pipeline evaluates tens of
//     millions of topology distance queries per run; any per-event
//     work must be a handful of nanoseconds. Counters are striped
//     across cache-line-padded atomic cells so concurrent workers do
//     not serialize on one line, and the very hottest loops tally
//     locally and flush in bulk (see internal/topology and
//     internal/fmmmodel).
//  2. Determinism where possible. Counter values derived from seeded
//     experiments replay exactly; wall-clock quantities (spans,
//     histograms of durations) are isolated so manifests can be
//     canonicalized for golden-file comparison (Manifest.Deterministic).
//  3. No dependencies. Only the Go standard library; every other
//     internal package may import obs, obs imports none of them.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// counterStripes is the number of independent atomic cells a counter
// is split over. Must be a power of two.
const counterStripes = 16

// stripe is one cache-line-padded atomic cell.
type stripe struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes so stripes never share a line
}

// Counter is a monotonically increasing metric, safe for concurrent
// use. Increments land on one of several cache-line-padded stripes;
// Value folds them. Concurrent writers should spread themselves with
// AddAt/IncAt using any cheap caller-local hint (a rank, a worker
// index); single-goroutine callers can use Add/Inc.
type Counter struct {
	name    string
	stripes [counterStripes]stripe
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Inc adds 1 on stripe 0.
func (c *Counter) Inc() { c.stripes[0].v.Add(1) }

// Add adds n on stripe 0.
func (c *Counter) Add(n uint64) { c.stripes[0].v.Add(n) }

// IncAt adds 1 on the stripe selected by hint.
func (c *Counter) IncAt(hint int) { c.stripes[uint(hint)&(counterStripes-1)].v.Add(1) }

// AddAt adds n on the stripe selected by hint.
func (c *Counter) AddAt(hint int, n uint64) { c.stripes[uint(hint)&(counterStripes-1)].v.Add(n) }

// Value returns the sum over all stripes.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

func (c *Counter) reset() {
	for i := range c.stripes {
		c.stripes[i].v.Store(0)
	}
}

// Gauge is a last-value metric holding a float64, safe for concurrent
// use.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// SetMax stores v if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if v <= floatFrom(old) {
			return
		}
		if g.bits.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}

// Add increments the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFrom(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFrom(g.bits.Load()) }

func (g *Gauge) reset() { g.bits.Store(0) }

// Registry is a thread-safe collection of named metrics. Metrics are
// created on first use and live for the registry's lifetime; looking a
// name up again returns the same instance. Counter, gauge, and
// histogram names are independent namespaces, but sharing a name
// across kinds is discouraged (snapshots would collide visually).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// hookMu serializes snapshot hooks; separate from mu because hooks
	// call back into the registry (GetCounter etc.).
	hookMu sync.Mutex
	hooks  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level helpers
// operate on.
func Default() *Registry { return defaultRegistry }

// GetCounter returns the registry's counter with the given name,
// creating it if needed.
func (r *Registry) GetCounter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// GetGauge returns the registry's gauge with the given name, creating
// it if needed.
func (r *Registry) GetGauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// GetHistogram returns the registry's histogram with the given name,
// creating it with the given bucket upper bounds if needed. An
// existing histogram keeps its original buckets.
func (r *Registry) GetHistogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(name, bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's metric values.
// All maps marshal with sorted keys (encoding/json), so the JSON form
// is byte-stable for equal values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// OnSnapshot registers a hook that runs at the start of every
// Snapshot call, before values are read. Hooks fold derived metrics —
// rollups too hot to maintain per-event — into ordinary counters and
// gauges (e.g. internal/sfc sums its per-curve encode counters into
// "sfc.encode" here, keeping the curve hot path at one atomic add).
func (r *Registry) OnSnapshot(fn func()) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.hookMu.Lock()
	for _, fn := range r.hooks {
		fn()
	}
	r.hookMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// Reset zeroes every metric in place. Metric instances stay valid:
// packages holding a *Counter keep incrementing the same cells.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// CounterNames returns the sorted names of registered counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GetCounter returns (creating if needed) a counter in the default
// registry.
func GetCounter(name string) *Counter { return defaultRegistry.GetCounter(name) }

// GetGauge returns (creating if needed) a gauge in the default
// registry.
func GetGauge(name string) *Gauge { return defaultRegistry.GetGauge(name) }

// GetHistogram returns (creating if needed) a histogram in the default
// registry.
func GetHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.GetHistogram(name, bounds)
}
