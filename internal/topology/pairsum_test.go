package topology

import (
	"fmt"
	"testing"

	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

// randomBatch draws a weighted destination batch over p ranks,
// deliberately including src itself (zero-distance pairs exercise the
// diagonal handling of every implementation).
func randomBatch(r *rng.Rand, p, n, src int) ([]int32, []uint32) {
	dsts := make([]int32, n)
	ns := make([]uint32, n)
	for i := range dsts {
		dsts[i] = int32(r.Intn(p))
		ns[i] = 1 + r.Uint32n(9)
	}
	if n > 0 {
		dsts[r.Intn(n)] = int32(src)
	}
	return dsts, ns
}

// pairSumOracle is the definitional per-pair loop DistanceSum must
// reproduce exactly.
func pairSumOracle(topo Topology, src int, dsts []int32, ns []uint32) uint64 {
	var s uint64
	for i, d := range dsts {
		s += uint64(topo.Distance(src, int(d))) * uint64(ns[i])
	}
	return s
}

// TestDistanceSumMatchesDistance is the differential test for every
// PairContractor: the batched sum must equal the per-pair Distance
// loop bit-for-bit, for every topology kind, across random sources and
// batch sizes (including empty and single-pair batches).
func TestDistanceSumMatchesDistance(t *testing.T) {
	const p = 64
	curve, err := sfc.ByName("hilbert")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range Kinds {
		topo, err := New(kind, p, curve)
		if err != nil {
			t.Fatal(err)
		}
		pc, ok := topo.(PairContractor)
		if !ok {
			t.Fatalf("%s does not implement PairContractor", kind)
		}
		r := rng.New(41)
		for _, n := range []int{0, 1, 7, 200} {
			for trial := 0; trial < 8; trial++ {
				src := r.Intn(p)
				dsts, ns := randomBatch(r, p, n, src)
				got := pc.DistanceSum(src, dsts, ns)
				want := pairSumOracle(topo, src, dsts, ns)
				if got != want {
					t.Fatalf("%s: DistanceSum(src=%d, %d pairs) = %d, want %d",
						kind, src, n, got, want)
				}
			}
		}
	}
}

// TestTorusDistanceSumBothBranches covers the delta-table branch
// (side <= torusLUTMaxSide) and the arithmetic fallback (larger sides
// build no table) against the per-pair oracle.
func TestTorusDistanceSumBothBranches(t *testing.T) {
	curve, err := sfc.ByName("morton")
	if err != nil {
		t.Fatal(err)
	}
	for _, procOrder := range []int{3, 9} { // sides 8 and 512
		torus := NewTorus(uint(procOrder), curve)
		hasLUT := torus.dlut != nil
		if wantLUT := torus.side <= torusLUTMaxSide; hasLUT != wantLUT {
			t.Fatalf("side %d: dlut presence = %v, want %v", torus.side, hasLUT, wantLUT)
		}
		p := torus.P()
		r := rng.New(uint64(procOrder))
		for trial := 0; trial < 6; trial++ {
			src := r.Intn(p)
			dsts, ns := randomBatch(r, p, 300, src)
			got := torus.DistanceSum(src, dsts, ns)
			want := pairSumOracle(torus, src, dsts, ns)
			if got != want {
				t.Fatalf("side %d: DistanceSum = %d, want %d", torus.side, got, want)
			}
		}
	}
}

// TestTorusDistanceSumRows checks the row-block form against per-row
// DistanceSum over randomly cut CSR row blocks — including empty rows
// and odd row lengths, which exercise the unrolled loop's tail — on
// both the delta-table and arithmetic branches.
func TestTorusDistanceSumRows(t *testing.T) {
	curve, err := sfc.ByName("hilbert")
	if err != nil {
		t.Fatal(err)
	}
	for _, procOrder := range []int{3, 9} {
		torus := NewTorus(uint(procOrder), curve)
		p := torus.P()
		r := rng.New(uint64(100 + procOrder))
		t.Run(fmt.Sprintf("side%d", torus.side), func(t *testing.T) {
			srcs := make([]int32, 0, 40)
			rowStart := []int32{0}
			var dsts []int32
			var ns []uint32
			for len(srcs) < 40 {
				src := int32(r.Intn(p))
				rowLen := r.Intn(10) // 0..9: empty, odd, and even rows
				rd, rn := randomBatch(r, p, rowLen, int(src))
				srcs = append(srcs, src)
				dsts = append(dsts, rd...)
				ns = append(ns, rn...)
				rowStart = append(rowStart, int32(len(dsts)))
			}
			got := torus.DistanceSumRows(srcs, rowStart, dsts, ns)
			var want uint64
			for i, src := range srcs {
				lo, hi := rowStart[i], rowStart[i+1]
				want += torus.DistanceSum(int(src), dsts[lo:hi], ns[lo:hi])
			}
			if got != want {
				t.Fatalf("DistanceSumRows = %d, per-row sum = %d", got, want)
			}
		})
	}
}
