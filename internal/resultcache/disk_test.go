package resultcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	store, err := OpenDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor("table12", "params", "v1")
	if _, ok, err := store.Get(key); err != nil || ok {
		t.Fatalf("Get on empty store = ok=%v err=%v, want miss with nil error", ok, err)
	}
	e := Entry{Key: key, Experiment: "table12",
		Params:   json.RawMessage(`{"Particles":100}`),
		Result:   json.RawMessage(`[{"curve":"hilbert"}]`),
		Manifest: json.RawMessage(`{"schema":"x"}`)}
	if err := store.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if got.Experiment != e.Experiment || string(got.Params) != string(e.Params) ||
		string(got.Result) != string(e.Result) || string(got.Manifest) != string(e.Manifest) {
		t.Errorf("round trip changed the entry: %+v", got)
	}

	// Overwrite refreshes in place.
	e.Result = json.RawMessage(`[]`)
	if err := store.Put(e); err != nil {
		t.Fatal(err)
	}
	got, _, _ = store.Get(key)
	if string(got.Result) != "[]" {
		t.Errorf("overwrite did not replace the entry: %s", got.Result)
	}

	// No stray temp files after successful writes.
	matches, _ := filepath.Glob(filepath.Join(store.Dir(), "*", "*.tmp"))
	if len(matches) != 0 {
		t.Errorf("stray temp files left behind: %v", matches)
	}
}

func TestDiskStoreShardedLayout(t *testing.T) {
	store, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor("fig6", "params", "v1")
	if err := store.Put(Entry{Key: key}); err != nil {
		t.Fatal(err)
	}
	hexKey := key.String()
	want := filepath.Join(store.Dir(), hexKey[:2], hexKey+".json")
	if _, err := os.Stat(want); err != nil {
		t.Errorf("entry not at sharded path %s: %v", want, err)
	}
}

func TestDiskStoreCorruptEntry(t *testing.T) {
	store, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor("fig7", "params", "v1")
	hexKey := key.String()
	dir := filepath.Join(store.Dir(), hexKey[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, hexKey+".json"), []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Get(key); err == nil || ok {
		t.Fatalf("corrupt entry Get = ok=%v err=%v, want error", ok, err)
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("error %q does not identify corruption", err)
	}
}

func TestDiskStoreKeyMismatch(t *testing.T) {
	store, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Store a valid entry, then copy its file under a different key's
	// path: the self-describing key must be verified on load.
	good := Entry{Key: KeyFor("a", "p", "v"), Experiment: "a"}
	if err := store.Put(good); err != nil {
		t.Fatal(err)
	}
	wrong := KeyFor("b", "p", "v")
	src, _ := os.ReadFile(store.path(good.Key))
	dst := store.path(wrong)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Get(wrong); err == nil || ok {
		t.Fatalf("key-mismatched entry Get = ok=%v err=%v, want error", ok, err)
	}
}
