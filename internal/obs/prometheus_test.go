package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestLabeledName(t *testing.T) {
	cases := []struct {
		name string
		kv   []string
		want string
	}{
		{"serve.requests", nil, "serve.requests"},
		{"serve.errors", []string{"class", "timeout"}, `serve.errors{class="timeout"}`},
		// Keys sort, so equal label sets produce equal registry names
		// regardless of call-site argument order.
		{"m", []string{"b", "2", "a", "1"}, `m{a="1",b="2"}`},
		{"m", []string{"a", "1", "b", "2"}, `m{a="1",b="2"}`},
		// Escaping: backslash, quote, newline.
		{"m", []string{"k", `a"b\c` + "\n"}, `m{k="a\"b\\c\n"}`},
	}
	for _, tc := range cases {
		if got := LabeledName(tc.name, tc.kv...); got != tc.want {
			t.Errorf("LabeledName(%q, %v) = %q, want %q", tc.name, tc.kv, got, tc.want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("odd kv did not panic")
		}
	}()
	LabeledName("m", "key-without-value")
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string // full series name including label block
	value  float64
	family string
}

// parseExposition is a strict mini-parser for the text format: it
// checks line shape, records # TYPE declarations, and rejects samples
// whose family was never declared or declared twice.
func parseExposition(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, kind := fields[2], fields[3]
			if _, dup := types[name]; dup {
				t.Fatalf("family %s declared twice", name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("unknown kind %q in %q", kind, line)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// "series value": the series name may contain spaces only
		// inside a label block.
		sep := strings.LastIndexByte(line, ' ')
		if sep < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, valStr := line[:sep], line[sep+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("unbalanced label block in %q", line)
			}
			base = base[:i]
		}
		family := base
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suffix)
			if trimmed != base && types[trimmed] == "histogram" {
				family = trimmed
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("sample %q precedes or lacks its TYPE declaration", line)
		}
		samples = append(samples, promSample{name: name, value: val, family: family})
	}
	return types, samples
}

func sampleValue(t *testing.T, samples []promSample, name string) float64 {
	t.Helper()
	for _, s := range samples {
		if s.name == name {
			return s.value
		}
	}
	t.Fatalf("no sample named %q", name)
	return 0
}

func TestWritePrometheusAgainstJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.GetCounter("serve.requests").Add(7)
	r.GetCounter(LabeledName("serve.errors", "class", "timeout")).Add(2)
	r.GetCounter(LabeledName("serve.errors", "class", "overload")).Add(3)
	r.GetGauge("serve.inflight").Set(1.5)
	h := r.GetHistogram(LabeledName("serve.latency_ns", "cache", "miss"), []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 50, 500, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	types, samples := parseExposition(t, text)

	if types["serve_requests_total"] != "counter" {
		t.Errorf("serve_requests_total type = %q", types["serve_requests_total"])
	}
	if types["serve_inflight"] != "gauge" {
		t.Errorf("serve_inflight type = %q", types["serve_inflight"])
	}
	if types["serve_latency_ns"] != "histogram" {
		t.Errorf("serve_latency_ns type = %q", types["serve_latency_ns"])
	}

	// Counter samples agree with the JSON snapshot (same registry
	// state, two renderings).
	if v := sampleValue(t, samples, "serve_requests_total"); v != float64(snap.Counters["serve.requests"]) {
		t.Errorf("serve_requests_total = %v, snapshot says %d", v, snap.Counters["serve.requests"])
	}
	if v := sampleValue(t, samples, `serve_errors_total{class="timeout"}`); v != 2 {
		t.Errorf("timeout errors = %v, want 2", v)
	}
	if v := sampleValue(t, samples, `serve_errors_total{class="overload"}`); v != 3 {
		t.Errorf("overload errors = %v, want 3", v)
	}
	if v := sampleValue(t, samples, "serve_inflight"); v != 1.5 {
		t.Errorf("gauge = %v", v)
	}

	// Histogram invariants: cumulative buckets, +Inf == _count, and
	// _sum/_count agreeing with the JSON snapshot.
	hs := snap.Histograms[LabeledName("serve.latency_ns", "cache", "miss")]
	var prev float64
	for _, le := range []string{"10", "100", "1000", "+Inf"} {
		v := sampleValue(t, samples, fmt.Sprintf(`serve_latency_ns_bucket{cache="miss",le="%s"}`, le))
		if v < prev {
			t.Errorf("bucket le=%s count %v below previous %v (not cumulative)", le, v, prev)
		}
		prev = v
	}
	inf := sampleValue(t, samples, `serve_latency_ns_bucket{cache="miss",le="+Inf"}`)
	count := sampleValue(t, samples, `serve_latency_ns_count{cache="miss"}`)
	if inf != count {
		t.Errorf("+Inf bucket %v != _count %v", inf, count)
	}
	if count != float64(hs.Count) {
		t.Errorf("_count %v != snapshot count %d", count, hs.Count)
	}
	if sum := sampleValue(t, samples, `serve_latency_ns_sum{cache="miss"}`); sum != hs.Sum {
		t.Errorf("_sum %v != snapshot sum %v", sum, hs.Sum)
	}
	if v := sampleValue(t, samples, `serve_latency_ns_bucket{cache="miss",le="10"}`); v != 1 {
		t.Errorf("le=10 bucket = %v, want 1", v)
	}
	if v := sampleValue(t, samples, `serve_latency_ns_bucket{cache="miss",le="100"}`); v != 3 {
		t.Errorf("le=100 bucket = %v, want 3", v)
	}
}

func TestWritePrometheusEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.GetCounter(LabeledName("weird.metric", "path", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `weird_metric_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition %q missing escaped series %q", buf.String(), want)
	}
	if strings.Contains(buf.String(), "\n\n") || strings.Count(buf.String(), "weird_metric_total") != 2 {
		// Name appears once in TYPE, once in the sample; a raw newline
		// in a label value would add a third, broken line.
		t.Errorf("escaping left a malformed exposition:\n%s", buf.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"serve.request_latency_ns": "serve_request_latency_ns",
		"sweep.cells":              "sweep_cells",
		"9lives":                   "_9lives",
		"ok:name_1":                "ok:name_1",
		"sp ace-dash":              "sp_ace_dash",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
