// Package model3d extends the paper's FMM communication model to
// three dimensions (future-work item ii): particles on a 2^k cube are
// ordered by a 3D space-filling curve, chunked onto processors, and
// the near-field and far-field ACD computed over an octree domain
// decomposition.
package model3d

import (
	"fmt"
	"runtime"
	"sync"

	"sfcacd/internal/acd"
	"sfcacd/internal/geom"
	"sfcacd/internal/geom3"
	"sfcacd/internal/keynav"
	"sfcacd/internal/obs"
	"sfcacd/internal/octree"
	"sfcacd/internal/partition"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

// Assignment distributes 3D particles onto processors: the §IV
// pipeline with a 3D curve.
type Assignment struct {
	// Order is the resolution order (cube side 2^Order).
	Order uint
	// P is the processor count.
	P int
	// Particles are the particle cells in curve order.
	Particles []geom3.Point3
	// Ranks[i] owns Particles[i]; monotone non-decreasing.
	Ranks []int32
	side  uint32
	// cellRank maps occupied cells to ranks (sparse: 3D grids are
	// large).
	cellRank map[uint64]int32
	// keyIx is the flat Morton3-key index of the keys engine, built on
	// first use.
	ixOnce sync.Once
	keyIx  *keynav.Flat
}

// keyIndex returns the assignment's flat key-space index, building it
// on first call.
func (a *Assignment) keyIndex() *keynav.Flat {
	a.ixOnce.Do(func() {
		keys := make([]uint64, len(a.Particles))
		ranks := make([]int32, len(a.Particles))
		for i, p := range a.Particles {
			keys[i] = sfc.Morton3Key(p.X, p.Y, p.Z)
			ranks[i] = a.Ranks[i]
		}
		a.keyIx = keynav.NewFlat(keys, ranks, 3*a.Order)
	})
	return a.keyIx
}

// Assign orders particles along the 3D curve, chunks them, and
// assigns chunk i to rank i. Duplicate cells are rejected.
func Assign(particles []geom3.Point3, curve sfc.NDCurve, order uint, p int) (*Assignment, error) {
	if curve.Dims() != 3 {
		return nil, fmt.Errorf("model3d: curve %s has %d dims, want 3", curve.Name(), curve.Dims())
	}
	if p < 1 {
		return nil, fmt.Errorf("model3d: p = %d must be positive", p)
	}
	if len(particles) == 0 {
		return nil, fmt.Errorf("model3d: no particles")
	}
	n := len(particles)
	keys := make([]uint64, n)
	buf := make([]uint32, 3)
	for i, pt := range particles {
		buf[0], buf[1], buf[2] = pt.X, pt.Y, pt.Z
		keys[i] = curve.IndexND(order, buf)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sfc.SortPermByKeys(perm, keys)
	a := &Assignment{
		Order:     order,
		P:         p,
		Particles: make([]geom3.Point3, n),
		Ranks:     make([]int32, n),
		side:      geom3.Side(order),
		cellRank:  make(map[uint64]int32, n),
	}
	var prev uint64
	for i, src := range perm {
		if i > 0 && keys[src] == prev {
			return nil, fmt.Errorf("model3d: duplicate particle cell %v", particles[src])
		}
		prev = keys[src]
		rank := int32(partition.ChunkOf(i, n, p))
		a.Particles[i] = particles[src]
		a.Ranks[i] = rank
		a.cellRank[geom3.CellID(particles[src], a.side)] = rank
	}
	return a, nil
}

// Side returns the cube side.
func (a *Assignment) Side() uint32 { return a.side }

// N returns the particle count.
func (a *Assignment) N() int { return len(a.Particles) }

// RankAt returns the rank owning the particle in a cell, or -1.
func (a *Assignment) RankAt(p geom3.Point3) int32 {
	if r, ok := a.cellRank[geom3.CellID(p, a.side)]; ok {
		return r
	}
	return -1
}

// NFIOptions configures the 3D near-field model.
type NFIOptions struct {
	// Radius is the neighborhood radius (default 1: the 26
	// face/edge/corner neighbors).
	Radius int
	// Metric selects the ball shape (default Chebyshev).
	Metric geom.Metric
	// Workers caps worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// Engine selects neighbor resolution: the assignment's sparse cell
	// map (tree, the default and oracle) or a flat key-space index over
	// 3D Morton keys (keys). Results are identical; the 3D grid is
	// always too large for a dense table, so the keys engine replaces
	// every map probe with a directory-narrowed key search.
	Engine keynav.Engine
}

// NFI computes the 3D near-field ACD.
func NFI(a *Assignment, topo topology.Topology, opts NFIOptions) acd.Accumulator {
	defer obs.StartSpan("accumulation.nfi").End()
	if opts.Radius == 0 {
		opts.Radius = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	// rank resolves a neighbor cell to its owning rank under the
	// selected engine.
	rank := a.RankAt
	// EngineAuto resolves to keys here: the 3D grid (8^order cells) is
	// always past the dense-table budget, so the occupancy heuristic
	// never picks the map-probing tree path.
	if opts.Engine == keynav.EngineKeys || opts.Engine == keynav.EngineAuto {
		flat := a.keyIndex()
		rank = func(q geom3.Point3) int32 { return flat.Rank(sfc.Morton3Key(q.X, q.Y, q.Z)) }
	}
	n := a.N()
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	results := make(chan acd.Accumulator, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			var local acd.Accumulator
			for i := lo; i < hi; i++ {
				p := a.Particles[i]
				mine := int(a.Ranks[i])
				geom3.VisitNeighborhood(p, opts.Radius, opts.Metric, a.side, func(q geom3.Point3) {
					if r := rank(q); r >= 0 {
						local.Add(topo.Distance(mine, int(r)))
					}
				})
			}
			results <- local
		}(lo, hi)
	}
	var total acd.Accumulator
	for w := 0; w < workers; w++ {
		total.Merge(<-results)
	}
	// One Distance call per recorded event.
	total.Record()
	topology.CountDistanceQueries(total.Count)
	return total
}

// FFIResult is the far-field breakdown (as in 2D).
type FFIResult struct {
	Interpolation   acd.Accumulator
	Anterpolation   acd.Accumulator
	InteractionList acd.Accumulator
}

// Total merges the three parts.
func (r FFIResult) Total() acd.Accumulator {
	var t acd.Accumulator
	t.Merge(r.Interpolation)
	t.Merge(r.Anterpolation)
	t.Merge(r.InteractionList)
	return t
}

// FFI computes the 3D far-field ACD over the octree.
func FFI(a *Assignment, topo topology.Topology, workers int) FFIResult {
	defer obs.StartSpan("accumulation.ffi").End()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	treebuild := obs.StartSpan("treebuild")
	tree := octree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	treebuild.End()
	var res FFIResult
	for l := tree.Order; l >= 1; l-- {
		tree.VisitCells(l, func(p geom3.Point3, rep int32) {
			parent := tree.Rep(l-1, geom3.Pt3(p.X/2, p.Y/2, p.Z/2))
			d := topo.Distance(int(rep), int(parent))
			res.Interpolation.Add(d)
			res.Anterpolation.Add(d)
		})
	}
	for l := uint(2); l <= tree.Order; l++ {
		res.InteractionList.Merge(interactionLevel3D(tree, topo, l, workers))
	}
	res.Interpolation.Record()
	res.Anterpolation.Record()
	res.InteractionList.Record()
	// Interpolation and anterpolation share one Distance call per
	// parent-child link, so only the interpolation count contributes.
	topology.CountDistanceQueries(res.Interpolation.Count + res.InteractionList.Count)
	return res
}

func interactionLevel3D(tree *octree.RankTree, topo topology.Topology, level uint, workers int) acd.Accumulator {
	side := geom3.Side(level)
	if workers > int(side) {
		workers = int(side)
	}
	stripe := (int(side) + workers - 1) / workers
	var wg sync.WaitGroup
	results := make(chan acd.Accumulator, workers)
	for w := 0; w < workers; w++ {
		zLo := uint32(w * stripe)
		zHi := zLo + uint32(stripe)
		if zHi > side {
			zHi = side
		}
		if zLo >= zHi {
			continue
		}
		wg.Add(1)
		go func(zLo, zHi uint32) {
			defer wg.Done()
			var local acd.Accumulator
			for z := zLo; z < zHi; z++ {
				for y := uint32(0); y < side; y++ {
					for x := uint32(0); x < side; x++ {
						p := geom3.Pt3(x, y, z)
						rep := tree.Rep(level, p)
						if rep == -1 {
							continue
						}
						tree.InteractionList(level, p, func(_ geom3.Point3, other int32) {
							local.Add(topo.Distance(int(rep), int(other)))
						})
					}
				}
			}
			results <- local
		}(zLo, zHi)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	var total acd.Accumulator
	for r := range results {
		total.Merge(r)
	}
	return total
}

// ANNS3D computes the 3D average nearest neighbor stretch of a 3D
// curve at a resolution order: the mean of |f(p)-f(q)| / d(p,q) over
// all unordered pairs within the given Manhattan radius.
func ANNS3D(curve sfc.NDCurve, order uint, radius int) (mean float64, pairs uint64) {
	if curve.Dims() != 3 {
		panic("model3d: ANNS3D needs a 3D curve")
	}
	if radius < 1 {
		radius = 1
	}
	side := geom3.Side(order)
	idx := make([]uint64, geom3.Cells(order))
	buf := make([]uint32, 3)
	for z := uint32(0); z < side; z++ {
		for y := uint32(0); y < side; y++ {
			for x := uint32(0); x < side; x++ {
				buf[0], buf[1], buf[2] = x, y, z
				idx[geom3.CellID(geom3.Pt3(x, y, z), side)] = curve.IndexND(order, buf)
			}
		}
	}
	var sum float64
	for z := uint32(0); z < side; z++ {
		for y := uint32(0); y < side; y++ {
			for x := uint32(0); x < side; x++ {
				p := geom3.Pt3(x, y, z)
				pi := idx[geom3.CellID(p, side)]
				geom3.VisitNeighborhood(p, radius, geom.MetricManhattan, side, func(q geom3.Point3) {
					// Count each unordered pair once.
					if geom3.CellID(q, side) > geom3.CellID(p, side) {
						return
					}
					qi := idx[geom3.CellID(q, side)]
					gap := pi - qi
					if qi > pi {
						gap = qi - pi
					}
					sum += float64(gap) / float64(geom3.Manhattan(p, q))
					pairs++
				})
			}
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return sum / float64(pairs), pairs
}
