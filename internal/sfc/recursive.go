package sfc

import "sfcacd/internal/geom"

// This file contains the recursive constructions of the Hilbert, Z, and
// Gray curves exactly as the paper describes them in §II-A: H_{k+1} is
// four rotated copies of H_k, Z_{k+1} is four unrotated copies of Z_k,
// and G_{k+1} keeps the lower two copies and rotates the upper two by
// 180°. They are exponentially slower than the bit-twiddling forms and
// exist so tests can prove the fast forms realize the recursive
// definitions. The paper itself notes this split: "it is more
// computationally efficient to compute the order of each point directly
// with bit operations ... for theoretical considerations, the
// combinatorial properties of the recursive constructions are more
// valuable".

// RecursiveHilbert enumerates H_order as the list of cells in visit
// order, built by the rotate-and-glue recursion.
func RecursiveHilbert(order uint) []geom.Point {
	if order > 12 {
		panic("sfc: recursive construction limited to order <= 12")
	}
	return recurseHilbert(order)
}

// recurseHilbert builds the curve in the orientation that starts at
// (0,0) and ends at (2^k-1, 0), matching hilbertCurve.
func recurseHilbert(order uint) []geom.Point {
	if order == 0 {
		return []geom.Point{{X: 0, Y: 0}}
	}
	prev := recurseHilbert(order - 1)
	half := geom.Side(order - 1)
	out := make([]geom.Point, 0, 4*len(prev))
	// Quadrant 1: lower-left, previous iteration transposed (rotated so
	// the exit aligns upward).
	for _, p := range prev {
		out = append(out, geom.Point{X: p.Y, Y: p.X})
	}
	// Quadrant 2: upper-left, translated copy.
	for _, p := range prev {
		out = append(out, geom.Point{X: p.X, Y: p.Y + half})
	}
	// Quadrant 3: upper-right, translated copy.
	for _, p := range prev {
		out = append(out, geom.Point{X: p.X + half, Y: p.Y + half})
	}
	// Quadrant 4: lower-right, anti-transposed (rotated so the entry
	// aligns downward toward the exit corner).
	for _, p := range prev {
		out = append(out, geom.Point{X: 2*half - 1 - p.Y, Y: half - 1 - p.X})
	}
	return out
}

// RecursiveMorton enumerates Z_order by the unrotated 2x2 recursion.
func RecursiveMorton(order uint) []geom.Point {
	if order > 12 {
		panic("sfc: recursive construction limited to order <= 12")
	}
	if order == 0 {
		return []geom.Point{{X: 0, Y: 0}}
	}
	prev := RecursiveMorton(order - 1)
	half := geom.Side(order - 1)
	out := make([]geom.Point, 0, 4*len(prev))
	// Z visits quadrants in the order (0,0), (1,0), (0,1), (1,1) of
	// (xbit, ybit) — x is the least significant interleaved bit.
	offsets := []geom.Point{geom.Pt(0, 0), geom.Pt(half, 0), geom.Pt(0, half), geom.Pt(half, half)}
	for _, off := range offsets {
		for _, p := range prev {
			out = append(out, geom.Point{X: p.X + off.X, Y: p.Y + off.Y})
		}
	}
	return out
}

// RecursiveGray enumerates G_order: quadrants are visited in the
// Gray-code order of their (ybit, xbit) prefix — lower-left,
// lower-right, upper-right, upper-left — with the second and fourth
// copies traversed in reverse. (Working the Gray-decode definition
// through bit by bit shows the sub-curves alternate traversal
// direction; as a drawing of undirected edges this coincides with the
// paper's Figure 1(c).)
func RecursiveGray(order uint) []geom.Point {
	if order > 12 {
		panic("sfc: recursive construction limited to order <= 12")
	}
	if order == 0 {
		return []geom.Point{{X: 0, Y: 0}}
	}
	prev := RecursiveGray(order - 1)
	half := geom.Side(order - 1)
	out := make([]geom.Point, 0, 4*len(prev))
	add := func(off geom.Point, reversed bool) {
		for i := range prev {
			p := prev[i]
			if reversed {
				p = prev[len(prev)-1-i]
			}
			out = append(out, geom.Point{X: p.X + off.X, Y: p.Y + off.Y})
		}
	}
	add(geom.Pt(0, 0), false)
	add(geom.Pt(half, 0), true)
	add(geom.Pt(half, half), false)
	add(geom.Pt(0, half), true)
	return out
}
