package nbody

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestNewSimulatorValidates(t *testing.T) {
	good := System{Pos: []complex128{0.5 + 0.5i}, Q: []float64{1}}
	if _, err := NewSimulator(good, 1e-3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulator(good, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	bad := System{Pos: []complex128{2 + 0i}, Q: []float64{1}}
	if _, err := NewSimulator(bad, 1e-3); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestTwoBodyRepulsion(t *testing.T) {
	// Two like charges released from rest move directly apart along
	// their axis.
	sys := System{
		Pos: []complex128{0.4 + 0.5i, 0.6 + 0.5i},
		Q:   []float64{1, 1},
	}
	sim, err := NewSimulator(sys, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	sim.UseDirect = true
	for i := 0; i < 20; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if real(sim.Vel[0]) >= 0 || real(sim.Vel[1]) <= 0 {
		t.Fatalf("velocities %v, %v not separating", sim.Vel[0], sim.Vel[1])
	}
	if math.Abs(imag(sim.Vel[0])) > 1e-12 || math.Abs(imag(sim.Vel[1])) > 1e-12 {
		t.Fatalf("motion off axis: %v %v", sim.Vel[0], sim.Vel[1])
	}
	sep := real(sim.Sys.Pos[1]) - real(sim.Sys.Pos[0])
	if sep <= 0.2 {
		t.Fatalf("separation %f did not grow", sep)
	}
}

func TestAttractionClosesDistance(t *testing.T) {
	sys := System{
		Pos: []complex128{0.4 + 0.5i, 0.6 + 0.5i},
		Q:   []float64{1, -1},
	}
	sim, err := NewSimulator(sys, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	sim.UseDirect = true
	for i := 0; i < 20; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	sep := real(sim.Sys.Pos[1]) - real(sim.Sys.Pos[0])
	if sep >= 0.2 {
		t.Fatalf("separation %f did not shrink", sep)
	}
}

func TestMomentumConserved(t *testing.T) {
	// Forces are pairwise antisymmetric, so total momentum stays at
	// zero (until a wall reflection).
	sim := newRandomSim(t, 50, 1e-4)
	sim.UseDirect = true
	for i := 0; i < 10; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if p := sim.TotalMomentum(); cmplx.Abs(p) > 1e-10 {
		t.Fatalf("total momentum %v", p)
	}
}

func TestEnergyApproximatelyConserved(t *testing.T) {
	sim := newRandomSim(t, 40, 1e-5)
	sim.UseDirect = true
	u0, err := sim.PotentialEnergy()
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.KineticEnergy() + u0
	for i := 0; i < 20; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	u1, err := sim.PotentialEnergy()
	if err != nil {
		t.Fatal(err)
	}
	e1 := sim.KineticEnergy() + u1
	scale := math.Abs(e0) + 1
	if math.Abs(e1-e0)/scale > 1e-4 {
		t.Fatalf("energy drifted: %f -> %f", e0, e1)
	}
}

func TestPositionsStayInDomain(t *testing.T) {
	sim := newRandomSim(t, 30, 5e-3) // large steps force reflections
	sim.UseDirect = true
	for i := 0; i < 50; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		if err := sim.Sys.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if sim.Steps != 50 {
		t.Fatalf("Steps = %d", sim.Steps)
	}
	if sim.MaxSpeed() <= 0 {
		t.Fatal("no motion")
	}
}

func TestFMMAndDirectTrajectoriesAgree(t *testing.T) {
	mk := func(direct bool) *Simulator {
		sim := newRandomSim(t, 60, 1e-4)
		sim.UseDirect = direct
		sim.FMM = FMMOptions{Terms: 26}
		return sim
	}
	a, b := mk(true), mk(false)
	for i := 0; i < 5; i++ {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := range a.Sys.Pos {
		if d := cmplx.Abs(a.Sys.Pos[i] - b.Sys.Pos[i]); d > 1e-8 {
			t.Fatalf("trajectories diverged at particle %d by %g", i, d)
		}
	}
}

func TestReflect1(t *testing.T) {
	cases := []struct {
		x, v      float64
		wantX     float64
		wantVSign float64
	}{
		{0.5, 1, 0.5, 1},
		{-0.25, -1, 0.25, 1},
		{1.25, 1, 0.75, -1},
		{1.0, 1, 1 - 1e-12, -1},
		{-1.5, -2, 0.5, -2}, // double fold: -1.5 -> 1.5 -> 0.5, v: -2 -> 2 -> -2
	}
	for _, c := range cases {
		x, v := reflect1(c.x, c.v)
		if math.Abs(x-c.wantX) > 1e-9 || x < 0 || x >= 1 {
			t.Errorf("reflect1(%f): x = %v, want %v", c.x, x, c.wantX)
		}
		if v*c.wantVSign < 0 && c.wantVSign != 0 {
			// wantVSign carries the expected final value for the last
			// case; compare magnitude-preserving sign only.
			t.Errorf("reflect1(%f): v = %v", c.x, v)
		}
	}
}

// TestReflect1Runaway is the regression for the bounce-at-a-time fold:
// a runaway particle overshooting the box by ~1e9 must fold back in
// O(1), where the old loop bounced once per unit of overshoot (~5e8
// iterations before returning). With the closed form these calls are
// instant; the results must still land strictly inside [0, 1) and
// agree with a modest-overshoot fold of the same phase.
func TestReflect1Runaway(t *testing.T) {
	for _, c := range []struct{ x, v float64 }{
		{1e9 + 0.25, 1e9},
		{-1e9 - 0.25, -1e9},
		{4.25, 1}, // same phase as 1e9+0.25 (even integer apart)
	} {
		x, v := reflect1(c.x, c.v)
		if x < 0 || x >= 1 {
			t.Fatalf("reflect1(%g): x = %v outside [0,1)", c.x, x)
		}
		if math.Abs(v) != math.Abs(c.v) {
			t.Fatalf("reflect1(%g): |v| changed from %g to %g", c.x, c.v, v)
		}
	}
	// Phase agreement: folds that differ by a full period (2 units of
	// overshoot) are identical, arbitrarily far out.
	xNear, vNear := reflect1(4.25, 1)
	xFar, vFar := reflect1(4.25+2e9, 1)
	if math.Abs(xNear-xFar) > 1e-9 || vNear != vFar {
		t.Fatalf("period-2 phase broken: near (%v,%v), far (%v,%v)", xNear, vNear, xFar, vFar)
	}
}

// TestReflect1MatchesBounceLoop checks the closed form against the
// reference one-bounce-at-a-time fold on moderate overshoots (where
// the reference terminates promptly).
func TestReflect1MatchesBounceLoop(t *testing.T) {
	ref := func(x, v float64) (float64, float64) {
		for {
			switch {
			case x < 0:
				x, v = -x, -v
			case x >= 1:
				x, v = 2-x, -v
				if x >= 1 {
					x = 1 - 1e-12
				}
			default:
				return x, v
			}
		}
	}
	for i := -800; i <= 800; i++ {
		x := float64(i) * 0.0125001 // avoids exact wall multiples
		wantX, wantV := ref(x, 1)
		gotX, gotV := reflect1(x, 1)
		if math.Abs(gotX-wantX) > 1e-9 || gotV != wantV {
			t.Fatalf("reflect1(%v) = (%v, %v), reference fold gives (%v, %v)", x, gotX, gotV, wantX, wantV)
		}
	}
}

func newRandomSim(t *testing.T, n int, dt float64) *Simulator {
	t.Helper()
	sys := randomSystem(31, n)
	sim, err := NewSimulator(sys, dt)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}
