package topology

import "math/bits"

// RowFiller is implemented by topologies that can fill a whole
// distance row substantially faster than repeated Distance calls —
// straight-line arithmetic with no per-call rank validation or
// interface dispatch. DistanceTable uses it to cut its materialization
// cost, which lowers the lookup volume needed to amortize a build.
type RowFiller interface {
	// FillDistanceRow sets row[dst] = Distance(src, dst) for every dst
	// in [0, len(row)); len(row) is always P().
	FillDistanceRow(src int, row []uint16)
}

// FillDistanceRow implements RowFiller.
func (b *Bus) FillDistanceRow(src int, row []uint16) {
	for d := range row {
		if d < src {
			row[d] = uint16(src - d)
		} else {
			row[d] = uint16(d - src)
		}
	}
}

// FillDistanceRow implements RowFiller.
func (r *Ring) FillDistanceRow(src int, row []uint16) {
	n := len(row)
	for d := range row {
		v := src - d
		if v < 0 {
			v = -v
		}
		if wrap := n - v; wrap < v {
			v = wrap
		}
		row[d] = uint16(v)
	}
}

// coordLUTSide bounds the per-axis lookup tables the grid fills use:
// P <= 65536 (the DistanceTable range) means sides up to 256.
const coordLUTSide = 256

// FillDistanceRow implements RowFiller.
func (m *Mesh) FillDistanceRow(src int, row []uint16) {
	c := m.coords[src]
	if m.side > coordLUTSide {
		for d := range row {
			cd := m.coords[d]
			dx := int(c.X) - int(cd.X)
			if dx < 0 {
				dx = -dx
			}
			dy := int(c.Y) - int(cd.Y)
			if dy < 0 {
				dy = -dy
			}
			row[d] = uint16(dx + dy)
		}
		return
	}
	// Per-axis LUTs turn each cell into two L1 loads and an add.
	var lx, ly [coordLUTSide]uint16
	for v := uint32(0); v < m.side; v++ {
		dx := int(c.X) - int(v)
		if dx < 0 {
			dx = -dx
		}
		lx[v] = uint16(dx)
		dy := int(c.Y) - int(v)
		if dy < 0 {
			dy = -dy
		}
		ly[v] = uint16(dy)
	}
	for d := range row {
		cd := m.coords[d]
		row[d] = lx[cd.X] + ly[cd.Y]
	}
}

// FillDistanceRow implements RowFiller.
func (t *Torus) FillDistanceRow(src int, row []uint16) {
	c := t.coords[src]
	if t.side > coordLUTSide {
		for d := range row {
			cd := t.coords[d]
			row[d] = uint16(wrapDist(c.X, cd.X, t.side) + wrapDist(c.Y, cd.Y, t.side))
		}
		return
	}
	var lx, ly [coordLUTSide]uint16
	for v := uint32(0); v < t.side; v++ {
		lx[v] = uint16(wrapDist(c.X, v, t.side))
		ly[v] = uint16(wrapDist(c.Y, v, t.side))
	}
	for d := range row {
		cd := t.coords[d]
		row[d] = lx[cd.X] + ly[cd.Y]
	}
}

// FillDistanceRow implements RowFiller.
func (h *Hypercube) FillDistanceRow(src int, row []uint16) {
	for d := range row {
		row[d] = uint16(bits.OnesCount32(uint32(src ^ d)))
	}
}

// FillDistanceRow implements RowFiller.
func (q *QuadtreeNet) FillDistanceRow(src int, row []uint16) {
	for d := range row {
		if d == src {
			row[d] = 0
			continue
		}
		top := uint(bits.Len32(uint32(src ^ d)))
		row[d] = uint16(2 * ((top + 1) / 2))
	}
}
