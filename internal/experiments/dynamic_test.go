package experiments

import (
	"context"
	"sfcacd/internal/keynav"
	"strings"
	"testing"
)

func TestRunDynamic(t *testing.T) {
	p := testParams
	p.Particles = 2000
	res, err := RunDynamic(context.Background(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 || len(res.Curves) != 4 {
		t.Fatalf("bad shape: %d steps, %d curves", len(res.Steps), len(res.Curves))
	}
	// At step 0 the two policies are identical by construction.
	for c := range res.Curves {
		if res.Static[c][0] != res.Reorder[c][0] {
			t.Fatalf("%s: step-0 static %f != reorder %f",
				res.Curves[c], res.Static[c][0], res.Reorder[c][0])
		}
	}
	// The paper's observation: the static assignment stays competitive
	// — the ACD under the frozen ordering never blows up relative to
	// the freshly reordered one (small drift, locality mostly kept).
	for c := range res.Curves {
		for s := range res.Steps {
			if res.Static[c][s] > 2*res.Reorder[c][s]+1 {
				t.Errorf("%s step %d: static ACD %f far above reorder %f",
					res.Curves[c], s, res.Static[c][s], res.Reorder[c][s])
			}
		}
	}
	// And the relative curve ordering is unchanged by drift: hilbert
	// stays below rowmajor under both policies at every step.
	const hilbert, rowmajor = 0, 3
	for s := range res.Steps {
		if res.Static[hilbert][s] >= res.Static[rowmajor][s] {
			t.Errorf("step %d static: hilbert %f >= rowmajor %f",
				s, res.Static[hilbert][s], res.Static[rowmajor][s])
		}
		if res.Reorder[hilbert][s] >= res.Reorder[rowmajor][s] {
			t.Errorf("step %d reorder: hilbert %f >= rowmajor %f",
				s, res.Reorder[hilbert][s], res.Reorder[rowmajor][s])
		}
	}
	if _, err := RunDynamic(context.Background(), p, 0); err == nil {
		t.Error("steps=0 accepted")
	}
	var b strings.Builder
	st, re := res.SeriesTables()
	if err := st.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := re.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestRunDynamicDeterministic(t *testing.T) {
	p := testParams
	p.Particles = 800
	a, err := RunDynamic(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDynamic(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Curves {
		for s := range a.Steps {
			if a.Static[c][s] != b.Static[c][s] || a.Reorder[c][s] != b.Reorder[c][s] {
				t.Fatal("RunDynamic not deterministic")
			}
		}
	}
}

func TestRunThreeD(t *testing.T) {
	p := ThreeDDefault
	p.Particles = 3000
	p.Order = 5
	p.ANNSOrder = 3
	res, err := RunThreeD(context.Background(), p, 0, keynav.EngineTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 {
		t.Fatalf("curves %v", res.Curves)
	}
	// The 2D headline carries to 3D: hilbert3d beats rowmajor3d on
	// both families.
	idx := map[string]int{}
	for i, n := range res.Curves {
		idx[n] = i
	}
	if res.NFI[idx["hilbert3d"]] >= res.NFI[idx["rowmajor3d"]] {
		t.Errorf("3D NFI: hilbert %f >= rowmajor %f",
			res.NFI[idx["hilbert3d"]], res.NFI[idx["rowmajor3d"]])
	}
	if res.FFI[idx["hilbert3d"]] >= res.FFI[idx["rowmajor3d"]] {
		t.Errorf("3D FFI: hilbert %f >= rowmajor %f",
			res.FFI[idx["hilbert3d"]], res.FFI[idx["rowmajor3d"]])
	}
	// The ANNS finding also carries: morton3d beats hilbert3d and
	// gray3d.
	if res.ANNS[idx["morton3d"]] >= res.ANNS[idx["hilbert3d"]] ||
		res.ANNS[idx["morton3d"]] >= res.ANNS[idx["gray3d"]] {
		t.Errorf("3D ANNS ordering unexpected: %v", res.ANNS)
	}
	var b strings.Builder
	if err := res.Matrix().Render(&b); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Particles = 0
	if _, err := RunThreeD(context.Background(), bad, 0, keynav.EngineTree); err == nil {
		t.Error("bad 3D params accepted")
	}
	bad = p
	bad.Particles = 1 << 30
	if _, err := RunThreeD(context.Background(), bad, 0, keynav.EngineTree); err == nil {
		t.Error("overfull 3D grid accepted")
	}
}
