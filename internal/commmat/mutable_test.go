package commmat

import (
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

// randomCanonicalStream draws count (src <= dst) pairs, biased toward
// small deltas like chunk-monotone streams but with a tail that
// exercises the overflow map on banded strides.
func randomCanonicalStream(p, count int, seed uint64) [][2]int32 {
	r := rng.New(seed)
	pairs := make([][2]int32, count)
	for i := range pairs {
		src := int32(r.Intn(p))
		var d int
		if r.Uint32n(16) == 0 {
			d = r.Intn(p) // occasional far pair
		} else {
			d = r.Intn(64)
		}
		dst := src + int32(d)
		if int(dst) >= p {
			dst = int32(p - 1)
		}
		pairs[i] = [2]int32{src, dst}
	}
	return pairs
}

// TestMutableMatchesBuilder pins the differential-oracle property the
// incremental layer rests on: a Mutable fed a stream produces exactly
// the Matrix a Builder produces from the same stream, across the
// dense, full-grid CSR, and banded-with-overflow forms.
func TestMutableMatchesBuilder(t *testing.T) {
	for _, p := range []int{1, 4, 100, 1024, 4096} {
		pairs := randomCanonicalStream(p, 5000, uint64(p))
		m := NewMutable(p)
		b := NewBuilder(p, 1)
		s := b.Shard(0)
		for _, pr := range pairs {
			m.Add(pr[0], pr[1])
			s.Add(pr[0], pr[1])
		}
		want := b.Finalize()
		got := m.Matrix()
		if !Equal(got, want) {
			t.Fatalf("p=%d: mutable matrix diverged from builder (events %d vs %d, pairs %d vs %d)",
				p, got.Events(), want.Events(), got.Pairs(), want.Pairs())
		}
		if got.Events() != m.Events() || got.Pairs() != m.Pairs() {
			t.Fatalf("p=%d: materialized counts disagree with live counters", p)
		}
	}
}

// TestMutableSubRetractsExactly adds a base stream plus a churn stream,
// retracts the churn in a different order, and requires the result to
// equal a from-scratch build of the base stream alone.
func TestMutableSubRetractsExactly(t *testing.T) {
	for _, p := range []int{16, 1024, 4096} {
		base := randomCanonicalStream(p, 3000, uint64(p)+1)
		churn := randomCanonicalStream(p, 1000, uint64(p)+2)
		m := NewMutable(p)
		for _, pr := range base {
			m.Add(pr[0], pr[1])
		}
		for _, pr := range churn {
			m.Add(pr[0], pr[1])
		}
		// Retract back-to-front to decorrelate from addition order.
		for i := len(churn) - 1; i >= 0; i-- {
			m.Sub(churn[i][0], churn[i][1])
		}
		b := NewBuilder(p, 1)
		s := b.Shard(0)
		for _, pr := range base {
			s.Add(pr[0], pr[1])
		}
		if !Equal(m.Matrix(), b.Finalize()) {
			t.Fatalf("p=%d: retraction left residue", p)
		}
	}
}

// TestMutableResetAndRefill checks Reset empties completely and the
// matrix is reusable afterwards.
func TestMutableResetAndRefill(t *testing.T) {
	p := 4096 // banded stride: both grid and overflow populated
	m := NewMutable(p)
	pairs := randomCanonicalStream(p, 2000, 7)
	for _, pr := range pairs {
		m.Add(pr[0], pr[1])
	}
	m.Reset()
	if m.Events() != 0 || m.Pairs() != 0 {
		t.Fatalf("after Reset: events=%d pairs=%d", m.Events(), m.Pairs())
	}
	seen := 0
	m.Visit(func(src, dst int32, n uint32) { seen++ })
	if seen != 0 {
		t.Fatalf("after Reset: Visit produced %d pairs", seen)
	}
	for _, pr := range pairs {
		m.Add(pr[0], pr[1])
	}
	b := NewBuilder(p, 1)
	s := b.Shard(0)
	for _, pr := range pairs {
		s.Add(pr[0], pr[1])
	}
	if !Equal(m.Matrix(), b.Finalize()) {
		t.Fatalf("refill after Reset diverged from builder")
	}
}

// TestMutableContractMatchesMatrix pins the in-place contractions
// against the materialized Matrix's contraction.
func TestMutableContractMatchesMatrix(t *testing.T) {
	p := 1024
	curve, err := sfc.ByName("hilbert")
	if err != nil {
		t.Fatal(err)
	}
	torus := topology.NewTorus(5, curve)
	m := NewMutable(p)
	for _, pr := range randomCanonicalStream(p, 4000, 11) {
		m.Add(pr[0], pr[1])
	}
	mat := m.Matrix()
	var want acd.Accumulator
	mat.ContractSym(torus, &want)
	var got acd.Accumulator
	m.ContractSym(torus, &got)
	if got != want {
		t.Fatalf("ContractSym: got %+v, want %+v", got, want)
	}
	dt := topology.NewDistanceTable(torus)
	var gotT acd.Accumulator
	m.ContractTableSym(dt, &gotT)
	if gotT != want {
		t.Fatalf("ContractTableSym: got %+v, want %+v", gotT, want)
	}
}

// TestMutablePanics pins the misuse contracts: retracting an absent
// pair and adding a non-canonical pair must fail loudly, because both
// mean the incremental maintainer's event accounting has diverged.
func TestMutablePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	m := NewMutable(64)
	m.Add(3, 5)
	expectPanic("Sub of absent band pair", func() { m.Sub(3, 6) })
	expectPanic("non-canonical Add", func() { m.Add(5, 3) })
	expectPanic("out-of-range Add", func() { m.Add(0, 64) })
	big := NewMutable(4096)
	expectPanic("Sub of absent overflow pair", func() { big.Sub(0, 4000) })
}

// TestEqualDetectsDifferences spot-checks Equal's negative cases.
func TestEqualDetectsDifferences(t *testing.T) {
	mk := func(pairs ...[2]int32) *Matrix {
		m := NewMutable(16)
		for _, pr := range pairs {
			m.Add(pr[0], pr[1])
		}
		return m.Matrix()
	}
	a := mk([2]int32{1, 2}, [2]int32{1, 2}, [2]int32{3, 7})
	if !Equal(a, mk([2]int32{1, 2}, [2]int32{3, 7}, [2]int32{1, 2})) {
		t.Fatalf("order-insensitive streams compared unequal")
	}
	if Equal(a, mk([2]int32{1, 2}, [2]int32{3, 7})) {
		t.Fatalf("different event counts compared equal")
	}
	if Equal(a, mk([2]int32{1, 2}, [2]int32{1, 2}, [2]int32{3, 8})) {
		t.Fatalf("different pair sets compared equal")
	}
}
