package obs

import (
	"sync"
	"testing"
)

// TestRegistryConcurrentSameName hammers first-use registration of the
// same names from many goroutines: every caller must get the same
// metric instance (updates from all of them fold into one value), with
// no data race on the registration maps. Run under -race in CI.
func TestRegistryConcurrentSameName(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 10, 100}
	const goroutines = 32

	var wg sync.WaitGroup
	counters := make([]*Counter, goroutines)
	gauges := make([]*Gauge, goroutines)
	hists := make([]*Histogram, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counters[i] = r.GetCounter("race.counter")
			counters[i].Inc()
			gauges[i] = r.GetGauge("race.gauge")
			gauges[i].Set(float64(i))
			hists[i] = r.GetHistogram("race.hist", bounds)
			hists[i].Observe(float64(i))
		}(i)
	}
	wg.Wait()

	for i := 1; i < goroutines; i++ {
		if counters[i] != counters[0] {
			t.Fatalf("goroutine %d got a distinct counter instance", i)
		}
		if gauges[i] != gauges[0] {
			t.Fatalf("goroutine %d got a distinct gauge instance", i)
		}
		if hists[i] != hists[0] {
			t.Fatalf("goroutine %d got a distinct histogram instance", i)
		}
	}
	if v := counters[0].Value(); v != goroutines {
		t.Errorf("counter = %d, want %d (all increments on one instance)", v, goroutines)
	}
	if hs := hists[0].Snapshot(); hs.Count != goroutines {
		t.Errorf("histogram count = %d, want %d", hs.Count, goroutines)
	}
}
