package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunMetricsLandscape(t *testing.T) {
	cfg := MetricsConfig{
		Params:      testParams,
		MetricOrder: 6,
		QuerySide:   8,
		QueryTrials: 1000,
	}
	res, err := RunMetrics(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const hilbert, morton, gray, rowmajor = 0, 1, 2, 3
	// The paper's central tension, in one table:
	//  - ANNS crowns Z/row-major over Hilbert.
	if !(res.ANNS[morton] < res.ANNS[hilbert]) {
		t.Errorf("ANNS: morton %f !< hilbert %f", res.ANNS[morton], res.ANNS[hilbert])
	}
	//  - Clustering crowns Hilbert over Z and Gray.
	if !(res.Clusters[hilbert] < res.Clusters[morton] && res.Clusters[hilbert] < res.Clusters[gray]) {
		t.Errorf("clustering: hilbert %f not best of recursive curves", res.Clusters[hilbert])
	}
	//  - The application ACD also crowns Hilbert.
	if !(res.NFI[hilbert] < res.NFI[morton] && res.NFI[hilbert] < res.NFI[rowmajor]) {
		t.Errorf("NFI ACD: hilbert %f not best", res.NFI[hilbert])
	}
	// Max stretch dominates mean stretch for every curve.
	for c := range res.Curves {
		if res.MaxStretch[c] < res.ANNS[c] {
			t.Errorf("%s: max stretch %f < mean %f", res.Curves[c], res.MaxStretch[c], res.ANNS[c])
		}
	}
	var b strings.Builder
	if err := res.Matrix().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Metric landscape") {
		t.Error("title missing")
	}
	// Config validation.
	bad := cfg
	bad.MetricOrder = 0
	if _, err := RunMetrics(context.Background(), bad); err == nil {
		t.Error("bad metric order accepted")
	}
	bad = cfg
	bad.QueryTrials = 0
	if _, err := RunMetrics(context.Background(), bad); err == nil {
		t.Error("zero query trials accepted")
	}
	bad = cfg
	bad.Params.Trials = 0
	if _, err := RunMetrics(context.Background(), bad); err == nil {
		t.Error("bad params accepted")
	}
}
