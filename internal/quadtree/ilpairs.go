package quadtree

import "sfcacd/internal/geom"

// The interaction-list relation is symmetric: o is in IL(c) exactly
// when c is in IL(o) (parent adjacency and Chebyshev adjacency are both
// symmetric). VisitUpperInteractionPairs exploits this to enumerate
// each unordered cell pair once, from its row-major-lower member, with
// the member offsets precomputed per cell parity — the geometry of the
// list depends only on (x mod 2, y mod 2), so the runtime loop is a
// handful of adds and bounds tests instead of the full candidate scan
// of InteractionList.

// ilOffset is a relative interaction-list member position.
type ilOffset struct{ dx, dy int8 }

// ilUpper[(y&1)<<1|(x&1)] lists the offsets of the interaction-list
// members that follow (x, y) in row-major order.
var ilUpper [4][]ilOffset

func init() {
	for py := 0; py < 2; py++ {
		for px := 0; px < 2; px++ {
			// A cell of this parity with its parent away from any grid
			// edge; only relative geometry matters.
			x, y := 4+px, 4+py
			self := geom.Pt(uint32(x), uint32(y))
			var offs []ilOffset
			for ny := y/2 - 1; ny <= y/2+1; ny++ {
				for nx := x/2 - 1; nx <= x/2+1; nx++ {
					for cy := 2 * ny; cy < 2*ny+2; cy++ {
						for cx := 2 * nx; cx < 2*nx+2; cx++ {
							if geom.Chebyshev(self, geom.Pt(uint32(cx), uint32(cy))) <= 1 {
								continue // adjacent (or self): near field
							}
							ox, oy := cx-x, cy-y
							if oy > 0 || (oy == 0 && ox > 0) {
								offs = append(offs, ilOffset{dx: int8(ox), dy: int8(oy)})
							}
						}
					}
				}
			}
			ilUpper[py<<1|px] = offs
		}
	}
}

// VisitUpperInteractionPairs calls fn once for every unordered
// interaction-list pair {c, o} of occupied cells at the level whose
// row-major-lower member c lies in rows [yLo, yHi), passing c's
// representative first. Because the list relation is symmetric, the
// ordered exchange stream of InteractionList is exactly every visited
// pair counted once in each direction.
func (t *RankTree) VisitUpperInteractionPairs(level uint, yLo, yHi uint32, fn func(rep, other int32)) {
	if level < 2 {
		return
	}
	side := geom.Side(level)
	if yHi > side {
		yHi = side
	}
	lv := t.levels[level]
	for y := yLo; y < yHi; y++ {
		row := int(y) * int(side)
		offs := ilUpper[(y&1)<<1:][:2]
		for x := uint32(0); x < side; x++ {
			rep := lv[row+int(x)]
			if rep == -1 {
				continue
			}
			for _, o := range offs[x&1] {
				nx := int(x) + int(o.dx)
				ny := int(y) + int(o.dy)
				if nx < 0 || ny < 0 || nx >= int(side) || ny >= int(side) {
					continue
				}
				if other := lv[ny*int(side)+nx]; other != -1 {
					fn(rep, other)
				}
			}
		}
	}
}

// VisitRowCells is VisitCells restricted to rows [yLo, yHi): fn is
// called for every occupied cell there, in row-major order.
func (t *RankTree) VisitRowCells(level uint, yLo, yHi uint32, fn func(x, y uint32, rep int32)) {
	side := geom.Side(level)
	if yHi > side {
		yHi = side
	}
	lv := t.levels[level]
	for y := yLo; y < yHi; y++ {
		row := uint64(y) * uint64(side)
		for x := uint32(0); x < side; x++ {
			if rep := lv[row+uint64(x)]; rep != -1 {
				fn(x, y, rep)
			}
		}
	}
}
