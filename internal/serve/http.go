package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"sfcacd/internal/experiments"
	"sfcacd/internal/obs"
	"sfcacd/internal/resultcache"
)

// maxBodyBytes bounds a request body; parameter JSON is tiny.
const maxBodyBytes = 1 << 20

// maxTraceIDLen bounds an honored X-Trace-Id header.
const maxTraceIDLen = 64

// HeaderFleetForwarded marks a request a fleet node already routed:
// the receiver serves it locally instead of forwarding again (loop
// prevention), and the rate limiter skips it (the client was charged
// at the entry node). Clients can also set it to pin a request to the
// node they addressed.
const HeaderFleetForwarded = "X-Fleet-Forwarded"

// HeaderClientID keys per-client rate limiting; absent, the client's
// remote address stands in.
const HeaderClientID = "X-Client-Id"

// Envelope is the JSON body of a successful experiment response. Raw
// fields replay the cached bytes verbatim, so the body of a cache hit
// is byte-identical to the body of the miss that produced it; only
// the X-Cache header differs.
type Envelope struct {
	Experiment string          `json:"experiment"`
	Key        string          `json:"key"`
	Params     json.RawMessage `json:"params"`
	Result     json.RawMessage `json:"result"`
	Manifest   json.RawMessage `json:"manifest,omitempty"`
}

// errorBody is the JSON body of a failed request.
type errorBody struct {
	Error      string `json:"error"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	// Timeout is the per-request compute deadline that a 504 ran into,
	// as a Go duration string.
	Timeout string `json:"timeout,omitempty"`
	// RetryAfter mirrors the Retry-After header of a 429, as a Go
	// duration string.
	RetryAfter string `json:"retry_after,omitempty"`
}

// listEntry is one experiment in the GET /v1/experiments listing.
type listEntry struct {
	Name        string             `json:"name"`
	Description string             `json:"description"`
	PaperParams experiments.Params `json:"paper_params"`
	// ScaledParams is the default configuration a POST without a body
	// runs (the paper preset scaled down defaultScaleSteps times).
	ScaledParams experiments.Params `json:"scaled_params"`
}

// defaultScaleSteps matches acdbench's default -scale: POSTed bodies
// override a preset scaled down this many steps unless ?preset=paper.
const defaultScaleSteps = 2

// NewHandler returns the daemon's HTTP API over s:
//
//	POST /v1/experiments/{name}   run (or serve from cache) one experiment
//	GET  /v1/experiments          registry listing
//	GET  /healthz                 liveness
//	GET  /readyz                  readiness (503 once draining)
//	GET  /metrics                 Prometheus text exposition
//	                              (JSON snapshot via Accept: application/json)
//	GET  /metrics.json            obs registry snapshot, always JSON
//	GET  /debug/traces            retained-trace index
//	GET  /debug/traces/{id}       one trace's span tree
//	GET  /debug/pprof/...         pprof handlers
//
// Every non-/debug/ request is traced: the response carries
// X-Trace-Id (honored from the request when present), and completed
// traces are offered to the server's tail-sampling trace store.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments/{name}", s.handleRun)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/experiments", handleList)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obs.Default().Snapshot())
	})
	mux.HandleFunc("GET /debug/traces", s.handleTraceIndex)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.withTracing(s.withRateLimit(mux))
}

// withRateLimit enforces the per-client token bucket on /v1/ routes.
// Fleet-forwarded requests pass through: the originating client was
// already charged at the node it addressed, and internal traffic must
// not starve under a client's quota. Batch requests are charged one
// token here and the remaining cells in handleBatch once the cell
// count is known.
func (s *Server) withRateLimit(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") || r.Header.Get(HeaderFleetForwarded) != "" {
			next.ServeHTTP(w, r)
			return
		}
		if ok, retry := s.limiter.Allow(clientID(r), 1); !ok {
			writeRateLimited(w, retry)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// clientID resolves the quota identity of a request: a well-formed
// X-Client-Id header, else the remote host.
func clientID(r *http.Request) string {
	if id := sanitizeTraceID(r.Header.Get(HeaderClientID)); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeRateLimited answers 429 with a Retry-After the client can back
// off on: the token deficit rounded up to whole seconds (never +1 past
// an exact-second deficit), floored at 1 so the header is never 0.
func writeRateLimited(w http.ResponseWriter, retry time.Duration) {
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, errorBody{
		Error:      "serve: rate limit exceeded",
		RetryAfter: retry.Round(time.Millisecond).String(),
	})
}

// handleHealth answers GET /healthz: plain liveness for the
// single-process daemon, and — in fleet mode — the node's identity
// and membership so operators can read the topology off any replica.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.peers == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"node":    s.peers.Self().ID,
		"members": s.peers.Members(),
	})
}

// withTracing gives every non-/debug/ request a request-scoped trace:
// an id (honored from X-Trace-Id, else drawn from the trace store's
// deterministic source), a root span the handler goroutine attaches
// to, and — after the response is written — a tail-sampling offer to
// the retention store. /debug/ endpoints are exempt so reading traces
// does not mint traces.
func (s *Server) withTracing(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/debug/") {
			next.ServeHTTP(w, r)
			return
		}
		id := sanitizeTraceID(r.Header.Get("X-Trace-Id"))
		if id == "" {
			id = s.traces.NewID()
		}
		tr := obs.NewTrace(id, r.Method+" "+r.URL.Path, s.traces.Now())
		w.Header().Set("X-Trace-Id", id)
		detach := tr.Root().Attach()
		rec := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
		detach()
		tr.Finish(rec.status, s.traces.Now())
		s.traces.Offer(tr)
	})
}

// sanitizeTraceID returns the id if it is safe to echo into headers,
// logs, and URL paths — ASCII letters, digits, '-', '_', at most
// maxTraceIDLen — and "" otherwise.
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > maxTraceIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return ""
		}
	}
	return id
}

// statusWriter captures the response status for trace finalization,
// forwarding Flush and exposing Unwrap like the daemon's logging
// recorder so streaming handlers behind the middleware keep working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// handleReady answers GET /readyz: 200 while serving, 503 once
// SetDraining has run, so fleet load balancers stop routing here
// before Shutdown closes the listener.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics answers GET /metrics, content-negotiated: Prometheus
// text exposition by default, the JSON registry snapshot when the
// Accept header asks for application/json.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := obs.Default().Snapshot()
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// handleTraceIndex answers GET /debug/traces with the retained-trace
// index, newest first.
func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.traces.List()})
}

// handleTraceGet answers GET /debug/traces/{id} with one trace's full
// span tree. Traces of still-running detached computations render
// their current, partially complete state.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no retained trace %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, tr.Snapshot(s.traces.Now()))
}

// handleRun answers POST /v1/experiments/{name}. The body, when
// present, is a partial experiments.Params JSON object merged over the
// preset selected by ?preset=scaled (default) or ?preset=paper.
//
// In fleet mode, a request whose content address is owned by another
// replica is proxied there (unless already forwarded once), so the
// owner computes and caches it; any proxy failure degrades to local
// serving.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := experiments.Lookup(name); !ok {
		writeError(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown experiment %q", name)})
		return
	}
	preset := r.URL.Query().Get("preset")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("reading body: %v", err)})
		return
	}
	params, perr := mergeParams(name, preset, body)
	if perr != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: perr.Error()})
		return
	}

	if s.forwardToOwner(w, r, name, preset, body, params) {
		return
	}

	resp, err := s.Do(r.Context(), name, params)
	if err != nil {
		s.writeDoError(w, r, err)
		return
	}
	w.Header().Set("X-Cache", string(resp.Status))
	writeJSON(w, http.StatusOK, envelopeOf(resp.Entry))
}

// mergeParams resolves the effective parameters of a request: the
// named experiment's preset (scaled by default, ?preset=paper for
// paper scale) with the body's partial Params object merged over it.
func mergeParams(name, preset string, body []byte) (experiments.Params, error) {
	spec, ok := experiments.Lookup(name)
	if !ok {
		return experiments.Params{}, fmt.Errorf("unknown experiment %q", name)
	}
	params := spec.Paper
	switch preset {
	case "", "scaled":
		params = params.Scale(defaultScaleSteps)
	case "paper":
	default:
		return experiments.Params{}, fmt.Errorf("unknown preset %q (use scaled or paper)", preset)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	// io.EOF means an absent body: run the preset as-is.
	if err := dec.Decode(&params); err != nil && !errors.Is(err, io.EOF) {
		return experiments.Params{}, fmt.Errorf("bad params body: %v", err)
	}
	return params, nil
}

// envelopeOf wraps a cached entry for the response body. Raw fields
// replay the cached bytes, so every node answering from the same
// entry produces byte-identical bodies.
func envelopeOf(e resultcache.Entry) Envelope {
	return Envelope{
		Experiment: e.Experiment,
		Key:        e.Key.String(),
		Params:     e.Params,
		Result:     e.Result,
		Manifest:   e.Manifest,
	}
}

// forwardCache maps the owner's X-Cache onto the client-facing value:
// a hit on the owner was, from the node the client addressed, served
// out of a peer's cache.
func forwardCache(cache string) string {
	if cache == string(StatusHit) {
		return string(StatusPeer)
	}
	return cache
}

// forwardToOwner proxies the request to the replica that owns its
// content address and relays the answer, reporting whether it wrote
// the response. It declines (returns false, serving locally) outside
// fleet mode, for requests already forwarded once, for keys this node
// owns, for parameters local validation would reject anyway — and,
// crucially, on any forwarding error, which is the fleet's graceful
// degradation: a dead owner costs a local recompute, never an error.
func (s *Server) forwardToOwner(w http.ResponseWriter, r *http.Request, name, preset string, body []byte, params experiments.Params) bool {
	if s.peers == nil || r.Header.Get(HeaderFleetForwarded) != "" {
		return false
	}
	if err := params.Validate(); err != nil {
		return false // let the local path produce the 400
	}
	owner, self := s.peers.Owner(RequestKey(name, params))
	if self {
		return false
	}
	fr, err := s.peers.Forward(r.Context(), owner, name, preset, body)
	if err != nil {
		return false
	}
	if cache := forwardCache(fr.Cache); cache != "" {
		w.Header().Set("X-Cache", cache)
	}
	w.Header().Set("X-Fleet-Node", owner.ID)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(fr.Body)))
	w.WriteHeader(fr.StatusCode)
	w.Write(fr.Body)
	return true
}

// writeDoError maps Server.Do errors onto HTTP statuses. Every error
// body goes through writeError — one encoding path, every response
// with Content-Length. The overload 503 carries a Retry-After derived
// from the queue depth and the observed mean compute time, so backoff
// scales with how far behind the server actually is.
func (s *Server) writeDoError(w http.ResponseWriter, r *http.Request, err error) {
	var overload *OverloadError
	var deadline *DeadlineError
	switch {
	case errors.Is(err, ErrUnknownExperiment):
		writeError(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrInvalidParams):
		writeError(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.As(err, &overload):
		hint := s.RetryAfterHint(overload.QueueDepth)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(hint.Seconds()))))
		writeError(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), QueueDepth: overload.QueueDepth})
	case errors.As(err, &deadline):
		writeError(w, http.StatusGatewayTimeout, errorBody{Error: err.Error(), Timeout: deadline.Timeout.String()})
	case r.Context().Err() != nil:
		// The client is gone; nothing useful can be written. 499 is
		// the de-facto "client closed request" status.
		w.WriteHeader(499)
	default:
		writeError(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// handleList answers GET /v1/experiments from the registry.
func handleList(w http.ResponseWriter, r *http.Request) {
	specs := experiments.Registry()
	out := make([]listEntry, len(specs))
	for i, spec := range specs {
		out[i] = listEntry{
			Name:         spec.Name,
			Description:  spec.Desc,
			PaperParams:  spec.Paper,
			ScaledParams: spec.Paper.Scale(defaultScaleSteps),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// writeJSON writes v as a JSON response with Content-Length.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshal of the response types cannot fail in practice; keep a
		// non-recursive fallback for safety.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)+1))
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
}

// writeError writes a JSON error body through the same path as every
// success body.
func writeError(w http.ResponseWriter, status int, body errorBody) {
	writeJSON(w, status, body)
}
