package fmmmodel

import (
	"sync"

	"sfcacd/internal/acd"
	"sfcacd/internal/keynav"
	"sfcacd/internal/obs"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/topology"
)

// This file provides multi-topology evaluation. The communication
// event stream of an assignment does not depend on the network, so the
// paper's 4x4 SFC-combination tables (one particle order against four
// processor orders) can share a single traversal per particle order.
// The traversal aggregates the stream into a topology-independent
// communication matrix (internal/commmat); evaluating each topology is
// then a contraction — one distance lookup per distinct rank pair
// instead of one interface call per event — turning the sweep from
// O(events x topologies) into O(events + distinctPairs x topologies).
// The single-topology NFI/FFI paths stay on the direct per-event
// accumulation and serve as the differential-testing oracle.

// NFIMulti computes the near-field accumulator of the assignment under
// each of the given topologies from one shared communication matrix.
// The results are identical (exact Sum/Count/Zeros) to running NFI per
// topology.
func NFIMulti(a *acd.Assignment, topos []topology.Topology, opts NFIOptions) []acd.Accumulator {
	defer obs.StartSpan("accumulation.nfi").End()
	opts.normalize()
	m := NFIMatrix(a, opts)
	total := contractAll(m, topos, opts.Workers)
	for t := range total {
		total[t].Record()
	}
	return total
}

// FFIMulti computes the far-field breakdown of the assignment under
// each of the given topologies, sharing one aggregation of the
// interaction structure. opts.Engine picks the structure: the dense
// representative quadtree (built and released here) or the
// assignment's key-space occupancy index.
func FFIMulti(a *acd.Assignment, topos []topology.Topology, opts FFIOptions) []FFIResult {
	if opts.Engine == keynav.EngineKeys {
		defer obs.StartSpan("accumulation.ffi").End()
		if opts.Workers <= 0 {
			opts.Workers = defaultWorkers()
		}
		if len(topos) == 0 {
			return nil
		}
		ms := FFIMatricesFromIndex(a.KeyIndex(), topos[0].P(), opts.Workers)
		return ffiContract(ms, topos, opts.Workers)
	}
	tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	defer tree.Release()
	return FFIMultiFromTree(tree, topos, opts)
}

// FFIMultiFromTree is FFIMulti over a prebuilt representative tree. The
// far-field matrices are kept separate per communication type, so the
// per-type breakdown of FFIResult matches the direct FFIFromTree path
// exactly; the anterpolation accumulator reuses the interpolation
// contraction because hop distance is symmetric.
func FFIMultiFromTree(tree *quadtree.RankTree, topos []topology.Topology, opts FFIOptions) []FFIResult {
	defer obs.StartSpan("accumulation.ffi").End()
	if opts.Workers <= 0 {
		opts.Workers = defaultWorkers()
	}
	if len(topos) == 0 {
		return make([]FFIResult, 0)
	}
	ms := FFIMatricesFromTree(tree, topos[0].P(), opts.Workers)
	return ffiContract(ms, topos, opts.Workers)
}

// ffiContract contracts the two far-field matrices against every
// topology; shared by the tree and keys engines, whose matrices are
// identical.
func ffiContract(ms FFIMatrices, topos []topology.Topology, workers int) []FFIResult {
	res := make([]FFIResult, len(topos))
	span := obs.StartSpan("commmat.contract")
	contract := func(t int) {
		dt := distanceTableFor(topos[t])
		ms.Interpolation.ContractTable(dt, &res[t].Interpolation)
		res[t].Anterpolation = res[t].Interpolation
		ms.InteractionList.ContractTableSym(dt, &res[t].InteractionList)
	}
	if workers <= 1 || len(topos) <= 1 {
		for t := range topos {
			contract(t)
		}
	} else {
		var wg sync.WaitGroup
		for t := range topos {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				contract(t)
			}(t)
		}
		wg.Wait()
	}
	span.End()
	for t := range res {
		res[t].recordMatrixPath()
	}
	return res
}
