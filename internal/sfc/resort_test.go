package sfc

import (
	"fmt"
	"testing"

	"sfcacd/internal/rng"
)

// uniqueRandomKeys draws n distinct random keys (ResortPermByKeys
// documents distinct keys; the pipeline's one-particle-per-cell
// invariant guarantees them in production).
func uniqueRandomKeys(n int, seed uint64) []uint64 {
	r := rng.New(seed)
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, n)
	for i := range keys {
		for {
			k := r.Uint64()
			if !seen[k] {
				seen[k] = true
				keys[i] = k
				break
			}
		}
	}
	return keys
}

// displaceKeys starts from a strictly increasing key array and rewrites
// count random positions with fresh distinct values, modeling one drift
// tick's key churn. Gaps of 1<<20 leave room for the displaced values.
func displaceKeys(n, count int, seed uint64) []uint64 {
	keys := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for i := range keys {
		keys[i] = uint64(i) << 20
		seen[keys[i]] = true
	}
	r := rng.New(seed)
	for c := 0; c < count; c++ {
		i := r.Intn(n)
		for {
			k := uint64(r.Intn(n))<<20 | uint64(r.Uint32n(1<<20))
			if !seen[k] {
				seen[k] = true
				keys[i] = k
				break
			}
		}
	}
	return keys
}

// TestResortPermByKeysMatchesOracle compares the adaptive re-sort
// against the stdlib sort across sizes and displacement fractions
// spanning the merge path, the spike heuristic, and the full-sort
// fallback.
func TestResortPermByKeysMatchesOracle(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 100, 1000, 5000} {
		for _, permille := range []int{0, 1, 10, 50, 200, 500, 1000} {
			count := n * permille / 1000
			keys := displaceKeys(n, count, uint64(n)*1009+uint64(permille))
			got := identity(n)
			want := identity(n)
			d := ResortPermByKeys(got, keys)
			oracleSort(want, keys)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d permille=%d: perm[%d] = %d, want %d (displaced=%d)",
						n, permille, i, got[i], want[i], d)
				}
			}
			if count == 0 && d != 0 {
				t.Fatalf("n=%d: sorted input reported %d displaced", n, d)
			}
		}
	}
}

// TestResortPermByKeysFullyRandom exercises the fallback on inputs with
// no exploitable order.
func TestResortPermByKeysFullyRandom(t *testing.T) {
	for _, n := range []int{2, 100, 4000} {
		keys := uniqueRandomKeys(n, uint64(n)+5)
		got := identity(n)
		want := identity(n)
		ResortPermByKeys(got, keys)
		oracleSort(want, keys)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: perm[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

// TestResortPermByKeysSpike pins the spike heuristic: a single key
// rewritten far upward must displace only itself (the backbone tip is
// popped), not the entire run that follows it.
func TestResortPermByKeysSpike(t *testing.T) {
	n := 1000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) << 20
	}
	keys[300] = uint64(1) << 62 // spikes above every successor
	perm := identity(n)
	d := ResortPermByKeys(perm, keys)
	if d != 1 {
		t.Fatalf("spike displaced %d elements, want 1", d)
	}
	want := identity(n)
	oracleSort(want, keys)
	for i := range perm {
		if perm[i] != want[i] {
			t.Fatalf("perm[%d] = %d, want %d", i, perm[i], want[i])
		}
	}
}

// TestResortPermByKeysArbitraryPerm checks a non-identity input
// permutation (the incremental layer feeds last tick's sorted perm).
func TestResortPermByKeysArbitraryPerm(t *testing.T) {
	n := 2000
	keys := uniqueRandomKeys(n, 77)
	perm := identity(n)
	SortPermByKeys(perm, keys) // sorted perm over random keys
	// Rewrite 1% of the keys: perm is now nearly sorted w.r.t. keys.
	r := rng.New(123)
	seen := make(map[uint64]bool, n)
	for _, k := range keys {
		seen[k] = true
	}
	for c := 0; c < n/100; c++ {
		i := r.Intn(n)
		for {
			k := r.Uint64()
			if !seen[k] {
				seen[k] = true
				keys[i] = k
				break
			}
		}
	}
	got := append([]int(nil), perm...)
	want := append([]int(nil), perm...)
	ResortPermByKeys(got, keys)
	oracleSort(want, keys)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("perm[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// BenchmarkSortPermByKeysNearlySorted is the from-scratch baseline on
// nearly-sorted inputs (k% of keys displaced since the last sort) —
// the regime the incremental pipeline's re-sorts run in. The adaptive
// ResortPermByKeys benchmark below must beat it.
func BenchmarkSortPermByKeysNearlySorted(b *testing.B) {
	benchNearlySorted(b, func(perm []int, keys []uint64) { SortPermByKeys(perm, keys) })
}

// BenchmarkResortPermByKeysNearlySorted is the adaptive path on the
// same inputs.
func BenchmarkResortPermByKeysNearlySorted(b *testing.B) {
	benchNearlySorted(b, func(perm []int, keys []uint64) { ResortPermByKeys(perm, keys) })
}

func benchNearlySorted(b *testing.B, sortFn func([]int, []uint64)) {
	n := 100_000
	for _, pct := range []int{1, 5, 20} {
		keys := displaceKeys(n, n*pct/100, uint64(pct))
		// The permutation that was sorted before the keys changed is the
		// identity here (displaceKeys perturbs a sorted array in place).
		b.Run(fmt.Sprintf("displaced=%d%%/n=%d", pct, n), func(b *testing.B) {
			perm := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range perm {
					perm[j] = j
				}
				sortFn(perm, keys)
			}
		})
	}
}
