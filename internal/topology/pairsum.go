// Batched distance sums: the contraction fallback for rows the
// DistanceTable declines to materialize. A sparse contraction row makes
// one Distance call per pair; at millions of pairs the dynamic dispatch
// itself — not the distance arithmetic — dominates. DistanceSum moves
// the loop inside the topology, so the fallback pays one dynamic
// dispatch per (row, topology) and the distance math runs as a
// concrete, inlinable loop.
package topology

import (
	"math/bits"

	"sfcacd/internal/geom"
)

// PairContractor is implemented by topologies that can contract a
// weighted batch of distance queries from one source in a single
// dynamic dispatch. DistanceSum returns
//
//	sum_i Distance(src, int(dsts[i])) * uint64(ns[i])
//
// exactly — the same integer a per-pair Distance loop produces. Every
// dsts entry must be a valid rank and ns must be at least as long as
// dsts. All six paper topologies implement it; the query volume is the
// caller's to account (topology.CountDistanceQueries), exactly as with
// per-pair Distance calls.
type PairContractor interface {
	DistanceSum(src int, dsts []int32, ns []uint32) uint64
}

// RowBlockContractor extends PairContractor to a block of CSR rows in
// one dynamic dispatch: row i has source srcs[i] and its pairs are
// dsts/ns[rowStart[i]:rowStart[i+1]] (rowStart has len(srcs)+1
// entries, indexing dsts and ns absolutely). DistanceSumRows returns
// the total weighted distance sum over the block — exactly the sum of
// per-row DistanceSum calls. Implemented by the topologies whose
// per-pair arithmetic is cheap enough that even a per-row dispatch is
// measurable at contraction volume.
type RowBlockContractor interface {
	PairContractor
	DistanceSumRows(srcs, rowStart, dsts []int32, ns []uint32) uint64
}

// DistanceSum implements PairContractor.
func (b *Bus) DistanceSum(src int, dsts []int32, ns []uint32) uint64 {
	checkRank(b, src)
	x := int32(src)
	var s uint64
	for i, d := range dsts {
		dd := d - x
		if dd < 0 {
			dd = -dd
		}
		s += uint64(uint32(dd)) * uint64(ns[i])
	}
	return s
}

// DistanceSum implements PairContractor.
func (r *Ring) DistanceSum(src int, dsts []int32, ns []uint32) uint64 {
	checkRank(r, src)
	x, n := int32(src), int32(r.n)
	var s uint64
	for i, d := range dsts {
		dd := d - x
		if dd < 0 {
			dd = -dd
		}
		if wrap := n - dd; wrap < dd {
			dd = wrap
		}
		s += uint64(uint32(dd)) * uint64(ns[i])
	}
	return s
}

// DistanceSum implements PairContractor.
func (m *Mesh) DistanceSum(src int, dsts []int32, ns []uint32) uint64 {
	checkRank(m, src)
	ca, coords := m.coords[src], m.coords
	ns = ns[:len(dsts)]
	var s uint64
	for i, d := range dsts {
		s += uint64(geom.Manhattan(ca, coords[d])) * uint64(ns[i])
	}
	return s
}

// DistanceSum implements PairContractor. With the delta table the loop
// is load-mask-load per pair: the coordinate deltas mod side (the mask
// is exact because the side is a power of two) index the precomputed
// wrapped hop count, so no per-pair branch can mispredict.
func (t *Torus) DistanceSum(src int, dsts []int32, ns []uint32) uint64 {
	checkRank(t, src)
	ca, coords := t.coords[src], t.coords
	ns = ns[:len(dsts)]
	var s uint64
	if dlut := t.dlut; dlut != nil {
		mask, shift := t.side-1, t.procOrder
		for i, d := range dsts {
			cb := coords[d]
			idx := (ca.Y-cb.Y)&mask<<shift | (ca.X-cb.X)&mask
			s += uint64(dlut[idx]) * uint64(ns[i])
		}
		return s
	}
	side := t.side
	for i, d := range dsts {
		cb := coords[d]
		hops := wrapDist(ca.X, cb.X, side) + wrapDist(ca.Y, cb.Y, side)
		s += uint64(hops) * uint64(ns[i])
	}
	return s
}

// DistanceSumRows implements RowBlockContractor.
func (t *Torus) DistanceSumRows(srcs, rowStart, dsts []int32, ns []uint32) uint64 {
	coords := t.coords
	var s uint64
	if dlut := t.dlut; dlut != nil {
		mask, shift := t.side-1, t.procOrder
		for r, src := range srcs {
			ca := coords[src]
			lo, hi := rowStart[r], rowStart[r+1]
			rd, rn := dsts[lo:hi], ns[lo:hi]
			rn = rn[:len(rd)]
			// Two independent partial sums per row break the
			// accumulator dependency chain (uint64 addition is
			// associative, so the split is exact).
			var rs0, rs1 uint64
			i := 0
			for ; i+1 < len(rd); i += 2 {
				cb0, cb1 := coords[rd[i]], coords[rd[i+1]]
				idx0 := (ca.Y-cb0.Y)&mask<<shift | (ca.X-cb0.X)&mask
				idx1 := (ca.Y-cb1.Y)&mask<<shift | (ca.X-cb1.X)&mask
				rs0 += uint64(dlut[idx0]) * uint64(rn[i])
				rs1 += uint64(dlut[idx1]) * uint64(rn[i+1])
			}
			if i < len(rd) {
				cb := coords[rd[i]]
				idx := (ca.Y-cb.Y)&mask<<shift | (ca.X-cb.X)&mask
				rs0 += uint64(dlut[idx]) * uint64(rn[i])
			}
			s += rs0 + rs1
		}
		return s
	}
	for r, src := range srcs {
		s += t.DistanceSum(int(src), dsts[rowStart[r]:rowStart[r+1]], ns[rowStart[r]:rowStart[r+1]])
	}
	return s
}

// DistanceSum implements PairContractor.
func (h *Hypercube) DistanceSum(src int, dsts []int32, ns []uint32) uint64 {
	checkRank(h, src)
	x := uint32(src)
	var s uint64
	for i, d := range dsts {
		s += uint64(bits.OnesCount32(x^uint32(d))) * uint64(ns[i])
	}
	return s
}

// DistanceSum implements PairContractor.
func (q *QuadtreeNet) DistanceSum(src int, dsts []int32, ns []uint32) uint64 {
	checkRank(q, src)
	x := uint32(src)
	var s uint64
	for i, d := range dsts {
		// bits.Len32(0) is 0, so the src == dst case contributes 0
		// digits without a branch, matching Distance.
		digits := (uint(bits.Len32(x^uint32(d))) + 1) / 2
		s += uint64(2*digits) * uint64(ns[i])
	}
	return s
}
