// Package serve turns the experiment registry into a service: a
// bounded worker pool with an admission queue, request coalescing so N
// concurrent identical requests share one computation, and a
// content-addressed result cache (internal/resultcache) so repeated
// requests are answered from memory without recomputation.
//
// The request lifecycle of Server.Do:
//
//  1. Resolve the experiment in experiments.Registry and validate the
//     parameters; derive the content address from the canonical
//     parameter encoding.
//  2. Serve from the in-memory cache, then the optional disk store
//     (promoting disk hits into memory).
//  3. Coalesce: if an identical computation is already in flight, join
//     it instead of starting another. Exactly one computation runs per
//     distinct key at any time.
//  4. Admit: the computation waits for a worker slot; when the queue
//     is full the request is rejected immediately with the observed
//     depth, so callers get backpressure instead of unbounded latency.
//  5. Compute, cache, and answer every joined waiter with the same
//     entry.
//
// Cancellation is reference-counted: each joined request holds one
// reference, a request that abandons (client disconnect, timeout)
// drops its reference, and the underlying computation's context is
// canceled only when the last reference is gone — one impatient
// client cannot kill a result that other clients are still waiting
// for.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sfcacd/internal/experiments"
	"sfcacd/internal/faultinject"
	"sfcacd/internal/obs"
	"sfcacd/internal/obs/tracestore"
	"sfcacd/internal/resultcache"
)

// SiteCompute is the fault-injection point wrapping every experiment
// computation; injected latency there simulates a slow or wedged
// runner, injected errors a failing one.
const SiteCompute = "serve.compute"

// DefaultComputeTimeout bounds how long one request waits for its
// computation when Options.ComputeTimeout is zero. Paper-preset runs
// finish well inside it; a wedged computation turns into a 504 instead
// of an indefinitely held client connection.
const DefaultComputeTimeout = 5 * time.Minute

// ErrUnknownExperiment reports a request for a name not in the
// registry.
var ErrUnknownExperiment = errors.New("serve: unknown experiment")

// ErrInvalidParams wraps a parameter validation failure.
var ErrInvalidParams = errors.New("serve: invalid parameters")

// OverloadError is returned when the admission queue is full. It
// carries the depth observed at rejection time so clients can back
// off proportionally.
type OverloadError struct {
	// QueueDepth is the number of computations admitted or waiting at
	// the time of rejection.
	QueueDepth int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded, %d computations queued", e.QueueDepth)
}

// DeadlineError is returned when a request's server-applied compute
// deadline passes before its computation finishes. Only the timed-out
// request is affected: its reference on the shared computation is
// dropped, and other coalesced waiters keep waiting. The HTTP layer
// maps it to 504 Gateway Timeout.
type DeadlineError struct {
	// Timeout is the per-request compute deadline that passed.
	Timeout time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("serve: computation exceeded the %v request deadline", e.Timeout)
}

// Status classifies how a request was satisfied.
type Status string

const (
	// StatusHit means the result came from the cache.
	StatusHit Status = "hit"
	// StatusMiss means this request led a fresh computation.
	StatusMiss Status = "miss"
	// StatusCoalesced means the request joined a computation another
	// request had already started.
	StatusCoalesced Status = "coalesced"
	// StatusPeer means the result was fetched, already finished, from
	// a fleet peer's cache instead of being computed locally.
	StatusPeer Status = "peer"
)

// MemberInfo identifies one fleet member as the serving layer sees it.
type MemberInfo struct {
	// ID is the member's stable name (the ring hashes it).
	ID string `json:"id"`
	// URL is the base URL peers reach the member at.
	URL string `json:"url"`
	// Self marks the member describing itself.
	Self bool `json:"self,omitempty"`
}

// ForwardResult is a proxied experiment response from the owner node.
type ForwardResult struct {
	// StatusCode is the owner's HTTP status.
	StatusCode int
	// Cache is the owner's X-Cache header value.
	Cache string
	// Body is the owner's response body, relayed verbatim so a
	// forwarded response is byte-identical to asking the owner
	// directly.
	Body []byte
}

// PeerSource is the serving layer's view of the fleet, implemented by
// internal/fleet.Node (the interface lives here so fleet can import
// serve without a cycle). All methods must be safe for concurrent
// use. Fetch and Forward must degrade by returning (zero, false) or
// an error — never block beyond their own timeouts — because every
// caller falls back to local computation.
type PeerSource interface {
	// Self describes this node.
	Self() MemberInfo
	// Members lists the fleet membership, self included.
	Members() []MemberInfo
	// Owner routes a content address to its owner replica.
	Owner(key resultcache.Key) (MemberInfo, bool)
	// Fetch retrieves a finished entry from the owner and sibling
	// replicas' caches; it never triggers a computation anywhere.
	Fetch(ctx context.Context, key resultcache.Key) (resultcache.Entry, bool)
	// Forward proxies one experiment request to the owner, which
	// computes (or serves from cache) under its own admission control.
	Forward(ctx context.Context, owner MemberInfo, experiment, preset string, body []byte) (*ForwardResult, error)
}

// Response is one answered request.
type Response struct {
	// Status records the serving path taken.
	Status Status
	// Entry is the content-addressed result.
	Entry resultcache.Entry
}

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent computations; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds computations waiting for a worker slot beyond
	// the Workers running ones; 0 means 64. When the bound is hit new
	// computations are rejected with an OverloadError (cache hits and
	// coalesced joins are never rejected).
	QueueDepth int
	// CacheBytes bounds the in-memory result cache; 0 means 256 MiB.
	CacheBytes int64
	// Disk, when set, persists results and serves misses that an
	// earlier process already computed.
	Disk *resultcache.DiskStore
	// ComputeTimeout bounds how long one request waits for its
	// computation before failing with a DeadlineError; 0 means
	// DefaultComputeTimeout, negative disables the deadline.
	ComputeTimeout time.Duration
	// Faults, when set, arms the SiteCompute injection point (the disk
	// store carries its own injector; see resultcache.SetFaults).
	Faults *faultinject.Injector
	// Traces, when set, is the tail-sampled trace retention store the
	// HTTP layer offers completed request traces to; nil means a
	// store with default policy.
	Traces *tracestore.Store
	// RateLimit, when positive, applies a per-client token-bucket
	// limit of this many requests per second to the /v1/ API (429 with
	// Retry-After beyond it). Batch requests draw one token per cell.
	RateLimit float64
	// RateBurst is the token-bucket capacity per client; 0 means
	// twice RateLimit (at least 1). Ignored when RateLimit is 0.
	RateBurst int
}

// call is one in-flight computation and the requests waiting on it.
type call struct {
	key     resultcache.Key
	done    chan struct{}
	entry   resultcache.Entry
	err     error
	refs    int // guarded by Server.mu
	maxRefs int // peak fan-in, guarded by Server.mu
	cancel  context.CancelFunc
}

// Server coalesces, admits, computes, and caches experiment requests.
type Server struct {
	workers        int
	maxQueue       int
	cache          *resultcache.Cache
	disk           *resultcache.DiskStore
	computeTimeout time.Duration // <= 0 means no per-request deadline
	faults         *faultinject.Injector
	peers          PeerSource   // nil outside fleet mode; set once before serving
	limiter        *RateLimiter // nil means unlimited

	sem       chan struct{}  // worker slots
	queued    atomic.Int64   // computations admitted or waiting
	computing sync.WaitGroup // live compute goroutines; Drain waits on it
	draining  atomic.Bool    // set once shutdown begins; /readyz turns 503

	// computeNs/computeCount accumulate successful computation wall
	// time, feeding RetryAfterHint's mean-compute estimate.
	computeNs    atomic.Int64
	computeCount atomic.Int64

	traces *tracestore.Store

	mu       sync.Mutex
	inflight map[resultcache.Key]*call

	// runFn executes one computation; tests swap it for a controlled
	// runner to exercise coalescing, backpressure, and cancellation
	// deterministically.
	runFn func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error)

	requests, coalesced, computations *obs.Counter
	rejections, diskHits, diskErrors  *obs.Counter
	deadlines                         *obs.Counter
	queueGauge, runningGauge          *obs.Gauge
	inflightGauge                     *obs.Gauge
	latency                           *obs.Histogram
}

// latencyBuckets spans 1µs to 10s exponentially, shared by the
// overall and the per-experiment/per-cache-status latency histograms.
var latencyBuckets = obs.ExponentialBuckets(1e3, 10, 8)

// New returns a Server with the given options.
func New(opts Options) *Server {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	q := opts.QueueDepth
	if q <= 0 {
		q = 64
	}
	cb := opts.CacheBytes
	if cb <= 0 {
		cb = 256 << 20
	}
	ct := opts.ComputeTimeout
	if ct == 0 {
		ct = DefaultComputeTimeout
	}
	traces := opts.Traces
	if traces == nil {
		traces = tracestore.New(tracestore.Options{})
	}
	return &Server{
		workers:        w,
		maxQueue:       q,
		cache:          resultcache.New(cb),
		disk:           opts.Disk,
		computeTimeout: ct,
		faults:         opts.Faults,
		limiter:        NewRateLimiter(opts.RateLimit, opts.RateBurst),
		traces:         traces,
		sem:            make(chan struct{}, w),
		inflight:       make(map[resultcache.Key]*call),
		runFn: func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
			return spec.Run(ctx, p)
		},
		requests:      obs.GetCounter("serve.requests"),
		coalesced:     obs.GetCounter("serve.coalesced"),
		computations:  obs.GetCounter("serve.computations"),
		rejections:    obs.GetCounter("serve.rejections"),
		diskHits:      obs.GetCounter("serve.disk_hits"),
		diskErrors:    obs.GetCounter("serve.disk_errors"),
		deadlines:     obs.GetCounter("serve.deadline_exceeded"),
		queueGauge:    obs.GetGauge("serve.queue_depth"),
		runningGauge:  obs.GetGauge("serve.running"),
		inflightGauge: obs.GetGauge("serve.inflight_requests"),
		latency:       obs.GetHistogram("serve.latency_ns", latencyBuckets), // 1µs .. 10s
	}
}

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return s.workers }

// QueueDepth returns the admission-queue bound.
func (s *Server) QueueDepth() int { return s.maxQueue }

// RetryAfterHint estimates how long an overloaded client should back
// off before the given backlog has drained: the number of worker waves
// the backlog represents times the observed mean computation time,
// clamped to [1s, 60s]. With no compute history yet (or an empty
// backlog) it returns the 1s floor — better to let the client probe
// again quickly than to guess from nothing.
func (s *Server) RetryAfterHint(depth int) time.Duration {
	count := s.computeCount.Load()
	if count == 0 || depth <= 0 {
		return time.Second
	}
	mean := time.Duration(s.computeNs.Load() / count)
	waves := (depth + s.workers - 1) / s.workers
	hint := time.Duration(waves) * mean
	if hint < time.Second {
		return time.Second
	}
	if hint > time.Minute {
		return time.Minute
	}
	return hint
}

// Cache returns the in-memory result cache (exposed for warmup and
// introspection).
func (s *Server) Cache() *resultcache.Cache { return s.cache }

// Traces returns the trace retention store the HTTP layer serves
// /debug/traces from.
func (s *Server) Traces() *tracestore.Store { return s.traces }

// SetPeers installs the fleet view: misses check the owner and
// sibling replicas before computing, and the HTTP layer forwards
// requests owned elsewhere. Call it once, after construction and
// before serving; it is not safe to call concurrently with requests.
func (s *Server) SetPeers(p PeerSource) { s.peers = p }

// RequestKey derives the content address Do serves a request under;
// the fleet layer routes on it.
func RequestKey(experiment string, p experiments.Params) resultcache.Key {
	return resultcache.KeyFor(experiment, p.CanonicalKey(), experiments.ResultSchemaVersion)
}

// CachedEntry returns the finished entry stored under key in the
// memory cache or the disk store, promoting disk hits into memory
// like Do's lookup does. It never computes anything — it is the read
// path the fleet peer protocol serves /internal/v1/result from, so a
// peer asking for a result can never trigger a recursive computation.
func (s *Server) CachedEntry(key resultcache.Key) (resultcache.Entry, bool) {
	e, src := s.lookupCached(key)
	return e, src != ""
}

// lookupCached checks memory then disk for a finished entry,
// returning where it was found ("memory", "disk") or "" on a miss.
func (s *Server) lookupCached(key resultcache.Key) (resultcache.Entry, string) {
	if entry, ok := s.cache.Get(key); ok {
		return entry, "memory"
	}
	if s.disk != nil {
		entry, ok, err := s.disk.Get(key)
		if err != nil {
			s.diskErrors.Inc() // corrupt entry: treated as a miss
		} else if ok {
			s.diskHits.Inc()
			s.cache.Put(entry)
			return entry, "disk"
		}
	}
	return resultcache.Entry{}, ""
}

// SetDraining marks the server as draining: /readyz answers 503 so
// load balancers stop routing here before the listener closes.
// Requests already in flight (and Do itself) are unaffected.
func (s *Server) SetDraining() { s.draining.Store(true) }

// Draining reports whether SetDraining has run.
func (s *Server) Draining() bool { return s.draining.Load() }

// errClass buckets a Do error for the serve.errors counter family.
func errClass(err error) string {
	var overload *OverloadError
	var deadline *DeadlineError
	switch {
	case errors.Is(err, ErrUnknownExperiment):
		return "unknown_experiment"
	case errors.Is(err, ErrInvalidParams):
		return "invalid_params"
	case errors.As(err, &overload):
		return "overload"
	case errors.As(err, &deadline):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, faultinject.ErrInjected):
		return "injected"
	default:
		return "internal"
	}
}

// Do answers one experiment request. Identical concurrent requests
// share one computation; completed results are served from the cache
// byte-identically to the miss that produced them.
//
// Telemetry per request: the overall serve.latency_ns histogram, a
// per-experiment and per-cache-status serve.request_latency_ns series
// (cache label hit|miss|coalesced|error), a serve.errors counter per
// error class, and — when the context carries an obs.Trace — cache
// status and error-class annotations on the trace.
func (s *Server) Do(ctx context.Context, experiment string, p experiments.Params) (Response, error) {
	start := time.Now()
	s.requests.Inc()
	s.inflightGauge.Add(1)
	defer s.inflightGauge.Add(-1)
	tr := obs.TraceFrom(ctx)
	tr.Annotate("experiment", experiment)

	resp, err := s.do(ctx, tr, experiment, p)

	ns := float64(time.Since(start).Nanoseconds())
	s.latency.Observe(ns)
	cache := string(resp.Status)
	if err != nil {
		cache = "error"
		class := errClass(err)
		obs.GetCounter(obs.LabeledName("serve.errors", "class", class)).Inc()
		tr.Annotate("error_class", class)
	}
	tr.Annotate("cache", cache)
	obs.GetHistogram(obs.LabeledName("serve.request_latency_ns",
		"cache", cache, "experiment", experiment), latencyBuckets).Observe(ns)
	return resp, err
}

// do is Do's serving body; telemetry that applies to every outcome
// lives in the wrapper above.
func (s *Server) do(ctx context.Context, tr *obs.Trace, experiment string, p experiments.Params) (Response, error) {
	if s.computeTimeout > 0 {
		// The per-request deadline. WithTimeoutCause makes the
		// server-applied deadline distinguishable from the client's own
		// context ending: wait returns the DeadlineError cause, which
		// the HTTP layer maps to 504 rather than 499.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.computeTimeout,
			&DeadlineError{Timeout: s.computeTimeout})
		defer cancel()
	}
	spec, ok := experiments.Lookup(experiment)
	if !ok {
		return Response{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, experiment)
	}
	if err := p.Validate(); err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	key := RequestKey(experiment, p)

	lookup := tr.StartSpan("cache.lookup")
	if entry, src := s.lookupCached(key); src != "" {
		if src != "memory" {
			lookup.Annotate("source", src)
		}
		lookup.End()
		return Response{Status: StatusHit, Entry: entry}, nil
	}
	lookup.End()

	// Peer fill: before computing, ask the owner and sibling replicas
	// whether one of them already finished this result. Any peer
	// error, timeout, or miss falls through to the compute path below,
	// so a partitioned (or one-node) fleet degrades to exactly the
	// single-process behavior.
	if s.peers != nil {
		pspan := tr.StartSpan("peer.fetch")
		entry, ok := s.peers.Fetch(ctx, key)
		pspan.End()
		if ok {
			s.cache.Put(entry)
			return Response{Status: StatusPeer, Entry: entry}, nil
		}
	}

	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		c.refs++
		if c.refs > c.maxRefs {
			c.maxRefs = c.refs
		}
		fanIn := c.refs
		s.mu.Unlock()
		s.coalesced.Inc()
		tr.Annotate("coalesce_fanin", strconv.Itoa(fanIn))
		return s.wait(ctx, tr, c, StatusCoalesced)
	}
	// Recheck the cache before leading a fresh computation: one may
	// have completed between the miss above and taking the lock. Put
	// runs before the call is unpublished (both under mu in finish),
	// so a finished computation is either still joinable above or
	// already visible here — identical concurrent requests can never
	// compute twice.
	if entry, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		return Response{Status: StatusHit, Entry: entry}, nil
	}
	cctx, cancel := context.WithCancel(context.Background())
	c := &call{key: key, done: make(chan struct{}), refs: 1, maxRefs: 1, cancel: cancel}
	s.inflight[key] = c
	s.mu.Unlock()
	if d, ok := ctx.Deadline(); ok {
		tr.Annotate("deadline_remaining", time.Until(d).Round(time.Millisecond).String())
	}
	s.computing.Add(1)
	go func() {
		defer s.computing.Done()
		s.compute(cctx, c, spec, p, tr)
	}()
	return s.wait(ctx, tr, c, StatusMiss)
}

// wait blocks until the call completes or the request's own context
// ends, dropping the request's reference in the latter case. A
// server-applied compute deadline surfaces as its DeadlineError cause;
// other waiters of the same call are unaffected either way.
func (s *Server) wait(ctx context.Context, tr *obs.Trace, c *call, status Status) (Response, error) {
	span := tr.StartSpan("wait")
	span.Annotate("mode", string(status))
	defer span.End()
	select {
	case <-c.done:
		if c.err != nil {
			return Response{}, c.err
		}
		return Response{Status: status, Entry: c.entry}, nil
	case <-ctx.Done():
		s.abandon(c)
		var de *DeadlineError
		if cause := context.Cause(ctx); errors.As(cause, &de) {
			s.deadlines.Inc()
			return Response{}, cause
		}
		return Response{}, ctx.Err()
	}
}

// Drain blocks until every in-flight compute goroutine has finished
// (or ctx ends first). acdserverd calls it after http.Server.Shutdown
// so detached computations — still running for waiters that already
// got their answer or abandoned — finish their cache writes before the
// process exits.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.computing.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// abandon drops one reference; the last reference cancels the
// computation and unpublishes the call so later requests start fresh.
func (s *Server) abandon(c *call) {
	s.mu.Lock()
	c.refs--
	last := c.refs == 0
	if last && s.inflight[c.key] == c {
		delete(s.inflight, c.key)
	}
	s.mu.Unlock()
	if last {
		c.cancel()
	}
}

// compute runs one admitted computation and broadcasts its outcome.
// tr is the trace of the request that led the computation (nil when
// untraced): the goroutine attaches to its root span, so every phase
// the experiment code opens — the sweep, its cells' sampling and
// accumulation passes — lands in that request's span tree even though
// the computation itself is detached from the request context. If the
// leading request times out, the spans keep completing into the
// retained trace, which is exactly the trace worth reading.
func (s *Server) compute(ctx context.Context, c *call, spec experiments.Spec, p experiments.Params, tr *obs.Trace) {
	defer c.cancel()
	if tr != nil {
		detach := tr.Root().Attach()
		defer detach()
		cspan := obs.StartSpan("compute")
		defer cspan.End()
		defer func() {
			s.mu.Lock()
			fanIn := c.maxRefs
			s.mu.Unlock()
			cspan.Annotate("coalesce_fanin", strconv.Itoa(fanIn))
		}()
	}
	if p.Workers == 0 {
		// Split the machine across the server's compute slots so s.workers
		// concurrent sweeps don't each grab GOMAXPROCS goroutines.
		// Workers is excluded from the canonical key, so this never
		// affects cache identity.
		if w := runtime.GOMAXPROCS(0) / s.workers; w > 1 {
			p.Workers = w
		} else {
			p.Workers = 1
		}
	}
	depth := s.queued.Add(1)
	s.queueGauge.SetMax(float64(depth))
	if depth > int64(s.workers+s.maxQueue) {
		s.queued.Add(-1)
		s.rejections.Inc()
		s.finish(c, resultcache.Entry{}, &OverloadError{QueueDepth: int(depth - 1)})
		return
	}
	qspan := tr.StartSpan("queue.wait")
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		qspan.End()
		s.queued.Add(-1)
		s.finish(c, resultcache.Entry{}, ctx.Err())
		return
	}
	qspan.End()
	s.runningGauge.Add(1)
	defer func() {
		<-s.sem
		s.queued.Add(-1)
		s.runningGauge.Add(-1)
	}()

	s.computations.Inc()
	if err := s.faults.CheckCtx(ctx, SiteCompute); err != nil {
		s.finish(c, resultcache.Entry{}, err)
		return
	}
	before := obs.Default().Snapshot()
	start := time.Now()
	out, err := s.runFn(ctx, spec, p)
	wall := time.Since(start)
	if err != nil {
		s.finish(c, resultcache.Entry{}, err)
		return
	}
	s.computeNs.Add(int64(wall))
	s.computeCount.Add(1)
	entry, err := BuildEntry(c.key, spec.Name, out, wall, obs.Default().Snapshot().Sub(before))
	if err != nil {
		s.finish(c, resultcache.Entry{}, err)
		return
	}
	s.cache.Put(entry)
	if s.disk != nil {
		if err := s.disk.Put(entry); err != nil {
			s.diskErrors.Inc()
		}
	}
	s.finish(c, entry, nil)
}

// finish publishes the call's outcome and wakes every waiter.
func (s *Server) finish(c *call, entry resultcache.Entry, err error) {
	s.mu.Lock()
	if s.inflight[c.key] == c {
		delete(s.inflight, c.key)
	}
	s.mu.Unlock()
	c.entry, c.err = entry, err
	close(c.done)
}

// BuildEntry marshals a computation's output and its run manifest into
// a cacheable entry. The manifest records the effective parameters,
// wall time, and the metric deltas the computation produced (best
// effort: under concurrent computations the deltas include the
// neighbors' work too, since the obs registry is process-wide).
// acdbench -cache uses it to warm the same store the daemon serves.
func BuildEntry(key resultcache.Key, name string, out *experiments.Output, wall time.Duration, delta obs.Snapshot) (resultcache.Entry, error) {
	paramsJSON, err := json.Marshal(out.Params)
	if err != nil {
		return resultcache.Entry{}, fmt.Errorf("serve: marshaling params: %w", err)
	}
	resultJSON, err := json.Marshal(out.Result)
	if err != nil {
		return resultcache.Entry{}, fmt.Errorf("serve: marshaling result: %w", err)
	}
	m := obs.NewManifest("serve")
	m.AddExperiment(name, out.Params, wall, nil)
	m.ObserveMemStats()
	m.Metrics = delta
	manifestJSON, err := json.Marshal(m)
	if err != nil {
		return resultcache.Entry{}, fmt.Errorf("serve: marshaling manifest: %w", err)
	}
	return resultcache.Entry{
		Key:        key,
		Experiment: name,
		Params:     paramsJSON,
		Result:     resultJSON,
		Manifest:   manifestJSON,
	}, nil
}
