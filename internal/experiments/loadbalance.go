package experiments

import (
	"context"
	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/partition"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// LoadBalanceResult holds the Aluru-Sevilgen-style load balancing
// study (the paper's reference [4]): for a skewed input, SFC chunks of
// equal particle count versus equal near-field work, comparing the
// work imbalance (max/mean per-processor interaction count) and the
// resulting NFI ACD per curve.
type LoadBalanceResult struct {
	Curves []string
	// CountImbalance and WorkImbalance are the max/mean per-rank work
	// factors of the two policies (1 is perfect).
	CountImbalance, WorkImbalance []float64
	// CountACD and WorkACD are the NFI ACD of the two policies.
	CountACD, WorkACD []float64
}

// Matrix renders the study.
func (r LoadBalanceResult) Matrix() *tablefmt.Matrix {
	m := &tablefmt.Matrix{
		Title:  "SFC load balancing: equal-count vs equal-work chunks (exponential input)",
		Corner: "SFC",
		Cols:   []string{"count imbalance", "work imbalance", "count ACD", "work ACD"},
		Rows:   r.Curves,
	}
	for i := range r.Curves {
		m.Cells = append(m.Cells, []float64{
			r.CountImbalance[i], r.WorkImbalance[i], r.CountACD[i], r.WorkACD[i],
		})
	}
	return m
}

// RunLoadBalance measures both chunking policies on an exponential
// (skewed) input over a torus. Per-particle work is its near-field
// neighbor count — the direct-interaction cost the FMM pays per
// particle.
func RunLoadBalance(ctx context.Context, p Params) (LoadBalanceResult, error) {
	if err := p.Validate(); err != nil {
		return LoadBalanceResult{}, err
	}
	curves := sfc.All()
	n := len(curves)
	res := LoadBalanceResult{
		Curves:         curveNames(curves),
		CountImbalance: make([]float64, n),
		WorkImbalance:  make([]float64, n),
		CountACD:       make([]float64, n),
		WorkACD:        make([]float64, n),
	}
	type cellOut struct {
		countACD, workACD, countImb, workImb float64
	}
	groups := make([]shared[[]geom.Point], p.Trials)
	outs := make([]cellOut, p.Trials*n)
	pool := sweepPool(p.Workers, len(outs))
	inner := innerWorkers(p.Workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		c := cell % n
		trial := cell / n
		pts, err := groups[trial].get(func() ([]geom.Point, error) {
			return samplePoints(dist.Exponential, p, trial)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		// Count-balanced baseline.
		count, err := acd.Assign(pts, curve, p.Order, p.P())
		if err != nil {
			return err
		}
		// Per-particle work in curve order: near-field neighbor count.
		work := make([]float64, count.N())
		for i, particle := range count.Particles {
			deg := 0
			geom.VisitNeighborhood(particle, p.Radius, geom.MetricChebyshev, count.Side(),
				func(q geom.Point) {
					if count.RankAt(q) >= 0 {
						deg++
					}
				})
			work[i] = float64(deg)
		}
		ranks, err := partition.WeightedChunks(work, p.P())
		if err != nil {
			return err
		}
		weighted, err := acd.FromOwners(count.Particles, ranks, p.Order, p.P())
		if err != nil {
			return err
		}
		torus := topology.NewTorus(p.ProcOrder, curve)
		opts := fmmmodel.NFIOptions{Radius: p.Radius, Metric: geom.MetricChebyshev, Workers: inner}
		o := cellOut{
			countACD: fmmmodel.NFI(count, torus, opts).ACD(),
			workACD:  fmmmodel.NFI(weighted, torus, opts).ACD(),
			countImb: partition.Imbalance(partition.ChunkWeights(work, count.Ranks, p.P())),
			workImb:  partition.Imbalance(partition.ChunkWeights(work, ranks, p.P())),
		}
		weighted.Release()
		count.Release()
		outs[cell] = o
		return nil
	})
	if err != nil {
		return LoadBalanceResult{}, err
	}
	f := 1 / float64(p.Trials)
	for cell, o := range outs {
		c := cell % n
		res.CountACD[c] += o.countACD * f
		res.WorkACD[c] += o.workACD * f
		res.CountImbalance[c] += o.countImb * f
		res.WorkImbalance[c] += o.workImb * f
	}
	return res, nil
}
