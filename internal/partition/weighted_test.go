package partition

import (
	"math"
	"testing"

	"sfcacd/internal/rng"
)

func TestWeightedChunksUniformWeightsMatchCounts(t *testing.T) {
	// Equal weights reduce to (approximately) count-balanced chunks.
	weights := make([]float64, 100)
	for i := range weights {
		weights[i] = 1
	}
	ranks, err := WeightedChunks(weights, 10)
	if err != nil {
		t.Fatal(err)
	}
	loads := ChunkWeights(weights, ranks, 10)
	for r, l := range loads {
		if l != 10 {
			t.Errorf("rank %d load %f, want 10", r, l)
		}
	}
}

func TestWeightedChunksMonotoneAndComplete(t *testing.T) {
	r := rng.New(1)
	weights := make([]float64, 500)
	for i := range weights {
		weights[i] = r.Float64() * 10
	}
	const p = 13
	ranks, err := WeightedChunks(weights, p)
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(0)
	for i, rk := range ranks {
		if rk < prev || rk >= p {
			t.Fatalf("rank %d at %d (prev %d)", rk, i, prev)
		}
		prev = rk
	}
}

func TestWeightedChunksBalancesSkew(t *testing.T) {
	// Heavy head: first 10 elements carry half the work. Weighted
	// chunking must spread them across ranks far better than count
	// chunking.
	const n, p = 200, 10
	weights := make([]float64, n)
	for i := range weights {
		if i < 10 {
			weights[i] = 10
		} else {
			weights[i] = 100.0 / 190
		}
	}
	wr, err := WeightedChunks(weights, p)
	if err != nil {
		t.Fatal(err)
	}
	cr := make([]int32, n)
	for i := range cr {
		cr[i] = int32(ChunkOf(i, n, p))
	}
	wImb := Imbalance(ChunkWeights(weights, wr, p))
	cImb := Imbalance(ChunkWeights(weights, cr, p))
	if wImb >= cImb {
		t.Fatalf("weighted imbalance %f >= count imbalance %f", wImb, cImb)
	}
	if wImb > 1.5 {
		t.Errorf("weighted imbalance %f too high", wImb)
	}
}

func TestWeightedChunksZeroTotal(t *testing.T) {
	ranks, err := WeightedChunks(make([]float64, 20), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Falls back to count chunks: 5 per rank.
	counts := map[int32]int{}
	for _, r := range ranks {
		counts[r]++
	}
	for r := int32(0); r < 4; r++ {
		if counts[r] != 5 {
			t.Fatalf("rank %d has %d elements", r, counts[r])
		}
	}
}

func TestWeightedChunksErrors(t *testing.T) {
	if _, err := WeightedChunks(nil, 3); err == nil {
		t.Error("empty accepted")
	}
	if _, err := WeightedChunks([]float64{1}, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := WeightedChunks([]float64{1, -1}, 2); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{2, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect balance = %f", got)
	}
	if got := Imbalance([]float64{4, 0, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("imbalance = %f, want 2", got)
	}
	if Imbalance(nil) != 0 || Imbalance([]float64{0, 0}) != 0 {
		t.Error("degenerate imbalance nonzero")
	}
}

func TestWeightedChunksSingleProcessor(t *testing.T) {
	ranks, err := WeightedChunks([]float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranks {
		if r != 0 {
			t.Fatalf("rank %d on single processor", r)
		}
	}
}

func TestWeightedChunksMoreProcsThanElements(t *testing.T) {
	ranks, err := WeightedChunks([]float64{5, 5, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(-1)
	for _, r := range ranks {
		if r <= prev {
			t.Fatalf("ranks %v not strictly increasing with spare processors", ranks)
		}
		prev = r
	}
}
