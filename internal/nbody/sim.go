package nbody

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Simulator advances an n-body system through time with the velocity
// Verlet integrator, computing forces with either the FMM or the
// direct solver. It is the dynamic workload behind the paper's remark
// about reordering particles between FMM iterations: positions drift
// every step, slowly degrading any fixed SFC partition.
type Simulator struct {
	// Sys is the current particle state (positions mutate in place).
	Sys System
	// Vel holds particle velocities (vx + i*vy).
	Vel []complex128
	// Dt is the timestep.
	Dt float64
	// UseDirect selects the O(n^2) solver instead of the FMM.
	UseDirect bool
	// FMM tunes the fast solver.
	FMM FMMOptions
	// Steps counts completed steps.
	Steps int

	accel []complex128
}

// NewSimulator builds a simulator with zero initial velocities.
func NewSimulator(sys System, dt float64) (*Simulator, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 {
		return nil, fmt.Errorf("nbody: timestep %g must be positive", dt)
	}
	return &Simulator{
		Sys: sys,
		Vel: make([]complex128, len(sys.Pos)),
		Dt:  dt,
	}, nil
}

// forces returns per-particle accelerations (unit masses). The solver
// computes the mathematical potential phi_i = sum Q[j] log|r_ij|; the
// physical 2D Coulomb potential is its negation (the Green's function
// of -laplace is -log r / 2pi), so the force on particle i is
// +Q[i] * grad(phi_i) and like charges repel.
func (s *Simulator) forces() ([]complex128, error) {
	var res Result
	var err error
	if s.UseDirect {
		res, err = SolveDirect(s.Sys, 0)
	} else {
		res, err = SolveFMM(s.Sys, s.FMM)
	}
	if err != nil {
		return nil, err
	}
	acc := make([]complex128, len(s.Sys.Pos))
	for i := range acc {
		acc[i] = complex(s.Sys.Q[i], 0) * res.Gradient[i]
	}
	return acc, nil
}

// Step advances one velocity Verlet timestep with reflective walls.
func (s *Simulator) Step() error {
	if s.accel == nil {
		a, err := s.forces()
		if err != nil {
			return err
		}
		s.accel = a
	}
	half := complex(0.5*s.Dt*s.Dt, 0)
	dt := complex(s.Dt, 0)
	for i := range s.Sys.Pos {
		s.Sys.Pos[i] += s.Vel[i]*dt + s.accel[i]*half
		s.reflect(i)
	}
	newAccel, err := s.forces()
	if err != nil {
		return err
	}
	for i := range s.Vel {
		s.Vel[i] += (s.accel[i] + newAccel[i]) * complex(0.5*s.Dt, 0)
	}
	s.accel = newAccel
	s.Steps++
	return nil
}

// reflect bounces particle i off the unit-square walls, flipping the
// corresponding velocity component.
func (s *Simulator) reflect(i int) {
	x, y := real(s.Sys.Pos[i]), imag(s.Sys.Pos[i])
	vx, vy := real(s.Vel[i]), imag(s.Vel[i])
	x, vx = reflect1(x, vx)
	y, vy = reflect1(y, vy)
	s.Sys.Pos[i] = complex(x, y)
	s.Vel[i] = complex(vx, vy)
}

// reflect1 folds a coordinate back into [0, 1) and flips the velocity
// when an odd number of walls was crossed. The fold is the closed-form
// period-2 triangle wave rather than a bounce-at-a-time loop: one
// math.Mod absorbs any overshoot, where the loop's iteration count
// grew linearly with |x| — a runaway particle overshooting by ~1e9
// stalled the integrator for ~5e8 iterations inside one Step.
func reflect1(x, v float64) (float64, float64) {
	if x >= 0 && x < 1 {
		return x, v
	}
	m := math.Mod(x, 2)
	if m < 0 {
		m += 2
	}
	if m < 1 {
		// Even number of reflections: ascending segment of the wave.
		return m, v
	}
	x = 2 - m
	if x >= 1 {
		// m was exactly 1 (on the wall): nudge inside the open
		// interval so cell quantization stays in range.
		x = 1 - 1e-12
	}
	return x, -v
}

// KineticEnergy returns 1/2 sum |v|^2 (unit masses).
func (s *Simulator) KineticEnergy() float64 {
	var e float64
	for _, v := range s.Vel {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e / 2
}

// PotentialEnergy returns the physical pairwise interaction energy
// -1/2 sum Q[i] * phi_i (the 2D Coulomb sign, matching the repulsive
// force convention of Step) using the configured solver.
func (s *Simulator) PotentialEnergy() (float64, error) {
	var res Result
	var err error
	if s.UseDirect {
		res, err = SolveDirect(s.Sys, 0)
	} else {
		res, err = SolveFMM(s.Sys, s.FMM)
	}
	if err != nil {
		return 0, err
	}
	return -TotalEnergy(s.Sys, res), nil
}

// TotalMomentum returns the vector sum of velocities (unit masses).
func (s *Simulator) TotalMomentum() complex128 {
	var p complex128
	for _, v := range s.Vel {
		p += v
	}
	return p
}

// maxSpeed reports the fastest particle, a stability diagnostic for
// choosing Dt.
func (s *Simulator) MaxSpeed() float64 {
	var m float64
	for _, v := range s.Vel {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}
