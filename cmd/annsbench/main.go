// Command annsbench regenerates Figure 5: the (generalized) average
// nearest neighbor stretch of the four curves as the spatial
// resolution grows.
//
// Usage:
//
//	annsbench                     # Figure 5(a): radius 1, 2x2..512x512
//	annsbench -r 6                # Figure 5(b)
//	annsbench -minorder 3 -maxorder 8 -r 2
//	annsbench -csv                # machine-readable output
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"sfcacd/internal/experiments"
	"sfcacd/internal/geom"
	"sfcacd/internal/tablefmt"
)

func main() {
	var (
		minOrder = flag.Uint("minorder", 1, "smallest resolution order")
		maxOrder = flag.Uint("maxorder", 9, "largest resolution order (512x512 = 9)")
		radius   = flag.Int("r", 1, "neighborhood radius (1 = classic ANNS)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	res, err := experiments.RunFig5(context.Background(), *minOrder, *maxOrder, *radius, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "annsbench:", err)
		os.Exit(1)
	}
	if *csv {
		header := append([]string{"side"}, res.Curves...)
		var rows [][]string
		for i, o := range res.Orders {
			row := []string{strconv.Itoa(int(geom.Side(o)))}
			for c := range res.Curves {
				row = append(row, strconv.FormatFloat(res.ANNS[c][i], 'f', 6, 64))
			}
			rows = append(rows, row)
		}
		if err := tablefmt.WriteCSV(os.Stdout, header, rows); err != nil {
			fmt.Fprintln(os.Stderr, "annsbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := res.SeriesTable().Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "annsbench:", err)
		os.Exit(1)
	}
}
