// Package quadtree provides the quadtree machinery behind the FMM
// communication model: the per-level representative (minimum-rank)
// tree used to compute far-field ACD, FMM interaction lists, and a
// linear compressed quadtree in the style of Sundar, Sampath & Biros
// (the paper's reference [20]).
package quadtree

import (
	"fmt"
	"sync"

	"sfcacd/internal/geom"
	"sfcacd/internal/obs"
)

// RankTree records, for every cell of every resolution level, the
// minimum processor rank owning a particle inside the cell (-1 when
// the cell is empty). Level 0 is the root (one cell); level Order is
// the finest resolution. Because SFC chunks are contiguous in the
// particle order, the minimum rank of a cell is exactly the rank of
// the cell's lowest-ordered particle — the representative convention
// of §III for both the interpolation log-tree and the interaction
// list.
type RankTree struct {
	// Order is the finest level (grid side 2^Order).
	Order uint
	// levels[l] holds 4^l entries indexed by y*2^l + x. All levels are
	// windows into slab, one pooled allocation per tree.
	levels [][]int32
	slab   []int32
}

// slabPool recycles rank-tree slabs between builds. A tree of order k
// needs (4^(k+1)-1)/3 cells across all levels; parallel sweep cells
// each build one, so pooling keeps the allocator out of the sweep's
// hot path. Slabs come back via RankTree.Release.
var slabPool = sync.Pool{New: func() any { return new([]int32) }}

// Release returns the tree's level storage to the build pool. The tree
// must not be used afterwards. Only owners that know the tree is dead
// (the sweep scheduler's cells) should call it; other callers can
// leave the slab to the garbage collector.
func (t *RankTree) Release() {
	if t == nil || t.slab == nil {
		return
	}
	s := t.slab
	t.slab = nil
	t.levels = nil
	p := slabPool.Get().(*[]int32)
	*p = s
	slabPool.Put(p)
}

// BuildRankTree constructs the representative tree from particle cells
// and their owning ranks (parallel slices, as produced by
// acd.Assignment).
func BuildRankTree(order uint, pts []geom.Point, ranks []int32) *RankTree {
	if len(pts) != len(ranks) {
		panic("quadtree: pts and ranks length mismatch")
	}
	defer obs.StartSpan("treebuild").End()
	// One slab holds every level: 1 + 4 + ... + 4^order cells.
	total := (geom.Cells(order)*4 - 1) / 3
	p := slabPool.Get().(*[]int32)
	slab := *p
	*p = nil
	slabPool.Put(p)
	if uint64(cap(slab)) < total {
		slab = make([]int32, total)
	}
	slab = slab[:total]
	slab[0] = -1
	for i := 1; i < len(slab); i *= 2 {
		copy(slab[i:], slab[:i])
	}
	t := &RankTree{Order: order, levels: make([][]int32, order+1), slab: slab}
	off := uint64(0)
	for l := uint(0); l <= order; l++ {
		sz := geom.Cells(l)
		t.levels[l] = slab[off : off+sz : off+sz]
		off += sz
	}
	// Finest level directly from the particles.
	finest := t.levels[order]
	side := geom.Side(order)
	for i, p := range pts {
		id := geom.CellID(p, side)
		if cur := finest[id]; cur == -1 || ranks[i] < cur {
			finest[id] = ranks[i]
		}
	}
	// Coarser levels: min over the four children.
	for l := int(order) - 1; l >= 0; l-- {
		dst := t.levels[l]
		src := t.levels[l+1]
		cside := geom.Side(uint(l))
		fside := geom.Side(uint(l + 1))
		for y := uint32(0); y < cside; y++ {
			for x := uint32(0); x < cside; x++ {
				best := int32(-1)
				for dy := uint32(0); dy < 2; dy++ {
					for dx := uint32(0); dx < 2; dx++ {
						v := src[uint64(2*y+dy)*uint64(fside)+uint64(2*x+dx)]
						if v != -1 && (best == -1 || v < best) {
							best = v
						}
					}
				}
				dst[uint64(y)*uint64(cside)+uint64(x)] = best
			}
		}
	}
	return t
}

// Rep returns the representative rank of cell (x, y) at the given
// level, or -1 if the cell holds no particle.
func (t *RankTree) Rep(level uint, x, y uint32) int32 {
	if level > t.Order {
		panic(fmt.Sprintf("quadtree: level %d beyond order %d", level, t.Order))
	}
	side := geom.Side(level)
	if x >= side || y >= side {
		panic(fmt.Sprintf("quadtree: cell (%d,%d) outside level %d", x, y, level))
	}
	return t.levels[level][uint64(y)*uint64(side)+uint64(x)]
}

// NonEmpty returns the number of occupied cells at a level.
func (t *RankTree) NonEmpty(level uint) int {
	n := 0
	for _, v := range t.levels[level] {
		if v != -1 {
			n++
		}
	}
	return n
}

// VisitCells calls fn for every occupied cell at a level, in row-major
// order.
func (t *RankTree) VisitCells(level uint, fn func(x, y uint32, rep int32)) {
	side := geom.Side(level)
	lv := t.levels[level]
	for y := uint32(0); y < side; y++ {
		row := uint64(y) * uint64(side)
		for x := uint32(0); x < side; x++ {
			if rep := lv[row+uint64(x)]; rep != -1 {
				fn(x, y, rep)
			}
		}
	}
}

// InteractionList calls fn for every cell in the FMM interaction list
// of cell (x, y) at the given level: the children of the cell's
// parent's neighbors that are not Chebyshev-adjacent to the cell, at
// the same level (§III; validated against the paper's Figure 4).
// Empty cells are skipped; fn receives the member cell and its
// representative. Levels 0 and 1 have empty interaction lists.
func (t *RankTree) InteractionList(level uint, x, y uint32, fn func(nx, ny uint32, rep int32)) {
	if level < 2 {
		return
	}
	side := geom.Side(level)
	if x >= side || y >= side {
		panic(fmt.Sprintf("quadtree: cell (%d,%d) outside level %d", x, y, level))
	}
	lv := t.levels[level]
	px, py := int(x/2), int(y/2)
	pside := int(side / 2)
	self := geom.Pt(x, y)
	for ny := py - 1; ny <= py+1; ny++ {
		if ny < 0 || ny >= pside {
			continue
		}
		for nx := px - 1; nx <= px+1; nx++ {
			if nx < 0 || nx >= pside {
				continue
			}
			// Children of the parent-level cell (nx, ny).
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					cx, cy := uint32(2*nx+dx), uint32(2*ny+dy)
					cand := geom.Pt(cx, cy)
					if geom.Chebyshev(self, cand) <= 1 {
						continue // adjacent (or self): near field
					}
					if rep := lv[uint64(cy)*uint64(side)+uint64(cx)]; rep != -1 {
						fn(cx, cy, rep)
					}
				}
			}
		}
	}
}

// InteractionListSize returns the number of cells (occupied or not)
// that would be in the interaction list of (x, y) at the level,
// counting also empty cells — useful for validating the geometry
// against the paper's Figure 4.
func (t *RankTree) InteractionListSize(level uint, x, y uint32) int {
	if level < 2 {
		return 0
	}
	side := geom.Side(level)
	px, py := int(x/2), int(y/2)
	pside := int(side / 2)
	self := geom.Pt(x, y)
	n := 0
	for ny := py - 1; ny <= py+1; ny++ {
		if ny < 0 || ny >= pside {
			continue
		}
		for nx := px - 1; nx <= px+1; nx++ {
			if nx < 0 || nx >= pside {
				continue
			}
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					cand := geom.Pt(uint32(2*nx+dx), uint32(2*ny+dy))
					if geom.Chebyshev(self, cand) > 1 {
						n++
					}
				}
			}
		}
	}
	return n
}
