// nbody runs the application the paper's communication model
// abstracts: a 2D fast multipole solve of the n-body potential
// problem, validated against direct summation.
//
// Run with: go run ./examples/nbody [-n 20000] [-terms 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sfcacd"
)

func main() {
	var (
		n     = flag.Int("n", 20000, "number of particles")
		terms = flag.Int("terms", 20, "multipole expansion order")
	)
	flag.Parse()

	// A plasma-like system: alternating +1/-1 charges, uniform in the
	// unit square.
	r := sfcacd.NewRand(7)
	sys := sfcacd.NBodySystem{
		Pos: make([]complex128, *n),
		Q:   make([]float64, *n),
	}
	for i := 0; i < *n; i++ {
		sys.Pos[i] = complex(r.Float64(), r.Float64())
		if i%2 == 0 {
			sys.Q[i] = 1
		} else {
			sys.Q[i] = -1
		}
	}

	start := time.Now()
	fmm, err := sfcacd.SolveFMM(sys, sfcacd.FMMSolverOptions{Terms: *terms})
	if err != nil {
		log.Fatal(err)
	}
	fmmTime := time.Since(start)

	start = time.Now()
	adaptive, err := sfcacd.SolveAdaptiveFMM(sys, sfcacd.FMMSolverOptions{Terms: *terms})
	if err != nil {
		log.Fatal(err)
	}
	adaptiveTime := time.Since(start)

	start = time.Now()
	direct, err := sfcacd.SolveDirect(sys, 0)
	if err != nil {
		log.Fatal(err)
	}
	directTime := time.Since(start)

	var maxErr, maxMag float64
	for i := range fmm.Potential {
		if d := abs(fmm.Potential[i] - direct.Potential[i]); d > maxErr {
			maxErr = d
		}
		if m := abs(direct.Potential[i]); m > maxMag {
			maxMag = m
		}
	}
	var maxErrA float64
	for i := range adaptive.Potential {
		if d := abs(adaptive.Potential[i] - direct.Potential[i]); d > maxErrA {
			maxErrA = d
		}
	}
	fmt.Printf("n = %d particles, %d expansion terms\n", *n, *terms)
	fmt.Printf("uniform FMM:  %v\n", fmmTime.Round(time.Millisecond))
	fmt.Printf("adaptive FMM: %v\n", adaptiveTime.Round(time.Millisecond))
	fmt.Printf("direct:       %v  (%.1fx slower than uniform FMM)\n", directTime.Round(time.Millisecond),
		float64(directTime)/float64(fmmTime))
	fmt.Printf("max relative potential error: uniform %.2e, adaptive %.2e\n",
		maxErr/maxMag, maxErrA/maxMag)
	fmt.Printf("sample: potential at particle 0 = %.6f (direct %.6f)\n",
		fmm.Potential[0], direct.Potential[0])
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
