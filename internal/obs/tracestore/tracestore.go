// Package tracestore retains a bounded set of completed request
// traces under a tail-sampling policy: the decision to keep a trace
// is made after the request finishes, when its status and duration
// are known, so the interesting traces survive without paying to
// store every request.
//
// Three keep classes, checked in order:
//
//   - Errors. Every trace that finished with a 5xx status (a 504
//     deadline, a 503 overload, a 500) is kept, in a FIFO ring that
//     evicts the oldest error/sampled trace when full.
//   - Slowest-K. The K slowest traces seen so far are kept regardless
//     of status, so the requests that consumed the most compute are
//     always inspectable; a new slow trace displaces the fastest of
//     the current K.
//   - Probabilistic sample. Each remaining trace is kept with a
//     configurable probability, giving a background sample of healthy
//     traffic.
//
// Determinism: the sampling stream is an internal/rng generator
// seeded at construction, and one decision is drawn per offered trace
// whether or not it is needed — so given a fixed request sequence,
// seed, and clock, the retained set replays exactly. Production
// callers leave Seed zero (time-seeded); tests pin it.
package tracestore

import (
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"sfcacd/internal/obs"
	"sfcacd/internal/rng"
)

// Defaults for Options fields left zero.
const (
	DefaultCapacity   = 256
	DefaultSlowestK   = 32
	DefaultSampleProb = 0.01
)

// Options configures a Store.
type Options struct {
	// Capacity bounds the error/sampled retention ring; 0 means
	// DefaultCapacity.
	Capacity int
	// SlowestK bounds the always-kept slowest set; 0 means
	// DefaultSlowestK, negative disables it.
	SlowestK int
	// SampleProb is the keep probability for traces not kept as
	// errors or slowest; 0 means DefaultSampleProb, negative disables
	// sampling.
	SampleProb float64
	// Seed seeds the sampling and ID streams; 0 derives a seed from
	// the clock at construction (non-reproducible, fine in
	// production). Tests set it for exact replay.
	Seed uint64
	// Now supplies timestamps for NewID uniqueness and the trace
	// index; nil means time.Now. Tests inject a fixed clock.
	Now func() time.Time
}

// keepReason labels why a trace was retained.
type keepReason string

const (
	keptError   keepReason = "error"
	keptSlowest keepReason = "slowest"
	keptSampled keepReason = "sampled"
)

// entry is one retained trace and its membership bookkeeping.
type entry struct {
	tr     *obs.Trace
	seq    uint64 // insertion order, for newest-first listing
	dur    time.Duration
	status int
	inRing bool
	inSlow bool
	kept   []string
}

// Store is a thread-safe bounded retention set of completed traces.
type Store struct {
	now      func() time.Time
	capacity int
	slowestK int
	prob     float64

	mu   sync.Mutex
	r    *rng.Rand
	seq  uint64
	ring []*entry // FIFO, oldest first
	slow []*entry // sorted by duration ascending
	byID map[string]*entry

	offered, kept, errorsKept     *obs.Counter
	slowKept, sampleKept, evicted *obs.Counter
	retained                      *obs.Gauge
}

// New returns a Store with the given options.
func New(o Options) *Store {
	if o.Capacity == 0 {
		o.Capacity = DefaultCapacity
	}
	if o.SlowestK == 0 {
		o.SlowestK = DefaultSlowestK
	}
	if o.SampleProb == 0 {
		o.SampleProb = DefaultSampleProb
	}
	now := o.Now
	if now == nil {
		now = time.Now
	}
	seed := o.Seed
	if seed == 0 {
		seed = uint64(now().UnixNano())
	}
	return &Store{
		now:        now,
		capacity:   o.Capacity,
		slowestK:   o.SlowestK,
		prob:       o.SampleProb,
		r:          rng.New(seed),
		byID:       make(map[string]*entry),
		offered:    obs.GetCounter("tracestore.offered"),
		kept:       obs.GetCounter("tracestore.kept"),
		errorsKept: obs.GetCounter(obs.LabeledName("tracestore.kept_by", "reason", string(keptError))),
		slowKept:   obs.GetCounter(obs.LabeledName("tracestore.kept_by", "reason", string(keptSlowest))),
		sampleKept: obs.GetCounter(obs.LabeledName("tracestore.kept_by", "reason", string(keptSampled))),
		evicted:    obs.GetCounter("tracestore.evicted"),
		retained:   obs.GetGauge("tracestore.retained"),
	}
}

// Now returns the store's clock reading, so callers time requests on
// the same (possibly injected) clock the store uses.
func (s *Store) Now() time.Time { return s.now() }

// NewID returns a fresh 32-hex-character trace id drawn from the
// store's deterministic stream.
func (s *Store) NewID() string {
	s.mu.Lock()
	a, b := s.r.Uint64(), s.r.Uint64()
	s.mu.Unlock()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(a >> (8 * i))
		buf[8+i] = byte(b >> (8 * i))
	}
	return hex.EncodeToString(buf[:])
}

// Offer submits a finished trace for retention and reports whether it
// was kept. Unfinished traces are dropped (the policy needs a status
// and a duration to decide).
func (s *Store) Offer(tr *obs.Trace) bool {
	status, dur, done := tr.Finished()
	if tr == nil || !done {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offered.Inc()
	// Draw the sampling decision unconditionally so the stream
	// position depends only on the offer sequence, not on which
	// offers happened to error or be slow.
	sampled := s.prob > 0 && s.r.Float64() < s.prob

	e := &entry{tr: tr, seq: s.seq, dur: dur, status: status}
	s.seq++

	if s.slowestK > 0 && (len(s.slow) < s.slowestK || dur > s.slow[0].dur) {
		e.inSlow = true
		e.kept = append(e.kept, string(keptSlowest))
		s.slowKept.Inc()
		i := sort.Search(len(s.slow), func(i int) bool { return s.slow[i].dur >= dur })
		s.slow = append(s.slow, nil)
		copy(s.slow[i+1:], s.slow[i:])
		s.slow[i] = e
		if len(s.slow) > s.slowestK {
			displaced := s.slow[0]
			s.slow = s.slow[1:]
			displaced.inSlow = false
			s.forget(displaced)
		}
	}
	if isError(status) {
		e.kept = append(e.kept, string(keptError))
		s.errorsKept.Inc()
	}
	if sampled && !isError(status) && !e.inSlow {
		e.kept = append(e.kept, string(keptSampled))
		s.sampleKept.Inc()
	}
	// Errors and samples occupy the ring; slow-only traces live in
	// the slow set alone, so a burst of errors cannot evict them.
	if isError(status) || (sampled && !e.inSlow) {
		e.inRing = true
		s.ring = append(s.ring, e)
		if len(s.ring) > s.capacity {
			oldest := s.ring[0]
			s.ring = s.ring[1:]
			oldest.inRing = false
			s.forget(oldest)
		}
	}
	if len(e.kept) == 0 {
		return false
	}
	s.kept.Inc()
	s.byID[tr.ID()] = e
	s.retained.Set(float64(len(s.byID)))
	return true
}

// forget drops an entry no longer held by any retention class.
func (s *Store) forget(e *entry) {
	if e.inRing || e.inSlow {
		return
	}
	if cur, ok := s.byID[e.tr.ID()]; ok && cur == e {
		delete(s.byID, e.tr.ID())
	}
	s.evicted.Inc()
	s.retained.Set(float64(len(s.byID)))
}

// isError reports whether a status is always-kept: every 5xx, i.e.
// the 503s and 504s the serving path emits under overload and
// deadline pressure, plus any 500.
func isError(status int) bool { return status >= 500 }

// Get returns the retained trace with the given id.
func (s *Store) Get(id string) (*obs.Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return e.tr, true
}

// IndexEntry is one row of the trace index.
type IndexEntry struct {
	// ID is the trace id; GET /debug/traces/{id} returns the tree.
	ID string `json:"id"`
	// Name is the request name ("METHOD /path").
	Name string `json:"name"`
	// Status is the HTTP status the request finished with.
	Status int `json:"status"`
	// Start is the request start in RFC 3339 with nanoseconds.
	Start string `json:"start"`
	// DurationNs is the request duration.
	DurationNs int64 `json:"duration_ns"`
	// Kept lists the retention classes that held the trace
	// ("error", "slowest", "sampled").
	Kept []string `json:"kept"`
	// Attrs are the trace-level annotations (cache status, error
	// class, experiment, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// List returns an index of every retained trace, newest first.
func (s *Store) List() []IndexEntry {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.byID))
	for _, e := range s.byID {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq > entries[j].seq })
	out := make([]IndexEntry, len(entries))
	for i, e := range entries {
		out[i] = IndexEntry{
			ID:         e.tr.ID(),
			Name:       e.tr.Name(),
			Status:     e.status,
			Start:      e.tr.StartTime().UTC().Format(time.RFC3339Nano),
			DurationNs: e.dur.Nanoseconds(),
			Kept:       append([]string(nil), e.kept...),
			Attrs:      e.tr.Attrs(),
		}
	}
	return out
}

// Len returns the number of retained traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}
