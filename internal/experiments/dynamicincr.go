package experiments

import (
	"context"
	"fmt"
	"math"

	"sfcacd/internal/geom"
	"sfcacd/internal/incr"
	"sfcacd/internal/nbody"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// DynamicIncrResult is the incremental time-stepped pipeline study: an
// n-body simulation drifts the particles a few percent of a cell per
// tick, and per curve an incr.State carries the SFC order, chunk
// assignment, and near-field communication matrix across ticks instead
// of rebuilding them. Every reported value is a deterministic function
// of the particle trajectory alone — Params.IncrMode moves only the
// maintenance cost between mechanisms, never the numbers — so the
// rendered output doubles as a cross-mechanism differential oracle:
// runs with -incr-mode=incr and -incr-mode=rebuild must be
// byte-identical (CI compares them).
type DynamicIncrResult struct {
	// Curves are the curve names.
	Curves []string
	// Ticks are the simulation tick indices reported (1-based; tick 0
	// is the initial build).
	Ticks []int
	// Moved[t] counts particles whose cell changed at tick t. The
	// trajectory is curve-independent, so one series serves all curves.
	Moved []int
	// ACD[c][t] is the near-field ACD of the maintained matrix on the
	// curve's torus after tick t.
	ACD [][]float64
	// Gauge[c][t] is the drift gauge (fraction of particles whose
	// owning rank changed) fed to the repartition policy at tick t.
	Gauge [][]float64
	// Touched[c][t] counts the rank-pair events retracted plus
	// re-added at tick t — the delta mechanism's work measure.
	Touched [][]int
	// Repartitions[c] counts the ticks on which the policy decided to
	// repartition the curve's pipeline.
	Repartitions []int
}

// SeriesTables renders the per-tick ACD and drift-gauge series.
func (r DynamicIncrResult) SeriesTables() (acdT, gauge *tablefmt.SeriesTable) {
	mk := func(title string, cells [][]float64) *tablefmt.SeriesTable {
		st := &tablefmt.SeriesTable{Title: title, XLabel: "tick"}
		for _, s := range r.Ticks {
			st.X = append(st.X, float64(s))
		}
		for c, name := range r.Curves {
			st.Series = append(st.Series, tablefmt.Series{Name: name, Y: cells[c]})
		}
		return st
	}
	return mk("NFI ACD over n-body ticks, incrementally maintained", r.ACD),
		mk("ACD drift gauge (owner-churn fraction) per tick", r.Gauge)
}

// projectCells quantizes simulation positions back onto grid cells,
// keeping the one-particle-per-cell invariant: in identity order, a
// particle moves to its position's cell unless another particle
// already holds it this tick (then it keeps its old cell until the
// target frees up on a later tick). Deterministic given positions.
func projectCells(pos []complex128, cells []geom.Point, side uint32) []geom.Point {
	occ := make(map[uint64]bool, len(cells))
	for _, c := range cells {
		occ[geom.CellID(c, side)] = true
	}
	out := append([]geom.Point(nil), cells...)
	for i, z := range pos {
		x := uint32(real(z) * float64(side))
		y := uint32(imag(z) * float64(side))
		if x >= side {
			x = side - 1
		}
		if y >= side {
			y = side - 1
		}
		q := geom.Pt(x, y)
		if q == out[i] || occ[geom.CellID(q, side)] {
			continue
		}
		delete(occ, geom.CellID(out[i], side))
		occ[geom.CellID(q, side)] = true
		out[i] = q
	}
	return out
}

// RunDynamicIncr runs `ticks` n-body timesteps over one maintained
// pipeline per curve and reports the ACD, drift gauge, delta work, and
// repartition counts. Particle speeds and the timestep are sized so a
// few percent of particles cross a cell boundary per tick — the regime
// the incremental machinery is built for. Only trial 0 of Params is
// used: trials average independent samples, but a drift study is one
// trajectory.
func RunDynamicIncr(ctx context.Context, p Params, ticks int) (DynamicIncrResult, error) {
	if err := p.Validate(); err != nil {
		return DynamicIncrResult{}, err
	}
	if ticks < 1 {
		return DynamicIncrResult{}, fmt.Errorf("experiments: need at least 1 tick")
	}
	cells, err := samplePoints(p.sampler(), p, 0)
	if err != nil {
		return DynamicIncrResult{}, err
	}
	n := len(cells)
	side := geom.Side(p.Order)

	// Positions uniform within their sampled cell (centering them
	// instead would put every particle half a cell from the nearest
	// boundary and suppress crossings for dozens of ticks); equal
	// charges. Initial speeds are uniform in [0.5, 1.5) with uniform
	// headings, and the timestep makes a unit-speed particle cover 0.02
	// cells per tick, so a few percent of particles change cell each
	// tick — the displacement regime the delta maintenance targets.
	vr := rng.New(p.Seed ^ 0x1ACD)
	unit := func() float64 { return float64(vr.Uint32n(1<<24)) / float64(1<<24) }
	sys := nbody.System{Pos: make([]complex128, n), Q: make([]float64, n)}
	for i, c := range cells {
		sys.Pos[i] = complex((float64(c.X)+unit())/float64(side), (float64(c.Y)+unit())/float64(side))
		sys.Q[i] = 1.0 / float64(n)
	}
	sim, err := nbody.NewSimulator(sys, 0.02/float64(side))
	if err != nil {
		return DynamicIncrResult{}, err
	}
	for i := range sim.Vel {
		speed := 0.5 + unit()
		theta := 2 * math.Pi * unit()
		sim.Vel[i] = complex(speed*math.Cos(theta), speed*math.Sin(theta))
	}
	sim.FMM = nbody.FMMOptions{Terms: 6, Workers: p.Workers}

	curves := sfc.All()
	nc := len(curves)
	pool := sweepPool(p.Workers, nc)
	res := DynamicIncrResult{
		Curves:       curveNames(curves),
		ACD:          zeroRect(nc, ticks),
		Gauge:        zeroRect(nc, ticks),
		Touched:      make([][]int, nc),
		Repartitions: make([]int, nc),
	}
	for t := 1; t <= ticks; t++ {
		res.Ticks = append(res.Ticks, t)
	}
	for c := range res.Touched {
		res.Touched[c] = make([]int, ticks)
	}

	states := make([]*incr.State, nc)
	tables := make([]*topology.DistanceTable, nc)
	if err := runCells(ctx, pool, nc, func(c int) error {
		cfg := incr.Config{
			Curve:        curves[c],
			Order:        p.Order,
			P:            p.P(),
			Radius:       p.Radius,
			Metric:       geom.MetricChebyshev,
			ForceRebuild: p.IncrMode == "rebuild",
		}
		s, err := incr.NewState(cfg, cells)
		if err != nil {
			return err
		}
		states[c] = s
		tables[c] = topology.NewDistanceTable(topology.NewTorus(p.ProcOrder, curves[c]))
		return nil
	}); err != nil {
		return DynamicIncrResult{}, err
	}
	defer func() {
		for _, s := range states {
			s.Release()
		}
	}()

	// Ticks are inherently sequential; within a tick the curves are
	// independent cells reading the same frozen cell configuration.
	moved := make([]int, nc)
	for tick := 0; tick < ticks; tick++ {
		if err := sim.Step(); err != nil {
			return DynamicIncrResult{}, err
		}
		cells = projectCells(sim.Sys.Pos, cells, side)
		if err := runCells(ctx, pool, nc, func(c int) error {
			st, err := states[c].Tick(cells)
			if err != nil {
				return err
			}
			moved[c] = st.Moved
			res.ACD[c][tick] = states[c].ACD(tables[c]).ACD()
			res.Gauge[c][tick] = st.Gauge
			res.Touched[c][tick] = st.Retracted + st.Readded
			return nil
		}); err != nil {
			return DynamicIncrResult{}, err
		}
		// Moved is a property of the trajectory; every curve must agree.
		for c := 1; c < nc; c++ {
			if moved[c] != moved[0] {
				return DynamicIncrResult{}, fmt.Errorf("experiments: curve %s moved %d particles, %s moved %d",
					res.Curves[c], moved[c], res.Curves[0], moved[0])
			}
		}
		res.Moved = append(res.Moved, moved[0])
	}
	for c := range states {
		res.Repartitions[c] = states[c].Repartitions()
	}
	return res, nil
}
