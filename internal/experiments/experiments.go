// Package experiments contains one parameterized runner per table and
// figure of the paper's evaluation (§V–VI), plus the §VII primitive
// sweep and the contention extension. Each runner is deterministic
// given its Params (seeded sampling, fixed trial schedule) and returns
// structured results that cmd/acdbench and bench_test.go render.
//
// Paper-scale presets reproduce the published parameter settings;
// tests use scaled-down Params so the whole suite stays fast.
package experiments

import (
	"fmt"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/keynav"
	"sfcacd/internal/obs"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

// Params are the shared experiment knobs.
type Params struct {
	// Particles is the input size n.
	Particles int
	// Order is the spatial resolution order k (grid side 2^k).
	Order uint
	// ProcOrder fixes the processor count p = 4^ProcOrder (the side of
	// the square mesh/torus is 2^ProcOrder).
	ProcOrder uint
	// Radius is the near-field neighborhood radius r.
	Radius int
	// Trials is the number of independent trials averaged.
	Trials int
	// Seed drives all sampling; equal seeds replay exactly.
	Seed uint64
	// Workers caps the worker goroutines of the accumulation and
	// matrix-build passes; 0 means GOMAXPROCS. Results are identical
	// for any worker count; the knob exists to pin parallelism for
	// benchmarking and is recorded in run manifests.
	Workers int
	// NFIEngine selects the neighbor-resolution engine of the
	// accumulation passes: "tree" (or empty, the default — rank table +
	// quadtree, the differential oracle), "keys" (key-space occupancy
	// index, internal/keynav), or "auto" (per-regime: keys once the
	// dense rank table would exceed its budget, tree otherwise).
	// Results are bit-identical across engines; like Workers, the knob
	// only moves cost, so it is excluded from CanonicalKey.
	NFIEngine string
	// Distribution selects the particle sampling distribution by name
	// (dist.ByName); empty means uniform. Unlike the cost-only knobs it
	// changes results, so non-uniform values join CanonicalKey (the
	// uniform default is omitted there, keeping every previously cached
	// key stable).
	Distribution string
	// IncrMode pins the maintenance mechanism of the incremental
	// time-stepped experiments: "" or "incr" (delta maintenance with
	// policy-driven rebuild fallback) or "rebuild" (full rebuild every
	// tick). The two mechanisms are bit-identical by construction (the
	// cross-mechanism differential oracle CI enforces), so like
	// NFIEngine the knob only moves cost and is excluded from
	// CanonicalKey.
	IncrMode string
}

// incrModes lists the accepted IncrMode values.
var incrModes = map[string]bool{"": true, "incr": true, "rebuild": true}

// engine resolves the NFIEngine name, panicking on values Validate
// would have rejected.
func (p Params) engine() keynav.Engine {
	e, err := keynav.ParseEngine(p.NFIEngine)
	if err != nil {
		panic(err)
	}
	return e
}

// sampler resolves the Distribution name, panicking on values Validate
// would have rejected. Aliases normalize to the canonical singletons,
// so "exp" and "exponential" sample (and cache) identically.
func (p Params) sampler() dist.Sampler {
	if p.Distribution == "" {
		return dist.Uniform
	}
	s, err := dist.ByName(p.Distribution)
	if err != nil {
		panic(err)
	}
	return s
}

// P returns the processor count 4^ProcOrder.
func (p Params) P() int { return 1 << (2 * p.ProcOrder) }

// Validate checks that the parameters are mutually consistent.
func (p Params) Validate() error {
	if p.Particles < 1 {
		return fmt.Errorf("experiments: need at least 1 particle")
	}
	if p.Order > 15 {
		return fmt.Errorf("experiments: order %d too large", p.Order)
	}
	if uint64(p.Particles) > geom.Cells(p.Order) {
		return fmt.Errorf("experiments: %d particles exceed %d cells", p.Particles, geom.Cells(p.Order))
	}
	if p.Trials < 1 {
		return fmt.Errorf("experiments: need at least 1 trial")
	}
	if p.Radius < 0 {
		return fmt.Errorf("experiments: negative radius")
	}
	if p.Workers < 0 {
		return fmt.Errorf("experiments: negative worker count")
	}
	if _, err := keynav.ParseEngine(p.NFIEngine); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if p.Distribution != "" {
		if _, err := dist.ByName(p.Distribution); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	if !incrModes[p.IncrMode] {
		return fmt.Errorf("experiments: unknown incr mode %q", p.IncrMode)
	}
	return nil
}

// Scale returns a copy of p with particle count and grid/processor
// orders reduced by the given factor of 4 (each step quarters the
// particles and halves the grid side), used to derive fast test
// parameters from paper presets.
func (p Params) Scale(steps uint) Params {
	q := p
	for i := uint(0); i < steps; i++ {
		if q.Particles > 16 {
			q.Particles /= 4
		}
		if q.Order > 2 {
			q.Order--
		}
		if q.ProcOrder > 1 {
			q.ProcOrder--
		}
	}
	return q
}

// Paper-scale presets (§VI).
var (
	// Table12Paper: 250,000 particles, 1024x1024 resolution, 65,536
	// processors on a torus (Tables I and II).
	Table12Paper = Params{Particles: 250000, Order: 10, ProcOrder: 8, Radius: 1, Trials: 3, Seed: 2013}
	// Fig6Paper: 1,000,000 uniform particles, 4096x4096, radius 4
	// (Figure 6); the paper does not state p, we use 65,536.
	Fig6Paper = Params{Particles: 1000000, Order: 12, ProcOrder: 8, Radius: 4, Trials: 1, Seed: 2013}
	// Fig7Paper: 1,000,000 uniform particles; p sweeps 1,024..65,536
	// (Figure 7).
	Fig7Paper = Params{Particles: 1000000, Order: 11, ProcOrder: 8, Radius: 1, Trials: 1, Seed: 2013}
)

// trialSeed derives the sampling seed of one trial.
func trialSeed(base uint64, trial int) uint64 {
	return base + uint64(trial)*0x9e3779b97f4a7c15
}

// samplePoints draws the trial's unique particle set.
func samplePoints(s dist.Sampler, p Params, trial int) ([]geom.Point, error) {
	defer obs.StartSpan("sampling").End()
	r := rng.New(trialSeed(p.Seed, trial))
	return dist.SampleUnique(s, r, p.Order, p.Particles)
}

// curveNames returns the display names of a curve list.
func curveNames(curves []sfc.Curve) []string {
	names := make([]string, len(curves))
	for i, c := range curves {
		names[i] = c.Name()
	}
	return names
}

// torusPerCurve builds one torus per processor-order curve at the
// params' processor count.
func torusPerCurve(p Params, curves []sfc.Curve) []topology.Topology {
	topos := make([]topology.Topology, len(curves))
	for i, c := range curves {
		topos[i] = topology.NewTorus(p.ProcOrder, c)
	}
	return topos
}
