// Package rng implements a small deterministic pseudo-random number
// generator (xoshiro256** seeded via SplitMix64) so that every
// experiment in the library replays bit-identically across platforms
// and Go releases. The standard library's math/rand is avoided in
// experiment paths because its stream is not guaranteed stable.
package rng

import "math"

// Rand is a deterministic xoshiro256** generator. It is NOT safe for
// concurrent use; derive one generator per goroutine with Split.
type Rand struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only to expand seeds into full xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Equal seeds yield
// equal streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of the
// receiver's subsequent outputs, for fanning work out to goroutines.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Uint32n returns a uniform integer in [0, n). n must be > 0.
func (r *Rand) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n with n == 0")
	}
	// Lemire's multiply-shift rejection method.
	v := uint32(r.Uint64())
	prod := uint64(v) * uint64(n)
	low := uint32(prod)
	if low < n {
		thresh := -n % n
		for low < thresh {
			v = uint32(r.Uint64())
			prod = uint64(v) * uint64(n)
			low = uint32(prod)
		}
	}
	return uint32(prod >> 32)
}

// Intn returns a uniform integer in [0, n). n must be > 0 and fit in
// uint32 (all grid work in this library does).
func (r *Rand) Intn(n int) int {
	if n <= 0 || n > math.MaxUint32 {
		panic("rng: Intn range out of bounds")
	}
	return int(r.Uint32n(uint32(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method (deterministic given the stream).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
