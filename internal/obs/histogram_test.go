package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	// An observation v lands in the first bucket with v <= bound; the
	// trailing bucket catches overflow.
	cases := []struct {
		name       string
		bounds     []float64
		values     []float64
		wantCounts []uint64
		wantMin    float64
		wantMax    float64
		wantSum    float64
	}{
		{
			name:       "empty",
			bounds:     []float64{1, 10},
			wantCounts: []uint64{0, 0, 0},
		},
		{
			name:       "boundary values are inclusive",
			bounds:     []float64{1, 10, 100},
			values:     []float64{1, 10, 100},
			wantCounts: []uint64{1, 1, 1, 0},
			wantMin:    1, wantMax: 100, wantSum: 111,
		},
		{
			name:       "overflow bucket",
			bounds:     []float64{1, 10},
			values:     []float64{5000, 11},
			wantCounts: []uint64{0, 0, 2},
			wantMin:    11, wantMax: 5000, wantSum: 5011,
		},
		{
			name:       "below first bound",
			bounds:     []float64{10, 20},
			values:     []float64{0, -5, 9.99},
			wantCounts: []uint64{3, 0, 0},
			wantMin:    -5, wantMax: 9.99, wantSum: 4.99,
		},
		{
			name:       "unsorted bounds are sorted at construction",
			bounds:     []float64{100, 1, 10},
			values:     []float64{2, 20, 200},
			wantCounts: []uint64{0, 1, 1, 1},
			wantMin:    2, wantMax: 200, wantSum: 222,
		},
		{
			name:       "mid buckets",
			bounds:     []float64{1, 2, 4, 8},
			values:     []float64{1.5, 3, 3.5, 7, 9},
			wantCounts: []uint64{0, 1, 2, 1, 1},
			wantMin:    1.5, wantMax: 9, wantSum: 24,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.name, tc.bounds)
			for _, v := range tc.values {
				h.Observe(v)
			}
			s := h.Snapshot()
			if len(s.Counts) != len(tc.wantCounts) {
				t.Fatalf("got %d buckets, want %d", len(s.Counts), len(tc.wantCounts))
			}
			for i := range s.Counts {
				if s.Counts[i] != tc.wantCounts[i] {
					t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], tc.wantCounts[i], s.Counts)
				}
			}
			if s.Count != uint64(len(tc.values)) {
				t.Fatalf("count = %d, want %d", s.Count, len(tc.values))
			}
			if math.Abs(s.Sum-tc.wantSum) > 1e-9 {
				t.Fatalf("sum = %v, want %v", s.Sum, tc.wantSum)
			}
			if s.Min != tc.wantMin || s.Max != tc.wantMax {
				t.Fatalf("min/max = %v/%v, want %v/%v", s.Min, s.Max, tc.wantMin, tc.wantMax)
			}
		})
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram("conc", []float64{10, 100, 1000})
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 2000))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if s.Min != 0 || s.Max != 1999 {
		t.Fatalf("min/max = %v/%v, want 0/1999", s.Min, s.Max)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(10, 5, 4)
	wantLin := []float64{10, 15, 20, 25}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, wantLin)
		}
	}
	exp := ExponentialBuckets(1, 4, 5)
	wantExp := []float64{1, 4, 16, 64, 256}
	for i := range wantExp {
		if exp[i] != wantExp[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", exp, wantExp)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty Mean != 0")
	}
	if got := (HistogramSnapshot{Count: 4, Sum: 10}).Mean(); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}
