package keynav

import "sync"

// pairCutoff mirrors sfc.SortPermByKeys's small-n crossover: below it
// an insertion sort beats the histogram setup.
const pairCutoff = 128

// pairScratch pools the ping-pong buffers of sortPairs. Concurrent
// sweep cells each build an index per assignment, so the sort scratch
// must not hit the allocator every time.
var pairScratch = sync.Pool{New: func() any { return new(pairBufs) }}

type pairBufs struct {
	keys  []uint64
	ranks []int32
}

// sortPairs stably sorts keys in place, carrying ranks along, using an
// LSD radix sort over the low keyBits bits (rounded up to whole bytes;
// higher bytes are constant zero for grid keys and skipped). Sorting
// the pairs directly — rather than a permutation — keeps the search
// arrays contiguous without a gather pass.
func sortPairs(keys []uint64, ranks []int32, keyBits uint) {
	n := len(keys)
	if n < 2 {
		return
	}
	if n <= pairCutoff {
		for i := 1; i < n; i++ {
			k, r := keys[i], ranks[i]
			j := i - 1
			for j >= 0 && keys[j] > k {
				keys[j+1], ranks[j+1] = keys[j], ranks[j]
				j--
			}
			keys[j+1], ranks[j+1] = k, r
		}
		return
	}

	passes := int(keyBits+7) / 8
	if passes > 8 {
		passes = 8
	}
	var counts [8][256]int32
	for _, k := range keys {
		for p := 0; p < passes; p++ {
			counts[p][byte(k>>(uint(p)*8))]++
		}
	}

	scratch := pairScratch.Get().(*pairBufs)
	tk := grow(scratch.keys, n)
	tr := grow(scratch.ranks, n)

	sk, sr := keys, ranks
	dk, dr := tk, tr
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass) * 8
		c := &counts[pass]
		if c[byte(sk[0]>>shift)] == int32(n) {
			continue
		}
		sum := int32(0)
		for i := range c {
			cnt := c[i]
			c[i] = sum
			sum += cnt
		}
		for i, k := range sk {
			b := byte(k >> shift)
			dk[c[b]], dr[c[b]] = k, sr[i]
			c[b]++
		}
		sk, dk = dk, sk
		sr, dr = dr, sr
	}
	if &sk[0] != &keys[0] {
		copy(keys, sk)
		copy(ranks, sr)
	}
	scratch.keys, scratch.ranks = tk, tr
	pairScratch.Put(scratch)
}
