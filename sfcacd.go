// Package sfcacd is a library for evaluating space-filling curves in
// parallel scientific computing applications, reproducing "Empirical
// Analysis of Space-Filling Curves for Scientific Computing
// Applications" (DeFord & Kalyanaraman, ICPP 2013).
//
// The library centers on the Average Communicated Distance (ACD)
// metric: given a particle set, a particle-order space-filling curve,
// a network topology (whose mesh/torus rank placement follows a
// processor-order curve), and a communication model, the ACD is the
// average shortest-path hop distance over every pairwise communication
// the application performs. The bundled communication model abstracts
// the Fast Multipole Method's near-field and far-field interactions; a
// real 2D FMM solver is included as the motivating application, and
// the Average Nearest Neighbor Stretch (ANNS) metric is provided for
// application-independent comparisons.
//
// # Quick start
//
//	pts, _ := sfcacd.SampleUnique(sfcacd.Uniform, sfcacd.NewRand(1), 10, 250000)
//	a, _ := sfcacd.Assign(pts, sfcacd.Hilbert, 10, 65536)
//	torus := sfcacd.NewTorus(8, sfcacd.Hilbert)
//	fmt.Println(sfcacd.NFI(a, torus, sfcacd.NFIOptions{Radius: 1}).ACD())
//
// The subpackages under internal/ carry the implementation; this
// package is the supported public surface.
package sfcacd

import (
	"sfcacd/internal/acd"
	"sfcacd/internal/anns"
	"sfcacd/internal/dist"
	"sfcacd/internal/execmodel"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/geom3"
	"sfcacd/internal/model3d"
	"sfcacd/internal/nbody"
	"sfcacd/internal/primitives"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

// --- Geometry ---

// Point is a cell coordinate on the 2^k x 2^k spatial resolution.
type Point = geom.Point

// Pt constructs a Point.
func Pt(x, y uint32) Point { return geom.Pt(x, y) }

// Metric selects a spatial distance (Chebyshev or Manhattan).
type Metric = geom.Metric

// Spatial metrics.
const (
	MetricChebyshev = geom.MetricChebyshev
	MetricManhattan = geom.MetricManhattan
)

// --- Random numbers ---

// Rand is the deterministic generator used throughout the library.
type Rand = rng.Rand

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// --- Space-filling curves ---

// Curve maps between 2D cells and positions along a space-filling
// curve.
type Curve = sfc.Curve

// The curves studied in the paper, plus the snake-scan and Moore-loop
// extensions.
var (
	Hilbert  = sfc.Hilbert
	ZCurve   = sfc.Morton
	GrayCode = sfc.Gray
	RowMajor = sfc.RowMajor
	Snake    = sfc.Snake
	Moore    = sfc.Moore
)

// Curves returns the paper's four curves (Hilbert, Z, Gray, row
// major).
func Curves() []Curve { return sfc.All() }

// CurveByName resolves a curve from its name or common aliases.
func CurveByName(name string) (Curve, error) { return sfc.ByName(name) }

// NDCurve is an n-dimensional space-filling curve (3D Morton/Hilbert
// generalizations).
type NDCurve = sfc.NDCurve

// MortonND is the n-dimensional Z-curve.
type MortonND = sfc.MortonND

// HilbertND is the n-dimensional Hilbert curve (Skilling's algorithm).
type HilbertND = sfc.HilbertND

// --- Input distributions ---

// Sampler draws random particle cells.
type Sampler = dist.Sampler

// The paper's three input distributions.
var (
	Uniform     = dist.Uniform
	Normal      = dist.Normal
	Exponential = dist.Exponential
)

// Distributions returns the paper's three samplers.
func Distributions() []Sampler { return dist.All() }

// SamplerByName resolves a distribution by name.
func SamplerByName(name string) (Sampler, error) { return dist.ByName(name) }

// SampleUnique draws n distinct cells (at most one particle per finest
// cell, per the paper's assumption).
func SampleUnique(s Sampler, r *Rand, order uint, n int) ([]Point, error) {
	return dist.SampleUnique(s, r, order, n)
}

// --- Topologies ---

// Topology is a processor network with a shortest-path hop metric.
type Topology = topology.Topology

// NewTopology constructs one of the six paper topologies ("bus",
// "ring", "mesh", "torus", "quadtree", "hypercube") with p processors;
// placement is the processor-order curve for mesh/torus.
func NewTopology(name string, p int, placement Curve) (Topology, error) {
	return topology.New(name, p, placement)
}

// Topology constructors.
var (
	NewBus         = topology.NewBus
	NewRing        = topology.NewRing
	NewMesh        = topology.NewMesh
	NewTorus       = topology.NewTorus
	NewHypercube   = topology.NewHypercube
	NewQuadtreeNet = topology.NewQuadtreeNet
)

// TopologyKinds lists the six topology names.
func TopologyKinds() []string { return append([]string(nil), topology.Kinds...) }

// --- ACD pipeline ---

// Accumulator tallies communication events and distances; ACD() is
// their average.
type Accumulator = acd.Accumulator

// Assignment distributes SFC-ordered particles onto processors (§IV
// steps 1-4 of the paper).
type Assignment = acd.Assignment

// Assign orders particles along the curve, chunks them, and assigns
// chunk i to rank i.
func Assign(particles []Point, curve Curve, order uint, p int) (*Assignment, error) {
	return acd.Assign(particles, curve, order, p)
}

// AssignmentFromOwners builds an Assignment from an explicit
// particle-to-rank ownership, for dynamic studies where particles move
// while their owners stay fixed.
func AssignmentFromOwners(particles []Point, ranks []int32, order uint, p int) (*Assignment, error) {
	return acd.FromOwners(particles, ranks, order, p)
}

// WeightedAccumulator is the data-volume-weighted ACD accumulator
// (future-work item i).
type WeightedAccumulator = acd.WeightedAccumulator

// --- FMM communication model ---

// NFIOptions configures the near-field model.
type NFIOptions = fmmmodel.NFIOptions

// FFIOptions configures the far-field model.
type FFIOptions = fmmmodel.FFIOptions

// FFIResult breaks the far-field ACD into interpolation,
// anterpolation, and interaction-list components.
type FFIResult = fmmmodel.FFIResult

// NFI computes the near-field ACD of an assignment on a topology.
func NFI(a *Assignment, topo Topology, opts NFIOptions) Accumulator {
	return fmmmodel.NFI(a, topo, opts)
}

// FFI computes the far-field ACD of an assignment on a topology.
func FFI(a *Assignment, topo Topology, opts FFIOptions) FFIResult {
	return fmmmodel.FFI(a, topo, opts)
}

// --- ANNS metric ---

// ANNSOptions configures the stretch metric.
type ANNSOptions = anns.Options

// ANNSResult carries the averaged stretch.
type ANNSResult = anns.Result

// ANNS computes the (generalized) average nearest neighbor stretch of
// a curve at a resolution order.
func ANNS(c Curve, order uint, opts ANNSOptions) ANNSResult {
	return anns.Stretch(c, order, opts)
}

// MaxStretch returns the worst-case stretch over all pairs within the
// radius (the maximum nearest neighbor stretch of Xu-Tirthapura).
func MaxStretch(c Curve, order uint, opts ANNSOptions) float64 {
	return anns.MaxStretch(c, order, opts)
}

// AllPairsStretch estimates the mean stretch over random point pairs.
func AllPairsStretch(c Curve, order uint, samples int, r *Rand) ANNSResult {
	return anns.AllPairsStretch(c, order, samples, r)
}

// --- Execution cost model ---

// ExecTally accumulates per-processor message/hop/work costs from
// communication event streams.
type ExecTally = execmodel.Tally

// ExecCostParams parameterizes the bulk-synchronous cost model.
type ExecCostParams = execmodel.CostParams

// CollectNFITally tallies one near-field step's per-processor costs.
func CollectNFITally(a *Assignment, topo Topology, opts NFIOptions) *ExecTally {
	return execmodel.CollectNFI(a, topo, opts)
}

// CollectFFITally tallies one far-field step's per-processor costs.
func CollectFFITally(a *Assignment, topo Topology) *ExecTally {
	return execmodel.CollectFFI(a, topo)
}

// --- Quadtree ---

// QuadCell identifies a quadtree cell (level + coordinates).
type QuadCell = quadtree.Cell

// LinearQuadtree is an adaptive linear (compressed) quadtree.
type LinearQuadtree = quadtree.LinearTree

// BuildLinearQuadtree refines the domain until no leaf holds more than
// maxPerLeaf particles.
func BuildLinearQuadtree(order uint, pts []Point, maxPerLeaf int) *LinearQuadtree {
	return quadtree.BuildLinear(order, pts, maxPerLeaf)
}

// --- Communication primitives (§VII) ---

// Primitive ACD calculators over any topology.
var (
	Broadcast      = primitives.Broadcast
	Reduce         = primitives.Reduce
	AllToAll       = primitives.AllToAll
	ParallelPrefix = primitives.ParallelPrefix
	RingExchange   = primitives.RingExchange
	QuadTreeGather = primitives.QuadTreeGather
)

// CommProfile is an application's communication demand as a weighted
// primitive mix, evaluated against candidate topologies before
// implementation (§VII).
type CommProfile = primitives.Profile

// CommProfileEntry is one weighted phase of a CommProfile.
type CommProfileEntry = primitives.ProfileEntry

// --- 3D extension (paper future-work item ii) ---

// Point3 is a 3D cell coordinate.
type Point3 = geom3.Point3

// Pt3 constructs a Point3.
func Pt3(x, y, z uint32) Point3 { return geom3.Pt3(x, y, z) }

// Curves3D returns the four 3D curve families (Hilbert, Z, Gray, row
// major).
func Curves3D() []NDCurve { return sfc.AllND(3) }

// Samplers3D returns the three 3D input distributions.
func Samplers3D() []dist.Sampler3 { return dist.All3() }

// SampleUnique3 draws n distinct 3D cells.
func SampleUnique3(s dist.Sampler3, r *Rand, order uint, n int) ([]Point3, error) {
	return dist.SampleUnique3(s, r, order, n)
}

// Assignment3D distributes 3D particles onto processors.
type Assignment3D = model3d.Assignment

// Assign3D orders 3D particles along an NDCurve and chunks them onto p
// processors.
func Assign3D(particles []Point3, curve NDCurve, order uint, p int) (*Assignment3D, error) {
	return model3d.Assign(particles, curve, order, p)
}

// NFI3DOptions configures the 3D near-field model.
type NFI3DOptions = model3d.NFIOptions

// NFI3D computes the 3D near-field ACD.
func NFI3D(a *Assignment3D, topo Topology, opts NFI3DOptions) Accumulator {
	return model3d.NFI(a, topo, opts)
}

// FFI3D computes the 3D far-field ACD over the octree decomposition.
func FFI3D(a *Assignment3D, topo Topology, workers int) model3d.FFIResult {
	return model3d.FFI(a, topo, workers)
}

// 3D topology constructors.
var (
	NewMesh3D    = topology.NewMesh3D
	NewTorus3D   = topology.NewTorus3D
	NewOctreeNet = topology.NewOctreeNet
)

// ANNS3D computes the 3D average nearest neighbor stretch of a 3D
// curve.
func ANNS3D(curve NDCurve, order uint, radius int) (mean float64, pairs uint64) {
	return model3d.ANNS3D(curve, order, radius)
}

// --- FMM n-body solver ---

// NBodySystem is a set of charged particles in the unit square.
type NBodySystem = nbody.System

// NBodyResult holds per-particle potentials and gradients.
type NBodyResult = nbody.Result

// FMMSolverOptions tunes the fast multipole solver.
type FMMSolverOptions = nbody.FMMOptions

// SolveFMM computes potentials with the 2D fast multipole method.
func SolveFMM(s NBodySystem, opts FMMSolverOptions) (NBodyResult, error) {
	return nbody.SolveFMM(s, opts)
}

// SolveAdaptiveFMM computes potentials with the adaptive (dual tree
// traversal) fast multipole method, which handles heavily clustered
// inputs without the uniform tree's 4^depth memory.
func SolveAdaptiveFMM(s NBodySystem, opts FMMSolverOptions) (NBodyResult, error) {
	return nbody.SolveAdaptiveFMM(s, opts)
}

// SolveDirect computes potentials by O(n^2) direct summation.
func SolveDirect(s NBodySystem, workers int) (NBodyResult, error) {
	return nbody.SolveDirect(s, workers)
}

// NBodySimulator advances a system through time with velocity Verlet,
// using the FMM (or direct) solver for forces.
type NBodySimulator = nbody.Simulator

// NewNBodySimulator builds a simulator with zero initial velocities.
func NewNBodySimulator(sys NBodySystem, dt float64) (*NBodySimulator, error) {
	return nbody.NewSimulator(sys, dt)
}
