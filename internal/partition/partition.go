// Package partition implements step 2 and 4 of the paper's §IV
// pipeline: splitting a linearly ordered particle set into p
// consecutive chunks and assigning chunk i to processor i.
package partition

import "fmt"

// ChunkOf returns the chunk (= processor rank) owning the j-th element
// of n linearly ordered elements split into p balanced consecutive
// chunks. Chunks differ in size by at most one and ranks are
// monotonically non-decreasing in j — the property the quadtree
// representative computation relies on.
func ChunkOf(j, n, p int) int {
	if n <= 0 || p <= 0 || j < 0 || j >= n {
		panic(fmt.Sprintf("partition: ChunkOf(%d, %d, %d) out of range", j, n, p))
	}
	// Balanced: the first n%p chunks hold ceil(n/p) elements. The
	// closed form floor((j*p + p - 1? )) — use exact integer math:
	// rank r owns [r*n/p, (r+1)*n/p), so r = floor((j*p + p - 1)/n)?
	// Simplest correct inverse: r = (j*p)/n adjusted for rounding.
	r := j * p / n
	// Guard against boundary rounding: ensure j is inside r's range.
	for Start(r, n, p) > j {
		r--
	}
	for End(r, n, p) <= j {
		r++
	}
	return r
}

// Start returns the first ordered position owned by rank r.
func Start(r, n, p int) int { return r * n / p }

// End returns one past the last ordered position owned by rank r.
func End(r, n, p int) int { return (r + 1) * n / p }

// Size returns the number of elements owned by rank r.
func Size(r, n, p int) int { return End(r, n, p) - Start(r, n, p) }
