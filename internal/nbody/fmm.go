package nbody

import (
	"math"
	"math/cmplx"
	"runtime"
	"sync"
)

// FMMOptions tunes the fast multipole solver.
type FMMOptions struct {
	// Terms is the expansion order P (default 20). Larger is more
	// accurate: the error decays geometrically in P.
	Terms int
	// LeafSize is the target number of particles per leaf cell
	// (default 32); the tree depth is chosen so the average leaf
	// occupancy is about this.
	LeafSize int
	// MaxDepth caps the uniform tree depth (default 10).
	MaxDepth int
	// Workers caps the worker goroutines; 0 means GOMAXPROCS.
	Workers int
}

func (o *FMMOptions) normalize() {
	if o.Terms <= 0 {
		o.Terms = 20
	}
	if o.LeafSize <= 0 {
		o.LeafSize = 32
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// fmmTree is the uniform quadtree state of one solve.
// kernel bundles the expansion order and binomial table shared by the
// translation operators; both the uniform and adaptive solvers hold
// one.
type kernel struct {
	terms int
	// binom[a][b] = C(a, b), a <= 2*terms+2.
	binom [][]float64
}

func newKernel(terms int) kernel {
	return kernel{terms: terms, binom: newBinomTable(2*terms + 2)}
}

type fmmTree struct {
	kernel
	depth int // leaf level
	// Per level l: side = 2^l cells; multipole and local expansions,
	// each terms+1 complex coefficients per cell (index 0 is the
	// log/constant term).
	multipole [][]complex128
	local     [][]complex128
	// Leaf bucketing: particle indices grouped by leaf cell id.
	leafStart []int32
	leafItems []int32
}

func newBinomTable(max int) [][]float64 {
	b := make([][]float64, max+1)
	for a := 0; a <= max; a++ {
		b[a] = make([]float64, a+1)
		b[a][0] = 1
		for k := 1; k <= a; k++ {
			if k == a {
				b[a][k] = 1
			} else {
				b[a][k] = b[a-1][k-1] + b[a-1][k]
			}
		}
	}
	return b
}

// cellCenter returns the center of cell (ix, iy) at the given level.
func cellCenter(level, ix, iy int) complex128 {
	w := 1.0 / float64(int(1)<<level)
	return complex((float64(ix)+0.5)*w, (float64(iy)+0.5)*w)
}

// SolveFMM computes potentials and gradients with the fast multipole
// method. Results converge to SolveDirect's as Terms grows.
func SolveFMM(s System, opts FMMOptions) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	opts.normalize()
	n := len(s.Pos)
	t := &fmmTree{kernel: newKernel(opts.Terms)}
	// Depth so that average occupancy ~ LeafSize; at least 2 so
	// interaction lists exist.
	t.depth = 2
	for t.depth < opts.MaxDepth && n > opts.LeafSize*(1<<(2*t.depth)) {
		t.depth++
	}
	t.allocate()
	t.bucket(s)
	t.p2m(s)
	t.m2m()
	t.downward(opts.Workers)
	return t.evaluate(s, opts.Workers)
}

func (t *fmmTree) allocate() {
	t.multipole = make([][]complex128, t.depth+1)
	t.local = make([][]complex128, t.depth+1)
	for l := 0; l <= t.depth; l++ {
		cells := 1 << (2 * l)
		t.multipole[l] = make([]complex128, cells*(t.terms+1))
		t.local[l] = make([]complex128, cells*(t.terms+1))
	}
}

// coeffs returns the coefficient slice of a cell within a level array.
func (t kernel) coeffs(arr []complex128, cell int) []complex128 {
	return arr[cell*(t.terms+1) : (cell+1)*(t.terms+1)]
}

// leafIndex returns the leaf cell id (row-major) of a position.
func (t *fmmTree) leafIndex(z complex128) int {
	side := 1 << t.depth
	ix := int(real(z) * float64(side))
	iy := int(imag(z) * float64(side))
	if ix >= side {
		ix = side - 1
	}
	if iy >= side {
		iy = side - 1
	}
	return iy*side + ix
}

// bucket groups particle indices by leaf via counting sort.
func (t *fmmTree) bucket(s System) {
	leaves := 1 << (2 * t.depth)
	counts := make([]int32, leaves+1)
	ids := make([]int32, len(s.Pos))
	for i, z := range s.Pos {
		id := int32(t.leafIndex(z))
		ids[i] = id
		counts[id+1]++
	}
	for i := 1; i <= leaves; i++ {
		counts[i] += counts[i-1]
	}
	t.leafStart = counts
	t.leafItems = make([]int32, len(s.Pos))
	cursor := make([]int32, leaves)
	for i := range s.Pos {
		id := ids[i]
		t.leafItems[counts[id]+cursor[id]] = int32(i)
		cursor[id]++
	}
}

// leafParticles returns the particle indices in a leaf.
func (t *fmmTree) leafParticles(cell int) []int32 {
	return t.leafItems[t.leafStart[cell]:t.leafStart[cell+1]]
}

// p2m forms multipole expansions at the leaves (Greengard & Rokhlin
// Theorem 2.1): a_0 = sum q_i, a_k = sum -q_i (z_i - zc)^k / k.
func (t *fmmTree) p2m(s System) {
	side := 1 << t.depth
	mp := t.multipole[t.depth]
	for iy := 0; iy < side; iy++ {
		for ix := 0; ix < side; ix++ {
			cell := iy*side + ix
			items := t.leafParticles(cell)
			if len(items) == 0 {
				continue
			}
			zc := cellCenter(t.depth, ix, iy)
			a := t.coeffs(mp, cell)
			for _, pi := range items {
				q := s.Q[pi]
				dz := s.Pos[pi] - zc
				a[0] += complex(q, 0)
				pw := complex(1, 0)
				for k := 1; k <= t.terms; k++ {
					pw *= dz
					a[k] -= complex(q/float64(k), 0) * pw
				}
			}
		}
	}
}

// m2m translates children multipoles to their parents (Lemma 2.3):
// with z0 the child center relative to the parent center,
// b_0 = a_0, b_l = -a_0 z0^l / l + sum_{k=1..l} a_k z0^{l-k} C(l-1,k-1).
func (t *fmmTree) m2m() {
	for l := t.depth - 1; l >= 0; l-- {
		side := 1 << l
		parentArr := t.multipole[l]
		childArr := t.multipole[l+1]
		for iy := 0; iy < side; iy++ {
			for ix := 0; ix < side; ix++ {
				pc := t.coeffs(parentArr, iy*side+ix)
				zp := cellCenter(l, ix, iy)
				for cy := 0; cy < 2; cy++ {
					for cx := 0; cx < 2; cx++ {
						cix, ciy := 2*ix+cx, 2*iy+cy
						cc := t.coeffs(childArr, ciy*(side*2)+cix)
						if isZero(cc) {
							continue
						}
						z0 := cellCenter(l+1, cix, ciy) - zp
						t.shiftMultipole(cc, z0, pc)
					}
				}
			}
		}
	}
}

// shiftMultipole adds the multipole expansion src (about a center
// offset by z0 from dst's center) into dst.
func (t kernel) shiftMultipole(src []complex128, z0 complex128, dst []complex128) {
	dst[0] += src[0]
	// Powers of z0 up to terms.
	pw := make([]complex128, t.terms+1)
	pw[0] = 1
	for i := 1; i <= t.terms; i++ {
		pw[i] = pw[i-1] * z0
	}
	for l := 1; l <= t.terms; l++ {
		sum := -src[0] * pw[l] / complex(float64(l), 0)
		for k := 1; k <= l; k++ {
			sum += src[k] * pw[l-k] * complex(t.binom[l-1][k-1], 0)
		}
		dst[l] += sum
	}
}

// m2l converts a multipole expansion about a center offset z0 from the
// local center into a local expansion (Lemma 2.4):
// b_0 = a_0 log(-z0) + sum_k a_k (-1)^k / z0^k
// b_l = -a_0/(l z0^l) + (1/z0^l) sum_k a_k (-1)^k C(l+k-1,k-1) / z0^k.
func (t kernel) m2l(src []complex128, z0 complex128, dst []complex128) {
	inv := 1 / z0
	// s_k = a_k (-1)^k / z0^k for k >= 1.
	sk := make([]complex128, t.terms+1)
	ipw := inv
	sign := -1.0
	for k := 1; k <= t.terms; k++ {
		sk[k] = src[k] * complex(sign, 0) * ipw
		ipw *= inv
		sign = -sign
	}
	var b0 complex128
	b0 = src[0] * cmplx.Log(-z0)
	for k := 1; k <= t.terms; k++ {
		b0 += sk[k]
	}
	dst[0] += b0
	zl := complex(1, 0)
	for l := 1; l <= t.terms; l++ {
		zl *= inv // 1/z0^l
		sum := -src[0] / complex(float64(l), 0) * zl
		var inner complex128
		for k := 1; k <= t.terms; k++ {
			inner += sk[k] * complex(t.binom[l+k-1][k-1], 0)
		}
		sum += zl * inner
		dst[l] += sum
	}
}

// l2l shifts a parent's local expansion (about a center offset by z0
// from the child center... specifically src is about zp, dst about zc,
// z0 = zp - zc is the source center relative to the destination) into
// the child (Lemma 2.5): a_l = sum_{k=l} b_k C(k,l) (-z0)^{k-l}.
func (t kernel) l2l(src []complex128, z0 complex128, dst []complex128) {
	mz := -z0
	pw := make([]complex128, t.terms+1)
	pw[0] = 1
	for i := 1; i <= t.terms; i++ {
		pw[i] = pw[i-1] * mz
	}
	for l := 0; l <= t.terms; l++ {
		var sum complex128
		for k := l; k <= t.terms; k++ {
			sum += src[k] * complex(t.binom[k][l], 0) * pw[k-l]
		}
		dst[l] += sum
	}
}

func isZero(c []complex128) bool {
	for _, v := range c {
		if v != 0 {
			return false
		}
	}
	return true
}

// downward performs L2L + M2L from level 2 to the leaves,
// parallelized over cells within each level.
func (t *fmmTree) downward(workers int) {
	for l := 2; l <= t.depth; l++ {
		side := 1 << l
		locArr := t.local[l]
		mpArr := t.multipole[l]
		var parentLoc []complex128
		if l > 2 {
			parentLoc = t.local[l-1]
		}
		parallelRows(side, workers, func(yLo, yHi int) {
			for iy := yLo; iy < yHi; iy++ {
				for ix := 0; ix < side; ix++ {
					cell := iy*side + ix
					dst := t.coeffs(locArr, cell)
					zc := cellCenter(l, ix, iy)
					if parentLoc != nil {
						pc := t.coeffs(parentLoc, (iy/2)*(side/2)+ix/2)
						if !isZero(pc) {
							zp := cellCenter(l-1, ix/2, iy/2)
							t.l2l(pc, zp-zc, dst)
						}
					}
					// M2L over the interaction list: children of the
					// parent's neighbors that are not adjacent to this
					// cell.
					px, py := ix/2, iy/2
					pside := side / 2
					for ny := py - 1; ny <= py+1; ny++ {
						if ny < 0 || ny >= pside {
							continue
						}
						for nx := px - 1; nx <= px+1; nx++ {
							if nx < 0 || nx >= pside {
								continue
							}
							for dy := 0; dy < 2; dy++ {
								for dx := 0; dx < 2; dx++ {
									sx, sy := 2*nx+dx, 2*ny+dy
									if abs(sx-ix) <= 1 && abs(sy-iy) <= 1 {
										continue
									}
									src := t.coeffs(mpArr, sy*side+sx)
									if isZero(src) {
										continue
									}
									zs := cellCenter(l, sx, sy)
									t.m2l(src, zs-zc, dst)
								}
							}
						}
					}
				}
			}
		})
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// parallelRows splits [0, side) row stripes over workers and blocks
// until all complete.
func parallelRows(side, workers int, fn func(yLo, yHi int)) {
	if workers > side {
		workers = side
	}
	if workers < 1 {
		workers = 1
	}
	stripe := (side + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*stripe, (w+1)*stripe
		if hi > side {
			hi = side
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// evaluate computes the final per-particle results: local expansion at
// the leaf plus direct interactions with the (<=9) adjacent leaves.
func (t *fmmTree) evaluate(s System, workers int) (Result, error) {
	n := len(s.Pos)
	res := Result{Potential: make([]float64, n), Gradient: make([]complex128, n)}
	side := 1 << t.depth
	locArr := t.local[t.depth]
	parallelRows(side, workers, func(yLo, yHi int) {
		for iy := yLo; iy < yHi; iy++ {
			for ix := 0; ix < side; ix++ {
				cell := iy*side + ix
				items := t.leafParticles(cell)
				if len(items) == 0 {
					continue
				}
				zc := cellCenter(t.depth, ix, iy)
				loc := t.coeffs(locArr, cell)
				for _, pi := range items {
					z := s.Pos[pi]
					// Far field: evaluate the local expansion and its
					// derivative by Horner.
					dz := z - zc
					var phi, dphi complex128
					for k := t.terms; k >= 1; k-- {
						phi = phi*dz + loc[k]
						if k >= 2 {
							dphi = dphi*dz + loc[k]*complex(float64(k), 0)
						}
					}
					dphi = dphi*dz + loc[1]
					phi = phi*dz + loc[0]
					pot := real(phi)
					grad := dphi
					// Near field: direct interactions with adjacent
					// leaves (including own leaf).
					for ny := iy - 1; ny <= iy+1; ny++ {
						if ny < 0 || ny >= side {
							continue
						}
						for nx := ix - 1; nx <= ix+1; nx++ {
							if nx < 0 || nx >= side {
								continue
							}
							for _, qi := range t.leafParticles(ny*side + nx) {
								if qi == pi {
									continue
								}
								d := z - s.Pos[qi]
								if d == 0 {
									continue
								}
								pot += s.Q[qi] * realLog(d)
								grad += complex(s.Q[qi], 0) / d
							}
						}
					}
					res.Potential[pi] = pot
					res.Gradient[pi] = cmplx.Conj(grad)
				}
			}
		}
	})
	return res, nil
}

// RelativeError returns max_i |a.Potential[i] - b.Potential[i]| scaled
// by the max magnitude of b's potentials — the accuracy figure used by
// the solver tests and the nbody example.
func RelativeError(a, b Result) float64 {
	var maxDiff, maxMag float64
	for i := range a.Potential {
		d := math.Abs(a.Potential[i] - b.Potential[i])
		if d > maxDiff {
			maxDiff = d
		}
		if m := math.Abs(b.Potential[i]); m > maxMag {
			maxMag = m
		}
	}
	if maxMag == 0 {
		return maxDiff
	}
	return maxDiff / maxMag
}
