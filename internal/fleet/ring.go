// Package fleet turns N acdserverd processes into one serving fleet.
// A consistent-hash ring over the content-address key space routes
// each experiment request to an owner replica; an HTTP peer protocol
// (/internal/v1/peek/{key}, /internal/v1/result/{key}) lets a node
// that misses fetch a finished result from the owner or its siblings
// instead of recomputing; and the serving layer's forward path proxies
// whole requests to the owner so the cache stays placed where the ring
// says it lives.
//
// Everything degrades gracefully: any peer error or timeout falls back
// to local computation, so a one-node fleet — and a fleet whose peers
// are all partitioned away — behaves byte-identically to the
// single-process daemon, just slower on first contact.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the ring points each member contributes.
// 128 points keep the per-member load share within a few percent of
// 1/N while the ring stays small enough to rebuild on any membership
// change.
const DefaultVirtualNodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a member.
type ringPoint struct {
	hash   uint64
	member int32 // index into Ring.members
}

// Ring is an immutable consistent-hash ring over member IDs. Routing
// is a pure function of the sorted member list, so every process that
// agrees on the membership agrees on every key's owner, with no
// coordination. Construction order does not matter.
type Ring struct {
	members []string // sorted, distinct
	points  []ringPoint
}

// NewRing builds a ring from the member IDs with vnodes virtual nodes
// per member (0 means DefaultVirtualNodes). Duplicate IDs are
// collapsed; an empty member list yields a ring that routes nothing.
func NewRing(memberIDs []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	members := append([]string(nil), memberIDs...)
	sort.Strings(members)
	members = compact(members)
	r := &Ring{
		members: members,
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	for mi, id := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(id, v), member: int32(mi)})
		}
	}
	// Ties (two members hashing one virtual node onto the same circle
	// position) are broken by member order, which is sorted-ID order —
	// deterministic regardless of input order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// compact removes adjacent duplicates from a sorted slice.
func compact(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// pointHash places virtual node v of a member on the circle: the first
// 8 bytes of a sha256 over the length-framed (member, v) pair, so the
// points of "ab" vnode 1 and "ab1" vnode 0 cannot collide by
// concatenation and the placement is uniform enough that 128 points
// per member even out the arc shares.
func pointHash(member string, v int) uint64 {
	h := sha256.Sum256(fmt.Appendf(nil, "%d:%s:%d", len(member), member, v))
	return binary.BigEndian.Uint64(h[:8])
}

// Members returns the sorted member IDs.
func (r *Ring) Members() []string { return r.members }

// keyPoint maps a content-address key onto the circle. Keys are
// sha256 content addresses, so their leading 8 bytes are already
// uniform; no re-hashing needed.
func keyPoint(key []byte) uint64 {
	var b [8]byte
	copy(b[:], key)
	return binary.BigEndian.Uint64(b[:])
}

// successor returns the index in points of the first virtual node at
// or clockwise of h, wrapping at the top of the circle.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member that owns key, or "" on an empty ring.
func (r *Ring) Owner(key []byte) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.successor(keyPoint(key))].member]
}

// Replicas returns the first n distinct members clockwise of key —
// the owner first, then the sibling replicas a fleet node consults on
// a miss. n larger than the membership returns every member.
func (r *Ring) Replicas(key []byte, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i, start := 0, r.successor(keyPoint(key)); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
