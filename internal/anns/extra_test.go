package anns

import (
	"testing"

	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

func TestMaxStretchBoundsMean(t *testing.T) {
	for _, c := range sfc.All() {
		for order := uint(2); order <= 5; order++ {
			mean := Stretch(c, order, Options{Radius: 1}).Mean
			max := MaxStretch(c, order, Options{Radius: 1})
			if max < mean {
				t.Errorf("%s order %d: max %f < mean %f", c.Name(), order, max, mean)
			}
		}
	}
}

func TestMaxStretchRowMajorExact(t *testing.T) {
	// Row-major worst adjacent pair: horizontal neighbors are exactly
	// side apart in the order.
	for order := uint(1); order <= 6; order++ {
		want := float64(geom.Side(order))
		if got := MaxStretch(sfc.RowMajor, order, Options{Radius: 1}); got != want {
			t.Errorf("order %d: rowmajor max stretch %f, want %f", order, got, want)
		}
	}
}

func TestMaxStretchHilbertWorseThanRowMajor(t *testing.T) {
	// The worst Hilbert discontinuity (across the center line) exceeds
	// the row scan's uniform side-length jumps at larger orders —
	// Hilbert's loss under worst-case stretch is even starker than
	// under the mean.
	const order = 6
	h := MaxStretch(sfc.Hilbert, order, Options{Radius: 1})
	r := MaxStretch(sfc.RowMajor, order, Options{Radius: 1})
	if h <= r {
		t.Errorf("hilbert max stretch %f <= rowmajor %f", h, r)
	}
}

func TestAllPairsStretchDeterministic(t *testing.T) {
	a := AllPairsStretch(sfc.Hilbert, 6, 5000, rng.New(1))
	b := AllPairsStretch(sfc.Hilbert, 6, 5000, rng.New(1))
	if a != b {
		t.Fatal("sampling not deterministic")
	}
	if a.Pairs == 0 || a.Mean <= 0 {
		t.Fatalf("degenerate result %+v", a)
	}
}

func TestAllPairsStretchScale(t *testing.T) {
	// All-pairs stretch for any curve at order k is O(side): random
	// pairs at Manhattan distance ~side map to index gaps ~side^2.
	const order = 6
	side := float64(geom.Side(order))
	for _, c := range sfc.All() {
		res := AllPairsStretch(c, order, 20000, rng.New(7))
		if res.Mean < side/8 || res.Mean > side*8 {
			t.Errorf("%s: all-pairs stretch %f far from Theta(side=%f)", c.Name(), res.Mean, side)
		}
	}
}

func TestAllPairsStretchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("samples=0 accepted")
		}
	}()
	AllPairsStretch(sfc.Hilbert, 4, 0, rng.New(1))
}
