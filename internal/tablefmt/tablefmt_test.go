package tablefmt

import (
	"strings"
	"testing"
)

func TestMatrixRender(t *testing.T) {
	m := &Matrix{
		Title:  "NFI",
		Corner: "proc\\part",
		Cols:   []string{"hilbert", "morton"},
		Rows:   []string{"hilbert", "rowmajor"},
		Cells: [][]float64{
			{4.008, 4.308},
			{9.126, 9.763},
		},
		MarkMinima: true,
	}
	var b strings.Builder
	if err := m.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"NFI", "hilbert", "4.008*†", "9.126*", "row minimum"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMatrixRenderNoMarks(t *testing.T) {
	m := &Matrix{
		Cols:  []string{"a"},
		Rows:  []string{"r"},
		Cells: [][]float64{{1.5}},
	}
	var b strings.Builder
	if err := m.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "*") {
		t.Errorf("unexpected marker:\n%s", b.String())
	}
}

func TestMatrixPrecision(t *testing.T) {
	m := &Matrix{
		Cols:      []string{"a"},
		Rows:      []string{"r"},
		Cells:     [][]float64{{1.23456}},
		Precision: 1,
	}
	var b strings.Builder
	if err := m.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1.2") || strings.Contains(b.String(), "1.23") {
		t.Errorf("precision not honoured:\n%s", b.String())
	}
}

func TestMatrixShapeErrors(t *testing.T) {
	bad := &Matrix{Cols: []string{"a"}, Rows: []string{"r", "s"}, Cells: [][]float64{{1}}}
	if err := bad.Render(&strings.Builder{}); err == nil {
		t.Error("row mismatch accepted")
	}
	bad = &Matrix{Cols: []string{"a", "b"}, Rows: []string{"r"}, Cells: [][]float64{{1}}}
	if err := bad.Render(&strings.Builder{}); err == nil {
		t.Error("column mismatch accepted")
	}
}

func TestSeriesTableRender(t *testing.T) {
	st := &SeriesTable{
		Title:  "Fig 5(a)",
		XLabel: "side",
		X:      []float64{2, 4, 8},
		Series: []Series{
			{Name: "hilbert", Y: []float64{1.5, 2.8, 5.1}},
			{Name: "morton", Y: []float64{1.5, 2.5, 4.4}},
		},
	}
	var b strings.Builder
	if err := st.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig 5(a)", "side", "hilbert", "morton", "2.800", "4.400"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 3 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestSeriesTableShapeError(t *testing.T) {
	st := &SeriesTable{
		X:      []float64{1, 2},
		Series: []Series{{Name: "a", Y: []float64{1}}},
	}
	if err := st.Render(&strings.Builder{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"x", "y"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != "x,y\n1,2\n3,4\n" {
		t.Errorf("csv output %q", b.String())
	}
	if err := WriteCSV(&strings.Builder{}, []string{"x"}, [][]string{{"1", "2"}}); err == nil {
		t.Error("field mismatch accepted")
	}
}
