package resultcache

import (
	"container/list"
	"encoding/json"
	"sync"

	"sfcacd/internal/obs"
)

// Entry is one cached result: the experiment it came from, the JSON
// encodings of its effective parameters and structured result, and the
// run manifest of the computation that produced it. All byte slices
// are treated as immutable once stored; callers must not mutate them.
type Entry struct {
	// Key is the entry's content address.
	Key Key `json:"key"`
	// Experiment is the registry name that produced the entry.
	Experiment string `json:"experiment"`
	// Params is the JSON encoding of the effective configuration.
	Params json.RawMessage `json:"params"`
	// Result is the JSON encoding of the structured result.
	Result json.RawMessage `json:"result"`
	// Manifest is the JSON run manifest of the producing computation.
	Manifest json.RawMessage `json:"manifest,omitempty"`
}

// entryOverhead approximates the bookkeeping bytes an entry costs
// beyond its payload (list element, map slot, headers).
const entryOverhead = 256

// size is the entry's byte account.
func (e Entry) size() int64 {
	return int64(len(e.Experiment) + len(e.Params) + len(e.Result) + len(e.Manifest) + entryOverhead)
}

// MarshalJSON encodes the key as hex for the on-disk form.
func (k Key) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes the hex form.
func (k *Key) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	return k.parseHex(s)
}

// Cache is a thread-safe, byte-size-accounted LRU over Entry values.
// Put of an entry larger than the budget is dropped (never evicts the
// whole cache for one oversized result); otherwise least-recently-used
// entries are evicted until the new entry fits.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recently used; values are *Entry
	items    map[Key]*list.Element

	hits, misses, evictions, puts *obs.Counter
	bytesGauge, entriesGauge      *obs.Gauge
}

// New returns a cache bounded to maxBytes of accounted entry payload.
// maxBytes <= 0 disables storage entirely (every Get misses, every Put
// is dropped), which keeps call sites free of nil checks.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes:     maxBytes,
		ll:           list.New(),
		items:        make(map[Key]*list.Element),
		hits:         obs.GetCounter("resultcache.hits"),
		misses:       obs.GetCounter("resultcache.misses"),
		evictions:    obs.GetCounter("resultcache.evictions"),
		puts:         obs.GetCounter("resultcache.puts"),
		bytesGauge:   obs.GetGauge("resultcache.bytes"),
		entriesGauge: obs.GetGauge("resultcache.entries"),
	}
}

// Get returns the entry stored under k and marks it most recently
// used.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses.Inc()
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return *el.Value.(*Entry), true
}

// Put stores e under e.Key, evicting least-recently-used entries as
// needed. Storing an existing key refreshes the entry and its
// recency.
func (c *Cache) Put(e Entry) {
	sz := e.size()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sz > c.maxBytes {
		return
	}
	if el, ok := c.items[e.Key]; ok {
		c.curBytes += sz - el.Value.(*Entry).size()
		el.Value = &e
		c.ll.MoveToFront(el)
	} else {
		c.items[e.Key] = c.ll.PushFront(&e)
		c.curBytes += sz
	}
	c.puts.Inc()
	for c.curBytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		victim := oldest.Value.(*Entry)
		c.ll.Remove(oldest)
		delete(c.items, victim.Key)
		c.curBytes -= victim.size()
		c.evictions.Inc()
	}
	c.bytesGauge.Set(float64(c.curBytes))
	c.entriesGauge.Set(float64(c.ll.Len()))
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the accounted payload size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}
