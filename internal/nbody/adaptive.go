package nbody

import "math/cmplx"

// This file implements the adaptive fast multipole solver: instead of
// a uniform quadtree (which wastes memory and time when the input is
// clustered, like the paper's exponential distribution), the domain is
// refined only where particles are, and interactions are organized by
// Dehnen-style dual tree traversal. The multipole acceptance criterion
// — the gap between two boxes is at least the larger box side — gives
// the same geometric convergence rate as the uniform scheme's
// interaction lists, and the traversal guarantees every particle pair
// is covered exactly once (by one M2L'd ancestor pair or one P2P).

// anode is one adaptive tree node.
type anode struct {
	level  int
	ix, iy int
	center complex128
	// children is nil for leaves.
	children []*anode
	// particles holds the indices bucketed in this subtree; for leaves
	// they are the node's own particles.
	particles []int32
	multipole []complex128
	local     []complex128
}

func (n *anode) isLeaf() bool { return n.children == nil }

// side returns the node's box side length.
func (n *anode) side() float64 { return 1 / float64(int(1)<<n.level) }

// adaptiveSolver holds one solve's state.
type adaptiveSolver struct {
	kernel
	sys       System
	leafSize  int
	maxDepth  int
	root      *anode
	potential []float64
	gradient  []complex128
}

// SolveAdaptiveFMM computes potentials and gradients with the adaptive
// fast multipole method. It matches SolveDirect to the same accuracy
// as SolveFMM but scales to heavily clustered inputs without the
// uniform tree's 4^depth memory.
func SolveAdaptiveFMM(s System, opts FMMOptions) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	opts.normalize()
	if opts.MaxDepth < 2 {
		opts.MaxDepth = 2
	}
	a := &adaptiveSolver{
		kernel:    newKernel(opts.Terms),
		sys:       s,
		leafSize:  opts.LeafSize,
		maxDepth:  opts.MaxDepth,
		potential: make([]float64, len(s.Pos)),
		gradient:  make([]complex128, len(s.Pos)),
	}
	all := make([]int32, len(s.Pos))
	for i := range all {
		all[i] = int32(i)
	}
	a.root = a.build(0, 0, 0, all)
	a.upward(a.root)
	a.interact(a.root, a.root)
	a.downward(a.root)
	return Result{Potential: a.potential, Gradient: a.gradient}, nil
}

// build recursively constructs the adaptive tree over the given
// particle indices (bucketed in place).
func (a *adaptiveSolver) build(level, ix, iy int, items []int32) *anode {
	n := &anode{
		level: level, ix: ix, iy: iy,
		center:    cellCenter(level, ix, iy),
		particles: items,
	}
	if len(items) <= a.leafSize || level >= a.maxDepth {
		return n
	}
	// Partition items into the four children (stable bucketing).
	var buckets [4][]int32
	for _, pi := range items {
		z := a.sys.Pos[pi]
		cx, cy := 0, 0
		if real(z) >= real(n.center) {
			cx = 1
		}
		if imag(z) >= imag(n.center) {
			cy = 1
		}
		buckets[cy*2+cx] = append(buckets[cy*2+cx], pi)
	}
	n.children = make([]*anode, 0, 4)
	for c := 0; c < 4; c++ {
		if len(buckets[c]) == 0 {
			continue
		}
		child := a.build(level+1, 2*ix+c%2, 2*iy+c/2, buckets[c])
		n.children = append(n.children, child)
	}
	return n
}

// upward computes multipole expansions bottom-up: P2M at leaves, M2M
// at internal nodes.
func (a *adaptiveSolver) upward(n *anode) {
	n.multipole = make([]complex128, a.terms+1)
	if n.isLeaf() {
		for _, pi := range n.particles {
			q := a.sys.Q[pi]
			dz := a.sys.Pos[pi] - n.center
			n.multipole[0] += complex(q, 0)
			pw := complex(1, 0)
			for k := 1; k <= a.terms; k++ {
				pw *= dz
				n.multipole[k] -= complex(q/float64(k), 0) * pw
			}
		}
		return
	}
	for _, c := range n.children {
		a.upward(c)
		a.shiftMultipole(c.multipole, c.center-n.center, n.multipole)
	}
}

// wellSeparated reports whether the L-infinity gap between the two
// boxes is at least the larger box side — the MAC under which both
// boxes' expansions converge at rate <= ~0.48.
func wellSeparated(x, y *anode) bool {
	sx, sy := x.side(), y.side()
	dx := absf(real(x.center) - real(y.center))
	dy := absf(imag(x.center) - imag(y.center))
	gap := dx
	if dy > gap {
		gap = dy
	}
	gap -= (sx + sy) / 2
	max := sx
	if sy > max {
		max = sy
	}
	// Allow a hair of floating-point slack: the grid-aligned geometry
	// makes gaps exact multiples of box sides.
	return gap >= max-1e-12
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// interact performs the dual tree traversal over the unordered node
// pair (x, y), accumulating M2L translations and near-field P2P.
func (a *adaptiveSolver) interact(x, y *anode) {
	if x == y {
		if x.isLeaf() {
			a.p2pSelf(x)
			return
		}
		for i, ci := range x.children {
			a.interact(ci, ci)
			for _, cj := range x.children[i+1:] {
				a.interact(ci, cj)
			}
		}
		return
	}
	if wellSeparated(x, y) {
		if x.local == nil {
			x.local = make([]complex128, a.terms+1)
		}
		if y.local == nil {
			y.local = make([]complex128, a.terms+1)
		}
		a.m2l(y.multipole, y.center-x.center, x.local)
		a.m2l(x.multipole, x.center-y.center, y.local)
		return
	}
	if x.isLeaf() && y.isLeaf() {
		a.p2pPair(x, y)
		return
	}
	// Split the coarser (larger) box; ties split x.
	if y.isLeaf() || (!x.isLeaf() && x.level <= y.level) {
		for _, c := range x.children {
			a.interact(c, y)
		}
		return
	}
	for _, c := range y.children {
		a.interact(x, c)
	}
}

// p2pSelf adds the direct interactions among a leaf's own particles.
func (a *adaptiveSolver) p2pSelf(n *anode) {
	for i, pi := range n.particles {
		for _, pj := range n.particles[i+1:] {
			a.pairwise(pi, pj)
		}
	}
}

// p2pPair adds the direct interactions between two leaves.
func (a *adaptiveSolver) p2pPair(x, y *anode) {
	for _, pi := range x.particles {
		for _, pj := range y.particles {
			a.pairwise(pi, pj)
		}
	}
}

// pairwise accumulates the mutual interaction of two distinct
// particles.
func (a *adaptiveSolver) pairwise(pi, pj int32) {
	d := a.sys.Pos[pi] - a.sys.Pos[pj]
	if d == 0 {
		return
	}
	lg := realLog(d)
	a.potential[pi] += a.sys.Q[pj] * lg
	a.potential[pj] += a.sys.Q[pi] * lg
	inv := 1 / d
	a.gradient[pi] += complex(a.sys.Q[pj], 0) * inv
	a.gradient[pj] -= complex(a.sys.Q[pi], 0) * inv
}

// downward pushes local expansions to the leaves (L2L) and evaluates
// them at the particles (L2P), finishing the far field. It also
// conjugates the accumulated gradients into (gx, gy) form.
func (a *adaptiveSolver) downward(n *anode) {
	a.pushLocal(n)
	for i := range a.gradient {
		a.gradient[i] = cmplx.Conj(a.gradient[i])
	}
}

func (a *adaptiveSolver) pushLocal(n *anode) {
	if n.isLeaf() {
		if n.local == nil {
			return
		}
		for _, pi := range n.particles {
			dz := a.sys.Pos[pi] - n.center
			var phi, dphi complex128
			for k := a.terms; k >= 1; k-- {
				phi = phi*dz + n.local[k]
				if k >= 2 {
					dphi = dphi*dz + n.local[k]*complex(float64(k), 0)
				}
			}
			dphi = dphi*dz + n.local[1]
			phi = phi*dz + n.local[0]
			a.potential[pi] += real(phi)
			a.gradient[pi] += dphi
		}
		return
	}
	for _, c := range n.children {
		if n.local != nil {
			if c.local == nil {
				c.local = make([]complex128, a.terms+1)
			}
			a.l2l(n.local, n.center-c.center, c.local)
		}
		a.pushLocal(c)
	}
}

// TreeStats reports the adaptive tree shape of a solve configuration,
// for tests and diagnostics.
type TreeStats struct {
	Nodes, Leaves, MaxDepth, MaxLeafSize int
}

// AdaptiveTreeStats builds the adaptive tree for a system and reports
// its shape without solving.
func AdaptiveTreeStats(s System, opts FMMOptions) (TreeStats, error) {
	if err := s.Validate(); err != nil {
		return TreeStats{}, err
	}
	opts.normalize()
	a := &adaptiveSolver{kernel: kernel{terms: 1}, sys: s, leafSize: opts.LeafSize, maxDepth: opts.MaxDepth}
	all := make([]int32, len(s.Pos))
	for i := range all {
		all[i] = int32(i)
	}
	root := a.build(0, 0, 0, all)
	var st TreeStats
	var walk func(n *anode)
	walk = func(n *anode) {
		st.Nodes++
		if n.level > st.MaxDepth {
			st.MaxDepth = n.level
		}
		if n.isLeaf() {
			st.Leaves++
			if len(n.particles) > st.MaxLeafSize {
				st.MaxLeafSize = len(n.particles)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(root)
	return st, nil
}
