package sfc

import "sync"

// resortFallback is the displaced fraction (as a divisor of n) past
// which ResortPermByKeys abandons the merge strategy: with more than
// n/4 elements out of place the displaced sort approaches the cost of
// the full radix sort and the extraction/merge passes stop paying for
// themselves.
const resortFallback = 4

// maxSpikePops bounds how many backbone entries one element may pop:
// enough to recover from a short contiguous run of displaced upward
// spikes (runs longer than this are vanishingly rare at the displaced
// fractions the merge path serves), small enough that a low outlier
// probing a healthy backbone costs O(1).
const maxSpikePops = 8

// resortScratch pools the displaced-element buffer so repeated
// incremental re-sorts (one per timestep per curve) do not churn the
// allocator.
var resortScratch = sync.Pool{New: func() any { return new([]int) }}

// ResortPermByKeys sorts perm in place so that keys[perm[0]] <=
// keys[perm[1]] <= ..., exploiting near-sortedness: one scan extracts
// the already-ordered backbone in place and collects the displaced
// minority, which is sorted separately (it is small) and merged back —
// two passes over n plus a sort of the displaced, instead of the eight
// radix passes of SortPermByKeys. Past a displaced fraction of 1/4 it
// falls back to the full radix sort, so it is never asymptotically
// worse. Returns the number of displaced elements (n on fallback).
//
// Keys must be distinct across perm (the pipeline's one-particle-per-
// cell invariant); with duplicate keys the result is still sorted but
// the relative order of equal keys is unspecified, unlike the stable
// SortPermByKeys.
func ResortPermByKeys(perm []int, keys []uint64) int {
	n := len(perm)
	if n < 2 {
		return 0
	}
	scratch := resortScratch.Get().(*[]int)
	displaced := (*scratch)[:0]

	// Backbone extraction: keep elements that extend the sorted prefix,
	// writing them compacted at perm[:w] (w never passes the read
	// cursor). When an element undercuts the backbone tip the scan must
	// decide which side is out of place: if popping at most
	// maxSpikePops backbone entries lets the element extend what
	// remains, the tip was a short run of upward spikes — displace the
	// spikes, not the (possibly long) ordered run following them.
	// Popping is committed only on success, so a genuinely low element
	// never unwinds a healthy backbone: it displaces itself instead.
	w := 0
	for p := 0; p < n; p++ {
		e := perm[p]
		k := keys[e]
		if w == 0 || k >= keys[perm[w-1]] {
			perm[w] = e
			w++
			continue
		}
		pops := 1
		for pops < maxSpikePops && pops < w && k < keys[perm[w-pops-1]] {
			pops++
		}
		if pops == w || k >= keys[perm[w-pops-1]] {
			for j := 0; j < pops; j++ {
				displaced = append(displaced, perm[w-1-j])
			}
			w -= pops
			perm[w] = e
			w++
		} else {
			displaced = append(displaced, e)
		}
	}

	d := len(displaced)
	if d == 0 {
		*scratch = displaced
		resortScratch.Put(scratch)
		return 0
	}
	if d > n/resortFallback {
		// Too disordered for the merge to win: reassemble the full
		// permutation (backbone and displaced partition perm's original
		// elements) and radix sort it from scratch.
		copy(perm[w:], displaced)
		*scratch = displaced[:0]
		resortScratch.Put(scratch)
		SortPermByKeys(perm, keys)
		return n
	}

	SortPermByKeys(displaced, keys)

	// Merge backbone perm[:w] and displaced from the back into
	// perm[:n]. In place is safe: the write cursor t stays strictly
	// ahead of the backbone read cursor i (t-i = j+1 > 0 while
	// displaced elements remain, and the loop ends when they run out).
	i, j := w-1, d-1
	for t := n - 1; j >= 0; t-- {
		if i >= 0 && keys[perm[i]] > keys[displaced[j]] {
			perm[t] = perm[i]
			i--
		} else {
			perm[t] = displaced[j]
			j--
		}
	}
	*scratch = displaced[:0]
	resortScratch.Put(scratch)
	return d
}
