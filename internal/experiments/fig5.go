package experiments

import (
	"context"
	"fmt"

	"sfcacd/internal/anns"
	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
)

// Fig5Result holds the ANNS sweep of Figure 5: the (generalized)
// average nearest neighbor stretch of each curve as the spatial
// resolution grows.
type Fig5Result struct {
	// Radius is the neighborhood radius (1 for Figure 5(a), 6 for
	// Figure 5(b)).
	Radius int
	// Orders are the resolution orders swept (grid side 2^order).
	Orders []uint
	// Curves are the curve names.
	Curves []string
	// ANNS[c][o] is the stretch of curve c at Orders[o].
	ANNS [][]float64
}

// SeriesTable renders the sweep as an aligned figure table with the
// grid side as the X axis.
func (f Fig5Result) SeriesTable() *tablefmt.SeriesTable {
	st := &tablefmt.SeriesTable{
		Title:  fmt.Sprintf("Figure 5: average nearest neighbor stretch, radius %d", f.Radius),
		XLabel: "side",
	}
	for _, o := range f.Orders {
		st.X = append(st.X, float64(geom.Side(o)))
	}
	for c, name := range f.Curves {
		st.Series = append(st.Series, tablefmt.Series{Name: name, Y: f.ANNS[c]})
	}
	return st
}

// RunFig5 computes the ANNS of the paper's four curves for every
// resolution order in [minOrder, maxOrder] at the given radius. The
// paper sweeps 2x2 through 512x512 (orders 1..9), radius 1 in Figure
// 5(a) and radius 6 in Figure 5(b). workers caps the sweep pool over
// curve x order cells (0 means GOMAXPROCS).
func RunFig5(ctx context.Context, minOrder, maxOrder uint, radius, workers int) (Fig5Result, error) {
	if minOrder < 1 || maxOrder < minOrder || maxOrder > 12 {
		return Fig5Result{}, fmt.Errorf("experiments: bad order range [%d,%d]", minOrder, maxOrder)
	}
	if radius < 1 {
		return Fig5Result{}, fmt.Errorf("experiments: bad radius %d", radius)
	}
	curves := sfc.All()
	res := Fig5Result{Radius: radius, Curves: curveNames(curves)}
	for o := minOrder; o <= maxOrder; o++ {
		res.Orders = append(res.Orders, o)
	}
	res.ANNS = make([][]float64, len(curves))
	for c := range curves {
		res.ANNS[c] = make([]float64, len(res.Orders))
	}
	no := len(res.Orders)
	cells := len(curves) * no
	err := runCells(ctx, sweepPool(workers, cells), cells, func(cell int) error {
		c := cell / no
		i := cell % no
		res.ANNS[c][i] = anns.Stretch(curves[c], res.Orders[i], anns.Options{Radius: radius}).Mean
		return nil
	})
	if err != nil {
		return Fig5Result{}, err
	}
	return res, nil
}
