package obs

import "testing"

func TestSnapshotSubCounters(t *testing.T) {
	prev := Snapshot{Counters: map[string]uint64{"a": 10, "b": 5}}
	cur := Snapshot{Counters: map[string]uint64{"a": 17, "b": 3, "c": 2}}
	d := cur.Sub(prev)
	if d.Counters["a"] != 7 {
		t.Errorf("a delta = %d, want 7", d.Counters["a"])
	}
	// b went backwards (a Reset happened between snapshots): clamp to
	// zero instead of wrapping to a huge unsigned value.
	if d.Counters["b"] != 0 {
		t.Errorf("b delta = %d, want 0 (clamped)", d.Counters["b"])
	}
	if d.Counters["c"] != 2 {
		t.Errorf("new counter c delta = %d, want 2", d.Counters["c"])
	}
}

func TestSnapshotSubGaugesKeepCurrent(t *testing.T) {
	prev := Snapshot{Gauges: map[string]float64{"g": 1.5}}
	cur := Snapshot{Gauges: map[string]float64{"g": 4.25}}
	if d := cur.Sub(prev); d.Gauges["g"] != 4.25 {
		t.Errorf("gauge after Sub = %v, want the current value 4.25", d.Gauges["g"])
	}
}

func TestSnapshotSubHistograms(t *testing.T) {
	prev := Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Count: 3, Sum: 30, Min: 5, Max: 15, Counts: []uint64{1, 2}},
	}}
	cur := Snapshot{Histograms: map[string]HistogramSnapshot{
		"h":   {Count: 8, Sum: 100, Min: 2, Max: 40, Counts: []uint64{3, 5}},
		"new": {Count: 1, Sum: 7, Counts: []uint64{1}},
	}}
	d := cur.Sub(prev)
	h := d.Histograms["h"]
	if h.Count != 5 || h.Sum != 70 {
		t.Errorf("h delta count/sum = %d/%v, want 5/70", h.Count, h.Sum)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Errorf("h bucket deltas = %v, want [2 3]", h.Counts)
	}
	// Min/Max are last-value-style: the delta keeps the current window.
	if h.Min != 2 || h.Max != 40 {
		t.Errorf("h min/max = %v/%v, want 2/40", h.Min, h.Max)
	}
	if n := d.Histograms["new"]; n.Count != 1 || n.Sum != 7 {
		t.Errorf("histogram absent from prev kept whole: %+v", n)
	}
}

// TestSnapshotSubHistogramReset: any regressed histogram field means a
// Reset happened between the snapshots, and the whole delta clamps to
// zero — never a mix of subtracted and carried-over fields that would
// fabricate a histogram whose buckets disagree with its Count.
func TestSnapshotSubHistogramReset(t *testing.T) {
	prev := Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Count: 10, Sum: 500, Counts: []uint64{4, 6}},
	}}
	cases := map[string]HistogramSnapshot{
		"count regressed":  {Count: 3, Sum: 600, Counts: []uint64{4, 6}},
		"sum regressed":    {Count: 12, Sum: 100, Counts: []uint64{5, 7}},
		"bucket regressed": {Count: 12, Sum: 600, Counts: []uint64{2, 10}},
	}
	for name, cur := range cases {
		d := (Snapshot{Histograms: map[string]HistogramSnapshot{"h": cur}}).Sub(prev)
		h := d.Histograms["h"]
		if h.Count != 0 || h.Sum != 0 {
			t.Errorf("%s: delta count/sum = %d/%v, want 0/0", name, h.Count, h.Sum)
		}
		for i, c := range h.Counts {
			if c != 0 {
				t.Errorf("%s: bucket %d delta = %d, want 0", name, i, c)
			}
		}
		var total uint64
		for _, c := range h.Counts {
			total += c
		}
		if total != h.Count {
			t.Errorf("%s: inconsistent delta: buckets sum to %d, Count is %d", name, total, h.Count)
		}
	}
}

// TestSnapshotSubAfterRegistryReset runs the real sequence the clamp
// exists for: snapshot, Reset, less activity, snapshot — the delta
// must clamp counters and histograms the same way.
func TestSnapshotSubAfterRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.GetCounter("work.items")
	h := r.GetHistogram("work.latency", []float64{10, 100})
	c.Add(100)
	for i := 0; i < 8; i++ {
		h.Observe(50)
	}
	before := r.Snapshot()

	r.Reset()
	c.Add(2)
	h.Observe(5)
	after := r.Snapshot()

	d := after.Sub(before)
	if d.Counters["work.items"] != 0 {
		t.Errorf("counter delta across Reset = %d, want 0", d.Counters["work.items"])
	}
	hd := d.Histograms["work.latency"]
	if hd.Count != 0 || hd.Sum != 0 {
		t.Errorf("histogram delta across Reset = count %d sum %v, want zeros", hd.Count, hd.Sum)
	}
	for i, v := range hd.Counts {
		if v != 0 {
			t.Errorf("bucket %d delta across Reset = %d, want 0", i, v)
		}
	}
}

func TestSnapshotSubEmpty(t *testing.T) {
	d := (Snapshot{}).Sub(Snapshot{})
	if d.Counters != nil || d.Gauges != nil || d.Histograms != nil {
		t.Errorf("empty Sub allocated maps: %+v", d)
	}
}
