package dist

import (
	"math"
	"testing"

	"sfcacd/internal/geom3"
	"sfcacd/internal/rng"
)

func TestAll3HasThree(t *testing.T) {
	if len(All3()) != 3 {
		t.Fatalf("All3() = %d samplers", len(All3()))
	}
	names := map[string]bool{}
	for _, s := range All3() {
		names[s.Name()] = true
	}
	for _, want := range []string{"uniform", "normal", "exponential"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestSamples3InBounds(t *testing.T) {
	r := rng.New(1)
	const order = 5
	side := geom3.Side(order)
	for _, s := range All3() {
		for i := 0; i < 10000; i++ {
			p := s.Sample3(r, order)
			if p.X >= side || p.Y >= side || p.Z >= side {
				t.Fatalf("%s: %v outside cube", s.Name(), p)
			}
		}
	}
}

func TestNormal3CentersOnCube(t *testing.T) {
	r := rng.New(2)
	const order = 7 // 128^3
	var sx, sy, sz float64
	const n = 30000
	for i := 0; i < n; i++ {
		p := Normal3.Sample3(r, order)
		sx += float64(p.X)
		sy += float64(p.Y)
		sz += float64(p.Z)
	}
	mid := float64(geom3.Side(order)) / 2
	for _, mean := range []float64{sx / n, sy / n, sz / n} {
		if math.Abs(mean-mid) > 2 {
			t.Errorf("normal3 mean %f, want ~%f", mean, mid)
		}
	}
}

func TestExponential3SkewsToCornerOctant(t *testing.T) {
	r := rng.New(3)
	const order = 7
	half := geom3.Side(order) / 2
	inCorner := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := Exponential3.Sample3(r, order)
		if p.X < half && p.Y < half && p.Z < half {
			inCorner++
		}
	}
	if frac := float64(inCorner) / n; frac < 0.85 {
		t.Errorf("only %.2f of exponential3 mass in corner octant", frac)
	}
}

func TestSampleUnique3Distinct(t *testing.T) {
	r := rng.New(4)
	const order = 4 // 4096 cells
	for _, s := range All3() {
		pts, err := SampleUnique3(s, r, order, 500)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		seen := make(map[geom3.Point3]bool)
		for _, p := range pts {
			if seen[p] {
				t.Fatalf("%s: duplicate %v", s.Name(), p)
			}
			seen[p] = true
		}
	}
}

func TestSampleUnique3TooMany(t *testing.T) {
	if _, err := SampleUnique3(Uniform3, rng.New(5), 1, 9); err == nil {
		t.Fatal("9 particles in 8 cells accepted")
	}
}

func TestSampleUnique3Deterministic(t *testing.T) {
	a, _ := SampleUnique3(Normal3, rng.New(6), 5, 300)
	b, _ := SampleUnique3(Normal3, rng.New(6), 5, 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
