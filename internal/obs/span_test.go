package obs

import (
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	// Table of Start/End scripts and the phase tree shape they must
	// produce. "start X"/"end" manipulate an explicit span stack.
	type op struct {
		action string // "start" or "end"
		name   string
	}
	cases := []struct {
		name string
		ops  []op
		// want is a flat render: "parent/child:calls" entries in
		// first-entered order, depth-first.
		want []string
	}{
		{
			name: "single",
			ops:  []op{{"start", "a"}, {"end", ""}},
			want: []string{"a:1"},
		},
		{
			name: "nested",
			ops: []op{
				{"start", "exp"},
				{"start", "sampling"}, {"end", ""},
				{"start", "assign"},
				{"start", "ordering"}, {"end", ""},
				{"start", "partitioning"}, {"end", ""},
				{"end", ""},
				{"end", ""},
			},
			want: []string{"exp:1", "exp/sampling:1", "exp/assign:1",
				"exp/assign/ordering:1", "exp/assign/partitioning:1"},
		},
		{
			name: "same-name phases merge",
			ops: []op{
				{"start", "exp"},
				{"start", "trial"}, {"end", ""},
				{"start", "trial"}, {"end", ""},
				{"start", "trial"}, {"end", ""},
				{"end", ""},
			},
			want: []string{"exp:1", "exp/trial:3"},
		},
		{
			name: "siblings keep first-entered order",
			ops: []op{
				{"start", "b"}, {"end", ""},
				{"start", "a"}, {"end", ""},
				{"start", "b"}, {"end", ""},
			},
			want: []string{"b:2", "a:1"},
		},
		{
			name: "recursive same name nests",
			ops: []op{
				{"start", "x"},
				{"start", "x"}, {"end", ""},
				{"end", ""},
			},
			want: []string{"x:1", "x/x:1"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTracer()
			var stack []*Span
			for _, o := range tc.ops {
				if o.action == "start" {
					stack = append(stack, tr.Start(o.name))
				} else {
					stack[len(stack)-1].End()
					stack = stack[:len(stack)-1]
				}
			}
			var got []string
			var walk func(prefix string, ps []PhaseSnapshot)
			walk = func(prefix string, ps []PhaseSnapshot) {
				for _, p := range ps {
					path := p.Name
					if prefix != "" {
						path = prefix + "/" + p.Name
					}
					got = append(got, path+":"+uitoa(p.Calls))
					walk(path, p.Children)
				}
			}
			walk("", tr.Snapshot())
			if len(got) != len(tc.want) {
				t.Fatalf("tree = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("tree = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestSpanRecordsTime(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("timed")
	time.Sleep(5 * time.Millisecond)
	sp.End()
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Ns < int64(2*time.Millisecond) {
		t.Fatalf("span recorded %+v, want >= 2ms", snap)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("a")
	sp.End()
	sp.End() // must not double-book or corrupt the stack
	snap := tr.Snapshot()
	if snap[0].Calls != 1 {
		t.Fatalf("calls = %d, want 1", snap[0].Calls)
	}
	var nilSpan *Span
	nilSpan.End() // nil-safe
}

func TestTakeResetsAndOrphansInFlight(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start("outer")
	inner := tr.Start("inner")
	first := tr.Take()
	if len(first) != 1 || first[0].Name != "outer" || first[0].Children[0].Name != "inner" {
		t.Fatalf("Take = %+v", first)
	}
	// Ending spans from the collected generation must not touch the
	// fresh tree.
	inner.End()
	outer.End()
	if rest := tr.Snapshot(); len(rest) != 0 {
		t.Fatalf("post-Take tree not empty: %+v", rest)
	}
	// The tracer is reusable after Take.
	tr.Start("fresh").End()
	if snap := tr.Snapshot(); len(snap) != 1 || snap[0].Name != "fresh" {
		t.Fatalf("fresh tree = %+v", snap)
	}
}

func TestStartTimer(t *testing.T) {
	h := newHistogram("t", ExponentialBuckets(1000, 10, 6))
	stop := StartTimer(h)
	time.Sleep(2 * time.Millisecond)
	stop()
	s := h.Snapshot()
	if s.Count != 1 || s.Sum < float64(time.Millisecond) {
		t.Fatalf("timer observed %+v", s)
	}
}
