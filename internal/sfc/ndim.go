package sfc

import "fmt"

// This file generalizes the curves to n dimensions. The paper's
// experiments are 2D, but its future-work section (item ii) calls for
// 3D validation; the ND forms also back the 3D FMM-ready octree work.

// NDCurve maps between n-dimensional cell coordinates and positions
// along a space-filling curve of a given order (side 2^order per
// dimension). Implementations must satisfy dims*order <= 63.
type NDCurve interface {
	// Name returns the curve's canonical name, e.g. "hilbert3d".
	Name() string
	// Dims returns the dimensionality n.
	Dims() int
	// IndexND returns the curve position of the cell at coords
	// (len(coords) == Dims, each < 2^order).
	IndexND(order uint, coords []uint32) uint64
	// CoordsND writes the cell at position d into out
	// (len(out) == Dims).
	CoordsND(order uint, d uint64, out []uint32)
}

func checkND(order uint, dims int) {
	if dims < 1 {
		panic("sfc: NDCurve with dims < 1")
	}
	if uint(dims)*order > 63 {
		panic(fmt.Sprintf("sfc: dims %d x order %d exceeds 63 index bits", dims, order))
	}
}

// --- Morton, n dimensions ---

// MortonND is the n-dimensional Z-curve: bit interleaving across dims.
type MortonND struct {
	N int
}

// Name implements NDCurve.
func (m MortonND) Name() string { return fmt.Sprintf("morton%dd", m.N) }

// Dims implements NDCurve.
func (m MortonND) Dims() int { return m.N }

// IndexND implements NDCurve.
func (m MortonND) IndexND(order uint, coords []uint32) uint64 {
	checkND(order, m.N)
	if len(coords) != m.N {
		panic("sfc: coords length mismatch")
	}
	ndStats.countEncode(int(coords[0]))
	var d uint64
	for bit := int(order) - 1; bit >= 0; bit-- {
		for dim := m.N - 1; dim >= 0; dim-- {
			d = d<<1 | uint64(coords[dim]>>uint(bit))&1
		}
	}
	return d
}

// CoordsND implements NDCurve.
func (m MortonND) CoordsND(order uint, d uint64, out []uint32) {
	checkND(order, m.N)
	if len(out) != m.N {
		panic("sfc: out length mismatch")
	}
	ndStats.countDecode(int(d))
	for i := range out {
		out[i] = 0
	}
	shift := uint(0)
	for bit := uint(0); bit < order; bit++ {
		for dim := 0; dim < m.N; dim++ {
			out[dim] |= uint32(d>>shift&1) << bit
			shift++
		}
	}
}

// --- Hilbert, n dimensions (Skilling's transpose algorithm) ---

// HilbertND is the n-dimensional Hilbert curve computed with John
// Skilling's transpose algorithm ("Programming the Hilbert curve",
// AIP Conf. Proc. 707, 2004). Its 2D orientation differs from the
// classic H_k by a reflection, which is irrelevant to every metric in
// this library (all are invariant under grid symmetries).
type HilbertND struct {
	N int
}

// Name implements NDCurve.
func (h HilbertND) Name() string { return fmt.Sprintf("hilbert%dd", h.N) }

// Dims implements NDCurve.
func (h HilbertND) Dims() int { return h.N }

// IndexND implements NDCurve.
func (h HilbertND) IndexND(order uint, coords []uint32) uint64 {
	checkND(order, h.N)
	if len(coords) != h.N {
		panic("sfc: coords length mismatch")
	}
	ndStats.countEncode(int(coords[0]))
	x := make([]uint32, h.N)
	copy(x, coords)
	axesToTranspose(x, order)
	// Interleave the transpose MSB-first: bit b of x[0] is the most
	// significant of each group of n bits.
	var d uint64
	for bit := int(order) - 1; bit >= 0; bit-- {
		for dim := 0; dim < h.N; dim++ {
			d = d<<1 | uint64(x[dim]>>uint(bit))&1
		}
	}
	return d
}

// CoordsND implements NDCurve.
func (h HilbertND) CoordsND(order uint, d uint64, out []uint32) {
	checkND(order, h.N)
	if len(out) != h.N {
		panic("sfc: out length mismatch")
	}
	ndStats.countDecode(int(d))
	for i := range out {
		out[i] = 0
	}
	pos := int(order)*h.N - 1
	for bit := int(order) - 1; bit >= 0; bit-- {
		for dim := 0; dim < h.N; dim++ {
			out[dim] |= uint32(d>>uint(pos)&1) << uint(bit)
			pos--
		}
	}
	transposeToAxes(out, order)
}

// axesToTranspose converts coordinates in place to the Hilbert
// transpose representation (Skilling 2004).
func axesToTranspose(x []uint32, order uint) {
	n := len(x)
	if order == 0 {
		return
	}
	m := uint32(1) << (order - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose in place.
func transposeToAxes(x []uint32, order uint) {
	n := len(x)
	if order == 0 {
		return
	}
	m := uint32(2) << (order - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}
