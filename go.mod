module sfcacd

go 1.22
