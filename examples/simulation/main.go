// simulation runs a time-stepping FMM n-body simulation and tracks
// how the communication cost of a fixed SFC partition evolves as
// particles move — the dynamic scenario behind the paper's §VI-A
// observation that the relative merits of the curves are stable across
// distribution changes, so repartitioning between iterations buys
// little.
//
// Run with: go run ./examples/simulation [-n 2000] [-steps 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"sfcacd"
)

func main() {
	var (
		n     = flag.Int("n", 2000, "number of particles")
		steps = flag.Int("steps", 10, "timesteps to simulate")
		dt    = flag.Float64("dt", 1e-3, "timestep")
	)
	flag.Parse()

	const (
		order     = 8 // 256x256 communication grid
		procOrder = 3 // 64 processors on an 8x8 torus
	)

	// A repulsive Coulomb gas (all like charges): clustered initially
	// in one quadrant, it expands over time — exactly the "dynamically
	// changing particle distribution profile" of §VI-A.
	r := sfcacd.NewRand(5)
	sys := sfcacd.NBodySystem{Pos: make([]complex128, *n), Q: make([]float64, *n)}
	for i := 0; i < *n; i++ {
		sys.Pos[i] = complex(0.5*r.Float64(), 0.5*r.Float64())
		sys.Q[i] = 1
	}
	sim, err := sfcacd.NewNBodySimulator(sys, *dt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d particles, dt=%g, %d-processor torus; hilbert partition fixed at step 0\n\n",
		*n, *dt, 1<<(2*procOrder))
	fmt.Printf("%5s  %14s  %14s  %12s\n", "step", "kinetic energy", "static NFI ACD", "fresh NFI ACD")

	// Freeze the step-0 Hilbert partition: remember each particle's
	// initial owner.
	cells := quantize(sim.Sys.Pos, order)
	initial, err := sfcacd.Assign(dedupe(cells), sfcacd.Hilbert, order, 1<<(2*procOrder))
	if err != nil {
		log.Fatal(err)
	}
	owners := make([]int32, len(cells))
	for i, c := range cells {
		owners[i] = initial.RankAt(c)
	}
	torus := sfcacd.NewTorus(procOrder, sfcacd.Hilbert)

	for step := 0; step <= *steps; step++ {
		if step > 0 {
			if err := sim.Step(); err != nil {
				log.Fatal(err)
			}
		}
		cells = quantize(sim.Sys.Pos, order)
		staticACD := nfiWithOwners(cells, owners, order, torus)
		fresh, err := sfcacd.Assign(dedupe(cells), sfcacd.Hilbert, order, torus.P())
		var freshACD float64
		if err == nil {
			freshACD = sfcacd.NFI(fresh, torus, sfcacd.NFIOptions{Radius: 1}).ACD()
		}
		fmt.Printf("%5d  %14.6f  %14.3f  %12.3f\n",
			step, sim.KineticEnergy(), staticACD, freshACD)
	}
	fmt.Println("\nthe static partition degrades slowly; the curve ranking never changes,")
	fmt.Println("so reordering every FMM iteration is optional (paper §VI-A)")
}

// quantize maps unit-square positions to grid cells.
func quantize(pos []complex128, order uint) []sfcacd.Point {
	side := uint32(1) << order
	out := make([]sfcacd.Point, len(pos))
	for i, z := range pos {
		x := uint32(real(z) * float64(side))
		y := uint32(imag(z) * float64(side))
		if x >= side {
			x = side - 1
		}
		if y >= side {
			y = side - 1
		}
		out[i] = sfcacd.Pt(x, y)
	}
	return out
}

// dedupe drops duplicate cells (multiple particles can quantize to one
// cell; the ACD model assumes at most one per cell).
func dedupe(cells []sfcacd.Point) []sfcacd.Point {
	seen := make(map[sfcacd.Point]bool, len(cells))
	out := cells[:0:0]
	for _, c := range cells {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// nfiWithOwners computes the NFI ACD for cells owned by fixed ranks,
// deduplicating cells (keeping the first owner).
func nfiWithOwners(cells []sfcacd.Point, owners []int32, order uint, topo sfcacd.Topology) float64 {
	seen := make(map[sfcacd.Point]bool, len(cells))
	var pts []sfcacd.Point
	var ranks []int32
	for i, c := range cells {
		if !seen[c] {
			seen[c] = true
			pts = append(pts, c)
			ranks = append(ranks, owners[i])
		}
	}
	a, err := sfcacd.AssignmentFromOwners(pts, ranks, order, topo.P())
	if err != nil {
		log.Fatal(err)
	}
	return sfcacd.NFI(a, topo, sfcacd.NFIOptions{Radius: 1}).ACD()
}
