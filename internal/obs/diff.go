package obs

// Sub returns the change from prev to s: counters and histogram
// counts/sums subtract, while gauges and histogram min/max keep their
// current values, since last-value metrics have no meaningful delta.
//
// A Reset between the two snapshots makes a true delta unknowable;
// every affected metric then clamps to zero the same way. A counter
// that went backwards reports 0, and a histogram any of whose fields
// went backwards (total count, a bucket count, or the sum) reports an
// all-zero delta — never the earlier mix of some fields subtracted
// and others falling back to their full current values, which could
// fabricate a histogram whose Sum disagreed with its Count.
//
// The serving layer uses Sub to attribute process-wide metrics to one
// computation by snapshotting around it. That attribution is exact
// when computations run one at a time and approximate when they
// overlap — the registry is process-wide, so a concurrent neighbor's
// events land in the same counters.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{}
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]uint64, len(s.Counters))
		for name, v := range s.Counters {
			if old := prev.Counters[name]; v > old {
				d.Counters[name] = v - old
			} else {
				d.Counters[name] = 0
			}
		}
	}
	if len(s.Gauges) > 0 {
		d.Gauges = make(map[string]float64, len(s.Gauges))
		for name, v := range s.Gauges {
			d.Gauges[name] = v
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			old, ok := prev.Histograms[name]
			if !ok {
				d.Histograms[name] = h
				continue
			}
			d.Histograms[name] = subHistogram(h, old)
		}
	}
	return d
}

// subHistogram subtracts one histogram snapshot from a later one,
// clamping the whole delta to zero when any field regressed (the
// registry was Reset in between). Min/Max keep the current window.
func subHistogram(h, old HistogramSnapshot) HistogramSnapshot {
	diff := h
	reset := h.Count < old.Count || h.Sum < old.Sum
	diff.Counts = make([]uint64, len(h.Counts))
	for i, c := range h.Counts {
		if i < len(old.Counts) {
			if c < old.Counts[i] {
				reset = true
			} else {
				diff.Counts[i] = c - old.Counts[i]
			}
		} else {
			diff.Counts[i] = c
		}
	}
	if reset {
		diff.Count, diff.Sum = 0, 0
		for i := range diff.Counts {
			diff.Counts[i] = 0
		}
		return diff
	}
	diff.Count = h.Count - old.Count
	diff.Sum = h.Sum - old.Sum
	return diff
}
