package experiments

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"sfcacd/internal/obs"
)

// This file is the sweep scheduler: every runner decomposes its nested
// parameter loops (distribution x trial x particle curve x ...) into a
// flat space of independent cells and executes them here on a bounded
// worker pool. Three properties are load-bearing:
//
//   - Determinism. Cells write into index-addressed output slots and
//     the runner reduces them in cell-index order — the same order the
//     old serial loops accumulated in — so the result bytes are
//     identical for every worker count (pinned by TestSweepEquality).
//   - Bounded cancellation. Workers check the context between cells,
//     so cancellation latency is at most one cell, regardless of how
//     many trials or curves a sweep spans.
//   - Deterministic errors. Cells are handed out in increasing index
//     order from an atomic cursor and only a cell's own error is ever
//     recorded; of the recorded errors the lowest cell index wins,
//     which reproduces the error the serial loop would have returned.
var (
	// sweepCellsRun counts executed sweep cells across all runners.
	sweepCellsRun = obs.GetCounter("sweep.cells")
	// sweepWorkersGauge records the pool size of the most recent sweep.
	sweepWorkersGauge = obs.GetGauge("sweep.workers")
)

// sweepPool resolves the outer worker-pool size for a sweep of the
// given cell count: the requested Params.Workers, defaulting to
// GOMAXPROCS, clamped to the cell count.
func sweepPool(requested, cells int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// innerWorkers splits the worker budget between the sweep pool and the
// per-cell accumulation/matrix-build passes: with `pool` cells running
// at once, each gets total/pool inner workers (at least 1) so a sweep
// does not oversubscribe the machine by pool x GOMAXPROCS goroutines.
// Inner results are worker-count-invariant, so the split cannot change
// any output.
func innerWorkers(requested, pool int) int {
	total := requested
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	w := total / pool
	if w < 1 {
		w = 1
	}
	return w
}

// RunCells exposes the sweep scheduler beyond the experiment runners:
// the serving layer's batch endpoint fans request cells out across the
// fleet with exactly the cell-handout, cancellation, and error
// semantics the in-process sweeps use. See runCells for the contract.
func RunCells(ctx context.Context, workers, cells int, run func(cell int) error) error {
	return runCells(ctx, workers, cells, run)
}

// runCells executes cells 0..cells-1 on a pool of `workers` goroutines
// (use sweepPool to size it). run must be safe for concurrent calls on
// distinct cell indices and must write its output only to slots owned
// by its cell. The context is checked before every cell, bounding
// cancellation latency to one cell; a cancelled context yields
// ctx.Err() unless a cell failed first. On failure the sweep stops
// early and the error of the lowest failing cell index is returned.
func runCells(ctx context.Context, workers, cells int, run func(cell int) error) error {
	if cells <= 0 {
		return ctx.Err()
	}
	sweepCellsRun.Add(uint64(cells))
	sweepWorkersGauge.Set(float64(workers))
	span := obs.StartSpan("sweep")
	defer span.End()
	span.Annotate("cells", strconv.Itoa(cells))
	span.Annotate("workers", strconv.Itoa(workers))
	if workers <= 1 {
		for i := 0; i < cells; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex
		failCell = -1
		failErr  error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			detach := span.Attach()
			defer detach()
			for {
				i := int(next.Add(1)) - 1
				if i >= cells {
					return
				}
				if sctx.Err() != nil {
					return
				}
				if err := run(i); err != nil {
					// Cells never return context errors themselves (the
					// scheduler owns all ctx checks), so every recorded
					// error is a real cell failure; the monotone cursor
					// guarantees the serial loop would have hit the
					// lowest recorded index first.
					mu.Lock()
					if failCell == -1 || i < failCell {
						failCell, failErr = i, err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if failCell != -1 {
		return failErr
	}
	return ctx.Err()
}

// shared is a lazily computed per-group artifact (e.g. one trial's
// sampled particle set) shared read-only by all cells of the group;
// whichever cell arrives first computes it.
type shared[T any] struct {
	once sync.Once
	v    T
	err  error
}

func (s *shared[T]) get(f func() (T, error)) (T, error) {
	s.once.Do(func() { s.v, s.err = f() })
	return s.v, s.err
}
