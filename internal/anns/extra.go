package anns

import (
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

// This file adds the companion metrics from Xu and Tirthapura's IPDPS
// 2012 paper that the reproduced paper cites alongside ANNS: the
// maximum nearest neighbor stretch (the worst adjacent pair) and the
// all-pairs stretch (proximity preservation between arbitrary pairs,
// estimated by sampling).

// MaxStretch returns the maximum stretch over all spatial pairs within
// the configured radius: the worst-case counterpart of Stretch.
func MaxStretch(c sfc.Curve, order uint, opts Options) float64 {
	opts.normalize()
	metric := opts.Ball.geomMetric()
	side := geom.Side(order)
	var worst float64
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			p := geom.Pt(x, y)
			pi := c.Index(order, p)
			geom.VisitNeighborhood(p, opts.Radius, metric, side, func(q geom.Point) {
				if q.Y > p.Y || (q.Y == p.Y && q.X > p.X) {
					return
				}
				qi := c.Index(order, q)
				gap := pi - qi
				if qi > pi {
					gap = qi - pi
				}
				if s := float64(gap) / float64(metric.Dist(p, q)); s > worst {
					worst = s
				}
			})
		}
	}
	return worst
}

// AllPairsStretch estimates the mean stretch over uniformly random
// point pairs (not just neighbors) with the given number of samples —
// the "all pairs stretch" of Xu and Tirthapura, which sits between
// ANNS and the worst case as "an intermediate measure of SFC
// performance" (the reproduced paper's phrase for its own radius
// generalization).
func AllPairsStretch(c sfc.Curve, order uint, samples int, r *rng.Rand) Result {
	if samples < 1 {
		panic("anns: need at least one sample")
	}
	side := geom.Side(order)
	var sum float64
	var pairs uint64
	for i := 0; i < samples; i++ {
		p := geom.Pt(r.Uint32n(side), r.Uint32n(side))
		q := geom.Pt(r.Uint32n(side), r.Uint32n(side))
		if p == q {
			continue
		}
		pi, qi := c.Index(order, p), c.Index(order, q)
		gap := pi - qi
		if qi > pi {
			gap = qi - pi
		}
		sum += float64(gap) / float64(geom.Manhattan(p, q))
		pairs++
	}
	if pairs == 0 {
		return Result{}
	}
	return Result{Mean: sum / float64(pairs), Pairs: pairs}
}
