package dist

import (
	"fmt"

	"sfcacd/internal/geom3"
	"sfcacd/internal/rng"
)

// Sampler3 draws a single random cell on the 3D grid of the given
// order — the 3D counterparts of the paper's three distributions.
type Sampler3 interface {
	// Name returns the distribution's canonical name.
	Name() string
	// Sample3 draws one cell of the 2^order cube.
	Sample3(r *rng.Rand, order uint) geom3.Point3
}

// 3D sampler singletons, parameterized like their 2D counterparts.
var (
	// Uniform3 selects every cell with equal probability.
	Uniform3 Sampler3 = uniform3{}
	// Normal3 is a trivariate normal centered on the cube with
	// sigma = side/8.
	Normal3 Sampler3 = normal3{sigmaDiv: 8}
	// Exponential3 clusters particles in the corner octant with scale
	// side/8.
	Exponential3 Sampler3 = exponential3{scaleDiv: 8}
)

// All3 returns the three 3D samplers in the paper's order.
func All3() []Sampler3 { return []Sampler3{Uniform3, Normal3, Exponential3} }

type uniform3 struct{}

func (uniform3) Name() string { return "uniform" }

func (uniform3) Sample3(r *rng.Rand, order uint) geom3.Point3 {
	side := geom3.Side(order)
	return geom3.Pt3(r.Uint32n(side), r.Uint32n(side), r.Uint32n(side))
}

type normal3 struct {
	sigmaDiv float64
}

func (normal3) Name() string { return "normal" }

func (n normal3) Sample3(r *rng.Rand, order uint) geom3.Point3 {
	side := geom3.Side(order)
	mu := float64(side) / 2
	sigma := float64(side) / n.sigmaDiv
	for {
		x := mu + sigma*r.NormFloat64()
		y := mu + sigma*r.NormFloat64()
		z := mu + sigma*r.NormFloat64()
		if x >= 0 && y >= 0 && z >= 0 && x < float64(side) && y < float64(side) && z < float64(side) {
			return geom3.Pt3(uint32(x), uint32(y), uint32(z))
		}
	}
}

type exponential3 struct {
	scaleDiv float64
}

func (exponential3) Name() string { return "exponential" }

func (e exponential3) Sample3(r *rng.Rand, order uint) geom3.Point3 {
	side := geom3.Side(order)
	scale := float64(side) / e.scaleDiv
	for {
		x := scale * r.ExpFloat64()
		y := scale * r.ExpFloat64()
		z := scale * r.ExpFloat64()
		if x < float64(side) && y < float64(side) && z < float64(side) {
			return geom3.Pt3(uint32(x), uint32(y), uint32(z))
		}
	}
}

// SampleUnique3 draws n distinct 3D cells by rejection.
func SampleUnique3(s Sampler3, r *rng.Rand, order uint, n int) ([]geom3.Point3, error) {
	cells := geom3.Cells(order)
	if uint64(n) > cells {
		return nil, fmt.Errorf("dist: cannot place %d unique particles in %d cells", n, cells)
	}
	side := geom3.Side(order)
	occupied := newBitmap(cells)
	out := make([]geom3.Point3, 0, n)
	maxAttempts := 200*uint64(n) + 100000
	var attempts uint64
	for len(out) < n {
		if attempts++; attempts > maxAttempts {
			return nil, fmt.Errorf("dist: 3D %s sampler stalled placing %d/%d particles",
				s.Name(), len(out), n)
		}
		p := s.Sample3(r, order)
		if occupied.testAndSet(geom3.CellID(p, side)) {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}
