package sfc

import "sfcacd/internal/geom"

// hilbertCurve implements the discrete Hilbert curve H_k using the
// standard iterative bit-manipulation algorithm (rotate-and-reflect per
// scale). It is far cheaper than the recursive construction; the
// recursive construction in recursive.go is used by tests to validate
// this implementation.
type hilbertCurve struct{}

func (hilbertCurve) Name() string { return "hilbert" }

func (hilbertCurve) Index(order uint, p geom.Point) uint64 {
	checkPoint(order, p)
	hilbertStats.countEncode(int(p.X))
	x, y := p.X, p.Y
	var d uint64
	for s := geom.Side(order) >> 1; s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s != 0 {
			rx = 1
		}
		if y&s != 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant. Only bits below s remain relevant, so the
		// reflection complements the low bits in place.
		if ry == 0 {
			if rx == 1 {
				x ^= s - 1
				y ^= s - 1
			}
			x, y = y, x
		}
	}
	return d
}

func (hilbertCurve) Point(order uint, d uint64) geom.Point {
	checkIndex(order, d)
	hilbertStats.countDecode(int(d))
	var x, y uint32
	t := d
	for s := uint32(1); s < geom.Side(order); s <<= 1 {
		rx := uint32(t>>1) & 1
		ry := uint32(t^(t>>1)) & 1
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t >>= 2
	}
	return geom.Point{X: x, Y: y}
}
