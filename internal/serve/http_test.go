package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sfcacd/internal/experiments"
)

// tinyBody overrides the scaled preset down to a millisecond-scale
// configuration; HTTP tests post it so the suite stays fast.
const tinyBody = `{"Particles":400,"Order":5,"ProcOrder":2,"Trials":1,"Seed":11}`

func postExperiment(t *testing.T, h http.Handler, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHandlerMissThenHitByteIdentical(t *testing.T) {
	h := NewHandler(New(Options{Workers: 2}))
	first := postExperiment(t, h, "/v1/experiments/table12", tinyBody)
	if first.Code != http.StatusOK {
		t.Fatalf("first POST status %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	second := postExperiment(t, h, "/v1/experiments/table12", tinyBody)
	if second.Code != http.StatusOK {
		t.Fatalf("second POST status %d: %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("hit body is not byte-identical to the miss body")
	}

	var env Envelope
	if err := json.Unmarshal(first.Body.Bytes(), &env); err != nil {
		t.Fatalf("response is not an Envelope: %v", err)
	}
	if env.Experiment != "table12" || len(env.Key) != 64 || len(env.Result) == 0 || len(env.Manifest) == 0 {
		t.Errorf("incomplete envelope: experiment=%q key=%q result=%dB manifest=%dB",
			env.Experiment, env.Key, len(env.Result), len(env.Manifest))
	}
	var p experiments.Params
	if err := json.Unmarshal(env.Params, &p); err != nil {
		t.Fatal(err)
	}
	if p.Particles != 400 || p.Order != 5 {
		t.Errorf("effective params %+v did not apply the posted overrides", p)
	}
}

func TestHandlerPresetMerge(t *testing.T) {
	s := New(Options{Workers: 1})
	var got experiments.Params
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		got = p
		return fakeOutput(p), nil
	}
	h := NewHandler(s)

	// Unset Workers is defaulted by compute (machine split across the
	// server's slots); with Workers:1 slots that is GOMAXPROCS.
	defaultedWorkers := runtime.GOMAXPROCS(0)

	// Empty body: the scaled preset runs as-is.
	rec := postExperiment(t, h, "/v1/experiments/table12", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("empty body status %d: %s", rec.Code, rec.Body)
	}
	want := experiments.Table12Paper.Scale(defaultScaleSteps)
	want.Workers = defaultedWorkers
	if got != want {
		t.Errorf("empty body ran %+v, want scaled preset %+v", got, want)
	}

	// Partial body over ?preset=paper: only the posted field changes.
	rec = postExperiment(t, h, "/v1/experiments/table12?preset=paper", `{"Trials":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("preset=paper status %d: %s", rec.Code, rec.Body)
	}
	want = experiments.Table12Paper
	want.Trials = 1
	want.Workers = defaultedWorkers
	if got != want {
		t.Errorf("preset=paper with override ran %+v, want %+v", got, want)
	}
}

func TestHandlerErrors(t *testing.T) {
	h := NewHandler(New(Options{Workers: 1}))
	cases := []struct {
		name, url, body string
		wantStatus      int
		wantInError     string
	}{
		{"unknown experiment", "/v1/experiments/nonesuch", "", http.StatusNotFound, "unknown experiment"},
		{"unknown preset", "/v1/experiments/table12?preset=huge", "", http.StatusBadRequest, "unknown preset"},
		{"unknown field", "/v1/experiments/table12", `{"Particle":1}`, http.StatusBadRequest, "bad params body"},
		{"malformed json", "/v1/experiments/table12", `{"Particles":`, http.StatusBadRequest, "bad params body"},
		{"invalid params", "/v1/experiments/table12", `{"Trials":-1}`, http.StatusBadRequest, "invalid parameters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postExperiment(t, h, tc.url, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body)
			}
			var eb errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if !strings.Contains(eb.Error, tc.wantInError) {
				t.Errorf("error %q does not mention %q", eb.Error, tc.wantInError)
			}
		})
	}
}

func TestHandlerOverload(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		select {
		case <-release:
			return fakeOutput(p), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	h := NewHandler(s)

	var wg sync.WaitGroup
	for seed := 1; seed <= 2; seed++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			body := `{"Seed":` + string(rune('0'+seed)) + `}`
			if rec := postExperiment(t, h, "/v1/experiments/table12", body); rec.Code != http.StatusOK {
				t.Errorf("admitted request seed %d: status %d", seed, rec.Code)
			}
		}(seed)
	}
	waitFor(t, "both computations admitted", func() bool { return s.queued.Load() == 2 })

	// Seed the compute history: 2 completions totaling 4s, so the mean
	// is 2s. The rejected request sees a backlog of 2 on 1 worker — two
	// waves of 2s each — pinning Retry-After at exactly 4.
	s.computeNs.Store(int64(4 * time.Second))
	s.computeCount.Store(2)

	rec := postExperiment(t, h, "/v1/experiments/table12", `{"Seed":3}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded status %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "4" {
		t.Errorf("503 Retry-After = %q, want 4 (2 backlogged waves x 2s mean compute)", got)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.QueueDepth != 2 {
		t.Errorf("queue_depth = %d, want 2", eb.QueueDepth)
	}
	close(release)
	wg.Wait()
}

// TestRetryAfterHint pins the overload-backoff estimate: backlogged
// waves times mean compute time, clamped to [1s, 60s], with a 1s
// default before any computation has completed.
func TestRetryAfterHint(t *testing.T) {
	s := New(Options{Workers: 4})
	if got := s.RetryAfterHint(10); got != time.Second {
		t.Errorf("no history: hint %v, want 1s default", got)
	}
	// Mean compute 3s. depth 10 on 4 workers = 3 waves -> 9s.
	s.computeNs.Store(int64(6 * time.Second))
	s.computeCount.Store(2)
	cases := []struct {
		depth int
		want  time.Duration
	}{
		{0, time.Second},         // empty backlog: probe floor
		{1, 3 * time.Second},     // one wave
		{4, 3 * time.Second},     // still one wave
		{5, 6 * time.Second},     // spills into a second wave
		{10, 9 * time.Second},    // ceil(10/4) = 3 waves
		{1000, 60 * time.Second}, // clamped to the ceiling
	}
	for _, tc := range cases {
		if got := s.RetryAfterHint(tc.depth); got != tc.want {
			t.Errorf("depth %d: hint %v, want %v", tc.depth, got, tc.want)
		}
	}
	// Sub-second means floor at 1s.
	s.computeNs.Store(int64(10 * time.Millisecond))
	s.computeCount.Store(1)
	if got := s.RetryAfterHint(2); got != time.Second {
		t.Errorf("tiny mean: hint %v, want 1s floor", got)
	}
}

// TestWriteRateLimitedCeiling pins the 429 Retry-After arithmetic: the
// deficit rounds up to whole seconds without overshooting exact-second
// values, and never drops below 1.
func TestWriteRateLimitedCeiling(t *testing.T) {
	cases := []struct {
		retry time.Duration
		want  string
	}{
		{0, "1"},
		{200 * time.Millisecond, "1"},
		{time.Second, "1"}, // exactly 1s must not become 2
		{1500 * time.Millisecond, "2"},
		{2 * time.Second, "2"}, // exactly 2s must not become 3
		{2*time.Second + time.Millisecond, "3"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeRateLimited(rec, tc.retry)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("retry %v: status %d, want 429", tc.retry, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("retry %v: Retry-After = %q, want %q", tc.retry, got, tc.want)
		}
	}
}

func TestHandlerList(t *testing.T) {
	h := NewHandler(New(Options{Workers: 1}))
	req := httptest.NewRequest(http.MethodGet, "/v1/experiments", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Experiments []listEntry `json:"experiments"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Experiments) != len(experiments.Registry()) {
		t.Fatalf("listed %d experiments, registry has %d", len(body.Experiments), len(experiments.Registry()))
	}
	first := body.Experiments[0]
	if first.Name != "table12" || first.Description == "" {
		t.Errorf("first entry = %+v", first)
	}
	if first.ScaledParams != first.PaperParams.Scale(defaultScaleSteps) {
		t.Error("scaled_params is not the default-scaled paper preset")
	}
}

func TestHandlerHealthAndMetrics(t *testing.T) {
	h := NewHandler(New(Options{Workers: 1}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("/healthz = %d %q", rec.Code, rec.Body)
	}

	// A request first so the snapshot has serve counters.
	postExperiment(t, h, "/v1/experiments/table12", tinyBody)

	// Default /metrics is the Prometheus text exposition.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "serve_requests_total") {
		t.Error("/metrics exposition missing serve_requests_total")
	}

	// JSON stays available by content negotiation and at /metrics.json.
	for _, mk := range []func() *http.Request{
		func() *http.Request {
			req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
			req.Header.Set("Accept", "application/json")
			return req
		},
		func() *http.Request { return httptest.NewRequest(http.MethodGet, "/metrics.json", nil) },
	} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, mk())
		if rec.Code != http.StatusOK {
			t.Fatalf("JSON metrics status %d", rec.Code)
		}
		var snap struct {
			Counters map[string]uint64 `json:"counters"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("JSON metrics response is not a snapshot: %v", err)
		}
		if snap.Counters["serve.requests"] == 0 {
			t.Error("JSON metrics snapshot missing serve.requests")
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", rec.Code)
	}
}
