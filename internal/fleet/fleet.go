package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"sfcacd/internal/faultinject"
	"sfcacd/internal/obs"
	"sfcacd/internal/resultcache"
	"sfcacd/internal/serve"
)

// Fault-injection sites on the peer path. Both Fetch (peek/result)
// and Forward consult them once per peer contacted, so a spec like
// "fleet.peer_get=1" simulates a full partition — every peer
// unreachable — and "fleet.peer_latency=1:50ms" a slow network, both
// replaying deterministically under a seed.
const (
	// SitePeerGet fails the peer request outright.
	SitePeerGet = "fleet.peer_get"
	// SitePeerLatency adds latency before the peer request (configure
	// with a delay and no error for latency-only injection).
	SitePeerLatency = "fleet.peer_latency"
)

// DefaultTimeout bounds one peer cache-protocol exchange (peek +
// result). Peer fills race a recomputation measured in hundreds of
// milliseconds, so anything slower than this is worth abandoning.
const DefaultTimeout = 2 * time.Second

// DefaultFetchCandidates is how many replicas (owner first, then ring
// siblings) a miss consults before recomputing locally.
const DefaultFetchCandidates = 2

// maxPeerBody bounds a relayed peer response; result envelopes are
// MBs at paper scale, never GBs.
const maxPeerBody = 64 << 20

// Store is the local finished-result lookup the peer protocol serves
// from; *serve.Server implements it. It must never compute.
type Store interface {
	CachedEntry(k resultcache.Key) (resultcache.Entry, bool)
}

// Config describes one node's view of the fleet.
type Config struct {
	// NodeID names this node on the ring; defaults to Advertise.
	// Every process in the fleet must agree on every member's ID —
	// routing is a pure function of the sorted ID list.
	NodeID string
	// Advertise is the base URL peers reach this node at (required).
	Advertise string
	// Peers lists the other members as "url" or "id=url".
	Peers []string
	// VirtualNodes per member; 0 means DefaultVirtualNodes.
	VirtualNodes int
	// FetchCandidates is the number of replicas a miss consults; 0
	// means DefaultFetchCandidates.
	FetchCandidates int
	// Timeout bounds one peer cache-protocol exchange; 0 means
	// DefaultTimeout. Forwards are not subject to it (they carry a
	// whole computation) — they run under the client request context.
	Timeout time.Duration
	// Faults, when set, arms SitePeerGet / SitePeerLatency.
	Faults *faultinject.Injector
	// Store serves this node's /internal/v1/ peek and result
	// endpoints (required).
	Store Store
	// Client overrides the peer HTTP client (tests); nil uses a
	// default with sane connection reuse.
	Client *http.Client
}

// Node is one fleet member: the ring, the peer-protocol client the
// serving layer fetches and forwards through (it implements
// serve.PeerSource), and the peer-protocol server other members call.
type Node struct {
	self    serve.MemberInfo
	members []serve.MemberInfo // sorted by ID
	byID    map[string]serve.MemberInfo
	ring    *Ring
	store   Store
	client  *http.Client
	timeout time.Duration
	fetchN  int
	faults  *faultinject.Injector

	peerHits, peerMisses, peerErrors *obs.Counter
	forwards, forwardErrors          *obs.Counter
	peerServes                       *obs.Counter
	peerLatency                      *obs.Histogram
}

// New validates the membership and returns the node. Member IDs must
// be distinct and URLs well-formed; the advertise URL is this node's
// own membership entry.
func New(cfg Config) (*Node, error) {
	if cfg.Advertise == "" {
		return nil, fmt.Errorf("fleet: an advertise URL is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("fleet: a result store is required")
	}
	self, err := parseMember(cfg.NodeID, cfg.Advertise)
	if err != nil {
		return nil, err
	}
	self.Self = true
	byID := map[string]serve.MemberInfo{self.ID: self}
	ids := []string{self.ID}
	for _, spec := range cfg.Peers {
		id, u, _ := strings.Cut(spec, "=")
		if u == "" {
			id, u = "", id
		}
		m, err := parseMember(id, u)
		if err != nil {
			return nil, err
		}
		if _, dup := byID[m.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate member id %q", m.ID)
		}
		byID[m.ID] = m
		ids = append(ids, m.ID)
	}
	ring := NewRing(ids, cfg.VirtualNodes)
	members := make([]serve.MemberInfo, len(ring.Members()))
	for i, id := range ring.Members() {
		members[i] = byID[id]
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	fetchN := cfg.FetchCandidates
	if fetchN <= 0 {
		fetchN = DefaultFetchCandidates
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	return &Node{
		self:          self,
		members:       members,
		byID:          byID,
		ring:          ring,
		store:         cfg.Store,
		client:        client,
		timeout:       timeout,
		fetchN:        fetchN,
		faults:        cfg.Faults,
		peerHits:      obs.GetCounter("fleet.peer_hits"),
		peerMisses:    obs.GetCounter("fleet.peer_misses"),
		peerErrors:    obs.GetCounter("fleet.peer_errors"),
		forwards:      obs.GetCounter("fleet.forwards"),
		forwardErrors: obs.GetCounter("fleet.forward_errors"),
		peerServes:    obs.GetCounter("fleet.peer_serves"),
		peerLatency:   obs.GetHistogram("fleet.peer_latency_ns", obs.ExponentialBuckets(1e3, 10, 8)),
	}, nil
}

// parseMember normalizes one member spec. The ID defaults to the
// URL, so a fleet configured by bare URLs agrees on identity as long
// as every process spells each URL identically.
func parseMember(id, rawURL string) (serve.MemberInfo, error) {
	u, err := url.Parse(rawURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return serve.MemberInfo{}, fmt.Errorf("fleet: bad member URL %q (want http://host:port)", rawURL)
	}
	base := strings.TrimSuffix(u.String(), "/")
	if id == "" {
		id = base
	}
	return serve.MemberInfo{ID: id, URL: base}, nil
}

// Self implements serve.PeerSource.
func (n *Node) Self() serve.MemberInfo { return n.self }

// Members implements serve.PeerSource: the membership sorted by ID.
func (n *Node) Members() []serve.MemberInfo { return append([]serve.MemberInfo(nil), n.members...) }

// Owner implements serve.PeerSource: the replica the ring assigns the
// key to, and whether that is this node.
func (n *Node) Owner(key resultcache.Key) (serve.MemberInfo, bool) {
	id := n.ring.Owner(key[:])
	return n.byID[id], id == n.self.ID
}

// Fetch implements serve.PeerSource: ask the owner and sibling
// replicas for a finished entry. Candidates are consulted in ring
// order; every failure mode — fault injection, transport error,
// timeout, bad checksum — just moves to the next candidate, and a
// fleet of one returns false immediately.
func (n *Node) Fetch(ctx context.Context, key resultcache.Key) (resultcache.Entry, bool) {
	if len(n.members) < 2 {
		return resultcache.Entry{}, false
	}
	// +1 candidate in case this node is among the first fetchN
	// replicas (it is skipped below).
	for _, id := range n.ring.Replicas(key[:], n.fetchN+1) {
		if id == n.self.ID {
			continue
		}
		if e, ok := n.fetchFrom(ctx, n.byID[id], key); ok {
			n.peerHits.Inc()
			return e, true
		}
	}
	n.peerMisses.Inc()
	return resultcache.Entry{}, false
}

// fetchFrom asks one peer: peek (cheap presence probe), then the
// checksummed result transfer.
func (n *Node) fetchFrom(ctx context.Context, m serve.MemberInfo, key resultcache.Key) (resultcache.Entry, bool) {
	start := time.Now()
	defer func() { n.peerLatency.Observe(float64(time.Since(start).Nanoseconds())) }()
	ctx, cancel := context.WithTimeout(ctx, n.timeout)
	defer cancel()
	if err := n.checkFaults(ctx); err != nil {
		n.peerErrors.Inc()
		return resultcache.Entry{}, false
	}
	present, err := n.peek(ctx, m, key)
	if err != nil {
		n.peerErrors.Inc()
		return resultcache.Entry{}, false
	}
	if !present {
		return resultcache.Entry{}, false
	}
	data, err := n.get(ctx, m.URL+"/internal/v1/result/"+key.String())
	if err != nil {
		n.peerErrors.Inc()
		return resultcache.Entry{}, false
	}
	e, err := resultcache.Import(data, key)
	if err != nil {
		n.peerErrors.Inc()
		return resultcache.Entry{}, false
	}
	return e, true
}

// checkFaults consumes one decision at each peer site: injected
// latency first (partition slowness), then an injected error
// (partition loss).
func (n *Node) checkFaults(ctx context.Context) error {
	if err := n.faults.CheckCtx(ctx, SitePeerLatency); err != nil {
		return err
	}
	return n.faults.CheckCtx(ctx, SitePeerGet)
}

// peek asks whether m holds key, without transferring the entry.
func (n *Node) peek(ctx context.Context, m serve.MemberInfo, key resultcache.Key) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/internal/v1/peek/"+key.String(), nil)
	if err != nil {
		return false, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("fleet: peek on %s answered %d", m.ID, resp.StatusCode)
	}
}

// get performs one bounded peer GET, returning the body of a 200.
func (n *Node) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fleet: peer answered %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
}

// Forward implements serve.PeerSource: proxy one experiment request
// to its owner. The owner serves it under its own admission control
// and deadline; 5xx answers and transport errors return an error so
// the caller degrades to local computation, while 2xx/4xx answers are
// relayed verbatim (a 400 is a 400 everywhere).
func (n *Node) Forward(ctx context.Context, owner serve.MemberInfo, experiment, preset string, body []byte) (*serve.ForwardResult, error) {
	if err := n.checkFaults(ctx); err != nil {
		n.forwardErrors.Inc()
		return nil, err
	}
	u := owner.URL + "/v1/experiments/" + url.PathEscape(experiment)
	if preset != "" {
		u += "?preset=" + url.QueryEscape(preset)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(string(body)))
	if err != nil {
		n.forwardErrors.Inc()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.HeaderFleetForwarded, "1")
	resp, err := n.client.Do(req)
	if err != nil {
		n.forwardErrors.Inc()
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		n.forwardErrors.Inc()
		return nil, fmt.Errorf("fleet: owner %s answered %d", owner.ID, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		n.forwardErrors.Inc()
		return nil, err
	}
	n.forwards.Inc()
	return &serve.ForwardResult{
		StatusCode: resp.StatusCode,
		Cache:      resp.Header.Get("X-Cache"),
		Body:       data,
	}, nil
}

// Handler returns the peer-protocol endpoints this node serves to its
// fleet:
//
//	GET /internal/v1/peek/{key}     presence probe: 200 if the finished
//	                                entry is cached here, 404 if not
//	GET /internal/v1/result/{key}   checksummed entry transfer
//
// Neither endpoint ever computes: they read the local caches only, so
// peer traffic cannot recurse or amplify load.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/v1/peek/{key}", n.handlePeek)
	mux.HandleFunc("GET /internal/v1/result/{key}", n.handleResult)
	return mux
}

// peerKey parses the {key} path component.
func peerKey(w http.ResponseWriter, r *http.Request) (resultcache.Key, bool) {
	k, err := resultcache.ParseKey(r.PathValue("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return resultcache.Key{}, false
	}
	return k, true
}

// handlePeek answers GET /internal/v1/peek/{key}.
func (n *Node) handlePeek(w http.ResponseWriter, r *http.Request) {
	key, ok := peerKey(w, r)
	if !ok {
		return
	}
	e, ok := n.store.CachedEntry(key)
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, "{\"present\":false}\n")
		return
	}
	fmt.Fprintf(w, "{\"present\":true,\"experiment\":%q,\"node\":%q}\n", e.Experiment, n.self.ID)
}

// handleResult answers GET /internal/v1/result/{key} with the
// Export-ed entry.
func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	key, ok := peerKey(w, r)
	if !ok {
		return
	}
	e, ok := n.store.CachedEntry(key)
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, "{\"present\":false}\n")
		return
	}
	data, err := resultcache.Export(e)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	n.peerServes.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.Write(data)
}
