// Package primitives computes the Average Communicated Distance of the
// standard parallel communication patterns discussed in the paper's
// §VII: broadcast/reduce log-trees, all-to-all, parallel prefix, ring
// exchange, and the quad log-tree gather that underlies the FMM
// far-field model. Given a topology (and thus a processor-order SFC
// placement for mesh/torus), an algorithm designer can evaluate each
// primitive's ACD in advance and pick the curve that minimizes
// communication for the application's mix of primitives.
package primitives

import (
	"runtime"

	"sfcacd/internal/acd"
	"sfcacd/internal/topology"
)

// Broadcast returns the ACD accumulator of a binomial-tree broadcast
// from the given root: in round j, every rank r < 2^j relative to the
// root sends to r + 2^j. Reduce is the same tree traversed upward and
// has an identical accumulator.
func Broadcast(topo topology.Topology, root int) acd.Accumulator {
	p := topo.P()
	var res acd.Accumulator
	for stride := 1; stride < p; stride *= 2 {
		for r := 0; r < stride && r+stride < p; r++ {
			src := (root + r) % p
			dst := (root + r + stride) % p
			res.Add(topo.Distance(src, dst))
		}
	}
	return res
}

// Reduce returns the ACD of a binomial-tree reduction to the root; by
// symmetry it equals Broadcast.
func Reduce(topo topology.Topology, root int) acd.Accumulator {
	return Broadcast(topo, root)
}

// AllToAll returns the ACD of a complete exchange: every ordered pair
// of distinct ranks communicates once. O(p^2), parallelized over
// source ranks (integer sums, so the result is deterministic).
func AllToAll(topo topology.Topology) acd.Accumulator {
	p := topo.P()
	workers := runtime.GOMAXPROCS(0)
	if workers > p {
		workers = p
	}
	results := make(chan acd.Accumulator, workers)
	chunk := (p + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > p {
			hi = p
		}
		go func(lo, hi int) {
			var local acd.Accumulator
			for i := lo; i < hi; i++ {
				for j := 0; j < p; j++ {
					if i != j {
						local.Add(topo.Distance(i, j))
					}
				}
			}
			results <- local
		}(lo, hi)
	}
	var res acd.Accumulator
	for w := 0; w < workers; w++ {
		res.Merge(<-results)
	}
	return res
}

// ParallelPrefix returns the ACD of a Hillis–Steele inclusive scan: in
// round j every rank i >= 2^j receives from i - 2^j.
func ParallelPrefix(topo topology.Topology) acd.Accumulator {
	p := topo.P()
	var res acd.Accumulator
	for stride := 1; stride < p; stride *= 2 {
		for i := stride; i < p; i++ {
			res.Add(topo.Distance(i-stride, i))
		}
	}
	return res
}

// RingExchange returns the ACD of a full ring shift: rank i sends to
// rank (i+1) mod p.
func RingExchange(topo topology.Topology) acd.Accumulator {
	p := topo.P()
	var res acd.Accumulator
	for i := 0; i < p; i++ {
		res.Add(topo.Distance(i, (i+1)%p))
	}
	return res
}

// QuadTreeGather returns the ACD of the quad log-tree gather used by
// the FMM far-field model (§IV step 6): at every level, the leader
// (lowest rank) of each group of four consecutive blocks collects from
// the other three block leaders. p need not be a power of four; ragged
// tails simply produce smaller groups.
func QuadTreeGather(topo topology.Topology) acd.Accumulator {
	p := topo.P()
	var res acd.Accumulator
	for block := 1; block < p; block *= 4 {
		group := block * 4
		for base := 0; base < p; base += group {
			for k := 1; k < 4; k++ {
				child := base + k*block
				if child < p {
					res.Add(topo.Distance(base, child))
				}
			}
		}
	}
	return res
}

// Pattern names a primitive for table-driven sweeps.
type Pattern struct {
	// Name is the primitive's display name.
	Name string
	// Run computes the primitive's accumulator on a topology.
	Run func(topology.Topology) acd.Accumulator
}

// Patterns lists the §VII primitives evaluated by the GEN experiment.
func Patterns() []Pattern {
	return []Pattern{
		{Name: "broadcast", Run: func(t topology.Topology) acd.Accumulator { return Broadcast(t, 0) }},
		{Name: "alltoall", Run: AllToAll},
		{Name: "prefix", Run: ParallelPrefix},
		{Name: "ring", Run: RingExchange},
		{Name: "quadgather", Run: QuadTreeGather},
	}
}
