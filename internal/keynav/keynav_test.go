package keynav_test

import (
	"fmt"
	"sort"
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/keynav"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

// The quadtree/rank-table path is the differential oracle: every query
// family of the key-space engine is pinned here to exact equality —
// same ranks, same representative per cell, same event multisets —
// across curves (sorted and unsorted key input), seeds, and radii.

func buildAssignment(t *testing.T, curve sfc.Curve, order uint, n, p int, seed uint64) *acd.Assignment {
	t.Helper()
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(seed), order, n)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, curve, order, p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

var testCurves = []sfc.Curve{sfc.RowMajor, sfc.Morton, sfc.Gray, sfc.Hilbert}

// TestIndexRankAtMatchesAssignment probes every grid cell against the
// assignment's rank table.
func TestIndexRankAtMatchesAssignment(t *testing.T) {
	const order, n, p = 5, 300, 16
	for _, curve := range testCurves {
		a := buildAssignment(t, curve, order, n, p, 7)
		ix := keynav.Build(a.Order, a.Particles, a.Ranks)
		side := geom.Side(order)
		for y := uint32(0); y < side; y++ {
			for x := uint32(0); x < side; x++ {
				q := geom.Pt(x, y)
				if got, want := ix.RankAt(q), a.RankAt(q); got != want {
					t.Fatalf("%s: RankAt%v = %d, oracle %d", curve.Name(), q, got, want)
				}
			}
		}
		ix.Release()
	}
}

// TestIndexRepMatchesRankTree probes every cell of every level against
// the quadtree representative slab.
func TestIndexRepMatchesRankTree(t *testing.T) {
	const order, n, p = 5, 300, 16
	for _, curve := range testCurves {
		a := buildAssignment(t, curve, order, n, p, 11)
		ix := keynav.Build(a.Order, a.Particles, a.Ranks)
		tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
		for l := uint(0); l <= order; l++ {
			side := geom.Side(l)
			occupied := 0
			for y := uint32(0); y < side; y++ {
				for x := uint32(0); x < side; x++ {
					got, want := ix.Rep(l, x, y), tree.Rep(l, x, y)
					if got != want {
						t.Fatalf("%s: Rep(%d,%d,%d) = %d, oracle %d", curve.Name(), l, x, y, got, want)
					}
					if got >= 0 {
						occupied++
					}
				}
			}
			if ix.LevelLen(l) != occupied {
				t.Fatalf("%s: LevelLen(%d) = %d, oracle %d", curve.Name(), l, ix.LevelLen(l), occupied)
			}
		}
		tree.Release()
		ix.Release()
	}
}

// pairKey canonicalizes an unordered rank pair for multiset counting.
func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// TestVisitUpperNeighborPairsMatchesOracle compares the near-field
// upper event multiset against geom.VisitUpperNeighborhood + RankAt,
// across metrics, radii (including radius beyond the grid side), and
// worker-style chunkings of the particle range.
func TestVisitUpperNeighborPairsMatchesOracle(t *testing.T) {
	const order, n, p = 5, 300, 16
	side := geom.Side(order)
	for _, curve := range testCurves {
		a := buildAssignment(t, curve, order, n, p, 13)
		ix := keynav.Build(a.Order, a.Particles, a.Ranks)
		for _, m := range []geom.Metric{geom.MetricChebyshev, geom.MetricManhattan} {
			for _, radius := range []int{0, 1, 2, 3, int(side), int(side) + 3} {
				want := map[uint64]int{}
				for i, pt := range a.Particles {
					mine := a.Ranks[i]
					geom.VisitUpperNeighborhood(pt, radius, m, side, func(q geom.Point) {
						if r := a.RankAt(q); r >= 0 {
							want[pairKey(mine, r)]++
						}
					})
				}
				for _, chunk := range []int{a.N(), 1, 7} {
					got := map[uint64]int{}
					for lo := 0; lo < a.N(); lo += chunk {
						hi := min(lo+chunk, a.N())
						ix.VisitUpperNeighborPairs(lo, hi, radius, m, func(rank, nb int32) {
							got[pairKey(rank, nb)]++
						})
					}
					if !mapsEqual(got, want) {
						t.Fatalf("%s %s r=%d chunk=%d: near-field multiset mismatch (got %d keys, want %d)",
							curve.Name(), m, radius, chunk, len(got), len(want))
					}
				}
			}
		}
		ix.Release()
	}
}

// TestVisitParentLinksMatchesTree compares the interpolation link
// multiset per level against the quadtree cell walk.
func TestVisitParentLinksMatchesTree(t *testing.T) {
	const order, n, p = 5, 300, 16
	for _, curve := range testCurves {
		a := buildAssignment(t, curve, order, n, p, 17)
		ix := keynav.Build(a.Order, a.Particles, a.Ranks)
		tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
		for l := uint(1); l <= order; l++ {
			want := map[uint64]int{}
			tree.VisitCells(l, func(x, y uint32, rep int32) {
				want[pairKey(tree.Rep(l-1, x/2, y/2), rep)]++
			})
			for _, chunk := range []int{ix.LevelLen(l), 1, 5} {
				got := map[uint64]int{}
				for lo := 0; lo < ix.LevelLen(l); lo += chunk {
					hi := min(lo+chunk, ix.LevelLen(l))
					ix.VisitParentLinks(l, lo, hi, func(parent, rep int32) {
						got[pairKey(parent, rep)]++
					})
				}
				if !mapsEqual(got, want) {
					t.Fatalf("%s l=%d chunk=%d: parent-link multiset mismatch", curve.Name(), l, chunk)
				}
			}
		}
		tree.Release()
		ix.Release()
	}
}

// TestVisitUpperILPairsMatchesTree compares the interaction-list pair
// multiset per level against the quadtree enumeration, both full-range
// and chunked over parent positions.
func TestVisitUpperILPairsMatchesTree(t *testing.T) {
	const order = 5
	for _, curve := range testCurves {
		for _, tc := range []struct {
			n, p int
			seed uint64
		}{{300, 16, 19}, {12, 4, 23}, {1, 1, 29}} {
			a := buildAssignment(t, curve, order, tc.n, tc.p, tc.seed)
			ix := keynav.Build(a.Order, a.Particles, a.Ranks)
			tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
			for l := uint(2); l <= order; l++ {
				want := map[uint64]int{}
				tree.VisitUpperInteractionPairs(l, 0, geom.Side(l), func(rep, other int32) {
					want[pairKey(rep, other)]++
				})
				plen := ix.LevelLen(l - 1)
				for _, chunk := range []int{plen, 1, 3} {
					got := map[uint64]int{}
					for lo := 0; lo < plen; lo += chunk {
						hi := min(lo+chunk, plen)
						ix.VisitUpperILPairs(l, lo, hi, func(rep, other int32) {
							got[pairKey(rep, other)]++
						})
					}
					if !mapsEqual(got, want) {
						t.Fatalf("%s n=%d l=%d chunk=%d: IL multiset mismatch (got %d pairs, want %d)",
							curve.Name(), tc.n, l, chunk, count(got), count(want))
					}
				}
			}
			tree.Release()
			ix.Release()
		}
	}
}

// TestDenseGridAllLevels fills the grid completely so every IL and
// neighbor relation exists, catching off-by-ones the sparse sets miss.
func TestDenseGridAllLevels(t *testing.T) {
	const order = 3
	side := geom.Side(order)
	pts := make([]geom.Point, 0, side*side)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			pts = append(pts, geom.Pt(x, y))
		}
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 8)
	if err != nil {
		t.Fatal(err)
	}
	ix := keynav.Build(a.Order, a.Particles, a.Ranks)
	tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	for l := uint(2); l <= order; l++ {
		want := map[uint64]int{}
		tree.VisitUpperInteractionPairs(l, 0, geom.Side(l), func(rep, other int32) {
			want[pairKey(rep, other)]++
		})
		got := map[uint64]int{}
		ix.VisitUpperILPairs(l, 0, ix.LevelLen(l-1), func(rep, other int32) {
			got[pairKey(rep, other)]++
		})
		if !mapsEqual(got, want) {
			t.Fatalf("dense l=%d: IL multiset mismatch (got %d pairs, want %d)", l, count(got), count(want))
		}
	}
	want := map[uint64]int{}
	for i, pt := range a.Particles {
		geom.VisitUpperNeighborhood(pt, 1, geom.MetricChebyshev, side, func(q geom.Point) {
			want[pairKey(a.Ranks[i], a.RankAt(q))]++
		})
	}
	got := map[uint64]int{}
	ix.VisitUpperNeighborPairs(0, a.N(), 1, geom.MetricChebyshev, func(rank, nb int32) {
		got[pairKey(rank, nb)]++
	})
	if !mapsEqual(got, want) {
		t.Fatal("dense: near-field multiset mismatch")
	}
	tree.Release()
	ix.Release()
}

// TestFlatMatchesMap pins the 3D-facing flat index against a plain map
// on random sparse Morton3 keys, for sorted and unsorted input.
func TestFlatMatchesMap(t *testing.T) {
	const keyBits = 30 // 3D order 10
	r := rng.New(31)
	for _, presort := range []bool{false, true} {
		n := 500
		keys := make([]uint64, n)
		ranks := make([]int32, n)
		want := map[uint64]int32{}
		for i := range keys {
			k := r.Uint64() & (1<<keyBits - 1)
			for {
				if _, dup := want[k]; !dup {
					break
				}
				k = r.Uint64() & (1<<keyBits - 1)
			}
			keys[i] = k
			ranks[i] = int32(i % 7)
			want[k] = ranks[i]
		}
		if presort {
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for i, k := range keys {
				ranks[i] = want[k]
			}
		}
		f := keynav.NewFlat(keys, ranks, keyBits)
		if f.N() != n {
			t.Fatalf("Flat.N = %d, want %d", f.N(), n)
		}
		for k, wr := range want {
			if got := f.Rank(k); got != wr {
				t.Fatalf("presort=%v: Rank(%d) = %d, want %d", presort, k, got, wr)
			}
		}
		for i := 0; i < 1000; i++ {
			k := r.Uint64() & (1<<keyBits - 1)
			wr, ok := want[k]
			if !ok {
				wr = -1
			}
			if got := f.Rank(k); got != wr {
				t.Fatalf("presort=%v: probe Rank(%d) = %d, want %d", presort, k, got, wr)
			}
		}
	}
}

// TestParseEngine pins the flag vocabulary.
func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want keynav.Engine
		err  bool
	}{
		{"", keynav.EngineTree, false},
		{"tree", keynav.EngineTree, false},
		{"keys", keynav.EngineKeys, false},
		{"quadtree", 0, true},
	} {
		got, err := keynav.ParseEngine(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Fatalf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if keynav.EngineKeys.String() != "keys" || keynav.EngineTree.String() != "tree" {
		t.Fatal("Engine.String vocabulary changed")
	}
}

func mapsEqual(a, b map[uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func count(m map[uint64]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// BenchmarkKeyNavLookup measures the directory-search RankAt against
// which the rank-table paths are compared (see BenchmarkRankAt in
// internal/acd).
func BenchmarkKeyNavLookup(b *testing.B) {
	for _, order := range []uint{8, 12} {
		const n = 15625
		pts, err := dist.SampleUnique(dist.Uniform, rng.New(1), order, n)
		if err != nil {
			b.Fatal(err)
		}
		a, err := acd.Assign(pts, sfc.Hilbert, order, 64)
		if err != nil {
			b.Fatal(err)
		}
		ix := keynav.Build(a.Order, a.Particles, a.Ranks)
		b.Run(fmt.Sprintf("order%d", order), func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				p := a.Particles[i%n]
				if ix.RankAt(geom.Pt(p.X^1, p.Y)) >= 0 {
					hits++
				}
			}
			_ = hits
		})
		ix.Release()
	}
}

// BenchmarkKeyNavBuild measures index construction against
// quadtree.BuildRankTree at the same scale.
func BenchmarkKeyNavBuild(b *testing.B) {
	const order, n = 8, 15625
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(1), order, n)
	if err != nil {
		b.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := keynav.Build(a.Order, a.Particles, a.Ranks)
		ix.Release()
	}
}

// BenchmarkKeyNavILPairs is the keynav counterpart of quadtree's
// BenchmarkInteractionList: one full interaction-list sweep over every
// level, enumerated from adjacent occupied parent pairs.
func BenchmarkKeyNavILPairs(b *testing.B) {
	for _, tc := range []struct {
		order uint
		n     int
	}{{6, 1000}, {8, 15625}} {
		pts, err := dist.SampleUnique(dist.Uniform, rng.New(uint64(tc.n)), tc.order, tc.n)
		if err != nil {
			b.Fatal(err)
		}
		a, err := acd.Assign(pts, sfc.Hilbert, tc.order, 64)
		if err != nil {
			b.Fatal(err)
		}
		ix := keynav.Build(a.Order, a.Particles, a.Ranks)
		b.Run(fmt.Sprintf("order%d_n%d", tc.order, tc.n), func(b *testing.B) {
			var events int
			for i := 0; i < b.N; i++ {
				for l := uint(2); l <= ix.Order; l++ {
					ix.VisitUpperILPairs(l, 0, ix.LevelLen(l-1), func(rep, other int32) {
						events++
					})
				}
			}
			_ = events
		})
		ix.Release()
	}
}
