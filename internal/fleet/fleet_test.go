package fleet_test

// Integration tests: two real serve.Servers joined into a fleet over
// httptest listeners, exercising forward, peer fill, degradation, and
// the peer protocol end to end.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sfcacd/internal/experiments"
	"sfcacd/internal/faultinject"
	"sfcacd/internal/fleet"
	"sfcacd/internal/resultcache"
	"sfcacd/internal/serve"
)

// lateHandler lets an httptest.Server start before its handler exists
// (fleet URLs are only known after listening).
type lateHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testNode is one fleet member under test.
type testNode struct {
	id     string
	server *serve.Server
	node   *fleet.Node
	ts     *httptest.Server
}

func (n *testNode) URL() string { return n.ts.URL }

// startFleet builds a two-node fleet "a" and "b". serveFaults and
// fleetFaults configure per-node injectors by node id (may be nil).
func startFleet(t *testing.T, serveFaults, fleetFaults map[string]*faultinject.Injector) (a, b *testNode) {
	t.Helper()
	nodes := make([]*testNode, 2)
	late := make([]*lateHandler, 2)
	for i, id := range []string{"a", "b"} {
		late[i] = &lateHandler{}
		nodes[i] = &testNode{id: id, ts: httptest.NewServer(late[i])}
		t.Cleanup(nodes[i].ts.Close)
	}
	for i, id := range []string{"a", "b"} {
		peer := nodes[1-i]
		srv := serve.New(serve.Options{Workers: 2, Faults: serveFaults[id]})
		node, err := fleet.New(fleet.Config{
			NodeID:    id,
			Advertise: nodes[i].ts.URL,
			Peers:     []string{peer.id + "=" + peer.ts.URL},
			Store:     srv,
			Faults:    fleetFaults[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.SetPeers(node)
		mux := http.NewServeMux()
		mux.Handle("/internal/v1/", node.Handler())
		mux.Handle("/", serve.NewHandler(srv))
		late[i].set(mux)
		nodes[i].server, nodes[i].node = srv, node
	}
	return nodes[0], nodes[1]
}

// tinyParams is a full millisecond-scale parameter set; posting its
// JSON overrides every preset field, so the content-address key is
// exactly RequestKey("table12", tinyParams(seed)).
func tinyParams(seed uint64) experiments.Params {
	return experiments.Params{Particles: 400, Order: 5, ProcOrder: 2, Radius: 1, Trials: 1, Seed: seed}
}

// seedOwnedBy probes seeds until the table12 key routes to node
// `want`, so a test can pin either the forward or the peer-fill path.
func seedOwnedBy(t *testing.T, n *testNode, want string) (uint64, experiments.Params) {
	t.Helper()
	for seed := uint64(1); seed < 500; seed++ {
		p := tinyParams(seed)
		owner, _ := n.node.Owner(serve.RequestKey("table12", p))
		if owner.ID == want {
			return seed, p
		}
	}
	t.Fatalf("no seed in [1,500) routes to node %q", want)
	return 0, experiments.Params{}
}

// post sends params as a table12 request; forwarded pins the request
// to the receiving node (the header fleets set on proxied traffic).
func post(t *testing.T, url string, p experiments.Params, forwarded bool) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/experiments/table12", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if forwarded {
		req.Header.Set(serve.HeaderFleetForwarded, "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestPeerFillServesWithoutRecompute pins the fleet's core promise:
// a node that misses locally serves its sibling's cached bytes
// without recomputing. Node b's compute path is armed to fail, so a
// 200 proves the result never touched b's runners.
func TestPeerFillServesWithoutRecompute(t *testing.T) {
	computeFails := faultinject.New(1)
	computeFails.Enable(serve.SiteCompute, 1, faultinject.Fault{})
	a, b := startFleet(t, map[string]*faultinject.Injector{"b": computeFails}, nil)

	_, p := seedOwnedBy(t, b, "b") // b owns it: b must peer-fill from a
	warm, warmBody := post(t, a.URL(), p, true)
	if warm.StatusCode != http.StatusOK || warm.Header.Get("X-Cache") != "miss" {
		t.Fatalf("warming a: status %d X-Cache %q: %s", warm.StatusCode, warm.Header.Get("X-Cache"), warmBody)
	}

	resp, body := post(t, b.URL(), p, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("b answered %d (compute fault fired => recompute happened): %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "peer" {
		t.Errorf("X-Cache = %q, want peer", got)
	}
	if !bytes.Equal(body, warmBody) {
		t.Error("peer-filled body is not byte-identical to the warming node's response")
	}

	// The fill populated b's local cache: the next request is a plain hit.
	resp, body2 := post(t, b.URL(), p, false)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body2, warmBody) {
		t.Error("hit after peer fill diverged from the original bytes")
	}
}

// TestForwardToOwner pins the proxy path: a request landing on the
// wrong node is forwarded to the key's owner and the owner's cached
// bytes are relayed verbatim under X-Cache: peer.
func TestForwardToOwner(t *testing.T) {
	computeFails := faultinject.New(1)
	computeFails.Enable(serve.SiteCompute, 1, faultinject.Fault{})
	a, b := startFleet(t, map[string]*faultinject.Injector{"b": computeFails}, nil)

	_, p := seedOwnedBy(t, b, "a") // a owns it: b must forward
	_, warmBody := post(t, a.URL(), p, true)

	resp, body := post(t, b.URL(), p, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("b answered %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "peer" {
		t.Errorf("X-Cache = %q, want peer", got)
	}
	if got := resp.Header.Get("X-Fleet-Node"); got != "a" {
		t.Errorf("X-Fleet-Node = %q, want a", got)
	}
	if !bytes.Equal(body, warmBody) {
		t.Error("forwarded body is not byte-identical to the owner's response")
	}
}

// TestPeerFailureDegradesToLocalCompute is the pinned degradation
// test: with every peer request failing by injection, both the
// peer-fill and the forward path fall back to computing locally and
// still answer correctly, as a miss.
func TestPeerFailureDegradesToLocalCompute(t *testing.T) {
	for _, tc := range []struct{ name, owner string }{
		{"fetch path", "b"},   // b owns the key, peer fill from a fails
		{"forward path", "a"}, // a owns the key, forwarding from b fails
	} {
		t.Run(tc.name, func(t *testing.T) {
			peerFails := faultinject.New(1)
			peerFails.Enable(fleet.SitePeerGet, 1, faultinject.Fault{})
			a, b := startFleet(t, nil, map[string]*faultinject.Injector{"b": peerFails})

			_, p := seedOwnedBy(t, b, tc.owner)
			_, warmBody := post(t, a.URL(), p, true)

			resp, body := post(t, b.URL(), p, false)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("b answered %d: %s", resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Cache"); got != "miss" {
				t.Errorf("X-Cache = %q, want miss (local recompute)", got)
			}
			var got, warm serve.Envelope
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(warmBody, &warm); err != nil {
				t.Fatal(err)
			}
			if got.Key != warm.Key || !bytes.Equal(got.Result, warm.Result) || !bytes.Equal(got.Params, warm.Params) {
				t.Error("locally recomputed envelope differs from the peer's (key/result/params)")
			}
		})
	}
}

// TestPeerProtocolEndpoints exercises /internal/v1/peek and /result
// directly: presence, the checksummed transfer, and the error cases.
func TestPeerProtocolEndpoints(t *testing.T) {
	a, _ := startFleet(t, nil, nil)
	p := tinyParams(77)
	_, warmBody := post(t, a.URL(), p, true)
	var env serve.Envelope
	if err := json.Unmarshal(warmBody, &env); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(a.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}

	resp, _ := get("/internal/v1/peek/" + env.Key)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("peek(cached) = %d, want 200", resp.StatusCode)
	}
	resp, data := get("/internal/v1/result/" + env.Key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result(cached) = %d", resp.StatusCode)
	}
	key, err := resultcache.ParseKey(env.Key)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := resultcache.Import(data, key)
	if err != nil {
		t.Fatalf("transferred entry fails checksum import: %v", err)
	}
	if !bytes.Equal(entry.Result, env.Result) {
		t.Error("imported entry result differs from the serving envelope")
	}

	missing := strings.Repeat("0", 64)
	if resp, _ := get("/internal/v1/peek/" + missing); resp.StatusCode != http.StatusNotFound {
		t.Errorf("peek(missing) = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/internal/v1/result/" + missing); resp.StatusCode != http.StatusNotFound {
		t.Errorf("result(missing) = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/internal/v1/peek/nothex"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("peek(bad key) = %d, want 400", resp.StatusCode)
	}
}

// TestSingleNodeFleetParity pins that a fleet of one behaves exactly
// like the plain daemon: same statuses, same key, same result bytes.
func TestSingleNodeFleetParity(t *testing.T) {
	plain := serve.New(serve.Options{Workers: 2})
	plainH := serve.NewHandler(plain)

	fleetSrv := serve.New(serve.Options{Workers: 2})
	node, err := fleet.New(fleet.Config{NodeID: "solo", Advertise: "http://127.0.0.1:1", Store: fleetSrv})
	if err != nil {
		t.Fatal(err)
	}
	fleetSrv.SetPeers(node)
	fleetH := serve.NewHandler(fleetSrv)

	p := tinyParams(42)
	body, _ := json.Marshal(p)
	run := func(h http.Handler) (*httptest.ResponseRecorder, serve.Envelope) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/experiments/table12", bytes.NewReader(body)))
		var env serve.Envelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("status %d: %v: %s", rec.Code, err, rec.Body)
		}
		return rec, env
	}

	for i, want := range []string{"miss", "hit"} {
		recP, envP := run(plainH)
		recF, envF := run(fleetH)
		if recP.Header().Get("X-Cache") != want || recF.Header().Get("X-Cache") != want {
			t.Errorf("request %d: X-Cache plain=%q fleet=%q, want %q",
				i, recP.Header().Get("X-Cache"), recF.Header().Get("X-Cache"), want)
		}
		if envP.Key != envF.Key || !bytes.Equal(envP.Result, envF.Result) || !bytes.Equal(envP.Params, envF.Params) {
			t.Errorf("request %d: single-node fleet envelope diverges from the plain daemon", i)
		}
	}
}

// TestBatchAcrossFleet streams a seed sweep through POST /v1/batch on
// one node and checks every cell lands, routed across both members.
func TestBatchAcrossFleet(t *testing.T) {
	_, b := startFleet(t, nil, nil)

	batch := `{"experiments":["table12"],
		"params":{"Particles":400,"Order":5,"ProcOrder":2,"Trials":1},
		"sweep":{"Seed":[1,2,3]}}`
	req, err := http.NewRequest(http.MethodPost, b.URL()+"/v1/batch", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	seenCells := map[int]bool{}
	var done *serve.BatchSummary
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			t.Fatal(err)
		}
		switch kind.Type {
		case "cell":
			var ev serve.CellEvent
			if err := json.Unmarshal(raw, &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Error != "" {
				t.Errorf("cell %d failed: %s", ev.Cell, ev.Error)
			}
			if ev.Node != "a" && ev.Node != "b" {
				t.Errorf("cell %d served by unknown node %q", ev.Cell, ev.Node)
			}
			if ev.Cache == "" || len(ev.Result) == 0 || ev.Key == "" {
				t.Errorf("cell %d event incomplete: %+v", ev.Cell, ev)
			}
			seenCells[ev.Cell] = true
		case "done":
			done = &serve.BatchSummary{}
			if err := json.Unmarshal(raw, done); err != nil {
				t.Fatal(err)
			}
		default:
			t.Errorf("unexpected event type %q", kind.Type)
		}
	}
	if len(seenCells) != 3 || !seenCells[0] || !seenCells[1] || !seenCells[2] {
		t.Errorf("streamed cells %v, want {0,1,2}", seenCells)
	}
	if done == nil || done.Cells != 3 || done.Errors != 0 {
		t.Errorf("summary = %+v, want 3 cells, 0 errors", done)
	}
}
