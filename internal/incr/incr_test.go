package incr

import (
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/commmat"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

// scatter places n particles on distinct cells of a 2^order grid.
func scatter(n int, order uint, seed uint64) []geom.Point {
	r := rng.New(seed)
	side := geom.Side(order)
	seen := make(map[uint64]bool, n)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		pt := geom.Point{X: r.Uint32n(side), Y: r.Uint32n(side)}
		if id := geom.CellID(pt, side); !seen[id] {
			seen[id] = true
			pts = append(pts, pt)
		}
	}
	return pts
}

// driftStep moves roughly frac of the particles by one cell, skipping
// moves that would collide or leave the grid (same discipline as the
// dynamic experiments: identity order, evolving occupancy).
func driftStep(pts []geom.Point, order uint, frac float64, r *rng.Rand) []geom.Point {
	side := geom.Side(order)
	occ := make(map[uint64]bool, len(pts))
	for _, pt := range pts {
		occ[geom.CellID(pt, side)] = true
	}
	out := append([]geom.Point(nil), pts...)
	for i, pt := range out {
		if float64(r.Uint32n(1<<20))/float64(1<<20) >= frac {
			continue
		}
		dx := int(r.Uint32n(3)) - 1
		dy := int(r.Uint32n(3)) - 1
		nx, ny := int(pt.X)+dx, int(pt.Y)+dy
		if (dx == 0 && dy == 0) || nx < 0 || ny < 0 || nx >= int(side) || ny >= int(side) {
			continue
		}
		q := geom.Point{X: uint32(nx), Y: uint32(ny)}
		if occ[geom.CellID(q, side)] {
			continue
		}
		delete(occ, geom.CellID(pt, side))
		occ[geom.CellID(q, side)] = true
		out[i] = q
	}
	return out
}

func oracleMatrix(t *testing.T, pts []geom.Point, curve sfc.Curve, order uint, p, radius int, m geom.Metric) (*commmat.Matrix, *acd.Assignment) {
	t.Helper()
	a, err := acd.Assign(pts, curve, order, p)
	if err != nil {
		t.Fatal(err)
	}
	return fmmmodel.NFIMatrix(a, fmmmodel.NFIOptions{Radius: radius, Metric: m, Workers: 1}), a
}

// TestStateMatchesOracleEveryTick is the differential oracle: after
// every tick the maintained matrix must equal a from-scratch
// fmmmodel.NFIMatrix of the current configuration, and the maintained
// assignment must equal a from-scratch acd.Assign.
func TestStateMatchesOracleEveryTick(t *testing.T) {
	for _, curveName := range []string{"hilbert", "morton"} {
		for _, metric := range []geom.Metric{geom.MetricChebyshev, geom.MetricManhattan} {
			curve, err := sfc.ByName(curveName)
			if err != nil {
				t.Fatal(err)
			}
			const order, p, radius = 6, 13, 2
			pts := scatter(900, order, 31)
			s, err := NewState(Config{Curve: curve, Order: order, P: p, Radius: radius, Metric: metric}, pts)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(77)
			for tick := 0; tick < 10; tick++ {
				pts = driftStep(pts, order, 0.05, r)
				if _, err := s.Tick(pts); err != nil {
					t.Fatalf("%s/%v tick %d: %v", curveName, metric, tick, err)
				}
				want, oracle := oracleMatrix(t, pts, curve, order, p, radius, metric)
				if !commmat.Equal(s.Matrix(), want) {
					t.Fatalf("%s/%v tick %d: maintained matrix diverged from oracle", curveName, metric, tick)
				}
				got, err := s.Assignment()
				if err != nil {
					t.Fatal(err)
				}
				for i := range oracle.Particles {
					if got.Particles[i] != oracle.Particles[i] || got.Ranks[i] != oracle.Ranks[i] {
						t.Fatalf("%s/%v tick %d: assignment position %d = (%v,%d), oracle (%v,%d)",
							curveName, metric, tick, i, got.Particles[i], got.Ranks[i],
							oracle.Particles[i], oracle.Ranks[i])
					}
				}
			}
			s.Release()
		}
	}
}

// TestStateRepartitionTick drives the gauge over the policy's
// high-water mark with a mass teleport and checks the rebuild path
// also lands exactly on the oracle, then that hysteresis holds the
// rebuild mechanism until the gauge falls below the low-water mark.
func TestStateRepartitionTick(t *testing.T) {
	curve, err := sfc.ByName("hilbert")
	if err != nil {
		t.Fatal(err)
	}
	const order, p, radius = 6, 11, 1
	pts := scatter(600, order, 5)
	s, err := NewState(Config{Curve: curve, Order: order, P: p, Radius: radius, Metric: geom.MetricChebyshev}, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Teleport: reverse the point set (identities keep cells, but every
	// cell changes hands in curve order), guaranteeing massive owner
	// churn without collisions.
	flipped := append([]geom.Point(nil), pts...)
	for i, j := 0, len(flipped)-1; i < j; i, j = i+1, j-1 {
		flipped[i], flipped[j] = flipped[j], flipped[i]
	}
	st, err := s.Tick(flipped)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Repartitioned {
		t.Fatalf("teleport tick gauge %.3f did not trigger repartition", st.Gauge)
	}
	if s.Repartitions() != 1 {
		t.Fatalf("Repartitions = %d, want 1", s.Repartitions())
	}
	want, _ := oracleMatrix(t, flipped, curve, order, p, radius, geom.MetricChebyshev)
	if !commmat.Equal(s.Matrix(), want) {
		t.Fatal("matrix diverged after repartition tick")
	}
	// A quiet tick after the storm: gauge 0 < Lo releases the rebuild
	// mechanism and the delta path resumes, still on the oracle.
	st, err = s.Tick(flipped)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repartitioned {
		t.Fatalf("quiet tick (gauge %.3f) still repartitioned", st.Gauge)
	}
	r := rng.New(9)
	moved := driftStep(flipped, order, 0.03, r)
	if _, err := s.Tick(moved); err != nil {
		t.Fatal(err)
	}
	want, _ = oracleMatrix(t, moved, curve, order, p, radius, geom.MetricChebyshev)
	if !commmat.Equal(s.Matrix(), want) {
		t.Fatal("matrix diverged after post-repartition delta tick")
	}
	s.Release()
}

// TestForceRebuildParity pins the cross-mechanism contract: a
// ForceRebuild state and a delta state fed the same trajectory report
// identical TickStats at every tick and hold identical matrices.
func TestForceRebuildParity(t *testing.T) {
	curve, err := sfc.ByName("gray")
	if err != nil {
		t.Fatal(err)
	}
	const order, p, radius = 6, 7, 2
	pts := scatter(700, order, 13)
	cfg := Config{Curve: curve, Order: order, P: p, Radius: radius, Metric: geom.MetricChebyshev}
	delta, err := NewState(cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ForceRebuild = true
	rebuild, err := NewState(cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	for tick := 0; tick < 8; tick++ {
		pts = driftStep(pts, order, 0.08, r)
		a, err := delta.Tick(pts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rebuild.Tick(pts)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("tick %d: delta stats %+v, rebuild stats %+v", tick, a, b)
		}
		if !commmat.Equal(delta.Matrix(), rebuild.Matrix()) {
			t.Fatalf("tick %d: mechanisms disagree on the matrix", tick)
		}
	}
	delta.Release()
	rebuild.Release()
}

// TestStateACDMatchesBatch checks the in-place contraction against the
// batch NFI accumulator path on the same topology.
func TestStateACDMatchesBatch(t *testing.T) {
	curve, err := sfc.ByName("morton")
	if err != nil {
		t.Fatal(err)
	}
	const order, procOrder, radius = 6, 3, 1
	p := 1 << (2 * procOrder)
	pts := scatter(800, order, 3)
	s, err := NewState(Config{Curve: curve, Order: order, P: p, Radius: radius, Metric: geom.MetricChebyshev}, pts)
	if err != nil {
		t.Fatal(err)
	}
	torus := topology.NewTorus(procOrder, curve)
	dt := topology.NewDistanceTable(torus)
	r := rng.New(8)
	pts = driftStep(pts, order, 0.05, r)
	if _, err := s.Tick(pts); err != nil {
		t.Fatal(err)
	}
	got := s.ACD(dt)
	a, err := acd.Assign(pts, curve, order, p)
	if err != nil {
		t.Fatal(err)
	}
	want := fmmmodel.NFI(a, torus, fmmmodel.NFIOptions{Radius: radius, Metric: geom.MetricChebyshev, Workers: 1})
	if got != want {
		t.Fatalf("ACD accumulator: got %+v, want %+v", got, want)
	}
	s.Release()
}

// TestStateRejectsBadInput covers construction and tick validation.
func TestStateRejectsBadInput(t *testing.T) {
	curve, err := sfc.ByName("hilbert")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewState(Config{Curve: nil, Order: 4, P: 2}, scatter(10, 4, 1)); err == nil {
		t.Fatal("nil curve accepted")
	}
	if _, err := NewState(Config{Curve: curve, Order: 4, P: 0}, scatter(10, 4, 1)); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := NewState(Config{Curve: curve, Order: 4, P: 2}, nil); err == nil {
		t.Fatal("empty particles accepted")
	}
	dup := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}
	if _, err := NewState(Config{Curve: curve, Order: 4, P: 2}, dup); err == nil {
		t.Fatal("duplicate cells accepted")
	}
	s, err := NewState(Config{Curve: curve, Order: 4, P: 2, Radius: 1, Metric: geom.MetricChebyshev}, scatter(10, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(scatter(9, 4, 1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestStateACDMultiMatchesPerTable is the incremental layer's fused
// Mutable contraction oracle: ACDMulti over all six topology kinds
// must return, per table, exactly what the sequential single-table
// path (ACD, which delegates to Mutable.ContractTableSym) produces on
// an identically fresh table.
func TestStateACDMultiMatchesPerTable(t *testing.T) {
	curve, err := sfc.ByName("hilbert")
	if err != nil {
		t.Fatal(err)
	}
	const order, procOrder, radius = 6, 3, 1
	p := 1 << (2 * procOrder)
	pts := scatter(900, order, 5)
	s, err := NewState(Config{Curve: curve, Order: order, P: p, Radius: radius, Metric: geom.MetricChebyshev}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	r := rng.New(23)
	for tick := 0; tick < 3; tick++ {
		pts = driftStep(pts, order, 0.05, r)
		if _, err := s.Tick(pts); err != nil {
			t.Fatal(err)
		}
	}
	topos := make([]topology.Topology, len(topology.Kinds))
	fusedTables := make([]*topology.DistanceTable, len(topology.Kinds))
	for i, kind := range topology.Kinds {
		topo, err := topology.New(kind, p, curve)
		if err != nil {
			t.Fatal(err)
		}
		topos[i] = topo
		fusedTables[i] = topology.NewDistanceTable(topo)
	}
	fused := s.ACDMulti(fusedTables)
	for i, topo := range topos {
		want := s.ACD(topology.NewDistanceTable(topo))
		if fused[i] != want {
			t.Fatalf("%s: fused ACDMulti %+v != sequential ACD %+v",
				topo.Name(), fused[i], want)
		}
	}
}
