// Package octree is the 3D counterpart of the quadtree package: the
// per-level minimum-rank representative tree over a compressed octree
// domain decomposition, with 3D FMM interaction lists. It backs the 3D
// extension of the communication model (the paper's future-work item
// ii).
package octree

import (
	"fmt"

	"sfcacd/internal/geom3"
)

// RankTree records, per octree level, the minimum processor rank
// owning a particle in each cell (-1 when empty). Level 0 is the root;
// level Order is the finest 2^Order cube.
type RankTree struct {
	// Order is the finest level.
	Order uint
	// levels[l] has 8^l entries indexed by (z*side+y)*side+x.
	levels [][]int32
}

// BuildRankTree constructs the tree from particle cells and owning
// ranks.
func BuildRankTree(order uint, pts []geom3.Point3, ranks []int32) *RankTree {
	if len(pts) != len(ranks) {
		panic("octree: pts and ranks length mismatch")
	}
	t := &RankTree{Order: order, levels: make([][]int32, order+1)}
	for l := uint(0); l <= order; l++ {
		lv := make([]int32, geom3.Cells(l))
		for i := range lv {
			lv[i] = -1
		}
		t.levels[l] = lv
	}
	finest := t.levels[order]
	side := geom3.Side(order)
	for i, p := range pts {
		id := geom3.CellID(p, side)
		if cur := finest[id]; cur == -1 || ranks[i] < cur {
			finest[id] = ranks[i]
		}
	}
	for l := int(order) - 1; l >= 0; l-- {
		dst := t.levels[l]
		src := t.levels[l+1]
		cside := geom3.Side(uint(l))
		fside := geom3.Side(uint(l + 1))
		for z := uint32(0); z < cside; z++ {
			for y := uint32(0); y < cside; y++ {
				for x := uint32(0); x < cside; x++ {
					best := int32(-1)
					for dz := uint32(0); dz < 2; dz++ {
						for dy := uint32(0); dy < 2; dy++ {
							for dx := uint32(0); dx < 2; dx++ {
								v := src[geom3.CellID(geom3.Pt3(2*x+dx, 2*y+dy, 2*z+dz), fside)]
								if v != -1 && (best == -1 || v < best) {
									best = v
								}
							}
						}
					}
					dst[geom3.CellID(geom3.Pt3(x, y, z), cside)] = best
				}
			}
		}
	}
	return t
}

// Rep returns the representative rank of a cell, or -1 when empty.
func (t *RankTree) Rep(level uint, p geom3.Point3) int32 {
	if level > t.Order {
		panic(fmt.Sprintf("octree: level %d beyond order %d", level, t.Order))
	}
	side := geom3.Side(level)
	if p.X >= side || p.Y >= side || p.Z >= side {
		panic(fmt.Sprintf("octree: cell %v outside level %d", p, level))
	}
	return t.levels[level][geom3.CellID(p, side)]
}

// NonEmpty returns the occupied cell count of a level.
func (t *RankTree) NonEmpty(level uint) int {
	n := 0
	for _, v := range t.levels[level] {
		if v != -1 {
			n++
		}
	}
	return n
}

// VisitCells calls fn for every occupied cell of a level, in dense-id
// order.
func (t *RankTree) VisitCells(level uint, fn func(p geom3.Point3, rep int32)) {
	side := geom3.Side(level)
	lv := t.levels[level]
	for id, rep := range lv {
		if rep != -1 {
			fn(geom3.PointOfCellID(uint64(id), side), rep)
		}
	}
}

// InteractionList calls fn for every occupied member of the 3D FMM
// interaction list of cell p at the given level: children of the
// parent's (<=26) neighbors that are not Chebyshev-adjacent to p.
func (t *RankTree) InteractionList(level uint, p geom3.Point3, fn func(q geom3.Point3, rep int32)) {
	if level < 2 {
		return
	}
	side := geom3.Side(level)
	if p.X >= side || p.Y >= side || p.Z >= side {
		panic(fmt.Sprintf("octree: cell %v outside level %d", p, level))
	}
	lv := t.levels[level]
	px, py, pz := int(p.X/2), int(p.Y/2), int(p.Z/2)
	pside := int(side / 2)
	for nz := pz - 1; nz <= pz+1; nz++ {
		if nz < 0 || nz >= pside {
			continue
		}
		for ny := py - 1; ny <= py+1; ny++ {
			if ny < 0 || ny >= pside {
				continue
			}
			for nx := px - 1; nx <= px+1; nx++ {
				if nx < 0 || nx >= pside {
					continue
				}
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							q := geom3.Pt3(uint32(2*nx+dx), uint32(2*ny+dy), uint32(2*nz+dz))
							if geom3.Chebyshev(p, q) <= 1 {
								continue
							}
							if rep := lv[geom3.CellID(q, side)]; rep != -1 {
								fn(q, rep)
							}
						}
					}
				}
			}
		}
	}
}
