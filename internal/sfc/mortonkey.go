package sfc

// Dilated-integer (Morton key) arithmetic for the key-space neighbor
// engine (internal/keynav). A Morton key interleaves the bits of a
// cell coordinate pair, so neighbor cells can be reached by arithmetic
// on the key's dilated halves instead of decoding, stepping, and
// re-encoding. These helpers are the raw bit forms behind the Morton
// curve: unlike Curve.Index they skip bounds checks and per-call
// statistics, because they sit in the engine's innermost loops.

const (
	// mortonEvenMask selects the x bits of a Morton key (even
	// positions); mortonOddMask selects the y bits.
	mortonEvenMask = 0x5555555555555555
	mortonOddMask  = 0xaaaaaaaaaaaaaaaa
)

// MortonKey returns the Z-curve index of (x, y): the bit interleaving
// with y in the odd positions. It equals Morton.Index for points on
// the grid but accepts any uint32 coordinates.
func MortonKey(x, y uint32) uint64 { return mortonEncode(x, y) }

// MortonCoords inverts MortonKey.
func MortonCoords(k uint64) (x, y uint32) { return mortonDecode(k) }

// MortonXPart returns the dilated x half of a key: the bits of x
// spread to the even positions. Combine with MortonYPart by or-ing.
func MortonXPart(x uint32) uint64 { return part1by1(x) }

// MortonYPart returns the dilated y half of a key: the bits of y
// spread to the odd positions.
func MortonYPart(y uint32) uint64 { return part1by1(y) << 1 }

// MortonIncX increments the x coordinate embedded in a dilated x part
// (as produced by MortonXPart): filling the unused odd positions with
// ones makes the +1 carry ripple across them to the next even bit.
func MortonIncX(xp uint64) uint64 { return ((xp | mortonOddMask) + 1) & mortonEvenMask }

// Morton3Key returns the 3D Z-curve index of (x, y, z): the bit
// interleaving of the three coordinates with x in the lowest
// positions. Coordinates must fit in 21 bits (cube side up to 2^21).
func Morton3Key(x, y, z uint32) uint64 {
	return part1by2(x) | part1by2(y)<<1 | part1by2(z)<<2
}

// part1by2 spreads the low 21 bits of v to every third bit position of
// a 64-bit word.
func part1by2(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}
