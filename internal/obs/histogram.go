package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Histogram is a fixed-bucket distribution metric, safe for concurrent
// use. An observation v lands in the first bucket whose upper bound
// satisfies v <= bound, or in the implicit overflow bucket. Count,
// Sum, Min, and Max are tracked exactly.
type Histogram struct {
	name   string
	bounds []float64 // sorted ascending upper bounds
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	min    atomic.Uint64 // float64 bits; valid only when count > 0
	max    atomic.Uint64 // float64 bits; valid only when count > 0
}

func newHistogram(name string, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{
		name:   name,
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
	}
	h.min.Store(floatBits(math.Inf(1)))
	h.max.Store(floatBits(math.Inf(-1)))
	return h
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(floatFrom(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= floatFrom(old) || h.min.CompareAndSwap(old, floatBits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= floatFrom(old) || h.max.CompareAndSwap(old, floatBits(v)) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts has
// one entry per bound in Bounds plus a trailing overflow bucket.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"bucket_counts,omitempty"`
}

// Snapshot copies the histogram's current state. Min and Max are 0
// when nothing has been observed.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    floatFrom(h.sum.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	if s.Count > 0 {
		s.Min = floatFrom(h.min.Load())
		s.Max = floatFrom(h.max.Load())
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(floatBits(math.Inf(1)))
	h.max.Store(floatBits(math.Inf(-1)))
}

// LinearBuckets returns n upper bounds start, start+width, ...,
// start+(n-1)*width.
func LinearBuckets(start, width float64, n int) []float64 {
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = start + float64(i)*width
	}
	return bs
}

// ExponentialBuckets returns n upper bounds start, start*factor,
// start*factor^2, ... (factor > 1).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}
