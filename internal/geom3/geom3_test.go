package geom3

import (
	"testing"

	"sfcacd/internal/geom"
)

func TestDistances(t *testing.T) {
	a, b := Pt3(1, 2, 3), Pt3(4, 0, 3)
	if got := Manhattan(a, b); got != 5 {
		t.Errorf("Manhattan = %d", got)
	}
	if got := Chebyshev(a, b); got != 3 {
		t.Errorf("Chebyshev = %d", got)
	}
	if Dist(geom.MetricManhattan, a, b) != 5 || Dist(geom.MetricChebyshev, a, b) != 3 {
		t.Error("Dist dispatch wrong")
	}
	if Manhattan(a, a) != 0 || Chebyshev(a, a) != 0 {
		t.Error("self distance nonzero")
	}
	if Manhattan(a, b) != Manhattan(b, a) || Chebyshev(a, b) != Chebyshev(b, a) {
		t.Error("asymmetric distances")
	}
}

func TestSideCells(t *testing.T) {
	if Side(3) != 8 || Cells(3) != 512 {
		t.Fatalf("Side/Cells wrong: %d %d", Side(3), Cells(3))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Side(21) did not panic")
		}
	}()
	Side(21)
}

func TestCellIDRoundTrip(t *testing.T) {
	const side = 8
	seen := make(map[uint64]bool)
	for z := uint32(0); z < side; z++ {
		for y := uint32(0); y < side; y++ {
			for x := uint32(0); x < side; x++ {
				p := Pt3(x, y, z)
				id := CellID(p, side)
				if seen[id] {
					t.Fatalf("duplicate id %d", id)
				}
				seen[id] = true
				if got := PointOfCellID(id, side); got != p {
					t.Fatalf("round trip %v -> %d -> %v", p, id, got)
				}
			}
		}
	}
}

func TestInBounds(t *testing.T) {
	if !InBounds(0, 0, 0, 4) || !InBounds(3, 3, 3, 4) {
		t.Error("corners out of bounds")
	}
	for _, bad := range [][3]int{{-1, 0, 0}, {0, 4, 0}, {0, 0, 4}} {
		if InBounds(bad[0], bad[1], bad[2], 4) {
			t.Errorf("%v in bounds", bad)
		}
	}
}

func TestVisitNeighborhoodMatchesBruteForce(t *testing.T) {
	const side = 7
	for _, m := range []geom.Metric{geom.MetricChebyshev, geom.MetricManhattan} {
		for _, r := range []int{1, 2} {
			for _, p := range []Point3{Pt3(0, 0, 0), Pt3(3, 3, 3), Pt3(6, 6, 6), Pt3(0, 3, 6)} {
				want := make(map[Point3]bool)
				for z := uint32(0); z < side; z++ {
					for y := uint32(0); y < side; y++ {
						for x := uint32(0); x < side; x++ {
							q := Pt3(x, y, z)
							if q != p && Dist(m, p, q) <= r {
								want[q] = true
							}
						}
					}
				}
				got := make(map[Point3]bool)
				VisitNeighborhood(p, r, m, side, func(q Point3) {
					if got[q] {
						t.Fatalf("%v visited twice", q)
					}
					got[q] = true
				})
				if len(got) != len(want) {
					t.Fatalf("m=%v r=%d p=%v: got %d, want %d", m, r, p, len(got), len(want))
				}
				for q := range want {
					if !got[q] {
						t.Fatalf("missing %v", q)
					}
				}
			}
		}
	}
}

func TestNeighborhoodSize(t *testing.T) {
	// Interior point check.
	const side = 32
	p := Pt3(16, 16, 16)
	for _, m := range []geom.Metric{geom.MetricChebyshev, geom.MetricManhattan} {
		for r := 1; r <= 4; r++ {
			count := 0
			VisitNeighborhood(p, r, m, side, func(Point3) { count++ })
			if count != NeighborhoodSize(r, m) {
				t.Errorf("m=%v r=%d: %d != %d", m, r, count, NeighborhoodSize(r, m))
			}
		}
	}
	// The paper's 3D near-field bound: 26 neighbors at r=1.
	if NeighborhoodSize(1, geom.MetricChebyshev) != 26 {
		t.Errorf("Chebyshev r=1 = %d, want 26", NeighborhoodSize(1, geom.MetricChebyshev))
	}
	if NeighborhoodSize(1, geom.MetricManhattan) != 6 {
		t.Errorf("Manhattan r=1 = %d, want 6", NeighborhoodSize(1, geom.MetricManhattan))
	}
	if NeighborhoodSize(0, geom.MetricManhattan) != 0 {
		t.Error("r=0 nonzero")
	}
}

func TestPointString(t *testing.T) {
	if s := Pt3(1, 2, 3).String(); s != "(1,2,3)" {
		t.Errorf("String = %q", s)
	}
}
