package sfcacd_test

import (
	"math"
	"testing"

	"sfcacd"
)

// TestPublicAPIEndToEnd drives the documented public surface through
// the paper's full §IV pipeline.
func TestPublicAPIEndToEnd(t *testing.T) {
	const order, n, procOrder = 8, 2000, 3
	pts, err := sfcacd.SampleUnique(sfcacd.Uniform, sfcacd.NewRand(1), order, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != n {
		t.Fatalf("sampled %d", len(pts))
	}
	for _, curve := range sfcacd.Curves() {
		a, err := sfcacd.Assign(pts, curve, order, 1<<(2*procOrder))
		if err != nil {
			t.Fatal(err)
		}
		torus := sfcacd.NewTorus(procOrder, curve)
		nfi := sfcacd.NFI(a, torus, sfcacd.NFIOptions{Radius: 1})
		if nfi.Count == 0 {
			t.Fatalf("%s: no NFI events", curve.Name())
		}
		ffi := sfcacd.FFI(a, torus, sfcacd.FFIOptions{})
		if ffi.Total().Count == 0 {
			t.Fatalf("%s: no FFI events", curve.Name())
		}
	}
}

func TestPublicCurveRegistry(t *testing.T) {
	if len(sfcacd.Curves()) != 4 {
		t.Fatalf("Curves() = %d", len(sfcacd.Curves()))
	}
	c, err := sfcacd.CurveByName("hilbert")
	if err != nil || c.Name() != "hilbert" {
		t.Fatalf("CurveByName: %v %v", c, err)
	}
	p := sfcacd.Pt(3, 5)
	d := sfcacd.Hilbert.Index(4, p)
	if sfcacd.Hilbert.Point(4, d) != p {
		t.Fatal("facade curve round trip failed")
	}
}

func TestPublicTopologies(t *testing.T) {
	for _, kind := range sfcacd.TopologyKinds() {
		topo, err := sfcacd.NewTopology(kind, 16, sfcacd.Hilbert)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if topo.Distance(0, 15) <= 0 {
			t.Fatalf("%s: degenerate distance", kind)
		}
	}
	if sfcacd.NewHypercube(4).P() != 16 {
		t.Fatal("hypercube constructor")
	}
}

func TestPublicANNS(t *testing.T) {
	res := sfcacd.ANNS(sfcacd.RowMajor, 5, sfcacd.ANNSOptions{Radius: 1})
	if math.Abs(res.Mean-16.5) > 1e-9 {
		t.Fatalf("ANNS = %f, want 16.5", res.Mean)
	}
}

func TestPublicPrimitives(t *testing.T) {
	topo := sfcacd.NewTorus(2, sfcacd.Hilbert)
	for name, acc := range map[string]sfcacd.Accumulator{
		"broadcast": sfcacd.Broadcast(topo, 0),
		"reduce":    sfcacd.Reduce(topo, 0),
		"alltoall":  sfcacd.AllToAll(topo),
		"prefix":    sfcacd.ParallelPrefix(topo),
		"ring":      sfcacd.RingExchange(topo),
		"gather":    sfcacd.QuadTreeGather(topo),
	} {
		if acc.Count == 0 {
			t.Errorf("%s: no events", name)
		}
	}
}

func TestPublicQuadtree(t *testing.T) {
	pts := []sfcacd.Point{sfcacd.Pt(0, 0), sfcacd.Pt(200, 200), sfcacd.Pt(201, 201)}
	tree := sfcacd.BuildLinearQuadtree(8, pts, 1)
	if tree.TotalParticles() != 3 {
		t.Fatalf("tree particles %d", tree.TotalParticles())
	}
	if !tree.Balance().IsBalanced() {
		t.Fatal("balanced tree unbalanced")
	}
}

func TestPublic3D(t *testing.T) {
	pts, err := sfcacd.SampleUnique3(sfcacd.Samplers3D()[0], sfcacd.NewRand(2), 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, curve := range sfcacd.Curves3D() {
		a, err := sfcacd.Assign3D(pts, curve, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		torus := sfcacd.NewTorus3D(1, curve)
		if sfcacd.NFI3D(a, torus, sfcacd.NFI3DOptions{Radius: 1}).Count == 0 {
			// Sparse 3D samples can lack neighbors at radius 1; widen.
			if sfcacd.NFI3D(a, torus, sfcacd.NFI3DOptions{Radius: 4}).Count == 0 {
				t.Fatalf("%s: no 3D NFI events even at radius 4", curve.Name())
			}
		}
		if sfcacd.FFI3D(a, torus, 0).Total().Count == 0 {
			t.Fatalf("%s: no 3D FFI events", curve.Name())
		}
	}
	mean, pairs := sfcacd.ANNS3D(sfcacd.Curves3D()[0], 3, 1)
	if mean <= 0 || pairs == 0 {
		t.Fatal("3D ANNS degenerate")
	}
}

func TestPublicNBody(t *testing.T) {
	sys := sfcacd.NBodySystem{
		Pos: []complex128{0.3 + 0.3i, 0.7 + 0.7i, 0.2 + 0.8i},
		Q:   []float64{1, -1, 1},
	}
	direct, err := sfcacd.SolveDirect(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	fmm, err := sfcacd.SolveFMM(sys, sfcacd.FMMSolverOptions{Terms: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Potential {
		if math.Abs(direct.Potential[i]-fmm.Potential[i]) > 1e-8 {
			t.Fatalf("potential %d mismatch", i)
		}
	}
	sim, err := sfcacd.NewNBodySimulator(sys, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	sim.UseDirect = true
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if sim.Steps != 1 {
		t.Fatal("step not recorded")
	}
}

func TestPublicWeightedACD(t *testing.T) {
	var w sfcacd.WeightedAccumulator
	w.Add(4, 10)
	if w.ACD() != 4 {
		t.Fatalf("weighted ACD %f", w.ACD())
	}
}

func TestPublicFromOwners(t *testing.T) {
	pts := []sfcacd.Point{sfcacd.Pt(0, 0), sfcacd.Pt(5, 5)}
	a, err := sfcacd.AssignmentFromOwners(pts, []int32{1, 0}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.RankAt(sfcacd.Pt(0, 0)) != 1 {
		t.Fatal("owner lookup failed")
	}
}
