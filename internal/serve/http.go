package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"sfcacd/internal/experiments"
	"sfcacd/internal/obs"
)

// maxBodyBytes bounds a request body; parameter JSON is tiny.
const maxBodyBytes = 1 << 20

// Envelope is the JSON body of a successful experiment response. Raw
// fields replay the cached bytes verbatim, so the body of a cache hit
// is byte-identical to the body of the miss that produced it; only
// the X-Cache header differs.
type Envelope struct {
	Experiment string          `json:"experiment"`
	Key        string          `json:"key"`
	Params     json.RawMessage `json:"params"`
	Result     json.RawMessage `json:"result"`
	Manifest   json.RawMessage `json:"manifest,omitempty"`
}

// errorBody is the JSON body of a failed request.
type errorBody struct {
	Error      string `json:"error"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	// Timeout is the per-request compute deadline that a 504 ran into,
	// as a Go duration string.
	Timeout string `json:"timeout,omitempty"`
}

// listEntry is one experiment in the GET /v1/experiments listing.
type listEntry struct {
	Name        string             `json:"name"`
	Description string             `json:"description"`
	PaperParams experiments.Params `json:"paper_params"`
	// ScaledParams is the default configuration a POST without a body
	// runs (the paper preset scaled down defaultScaleSteps times).
	ScaledParams experiments.Params `json:"scaled_params"`
}

// defaultScaleSteps matches acdbench's default -scale: POSTed bodies
// override a preset scaled down this many steps unless ?preset=paper.
const defaultScaleSteps = 2

// NewHandler returns the daemon's HTTP API over s:
//
//	POST /v1/experiments/{name}   run (or serve from cache) one experiment
//	GET  /v1/experiments          registry listing
//	GET  /healthz                 liveness
//	GET  /metrics                 obs registry snapshot
//	GET  /debug/pprof/...         pprof handlers
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments/{name}", s.handleRun)
	mux.HandleFunc("GET /v1/experiments", handleList)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obs.Default().Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleRun answers POST /v1/experiments/{name}. The body, when
// present, is a partial experiments.Params JSON object merged over the
// preset selected by ?preset=scaled (default) or ?preset=paper.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	spec, ok := experiments.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q", name), 0)
		return
	}
	params := spec.Paper
	switch preset := r.URL.Query().Get("preset"); preset {
	case "", "scaled":
		params = params.Scale(defaultScaleSteps)
	case "paper":
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown preset %q (use scaled or paper)", preset), 0)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	// io.EOF means an absent body: run the preset as-is.
	if err := dec.Decode(&params); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad params body: %v", err), 0)
		return
	}

	resp, err := s.Do(r.Context(), name, params)
	if err != nil {
		writeDoError(w, r, err)
		return
	}
	w.Header().Set("X-Cache", string(resp.Status))
	writeJSON(w, http.StatusOK, Envelope{
		Experiment: resp.Entry.Experiment,
		Key:        resp.Entry.Key.String(),
		Params:     resp.Entry.Params,
		Result:     resp.Entry.Result,
		Manifest:   resp.Entry.Manifest,
	})
}

// writeDoError maps Server.Do errors onto HTTP statuses.
func writeDoError(w http.ResponseWriter, r *http.Request, err error) {
	var overload *OverloadError
	var deadline *DeadlineError
	switch {
	case errors.Is(err, ErrUnknownExperiment):
		writeError(w, http.StatusNotFound, err.Error(), 0)
	case errors.Is(err, ErrInvalidParams):
		writeError(w, http.StatusBadRequest, err.Error(), 0)
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error(), overload.QueueDepth)
	case errors.As(err, &deadline):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Timeout: deadline.Timeout.String()})
	case r.Context().Err() != nil:
		// The client is gone; nothing useful can be written. 499 is
		// the de-facto "client closed request" status.
		w.WriteHeader(499)
	default:
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
	}
}

// handleList answers GET /v1/experiments from the registry.
func handleList(w http.ResponseWriter, r *http.Request) {
	specs := experiments.Registry()
	out := make([]listEntry, len(specs))
	for i, spec := range specs {
		out[i] = listEntry{
			Name:         spec.Name,
			Description:  spec.Desc,
			PaperParams:  spec.Paper,
			ScaledParams: spec.Paper.Scale(defaultScaleSteps),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)+1))
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, status int, msg string, queueDepth int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg, QueueDepth: queueDepth})
}
