package experiments

import (
	"context"
	"sfcacd/internal/acd"
	"sfcacd/internal/contention"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/primitives"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// PrimitivesResult holds the §VII generality study: the ACD of each
// standard communication primitive on a mesh and torus under each
// processor-order curve (placement is the only thing the curve
// changes here).
type PrimitivesResult struct {
	// Patterns are the primitive names (rows).
	Patterns []string
	// Curves are the placement curve names (columns).
	Curves []string
	// Mesh[p][c] and Torus[p][c] are ACD values.
	Mesh  [][]float64
	Torus [][]float64
}

// Matrices renders the two panels.
func (r PrimitivesResult) Matrices() (mesh, torus *tablefmt.Matrix) {
	mk := func(title string, cells [][]float64) *tablefmt.Matrix {
		return &tablefmt.Matrix{
			Title:      title,
			Corner:     "primitive\\SFC",
			Cols:       r.Curves,
			Rows:       r.Patterns,
			Cells:      cells,
			MarkMinima: true,
		}
	}
	return mk("Communication primitives on the mesh (§VII)", r.Mesh),
		mk("Communication primitives on the torus (§VII)", r.Torus)
}

// RunPrimitives evaluates every §VII primitive under every
// processor-order curve at p = 4^ProcOrder, one sweep cell per curve.
// Deterministic: no sampling is involved. workers caps the sweep pool
// (0 means GOMAXPROCS).
func RunPrimitives(procOrder uint, workers int) PrimitivesResult {
	curves := sfc.All()
	pats := primitives.Patterns()
	res := PrimitivesResult{
		Curves: curveNames(curves),
		Mesh:   zeroRect(len(pats), len(curves)),
		Torus:  zeroRect(len(pats), len(curves)),
	}
	for _, p := range pats {
		res.Patterns = append(res.Patterns, p.Name)
	}
	// Cells write disjoint columns directly; no reduction is needed
	// because each matrix slot is assigned exactly once.
	runCells(context.Background(), sweepPool(workers, len(curves)), len(curves), func(c int) error {
		curve := curves[c]
		mesh := topology.NewMesh(procOrder, curve)
		torus := topology.NewTorus(procOrder, curve)
		for i, p := range pats {
			for g, topo := range []topology.Topology{mesh, torus} {
				acc := p.Run(topo)
				acc.Record()
				// Each primitive event costs one Distance query.
				topology.CountDistanceQueries(acc.Count)
				if g == 0 {
					res.Mesh[i][c] = acc.ACD()
				} else {
					res.Torus[i][c] = acc.ACD()
				}
			}
		}
		return nil
	})
	return res
}

// ContentionResult extends the ACD with link-congestion statistics
// (future-work item i): NFI traffic routed with XY routing over the
// mesh and torus, per curve (same curve both roles).
type ContentionResult struct {
	Curves []string
	// Per curve: ACD (hops per message) and the max/mean link load.
	MeshACD, MeshMaxLoad, MeshMeanLoad    []float64
	TorusACD, TorusMaxLoad, TorusMeanLoad []float64
}

// Matrix renders the study.
func (r ContentionResult) Matrix() *tablefmt.Matrix {
	m := &tablefmt.Matrix{
		Title:  "NFI contention under XY routing",
		Corner: "SFC",
		Cols: []string{
			"mesh ACD", "mesh max link", "mesh mean link",
			"torus ACD", "torus max link", "torus mean link",
		},
		Rows: r.Curves,
	}
	for i := range r.Curves {
		m.Cells = append(m.Cells, []float64{
			r.MeshACD[i], r.MeshMaxLoad[i], r.MeshMeanLoad[i],
			r.TorusACD[i], r.TorusMaxLoad[i], r.TorusMeanLoad[i],
		})
	}
	return m
}

// RunContention routes the near-field traffic of a uniform input over
// the mesh and torus and reports congestion alongside the ACD.
func RunContention(ctx context.Context, p Params) (ContentionResult, error) {
	if err := p.Validate(); err != nil {
		return ContentionResult{}, err
	}
	curves := sfc.All()
	n := len(curves)
	res := ContentionResult{
		Curves:        curveNames(curves),
		MeshACD:       make([]float64, n),
		MeshMaxLoad:   make([]float64, n),
		MeshMeanLoad:  make([]float64, n),
		TorusACD:      make([]float64, n),
		TorusMaxLoad:  make([]float64, n),
		TorusMeanLoad: make([]float64, n),
	}
	type gridOut struct {
		acd, maxLoad, meanLoad float64
	}
	type cellOut struct{ mesh, torus gridOut }
	groups := make([]shared[[]geom.Point], p.Trials)
	outs := make([]cellOut, p.Trials*n)
	pool := sweepPool(p.Workers, len(outs))
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		c := cell % n
		trial := cell / n
		pts, err := groups[trial].get(func() ([]geom.Point, error) {
			return samplePoints(dist.Uniform, p, trial)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		a, err := acd.Assign(pts, curve, p.Order, p.P())
		if err != nil {
			return err
		}
		grids := []contention.GridTopology{
			topology.NewMesh(p.ProcOrder, curve),
			topology.NewTorus(p.ProcOrder, curve),
		}
		var o cellOut
		for g, grid := range grids {
			tr := contention.NewTracker(grid)
			fmmmodel.VisitNFIPairs(a, fmmmodel.NFIOptions{
				Radius: p.Radius, Metric: geom.MetricChebyshev,
			}, tr.Route)
			s := tr.Stats()
			acdVal := 0.0
			if s.Messages > 0 {
				acdVal = float64(s.Hops) / float64(s.Messages)
			}
			out := gridOut{acd: acdVal, maxLoad: float64(s.MaxLinkLoad), meanLoad: s.MeanLinkLoad}
			if g == 0 {
				o.mesh = out
			} else {
				o.torus = out
			}
		}
		a.Release()
		outs[cell] = o
		return nil
	})
	if err != nil {
		return ContentionResult{}, err
	}
	f := 1 / float64(p.Trials)
	for cell, o := range outs {
		c := cell % n
		res.MeshACD[c] += o.mesh.acd * f
		res.MeshMaxLoad[c] += o.mesh.maxLoad * f
		res.MeshMeanLoad[c] += o.mesh.meanLoad * f
		res.TorusACD[c] += o.torus.acd * f
		res.TorusMaxLoad[c] += o.torus.maxLoad * f
		res.TorusMeanLoad[c] += o.torus.meanLoad * f
	}
	return res, nil
}
