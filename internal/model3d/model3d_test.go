package model3d

import (
	"math"
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/geom3"
	"sfcacd/internal/keynav"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

func sample3(t *testing.T, s dist.Sampler3, seed uint64, order uint, n int) []geom3.Point3 {
	t.Helper()
	pts, err := dist.SampleUnique3(s, rng.New(seed), order, n)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestAssignBasics(t *testing.T) {
	const order = 4
	pts := sample3(t, dist.Uniform3, 1, order, 200)
	a, err := Assign(pts, sfc.HilbertND{N: 3}, order, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 200 || a.P != 8 || a.Side() != 16 {
		t.Fatalf("N=%d P=%d Side=%d", a.N(), a.P, a.Side())
	}
	// Curve-ordered and monotone ranks.
	h := sfc.HilbertND{N: 3}
	buf := make([]uint32, 3)
	var prev uint64
	for i, p := range a.Particles {
		buf[0], buf[1], buf[2] = p.X, p.Y, p.Z
		key := h.IndexND(order, buf)
		if i > 0 && key <= prev {
			t.Fatalf("not curve ordered at %d", i)
		}
		prev = key
		if i > 0 && a.Ranks[i] < a.Ranks[i-1] {
			t.Fatalf("ranks not monotone at %d", i)
		}
		if got := a.RankAt(p); got != a.Ranks[i] {
			t.Fatalf("RankAt(%v) = %d, want %d", p, got, a.Ranks[i])
		}
	}
	if a.RankAt(geom3.Pt3(15, 15, 0)) != -1 {
		// Cell may be occupied by chance; verify emptiness first.
		occupied := false
		for _, p := range pts {
			if p == geom3.Pt3(15, 15, 0) {
				occupied = true
			}
		}
		if !occupied {
			t.Error("empty cell did not return -1")
		}
	}
}

func TestAssignErrors(t *testing.T) {
	pts := []geom3.Point3{geom3.Pt3(0, 0, 0)}
	if _, err := Assign(pts, sfc.HilbertND{N: 2}, 3, 4); err == nil {
		t.Error("2D curve accepted")
	}
	if _, err := Assign(pts, sfc.HilbertND{N: 3}, 3, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Assign(nil, sfc.HilbertND{N: 3}, 3, 4); err == nil {
		t.Error("empty accepted")
	}
	dup := []geom3.Point3{geom3.Pt3(1, 1, 1), geom3.Pt3(1, 1, 1)}
	if _, err := Assign(dup, sfc.HilbertND{N: 3}, 3, 2); err == nil {
		t.Error("duplicates accepted")
	}
}

// bruteNFI3 is the quadratic reference.
func bruteNFI3(a *Assignment, topo topology.Topology, radius int, m geom.Metric) acd.Accumulator {
	var res acd.Accumulator
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if i == j {
				continue
			}
			if geom3.Dist(m, a.Particles[i], a.Particles[j]) <= radius {
				res.Add(topo.Distance(int(a.Ranks[i]), int(a.Ranks[j])))
			}
		}
	}
	return res
}

func TestNFIMatchesBruteForce(t *testing.T) {
	const order = 3
	pts := sample3(t, dist.Normal3, 2, order, 120)
	a, err := Assign(pts, sfc.MortonND{N: 3}, order, 8)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewTorus3D(1, sfc.HilbertND{N: 3})
	for _, radius := range []int{1, 2} {
		got := NFI(a, topo, NFIOptions{Radius: radius})
		want := bruteNFI3(a, topo, radius, geom.MetricChebyshev)
		if got != want {
			t.Fatalf("r=%d: NFI %+v != brute %+v", radius, got, want)
		}
	}
}

func TestNFIDeterministicAcrossWorkers(t *testing.T) {
	const order = 4
	pts := sample3(t, dist.Uniform3, 3, order, 300)
	a, err := Assign(pts, sfc.HilbertND{N: 3}, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewTorus3D(2, sfc.HilbertND{N: 3})
	base := NFI(a, topo, NFIOptions{Radius: 1, Workers: 1})
	for _, w := range []int{2, 5, 16} {
		if got := NFI(a, topo, NFIOptions{Radius: 1, Workers: w}); got != base {
			t.Fatalf("workers=%d diverged", w)
		}
	}
}

// bruteFFI3 is an independent full-scan far-field reference.
func bruteFFI3(a *Assignment, topo topology.Topology) FFIResult {
	var res FFIResult
	// Reimplement representatives directly: min rank per cell.
	reps := make([]map[geom3.Point3]int32, a.Order+1)
	for l := uint(0); l <= a.Order; l++ {
		reps[l] = make(map[geom3.Point3]int32)
	}
	for i, p := range a.Particles {
		for l := int(a.Order); l >= 0; l-- {
			shift := a.Order - uint(l)
			c := geom3.Pt3(p.X>>shift, p.Y>>shift, p.Z>>shift)
			if r, ok := reps[l][c]; !ok || a.Ranks[i] < r {
				reps[l][c] = a.Ranks[i]
			}
		}
	}
	for l := uint(1); l <= a.Order; l++ {
		for c, rep := range reps[l] {
			parent := reps[l-1][geom3.Pt3(c.X/2, c.Y/2, c.Z/2)]
			d := topo.Distance(int(rep), int(parent))
			res.Interpolation.Add(d)
			res.Anterpolation.Add(d)
		}
		if l < 2 {
			continue
		}
		for c, rep := range reps[l] {
			for q, other := range reps[l] {
				if geom3.Chebyshev(c, q) <= 1 {
					continue
				}
				if geom3.Chebyshev(geom3.Pt3(c.X/2, c.Y/2, c.Z/2), geom3.Pt3(q.X/2, q.Y/2, q.Z/2)) > 1 {
					continue
				}
				res.InteractionList.Add(topo.Distance(int(rep), int(other)))
			}
		}
	}
	return res
}

func TestFFIMatchesBruteForce(t *testing.T) {
	const order = 3
	pts := sample3(t, dist.Exponential3, 4, order, 100)
	for _, curve := range []sfc.NDCurve{sfc.HilbertND{N: 3}, sfc.RowMajorND{N: 3}} {
		a, err := Assign(pts, curve, order, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, topo := range []topology.Topology{
			topology.NewBus(8),
			topology.NewTorus3D(1, sfc.MortonND{N: 3}),
			topology.NewOctreeNet(1),
		} {
			got := FFI(a, topo, 0)
			want := bruteFFI3(a, topo)
			if got != want {
				t.Fatalf("%s/%s: FFI %+v != brute %+v", curve.Name(), topo.Name(), got, want)
			}
		}
	}
}

func TestHilbert3DBeatsRowMajor3D(t *testing.T) {
	// The 2D headline result carries to 3D: locality-preserving
	// ordering beats the raster scan for both interaction families.
	const order = 5
	pts := sample3(t, dist.Uniform3, 5, order, 3000)
	run := func(c sfc.NDCurve) (float64, float64) {
		a, err := Assign(pts, c, order, 64)
		if err != nil {
			t.Fatal(err)
		}
		topo := topology.NewTorus3D(2, c)
		return NFI(a, topo, NFIOptions{Radius: 1}).ACD(), FFI(a, topo, 0).Total().ACD()
	}
	hn, hf := run(sfc.HilbertND{N: 3})
	rn, rf := run(sfc.RowMajorND{N: 3})
	if hn >= rn {
		t.Errorf("3D NFI: hilbert %f >= rowmajor %f", hn, rn)
	}
	if hf >= rf {
		t.Errorf("3D FFI: hilbert %f >= rowmajor %f", hf, rf)
	}
}

func TestANNS3DKnownRowMajor(t *testing.T) {
	// RowMajorND{3}: along the fastest axis stretch 1, middle axis
	// stretch side, slow axis stretch side^2 — mean (1+s+s^2)/3.
	for order := uint(1); order <= 4; order++ {
		side := float64(geom3.Side(order))
		got, pairs := ANNS3D(sfc.RowMajorND{N: 3}, order, 1)
		want := (1 + side + side*side) / 3
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("order %d: rowmajor3d ANNS %f, want %f", order, got, want)
		}
		s := uint64(geom3.Side(order))
		if wantPairs := 3 * s * s * (s - 1); pairs != wantPairs {
			t.Fatalf("order %d: %d pairs, want %d", order, pairs, wantPairs)
		}
	}
}

func TestANNS3DOrderingMatches2DFinding(t *testing.T) {
	// Xu-Tirthapura's 2D finding carries over: Z and row-major beat
	// Hilbert and Gray under ANNS in 3D too.
	const order = 3
	vals := map[string]float64{}
	for _, c := range sfc.AllND(3) {
		mean, _ := ANNS3D(c, order, 1)
		vals[c.Name()] = mean
	}
	if !(vals["morton3d"] < vals["gray3d"] && vals["morton3d"] < vals["hilbert3d"]) {
		t.Errorf("3D ANNS: morton %f should beat gray %f and hilbert %f",
			vals["morton3d"], vals["gray3d"], vals["hilbert3d"])
	}
	if !(vals["rowmajor3d"] < vals["gray3d"]) {
		t.Errorf("3D ANNS: rowmajor %f should beat gray %f", vals["rowmajor3d"], vals["gray3d"])
	}
}

func TestANNS3DPanicsOn2DCurve(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("2D curve accepted")
		}
	}()
	ANNS3D(sfc.HilbertND{N: 2}, 2, 1)
}

// TestNFIKeysEngineMatchesTree pins the 3D keys engine (flat Morton3
// index) to the sparse-map oracle: identical accumulators across
// curves and radii.
func TestNFIKeysEngineMatchesTree(t *testing.T) {
	const order = 4
	pts := sample3(t, dist.Normal3, 7, order, 250)
	topo := topology.NewTorus3D(2, sfc.HilbertND{N: 3})
	for _, curve := range sfc.AllND(3) {
		a, err := Assign(pts, curve, order, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, radius := range []int{1, 2} {
			for _, m := range []geom.Metric{geom.MetricChebyshev, geom.MetricManhattan} {
				want := NFI(a, topo, NFIOptions{Radius: radius, Metric: m})
				got := NFI(a, topo, NFIOptions{Radius: radius, Metric: m, Engine: keynav.EngineKeys})
				if got != want {
					t.Fatalf("%s r=%d %s: keys %+v != tree %+v", curve.Name(), radius, m, got, want)
				}
			}
		}
	}
}
