package experiments

import (
	"context"
	"sfcacd/internal/acd"
	"sfcacd/internal/anns"
	"sfcacd/internal/clustering"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// MetricsResult is the metric landscape of the paper in one table: for
// each curve, every proximity metric discussed (ANNS, max stretch,
// all-pairs stretch, clustering) next to the application-aware ACD
// (NFI and FFI on a torus). The table makes the paper's motivation
// visible at a glance: the application-independent metrics disagree
// about the curves, so an application model is needed.
type MetricsResult struct {
	Curves []string
	// Application-independent metrics at ANNSOrder.
	ANNS, MaxStretch, AllPairs, Clusters []float64
	// Application-aware ACD at the Params scale.
	NFI, FFI []float64
}

// Matrix renders the comparison.
func (r MetricsResult) Matrix() *tablefmt.Matrix {
	m := &tablefmt.Matrix{
		Title:  "Metric landscape: proximity metrics vs application ACD",
		Corner: "SFC",
		Cols:   []string{"ANNS", "max stretch", "all-pairs", "clusters", "NFI ACD", "FFI ACD"},
		Rows:   r.Curves,
		// Minima markers make the disagreement visible: different
		// metrics crown different curves.
		MarkMinima: true,
	}
	for i := range r.Curves {
		m.Cells = append(m.Cells, []float64{
			r.ANNS[i], r.MaxStretch[i], r.AllPairs[i], r.Clusters[i], r.NFI[i], r.FFI[i],
		})
	}
	return m
}

// MetricsConfig parameterizes the landscape study.
type MetricsConfig struct {
	// Params drives the ACD columns.
	Params Params
	// MetricOrder is the grid order for the application-independent
	// metrics (full-grid computations).
	MetricOrder uint
	// QuerySide and QueryTrials drive the clustering column.
	QuerySide   uint32
	QueryTrials int
}

// RunMetrics computes the landscape.
func RunMetrics(ctx context.Context, cfg MetricsConfig) (MetricsResult, error) {
	if err := cfg.Params.Validate(); err != nil {
		return MetricsResult{}, err
	}
	if cfg.MetricOrder < 1 || cfg.MetricOrder > 10 || cfg.QueryTrials < 1 {
		return MetricsResult{}, errBadMetricsConfig
	}
	curves := sfc.All()
	n := len(curves)
	res := MetricsResult{
		Curves:     curveNames(curves),
		ANNS:       make([]float64, n),
		MaxStretch: make([]float64, n),
		AllPairs:   make([]float64, n),
		Clusters:   make([]float64, n),
		NFI:        make([]float64, n),
		FFI:        make([]float64, n),
	}
	// Sweep 1: the application-independent metric columns, one cell per
	// curve (each slot is written exactly once, so no reduction).
	if err := runCells(ctx, sweepPool(cfg.Params.Workers, n), n, func(c int) error {
		curve := curves[c]
		res.ANNS[c] = anns.Stretch(curve, cfg.MetricOrder, anns.Options{Radius: 1}).Mean
		res.MaxStretch[c] = anns.MaxStretch(curve, cfg.MetricOrder, anns.Options{Radius: 1})
		res.AllPairs[c] = anns.AllPairsStretch(curve, cfg.MetricOrder, 20000,
			rng.New(cfg.Params.Seed^uint64(c))).Mean
		res.Clusters[c] = clustering.AverageClusters(curve, cfg.MetricOrder, cfg.QuerySide,
			cfg.QueryTrials, rng.New(cfg.Params.Seed+uint64(c)))
		return nil
	}); err != nil {
		return MetricsResult{}, err
	}
	// Sweep 2: the ACD columns over trial x curve cells.
	type cellOut struct{ nfi, ffi float64 }
	groups := make([]shared[[]geom.Point], cfg.Params.Trials)
	outs := make([]cellOut, cfg.Params.Trials*n)
	pool := sweepPool(cfg.Params.Workers, len(outs))
	inner := innerWorkers(cfg.Params.Workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		c := cell % n
		trial := cell / n
		pts, err := groups[trial].get(func() ([]geom.Point, error) {
			return samplePoints(dist.Uniform, cfg.Params, trial)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		a, err := acd.Assign(pts, curve, cfg.Params.Order, cfg.Params.P())
		if err != nil {
			return err
		}
		// One-topology slice of the matrix path: identical results to the
		// direct NFI/FFI oracles (PR 2's exactness pin), routed through
		// the same fused contraction as the other experiment runners.
		topos := []topology.Topology{topology.NewTorus(cfg.Params.ProcOrder, curve)}
		engine := cfg.Params.engine()
		nfi := fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{
			Radius: cfg.Params.Radius, Metric: geom.MetricChebyshev, Workers: inner, Engine: engine,
		})
		ffi := fmmmodel.FFIMulti(a, topos, fmmmodel.FFIOptions{Workers: inner, Engine: engine})
		o := cellOut{nfi: nfi[0].ACD(), ffi: ffi[0].Total().ACD()}
		a.Release()
		outs[cell] = o
		return nil
	})
	if err != nil {
		return MetricsResult{}, err
	}
	f := 1 / float64(cfg.Params.Trials)
	for cell, o := range outs {
		c := cell % n
		res.NFI[c] += o.nfi * f
		res.FFI[c] += o.ffi * f
	}
	return res, nil
}

type metricsConfigError struct{}

func (metricsConfigError) Error() string { return "experiments: bad metrics configuration" }

var errBadMetricsConfig = metricsConfigError{}
