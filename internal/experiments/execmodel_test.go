package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunExecModel(t *testing.T) {
	res, err := RunExecModel(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 {
		t.Fatalf("curves %v", res.Curves)
	}
	const hilbert, rowmajor = 0, 3
	// The separated-curve validation: rowmajor's ACD is many times
	// hilbert's, and the modeled makespan agrees.
	if res.ACD[hilbert]*2 > res.ACD[rowmajor] {
		t.Fatalf("expected separated ACDs, got %f vs %f", res.ACD[hilbert], res.ACD[rowmajor])
	}
	if res.Makespan[hilbert] >= res.Makespan[rowmajor] {
		t.Errorf("makespan does not track ACD: hilbert %f >= rowmajor %f",
			res.Makespan[hilbert], res.Makespan[rowmajor])
	}
	if res.MaxSends[hilbert] >= res.MaxSends[rowmajor] {
		t.Errorf("max sends: hilbert %f >= rowmajor %f",
			res.MaxSends[hilbert], res.MaxSends[rowmajor])
	}
	var b strings.Builder
	if err := res.Matrix().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "modeled execution") {
		t.Error("title missing")
	}
	bad := testParams
	bad.Trials = 0
	if _, err := RunExecModel(context.Background(), bad); err == nil {
		t.Error("bad params accepted")
	}
}

func TestRunExecModelDeterministic(t *testing.T) {
	a, err := RunExecModel(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExecModel(context.Background(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Curves {
		if a.Makespan[c] != b.Makespan[c] {
			t.Fatal("RunExecModel not deterministic")
		}
	}
}
