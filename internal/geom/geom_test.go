package geom

import (
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Point
		want int
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{1, 0}, 1},
		{Point{0, 0}, Point{0, 1}, 1},
		{Point{0, 0}, Point{1, 1}, 2},
		{Point{3, 7}, Point{7, 3}, 8},
		{Point{10, 10}, Point{2, 4}, 14},
	}
	for _, c := range cases {
		if got := Manhattan(c.a, c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Manhattan(c.b, c.a); got != c.want {
			t.Errorf("Manhattan not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestChebyshev(t *testing.T) {
	cases := []struct {
		a, b Point
		want int
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{1, 1}, 1},
		{Point{0, 0}, Point{2, 1}, 2},
		{Point{5, 5}, Point{1, 9}, 4},
	}
	for _, c := range cases {
		if got := Chebyshev(c.a, c.b); got != c.want {
			t.Errorf("Chebyshev(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEuclideanSq(t *testing.T) {
	if got := EuclideanSq(Point{0, 0}, Point{3, 4}); got != 25 {
		t.Errorf("EuclideanSq = %d, want 25", got)
	}
}

func TestMetricDist(t *testing.T) {
	a, b := Point{0, 0}, Point{2, 3}
	if got := MetricManhattan.Dist(a, b); got != 5 {
		t.Errorf("manhattan dist = %d, want 5", got)
	}
	if got := MetricChebyshev.Dist(a, b); got != 3 {
		t.Errorf("chebyshev dist = %d, want 3", got)
	}
}

func TestMetricString(t *testing.T) {
	if MetricChebyshev.String() != "chebyshev" || MetricManhattan.String() != "manhattan" {
		t.Errorf("unexpected metric names %q %q", MetricChebyshev, MetricManhattan)
	}
	if Metric(9).String() != "metric(9)" {
		t.Errorf("fallback name = %q", Metric(9))
	}
}

func TestDistanceProperties(t *testing.T) {
	// Symmetry, identity, and triangle inequality for both metrics.
	check := func(ax, ay, bx, by, cx, cy uint16) bool {
		a := Point{uint32(ax), uint32(ay)}
		b := Point{uint32(bx), uint32(by)}
		c := Point{uint32(cx), uint32(cy)}
		for _, m := range []Metric{MetricChebyshev, MetricManhattan} {
			if m.Dist(a, b) != m.Dist(b, a) {
				return false
			}
			if m.Dist(a, a) != 0 {
				return false
			}
			if m.Dist(a, b) > m.Dist(a, c)+m.Dist(c, b) {
				return false
			}
		}
		// Chebyshev <= Manhattan <= 2*Chebyshev in 2D.
		ch, mh := Chebyshev(a, b), Manhattan(a, b)
		return ch <= mh && mh <= 2*ch
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSideCells(t *testing.T) {
	if Side(0) != 1 || Side(3) != 8 || Side(10) != 1024 {
		t.Fatalf("Side wrong: %d %d %d", Side(0), Side(3), Side(10))
	}
	if Cells(0) != 1 || Cells(3) != 64 || Cells(10) != 1<<20 {
		t.Fatalf("Cells wrong")
	}
}

func TestSidePanicsBeyond31(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Side(32) did not panic")
		}
	}()
	Side(32)
}

func TestInBounds(t *testing.T) {
	if !InBounds(0, 0, 4) || !InBounds(3, 3, 4) {
		t.Error("corner cells should be in bounds")
	}
	for _, bad := range [][2]int{{-1, 0}, {0, -1}, {4, 0}, {0, 4}} {
		if InBounds(bad[0], bad[1], 4) {
			t.Errorf("(%d,%d) should be out of bounds", bad[0], bad[1])
		}
	}
}

func TestCellIDRoundTrip(t *testing.T) {
	const side = 16
	seen := make(map[uint64]bool)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			p := Point{x, y}
			id := CellID(p, side)
			if seen[id] {
				t.Fatalf("duplicate cell id %d", id)
			}
			seen[id] = true
			if got := PointOfCellID(id, side); got != p {
				t.Fatalf("round trip %v -> %d -> %v", p, id, got)
			}
		}
	}
	if len(seen) != side*side {
		t.Fatalf("expected %d ids, got %d", side*side, len(seen))
	}
}

func TestVisitNeighborhoodMatchesBruteForce(t *testing.T) {
	const side = 9
	for _, m := range []Metric{MetricChebyshev, MetricManhattan} {
		for _, r := range []int{1, 2, 3} {
			for _, p := range []Point{{0, 0}, {4, 4}, {8, 8}, {0, 4}, {8, 3}} {
				want := make(map[Point]bool)
				for y := uint32(0); y < side; y++ {
					for x := uint32(0); x < side; x++ {
						q := Point{x, y}
						if q != p && m.Dist(p, q) <= r {
							want[q] = true
						}
					}
				}
				got := make(map[Point]bool)
				VisitNeighborhood(p, r, m, side, func(q Point) {
					if got[q] {
						t.Fatalf("%v visited twice (m=%v r=%d p=%v)", q, m, r, p)
					}
					got[q] = true
				})
				if len(got) != len(want) {
					t.Fatalf("m=%v r=%d p=%v: got %d neighbors, want %d", m, r, p, len(got), len(want))
				}
				for q := range want {
					if !got[q] {
						t.Fatalf("m=%v r=%d p=%v: missing neighbor %v", m, r, p, q)
					}
				}
			}
		}
	}
}

func TestVisitNeighborhoodZeroRadius(t *testing.T) {
	count := 0
	VisitNeighborhood(Point{2, 2}, 0, MetricChebyshev, 8, func(Point) { count++ })
	if count != 0 {
		t.Errorf("r=0 visited %d cells, want 0", count)
	}
}

func TestNeighborhoodSize(t *testing.T) {
	// Interior point on a large grid must see exactly NeighborhoodSize
	// neighbors.
	const side = 64
	p := Point{32, 32}
	for _, m := range []Metric{MetricChebyshev, MetricManhattan} {
		for r := 1; r <= 6; r++ {
			count := 0
			VisitNeighborhood(p, r, m, side, func(Point) { count++ })
			if count != NeighborhoodSize(r, m) {
				t.Errorf("m=%v r=%d: iterator saw %d, NeighborhoodSize says %d",
					m, r, count, NeighborhoodSize(r, m))
			}
		}
	}
	if NeighborhoodSize(0, MetricManhattan) != 0 {
		t.Error("NeighborhoodSize(0) != 0")
	}
	// r=1: Chebyshev ball has the paper's 8 edge/corner neighbors.
	if NeighborhoodSize(1, MetricChebyshev) != 8 {
		t.Errorf("Chebyshev r=1 size = %d, want 8", NeighborhoodSize(1, MetricChebyshev))
	}
	if NeighborhoodSize(1, MetricManhattan) != 4 {
		t.Errorf("Manhattan r=1 size = %d, want 4", NeighborhoodSize(1, MetricManhattan))
	}
}

func TestPointString(t *testing.T) {
	if s := (Point{3, 5}).String(); s != "(3,5)" {
		t.Errorf("String = %q", s)
	}
}

// TestVisitUpperNeighborhoodPartition: the union of each point's upper
// neighborhood and its mirror (upper visits *of* other points that land
// on it) is exactly VisitNeighborhood — the upper traversal partitions
// the symmetric relation into unordered pairs.
func TestVisitUpperNeighborhoodPartition(t *testing.T) {
	for _, m := range []Metric{MetricChebyshev, MetricManhattan} {
		for _, r := range []int{1, 2, 3} {
			const side = 7
			full := map[[4]uint32]int{}
			half := map[[4]uint32]int{}
			for y := uint32(0); y < side; y++ {
				for x := uint32(0); x < side; x++ {
					p := Pt(x, y)
					VisitNeighborhood(p, r, m, side, func(q Point) {
						full[[4]uint32{p.X, p.Y, q.X, q.Y}]++
					})
					VisitUpperNeighborhood(p, r, m, side, func(q Point) {
						half[[4]uint32{p.X, p.Y, q.X, q.Y}]++
						half[[4]uint32{q.X, q.Y, p.X, p.Y}]++
					})
				}
			}
			if len(full) != len(half) {
				t.Fatalf("%v r=%d: %d ordered visits from full, %d from upper closure", m, r, len(full), len(half))
			}
			for k, n := range full {
				if half[k] != n {
					t.Fatalf("%v r=%d: visit %v count %d via upper, want %d", m, r, k, half[k], n)
				}
			}
		}
	}
}

// TestVisitUpperNeighborhoodBoundary pins the reference clamping
// semantics at the domain edges against a brute-force oracle: the
// key-space engine's dilated-integer enumeration must clamp exactly
// the same way, so any change here is a breaking change for it. Cases
// include cells within radius of every edge and corner, radius equal
// to the side, and radius beyond it.
func TestVisitUpperNeighborhoodBoundary(t *testing.T) {
	for _, side := range []uint32{1, 2, 4, 8} {
		for _, m := range []Metric{MetricChebyshev, MetricManhattan} {
			for _, r := range []int{1, 2, int(side) - 1, int(side), int(side) + 2, 2 * int(side)} {
				if r < 1 {
					continue
				}
				for y := uint32(0); y < side; y++ {
					for x := uint32(0); x < side; x++ {
						p := Pt(x, y)
						// Brute-force oracle: every in-bounds q after p in
						// row-major order within distance r.
						want := map[Point]bool{}
						for qy := uint32(0); qy < side; qy++ {
							for qx := uint32(0); qx < side; qx++ {
								q := Pt(qx, qy)
								after := qy > y || (qy == y && qx > x)
								if after && m.Dist(p, q) <= r {
									want[q] = true
								}
							}
						}
						got := map[Point]bool{}
						VisitUpperNeighborhood(p, r, m, side, func(q Point) {
							if got[q] {
								t.Fatalf("side=%d %v r=%d p=%v: q=%v visited twice", side, m, r, p, q)
							}
							got[q] = true
						})
						if len(got) != len(want) {
							t.Fatalf("side=%d %v r=%d p=%v: visited %d cells, want %d", side, m, r, p, len(got), len(want))
						}
						for q := range want {
							if !got[q] {
								t.Fatalf("side=%d %v r=%d p=%v: missed %v", side, m, r, p, q)
							}
						}
					}
				}
			}
		}
	}
}

// TestVisitUpperNeighborhoodOrder pins the exact visit sequence (row
// by row upward, left to right): deterministic reduction order
// elsewhere relies on it.
func TestVisitUpperNeighborhoodOrder(t *testing.T) {
	var seq []Point
	VisitUpperNeighborhood(Pt(1, 1), 1, MetricChebyshev, 4, func(q Point) {
		seq = append(seq, q)
	})
	want := []Point{Pt(2, 1), Pt(0, 2), Pt(1, 2), Pt(2, 2)}
	if len(seq) != len(want) {
		t.Fatalf("visited %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("visit %d = %v, want %v (full: %v)", i, seq[i], want[i], seq)
		}
	}
	// Radius >= side from the origin covers the whole remaining grid.
	seq = seq[:0]
	VisitUpperNeighborhood(Pt(0, 0), 4, MetricChebyshev, 2, func(q Point) {
		seq = append(seq, q)
	})
	want = []Point{Pt(1, 0), Pt(0, 1), Pt(1, 1)}
	for i := range want {
		if i >= len(seq) || seq[i] != want[i] {
			t.Fatalf("origin sweep visited %v, want %v", seq, want)
		}
	}
}
