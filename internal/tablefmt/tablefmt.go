// Package tablefmt renders the experiment results in the shapes the
// paper uses: matrix tables with row/column minima highlighted (the
// boldface/italics convention of Tables I and II) and aligned series
// tables for the figures. It also emits CSV for external plotting.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Matrix is a 2D table of float64 cells with row and column headers,
// e.g. processor-order SFC x particle-order SFC.
type Matrix struct {
	// Title is printed above the table.
	Title string
	// Corner labels the row-header column.
	Corner string
	// Cols are the column headers.
	Cols []string
	// Rows are the row headers.
	Rows []string
	// Cells[r][c] are the values; len(Cells) == len(Rows), each row
	// len(Cols).
	Cells [][]float64
	// MarkMinima, when set, marks each row minimum with '*' and each
	// column minimum with '†', mirroring the paper's bold/italics.
	MarkMinima bool
	// Precision is the number of decimals (default 3).
	Precision int
}

// Render writes the aligned ASCII table.
func (m *Matrix) Render(w io.Writer) error {
	if len(m.Cells) != len(m.Rows) {
		return fmt.Errorf("tablefmt: %d cell rows for %d row headers", len(m.Cells), len(m.Rows))
	}
	prec := m.Precision
	if prec == 0 {
		prec = 3
	}
	rowMin := make([]float64, len(m.Rows))
	colMin := make([]float64, len(m.Cols))
	for c := range colMin {
		colMin[c] = inf()
	}
	for r, row := range m.Cells {
		if len(row) != len(m.Cols) {
			return fmt.Errorf("tablefmt: row %d has %d cells for %d columns", r, len(row), len(m.Cols))
		}
		rowMin[r] = inf()
		for c, v := range row {
			if v < rowMin[r] {
				rowMin[r] = v
			}
			if v < colMin[c] {
				colMin[c] = v
			}
		}
	}
	cell := func(r, c int) string {
		v := m.Cells[r][c]
		s := fmt.Sprintf("%.*f", prec, v)
		if m.MarkMinima {
			if v == rowMin[r] {
				s += "*"
			}
			if v == colMin[c] {
				s += "†"
			}
		}
		return s
	}
	// Column widths.
	widths := make([]int, len(m.Cols)+1)
	widths[0] = len(m.Corner)
	for _, rh := range m.Rows {
		if len(rh) > widths[0] {
			widths[0] = len(rh)
		}
	}
	for c, ch := range m.Cols {
		widths[c+1] = displayLen(ch)
		for r := range m.Rows {
			if l := displayLen(cell(r, c)); l > widths[c+1] {
				widths[c+1] = l
			}
		}
	}
	var b strings.Builder
	if m.Title != "" {
		fmt.Fprintf(&b, "%s\n", m.Title)
	}
	pad := func(s string, w int) string {
		return s + strings.Repeat(" ", w-displayLen(s))
	}
	b.WriteString(pad(m.Corner, widths[0]))
	for c, ch := range m.Cols {
		b.WriteString("  " + pad(ch, widths[c+1]))
	}
	b.WriteByte('\n')
	total := widths[0]
	for _, w := range widths[1:] {
		total += 2 + w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for r, rh := range m.Rows {
		b.WriteString(pad(rh, widths[0]))
		for c := range m.Cols {
			b.WriteString("  " + pad(cell(r, c), widths[c+1]))
		}
		b.WriteByte('\n')
	}
	if m.MarkMinima {
		b.WriteString("(* = row minimum, † = column minimum)\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// displayLen counts runes, so the dagger marker aligns.
func displayLen(s string) int { return len([]rune(s)) }

func inf() float64 { return 1e308 }

// Series is one named line of a figure: Y values over the shared X
// axis of a SeriesTable.
type Series struct {
	Name string
	Y    []float64
}

// SeriesTable renders figure data: one row per X value, one column per
// series.
type SeriesTable struct {
	// Title is printed above the table.
	Title string
	// XLabel heads the X column.
	XLabel string
	// X holds the shared axis values, formatted with %g.
	X []float64
	// Series are the lines.
	Series []Series
	// Precision is the number of decimals (default 3).
	Precision int
}

// Render writes the aligned ASCII series table.
func (st *SeriesTable) Render(w io.Writer) error {
	prec := st.Precision
	if prec == 0 {
		prec = 3
	}
	for _, s := range st.Series {
		if len(s.Y) != len(st.X) {
			return fmt.Errorf("tablefmt: series %q has %d values for %d x points", s.Name, len(s.Y), len(st.X))
		}
	}
	headers := make([]string, len(st.Series)+1)
	headers[0] = st.XLabel
	for i, s := range st.Series {
		headers[i+1] = s.Name
	}
	rows := make([][]string, len(st.X))
	for r, x := range st.X {
		row := make([]string, len(headers))
		row[0] = fmt.Sprintf("%g", x)
		for c, s := range st.Series {
			row[c+1] = fmt.Sprintf("%.*f", prec, s.Y[r])
		}
		rows[r] = row
	}
	var b strings.Builder
	if st.Title != "" {
		fmt.Fprintf(&b, "%s\n", st.Title)
	}
	widths := make([]int, len(headers))
	for c, h := range headers {
		widths[c] = len(h)
		for _, row := range rows {
			if l := len(row[c]); l > widths[c] {
				widths[c] = l
			}
		}
	}
	writeRow := func(row []string) {
		for c, v := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[c]-len(v)))
			b.WriteString(v)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes a header line and rows of comma-separated values.
// Values must not contain commas or newlines (all our emitters use
// plain identifiers and numbers).
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	if _, err := io.WriteString(w, strings.Join(header, ",")+"\n"); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("tablefmt: csv row has %d fields for %d headers", len(row), len(header))
		}
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}
