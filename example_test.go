package sfcacd_test

import (
	"fmt"

	"sfcacd"
)

// ExampleAssign shows the paper's §IV pipeline: order particles along
// a curve, chunk them, distribute chunks to processors.
func ExampleAssign() {
	pts := []sfcacd.Point{
		sfcacd.Pt(0, 0), sfcacd.Pt(7, 7), sfcacd.Pt(1, 0), sfcacd.Pt(6, 7),
	}
	a, err := sfcacd.Assign(pts, sfcacd.Hilbert, 3, 2)
	if err != nil {
		panic(err)
	}
	for i, p := range a.Particles {
		fmt.Printf("%v -> rank %d\n", p, a.Ranks[i])
	}
	// Output:
	// (0,0) -> rank 0
	// (1,0) -> rank 0
	// (6,7) -> rank 1
	// (7,7) -> rank 1
}

// ExampleNFI computes the near-field Average Communicated Distance of
// a fully occupied 2x2 grid on a bus: the worked example from the
// model's unit tests.
func ExampleNFI() {
	pts := []sfcacd.Point{
		sfcacd.Pt(0, 0), sfcacd.Pt(1, 0), sfcacd.Pt(0, 1), sfcacd.Pt(1, 1),
	}
	a, _ := sfcacd.Assign(pts, sfcacd.Hilbert, 1, 4)
	bus := sfcacd.NewBus(4)
	acc := sfcacd.NFI(a, bus, sfcacd.NFIOptions{Radius: 1})
	fmt.Printf("events=%d acd=%.3f\n", acc.Count, acc.ACD())
	// Output:
	// events=12 acd=1.667
}

// ExampleANNS reproduces the row-major closed form (side+1)/2 from
// Xu and Tirthapura's analysis.
func ExampleANNS() {
	res := sfcacd.ANNS(sfcacd.RowMajor, 3, sfcacd.ANNSOptions{Radius: 1})
	fmt.Printf("%.1f\n", res.Mean)
	// Output:
	// 4.5
}

// ExampleCurve_Index shows the Hilbert curve's order-1 visit sequence.
func ExampleCurve_Index() {
	for d := uint64(0); d < 4; d++ {
		fmt.Println(sfcacd.Hilbert.Point(1, d))
	}
	// Output:
	// (0,0)
	// (0,1)
	// (1,1)
	// (1,0)
}

// ExampleNewTorus demonstrates processor-order placement: with Hilbert
// placement consecutive ranks are physically adjacent.
func ExampleNewTorus() {
	torus := sfcacd.NewTorus(2, sfcacd.Hilbert) // 16 processors, 4x4
	fmt.Println(torus.Distance(0, 1), torus.Distance(0, 15))
	// Output:
	// 1 1
}

// ExampleBroadcast evaluates a §VII primitive in advance of any
// implementation work.
func ExampleBroadcast() {
	acc := sfcacd.Broadcast(sfcacd.NewHypercube(4), 0)
	fmt.Printf("%d sends, acd=%.0f\n", acc.Count, acc.ACD())
	// Output:
	// 15 sends, acd=1
}

// ExampleSolveDirect computes the mutual potential of two unit
// charges.
func ExampleSolveDirect() {
	sys := sfcacd.NBodySystem{
		Pos: []complex128{0.25 + 0.5i, 0.75 + 0.5i},
		Q:   []float64{1, 1},
	}
	res, _ := sfcacd.SolveDirect(sys, 1)
	fmt.Printf("%.4f\n", res.Potential[0])
	// Output:
	// -0.6931
}

// ExampleBuildLinearQuadtree builds and balances an adaptive tree.
func ExampleBuildLinearQuadtree() {
	pts := []sfcacd.Point{sfcacd.Pt(128, 128), sfcacd.Pt(129, 129)}
	tree := sfcacd.BuildLinearQuadtree(8, pts, 1)
	fmt.Println("balanced before:", tree.IsBalanced())
	fmt.Println("balanced after:", tree.Balance().IsBalanced())
	// Output:
	// balanced before: false
	// balanced after: true
}
