// Quickstart: evaluate the Average Communicated Distance of every
// space-filling curve for an FMM-style workload on a torus, and print
// which curve a practitioner should pick.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sfcacd"
)

func main() {
	const (
		order     = 9 // 512x512 spatial resolution
		particles = 20000
		procOrder = 5 // 1,024 processors on a 32x32 torus
	)
	// 1. Draw a reproducible particle set.
	pts, err := sfcacd.SampleUnique(sfcacd.Uniform, sfcacd.NewRand(42), order, particles)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d uniform particles on a %dx%d grid, %d-processor torus\n\n",
		particles, 1<<order, 1<<order, 1<<(2*procOrder))
	fmt.Printf("%-9s  %10s  %10s\n", "curve", "NFI ACD", "FFI ACD")

	best, bestVal := "", 0.0
	for _, curve := range sfcacd.Curves() {
		// 2. Order the particles along the curve and distribute them
		//    over the processors (the paper's §IV pipeline).
		a, err := sfcacd.Assign(pts, curve, order, 1<<(2*procOrder))
		if err != nil {
			log.Fatal(err)
		}
		// 3. Rank the torus's processors with the same curve.
		torus := sfcacd.NewTorus(procOrder, curve)
		// 4. Compute the ACD of the FMM's two communication families.
		nfi := sfcacd.NFI(a, torus, sfcacd.NFIOptions{Radius: 1})
		ffi := sfcacd.FFI(a, torus, sfcacd.FFIOptions{}).Total()
		fmt.Printf("%-9s  %10.3f  %10.3f\n", curve.Name(), nfi.ACD(), ffi.ACD())
		if total := nfi.ACD() + ffi.ACD(); best == "" || total < bestVal {
			best, bestVal = curve.Name(), total
		}
	}
	fmt.Printf("\nrecommendation: order particles and processors with the %s curve\n", best)
}
