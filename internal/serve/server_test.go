package serve

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sfcacd/internal/experiments"
	"sfcacd/internal/obs"
	"sfcacd/internal/resultcache"
)

// tinyParams is a configuration the real runners finish in
// milliseconds; integration tests use it so the race-enabled suite
// stays fast.
var tinyParams = experiments.Params{Particles: 400, Order: 5, ProcOrder: 2, Radius: 1, Trials: 1, Seed: 11}

// keyOf mirrors Server.Do's key derivation for white-box assertions.
func keyOf(experiment string, p experiments.Params) resultcache.Key {
	return resultcache.KeyFor(experiment, p.CanonicalKey(), experiments.ResultSchemaVersion)
}

// fakeOutput is what stubbed runners return; an empty result set is
// enough to exercise marshaling and caching.
func fakeOutput(p experiments.Params) *experiments.Output {
	return &experiments.Output{Params: p, Result: experiments.Table12Set{}}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// refsOf returns the in-flight call's reference count, or -1 when no
// call is published for the key.
func refsOf(s *Server, k resultcache.Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.inflight[k]; ok {
		return c.refs
	}
	return -1
}

// TestCoalescingExactlyOneComputation pins the coalescing contract
// deterministically: while one computation is in flight, any number of
// identical requests join it, the runner executes exactly once, and
// every waiter receives the same entry.
func TestCoalescingExactlyOneComputation(t *testing.T) {
	const clients = 64
	s := New(Options{Workers: 4})
	var runs atomic.Int64
	release := make(chan struct{})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		runs.Add(1)
		select {
		case <-release:
			return fakeOutput(p), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	compBefore := obs.GetCounter("serve.computations").Value()

	var wg sync.WaitGroup
	responses := make([]Response, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = s.Do(context.Background(), "table12", tinyParams)
		}(i)
	}
	// Every client is a joined waiter before the computation finishes.
	key := keyOf("table12", tinyParams)
	waitFor(t, "all clients to join the in-flight call", func() bool { return refsOf(s, key) == clients })
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Errorf("runner executed %d times, want exactly 1", got)
	}
	if got := obs.GetCounter("serve.computations").Value() - compBefore; got != 1 {
		t.Errorf("serve.computations delta = %d, want 1", got)
	}
	var miss, coalesced int
	for i := range responses {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		switch responses[i].Status {
		case StatusMiss:
			miss++
		case StatusCoalesced:
			coalesced++
		default:
			t.Errorf("client %d: status %q", i, responses[i].Status)
		}
		if !bytes.Equal(responses[i].Entry.Result, responses[0].Entry.Result) ||
			responses[i].Entry.Key != responses[0].Entry.Key {
			t.Errorf("client %d received a different entry", i)
		}
	}
	if miss != 1 || coalesced != clients-1 {
		t.Errorf("miss=%d coalesced=%d, want 1/%d", miss, coalesced, clients-1)
	}
}

// TestDistinctKeysComputeIndependently: distinct parameter sets never
// share a computation — one runner execution per distinct key, even
// with many concurrent duplicates of each.
func TestDistinctKeysComputeIndependently(t *testing.T) {
	const keys, dup = 8, 8
	s := New(Options{Workers: 4})
	var perKey sync.Map // canonical key -> *atomic.Int64
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		v, _ := perKey.LoadOrStore(p.CanonicalKey(), new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
		return fakeOutput(p), nil
	}
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		p := tinyParams
		p.Seed = uint64(1000 + k)
		for d := 0; d < dup; d++ {
			wg.Add(1)
			go func(p experiments.Params) {
				defer wg.Done()
				if _, err := s.Do(context.Background(), "table12", p); err != nil {
					t.Errorf("Do: %v", err)
				}
			}(p)
		}
	}
	wg.Wait()
	distinct := 0
	perKey.Range(func(_, v any) bool {
		distinct++
		if got := v.(*atomic.Int64).Load(); got != 1 {
			t.Errorf("a key computed %d times, want 1", got)
		}
		return true
	})
	if distinct != keys {
		t.Errorf("%d distinct keys computed, want %d", distinct, keys)
	}
}

// TestHitByteIdenticalToMiss runs a real experiment once and asserts
// the cached replay is byte-for-byte the entry the miss produced.
func TestHitByteIdenticalToMiss(t *testing.T) {
	s := New(Options{Workers: 2})
	first, err := s.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != StatusMiss {
		t.Fatalf("first request status %q, want miss", first.Status)
	}
	second, err := s.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != StatusHit {
		t.Fatalf("second request status %q, want hit", second.Status)
	}
	if second.Entry.Key != first.Entry.Key ||
		second.Entry.Experiment != first.Entry.Experiment ||
		!bytes.Equal(second.Entry.Params, first.Entry.Params) ||
		!bytes.Equal(second.Entry.Result, first.Entry.Result) ||
		!bytes.Equal(second.Entry.Manifest, first.Entry.Manifest) {
		t.Error("cache hit is not byte-identical to the miss that produced it")
	}
	if len(first.Entry.Result) == 0 {
		t.Error("empty result payload")
	}
}

// TestOverloadRejection: with one worker and a queue bound of one, a
// third concurrent computation is rejected immediately with the
// observed depth.
func TestOverloadRejection(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		select {
		case <-release:
			return fakeOutput(p), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	rejBefore := obs.GetCounter("serve.rejections").Value()

	pA, pB, pC := tinyParams, tinyParams, tinyParams
	pA.Seed, pB.Seed, pC.Seed = 1, 2, 3
	var wg sync.WaitGroup
	for _, p := range []experiments.Params{pA, pB} {
		wg.Add(1)
		go func(p experiments.Params) {
			defer wg.Done()
			if _, err := s.Do(context.Background(), "table12", p); err != nil {
				t.Errorf("admitted request failed: %v", err)
			}
		}(p)
	}
	// A holds the worker slot, B waits in the queue: admission depth 2.
	waitFor(t, "both computations admitted", func() bool { return s.queued.Load() == 2 })

	_, err := s.Do(context.Background(), "table12", pC)
	var overload *OverloadError
	if !errors.As(err, &overload) {
		t.Fatalf("third request error = %v, want OverloadError", err)
	}
	if overload.QueueDepth != 2 {
		t.Errorf("rejection reported depth %d, want 2", overload.QueueDepth)
	}
	if got := obs.GetCounter("serve.rejections").Value() - rejBefore; got != 1 {
		t.Errorf("serve.rejections delta = %d, want 1", got)
	}
	close(release)
	wg.Wait()
}

// TestClientDisconnectCancelsComputation: when the only waiter
// abandons, the computation's context is canceled and a later request
// starts fresh.
func TestClientDisconnectCancelsComputation(t *testing.T) {
	s := New(Options{Workers: 1})
	var runs atomic.Int64
	canceled := make(chan struct{})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		if runs.Add(1) == 1 {
			<-ctx.Done() // simulate a long computation that honors ctx
			close(canceled)
			return nil, ctx.Err()
		}
		return fakeOutput(p), nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, "table12", tinyParams)
		done <- err
	}()
	waitFor(t, "computation to start", func() bool { return runs.Load() == 1 })
	cancel()

	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned request returned %v, want context.Canceled", err)
	}
	select {
	case <-canceled:
	case <-time.After(10 * time.Second):
		t.Fatal("computation context was never canceled after the last waiter left")
	}

	// The abandoned call is unpublished: a fresh request recomputes.
	resp, err := s.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusMiss || runs.Load() != 2 {
		t.Errorf("retry after abandon: status=%q runs=%d, want miss/2", resp.Status, runs.Load())
	}
}

// TestAbandonOneWaiterKeepsOthers: an impatient client dropping out
// must not cancel a computation other clients still wait on.
func TestAbandonOneWaiterKeepsOthers(t *testing.T) {
	s := New(Options{Workers: 1})
	var runs atomic.Int64
	release := make(chan struct{})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		runs.Add(1)
		select {
		case <-release:
			return fakeOutput(p), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	key := keyOf("table12", tinyParams)

	impatientCtx, cancelImpatient := context.WithCancel(context.Background())
	impatientDone := make(chan error, 1)
	go func() {
		_, err := s.Do(impatientCtx, "table12", tinyParams)
		impatientDone <- err
	}()
	waitFor(t, "leader to publish its call", func() bool { return refsOf(s, key) == 1 })

	patientDone := make(chan Response, 1)
	go func() {
		resp, err := s.Do(context.Background(), "table12", tinyParams)
		if err != nil {
			t.Errorf("patient client: %v", err)
		}
		patientDone <- resp
	}()
	waitFor(t, "second client to join", func() bool { return refsOf(s, key) == 2 })

	cancelImpatient()
	if err := <-impatientDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient client returned %v, want context.Canceled", err)
	}
	close(release)
	resp := <-patientDone
	if resp.Status != StatusCoalesced {
		t.Errorf("patient client status %q, want coalesced", resp.Status)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner executed %d times, want 1", got)
	}
}

// TestRealCoalescing64 is the acceptance check with the real runner
// under the race detector: 64 concurrent identical requests execute
// the experiment exactly once (verified by the obs counter) and all
// receive byte-identical entries.
func TestRealCoalescing64(t *testing.T) {
	const clients = 64
	s := New(Options{Workers: 2})
	compBefore := obs.GetCounter("serve.computations").Value()

	p := tinyParams
	p.Particles, p.Order, p.Trials = 2000, 6, 2 // a few ms: long enough to overlap
	var wg sync.WaitGroup
	responses := make([]Response, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Do(context.Background(), "table12", p)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()

	if got := obs.GetCounter("serve.computations").Value() - compBefore; got != 1 {
		t.Errorf("serve.computations delta = %d, want exactly 1 for 64 identical requests", got)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(responses[i].Entry.Result, responses[0].Entry.Result) {
			t.Errorf("client %d received a different result payload", i)
		}
	}
}

// TestDiskPromotion: a second server over the same disk store serves a
// hit without recomputation, and a corrupt on-disk entry degrades to
// recomputation instead of an error.
func TestDiskPromotion(t *testing.T) {
	disk, err := resultcache.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Workers: 1, Disk: disk})
	first, err := warm.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatal(err)
	}

	diskHitsBefore := obs.GetCounter("serve.disk_hits").Value()
	cold := New(Options{Workers: 1, Disk: disk})
	var runs atomic.Int64
	cold.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		runs.Add(1)
		return fakeOutput(p), nil
	}
	resp, err := cold.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusHit || runs.Load() != 0 {
		t.Errorf("disk-backed request: status=%q runs=%d, want hit without recomputation", resp.Status, runs.Load())
	}
	if !bytes.Equal(resp.Entry.Result, first.Entry.Result) {
		t.Error("disk-served entry differs from the original computation")
	}
	if got := obs.GetCounter("serve.disk_hits").Value() - diskHitsBefore; got != 1 {
		t.Errorf("serve.disk_hits delta = %d, want 1", got)
	}
}

func TestDoErrors(t *testing.T) {
	s := New(Options{Workers: 1})
	if _, err := s.Do(context.Background(), "nonesuch", tinyParams); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("unknown experiment error = %v, want ErrUnknownExperiment", err)
	}
	bad := tinyParams
	bad.Particles = 0
	if _, err := s.Do(context.Background(), "table12", bad); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("invalid params error = %v, want ErrInvalidParams", err)
	}
}
