// Package sfc implements the discrete space-filling curves studied in
// the paper — the Hilbert curve, the Z-curve (Morton order), the Gray
// order, and the row-major order — plus a snake-scan extension and
// n-dimensional Hilbert/Morton generalizations.
//
// A curve of order k visits every cell of the 2^k x 2^k spatial
// resolution exactly once, assigning each cell a unique index in
// [0, 4^k). Index and Point are exact inverses for every curve.
package sfc

import (
	"fmt"
	"sort"

	"sfcacd/internal/geom"
)

// MaxOrder is the largest supported curve order: coordinates fit in
// uint32 and indices in uint64 up to this order.
const MaxOrder = 31

// Curve maps between 2D cell coordinates and positions along a
// space-filling curve of a given order.
type Curve interface {
	// Name returns the curve's canonical lower-case name.
	Name() string
	// Index returns the position of p along the curve of the given
	// order, in [0, 4^order). p must lie on the grid of side 2^order.
	Index(order uint, p geom.Point) uint64
	// Point returns the cell visited at position d along the curve of
	// the given order. d must be in [0, 4^order).
	Point(order uint, d uint64) geom.Point
}

func checkOrder(order uint) {
	if order > MaxOrder {
		panic(fmt.Sprintf("sfc: order %d exceeds MaxOrder %d", order, MaxOrder))
	}
}

func checkPoint(order uint, p geom.Point) {
	checkOrder(order)
	side := geom.Side(order)
	if p.X >= side || p.Y >= side {
		panic(fmt.Sprintf("sfc: point %v outside %dx%d grid", p, side, side))
	}
}

func checkIndex(order uint, d uint64) {
	checkOrder(order)
	if d >= geom.Cells(order) {
		panic(fmt.Sprintf("sfc: index %d outside curve of order %d", d, order))
	}
}

// Canonical curve singletons.
var (
	// Hilbert is the Hilbert curve (Hilbert 1891), the recursively
	// rotated Peano-family curve of Figure 1(a).
	Hilbert Curve = hilbertCurve{}
	// Morton is the Z-curve (Morton 1966): bit interleaving, Figure 1(b).
	Morton Curve = mortonCurve{}
	// Gray is the Gray order (Gray-coded Z-curve), Figure 1(c).
	Gray Curve = grayCurve{}
	// RowMajor is the simple row/column-major scan, Figure 1(d).
	RowMajor Curve = rowMajorCurve{}
	// Snake is the boustrophedon scan — the discrete analog of the
	// "snake scan" continuous curve referenced by Xu and Tirthapura.
	// It is an extension beyond the paper's four curves.
	Snake Curve = snakeCurve{}
)

// All returns the four curves evaluated in the paper, in the paper's
// column order (Hilbert, Z, Gray, Row major).
func All() []Curve {
	return []Curve{Hilbert, Morton, Gray, RowMajor}
}

// Extended returns All plus the extension curves (snake scan and the
// Moore loop).
func Extended() []Curve {
	return append(All(), Snake, Moore)
}

// ByName resolves a curve by its Name (or common aliases). It returns
// an error for unknown names.
func ByName(name string) (Curve, error) {
	switch name {
	case "hilbert":
		return Hilbert, nil
	case "morton", "z", "zcurve", "z-curve":
		return Morton, nil
	case "gray", "graycode", "gray-code":
		return Gray, nil
	case "rowmajor", "row-major", "row":
		return RowMajor, nil
	case "snake", "boustrophedon":
		return Snake, nil
	case "moore":
		return Moore, nil
	}
	return nil, fmt.Errorf("sfc: unknown curve %q", name)
}

// Names lists the canonical names of Extended curves, sorted.
func Names() []string {
	cs := Extended()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name()
	}
	sort.Strings(names)
	return names
}

// SortPoints returns the indices 0..len(pts)-1 permuted so that
// pts[perm[0]], pts[perm[1]], ... follow the curve's linear order at
// the given resolution order. Ties are impossible when each cell holds
// at most one particle; duplicate cells, if present, keep their input
// order (the sort is stable).
func SortPoints(c Curve, order uint, pts []geom.Point) []int {
	perm, _ := SortPointsKeys(c, order, pts)
	return perm
}

// SortPointsKeys is SortPoints but also returns the curve keys it
// computed (keys[i] is the index of pts[i], input order — not sorted),
// so callers that need the keys afterwards, like acd.Assign's
// duplicate-cell detection, avoid re-encoding every particle.
func SortPointsKeys(c Curve, order uint, pts []geom.Point) ([]int, []uint64) {
	keys := make([]uint64, len(pts))
	for i, p := range pts {
		keys[i] = c.Index(order, p)
	}
	perm := make([]int, len(pts))
	for i := range perm {
		perm[i] = i
	}
	SortPermByKeys(perm, keys)
	return perm, keys
}

// Walk calls fn for every position d = 0..4^order-1 with the cell the
// curve visits at d. It is the curve-as-path view used by renderers and
// adjacency tests.
func Walk(c Curve, order uint, fn func(d uint64, p geom.Point)) {
	n := geom.Cells(order)
	for d := uint64(0); d < n; d++ {
		fn(d, c.Point(order, d))
	}
}
