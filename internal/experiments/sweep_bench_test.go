package experiments

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkTable12Sweep measures the full Tables I-II sweep at a small
// scale under different worker counts; on a multi-core runner the
// workers=4 case should approach a linear speedup over workers=1.
func BenchmarkTable12Sweep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := Params{
				Particles: 2000, Order: 7, ProcOrder: 3,
				Radius: 1, Trials: 2, Seed: 2013, Workers: workers,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunTable12(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
