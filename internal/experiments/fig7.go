package experiments

import (
	"context"
	"fmt"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// Fig7Result holds the processor-count sweep of Figure 7 on a torus:
// ACD as a function of p, per curve (same curve for particle and
// processor order).
type Fig7Result struct {
	// ProcCounts are the swept processor counts (powers of 4).
	ProcCounts []int
	// Curves are the curve names.
	Curves []string
	// NFI[c][i] and FFI[c][i] are the ACD values of curve c at
	// ProcCounts[i].
	NFI [][]float64
	FFI [][]float64
}

// SeriesTables renders the two panels of Figure 7.
func (f Fig7Result) SeriesTables() (nfi, ffi *tablefmt.SeriesTable) {
	mk := func(title string, cells [][]float64) *tablefmt.SeriesTable {
		st := &tablefmt.SeriesTable{Title: title, XLabel: "processors"}
		for _, p := range f.ProcCounts {
			st.X = append(st.X, float64(p))
		}
		for c, name := range f.Curves {
			st.Series = append(st.Series, tablefmt.Series{Name: name, Y: cells[c]})
		}
		return st
	}
	return mk("Figure 7(a): NFI ACD vs processor count (torus)", f.NFI),
		mk("Figure 7(b): FFI ACD vs processor count (torus)", f.FFI)
}

// RunFig7 reproduces Figure 7: a fixed uniform input, the torus
// topology, and the processor count swept over 4^o for o in
// procOrders. The paper sweeps roughly 1,024 through 65,536 processors
// with 1,000,000 particles.
func RunFig7(ctx context.Context, p Params, procOrders []uint) (Fig7Result, error) {
	if err := p.Validate(); err != nil {
		return Fig7Result{}, err
	}
	if len(procOrders) == 0 {
		return Fig7Result{}, fmt.Errorf("experiments: no processor orders to sweep")
	}
	curves := sfc.All()
	res := Fig7Result{
		Curves: curveNames(curves),
		NFI:    zeroRect(len(curves), len(procOrders)),
		FFI:    zeroRect(len(curves), len(procOrders)),
	}
	for _, o := range procOrders {
		res.ProcCounts = append(res.ProcCounts, 1<<(2*o))
	}
	nc := len(curves)
	no := len(procOrders)
	type cellOut struct{ nfi, ffi float64 }
	groups := make([]shared[[]geom.Point], p.Trials)
	outs := make([]cellOut, p.Trials*nc*no)
	pool := sweepPool(p.Workers, len(outs))
	inner := innerWorkers(p.Workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		i := cell % no
		c := (cell / no) % nc
		trial := cell / (no * nc)
		pts, err := groups[trial].get(func() ([]geom.Point, error) {
			return samplePoints(dist.Uniform, p, trial)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		po := procOrders[i]
		procs := 1 << (2 * po)
		a, err := acd.Assign(pts, curve, p.Order, procs)
		if err != nil {
			return err
		}
		// Even with a single torus per step, the matrix path pays off:
		// the event stream collapses to its distinct rank pairs before
		// any distance is computed.
		topos := []topology.Topology{topology.NewTorus(po, curve)}
		engine := p.engine()
		nfi := fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{
			Radius: p.Radius, Metric: geom.MetricChebyshev, Workers: inner, Engine: engine,
		})
		ffi := fmmmodel.FFIMulti(a, topos, fmmmodel.FFIOptions{Workers: inner, Engine: engine})
		a.Release()
		outs[cell] = cellOut{nfi: nfi[0].ACD(), ffi: ffi[0].Total().ACD()}
		return nil
	})
	if err != nil {
		return Fig7Result{}, err
	}
	for cell, o := range outs {
		i := cell % no
		c := (cell / no) % nc
		res.NFI[c][i] += o.nfi
		res.FFI[c][i] += o.ffi
	}
	scaleMatrix(res.NFI, 1/float64(p.Trials))
	scaleMatrix(res.FFI, 1/float64(p.Trials))
	return res, nil
}
