package dist

import (
	"math"
	"strings"
	"testing"

	"sfcacd/internal/geom"
	"sfcacd/internal/geom3"
	"sfcacd/internal/rng"
)

func TestByName(t *testing.T) {
	for _, s := range All() {
		got, err := ByName(s.Name())
		if err != nil || got.Name() != s.Name() {
			t.Errorf("ByName(%q) = %v, %v", s.Name(), got, err)
		}
	}
	for alias, want := range map[string]string{
		"gaussian": "normal", "bivariate-normal": "normal", "exp": "exponential",
	} {
		got, err := ByName(alias)
		if err != nil || got.Name() != want {
			t.Errorf("ByName(%q) = %v, %v", alias, got, err)
		}
	}
	if _, err := ByName("cauchy"); err == nil {
		t.Error("ByName(cauchy) should fail")
	}
}

func TestAllHasThree(t *testing.T) {
	if len(All()) != 3 {
		t.Fatalf("All() = %d samplers, want the paper's 3", len(All()))
	}
}

func TestSamplesInBounds(t *testing.T) {
	r := rng.New(1)
	const order = 6
	side := geom.Side(order)
	for _, s := range All() {
		for i := 0; i < 20000; i++ {
			p := s.Sample(r, order)
			if p.X >= side || p.Y >= side {
				t.Fatalf("%s: sample %v outside %dx%d", s.Name(), p, side, side)
			}
		}
	}
}

func TestUniformCoversGrid(t *testing.T) {
	r := rng.New(2)
	const order = 3 // 8x8 = 64 cells
	counts := make(map[geom.Point]int)
	const draws = 64 * 400
	for i := 0; i < draws; i++ {
		counts[Uniform.Sample(r, order)]++
	}
	if len(counts) != 64 {
		t.Fatalf("uniform hit %d/64 cells", len(counts))
	}
	want := float64(draws) / 64
	for p, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("cell %v count %d deviates from %f", p, c, want)
		}
	}
}

func TestNormalClustersAtCenter(t *testing.T) {
	r := rng.New(3)
	const order = 8 // 256x256
	side := float64(geom.Side(order))
	pts := SampleN(Normal, r, order, 50000)
	m := ComputeMoments(pts)
	if math.Abs(m.MeanX-side/2) > 3 || math.Abs(m.MeanY-side/2) > 3 {
		t.Errorf("normal mean (%f,%f), want ~%f", m.MeanX, m.MeanY, side/2)
	}
	// sigma = side/8 = 32.
	if math.Abs(m.StdX-side/8) > 2 || math.Abs(m.StdY-side/8) > 2 {
		t.Errorf("normal std (%f,%f), want ~%f", m.StdX, m.StdY, side/8)
	}
}

func TestExponentialSkewsToCorner(t *testing.T) {
	r := rng.New(4)
	const order = 8
	side := geom.Side(order)
	pts := SampleN(Exponential, r, order, 50000)
	// The paper: "clusters the selected values in a single quadrant".
	inCorner := 0
	for _, p := range pts {
		if p.X < side/2 && p.Y < side/2 {
			inCorner++
		}
	}
	if frac := float64(inCorner) / float64(len(pts)); frac < 0.9 {
		t.Errorf("only %.2f of exponential mass in the corner quadrant", frac)
	}
	m := ComputeMoments(pts)
	// Mean of exp(scale=32) clipped at 256 is close to 32.
	if m.MeanX > 40 || m.MeanY > 40 {
		t.Errorf("exponential means (%f,%f) too large", m.MeanX, m.MeanY)
	}
}

func TestSampleNLength(t *testing.T) {
	r := rng.New(5)
	if got := len(SampleN(Uniform, r, 4, 123)); got != 123 {
		t.Fatalf("SampleN length %d", got)
	}
}

func TestSampleUniqueDistinct(t *testing.T) {
	r := rng.New(6)
	const order = 5 // 1024 cells
	for _, s := range All() {
		pts, err := SampleUnique(s, r, order, 300)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		seen := make(map[geom.Point]bool)
		for _, p := range pts {
			if seen[p] {
				t.Fatalf("%s: duplicate cell %v", s.Name(), p)
			}
			seen[p] = true
		}
	}
}

func TestSampleUniqueFull(t *testing.T) {
	// Requesting every cell must still terminate for uniform.
	r := rng.New(7)
	const order = 3
	pts, err := SampleUnique(Uniform, r, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 64 {
		t.Fatalf("got %d points", len(pts))
	}
}

func TestSampleUniqueTooMany(t *testing.T) {
	r := rng.New(8)
	if _, err := SampleUnique(Uniform, r, 2, 17); err == nil {
		t.Fatal("expected error when n exceeds cell count")
	}
}

func TestSampleUniqueDeterministic(t *testing.T) {
	a, _ := SampleUnique(Normal, rng.New(99), 6, 500)
	b, _ := SampleUnique(Normal, rng.New(99), 6, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// stuckSampler always returns the same cell, forcing unique-sampling
// rejection to stall.
type stuckSampler struct{}

func (stuckSampler) Name() string { return "stuck" }
func (stuckSampler) Sample(r *rng.Rand, order uint) geom.Point {
	r.Uint64() // consume entropy like a real sampler
	return geom.Pt(0, 0)
}

func TestSampleUniqueStallsGracefully(t *testing.T) {
	// Requesting two unique cells from a degenerate sampler must fail
	// with a stall error rather than spin forever.
	_, err := SampleUnique(stuckSampler{}, rng.New(1), 4, 2)
	if err == nil {
		t.Fatal("stalled sampler did not error")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("unexpected error %v", err)
	}
}

type stuckSampler3 struct{}

func (stuckSampler3) Name() string { return "stuck3" }
func (stuckSampler3) Sample3(r *rng.Rand, order uint) geom3.Point3 {
	r.Uint64()
	return geom3.Pt3(0, 0, 0)
}

func TestSampleUnique3StallsGracefully(t *testing.T) {
	_, err := SampleUnique3(stuckSampler3{}, rng.New(1), 3, 2)
	if err == nil {
		t.Fatal("stalled 3D sampler did not error")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestComputeMomentsEmpty(t *testing.T) {
	m := ComputeMoments(nil)
	if m.MeanX != 0 || m.StdY != 0 {
		t.Errorf("empty moments = %+v", m)
	}
}

func TestComputeMomentsKnown(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 4)}
	m := ComputeMoments(pts)
	if m.MeanX != 1 || m.MeanY != 2 || m.StdX != 1 || m.StdY != 2 {
		t.Errorf("moments = %+v", m)
	}
}

func TestBitmap(t *testing.T) {
	b := newBitmap(130)
	for _, i := range []uint64{0, 1, 63, 64, 129} {
		if b.testAndSet(i) {
			t.Fatalf("bit %d set before setting", i)
		}
		if !b.testAndSet(i) {
			t.Fatalf("bit %d not set after setting", i)
		}
	}
}
