package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition
// format (version 0.0.4), so the registry can be scraped by standard
// collectors while the JSON snapshot stays available for manifests.
//
// The registry itself is label-free: a metric is one flat name. Label
// sets ride along through a naming convention — LabeledName packs
// sorted, escaped labels into the name ("serve.errors{class=\"timeout\"}"),
// the registry treats the whole string as opaque, and the writer here
// splits it back into a metric family plus a label block. The JSON
// snapshot keys keep the full packed name, so the two formats expose
// the same series under systematically related names.
//
// Name mapping: '.' and any other character outside [a-zA-Z0-9_:]
// becomes '_'; counter families additionally get the conventional
// "_total" suffix. "serve.requests" therefore scrapes as
// "serve_requests_total" and appears in JSON as "serve.requests".

// LabeledName returns `name{k1="v1",k2="v2"}` with keys sorted and
// values escaped per the exposition rules, for registering one labeled
// series of a metric family:
//
//	obs.GetCounter(obs.LabeledName("serve.errors", "class", "timeout")).Inc()
//
// Keys must already be valid label names ([a-zA-Z_][a-zA-Z0-9_]*);
// values may be arbitrary strings. kv alternates key, value and must
// have even length.
func LabeledName(name string, kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: LabeledName needs alternating key, value pairs")
	}
	if len(kv) == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline, the
// three characters the text format requires escaped in label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitLabeledName splits a registry name into its base name and the
// label block (without braces; empty when the name carries no labels).
func splitLabeledName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// sanitizeMetricName maps a registry base name onto the exposition
// charset [a-zA-Z0-9_:], replacing everything else with '_' and
// prefixing a leading digit.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a sample or bound value the way Prometheus
// expects: shortest round-trip representation, "+Inf"/"-Inf"/"NaN"
// spelled in exposition style.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	switch s {
	case "+Inf", "Inf":
		return "+Inf"
	case "-Inf":
		return "-Inf"
	}
	return s
}

// series is one labeled instance of a metric family.
type series struct {
	labels string
	value  float64
	hist   *HistogramSnapshot
}

// family groups every series sharing a sanitized family name.
type family struct {
	name   string // sanitized exposition name
	kind   string // counter | gauge | histogram
	series []series
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format: one "# TYPE" line per metric family followed by
// its series sorted by label block. Histograms emit cumulative
// "_bucket" lines (le upper bounds plus "+Inf"), "_sum", and "_count";
// the +Inf bucket, _count, and the sum over per-bucket counts agree by
// construction. Min/Max have no exposition equivalent and are only in
// the JSON snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var fams []*family
	byName := make(map[string]*family)
	add := func(rawName, kind, suffix string, val float64, hist *HistogramSnapshot) {
		base, labels := splitLabeledName(rawName)
		name := sanitizeMetricName(base) + suffix
		f, ok := byName[name]
		if !ok {
			f = &family{name: name, kind: kind}
			byName[name] = f
			fams = append(fams, f)
		}
		f.series = append(f.series, series{labels: labels, value: val, hist: hist})
	}
	for name, v := range s.Counters {
		add(name, "counter", "_total", float64(v), nil)
	}
	for name, v := range s.Gauges {
		add(name, "gauge", "", v, nil)
	}
	for name := range s.Histograms {
		h := s.Histograms[name]
		add(name, "histogram", "", 0, &h)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, sr := range f.series {
			var err error
			if f.kind == "histogram" {
				err = writeHistogramSeries(w, f.name, sr.labels, sr.hist)
			} else {
				_, err = fmt.Fprintf(w, "%s %s\n", seriesName(f.name, sr.labels), formatFloat(sr.value))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesName joins a family name with a label block.
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// withLabel appends one more label to a (possibly empty) label block.
func withLabel(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// writeHistogramSeries emits the _bucket/_sum/_count lines of one
// labeled histogram. Bucket counts in the snapshot are per-bucket;
// the exposition needs cumulative counts, accumulated here. The +Inf
// bucket and _count both use the accumulated total, so the invariants
// parsers check (monotone buckets, +Inf == _count) hold even if the
// snapshot raced concurrent observations.
func writeHistogramSeries(w io.Writer, name, labels string, h *HistogramSnapshot) error {
	var cum uint64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		le := withLabel(labels, `le="`+formatFloat(bound)+`"`)
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", le), cum); err != nil {
			return err
		}
	}
	// Overflow bucket: everything above the last bound.
	for i := len(h.Bounds); i < len(h.Counts); i++ {
		cum += h.Counts[i]
	}
	le := withLabel(labels, `le="+Inf"`)
	if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", le), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", labels), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", labels), cum)
	return err
}
