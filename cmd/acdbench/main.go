// Command acdbench regenerates the paper's evaluation tables and
// figures (Tables I-II, Figures 6-7) and the extension studies, at
// paper scale or scaled down.
//
// Usage:
//
//	acdbench -experiment table12                 # scaled-down default
//	acdbench -experiment table12 -full           # exact paper parameters
//	acdbench -experiment fig6 -particles 100000  # custom overrides
//	acdbench -experiment all -report run.json    # with a run manifest
//
// Result tables go to stdout; progress logging goes to stderr (-v for
// debug detail). Pass -csvdir to also write machine-readable CSVs,
// -report to emit a JSON run manifest (parameters, per-phase timings,
// metric counters, memory peaks), and -cpuprofile / -memprofile /
// -trace to capture pprof and runtime/trace artifacts.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"sfcacd/internal/experiments"
	"sfcacd/internal/obs"
)

// names lists every experiment in display order. It is the single
// source of truth: the -experiment flag help, the "all" expansion, and
// the runner lookup are all derived from it.
var names = []string{
	"table12", "fig6", "fig7", "radius", "nsweep", "meshtorus",
	"primitives", "contention", "dynamic", "threed", "clustering",
	"loadbalance", "execmodel", "metrics",
}

// csvDir, when set, receives one CSV file per experiment result.
var csvDir string

// logger carries progress output to stderr; result tables stay on
// stdout.
var logger *slog.Logger

// csvWriter is implemented by every experiment result with a CSV form.
type csvWriter interface {
	WriteCSV(io.Writer) error
}

// emitCSV writes the result's CSV into csvDir (no-op when unset). A
// failed Close is reported: on a full disk the data loss surfaces
// there, not in Write.
func emitCSV(name string, r csvWriter) (err error) {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if err := r.WriteCSV(f); err != nil {
		return err
	}
	logger.Info("wrote CSV", "path", path)
	return nil
}

// runnerSpec pairs an experiment's runner with the parameter value
// recorded in the run manifest.
type runnerSpec struct {
	run    func() error
	params func() any
}

func main() {
	os.Exit(run())
}

// run is the real main; returning instead of os.Exit lets the
// deferred profile/trace finalizers flush before the process ends.
func run() int {
	var (
		experiment = flag.String("experiment", "table12",
			"experiment to run: "+strings.Join(names, ", ")+", or all")
		full      = flag.Bool("full", false, "use exact paper-scale parameters (slow)")
		scale     = flag.Uint("scale", 2, "scale-down steps from paper parameters (each step quarters the input)")
		particles = flag.Int("particles", 0, "override particle count")
		order     = flag.Uint("order", 0, "override spatial resolution order (grid side 2^order)")
		procOrder = flag.Uint("procorder", 0, "override processor order (p = 4^procorder)")
		radius    = flag.Int("radius", 0, "override near-field radius")
		trials    = flag.Int("trials", 0, "override trial count")
		seed      = flag.Uint64("seed", 0, "override random seed")
		workers   = flag.Int("workers", 0, "cap accumulation/matrix-build worker goroutines (0 = GOMAXPROCS)")
		csvDirF   = flag.String("csvdir", "", "also write machine-readable CSVs into this directory")
		report    = flag.String("report", "", "write a JSON run manifest to this file")
		determin  = flag.Bool("deterministic", false, "strip host- and time-dependent fields from the manifest")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
		traceOut  = flag.String("trace", "", "write a runtime/trace to this file")
		verbose   = flag.Bool("v", false, "enable debug-level progress logging")
	)
	flag.Parse()
	csvDir = *csvDirF

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			logger.Error("cpuprofile", "err", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Error("cpuprofile", "err", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				logger.Error("cpuprofile close", "err", err)
			}
			logger.Info("wrote CPU profile", "path", *cpuProf)
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			logger.Error("trace", "err", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			logger.Error("trace", "err", err)
			return 1
		}
		defer func() {
			trace.Stop()
			if err := f.Close(); err != nil {
				logger.Error("trace close", "err", err)
			}
			logger.Info("wrote execution trace", "path", *traceOut)
		}()
	}

	params := func(paper experiments.Params) experiments.Params {
		p := paper
		if !*full {
			p = paper.Scale(*scale)
		}
		if *particles > 0 {
			p.Particles = *particles
		}
		if *order > 0 {
			p.Order = *order
		}
		if *procOrder > 0 {
			p.ProcOrder = *procOrder
		}
		if *radius > 0 {
			p.Radius = *radius
		}
		if *trials > 0 {
			p.Trials = *trials
		}
		if *seed > 0 {
			p.Seed = *seed
		}
		if *workers > 0 {
			p.Workers = *workers
		}
		return p
	}
	table12Params := func() any { return params(experiments.Table12Paper) }
	threedParams := func() experiments.ThreeDParams {
		p := experiments.ThreeDDefault
		if *full {
			p.Particles = 200000
			p.Order = 7     // 128^3 cells
			p.ProcOrder = 3 // 512 processors on an 8x8x8 torus
			p.ANNSOrder = 5 // 32^3 full grid
		}
		return p
	}
	clusteringParams := func() (order uint, trials int) {
		if *full {
			return 10, 10000
		}
		return 8, 2000
	}
	metricsConfig := func() experiments.MetricsConfig {
		cfg := experiments.MetricsConfig{
			Params:      params(experiments.Table12Paper),
			MetricOrder: 7,
			QuerySide:   8,
			QueryTrials: 5000,
		}
		if *full {
			cfg.MetricOrder = 9
		}
		return cfg
	}

	runners := map[string]runnerSpec{
		"table12": {
			run:    func() error { return runTable12(params(experiments.Table12Paper)) },
			params: table12Params,
		},
		"fig6": {
			run:    func() error { return runFig6(params(experiments.Fig6Paper)) },
			params: func() any { return params(experiments.Fig6Paper) },
		},
		"fig7": {
			run:    func() error { return runFig7(params(experiments.Fig7Paper)) },
			params: func() any { return params(experiments.Fig7Paper) },
		},
		"radius": {
			run:    func() error { return runRadius(params(experiments.Table12Paper)) },
			params: table12Params,
		},
		"nsweep": {
			run:    func() error { return runNSweep(params(experiments.Table12Paper)) },
			params: table12Params,
		},
		"meshtorus": {
			run:    func() error { return runMeshTorus(params(experiments.Table12Paper)) },
			params: table12Params,
		},
		"primitives": {
			run:    func() error { return runPrimitives(params(experiments.Table12Paper)) },
			params: table12Params,
		},
		"contention": {
			run:    func() error { return runContention(params(experiments.Table12Paper)) },
			params: table12Params,
		},
		"dynamic": {
			run:    func() error { return runDynamic(params(experiments.Table12Paper)) },
			params: table12Params,
		},
		"threed": {
			run:    func() error { return runThreeD(threedParams()) },
			params: func() any { return threedParams() },
		},
		"clustering": {
			run: func() error {
				order, trials := clusteringParams()
				return runClustering(order, trials)
			},
			params: func() any {
				order, trials := clusteringParams()
				return map[string]any{"order": order, "trials": trials}
			},
		},
		"loadbalance": {
			run: func() error {
				p := params(experiments.Table12Paper)
				announce(p)
				res, err := experiments.RunLoadBalance(p)
				if err != nil {
					return err
				}
				if err := emitCSV("loadbalance", res); err != nil {
					return err
				}
				return res.Matrix().Render(os.Stdout)
			},
			params: table12Params,
		},
		"execmodel": {
			run: func() error {
				p := params(experiments.Table12Paper)
				announce(p)
				res, err := experiments.RunExecModel(p)
				if err != nil {
					return err
				}
				if err := emitCSV("execmodel", res); err != nil {
					return err
				}
				return res.Matrix().Render(os.Stdout)
			},
			params: table12Params,
		},
		"metrics": {
			run: func() error {
				cfg := metricsConfig()
				announce(cfg.Params)
				res, err := experiments.RunMetrics(cfg)
				if err != nil {
					return err
				}
				if err := emitCSV("metrics", res); err != nil {
					return err
				}
				return res.Matrix().Render(os.Stdout)
			},
			params: func() any { return metricsConfig() },
		},
	}

	todo := []string{*experiment}
	if *experiment == "all" {
		todo = names
	}
	manifest := obs.NewManifest("acdbench")
	for _, name := range todo {
		spec, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "acdbench: unknown experiment %q (choose from %v or all)\n", name, names)
			return 2
		}
		logger.Debug("starting experiment", "experiment", name)
		obs.TakeSpans() // drop any stale phases from a failed predecessor
		start := time.Now()
		if err := spec.run(); err != nil {
			fmt.Fprintf(os.Stderr, "acdbench: %s: %v\n", name, err)
			return 1
		}
		wall := time.Since(start)
		manifest.AddExperiment(name, spec.params(), wall, obs.TakeSpans())
		manifest.ObserveMemStats()
		logger.Info("experiment completed", "experiment", name, "wall", wall.Round(time.Millisecond))
	}

	// Derived gauge: share of communication events that stayed local.
	if events := obs.GetCounter("acd.events").Value(); events > 0 {
		zeros := obs.GetCounter("acd.zero_hops").Value()
		obs.GetGauge("acd.zero_hop_fraction").Set(float64(zeros) / float64(events))
	}
	// Derived gauge: events per distinct rank pair in the communication
	// matrices — the factor the contraction path saved over per-event
	// distance evaluation.
	if pairs := obs.GetCounter("commmat.pairs").Value(); pairs > 0 {
		events := obs.GetCounter("commmat.events").Value()
		obs.GetGauge("commmat.dedup_ratio").Set(float64(events) / float64(pairs))
	}
	manifest.Metrics = obs.Default().Snapshot()

	if *report != "" {
		if *determin {
			manifest.Deterministic()
		}
		if err := manifest.WriteFile(*report); err != nil {
			logger.Error("report", "err", err)
			return 1
		}
		logger.Info("wrote run manifest", "path", *report)
	}
	if *memProf != "" {
		runtime.GC() // materialize final live-heap figures
		f, err := os.Create(*memProf)
		if err != nil {
			logger.Error("memprofile", "err", err)
			return 1
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			logger.Error("memprofile", "err", err)
			return 1
		}
		if err := f.Close(); err != nil {
			logger.Error("memprofile close", "err", err)
			return 1
		}
		logger.Info("wrote heap profile", "path", *memProf)
	}
	return 0
}

func announce(p experiments.Params) {
	logger.Info("parameters",
		"n", p.Particles, "resolution", fmt.Sprintf("%dx%d", 1<<p.Order, 1<<p.Order),
		"p", p.P(), "radius", p.Radius, "trials", p.Trials, "seed", p.Seed)
}

func runTable12(p experiments.Params) error {
	announce(p)
	results, err := experiments.RunTable12(p)
	if err != nil {
		return err
	}
	for _, res := range results {
		if err := emitCSV("table12_"+res.Distribution, res); err != nil {
			return err
		}
		nfi, ffi := res.Matrices()
		if err := nfi.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if err := ffi.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig6(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunFig6(p)
	if err != nil {
		return err
	}
	if err := emitCSV("fig6", res); err != nil {
		return err
	}
	nfi, ffi := res.Matrices()
	if err := nfi.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return ffi.Render(os.Stdout)
}

func runFig7(p experiments.Params) error {
	announce(p)
	// Sweep processor orders from 4^(ProcOrder-3) up to 4^ProcOrder,
	// the paper's 1,024..65,536 at full scale.
	var orders []uint
	lo := uint(2)
	if p.ProcOrder > 3 {
		lo = p.ProcOrder - 3
	}
	for o := lo; o <= p.ProcOrder; o++ {
		orders = append(orders, o)
	}
	res, err := experiments.RunFig7(p, orders)
	if err != nil {
		return err
	}
	if err := emitCSV("fig7", res); err != nil {
		return err
	}
	nfi, ffi := res.SeriesTables()
	if err := nfi.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return ffi.Render(os.Stdout)
}

func runRadius(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunRadiusSweep(p, []int{1, 2, 4, 6, 8})
	if err != nil {
		return err
	}
	if err := emitCSV("radius", res); err != nil {
		return err
	}
	return res.SeriesTable().Render(os.Stdout)
}

func runNSweep(p experiments.Params) error {
	announce(p)
	sizes := []int{p.Particles / 8, p.Particles / 4, p.Particles / 2, p.Particles}
	res, err := experiments.RunSizeSweep(p, sizes)
	if err != nil {
		return err
	}
	if err := emitCSV("nsweep", res); err != nil {
		return err
	}
	nfi, ffi := res.SeriesTables()
	if err := nfi.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return ffi.Render(os.Stdout)
}

func runMeshTorus(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunMeshTorus(p)
	if err != nil {
		return err
	}
	if err := emitCSV("meshtorus", res); err != nil {
		return err
	}
	return res.Matrix().Render(os.Stdout)
}

func runPrimitives(p experiments.Params) error {
	logger.Info("parameters", "p", p.P())
	res := experiments.RunPrimitives(p.ProcOrder)
	mesh, torus := res.Matrices()
	if err := mesh.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return torus.Render(os.Stdout)
}

func runContention(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunContention(p)
	if err != nil {
		return err
	}
	if err := emitCSV("contention", res); err != nil {
		return err
	}
	return res.Matrix().Render(os.Stdout)
}

func runDynamic(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunDynamic(p, 8)
	if err != nil {
		return err
	}
	if err := emitCSV("dynamic", res); err != nil {
		return err
	}
	static, reorder := res.SeriesTables()
	if err := static.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return reorder.Render(os.Stdout)
}

func runClustering(order uint, trials int) error {
	logger.Info("parameters",
		"resolution", fmt.Sprintf("%dx%d", 1<<order, 1<<order), "trials_per_query_size", trials)
	res, err := experiments.RunClustering(order, []uint32{2, 4, 8, 16, 32}, trials, 2013)
	if err != nil {
		return err
	}
	if err := emitCSV("clustering", res); err != nil {
		return err
	}
	return res.SeriesTable().Render(os.Stdout)
}

func runThreeD(p experiments.ThreeDParams) error {
	logger.Info("parameters",
		"n", p.Particles, "resolution", fmt.Sprintf("%d^3", 1<<p.Order),
		"p", 1<<(3*p.ProcOrder), "radius", p.Radius, "trials", p.Trials, "seed", p.Seed)
	res, err := experiments.RunThreeD(p)
	if err != nil {
		return err
	}
	if err := emitCSV("threed", res); err != nil {
		return err
	}
	return res.Matrix().Render(os.Stdout)
}
