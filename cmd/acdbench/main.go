// Command acdbench regenerates the paper's evaluation tables and
// figures (Tables I-II, Figures 6-7) and the extension studies, at
// paper scale or scaled down.
//
// Usage:
//
//	acdbench -experiment table12                 # scaled-down default
//	acdbench -experiment table12 -full           # exact paper parameters
//	acdbench -experiment fig6 -particles 100000  # custom overrides
//	acdbench -experiment all -report run.json    # with a run manifest
//	acdbench -list                               # registry listing
//	acdbench -cache results/cache                # reuse cached results
//
// The experiment table is experiments.Registry() — the same source of
// truth cmd/acdserverd serves over HTTP — so -list, the -experiment
// help, and the "all" expansion always match the daemon's API. With
// -cache, results are read from and written to the same
// content-addressed store the daemon uses with -cachedir: a warm entry
// renders in microseconds instead of recomputing.
//
// Result tables go to stdout; progress logging goes to stderr (-v for
// debug detail). Pass -csvdir to also write machine-readable CSVs,
// -report to emit a JSON run manifest (parameters, per-phase timings,
// metric counters, memory peaks), and -cpuprofile / -memprofile /
// -trace to capture pprof and runtime/trace artifacts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"syscall"
	"time"

	"sfcacd/internal/experiments"
	"sfcacd/internal/obs"
	"sfcacd/internal/resultcache"
	"sfcacd/internal/serve"
)

// csvDir, when set, receives one CSV file per experiment result.
var csvDir string

// logger carries progress output to stderr; result tables stay on
// stdout.
var logger *slog.Logger

// emitCSV writes the result's CSV panels into csvDir (no-op when
// unset). A failed Close is reported: on a full disk the data loss
// surfaces there, not in Write.
func emitCSV(res experiments.Result) error {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	for _, panel := range res.CSVPanels() {
		if err := emitPanel(panel); err != nil {
			return err
		}
	}
	return nil
}

func emitPanel(panel experiments.CSVPanel) (err error) {
	path := filepath.Join(csvDir, panel.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if err := panel.Write(f); err != nil {
		return err
	}
	logger.Info("wrote CSV", "path", path)
	return nil
}

func main() {
	os.Exit(run())
}

// run is the real main; returning instead of os.Exit lets the
// deferred profile/trace finalizers flush before the process ends.
func run() int {
	names := experiments.Names()
	var (
		experiment = flag.String("experiment", "table12",
			"experiment to run: "+strings.Join(names, ", ")+", or all")
		list      = flag.Bool("list", false, "list the experiment registry and exit")
		full      = flag.Bool("full", false, "use exact paper-scale parameters (slow)")
		scale     = flag.Uint("scale", 2, "scale-down steps from paper parameters (each step quarters the input)")
		particles = flag.Int("particles", 0, "override particle count")
		order     = flag.Uint("order", 0, "override spatial resolution order (grid side 2^order)")
		procOrder = flag.Uint("procorder", 0, "override processor order (p = 4^procorder)")
		radius    = flag.Int("radius", 0, "override near-field radius")
		trials    = flag.Int("trials", 0, "override trial count")
		seed      = flag.Uint64("seed", 0, "override random seed")
		workers   = flag.Int("workers", 0, "cap sweep-cell and inner accumulation worker goroutines (0 = GOMAXPROCS)")
		nfiEngine = flag.String("nfi-engine", "", "neighbor engine for the accumulation passes: tree (default; rank table + quadtree oracle), keys (key-space index), or auto (keys once the dense rank table would exceed its budget); results are bit-identical")
		distrib   = flag.String("dist", "", "override the particle distribution (uniform, normal, exponential)")
		incrMode  = flag.String("incr-mode", "", "maintenance mechanism for incremental experiments: incr (default; delta repair) or rebuild (from scratch each tick); results are bit-identical")
		cacheDir  = flag.String("cache", "", "read/write results in this content-addressed cache directory (shared with acdserverd -cachedir)")
		cacheVer  = flag.Bool("cache-verify", false, "verify every entry in the -cache store (quarantining bad ones) and exit")
		csvDirF   = flag.String("csvdir", "", "also write machine-readable CSVs into this directory")
		report    = flag.String("report", "", "write a JSON run manifest to this file")
		determin  = flag.Bool("deterministic", false, "strip host- and time-dependent fields from the manifest")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
		traceOut  = flag.String("trace", "", "write a runtime/trace to this file")
		verbose   = flag.Bool("v", false, "enable debug-level progress logging")
	)
	flag.Parse()
	csvDir = *csvDirF

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *list {
		for _, spec := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", spec.Name, spec.Desc)
		}
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			logger.Error("cpuprofile", "err", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Error("cpuprofile", "err", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				logger.Error("cpuprofile close", "err", err)
			}
			logger.Info("wrote CPU profile", "path", *cpuProf)
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			logger.Error("trace", "err", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			logger.Error("trace", "err", err)
			return 1
		}
		defer func() {
			trace.Stop()
			if err := f.Close(); err != nil {
				logger.Error("trace close", "err", err)
			}
			logger.Info("wrote execution trace", "path", *traceOut)
		}()
	}

	var store *resultcache.DiskStore
	if *cacheDir != "" {
		var err error
		store, err = resultcache.OpenDisk(*cacheDir)
		if err != nil {
			logger.Error("cache", "err", err)
			return 1
		}
	}
	if *cacheVer {
		if store == nil {
			fmt.Fprintln(os.Stderr, "acdbench: -cache-verify requires -cache DIR")
			return 2
		}
		return verifyCache(store)
	}

	// Ctrl-C cancels the in-flight experiment cleanly through the
	// runners' context plumbing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	params := func(paper experiments.Params) experiments.Params {
		p := paper
		if !*full {
			p = paper.Scale(*scale)
		}
		if *particles > 0 {
			p.Particles = *particles
		}
		if *order > 0 {
			p.Order = *order
		}
		if *procOrder > 0 {
			p.ProcOrder = *procOrder
		}
		if *radius > 0 {
			p.Radius = *radius
		}
		if *trials > 0 {
			p.Trials = *trials
		}
		if *seed > 0 {
			p.Seed = *seed
		}
		if *workers > 0 {
			p.Workers = *workers
		}
		if *nfiEngine != "" {
			p.NFIEngine = *nfiEngine
		}
		if *distrib != "" {
			p.Distribution = *distrib
		}
		if *incrMode != "" {
			p.IncrMode = *incrMode
		}
		return p
	}

	todo := []string{*experiment}
	if *experiment == "all" {
		todo = names
	}
	manifest := obs.NewManifest("acdbench")
	for _, name := range todo {
		spec, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "acdbench: unknown experiment %q (choose from %v or all)\n", name, names)
			return 2
		}
		logger.Debug("starting experiment", "experiment", name)
		obs.TakeSpans() // drop any stale phases from a failed predecessor
		start := time.Now()
		effParams, err := runOne(ctx, spec, params(spec.Paper), store)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acdbench: %s: %v\n", name, err)
			return 1
		}
		wall := time.Since(start)
		manifest.AddExperiment(name, effParams, wall, obs.TakeSpans())
		manifest.ObserveMemStats()
		logger.Info("experiment completed", "experiment", name, "wall", wall.Round(time.Millisecond))
	}

	// Derived gauge: share of communication events that stayed local.
	if events := obs.GetCounter("acd.events").Value(); events > 0 {
		zeros := obs.GetCounter("acd.zero_hops").Value()
		obs.GetGauge("acd.zero_hop_fraction").Set(float64(zeros) / float64(events))
	}
	// Derived gauge: events per distinct rank pair in the communication
	// matrices — the factor the contraction path saved over per-event
	// distance evaluation.
	if pairs := obs.GetCounter("commmat.pairs").Value(); pairs > 0 {
		events := obs.GetCounter("commmat.events").Value()
		obs.GetGauge("commmat.dedup_ratio").Set(float64(events) / float64(pairs))
	}
	manifest.Metrics = obs.Default().Snapshot()

	if *report != "" {
		if *determin {
			manifest.Deterministic()
		}
		if err := manifest.WriteFile(*report); err != nil {
			logger.Error("report", "err", err)
			return 1
		}
		logger.Info("wrote run manifest", "path", *report)
	}
	if *memProf != "" {
		runtime.GC() // materialize final live-heap figures
		f, err := os.Create(*memProf)
		if err != nil {
			logger.Error("memprofile", "err", err)
			return 1
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			logger.Error("memprofile", "err", err)
			return 1
		}
		if err := f.Close(); err != nil {
			logger.Error("memprofile close", "err", err)
			return 1
		}
		logger.Info("wrote heap profile", "path", *memProf)
	}
	return 0
}

// verifyCache walks the disk store, reporting (and quarantining) bad
// entries. Exit status 0 means every entry decoded and key-verified.
func verifyCache(store *resultcache.DiskStore) int {
	rep, err := store.Verify()
	if err != nil {
		logger.Error("cache-verify", "err", err)
		return 1
	}
	fmt.Printf("cache %s: %d entries ok, %d bad (quarantined), %d orphaned temp files swept\n",
		store.Dir(), rep.Entries, rep.Bad, rep.TmpSwept)
	for _, path := range rep.BadPaths {
		fmt.Printf("  quarantined %s\n", path)
	}
	if rep.Bad > 0 {
		return 1
	}
	return 0
}

// runOne executes (or serves from the cache) one experiment, rendering
// its tables to stdout and its CSV panels into csvDir. It returns the
// effective parameter value for the run manifest.
func runOne(ctx context.Context, spec experiments.Spec, p experiments.Params, store *resultcache.DiskStore) (any, error) {
	announce(p)
	key := resultcache.KeyFor(spec.Name, p.CanonicalKey(), experiments.ResultSchemaVersion)
	if store != nil {
		entry, ok, err := store.Get(key)
		if err != nil {
			logger.Warn("cache read failed, recomputing", "err", err)
		} else if ok {
			res, err := spec.Decode(entry.Result)
			if err != nil {
				return nil, fmt.Errorf("decoding cached result %s: %w", key, err)
			}
			logger.Info("served from cache", "experiment", spec.Name, "key", key.String()[:12])
			return json.RawMessage(entry.Params), renderAndEmit(res)
		}
	}

	before := obs.Default().Snapshot()
	start := time.Now()
	out, err := spec.Run(ctx, p)
	if err != nil {
		return nil, err
	}
	if store != nil {
		entry, err := serve.BuildEntry(key, spec.Name, out, time.Since(start),
			obs.Default().Snapshot().Sub(before))
		if err != nil {
			return nil, err
		}
		if err := store.Put(entry); err != nil {
			logger.Warn("cache write failed", "err", err)
		} else {
			logger.Debug("cached result", "experiment", spec.Name, "key", key.String()[:12])
		}
	}
	return out.Params, renderAndEmit(out.Result)
}

// renderAndEmit writes the result tables to stdout and the CSV panels
// to csvDir.
func renderAndEmit(res experiments.Result) error {
	if err := res.Render(os.Stdout); err != nil {
		return err
	}
	return emitCSV(res)
}

func announce(p experiments.Params) {
	logger.Info("parameters",
		"n", p.Particles, "resolution", fmt.Sprintf("%dx%d", 1<<p.Order, 1<<p.Order),
		"p", p.P(), "radius", p.Radius, "trials", p.Trials, "seed", p.Seed)
}
