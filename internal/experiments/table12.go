package experiments

import (
	"context"
	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
)

// Table12Result holds, for one input distribution, the 4x4 particle x
// processor SFC combination matrices of Tables I (NFI) and II (FFI).
// Rows are processor-order curves, columns particle-order curves, in
// the paper's order (Hilbert, Z, Gray, Row major).
type Table12Result struct {
	// Distribution names the input distribution.
	Distribution string
	// Curves are the curve names indexing both matrix dimensions.
	Curves []string
	// NFI[r][c] is the near-field ACD with processor order r and
	// particle order c.
	NFI [][]float64
	// FFI[r][c] is the far-field ACD (interpolation + anterpolation +
	// interaction list).
	FFI [][]float64
}

// Matrices renders the result as the paper's two tables.
func (t Table12Result) Matrices() (nfi, ffi *tablefmt.Matrix) {
	mk := func(title string, cells [][]float64) *tablefmt.Matrix {
		return &tablefmt.Matrix{
			Title:      title,
			Corner:     "proc\\particle",
			Cols:       t.Curves,
			Rows:       t.Curves,
			Cells:      cells,
			MarkMinima: true,
		}
	}
	nfi = mk("Table I (NFI), "+t.Distribution+" distribution", t.NFI)
	ffi = mk("Table II (FFI), "+t.Distribution+" distribution", t.FFI)
	return nfi, ffi
}

// RunTable12 reproduces Tables I and II: for every input distribution
// and every particle-order x processor-order SFC pair, the NFI and FFI
// ACD on a torus of 4^ProcOrder processors, averaged over Trials.
func RunTable12(ctx context.Context, p Params) ([]Table12Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	curves := sfc.All()
	topos := torusPerCurve(p, curves)
	var out []Table12Result
	for _, sampler := range dist.All() {
		res := Table12Result{
			Distribution: sampler.Name(),
			Curves:       curveNames(curves),
			NFI:          zeroMatrix(len(curves)),
			FFI:          zeroMatrix(len(curves)),
		}
		for trial := 0; trial < p.Trials; trial++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			pts, err := samplePoints(sampler, p, trial)
			if err != nil {
				return nil, err
			}
			for pc, particleCurve := range curves {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				a, err := acd.Assign(pts, particleCurve, p.Order, p.P())
				if err != nil {
					return nil, err
				}
				nfiAccs := fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{
					Radius: p.Radius, Metric: geom.MetricChebyshev, Workers: p.Workers,
				})
				tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
				ffiAccs := fmmmodel.FFIMultiFromTree(tree, topos, fmmmodel.FFIOptions{Workers: p.Workers})
				for proc := range curves {
					res.NFI[proc][pc] += nfiAccs[proc].ACD()
					res.FFI[proc][pc] += ffiAccs[proc].Total().ACD()
				}
			}
		}
		scaleMatrix(res.NFI, 1/float64(p.Trials))
		scaleMatrix(res.FFI, 1/float64(p.Trials))
		out = append(out, res)
	}
	return out, nil
}

func zeroMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

func scaleMatrix(m [][]float64, f float64) {
	for _, row := range m {
		for i := range row {
			row[i] *= f
		}
	}
}
