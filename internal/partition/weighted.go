package partition

import "fmt"

// This file adds work-weighted chunking in the style of Aluru &
// Sevilgen (the paper's reference [4] on SFC-based load balancing):
// instead of giving every processor the same number of particles, the
// SFC-ordered particles are split so that every processor receives
// approximately the same total work (e.g. near-field interaction
// counts), while chunks stay contiguous along the curve.

// WeightedChunks splits n ordered elements with the given non-negative
// weights into p contiguous chunks of approximately equal total
// weight, returning the rank of each element. Ranks are monotone
// non-decreasing, every rank is in [0, p), and no rank is skipped
// while weight remains.
func WeightedChunks(weights []float64, p int) ([]int32, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("partition: no elements")
	}
	if p < 1 {
		return nil, fmt.Errorf("partition: p = %d must be positive", p)
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("partition: negative weight at %d", i)
		}
		total += w
	}
	ranks := make([]int32, n)
	if total == 0 {
		// Degenerate: fall back to count-balanced chunks.
		for i := range ranks {
			ranks[i] = int32(ChunkOf(i, n, p))
		}
		return ranks, nil
	}
	// Greedy prefix splitting: element i goes to the rank whose ideal
	// weight window contains the midpoint of i's weight interval.
	target := total / float64(p)
	var prefix float64
	rank := int32(0)
	for i, w := range weights {
		mid := prefix + w/2
		for rank < int32(p-1) && mid >= float64(rank+1)*target {
			rank++
		}
		ranks[i] = rank
		prefix += w
	}
	return ranks, nil
}

// ChunkWeights returns the per-rank total weight of an assignment
// produced by WeightedChunks (or any monotone rank vector).
func ChunkWeights(weights []float64, ranks []int32, p int) []float64 {
	out := make([]float64, p)
	for i, w := range weights {
		out[ranks[i]] += w
	}
	return out
}

// Imbalance returns max/mean of the per-rank loads, the standard load
// imbalance factor (1 is perfect). Ranks with zero load count toward
// the mean.
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(loads))
	return max / mean
}
