package experiments

import (
	"context"
	"fmt"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// RadiusSweepResult holds the §VI-C radius study: NFI ACD per curve as
// the near-field radius grows (torus, same curve both roles). The
// paper's observation: larger radii raise every curve's ACD but never
// change the curves' relative order.
type RadiusSweepResult struct {
	Radii  []int
	Curves []string
	// NFI[c][i] is the ACD of curve c at Radii[i].
	NFI [][]float64
}

// SeriesTable renders the sweep.
func (r RadiusSweepResult) SeriesTable() *tablefmt.SeriesTable {
	st := &tablefmt.SeriesTable{Title: "NFI ACD vs near-field radius (torus)", XLabel: "radius"}
	for _, x := range r.Radii {
		st.X = append(st.X, float64(x))
	}
	for c, name := range r.Curves {
		st.Series = append(st.Series, tablefmt.Series{Name: name, Y: r.NFI[c]})
	}
	return st
}

// RunRadiusSweep computes the NFI ACD for each radius in radii.
func RunRadiusSweep(ctx context.Context, p Params, radii []int) (RadiusSweepResult, error) {
	if err := p.Validate(); err != nil {
		return RadiusSweepResult{}, err
	}
	if len(radii) == 0 {
		return RadiusSweepResult{}, fmt.Errorf("experiments: no radii to sweep")
	}
	curves := sfc.All()
	res := RadiusSweepResult{
		Radii:  append([]int(nil), radii...),
		Curves: curveNames(curves),
		NFI:    zeroRect(len(curves), len(radii)),
	}
	nc := len(curves)
	groups := make([]shared[[]geom.Point], p.Trials)
	outs := make([][]float64, p.Trials*nc) // per cell: NFI ACD per radius
	pool := sweepPool(p.Workers, len(outs))
	inner := innerWorkers(p.Workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		c := cell % nc
		trial := cell / nc
		pts, err := groups[trial].get(func() ([]geom.Point, error) {
			return samplePoints(dist.Uniform, p, trial)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		a, err := acd.Assign(pts, curve, p.Order, p.P())
		if err != nil {
			return err
		}
		// Each radius induces its own event stream, so the sweep
		// builds one matrix per radius and contracts it against the
		// torus via the shared matrix path.
		topos := []topology.Topology{topology.NewTorus(p.ProcOrder, curve)}
		// On the keys engine the radii share one occupancy index
		// (a.KeyIndex is cached), so only the enumeration repeats.
		o := make([]float64, len(radii))
		for i, radius := range radii {
			acc := fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{
				Radius: radius, Metric: geom.MetricChebyshev, Workers: inner, Engine: p.engine(),
			})
			o[i] = acc[0].ACD()
		}
		a.Release()
		outs[cell] = o
		return nil
	})
	if err != nil {
		return RadiusSweepResult{}, err
	}
	for cell, o := range outs {
		c := cell % nc
		for i := range radii {
			res.NFI[c][i] += o[i]
		}
	}
	scaleMatrix(res.NFI, 1/float64(p.Trials))
	return res, nil
}

// SizeSweepResult holds the §VI-C input-size study: ACD per curve as
// the particle count grows at a fixed processor count.
type SizeSweepResult struct {
	Sizes  []int
	Curves []string
	NFI    [][]float64
	FFI    [][]float64
}

// SeriesTables renders the sweep panels.
func (r SizeSweepResult) SeriesTables() (nfi, ffi *tablefmt.SeriesTable) {
	mk := func(title string, cells [][]float64) *tablefmt.SeriesTable {
		st := &tablefmt.SeriesTable{Title: title, XLabel: "particles"}
		for _, x := range r.Sizes {
			st.X = append(st.X, float64(x))
		}
		for c, name := range r.Curves {
			st.Series = append(st.Series, tablefmt.Series{Name: name, Y: cells[c]})
		}
		return st
	}
	return mk("NFI ACD vs input size (torus)", r.NFI), mk("FFI ACD vs input size (torus)", r.FFI)
}

// RunSizeSweep computes NFI and FFI ACD for each particle count in
// sizes, holding Order, ProcOrder, and Radius fixed.
func RunSizeSweep(ctx context.Context, p Params, sizes []int) (SizeSweepResult, error) {
	if len(sizes) == 0 {
		return SizeSweepResult{}, fmt.Errorf("experiments: no sizes to sweep")
	}
	curves := sfc.All()
	res := SizeSweepResult{
		Sizes:  append([]int(nil), sizes...),
		Curves: curveNames(curves),
		NFI:    zeroRect(len(curves), len(sizes)),
		FFI:    zeroRect(len(curves), len(sizes)),
	}
	// Per-size params are validated up front so a bad size fails before
	// any cell runs.
	qs := make([]Params, len(sizes))
	for i, n := range sizes {
		q := p
		q.Particles = n
		if err := q.Validate(); err != nil {
			return SizeSweepResult{}, err
		}
		qs[i] = q
	}
	nc := len(curves)
	type cellOut struct{ nfi, ffi float64 }
	groups := make([]shared[[]geom.Point], len(sizes)*p.Trials)
	outs := make([]cellOut, len(groups)*nc)
	pool := sweepPool(p.Workers, len(outs))
	inner := innerWorkers(p.Workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		c := cell % nc
		g := cell / nc
		trial := g % p.Trials
		i := g / p.Trials
		q := qs[i]
		pts, err := groups[g].get(func() ([]geom.Point, error) {
			return samplePoints(dist.Uniform, q, trial)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		a, err := acd.Assign(pts, curve, q.Order, q.P())
		if err != nil {
			return err
		}
		topos := []topology.Topology{topology.NewTorus(q.ProcOrder, curve)}
		engine := q.engine()
		nfi := fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{
			Radius: q.Radius, Metric: geom.MetricChebyshev, Workers: inner, Engine: engine,
		})
		ffi := fmmmodel.FFIMulti(a, topos, fmmmodel.FFIOptions{Workers: inner, Engine: engine})
		a.Release()
		outs[cell] = cellOut{nfi: nfi[0].ACD(), ffi: ffi[0].Total().ACD()}
		return nil
	})
	if err != nil {
		return SizeSweepResult{}, err
	}
	for cell, o := range outs {
		c := cell % nc
		i := cell / nc / p.Trials
		res.NFI[c][i] += o.nfi / float64(p.Trials)
		res.FFI[c][i] += o.ffi / float64(p.Trials)
	}
	return res, nil
}

// MeshTorusResult holds the §VI-B wrap-link ablation: per curve, the
// NFI and FFI ACD on a mesh versus a torus of the same size. The
// paper's observation: for the recursive curves the two are highly
// comparable, while row-major benefits markedly from the wrap links.
type MeshTorusResult struct {
	Curves []string
	// Columns: mesh NFI, torus NFI, mesh FFI, torus FFI.
	MeshNFI, TorusNFI, MeshFFI, TorusFFI []float64
}

// Matrix renders the ablation as a curves x {mesh,torus} table.
func (r MeshTorusResult) Matrix() *tablefmt.Matrix {
	m := &tablefmt.Matrix{
		Title:  "Mesh vs torus (wrap-link utility)",
		Corner: "SFC",
		Cols:   []string{"mesh NFI", "torus NFI", "mesh FFI", "torus FFI"},
		Rows:   r.Curves,
	}
	for i := range r.Curves {
		m.Cells = append(m.Cells, []float64{r.MeshNFI[i], r.TorusNFI[i], r.MeshFFI[i], r.TorusFFI[i]})
	}
	return m
}

// RunMeshTorus computes the ablation at the given parameters.
func RunMeshTorus(ctx context.Context, p Params) (MeshTorusResult, error) {
	if err := p.Validate(); err != nil {
		return MeshTorusResult{}, err
	}
	curves := sfc.All()
	res := MeshTorusResult{
		Curves:   curveNames(curves),
		MeshNFI:  make([]float64, len(curves)),
		TorusNFI: make([]float64, len(curves)),
		MeshFFI:  make([]float64, len(curves)),
		TorusFFI: make([]float64, len(curves)),
	}
	nc := len(curves)
	type cellOut struct{ meshNFI, torusNFI, meshFFI, torusFFI float64 }
	groups := make([]shared[[]geom.Point], p.Trials)
	outs := make([]cellOut, p.Trials*nc)
	pool := sweepPool(p.Workers, len(outs))
	inner := innerWorkers(p.Workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		c := cell % nc
		trial := cell / nc
		pts, err := groups[trial].get(func() ([]geom.Point, error) {
			return samplePoints(dist.Uniform, p, trial)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		a, err := acd.Assign(pts, curve, p.Order, p.P())
		if err != nil {
			return err
		}
		topos := []topology.Topology{
			topology.NewMesh(p.ProcOrder, curve),
			topology.NewTorus(p.ProcOrder, curve),
		}
		engine := p.engine()
		nfi := fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{
			Radius: p.Radius, Metric: geom.MetricChebyshev, Workers: inner, Engine: engine,
		})
		ffi := fmmmodel.FFIMulti(a, topos, fmmmodel.FFIOptions{Workers: inner, Engine: engine})
		a.Release()
		outs[cell] = cellOut{
			meshNFI:  nfi[0].ACD(),
			torusNFI: nfi[1].ACD(),
			meshFFI:  ffi[0].Total().ACD(),
			torusFFI: ffi[1].Total().ACD(),
		}
		return nil
	})
	if err != nil {
		return MeshTorusResult{}, err
	}
	for cell, o := range outs {
		c := cell % nc
		res.MeshNFI[c] += o.meshNFI / float64(p.Trials)
		res.TorusNFI[c] += o.torusNFI / float64(p.Trials)
		res.MeshFFI[c] += o.meshFFI / float64(p.Trials)
		res.TorusFFI[c] += o.torusFFI / float64(p.Trials)
	}
	return res, nil
}
