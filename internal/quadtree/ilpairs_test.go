package quadtree

import (
	"math/rand"
	"sort"
	"testing"

	"sfcacd/internal/geom"
)

// randomTree builds a rank tree over a random particle subset.
func randomTree(t *testing.T, order uint, n, p int, seed int64) *RankTree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	side := geom.Side(order)
	cells := int(side) * int(side)
	perm := rng.Perm(cells)[:n]
	sort.Ints(perm)
	pts := make([]geom.Point, n)
	ranks := make([]int32, n)
	for i, id := range perm {
		pts[i] = geom.Pt(uint32(id%int(side)), uint32(id/int(side)))
		ranks[i] = int32(i * p / n)
	}
	return BuildRankTree(order, pts, ranks)
}

// TestVisitUpperInteractionPairsClosure: the upper-pair traversal plus
// its mirror is exactly the full interaction-list enumeration — every
// (cell, partner) pair of every occupied cell, in both directions.
func TestVisitUpperInteractionPairsClosure(t *testing.T) {
	tree := randomTree(t, 5, 300, 64, 1)
	for level := uint(2); level <= tree.Order; level++ {
		full := map[[2]int32]int{}
		tree.VisitCells(level, func(x, y uint32, rep int32) {
			tree.InteractionList(level, x, y, func(nx, ny uint32, other int32) {
				full[[2]int32{rep, other}]++
			})
		})
		upper := map[[2]int32]int{}
		side := geom.Side(level)
		tree.VisitUpperInteractionPairs(level, 0, side, func(rep, other int32) {
			upper[[2]int32{rep, other}]++
			upper[[2]int32{other, rep}]++
		})
		if len(full) != len(upper) {
			t.Fatalf("level %d: %d directed pairs from full enumeration, %d from upper closure", level, len(full), len(upper))
		}
		for k, n := range full {
			if upper[k] != n {
				t.Fatalf("level %d: pair %v seen %d times via upper closure, want %d", level, k, upper[k], n)
			}
		}
	}
}

// TestVisitUpperInteractionPairsStripes: cutting a level into row
// stripes covers exactly the same pairs as one full-range call.
func TestVisitUpperInteractionPairsStripes(t *testing.T) {
	tree := randomTree(t, 5, 250, 32, 2)
	const level = 4
	side := geom.Side(level)
	whole := map[[2]int32]int{}
	tree.VisitUpperInteractionPairs(level, 0, side, func(rep, other int32) {
		whole[[2]int32{rep, other}]++
	})
	striped := map[[2]int32]int{}
	for yLo := uint32(0); yLo < side; yLo += 3 {
		yHi := yLo + 3
		if yHi > side {
			yHi = side
		}
		tree.VisitUpperInteractionPairs(level, yLo, yHi, func(rep, other int32) {
			striped[[2]int32{rep, other}]++
		})
	}
	if len(whole) != len(striped) {
		t.Fatalf("stripes found %d pairs, whole range %d", len(striped), len(whole))
	}
	for k, n := range whole {
		if striped[k] != n {
			t.Fatalf("pair %v: stripes %d, whole %d", k, striped[k], n)
		}
	}
}

// TestVisitRowCellsMatchesVisitCells: the row-restricted visitor is
// VisitCells filtered to the row range.
func TestVisitRowCellsMatchesVisitCells(t *testing.T) {
	tree := randomTree(t, 5, 300, 64, 3)
	for level := uint(1); level <= tree.Order; level++ {
		side := geom.Side(level)
		type cell struct {
			x, y uint32
			rep  int32
		}
		var want, got []cell
		tree.VisitCells(level, func(x, y uint32, rep int32) {
			if y >= 1 && y < side {
				want = append(want, cell{x, y, rep})
			}
		})
		tree.VisitRowCells(level, 1, side, func(x, y uint32, rep int32) {
			got = append(got, cell{x, y, rep})
		})
		if len(want) != len(got) {
			t.Fatalf("level %d: VisitRowCells saw %d cells, want %d", level, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("level %d: cell %d is %+v, want %+v", level, i, got[i], want[i])
			}
		}
	}
}
