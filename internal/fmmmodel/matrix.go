package fmmmodel

import (
	"sync"

	"sfcacd/internal/acd"
	"sfcacd/internal/commmat"
	"sfcacd/internal/geom"
	"sfcacd/internal/keynav"
	"sfcacd/internal/obs"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/topology"
)

// This file builds topology-independent communication matrices
// (internal/commmat) from the model's event streams. The streams are
// exactly those of the direct NFI/FFI accumulators; only the
// aggregation differs, so contracting a matrix against a topology
// reproduces the direct accumulator bit for bit (the differential tests
// pin this). Two symmetries cut the aggregation work in half:
//
//   - The near-field and interaction-list relations are symmetric, so
//     both traversals enumerate each unordered pair once (from its
//     row-major-lower member) and store it in canonical src <= dst
//     form; the Sym contractions weight every pair by both directions.
//   - The anterpolation stream is the interpolation stream reversed,
//     and hop distance is symmetric, so one interpolation matrix and
//     one contraction serve both accumulators.
//
// The far-field matrices stay separate per communication type so
// FFIResult's breakdown survives aggregation.

// tightBand is the scratch-band hint for the near-field and
// interpolation builders: chunk-monotone assignment keeps spatially
// adjacent particles (and a cell and its parent's representative) a few
// chunks apart along the curve, so almost every canonical pair has a
// rank delta well under 256. The hint only sizes the aggregation grid;
// curve discontinuities that jump further (Morton or Gray boundaries)
// land in the exact overflow path. Interaction-list partners sit whole
// cells apart and need the default, wider band.
const tightBand = 256

// ilBand is the scratch-band hint for the key-space engine's
// interaction-list builder. IL partners sit whole cells apart, so the
// near-field band is too tight, but the delta profile is still heavily
// concentrated: at table12 scale (order 8, p = 4096) 95-99% of IL
// events across the four curves land under delta 512. Banding there
// shrinks the aggregation grid from 32 MiB (the p = 4096 default) to 8
// MiB, keeping the count-increment hot path close to cache-resident;
// the coarse-level pairs whose representative deltas exceed the band
// stay exact through the overflow log.
const ilBand = 512

// NFIMatrix aggregates the assignment's near-field event stream in one
// parallel traversal into a symmetric-canonical matrix: every unordered
// particle pair within opts.Radius contributes one event between the
// owning ranks, keyed with the smaller rank as source. Contract with
// the Sym variants; each pair then counts once per direction, exactly
// reproducing NFI's ordered stream.
func NFIMatrix(a *acd.Assignment, opts NFIOptions) *commmat.Matrix {
	defer obs.StartSpan("commmat.build.nfi").End()
	opts.normalize()
	opts.Engine = resolveEngine(opts.Engine, a.Order)
	if opts.Engine == keynav.EngineKeys {
		return nfiMatrixKeys(a, opts)
	}
	n := a.N()
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	b := commmat.NewBuilderBanded(a.P, workers, tightBand)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := b.Shard(w)
			for i := lo; i < hi; i++ {
				p := a.Particles[i]
				mine := a.Ranks[i]
				geom.VisitUpperNeighborhood(p, opts.Radius, opts.Metric, a.Side(), func(q geom.Point) {
					if r := a.RankAt(q); r >= 0 {
						if r < mine {
							s.Add(r, mine)
						} else {
							s.Add(mine, r)
						}
					}
				})
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return b.Finalize()
}

// nfiMatrixKeys is NFIMatrix on the key-space engine: the same event
// stream, with neighbor cells reached by dilated-integer arithmetic on
// the particle's Morton key and ranks resolved by key search on the
// assignment's shared occupancy index — no rank table.
func nfiMatrixKeys(a *acd.Assignment, opts NFIOptions) *commmat.Matrix {
	ix := a.KeyIndex()
	n := ix.N()
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	b := commmat.NewBuilderBanded(a.P, workers, tightBand)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := b.Shard(w)
			ix.VisitUpperNeighborPairs(lo, hi, opts.Radius, opts.Metric, func(mine, r int32) {
				if r < mine {
					s.Add(r, mine)
				} else {
					s.Add(mine, r)
				}
			})
		}(w, lo, hi)
	}
	wg.Wait()
	return b.Finalize()
}

// FFIMatrices holds the far-field communication matrices by type.
type FFIMatrices struct {
	// Interpolation aggregates the child-parent representative links of
	// every level, one event per link, keyed (parent, child) — the
	// canonical orientation, since a parent's representative is the
	// minimum over its children's. Hop distance is a metric (symmetric),
	// so one weight-1 contraction of this matrix yields both the
	// interpolation and the anterpolation accumulator; neither direction
	// is duplicated here.
	Interpolation *commmat.Matrix
	// InteractionList aggregates the well-separated cell exchanges of
	// every level in symmetric-canonical form (each unordered cell pair
	// once, smaller rank as source); contract with the Sym variants.
	InteractionList *commmat.Matrix
}

// FFIMatricesFromTree aggregates the far-field event streams of a
// representative tree over p ranks. Both the parent-child pass and the
// interaction-list pass are parallelized: levels are cut into row
// stripes and fed to a fixed worker pool, one builder shard per worker.
func FFIMatricesFromTree(tree *quadtree.RankTree, p, workers int) FFIMatrices {
	defer obs.StartSpan("commmat.build.ffi").End()
	if workers <= 0 {
		workers = defaultWorkers()
	}
	bi := commmat.NewBuilderBanded(p, workers, tightBand)
	bl := commmat.NewBuilder(p, workers)
	type task struct {
		level       uint
		yLo, yHi    uint32
		interaction bool
	}
	var tasks []task
	stripeTasks := func(level uint, interaction bool) {
		side := geom.Side(level)
		stripe := side / uint32(4*workers)
		if stripe == 0 {
			stripe = 1
		}
		for yLo := uint32(0); yLo < side; yLo += stripe {
			yHi := yLo + stripe
			if yHi > side {
				yHi = side
			}
			tasks = append(tasks, task{level: level, yLo: yLo, yHi: yHi, interaction: interaction})
		}
	}
	for l := tree.Order; l >= 1; l-- {
		stripeTasks(l, false)
	}
	for l := uint(2); l <= tree.Order; l++ {
		stripeTasks(l, true)
	}
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			si, sl := bi.Shard(w), bl.Shard(w)
			for t := range ch {
				if t.interaction {
					tree.VisitUpperInteractionPairs(t.level, t.yLo, t.yHi, func(rep, other int32) {
						if other < rep {
							sl.Add(other, rep)
						} else {
							sl.Add(rep, other)
						}
					})
				} else {
					tree.VisitRowCells(t.level, t.yLo, t.yHi, func(x, y uint32, rep int32) {
						// The parent representative is the minimum over
						// its children's cells, so (parent, child) is the
						// canonical src <= dst orientation of the link.
						si.Add(tree.Rep(t.level-1, x/2, y/2), rep)
					})
				}
			}
		}(w)
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return FFIMatrices{Interpolation: bi.Finalize(), InteractionList: bl.Finalize()}
}

// FFIMatricesFromIndex is FFIMatricesFromTree on the key-space engine:
// it aggregates the identical far-field event streams from the index's
// per-level occupied-cell slabs. Work is chunked over slab positions
// instead of grid rows, so task cost tracks occupancy — there are no
// empty-cell scans — and the interaction lists are enumerated from
// adjacent parent pairs rather than per-cell candidate windows.
func FFIMatricesFromIndex(ix *keynav.Index, p, workers int) FFIMatrices {
	defer obs.StartSpan("commmat.build.ffi").End()
	if workers <= 0 {
		workers = defaultWorkers()
	}
	bi := commmat.NewBuilderBanded(p, workers, tightBand)
	bl := commmat.NewBuilderBanded(p, workers, ilBand)
	type task struct {
		level       uint
		lo, hi      int
		interaction bool
	}
	var tasks []task
	chunkTasks := func(level uint, m int, interaction bool) {
		chunk := m / (4 * workers)
		if chunk == 0 {
			chunk = 1
		}
		for lo := 0; lo < m; lo += chunk {
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			tasks = append(tasks, task{level: level, lo: lo, hi: hi, interaction: interaction})
		}
	}
	for l := ix.Order; l >= 1; l-- {
		chunkTasks(l, ix.LevelLen(l), false)
	}
	// Interaction-list work is keyed by the parent level: pairs are
	// enumerated from their row-major-lower parent.
	for l := uint(2); l <= ix.Order; l++ {
		chunkTasks(l, ix.LevelLen(l-1), true)
	}
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			si, sl := bi.Shard(w), bl.Shard(w)
			for t := range ch {
				if t.interaction {
					ix.VisitUpperILPairs(t.level, t.lo, t.hi, func(rep, other int32) {
						if other < rep {
							sl.Add(other, rep)
						} else {
							sl.Add(rep, other)
						}
					})
				} else {
					// Parent representatives are minima over children, so
					// (parent, child) is already canonical.
					ix.VisitParentLinks(t.level, t.lo, t.hi, func(parent, rep int32) {
						si.Add(parent, rep)
					})
				}
			}
		}(w)
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return FFIMatrices{Interpolation: bi.Finalize(), InteractionList: bl.Finalize()}
}

// Distance tables are cached across calls, keyed by topology instance:
// experiment sweeps contract many assignments against the same topology
// objects, so a table materialized once serves the whole sweep. The
// cache is a small FIFO — worst case dtCacheMax tables of
// eagerCells-bounded size.
const dtCacheMax = 8

var (
	dtMu    sync.Mutex
	dtCache map[topology.Topology]*topology.DistanceTable
	dtFIFO  []topology.Topology
)

// distanceTableFor returns the cached distance table of a topology,
// creating (and caching) one on first use.
func distanceTableFor(t topology.Topology) *topology.DistanceTable {
	dtMu.Lock()
	defer dtMu.Unlock()
	if dt, ok := dtCache[t]; ok {
		return dt
	}
	if dtCache == nil {
		dtCache = make(map[topology.Topology]*topology.DistanceTable)
	}
	for len(dtFIFO) >= dtCacheMax {
		delete(dtCache, dtFIFO[0])
		dtFIFO = dtFIFO[1:]
	}
	dt := topology.NewDistanceTable(t)
	dtCache[t] = dt
	dtFIFO = append(dtFIFO, t)
	return dt
}

// contractAll contracts one symmetric-canonical matrix against every
// topology in a single fused pass through cached per-topology distance
// tables: each distinct pair is read once and evaluated against all K
// tables, with parallelism inside the matrix (bounded by workers)
// instead of one goroutine per topology. The fused pass is
// byte-identical to the per-topology ContractTableSym loop at any
// worker count.
func contractAll(m *commmat.Matrix, topos []topology.Topology, workers int) []acd.Accumulator {
	defer obs.StartSpan("commmat.contract").End()
	out := make([]acd.Accumulator, len(topos))
	dts := make([]*topology.DistanceTable, len(topos))
	accs := make([]*acd.Accumulator, len(topos))
	for t, topo := range topos {
		dts[t] = distanceTableFor(topo)
		accs[t] = &out[t]
	}
	m.ContractTableMultiSym(dts, accs, workers)
	return out
}
