package experiments

import (
	"context"
	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
)

// Table12Result holds, for one input distribution, the 4x4 particle x
// processor SFC combination matrices of Tables I (NFI) and II (FFI).
// Rows are processor-order curves, columns particle-order curves, in
// the paper's order (Hilbert, Z, Gray, Row major).
type Table12Result struct {
	// Distribution names the input distribution.
	Distribution string
	// Curves are the curve names indexing both matrix dimensions.
	Curves []string
	// NFI[r][c] is the near-field ACD with processor order r and
	// particle order c.
	NFI [][]float64
	// FFI[r][c] is the far-field ACD (interpolation + anterpolation +
	// interaction list).
	FFI [][]float64
}

// Matrices renders the result as the paper's two tables.
func (t Table12Result) Matrices() (nfi, ffi *tablefmt.Matrix) {
	mk := func(title string, cells [][]float64) *tablefmt.Matrix {
		return &tablefmt.Matrix{
			Title:      title,
			Corner:     "proc\\particle",
			Cols:       t.Curves,
			Rows:       t.Curves,
			Cells:      cells,
			MarkMinima: true,
		}
	}
	nfi = mk("Table I (NFI), "+t.Distribution+" distribution", t.NFI)
	ffi = mk("Table II (FFI), "+t.Distribution+" distribution", t.FFI)
	return nfi, ffi
}

// RunTable12 reproduces Tables I and II: for every input distribution
// and every particle-order x processor-order SFC pair, the NFI and FFI
// ACD on a torus of 4^ProcOrder processors, averaged over Trials. The
// full distribution x trial x particle-curve space runs as one sweep.
func RunTable12(ctx context.Context, p Params) ([]Table12Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	curves := sfc.All()
	topos := torusPerCurve(p, curves)
	samplers := dist.All()
	nc := len(curves)

	// Cell (d, trial, pc) -> index (d*Trials+trial)*nc + pc; the trial
	// group (d, trial) shares one sampled particle set.
	type cellOut struct {
		nfi, ffi []float64 // per processor-order curve
	}
	groups := make([]shared[[]geom.Point], len(samplers)*p.Trials)
	outs := make([]cellOut, len(groups)*nc)
	pool := sweepPool(p.Workers, len(outs))
	inner := innerWorkers(p.Workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		pc := cell % nc
		g := cell / nc
		trial := g % p.Trials
		d := g / p.Trials
		pts, err := groups[g].get(func() ([]geom.Point, error) {
			return samplePoints(samplers[d], p, trial)
		})
		if err != nil {
			return err
		}
		a, err := acd.Assign(pts, curves[pc], p.Order, p.P())
		if err != nil {
			return err
		}
		engine := p.engine()
		nfiAccs := fmmmodel.NFIMulti(a, topos, fmmmodel.NFIOptions{
			Radius: p.Radius, Metric: geom.MetricChebyshev, Workers: inner, Engine: engine,
		})
		ffiAccs := fmmmodel.FFIMulti(a, topos, fmmmodel.FFIOptions{Workers: inner, Engine: engine})
		o := cellOut{nfi: make([]float64, nc), ffi: make([]float64, nc)}
		for proc := range curves {
			o.nfi[proc] = nfiAccs[proc].ACD()
			o.ffi[proc] = ffiAccs[proc].Total().ACD()
		}
		a.Release()
		outs[cell] = o
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Reduce in cell-index order: float accumulation order matches the
	// old serial loops exactly, so results are worker-count-invariant.
	var out []Table12Result
	for d := range samplers {
		res := Table12Result{
			Distribution: samplers[d].Name(),
			Curves:       curveNames(curves),
			NFI:          zeroMatrix(nc),
			FFI:          zeroMatrix(nc),
		}
		for trial := 0; trial < p.Trials; trial++ {
			for pc := 0; pc < nc; pc++ {
				o := outs[(d*p.Trials+trial)*nc+pc]
				for proc := range curves {
					res.NFI[proc][pc] += o.nfi[proc]
					res.FFI[proc][pc] += o.ffi[proc]
				}
			}
		}
		scaleMatrix(res.NFI, 1/float64(p.Trials))
		scaleMatrix(res.FFI, 1/float64(p.Trials))
		out = append(out, res)
	}
	return out, nil
}

func zeroMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

func scaleMatrix(m [][]float64, f float64) {
	for _, row := range m {
		for i := range row {
			row[i] *= f
		}
	}
}
