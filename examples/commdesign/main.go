// commdesign walks through the paper's §VII workflow: predict the
// communication cost of an application from an abstraction of its
// communication mix, before writing a line of parallel code. The
// CommProfile API scores each candidate processor-order curve and the
// cheapest is selected.
//
// Run with: go run ./examples/commdesign
package main

import (
	"fmt"
	"log"

	"sfcacd"
)

func main() {
	const procOrder = 5 // 1,024 processors on a 32x32 torus

	// An iterative stencil + reduction application: most traffic is a
	// ring-style halo exchange, with a parallel prefix for load
	// rebalancing and a broadcast of global parameters each step. The
	// halo messages are large (ghost layers), the rest small.
	profile := sfcacd.CommProfile{Entries: []sfcacd.CommProfileEntry{
		{
			Name:            "halo (ring exchange)",
			Run:             sfcacd.RingExchange,
			Weight:          0.80,
			BytesPerMessage: 4096,
		},
		{
			Name:   "rebalance (prefix)",
			Run:    sfcacd.ParallelPrefix,
			Weight: 0.15,
		},
		{
			Name: "params (broadcast)",
			Run: func(t sfcacd.Topology) sfcacd.Accumulator {
				return sfcacd.Broadcast(t, 0)
			},
			Weight: 0.05,
		},
	}}

	fmt.Printf("predicted per-step communication cost on a %d-processor torus\n\n", 1<<(2*procOrder))
	fmt.Printf("%-9s  %-22s  %-19s  %-19s  %12s\n",
		"placement", "halo ACD", "prefix ACD", "broadcast ACD", "profile score")

	candidates := make([]sfcacd.Topology, 0, 4)
	for _, placement := range sfcacd.Curves() {
		candidates = append(candidates, sfcacd.NewTorus(procOrder, placement))
	}
	best, scores, err := profile.Best(candidates)
	if err != nil {
		log.Fatal(err)
	}
	for i, placement := range sfcacd.Curves() {
		topo := candidates[i]
		fmt.Printf("%-9s  %-22.3f  %-19.3f  %-19.3f  %12.3f\n",
			placement.Name(),
			sfcacd.RingExchange(topo).ACD(),
			sfcacd.ParallelPrefix(topo).ACD(),
			sfcacd.Broadcast(topo, 0).ACD(),
			scores[i])
	}
	fmt.Printf("\nselect the %s placement: expected %.3f hops per byte\n",
		sfcacd.Curves()[best].Name(), scores[best])
	fmt.Println("(the halo phase's 4 KiB messages dominate the volume-weighted score,")
	fmt.Println("so the locality-preserving placement wins despite losing the broadcast)")
}
