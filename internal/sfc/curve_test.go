package sfc

import (
	"testing"
	"testing/quick"

	"sfcacd/internal/geom"
)

func TestRoundTripExhaustive(t *testing.T) {
	for _, c := range Extended() {
		for order := uint(0); order <= 5; order++ {
			n := geom.Cells(order)
			for d := uint64(0); d < n; d++ {
				p := c.Point(order, d)
				if got := c.Index(order, p); got != d {
					t.Fatalf("%s order %d: Index(Point(%d)) = %d", c.Name(), order, d, got)
				}
			}
		}
	}
}

func TestRoundTripRandomHighOrder(t *testing.T) {
	for _, c := range Extended() {
		c := c
		check := func(x, y uint16) bool {
			const order = 16
			p := geom.Point{X: uint32(x), Y: uint32(y)}
			return c.Point(order, c.Index(order, p)) == p
		}
		if err := quick.Check(check, nil); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestBijectivity(t *testing.T) {
	for _, c := range Extended() {
		const order = 4
		seen := make(map[geom.Point]uint64)
		Walk(c, order, func(d uint64, p geom.Point) {
			if prev, dup := seen[p]; dup {
				t.Fatalf("%s: cell %v visited at %d and %d", c.Name(), p, prev, d)
			}
			seen[p] = d
		})
		if len(seen) != int(geom.Cells(order)) {
			t.Fatalf("%s: visited %d cells, want %d", c.Name(), len(seen), geom.Cells(order))
		}
	}
}

func TestHilbertUnitSteps(t *testing.T) {
	// The defining property of the Hilbert curve: consecutive positions
	// are spatially adjacent (Manhattan distance exactly 1).
	for order := uint(1); order <= 7; order++ {
		prev := Hilbert.Point(order, 0)
		for d := uint64(1); d < geom.Cells(order); d++ {
			p := Hilbert.Point(order, d)
			if geom.Manhattan(prev, p) != 1 {
				t.Fatalf("order %d: step %d-%d jumps from %v to %v", order, d-1, d, prev, p)
			}
			prev = p
		}
	}
}

func TestSnakeUnitSteps(t *testing.T) {
	for order := uint(1); order <= 6; order++ {
		prev := Snake.Point(order, 0)
		for d := uint64(1); d < geom.Cells(order); d++ {
			p := Snake.Point(order, d)
			if geom.Manhattan(prev, p) != 1 {
				t.Fatalf("order %d: snake step %d jumps from %v to %v", order, d, prev, p)
			}
			prev = p
		}
	}
}

func TestHilbertStartsAtOrigin(t *testing.T) {
	for order := uint(0); order <= 8; order++ {
		if p := Hilbert.Point(order, 0); p != (geom.Pt(0, 0)) {
			t.Fatalf("order %d: curve starts at %v", order, p)
		}
	}
}

func TestHilbertEndsAdjacentToStartRow(t *testing.T) {
	// H_k ends at (2^k-1, 0): entry and exit on the same edge, the
	// property that makes the recursive gluing work.
	for order := uint(1); order <= 8; order++ {
		side := geom.Side(order)
		last := Hilbert.Point(order, geom.Cells(order)-1)
		if last != (geom.Point{X: side - 1, Y: 0}) {
			t.Fatalf("order %d: curve ends at %v, want (%d,0)", order, last, side-1)
		}
	}
}

func TestMortonMatchesInterleaveDefinition(t *testing.T) {
	// Brute-force bit interleaving as the ground truth.
	const order = 5
	side := geom.Side(order)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			var want uint64
			for b := uint(0); b < order; b++ {
				want |= uint64(x>>b&1) << (2 * b)
				want |= uint64(y>>b&1) << (2*b + 1)
			}
			if got := Morton.Index(order, geom.Pt(x, y)); got != want {
				t.Fatalf("morton(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestMortonQuadrantLocality(t *testing.T) {
	// All indices of a 2^j x 2^j aligned block are contiguous — the
	// property the quadtree package relies on.
	const order = 6
	for _, blockOrder := range []uint{1, 2, 3} {
		bs := geom.Side(blockOrder)
		side := geom.Side(order)
		for by := uint32(0); by < side; by += bs {
			for bx := uint32(0); bx < side; bx += bs {
				lo := Morton.Index(order, geom.Pt(bx, by))
				hi := Morton.Index(order, geom.Pt(bx+bs-1, by+bs-1))
				if hi-lo != uint64(bs)*uint64(bs)-1 {
					t.Fatalf("block (%d,%d) size %d spans [%d,%d]", bx, by, bs, lo, hi)
				}
				if lo%uint64(bs*bs) != 0 {
					t.Fatalf("block (%d,%d) not aligned: lo=%d", bx, by, lo)
				}
			}
		}
	}
}

func TestGrayCodeHelpers(t *testing.T) {
	for v := uint64(0); v < 4096; v++ {
		g := GrayEncode(v)
		if GrayDecode(g) != v {
			t.Fatalf("GrayDecode(GrayEncode(%d)) = %d", v, GrayDecode(g))
		}
		if v > 0 {
			diff := GrayEncode(v) ^ GrayEncode(v-1)
			if diff&(diff-1) != 0 {
				t.Fatalf("gray codes of %d and %d differ in >1 bit", v, v-1)
			}
		}
	}
}

func TestGraySuccessiveMortonCodesDifferInOneBit(t *testing.T) {
	// The paper: "each successive binary representation differs in
	// exactly one place" — consecutive Gray-order cells have Morton
	// codes one bit apart.
	const order = 4
	for d := uint64(1); d < geom.Cells(order); d++ {
		a := Gray.Point(order, d-1)
		b := Gray.Point(order, d)
		diff := mortonEncode(a.X, a.Y) ^ mortonEncode(b.X, b.Y)
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("step %d: morton codes differ by %#x", d, diff)
		}
	}
}

func TestRowMajorMatchesPaperConstruction(t *testing.T) {
	// "assign the points in the first column the values {1..2^k}" —
	// zero-based: column x=0 gets 0..2^k-1 in y order.
	const order = 3
	side := geom.Side(order)
	for y := uint32(0); y < side; y++ {
		if got := RowMajor.Index(order, geom.Pt(0, y)); got != uint64(y) {
			t.Fatalf("first column cell y=%d has index %d", y, got)
		}
	}
	// i-th column numbered (i-1)*2^k+1 .. i*2^k (1-based) = x*2^k + y.
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			want := uint64(x)*uint64(side) + uint64(y)
			if got := RowMajor.Index(order, geom.Pt(x, y)); got != want {
				t.Fatalf("rowmajor(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestRecursiveConstructionsMatchFastForms(t *testing.T) {
	type pair struct {
		name string
		fast Curve
		rec  func(uint) []geom.Point
	}
	for _, p := range []pair{
		{"hilbert", Hilbert, RecursiveHilbert},
		{"morton", Morton, RecursiveMorton},
		{"gray", Gray, RecursiveGray},
	} {
		for order := uint(0); order <= 6; order++ {
			seq := p.rec(order)
			if len(seq) != int(geom.Cells(order)) {
				t.Fatalf("%s order %d: recursive length %d", p.name, order, len(seq))
			}
			for d, cell := range seq {
				if got := p.fast.Point(order, uint64(d)); got != cell {
					t.Fatalf("%s order %d: position %d is %v recursively but %v fast",
						p.name, order, d, cell, got)
				}
			}
		}
	}
}

func TestRecursiveConstructionPanicsAboveLimit(t *testing.T) {
	for _, fn := range []func(uint) []geom.Point{RecursiveHilbert, RecursiveMorton, RecursiveGray} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("recursive construction at order 13 did not panic")
				}
			}()
			fn(13)
		}()
	}
}

func TestByName(t *testing.T) {
	for _, c := range Extended() {
		got, err := ByName(c.Name())
		if err != nil || got.Name() != c.Name() {
			t.Errorf("ByName(%q) = %v, %v", c.Name(), got, err)
		}
	}
	for alias, want := range map[string]Curve{
		"z": Morton, "zcurve": Morton, "z-curve": Morton,
		"row": RowMajor, "row-major": RowMajor,
		"graycode": Gray, "gray-code": Gray,
		"boustrophedon": Snake,
	} {
		got, err := ByName(alias)
		if err != nil || got.Name() != want.Name() {
			t.Errorf("ByName(%q) = %v, %v; want %s", alias, got, err, want.Name())
		}
	}
	if _, err := ByName("peano"); err == nil {
		t.Error("ByName(peano) should fail")
	}
}

func TestAllAndNames(t *testing.T) {
	if got := len(All()); got != 4 {
		t.Fatalf("All() has %d curves, want the paper's 4", got)
	}
	if got := len(Extended()); got != 6 {
		t.Fatalf("Extended() has %d curves, want 6", got)
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted/unique: %v", names)
		}
	}
}

func TestSortPoints(t *testing.T) {
	const order = 3
	pts := []geom.Point{geom.Pt(7, 7), geom.Pt(0, 0), geom.Pt(3, 2), geom.Pt(1, 1), geom.Pt(0, 1)}
	for _, c := range Extended() {
		perm := SortPoints(c, order, pts)
		if len(perm) != len(pts) {
			t.Fatalf("perm length %d", len(perm))
		}
		for i := 1; i < len(perm); i++ {
			a := c.Index(order, pts[perm[i-1]])
			b := c.Index(order, pts[perm[i]])
			if a > b {
				t.Fatalf("%s: not sorted at %d: %d > %d", c.Name(), i, a, b)
			}
		}
	}
}

func TestSortPointsStableOnDuplicates(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(1, 1)}
	perm := SortPoints(Hilbert, 2, pts)
	for i, v := range perm {
		if v != i {
			t.Fatalf("duplicate cells reordered: %v", perm)
		}
	}
}

func TestIndexPanicsOutsideGrid(t *testing.T) {
	for _, c := range Extended() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Index outside grid did not panic", c.Name())
				}
			}()
			c.Index(2, geom.Pt(4, 0))
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Point outside range did not panic", c.Name())
				}
			}()
			c.Point(2, 16)
		}()
	}
}

func TestOrderZero(t *testing.T) {
	for _, c := range Extended() {
		if got := c.Index(0, geom.Pt(0, 0)); got != 0 {
			t.Errorf("%s: order-0 index = %d", c.Name(), got)
		}
		if got := c.Point(0, 0); got != (geom.Pt(0, 0)) {
			t.Errorf("%s: order-0 point = %v", c.Name(), got)
		}
	}
}
