package fmmmodel

import (
	"sfcacd/internal/acd"
	"sfcacd/internal/geom"
	"sfcacd/internal/quadtree"
)

// This file exposes the raw communication event streams behind the NFI
// and FFI accumulators, for consumers that need more than hop counts —
// notably the contention extension, which routes every event over
// physical links. Visitors are serial and deterministic.

// VisitNFIPairs calls fn for every ordered near-field communication
// (src and dst processor ranks), in particle order. Pairs on the same
// processor are included (src == dst), mirroring the accumulator.
func VisitNFIPairs(a *acd.Assignment, opts NFIOptions, fn func(src, dst int32)) {
	opts.normalize()
	for i := 0; i < a.N(); i++ {
		p := a.Particles[i]
		mine := a.Ranks[i]
		geom.VisitNeighborhood(p, opts.Radius, opts.Metric, a.Side(), func(q geom.Point) {
			if r := a.RankAt(q); r >= 0 {
				fn(mine, r)
			}
		})
	}
}

// VisitFFIPairs calls fn for every far-field communication: once per
// interpolation link (child representative -> parent representative),
// once per anterpolation link (the reverse), and once per
// interaction-list exchange.
func VisitFFIPairs(a *acd.Assignment, fn func(src, dst int32)) {
	tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	for l := tree.Order; l >= 1; l-- {
		tree.VisitCells(l, func(x, y uint32, rep int32) {
			parent := tree.Rep(l-1, x/2, y/2)
			fn(rep, parent) // interpolation
			fn(parent, rep) // anterpolation
		})
	}
	for l := uint(2); l <= tree.Order; l++ {
		tree.VisitCells(l, func(x, y uint32, rep int32) {
			tree.InteractionList(l, x, y, func(_, _ uint32, other int32) {
				fn(rep, other)
			})
		})
	}
}
