package fmmmodel

import (
	"fmt"
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/keynav"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

// TestDifferentialKeysEngine pins the key-space engine to the direct
// per-event oracle with the same discipline as the matrix-path
// differential: exact Sum/Count/Zeros equality on all six topologies,
// across seeds x curves x radii, for both interaction families. Any
// divergence is a lost, duplicated, or misrouted communication event.
func TestDifferentialKeysEngine(t *testing.T) {
	const order = 6
	topos := allTopologies()
	curves := []sfc.Curve{sfc.RowMajor, sfc.Morton, sfc.Gray, sfc.Hilbert}
	for seed := int64(1); seed <= 2; seed++ {
		pts, err := dist.SampleUnique(dist.Uniform, rng.New(uint64(seed)), order, 400)
		if err != nil {
			t.Fatal(err)
		}
		for _, curve := range curves {
			a, err := acd.Assign(pts, curve, order, 64)
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("seed%d/%s", seed, curve.Name())

			for _, radius := range []int{1, 2} {
				for _, metric := range []geom.Metric{geom.MetricChebyshev, geom.MetricManhattan} {
					opts := NFIOptions{Radius: radius, Metric: metric, Engine: keynav.EngineKeys}
					multi := NFIMulti(a, topos, opts)
					direct := NFIOptions{Radius: radius, Metric: metric}
					for i, topo := range topos {
						if single := NFI(a, topo, direct); multi[i] != single {
							t.Errorf("%s r=%d %s %s: keys NFI %+v != direct %+v",
								name, radius, metric, topo.Name(), multi[i], single)
						}
					}
				}
			}

			multi := FFIMulti(a, topos, FFIOptions{Engine: keynav.EngineKeys})
			tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
			for i, topo := range topos {
				if single := FFIFromTree(tree, topo, FFIOptions{}); multi[i] != single {
					t.Errorf("%s %s: keys FFI %+v != direct %+v", name, topo.Name(), multi[i], single)
				}
			}
			tree.Release()
		}
	}
}

// TestKeysEngineWorkerInvariance requires byte-identical results at
// every worker count — the keys engine must preserve the sweep
// scheduler's determinism guarantee.
func TestKeysEngineWorkerInvariance(t *testing.T) {
	const order = 6
	topos := allTopologies()
	pts, err := dist.SampleUnique(dist.Normal, rng.New(41), order, 500)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 64)
	if err != nil {
		t.Fatal(err)
	}
	nfiBase := NFIMulti(a, topos, NFIOptions{Workers: 1, Engine: keynav.EngineKeys})
	ffiBase := FFIMulti(a, topos, FFIOptions{Workers: 1, Engine: keynav.EngineKeys})
	for _, workers := range []int{2, 3, 8} {
		nfi := NFIMulti(a, topos, NFIOptions{Workers: workers, Engine: keynav.EngineKeys})
		ffi := FFIMulti(a, topos, FFIOptions{Workers: workers, Engine: keynav.EngineKeys})
		for i := range topos {
			if nfi[i] != nfiBase[i] {
				t.Errorf("workers=%d %s: NFI %+v != single-worker %+v", workers, topos[i].Name(), nfi[i], nfiBase[i])
			}
			if ffi[i] != ffiBase[i] {
				t.Errorf("workers=%d %s: FFI %+v != single-worker %+v", workers, topos[i].Name(), ffi[i], ffiBase[i])
			}
		}
	}
}

// TestKeysEngineSkipsRankTable pins the point of the lazy table: a
// keys-engine evaluation must never build the assignment's cell->rank
// table.
func TestKeysEngineSkipsRankTable(t *testing.T) {
	const order = 6
	pts, err := dist.SampleUnique(dist.Uniform, rng.New(43), order, 300)
	if err != nil {
		t.Fatal(err)
	}
	a, err := acd.Assign(pts, sfc.Hilbert, order, 16)
	if err != nil {
		t.Fatal(err)
	}
	topos := []topology.Topology{topology.NewRing(16)}
	NFIMulti(a, topos, NFIOptions{Engine: keynav.EngineKeys})
	FFIMulti(a, topos, FFIOptions{Engine: keynav.EngineKeys})
	if a.TableBuilt() {
		t.Fatal("keys engine built the rank table")
	}
	// The tree engine does need it.
	NFIMulti(a, topos, NFIOptions{})
	if !a.TableBuilt() {
		t.Fatal("tree engine did not build the rank table")
	}
}
