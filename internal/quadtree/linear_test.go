package quadtree

import (
	"testing"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
)

func TestCellRelations(t *testing.T) {
	c := Cell{Level: 2, X: 1, Y: 2}
	if p := c.Parent(); p != (Cell{Level: 1, X: 0, Y: 1}) {
		t.Fatalf("parent = %v", p)
	}
	for i := 0; i < 4; i++ {
		ch := c.Child(i)
		if ch.Parent() != c {
			t.Fatalf("child %d's parent is %v", i, ch.Parent())
		}
		if !c.Contains(ch) {
			t.Fatalf("cell does not contain child %d", i)
		}
	}
	if !c.Contains(c) {
		t.Error("cell does not contain itself")
	}
	if c.Contains(c.Parent()) {
		t.Error("cell contains its parent")
	}
	if Root.Contains(c) != true {
		t.Error("root does not contain descendant")
	}
	other := Cell{Level: 2, X: 2, Y: 2}
	if c.Contains(other) || other.Contains(c) {
		t.Error("disjoint cells claim containment")
	}
}

func TestCellPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Root.Parent() },
		func() { Root.Child(4) },
		func() { Root.Child(-1) },
		func() { (Cell{Level: 5}).MortonRange(3) },
		func() { (Cell{Level: 5}).ContainsPoint(3, geom.Pt(0, 0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestContainsPoint(t *testing.T) {
	const order = 4
	c := Cell{Level: 2, X: 3, Y: 0}
	// At order 4, this cell covers x in [12,16), y in [0,4).
	if !c.ContainsPoint(order, geom.Pt(12, 0)) || !c.ContainsPoint(order, geom.Pt(15, 3)) {
		t.Error("cell should contain its corners")
	}
	if c.ContainsPoint(order, geom.Pt(11, 0)) || c.ContainsPoint(order, geom.Pt(12, 4)) {
		t.Error("cell contains outside points")
	}
}

func TestMortonRange(t *testing.T) {
	const order = 3
	lo, hi := Root.MortonRange(order)
	if lo != 0 || hi != 64 {
		t.Fatalf("root range [%d,%d)", lo, hi)
	}
	// Children partition the parent's range in order.
	c := Cell{Level: 1, X: 1, Y: 0}
	clo, chi := c.MortonRange(order)
	if chi-clo != 16 {
		t.Fatalf("level-1 cell covers %d codes", chi-clo)
	}
	prev := clo
	for i := 0; i < 4; i++ {
		glo, ghi := c.Child(i).MortonRange(order)
		if glo != prev {
			t.Fatalf("child %d starts at %d, want %d", i, glo, prev)
		}
		prev = ghi
	}
	if prev != chi {
		t.Fatalf("children end at %d, want %d", prev, chi)
	}
}

func TestBuildLinearPartition(t *testing.T) {
	const order = 6
	r := rng.New(1)
	pts, err := dist.SampleUnique(dist.Exponential, r, order, 300)
	if err != nil {
		t.Fatal(err)
	}
	tree := BuildLinear(order, pts, 8)
	// Leaves must partition the domain: disjoint Morton ranges covering
	// [0, 4^order).
	var pos uint64
	for i, leaf := range tree.Leaves {
		lo, hi := leaf.MortonRange(order)
		if lo != pos {
			t.Fatalf("leaf %d starts at %d, want %d", i, lo, pos)
		}
		pos = hi
	}
	if pos != geom.Cells(order) {
		t.Fatalf("leaves cover %d codes", pos)
	}
	// Counts respect the limit away from the finest level, and total to
	// the particle count.
	for i, leaf := range tree.Leaves {
		if leaf.Level < order && tree.Counts[i] > 8 {
			t.Fatalf("leaf %d (level %d) holds %d > 8 particles", i, leaf.Level, tree.Counts[i])
		}
	}
	if tree.TotalParticles() != len(pts) {
		t.Fatalf("total particles %d, want %d", tree.TotalParticles(), len(pts))
	}
}

func TestBuildLinearLocate(t *testing.T) {
	const order = 5
	r := rng.New(2)
	pts, err := dist.SampleUnique(dist.Normal, r, order, 120)
	if err != nil {
		t.Fatal(err)
	}
	tree := BuildLinear(order, pts, 4)
	for _, p := range pts {
		i := tree.Locate(p)
		if i < 0 || i >= len(tree.Leaves) {
			t.Fatalf("Locate(%v) = %d", p, i)
		}
		if !tree.Leaves[i].ContainsPoint(order, p) {
			t.Fatalf("Locate(%v) leaf %v does not contain it", p, tree.Leaves[i])
		}
	}
	// Also arbitrary (possibly empty) cells.
	for _, p := range []geom.Point{geom.Pt(0, 0), geom.Pt(31, 31), geom.Pt(16, 7)} {
		i := tree.Locate(p)
		if !tree.Leaves[i].ContainsPoint(order, p) {
			t.Fatalf("Locate(%v) wrong leaf", p)
		}
	}
}

func TestBuildLinearAdaptiveDepth(t *testing.T) {
	// A tight cluster forces deep refinement; sparse areas stay coarse.
	const order = 8
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1), // tight corner cluster
		geom.Pt(200, 200), // lone far particle
	}
	tree := BuildLinear(order, pts, 1)
	if tree.Depth() < 7 {
		t.Fatalf("cluster should force depth >= 7, got %d", tree.Depth())
	}
	// The lone particle's leaf should be coarse.
	i := tree.Locate(geom.Pt(200, 200))
	if tree.Leaves[i].Level > 2 {
		t.Errorf("lone particle leaf at level %d, expected coarse", tree.Leaves[i].Level)
	}
}

func TestBuildLinearSingleLeaf(t *testing.T) {
	tree := BuildLinear(4, []geom.Point{geom.Pt(3, 3)}, 4)
	if len(tree.Leaves) != 1 || tree.Leaves[0] != Root {
		t.Fatalf("tree over 1 particle = %v", tree.Leaves)
	}
}

func TestBuildLinearEmpty(t *testing.T) {
	tree := BuildLinear(4, nil, 2)
	if len(tree.Leaves) != 1 || tree.TotalParticles() != 0 {
		t.Fatalf("empty tree = %v", tree.Leaves)
	}
}

func TestBuildLinearMaxPerLeafPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("maxPerLeaf=0 did not panic")
		}
	}()
	BuildLinear(4, nil, 0)
}

func TestBuildLinearDuplicatePointsAtFinest(t *testing.T) {
	// Duplicates cannot be split apart; the finest level must absorb
	// them without infinite recursion.
	pts := []geom.Point{geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5)}
	tree := BuildLinear(3, pts, 1)
	i := tree.Locate(geom.Pt(5, 5))
	if tree.Leaves[i].Level != 3 || tree.Counts[i] != 3 {
		t.Fatalf("duplicate leaf %v count %d", tree.Leaves[i], tree.Counts[i])
	}
}

func TestCellString(t *testing.T) {
	if s := (Cell{Level: 2, X: 1, Y: 3}).String(); s != "L2(1,3)" {
		t.Errorf("String = %q", s)
	}
}
