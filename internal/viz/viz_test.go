package viz

import (
	"strings"
	"testing"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

func TestASCIIPathHilbertOrder1(t *testing.T) {
	// H_1 visits (0,0),(0,1),(1,1),(1,0): a bridge shape open at the
	// bottom.
	got := ASCIIPath(sfc.Hilbert, 1)
	want := "o-o\n|\no o\n"
	// Normalize: the canvas trims trailing spaces; the middle row has
	// the two vertical links.
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("path:\n%s", got)
	}
	if lines[0] != "o-o" {
		t.Errorf("top row %q", lines[0])
	}
	if lines[1] != "| |" {
		t.Errorf("middle row %q", lines[1])
	}
	if lines[2] != "o o" {
		t.Errorf("bottom row %q", lines[2])
	}
	_ = want
}

func TestASCIIPathCellCount(t *testing.T) {
	for _, c := range sfc.Extended() {
		for order := uint(1); order <= 4; order++ {
			got := ASCIIPath(c, order)
			if n := strings.Count(got, "o"); n != int(geom.Cells(order)) {
				t.Errorf("%s order %d: %d cells drawn, want %d", c.Name(), order, n, geom.Cells(order))
			}
		}
	}
}

func TestASCIIPathConnectorCounts(t *testing.T) {
	// A continuous curve of 4^k cells draws exactly 4^k - 1 links; the
	// Z-curve has long jumps that are not drawn.
	hil := ASCIIPath(sfc.Hilbert, 3)
	links := strings.Count(hil, "-") + strings.Count(hil, "|")
	if links != int(geom.Cells(3))-1 {
		t.Errorf("hilbert links = %d, want %d", links, geom.Cells(3)-1)
	}
	z := ASCIIPath(sfc.Morton, 3)
	if zl := strings.Count(z, "-") + strings.Count(z, "|"); zl >= links {
		t.Errorf("morton links %d not fewer than hilbert %d", zl, links)
	}
}

func TestASCIIPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("order 7 accepted")
		}
	}()
	ASCIIPath(sfc.Hilbert, 7)
}

func TestSVGPath(t *testing.T) {
	svg := SVGPath(sfc.Hilbert, 2, 10)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "polyline") {
		t.Fatalf("svg output:\n%s", svg)
	}
	// 16 points for order 2.
	points := strings.Count(strings.Split(svg, `points="`)[1], ",")
	if points != 16 {
		t.Errorf("svg has %d points, want 16", points)
	}
	// Default cell size when nonpositive.
	if !strings.Contains(SVGPath(sfc.Morton, 1, 0), `width="32"`) {
		t.Error("default cell size not applied")
	}
}

func TestDensityMapShape(t *testing.T) {
	out := DensityMap(dist.Uniform, 1, 4, 2000)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("%d lines, want 16", len(lines))
	}
	for i, l := range lines {
		if len(l) != 16 {
			t.Fatalf("line %d has %d chars", i, len(l))
		}
	}
	// The exponential corner map must be darkest at the bottom-left
	// (last line, first column region) and blank in the far corner.
	exp := DensityMap(dist.Exponential, 1, 4, 4000)
	el := strings.Split(strings.TrimRight(exp, "\n"), "\n")
	if el[0][15] != ' ' {
		t.Errorf("exponential far corner not empty: %q", el[0])
	}
	if el[15][0] == ' ' {
		t.Errorf("exponential near corner empty")
	}
}

func TestRankMap(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(3, 2)}
	out := RankMap(sfc.Hilbert, 2, pts)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, want := range []string{"0", "1", "2", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("rank map missing %q:\n%s", want, out)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("order 7 accepted")
		}
	}()
	RankMap(sfc.Hilbert, 7, pts)
}

func TestOrderingList(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 0), geom.Pt(0, 0)}
	got := OrderingList(sfc.RowMajor, 1, pts)
	if got != "(0,0) (1,0)" {
		t.Errorf("ordering list %q", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := DensityMap(dist.Normal, 7, 5, 1000)
	b := DensityMap(dist.Normal, 7, 5, 1000)
	if a != b {
		t.Fatal("density map not deterministic")
	}
	r1, _ := dist.SampleUnique(dist.Uniform, rng.New(9), 4, 10)
	if OrderingList(sfc.Gray, 4, r1) != OrderingList(sfc.Gray, 4, r1) {
		t.Fatal("ordering list not deterministic")
	}
}
