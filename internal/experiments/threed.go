package experiments

import (
	"context"
	"fmt"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom3"
	"sfcacd/internal/keynav"
	"sfcacd/internal/model3d"
	"sfcacd/internal/obs"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// ThreeDResult holds the 3D validation study (the paper's future-work
// item ii): NFI and FFI ACD per 3D curve on a 3D torus, plus the 3D
// ANNS, mirroring the 2D methodology on an octree decomposition.
type ThreeDResult struct {
	// Curves are the 3D curve names.
	Curves []string
	// NFI, FFI are ACD values per curve (same curve both roles).
	NFI, FFI []float64
	// ANNS is the 3D average nearest neighbor stretch (radius 1) per
	// curve, computed on the full grid of ANNSOrder.
	ANNS []float64
	// ANNSOrder is the resolution used for the ANNS column.
	ANNSOrder uint
}

// Matrix renders the study.
func (r ThreeDResult) Matrix() *tablefmt.Matrix {
	m := &tablefmt.Matrix{
		Title:  "3D validation: ACD on a 3D torus and 3D ANNS",
		Corner: "3D curve",
		Cols:   []string{"NFI ACD", "FFI ACD", fmt.Sprintf("ANNS (2^%d grid)", r.ANNSOrder)},
		Rows:   r.Curves,
	}
	for i := range r.Curves {
		m.Cells = append(m.Cells, []float64{r.NFI[i], r.FFI[i], r.ANNS[i]})
	}
	return m
}

// ThreeDParams configures the 3D study.
type ThreeDParams struct {
	// Particles is the input size.
	Particles int
	// Order is the cube resolution order.
	Order uint
	// ProcOrder fixes p = 8^ProcOrder on a 2^ProcOrder-sided torus.
	ProcOrder uint
	// Radius is the near-field radius.
	Radius int
	// ANNSOrder is the (small) grid order for the full-grid ANNS
	// column.
	ANNSOrder uint
	// Trials and Seed as in Params.
	Trials int
	Seed   uint64
}

// ThreeDDefault is a laptop-scale default for the 3D study.
var ThreeDDefault = ThreeDParams{
	Particles: 20000,
	Order:     6, // 64^3 cells
	ProcOrder: 2, // 64 processors on a 4x4x4 torus
	Radius:    1,
	ANNSOrder: 4, // 16^3 full grid
	Trials:    1,
	Seed:      2013,
}

// RunThreeD runs the 3D validation: uniform particles ordered by each
// 3D curve, distributed over a 3D torus placed with the same curve.
// workers caps the sweep pool (0 means GOMAXPROCS) and engine selects
// the neighbor-resolution machinery; both are separate arguments so
// ThreeDParams' JSON encoding (recorded in run manifests and cache
// keys) stays purely scientific — neither knob changes results.
func RunThreeD(ctx context.Context, p ThreeDParams, workers int, engine keynav.Engine) (ThreeDResult, error) {
	if p.Particles < 1 || p.Trials < 1 {
		return ThreeDResult{}, fmt.Errorf("experiments: bad 3D params %+v", p)
	}
	if uint64(p.Particles) > geom3.Cells(p.Order) {
		return ThreeDResult{}, fmt.Errorf("experiments: %d particles exceed %d cells",
			p.Particles, geom3.Cells(p.Order))
	}
	curves := sfc.AllND(3)
	nc := len(curves)
	res := ThreeDResult{
		ANNSOrder: p.ANNSOrder,
		NFI:       make([]float64, nc),
		FFI:       make([]float64, nc),
		ANNS:      make([]float64, nc),
	}
	for _, c := range curves {
		res.Curves = append(res.Curves, c.Name())
	}
	procs := 1 << (3 * p.ProcOrder)
	type cellOut struct{ nfi, ffi float64 }
	groups := make([]shared[[]geom3.Point3], p.Trials)
	outs := make([]cellOut, p.Trials*nc)
	pool := sweepPool(workers, len(outs))
	inner := innerWorkers(workers, pool)
	err := runCells(ctx, pool, len(outs), func(cell int) error {
		c := cell % nc
		trial := cell / nc
		pts, err := groups[trial].get(func() ([]geom3.Point3, error) {
			defer obs.StartSpan("sampling").End()
			return dist.SampleUnique3(dist.Uniform3, rng.New(trialSeed(p.Seed, trial)), p.Order, p.Particles)
		})
		if err != nil {
			return err
		}
		curve := curves[c]
		a, err := model3d.Assign(pts, curve, p.Order, procs)
		if err != nil {
			return err
		}
		torus := topology.NewTorus3D(p.ProcOrder, curve)
		nfi := model3d.NFI(a, torus, model3d.NFIOptions{Radius: p.Radius, Workers: inner, Engine: engine})
		ffi := model3d.FFI(a, torus, inner)
		outs[cell] = cellOut{nfi: nfi.ACD(), ffi: ffi.Total().ACD()}
		return nil
	})
	if err != nil {
		return ThreeDResult{}, err
	}
	for cell, o := range outs {
		c := cell % nc
		res.NFI[c] += o.nfi / float64(p.Trials)
		res.FFI[c] += o.ffi / float64(p.Trials)
	}
	// The full-grid ANNS column, one cell per curve.
	if err := runCells(ctx, sweepPool(workers, nc), nc, func(c int) error {
		mean, _ := model3d.ANNS3D(curves[c], p.ANNSOrder, 1)
		res.ANNS[c] = mean
		return nil
	}); err != nil {
		return ThreeDResult{}, err
	}
	return res, nil
}
