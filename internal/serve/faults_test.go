package serve

// Fault-injection tests pinning the serving path's degradation
// matrix (ISSUE 4 / DESIGN §6 "failure modes"):
//
//	disk Get error     -> recompute and serve, serve.disk_errors++
//	disk Put error     -> result still served, serve.disk_errors++
//	corrupt disk entry -> quarantined once; disk_errors stops growing
//	rename "crash"     -> janitor recovers on reopen (resultcache tests)
//	slow compute       -> 504 for its waiter within the deadline,
//	                      coalesced waiters of a fast compute unaffected
//	compute error      -> propagated, nothing cached

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sfcacd/internal/experiments"
	"sfcacd/internal/faultinject"
	"sfcacd/internal/obs"
	"sfcacd/internal/resultcache"
)

// newFaultyDiskServer returns a server over a fresh disk store with a
// fault injector armed on the store, plus the injector for arming
// compute-site faults.
func newFaultyDiskServer(t *testing.T, dir string) (*Server, *faultinject.Injector) {
	t.Helper()
	disk, err := resultcache.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	disk.SetFaults(inj)
	s := New(Options{Workers: 2, Disk: disk, Faults: inj})
	return s, inj
}

func TestInjectedDiskGetErrorRecomputes(t *testing.T) {
	s, inj := newFaultyDiskServer(t, t.TempDir())
	var runs atomic.Int64
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		runs.Add(1)
		return fakeOutput(p), nil
	}
	inj.EnableN(resultcache.SiteDiskGet, 1, faultinject.Fault{})
	errsBefore := obs.GetCounter("serve.disk_errors").Value()

	resp, err := s.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatalf("Do with injected disk Get error: %v", err)
	}
	if resp.Status != StatusMiss || runs.Load() != 1 {
		t.Errorf("status=%q runs=%d, want recompute on disk error", resp.Status, runs.Load())
	}
	if got := obs.GetCounter("serve.disk_errors").Value() - errsBefore; got != 1 {
		t.Errorf("serve.disk_errors delta = %d, want 1", got)
	}
}

func TestInjectedDiskPutErrorStillServes(t *testing.T) {
	dir := t.TempDir()
	s, inj := newFaultyDiskServer(t, dir)
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		return fakeOutput(p), nil
	}
	inj.EnableN(resultcache.SiteDiskPut, 1, faultinject.Fault{})
	errsBefore := obs.GetCounter("serve.disk_errors").Value()

	resp, err := s.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatalf("Do with injected disk Put error: %v", err)
	}
	if resp.Status != StatusMiss || len(resp.Entry.Result) == 0 {
		t.Errorf("response %+v, want computed result despite Put failure", resp.Status)
	}
	if got := obs.GetCounter("serve.disk_errors").Value() - errsBefore; got != 1 {
		t.Errorf("serve.disk_errors delta = %d, want 1", got)
	}
	// Nothing landed on disk, and no temp files leaked.
	if entries, _ := filepath.Glob(filepath.Join(dir, "*", "*.json")); len(entries) != 0 {
		t.Errorf("failed Put left entries: %v", entries)
	}
	if orphans, _ := filepath.Glob(filepath.Join(dir, "*", "entry-*.tmp")); len(orphans) != 0 {
		t.Errorf("failed Put left temp files: %v", orphans)
	}
}

// TestQuarantineStopsDiskErrors: a corrupt on-disk entry costs one
// serve.disk_errors increment, then is quarantined — later cold misses
// on the same key hit a clean miss, not the same error again.
func TestQuarantineStopsDiskErrors(t *testing.T) {
	dir := t.TempDir()
	key := keyOf("table12", tinyParams)
	hexKey := key.String()
	if err := os.MkdirAll(filepath.Join(dir, hexKey[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, hexKey[:2], hexKey+".json"), []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}

	stub := func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		return fakeOutput(p), nil
	}
	errsBefore := obs.GetCounter("serve.disk_errors").Value()
	quarBefore := obs.GetCounter("resultcache.disk_quarantined").Value()

	// First cold server: corrupt entry -> one disk error, quarantine,
	// recompute. The injected Put failure keeps the recomputed result
	// from overwriting the slot, so the next cold miss exercises the
	// post-quarantine disk path.
	s1, inj := newFaultyDiskServer(t, dir)
	s1.runFn = stub
	inj.EnableN(resultcache.SiteDiskPut, 1, faultinject.Fault{})
	if resp, err := s1.Do(context.Background(), "table12", tinyParams); err != nil || resp.Status != StatusMiss {
		t.Fatalf("first cold request = %v status %v, want clean miss", err, resp.Status)
	}
	// Two errors: the corrupt Get and the injected Put.
	if got := obs.GetCounter("serve.disk_errors").Value() - errsBefore; got != 2 {
		t.Errorf("serve.disk_errors delta after corrupt entry = %d, want 2", got)
	}
	if got := obs.GetCounter("resultcache.disk_quarantined").Value() - quarBefore; got != 1 {
		t.Errorf("resultcache.disk_quarantined delta = %d, want 1", got)
	}

	// Second cold server, same disk: the quarantined file is out of the
	// lookup path, so disk_errors stops growing.
	errsMid := obs.GetCounter("serve.disk_errors").Value()
	s2, _ := newFaultyDiskServer(t, dir)
	s2.runFn = stub
	if resp, err := s2.Do(context.Background(), "table12", tinyParams); err != nil || resp.Status != StatusMiss {
		t.Fatalf("post-quarantine request = %v status %v, want clean miss", err, resp.Status)
	}
	if got := obs.GetCounter("serve.disk_errors").Value() - errsMid; got != 0 {
		t.Errorf("serve.disk_errors kept growing after quarantine (delta %d)", got)
	}
}

// TestSlowComputeDeadline504WhileFastComputeServes: the slow compute's
// waiter gets a DeadlineError (504) within its deadline; coalesced
// waiters of a concurrent fast compute are answered normally.
func TestSlowComputeDeadline504WhileFastComputeServes(t *testing.T) {
	inj := faultinject.New(1)
	s := New(Options{Workers: 2, ComputeTimeout: 100 * time.Millisecond, Faults: inj})
	var fastRuns atomic.Int64
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		fastRuns.Add(1)
		return fakeOutput(p), nil
	}
	// Exactly one injected stall, consumed by the slow key's compute
	// (we wait for the injection before issuing the fast requests).
	inj.EnableN(SiteCompute, 1, faultinject.Fault{Delay: time.Hour})
	deadlinesBefore := obs.GetCounter("serve.deadline_exceeded").Value()

	slow, fast := tinyParams, tinyParams
	slow.Seed, fast.Seed = 100, 200
	slowDone := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "table12", slow)
		slowDone <- err
	}()
	waitFor(t, "slow compute to hit the injected stall", func() bool {
		return obs.GetCounter("faultinject."+SiteCompute).Value() > 0
	})

	// Two coalesced waiters on the fast key are unaffected.
	fastDone := make(chan Response, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := s.Do(context.Background(), "table12", fast)
			if err != nil {
				t.Errorf("fast waiter: %v", err)
			}
			fastDone <- resp
		}()
	}
	for i := 0; i < 2; i++ {
		if resp := <-fastDone; len(resp.Entry.Result) == 0 {
			t.Error("fast waiter got an empty result")
		}
	}
	if got := fastRuns.Load(); got != 1 {
		t.Errorf("fast key computed %d times, want 1 (coalesced)", got)
	}

	var de *DeadlineError
	err := <-slowDone
	if !errors.As(err, &de) {
		t.Fatalf("slow waiter returned %v, want DeadlineError", err)
	}
	if de.Timeout != 100*time.Millisecond {
		t.Errorf("DeadlineError.Timeout = %v, want the configured 100ms", de.Timeout)
	}
	if got := obs.GetCounter("serve.deadline_exceeded").Value() - deadlinesBefore; got != 1 {
		t.Errorf("serve.deadline_exceeded delta = %d, want 1", got)
	}
}

// TestHandlerComputeTimeout504 pins the HTTP shape: 504 with a
// structured JSON body naming the deadline.
func TestHandlerComputeTimeout504(t *testing.T) {
	s := New(Options{Workers: 1, ComputeTimeout: 20 * time.Millisecond})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	rec := postExperiment(t, NewHandler(s), "/v1/experiments/table12", tinyBody)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("504 body is not JSON: %v", err)
	}
	if !strings.Contains(eb.Error, "deadline") || eb.Timeout != "20ms" {
		t.Errorf("504 body = %+v, want error mentioning the 20ms deadline", eb)
	}
}

func TestInjectedComputeErrorPropagates(t *testing.T) {
	inj := faultinject.New(1)
	inj.EnableN(SiteCompute, 1, faultinject.Fault{})
	s := New(Options{Workers: 1, Faults: inj})
	if _, err := s.Do(context.Background(), "table12", tinyParams); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Do = %v, want ErrInjected", err)
	}
	// Nothing was cached; the next request recomputes cleanly.
	resp, err := s.Do(context.Background(), "table12", tinyParams)
	if err != nil || resp.Status != StatusMiss {
		t.Errorf("request after injected failure = %v status %v, want clean miss", err, resp.Status)
	}
}

// TestDrain: Drain returns once in-flight computations finish, and
// times out (without hanging) while one is still running.
func TestDrain(t *testing.T) {
	s := New(Options{Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		close(started)
		<-release
		return fakeOutput(p), nil
	}
	done := make(chan struct{})
	go func() {
		s.Do(context.Background(), "table12", tinyParams)
		close(done)
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with a running compute = %v, want DeadlineExceeded", err)
	}
	close(release)
	<-done
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after completion = %v", err)
	}
}
