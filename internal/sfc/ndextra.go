package sfc

import "fmt"

// This file completes the n-dimensional curve family so the 3D
// experiments can sweep the same four orderings as the paper's 2D
// study: GrayND (Gray-coded Morton) and RowMajorND join MortonND and
// HilbertND.

// GrayND is the n-dimensional Gray order: points sorted by the Gray
// rank of their n-dimensional Morton code, the direct generalization
// of the paper's 2D Gray order.
type GrayND struct {
	N int
}

// Name implements NDCurve.
func (g GrayND) Name() string { return fmt.Sprintf("gray%dd", g.N) }

// Dims implements NDCurve.
func (g GrayND) Dims() int { return g.N }

// IndexND implements NDCurve.
func (g GrayND) IndexND(order uint, coords []uint32) uint64 {
	return GrayDecode(MortonND{N: g.N}.IndexND(order, coords))
}

// CoordsND implements NDCurve.
func (g GrayND) CoordsND(order uint, d uint64, out []uint32) {
	checkND(order, g.N)
	if d >= uint64(1)<<(uint(g.N)*order) {
		panic("sfc: index out of range")
	}
	MortonND{N: g.N}.CoordsND(order, GrayEncode(d), out)
}

// RowMajorND is the n-dimensional row-major scan: the last coordinate
// varies fastest, generalizing the paper's column-of-rows order.
type RowMajorND struct {
	N int
}

// Name implements NDCurve.
func (r RowMajorND) Name() string { return fmt.Sprintf("rowmajor%dd", r.N) }

// Dims implements NDCurve.
func (r RowMajorND) Dims() int { return r.N }

// IndexND implements NDCurve.
func (r RowMajorND) IndexND(order uint, coords []uint32) uint64 {
	checkND(order, r.N)
	if len(coords) != r.N {
		panic("sfc: coords length mismatch")
	}
	ndStats.countEncode(int(coords[0]))
	side := uint64(1) << order
	var d uint64
	for i := 0; i < r.N; i++ {
		if uint64(coords[i]) >= side {
			panic("sfc: coordinate out of range")
		}
		d = d*side + uint64(coords[i])
	}
	return d
}

// CoordsND implements NDCurve.
func (r RowMajorND) CoordsND(order uint, d uint64, out []uint32) {
	checkND(order, r.N)
	if len(out) != r.N {
		panic("sfc: out length mismatch")
	}
	ndStats.countDecode(int(d))
	side := uint64(1) << order
	for i := r.N - 1; i >= 0; i-- {
		out[i] = uint32(d % side)
		d /= side
	}
	if d != 0 {
		panic("sfc: index out of range")
	}
}

// AllND returns the four curve families in the paper's order for the
// given dimensionality.
func AllND(dims int) []NDCurve {
	return []NDCurve{
		HilbertND{N: dims},
		MortonND{N: dims},
		GrayND{N: dims},
		RowMajorND{N: dims},
	}
}
