package sfc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sfcacd/internal/geom"
)

// quickCfg draws coordinates that fit the order under test.
func quickCfg(order uint) *quick.Config {
	side := int64(geom.Side(order))
	return &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(uint32(r.Int63n(side)))
			}
		},
	}
}

// TestQuickCurveBijectionHighOrder round-trips random points at the
// highest practical order for every curve.
func TestQuickCurveBijectionHighOrder(t *testing.T) {
	const order = 24
	for _, c := range Extended() {
		c := c
		f := func(x, y uint32) bool {
			p := geom.Pt(x, y)
			return c.Point(order, c.Index(order, p)) == p
		}
		if err := quick.Check(f, quickCfg(order)); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuickMortonOrderIsInterleaving checks the Z-curve's defining
// algebra on random points: splitting a coordinate's bits splits the
// index accordingly.
func TestQuickMortonOrderIsInterleaving(t *testing.T) {
	const order = 16
	f := func(x, y uint32) bool {
		idx := Morton.Index(order, geom.Pt(x, y))
		// Check every bit lands in its interleaved slot.
		for b := uint(0); b < order; b++ {
			if (idx>>(2*b))&1 != uint64(x>>b&1) {
				return false
			}
			if (idx>>(2*b+1))&1 != uint64(y>>b&1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(order)); err != nil {
		t.Error(err)
	}
}

// TestQuickMortonMonotoneInQuadrant: moving to a higher quadrant (both
// coordinate top bits set) always increases the Morton index.
func TestQuickMortonMonotoneInQuadrant(t *testing.T) {
	const order = 12
	half := geom.Side(order) / 2
	f := func(x1, y1, x2, y2 uint32) bool {
		lo := geom.Pt(x1%half, y1%half)
		hi := geom.Pt(x2%half+half, y2%half+half)
		return Morton.Index(order, lo) < Morton.Index(order, hi)
	}
	if err := quick.Check(f, quickCfg(order)); err != nil {
		t.Error(err)
	}
}

// TestQuickGrayAdjacency: consecutive Gray-order indices always have
// Morton codes exactly one bit apart — for random positions along the
// curve, not just small exhaustive grids.
func TestQuickGrayAdjacency(t *testing.T) {
	const order = 14
	f := func(x, y uint32) bool {
		d := Gray.Index(order, geom.Pt(x, y))
		if d+1 >= geom.Cells(order) {
			return true
		}
		a := Gray.Point(order, d)
		b := Gray.Point(order, d+1)
		diff := mortonEncode(a.X, a.Y) ^ mortonEncode(b.X, b.Y)
		return diff != 0 && diff&(diff-1) == 0
	}
	if err := quick.Check(f, quickCfg(order)); err != nil {
		t.Error(err)
	}
}

// TestQuickHilbertLocality: positions close along the Hilbert curve
// are close in space — |d1-d2| = k implies Manhattan distance
// O(sqrt(k)) (within the known constant ~3 for 2D Hilbert).
func TestQuickHilbertLocality(t *testing.T) {
	const order = 12
	f := func(x, y uint32, gapRaw uint32) bool {
		gap := uint64(gapRaw%1024) + 1
		d := Hilbert.Index(order, geom.Pt(x, y))
		if d+gap >= geom.Cells(order) {
			return true
		}
		a := Hilbert.Point(order, d)
		b := Hilbert.Point(order, d+gap)
		dist := geom.Manhattan(a, b)
		// Hilbert curve: dist^2 <= 6*gap holds comfortably (the tight
		// bound for the Euclidean metric square is 6).
		return uint64(dist*dist) <= 9*gap
	}
	if err := quick.Check(f, quickCfg(order)); err != nil {
		t.Error(err)
	}
}

// TestQuickSnakeStretchBound: the snake scan's defining property under
// random sampling — spatially adjacent cells map within 2*side of each
// other in the order.
func TestQuickSnakeStretchBound(t *testing.T) {
	const order = 10
	side := geom.Side(order)
	f := func(x, y uint32) bool {
		if x+1 >= side {
			return true
		}
		a := Snake.Index(order, geom.Pt(x, y))
		b := Snake.Index(order, geom.Pt(x+1, y))
		gap := a - b
		if b > a {
			gap = b - a
		}
		return gap <= 2*uint64(side)-1
	}
	if err := quick.Check(f, quickCfg(order)); err != nil {
		t.Error(err)
	}
}

// TestQuickHilbertNDMatches2DSymmetry: the 2D Skilling Hilbert is a
// grid symmetry of the classic H_k, so pairwise curve distances are
// preserved under the mapping index->index.
func TestQuickHilbertNDIsometricNeighbors(t *testing.T) {
	h2 := HilbertND{N: 2}
	const order = 8
	coords := make([]uint32, 2)
	f := func(x, y uint32) bool {
		// Unit steps of the ND curve are unit steps in space (already
		// tested exhaustively at small orders; here at random high
		// positions).
		coords[0], coords[1] = x, y
		d := h2.IndexND(order, coords)
		if d+1 >= geom.Cells(order) {
			return true
		}
		a := make([]uint32, 2)
		b := make([]uint32, 2)
		h2.CoordsND(order, d, a)
		h2.CoordsND(order, d+1, b)
		dist := 0
		for i := range a {
			delta := int(a[i]) - int(b[i])
			if delta < 0 {
				delta = -delta
			}
			dist += delta
		}
		return dist == 1
	}
	if err := quick.Check(f, quickCfg(order)); err != nil {
		t.Error(err)
	}
}
