package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
)

// TestDriftProperties pins the drift step's contract: it never creates
// duplicate cells, never leaves the grid, and is byte-identical under
// a fixed seed. The incremental pipeline's correctness rests on the
// first property (one particle per cell) and its cacheability on the
// last.
func TestDriftProperties(t *testing.T) {
	const order = 5
	p := testParams
	p.Order = order
	p.Particles = 600
	pts, err := samplePoints(p.sampler(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	side := geom.Side(order)
	r := rng.New(99)
	for step := 0; step < 20; step++ {
		drift(pts, order, r)
		seen := make(map[uint64]bool, len(pts))
		for _, pt := range pts {
			if pt.X >= side || pt.Y >= side {
				t.Fatalf("step %d: particle %v outside %dx%d grid", step, pt, side, side)
			}
			id := geom.CellID(pt, side)
			if seen[id] {
				t.Fatalf("step %d: duplicate cell %v", step, pt)
			}
			seen[id] = true
		}
	}
	// Replay: same seed, same trajectory, cell for cell.
	ptsA, _ := samplePoints(p.sampler(), p, 0)
	ptsB, _ := samplePoints(p.sampler(), p, 0)
	ra, rb := rng.New(7), rng.New(7)
	for step := 0; step < 5; step++ {
		drift(ptsA, order, ra)
		drift(ptsB, order, rb)
		for i := range ptsA {
			if ptsA[i] != ptsB[i] {
				t.Fatalf("step %d: replay diverged at particle %d: %v vs %v", step, i, ptsA[i], ptsB[i])
			}
		}
	}
}

// TestRunDynamicIncr checks the experiment's shape, basic sanity, and
// that drift actually happens in the tuned regime (some particles move
// each tick, but only a few percent).
func TestRunDynamicIncr(t *testing.T) {
	p := testParams
	p.Particles = 1200
	res, err := RunDynamicIncr(context.Background(), p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 || len(res.Ticks) != 4 || len(res.Moved) != 4 {
		t.Fatalf("bad shape: %d curves, %d ticks, %d moved entries", len(res.Curves), len(res.Ticks), len(res.Moved))
	}
	totalMoved := 0
	for tick, m := range res.Moved {
		if m < 0 || m > p.Particles/10 {
			t.Errorf("tick %d: %d of %d particles moved, outside the few-percent regime", tick, m, p.Particles)
		}
		totalMoved += m
	}
	if totalMoved == 0 {
		t.Error("no particle ever moved; the drift regime is mistuned")
	}
	for c := range res.Curves {
		for tk := range res.Ticks {
			if res.ACD[c][tk] <= 0 {
				t.Errorf("%s tick %d: ACD %f not positive", res.Curves[c], tk, res.ACD[c][tk])
			}
			if res.Gauge[c][tk] < 0 || res.Gauge[c][tk] > 1 {
				t.Errorf("%s tick %d: gauge %f outside [0,1]", res.Curves[c], tk, res.Gauge[c][tk])
			}
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "repartitions[") {
		t.Error("render missing repartition summary")
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "tick,curve,acd,gauge,touched,moved,repartitions") {
		t.Errorf("csv header: %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
	if _, err := RunDynamicIncr(context.Background(), p, 0); err == nil {
		t.Error("ticks=0 accepted")
	}
	bad := p
	bad.IncrMode = "bogus"
	if _, err := RunDynamicIncr(context.Background(), bad, 2); err == nil {
		t.Error("bogus incr mode accepted")
	}
}

// TestRunDynamicIncrModesIdentical is the cross-mechanism differential
// oracle at experiment level: the rendered result must be byte-for-byte
// identical whether the pipeline state was maintained by deltas or
// rebuilt every tick (CI repeats this check through cmd/acdbench).
func TestRunDynamicIncrModesIdentical(t *testing.T) {
	p := testParams
	p.Particles = 800
	p.IncrMode = "incr"
	a, err := RunDynamicIncr(context.Background(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	p.IncrMode = "rebuild"
	b, err := RunDynamicIncr(context.Background(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("modes diverged:\nincr:    %s\nrebuild: %s", aj, bj)
	}
}

// BenchmarkDynamicIncr runs the two maintenance mechanisms on the same
// trajectory; the delta path's per-tick advantage over full rebuild is
// the experiment's reason to exist.
func BenchmarkDynamicIncr(b *testing.B) {
	for _, mode := range []string{"incr", "rebuild"} {
		b.Run(mode, func(b *testing.B) {
			p := testParams
			p.Particles = 2000
			p.Order = 7
			p.IncrMode = mode
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunDynamicIncr(context.Background(), p, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRunDynamicIncrDistribution checks the threaded distribution knob:
// a clustered distribution must change the trajectory (different
// sampled points) while staying deterministic.
func TestRunDynamicIncrDistribution(t *testing.T) {
	p := testParams
	p.Particles = 600
	uni, err := RunDynamicIncr(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Distribution = "normal"
	norm, err := RunDynamicIncr(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for c := range uni.Curves {
		for tk := range uni.Ticks {
			if uni.ACD[c][tk] != norm.ACD[c][tk] {
				same = false
			}
		}
	}
	if same {
		t.Error("normal distribution produced identical ACD series to uniform")
	}
	norm2, err := RunDynamicIncr(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := range norm.Curves {
		for tk := range norm.Ticks {
			if norm.ACD[c][tk] != norm2.ACD[c][tk] {
				t.Fatal("RunDynamicIncr not deterministic under fixed distribution")
			}
		}
	}
}
