package topology

import (
	"testing"

	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
)

// bfsDistances is the exported BFSDistances; the alias keeps the many
// existing call sites below unchanged.
func bfsDistances(t Topology, src int) []int { return BFSDistances(t, src) }

func verifyAgainstBFS(t *testing.T, topo Topology) {
	t.Helper()
	for src := 0; src < topo.P(); src++ {
		bfs := bfsDistances(topo, src)
		for dst := 0; dst < topo.P(); dst++ {
			if bfs[dst] == -1 {
				t.Fatalf("%s: %d unreachable from %d", topo.Name(), dst, src)
			}
			if got := topo.Distance(src, dst); got != bfs[dst] {
				t.Fatalf("%s: Distance(%d,%d) = %d, BFS says %d",
					topo.Name(), src, dst, got, bfs[dst])
			}
		}
	}
}

func TestBusMatchesBFS(t *testing.T)  { verifyAgainstBFS(t, NewBus(17)) }
func TestRingMatchesBFS(t *testing.T) { verifyAgainstBFS(t, NewRing(16)) }
func TestRingOddMatchesBFS(t *testing.T) {
	verifyAgainstBFS(t, NewRing(15))
}
func TestHypercubeMatchesBFS(t *testing.T) { verifyAgainstBFS(t, NewHypercube(5)) }

func TestMeshMatchesBFSAllPlacements(t *testing.T) {
	for _, c := range sfc.Extended() {
		verifyAgainstBFS(t, NewMesh(2, c)) // 16 procs
	}
}

func TestTorusMatchesBFSAllPlacements(t *testing.T) {
	for _, c := range sfc.Extended() {
		verifyAgainstBFS(t, NewTorus(2, c))
	}
}

func TestMeshTorusLargerBFS(t *testing.T) {
	verifyAgainstBFS(t, NewMesh(3, sfc.Hilbert)) // 64 procs
	verifyAgainstBFS(t, NewTorus(3, sfc.Morton)) // 64 procs
}

func TestQuadtreeDistances(t *testing.T) {
	q := NewQuadtreeNet(3) // 64 leaves
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 2}, // siblings
		{0, 3, 2}, // same parent
		{0, 4, 4}, // cousins: differ in second base-4 digit
		{0, 15, 4},
		{0, 16, 6}, // differ in third digit
		{0, 63, 6},
		{21, 23, 2},
		{16, 31, 4},
	}
	for _, c := range cases {
		if got := q.Distance(c.a, c.b); got != c.want {
			t.Errorf("quadtree Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestQuadtreeMatchesExplicitTree(t *testing.T) {
	// Build the full switch tree explicitly and BFS leaf-to-leaf.
	const levels = 3
	q := NewQuadtreeNet(levels)
	// Node ids: internal nodes of level l (0=root) numbered densely;
	// adjacency parent <-> child.
	type node struct{ level, idx int }
	idOf := func(n node) int {
		// Offset = sum of 4^j for j < level.
		off := 0
		for j := 0; j < n.level; j++ {
			off += 1 << (2 * j)
		}
		return off + n.idx
	}
	total := 0
	for j := 0; j <= levels; j++ {
		total += 1 << (2 * j)
	}
	adj := make([][]int, total)
	for l := 0; l < levels; l++ {
		for i := 0; i < 1<<(2*l); i++ {
			p := idOf(node{l, i})
			for c := 0; c < 4; c++ {
				ch := idOf(node{l + 1, i*4 + c})
				adj[p] = append(adj[p], ch)
				adj[ch] = append(adj[ch], p)
			}
		}
	}
	leafID := func(rank int) int { return idOf(node{levels, rank}) }
	for src := 0; src < q.P(); src += 7 {
		distv := make([]int, total)
		for i := range distv {
			distv[i] = -1
		}
		start := leafID(src)
		distv[start] = 0
		queue := []int{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, n := range adj[cur] {
				if distv[n] == -1 {
					distv[n] = distv[cur] + 1
					queue = append(queue, n)
				}
			}
		}
		for dst := 0; dst < q.P(); dst++ {
			if got := q.Distance(src, dst); got != distv[leafID(dst)] {
				t.Fatalf("quadtree Distance(%d,%d) = %d, tree BFS says %d",
					src, dst, got, distv[leafID(dst)])
			}
		}
	}
}

func TestMetricProperties(t *testing.T) {
	topos := []Topology{
		NewBus(9), NewRing(12), NewMesh(2, sfc.Hilbert), NewTorus(2, sfc.Gray),
		NewHypercube(4), NewQuadtreeNet(2),
	}
	for _, topo := range topos {
		p := topo.P()
		for a := 0; a < p; a++ {
			if topo.Distance(a, a) != 0 {
				t.Fatalf("%s: Distance(%d,%d) != 0", topo.Name(), a, a)
			}
			for b := 0; b < p; b++ {
				d := topo.Distance(a, b)
				if d != topo.Distance(b, a) {
					t.Fatalf("%s: asymmetric at (%d,%d)", topo.Name(), a, b)
				}
				if a != b && d <= 0 {
					t.Fatalf("%s: non-positive distance %d at (%d,%d)", topo.Name(), d, a, b)
				}
			}
		}
		// Spot-check the triangle inequality.
		for a := 0; a < p; a += 2 {
			for b := 1; b < p; b += 3 {
				for c := 0; c < p; c += 5 {
					if topo.Distance(a, b) > topo.Distance(a, c)+topo.Distance(c, b) {
						t.Fatalf("%s: triangle inequality violated at (%d,%d,%d)", topo.Name(), a, b, c)
					}
				}
			}
		}
	}
}

func TestMeshPlacementChangesDistances(t *testing.T) {
	// With Hilbert placement, consecutive ranks are always grid
	// neighbors; with row-major placement, rank side-1 -> side is a
	// long hop back across the row.
	hm := NewMesh(3, sfc.Hilbert)
	rm := NewMesh(3, sfc.RowMajor)
	for r := 0; r < hm.P()-1; r++ {
		if d := hm.Distance(r, r+1); d != 1 {
			t.Fatalf("hilbert placement: ranks %d,%d at distance %d", r, r+1, d)
		}
	}
	side := int(rm.Side())
	if d := rm.Distance(side-1, side); d != side {
		t.Fatalf("rowmajor placement: row boundary distance = %d, want %d", d, side)
	}
}

func TestGridAccessors(t *testing.T) {
	m := NewMesh(2, sfc.Hilbert)
	if m.Side() != 4 || m.Placement() != "hilbert" {
		t.Fatalf("side=%d placement=%q", m.Side(), m.Placement())
	}
	for r := 0; r < m.P(); r++ {
		if got := m.RankAt(m.Coord(r)); got != r {
			t.Fatalf("RankAt(Coord(%d)) = %d", r, got)
		}
	}
}

func TestTorusWrapShortens(t *testing.T) {
	tor := NewTorus(3, sfc.RowMajor) // 8x8
	mesh := NewMesh(3, sfc.RowMajor)
	// Opposite corners: mesh distance 14, torus distance 2.
	a := mesh.RankAt(geom.Pt(0, 0))
	b := mesh.RankAt(geom.Pt(7, 7))
	if d := mesh.Distance(a, b); d != 14 {
		t.Fatalf("mesh corner distance = %d", d)
	}
	if d := tor.Distance(a, b); d != 2 {
		t.Fatalf("torus corner distance = %d", d)
	}
}

func TestNewFactory(t *testing.T) {
	for _, name := range Kinds {
		topo, err := New(name, 16, sfc.Hilbert)
		if err != nil {
			t.Fatalf("New(%s,16): %v", name, err)
		}
		if topo.P() != 16 {
			t.Fatalf("New(%s,16) has %d processors", name, topo.P())
		}
		if topo.Name() != name {
			t.Fatalf("New(%s) named %q", name, topo.Name())
		}
	}
	if _, err := New("star", 16, nil); err == nil {
		t.Error("unknown topology should fail")
	}
	if _, err := New("mesh", 8, nil); err == nil {
		t.Error("mesh with non-power-of-4 should fail")
	}
	if _, err := New("hypercube", 12, nil); err == nil {
		t.Error("hypercube with non-power-of-2 should fail")
	}
	if _, err := New("bus", 0, nil); err == nil {
		t.Error("p=0 should fail")
	}
	// Hypercube of 8 is fine (2^3).
	if topo, err := New("hypercube", 8, nil); err != nil || topo.P() != 8 {
		t.Errorf("hypercube 8: %v", err)
	}
	// Nil placement defaults to row-major.
	topo, err := New("mesh", 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if topo.(*Mesh).Placement() != "rowmajor" {
		t.Errorf("default placement = %q", topo.(*Mesh).Placement())
	}
}

func TestRankPanics(t *testing.T) {
	topos := []Topology{
		NewBus(4), NewRing(4), NewMesh(1, sfc.Hilbert), NewTorus(1, sfc.Hilbert),
		NewHypercube(2), NewQuadtreeNet(1),
	}
	for _, topo := range topos {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: out-of-range rank did not panic", topo.Name())
				}
			}()
			topo.Distance(0, topo.P())
		}()
	}
}

func TestQuarterLog(t *testing.T) {
	cases := map[int]struct {
		order uint
		ok    bool
	}{
		1: {0, true}, 4: {1, true}, 16: {2, true}, 64: {3, true},
		65536: {8, true}, 2: {0, false}, 8: {0, false}, 12: {0, false}, 0: {0, false},
	}
	for p, want := range cases {
		order, ok := quarterLog(p)
		if ok != want.ok || (ok && order != want.order) {
			t.Errorf("quarterLog(%d) = (%d,%v), want (%d,%v)", p, order, ok, want.order, want.ok)
		}
	}
}

func TestSingletonNetworks(t *testing.T) {
	// p=1 edge cases must not crash or return nonzero distances.
	for _, topo := range []Topology{
		NewBus(1), NewRing(1), NewMesh(0, sfc.Hilbert), NewTorus(0, sfc.Hilbert),
		NewHypercube(0), NewQuadtreeNet(0),
	} {
		if topo.P() != 1 {
			t.Fatalf("%s: P = %d", topo.Name(), topo.P())
		}
		if d := topo.Distance(0, 0); d != 0 {
			t.Fatalf("%s: self distance %d", topo.Name(), d)
		}
	}
}
