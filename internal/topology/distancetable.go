// DistanceTable: precomputed rank-pair distances for contraction-style
// evaluation (internal/commmat). The table devirtualizes the hot path —
// a contraction over a dense communication matrix indexes a uint16 row
// instead of making one dynamic Distance interface call per pair — but
// only materializes distances when the lookup volume amortizes the
// build cost, so sparse contractions never pay for cells they skip.
package topology

import "sync"

const (
	// maxTableP is the largest processor count a table serves: hop
	// distances up to 65,535 fit the uint16 cells (the bus diameter is
	// P-1, so this bounds P).
	maxTableP = 1 << 16
	// eagerCells caps the full-table form at p*p cells (4096 x 4096,
	// 32 MiB of uint16). Larger networks fall back to lazily built and
	// cached single rows.
	eagerCells = 1 << 24
	// amortize is the build-cost multiplier: a table (or row) of c
	// cells is built only once at least c/amortize lookups have asked
	// for it, so a build never costs more than amortize times the work
	// it replaces.
	amortize = 4
	// fillerAmortize replaces amortize when the topology implements
	// RowFiller. An analytic fill is several times cheaper per cell
	// than a dispatched Distance call, but the threshold stays
	// conservative — the ski-rental bound wants pending lookups on the
	// order of cells x (fill cost / call cost) before a build is known
	// to repay, and a premature full-table build costs more than the
	// per-pair fallback it replaces.
	fillerAmortize = 4
	// rowBudgetCells bounds the lazy per-row cache (64 MiB of uint16).
	rowBudgetCells = 1 << 25
)

// DistanceTable memoizes a topology's rank-pair hop distances in flat
// uint16 storage. Small networks (p*p <= eagerCells) promote to one
// contiguous P x P table once enough lookups accumulate; larger ones
// cache individual source rows, each built on first sufficiently dense
// use. All methods are safe for concurrent use.
//
// DistanceTable itself implements Topology, so it can substitute for
// the underlying network anywhere.
type DistanceTable struct {
	topo     Topology
	p        int
	filler   RowFiller // non-nil when topo fills rows analytically
	amortize int

	mu      sync.Mutex
	full    []uint16
	rows    map[int][]uint16
	pending int // lookups served without a full table so far
	budget  int // remaining lazy-row cells
}

// NewDistanceTable wraps a topology. Construction is cheap: no
// distances are computed until lookups demand them.
func NewDistanceTable(t Topology) *DistanceTable {
	dt := &DistanceTable{topo: t, p: t.P(), amortize: amortize, budget: rowBudgetCells}
	if f, ok := t.(RowFiller); ok {
		dt.filler = f
		dt.amortize = fillerAmortize
	}
	return dt
}

// Underlying returns the wrapped topology.
func (dt *DistanceTable) Underlying() Topology { return dt.topo }

// Name implements Topology.
func (dt *DistanceTable) Name() string { return dt.topo.Name() }

// P implements Topology.
func (dt *DistanceTable) P() int { return dt.p }

// Distance implements Topology, answering from the table when the pair
// is materialized and from the underlying topology otherwise.
func (dt *DistanceTable) Distance(a, b int) int {
	dt.mu.Lock()
	if dt.full != nil {
		d := int(dt.full[a*dt.p+b])
		dt.mu.Unlock()
		return d
	}
	if row, ok := dt.rows[a]; ok {
		d := int(row[b])
		dt.mu.Unlock()
		return d
	}
	dt.mu.Unlock()
	CountDistanceQueries(1)
	return dt.topo.Distance(a, b)
}

// RowFor returns the distance row of src — row[dst] is the hop count
// src->dst — if one is materialized or the pending lookup volume
// (grown by pairs) now amortizes building it; otherwise nil, and the
// caller should fall back to per-pair Distance calls. pairs is the
// number of lookups the caller is about to perform against the row.
func (dt *DistanceTable) RowFor(src, pairs int) []uint16 {
	if dt.p > maxTableP {
		return nil
	}
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.rowForLocked(src, pairs)
}

// RowsFor is RowFor for a batch of sources under a single lock
// acquisition: out[i] is set to the row for srcs[i], with pairs[i] the
// lookup volume about to be performed against it (nil entries mean
// per-pair fallback, as with RowFor). It replays exactly the state
// machine of calling RowFor(srcs[i], pairs[i]) in order — the same
// rows materialize and the same queries are accounted — while paying
// the lock once per batch instead of once per row.
func (dt *DistanceTable) RowsFor(srcs, pairs []int32, out [][]uint16) {
	if dt.p > maxTableP {
		for i := range srcs {
			out[i] = nil
		}
		return
	}
	dt.mu.Lock()
	defer dt.mu.Unlock()
	// Fast path: when nothing is materialized yet and no row in the
	// batch can trigger a build — neither the cumulative full-table
	// threshold nor any single row's lazy threshold — the whole batch
	// answers nil with one bulk pending update. The observable state
	// evolution is identical to the per-row replay (pending sums to the
	// same value and no build decision can differ), it just skips a map
	// probe per row.
	if dt.full == nil && len(dt.rows) == 0 {
		total, maxPairs := 0, int32(0)
		for _, q := range pairs {
			total += int(q)
			if q > maxPairs {
				maxPairs = q
			}
		}
		cells := dt.p * dt.p
		noFull := cells > eagerCells || (dt.pending+total)*dt.amortize < cells
		if noFull && int(maxPairs)*dt.amortize < dt.p {
			dt.pending += total
			for i := range srcs {
				out[i] = nil
			}
			return
		}
	}
	for i, src := range srcs {
		out[i] = dt.rowForLocked(int(src), int(pairs[i]))
	}
}

// DenseRows is RowsFor over every source 0..P-1 with a uniform lookup
// volume per row — the plan shape of a dense-matrix contraction.
func (dt *DistanceTable) DenseRows(pairs int, out [][]uint16) {
	if dt.p > maxTableP {
		for src := 0; src < dt.p; src++ {
			out[src] = nil
		}
		return
	}
	dt.mu.Lock()
	defer dt.mu.Unlock()
	for src := 0; src < dt.p; src++ {
		out[src] = dt.rowForLocked(src, pairs)
	}
}

// rowForLocked is RowFor's state machine; dt.mu must be held.
func (dt *DistanceTable) rowForLocked(src, pairs int) []uint16 {
	if dt.full != nil {
		return dt.full[src*dt.p : (src+1)*dt.p]
	}
	dt.pending += pairs
	if cells := dt.p * dt.p; cells <= eagerCells && dt.pending*dt.amortize >= cells {
		dt.full = make([]uint16, cells)
		for a := 0; a < dt.p; a++ {
			dt.fillRow(dt.full[a*dt.p:(a+1)*dt.p], a)
		}
		dt.rows = nil
		return dt.full[src*dt.p : (src+1)*dt.p]
	}
	if row, ok := dt.rows[src]; ok {
		return row
	}
	if pairs*dt.amortize < dt.p || dt.budget < dt.p {
		return nil
	}
	row := make([]uint16, dt.p)
	dt.fillRow(row, src)
	if dt.rows == nil {
		dt.rows = make(map[int][]uint16)
	}
	dt.rows[src] = row
	dt.budget -= dt.p
	return row
}

// fillRow computes one source row — through the topology's RowFiller
// when it has one — and accounts for the analytic queries it spends.
func (dt *DistanceTable) fillRow(row []uint16, src int) {
	if dt.filler != nil {
		dt.filler.FillDistanceRow(src, row)
	} else {
		for b := range row {
			row[b] = uint16(dt.topo.Distance(src, b))
		}
	}
	CountDistanceQueries(uint64(len(row)))
}
