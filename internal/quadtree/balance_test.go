package quadtree

import (
	"testing"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
)

func TestBalanceProducesBalancedPartition(t *testing.T) {
	// A tight cluster at the domain center: the deep leaves it forces
	// sit directly against the huge empty quadrant leaves across the
	// center lines — a maximal 2:1 violation. (A corner cluster would
	// not do: its refinement rings already step down one level at a
	// time.)
	const order = 8
	pts := []geom.Point{
		geom.Pt(128, 128), geom.Pt(129, 129),
	}
	tree := BuildLinear(order, pts, 1)
	if tree.IsBalanced() {
		t.Fatal("expected the raw cluster tree to violate 2:1")
	}
	bal := tree.Balance()
	if !bal.IsBalanced() {
		t.Fatal("Balance did not produce a 2:1 tree")
	}
	// Still a partition of the domain.
	var pos uint64
	for i, leaf := range bal.Leaves {
		lo, hi := leaf.MortonRange(order)
		if lo != pos {
			t.Fatalf("leaf %d starts at %d, want %d", i, lo, pos)
		}
		pos = hi
	}
	if pos != geom.Cells(order) {
		t.Fatalf("leaves cover %d codes", pos)
	}
	// Balancing only refines: every balanced leaf is contained in some
	// original leaf.
	for _, nl := range bal.Leaves {
		found := false
		for _, ol := range tree.Leaves {
			if ol.Contains(nl) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("balanced leaf %v not a refinement of the original", nl)
		}
	}
	// Total particle count preserved.
	if bal.TotalParticles() != tree.TotalParticles() {
		t.Fatalf("counts changed: %d vs %d", bal.TotalParticles(), tree.TotalParticles())
	}
}

func TestBalanceIdempotentOnBalancedTree(t *testing.T) {
	const order = 6
	r := rng.New(1)
	pts, err := dist.SampleUnique(dist.Uniform, r, order, 200)
	if err != nil {
		t.Fatal(err)
	}
	tree := BuildLinear(order, pts, 4)
	bal := tree.Balance()
	again := bal.Balance()
	if len(again.Leaves) != len(bal.Leaves) {
		t.Fatalf("rebalancing changed leaf count: %d vs %d", len(again.Leaves), len(bal.Leaves))
	}
	for i := range bal.Leaves {
		if bal.Leaves[i] != again.Leaves[i] {
			t.Fatalf("rebalancing changed leaf %d", i)
		}
	}
}

func TestUniformTreeAlreadyBalanced(t *testing.T) {
	// Uniform input yields nearly uniform leaves; small instances are
	// already 2:1.
	tree := BuildLinear(4, nil, 1)
	if !tree.IsBalanced() {
		t.Fatal("single-leaf tree unbalanced")
	}
	if got := tree.Balance(); len(got.Leaves) != 1 {
		t.Fatalf("balancing the root split it: %v", got.Leaves)
	}
}

func TestRebuildBalancedExactCounts(t *testing.T) {
	const order = 7
	r := rng.New(3)
	pts, err := dist.SampleUnique(dist.Exponential, r, order, 400)
	if err != nil {
		t.Fatal(err)
	}
	bal := RebuildBalanced(order, pts, 4)
	if !bal.IsBalanced() {
		t.Fatal("RebuildBalanced not balanced")
	}
	if bal.TotalParticles() != len(pts) {
		t.Fatalf("total %d, want %d", bal.TotalParticles(), len(pts))
	}
	// Every particle is counted in the leaf that contains it.
	for _, p := range pts {
		i := bal.Locate(p)
		if !bal.Leaves[i].ContainsPoint(order, p) {
			t.Fatalf("Locate(%v) wrong leaf", p)
		}
		if bal.Counts[i] == 0 {
			t.Fatalf("leaf containing %v has zero count", p)
		}
	}
}

func TestBalanceRipplePropagates(t *testing.T) {
	// A single deep leaf forces a cascade of splits across the domain:
	// after balancing, leaf levels step down gradually away from the
	// cluster (the classic ripple effect).
	const order = 6
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	bal := BuildLinear(order, pts, 1).Balance()
	if !bal.IsBalanced() {
		t.Fatal("not balanced")
	}
	// The leaf containing the far corner must still be coarse, but not
	// more than a gradual number of levels away given the ripple.
	far := bal.Leaves[bal.Locate(geom.Pt(63, 63))]
	deep := bal.Leaves[bal.Locate(geom.Pt(0, 0))]
	if deep.Level <= far.Level {
		t.Fatalf("cluster leaf (%d) not deeper than far leaf (%d)", deep.Level, far.Level)
	}
}
