package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestSweepEquality pins the scheduler's determinism guarantee: every
// registered experiment produces byte-identical result JSON whether its
// sweep runs on one worker or several. This is what lets Workers stay
// outside the canonical cache key.
func TestSweepEquality(t *testing.T) {
	p := Params{Particles: 320, Order: 5, ProcOrder: 2, Radius: 1, Trials: 2, Seed: 7}
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			serial := p
			serial.Workers = 1
			out1, err := spec.Run(context.Background(), serial)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			parallel := p
			parallel.Workers = 3
			outN, err := spec.Run(context.Background(), parallel)
			if err != nil {
				t.Fatalf("workers=3: %v", err)
			}
			b1, err := json.Marshal(out1.Result)
			if err != nil {
				t.Fatal(err)
			}
			bN, err := json.Marshal(outN.Result)
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(bN) {
				t.Errorf("result bytes differ between workers=1 and workers=3\n 1: %s\n 3: %s", b1, bN)
			}
		})
	}
}

func TestSweepPool(t *testing.T) {
	cases := []struct {
		requested, cells, want int
	}{
		{0, 100, 1}, // GOMAXPROCS default (>=1 always)
		{4, 100, 4}, // explicit request honored
		{4, 2, 2},   // clamped to cell count
		{-3, 8, 1},  // negative treated as default
		{1, 0, 1},   // floor at 1
	}
	for _, c := range cases {
		got := sweepPool(c.requested, c.cells)
		if c.requested == 0 || c.requested < 0 {
			// The default is GOMAXPROCS, clamped; just check bounds.
			if got < 1 || (c.cells > 0 && got > c.cells && got != 1) {
				t.Errorf("sweepPool(%d, %d) = %d, out of bounds", c.requested, c.cells, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("sweepPool(%d, %d) = %d, want %d", c.requested, c.cells, got, c.want)
		}
	}
	if got := innerWorkers(8, 4); got != 2 {
		t.Errorf("innerWorkers(8, 4) = %d, want 2", got)
	}
	if got := innerWorkers(4, 8); got != 1 {
		t.Errorf("innerWorkers(4, 8) = %d, want 1 (floor)", got)
	}
	if got := innerWorkers(0, 1); got < 1 {
		t.Errorf("innerWorkers(0, 1) = %d, want >= 1", got)
	}
}

// TestSweepDeterministicError checks that when several cells fail, the
// error of the lowest failing cell index is returned — the one the old
// serial loop would have hit first — for any worker count.
func TestSweepDeterministicError(t *testing.T) {
	errLow := errors.New("cell 3 failed")
	errHigh := errors.New("cell 7 failed")
	for _, workers := range []int{1, 4} {
		err := runCells(context.Background(), workers, 16, func(cell int) error {
			switch cell {
			case 3:
				return errLow
			case 7:
				return errHigh
			default:
				return nil
			}
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: got %v, want lowest-cell error %v", workers, err, errLow)
		}
	}
}

// TestSweepCancellation checks the bounded-cancellation guarantee: a
// context cancelled mid-sweep aborts the sweep after at most one more
// cell per worker, and the scheduler reports the context error.
func TestSweepCancellation(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		started := make(chan struct{})
		var once atomic.Bool
		const cells = 10000
		done := make(chan error, 1)
		go func() {
			done <- runCells(ctx, workers, cells, func(cell int) error {
				if once.CompareAndSwap(false, true) {
					close(started)
				}
				ran.Add(1)
				time.Sleep(100 * time.Microsecond)
				return nil
			})
		}()
		<-started
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d: got %v, want context.Canceled", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: sweep did not abort after cancellation", workers)
		}
		if n := ran.Load(); n >= cells {
			t.Errorf("workers=%d: all %d cells ran despite cancellation", workers, n)
		}
	}
}

// TestSweepEmpty checks the zero-cell edge case.
func TestSweepEmpty(t *testing.T) {
	if err := runCells(context.Background(), 4, 0, func(int) error {
		t.Fatal("cell ran")
		return nil
	}); err != nil {
		t.Fatalf("empty sweep: %v", err)
	}
}
