package quadtree

import (
	"testing"

	"sfcacd/internal/geom"
)

func TestBuildRankTreeMinRank(t *testing.T) {
	// Particles in three quadrants of a 4x4 grid with known ranks.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 1), // lower-left quadrant
		geom.Pt(3, 0),                // lower-right
		geom.Pt(2, 3), geom.Pt(3, 3), // upper-right
	}
	ranks := []int32{4, 2, 7, 1, 9}
	tr := BuildRankTree(2, pts, ranks)

	// Finest level: exactly the particle cells.
	if got := tr.Rep(2, 0, 0); got != 4 {
		t.Errorf("rep(2,0,0) = %d", got)
	}
	if got := tr.Rep(2, 1, 1); got != 2 {
		t.Errorf("rep(2,1,1) = %d", got)
	}
	if got := tr.Rep(2, 2, 2); got != -1 {
		t.Errorf("empty cell rep = %d", got)
	}
	// Level 1: 2x2 quadrants take the min of their children.
	if got := tr.Rep(1, 0, 0); got != 2 {
		t.Errorf("lower-left quadrant rep = %d, want 2", got)
	}
	if got := tr.Rep(1, 1, 0); got != 7 {
		t.Errorf("lower-right quadrant rep = %d, want 7", got)
	}
	if got := tr.Rep(1, 1, 1); got != 1 {
		t.Errorf("upper-right quadrant rep = %d, want 1", got)
	}
	if got := tr.Rep(1, 0, 1); got != -1 {
		t.Errorf("empty quadrant rep = %d, want -1", got)
	}
	// Root: global minimum.
	if got := tr.Rep(0, 0, 0); got != 1 {
		t.Errorf("root rep = %d, want 1", got)
	}
}

func TestNonEmptyAndVisit(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(7, 7), geom.Pt(3, 4)}
	ranks := []int32{0, 1, 2}
	tr := BuildRankTree(3, pts, ranks)
	if got := tr.NonEmpty(3); got != 3 {
		t.Errorf("finest NonEmpty = %d", got)
	}
	if got := tr.NonEmpty(0); got != 1 {
		t.Errorf("root NonEmpty = %d", got)
	}
	visited := 0
	tr.VisitCells(3, func(x, y uint32, rep int32) {
		visited++
		if rep == -1 {
			t.Error("VisitCells yielded empty cell")
		}
	})
	if visited != 3 {
		t.Errorf("visited %d cells", visited)
	}
}

func TestVisitCellsOrderDeterministic(t *testing.T) {
	pts := []geom.Point{geom.Pt(2, 1), geom.Pt(1, 2), geom.Pt(0, 0)}
	tr := BuildRankTree(2, pts, []int32{0, 1, 2})
	var seq []geom.Point
	tr.VisitCells(2, func(x, y uint32, _ int32) { seq = append(seq, geom.Pt(x, y)) })
	want := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(1, 2)} // row-major
	if len(seq) != len(want) {
		t.Fatalf("visited %v", seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("visit order %v, want %v", seq, want)
		}
	}
}

func TestBuildRankTreeMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	BuildRankTree(2, []geom.Point{geom.Pt(0, 0)}, nil)
}

func TestRepPanics(t *testing.T) {
	tr := BuildRankTree(2, []geom.Point{geom.Pt(0, 0)}, []int32{0})
	for _, fn := range []func(){
		func() { tr.Rep(3, 0, 0) },
		func() { tr.Rep(1, 2, 0) },
		func() { tr.InteractionList(2, 4, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestInteractionListMatchesFigure4 checks the worked example in the
// paper's Figure 4(a): on the 4x4 level, a corner cell's interaction
// list is "every node not in its quadrant" (12 cells), and an interior
// cell like node 6 has 7 cells.
func TestInteractionListMatchesFigure4(t *testing.T) {
	// Fill the whole 4x4 level so all candidate cells are occupied.
	var pts []geom.Point
	var ranks []int32
	for y := uint32(0); y < 4; y++ {
		for x := uint32(0); x < 4; x++ {
			pts = append(pts, geom.Pt(x, y))
			ranks = append(ranks, int32(len(ranks)))
		}
	}
	tr := BuildRankTree(2, pts, ranks)

	// Corner cell (0,0): 12 interaction partners.
	var corner []geom.Point
	tr.InteractionList(2, 0, 0, func(x, y uint32, _ int32) { corner = append(corner, geom.Pt(x, y)) })
	if len(corner) != 12 {
		t.Fatalf("corner interaction list has %d cells, want 12", len(corner))
	}
	for _, c := range corner {
		if c.X < 2 && c.Y < 2 {
			t.Fatalf("corner list includes own-quadrant cell %v", c)
		}
	}
	// Interior cell (2,1) (a "node 6" position): 16 - 9 = 7 cells.
	var interior []geom.Point
	tr.InteractionList(2, 2, 1, func(x, y uint32, _ int32) { interior = append(interior, geom.Pt(x, y)) })
	if len(interior) != 7 {
		t.Fatalf("interior interaction list has %d cells, want 7", len(interior))
	}
	for _, c := range interior {
		if geom.Chebyshev(c, geom.Pt(2, 1)) <= 1 {
			t.Fatalf("interior list includes adjacent cell %v", c)
		}
	}
	// Sizes agree with the geometry-only counter.
	if got := tr.InteractionListSize(2, 0, 0); got != 12 {
		t.Errorf("InteractionListSize corner = %d", got)
	}
	if got := tr.InteractionListSize(2, 2, 1); got != 7 {
		t.Errorf("InteractionListSize interior = %d", got)
	}
}

func TestInteractionListSymmetric(t *testing.T) {
	// If b is in a's list, a is in b's list (on a fully occupied grid).
	var pts []geom.Point
	var ranks []int32
	for y := uint32(0); y < 8; y++ {
		for x := uint32(0); x < 8; x++ {
			pts = append(pts, geom.Pt(x, y))
			ranks = append(ranks, int32(len(ranks)))
		}
	}
	tr := BuildRankTree(3, pts, ranks)
	for level := uint(2); level <= 3; level++ {
		side := geom.Side(level)
		lists := make(map[geom.Point]map[geom.Point]bool)
		for y := uint32(0); y < side; y++ {
			for x := uint32(0); x < side; x++ {
				m := make(map[geom.Point]bool)
				tr.InteractionList(level, x, y, func(nx, ny uint32, _ int32) {
					m[geom.Pt(nx, ny)] = true
				})
				lists[geom.Pt(x, y)] = m
			}
		}
		for a, m := range lists {
			for b := range m {
				if !lists[b][a] {
					t.Fatalf("level %d: %v in list of %v but not vice versa", level, b, a)
				}
			}
		}
	}
}

func TestInteractionListSkipsEmptyCells(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 3)}
	tr := BuildRankTree(2, pts, []int32{0, 1})
	count := 0
	tr.InteractionList(2, 0, 0, func(x, y uint32, rep int32) {
		count++
		if x != 3 || y != 3 || rep != 1 {
			t.Fatalf("unexpected member (%d,%d) rep %d", x, y, rep)
		}
	})
	if count != 1 {
		t.Fatalf("interaction list had %d members, want 1", count)
	}
}

func TestInteractionListLevelBelow2Empty(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 3)}
	tr := BuildRankTree(2, pts, []int32{0, 1})
	for level := uint(0); level < 2; level++ {
		tr.InteractionList(level, 0, 0, func(uint32, uint32, int32) {
			t.Fatalf("level %d yielded interaction partners", level)
		})
		if tr.InteractionListSize(level, 0, 0) != 0 {
			t.Fatalf("level %d has nonzero size", level)
		}
	}
}

func TestInteractionListTotalSizeKnown(t *testing.T) {
	// On a fully occupied level of side s >= 4, summing list sizes over
	// all cells counts each well-separated-with-adjacent-parents pair
	// twice. Verify against a brute-force pair scan.
	var pts []geom.Point
	var ranks []int32
	for y := uint32(0); y < 8; y++ {
		for x := uint32(0); x < 8; x++ {
			pts = append(pts, geom.Pt(x, y))
			ranks = append(ranks, int32(len(ranks)))
		}
	}
	tr := BuildRankTree(3, pts, ranks)
	for level := uint(2); level <= 3; level++ {
		side := geom.Side(level)
		got := 0
		for y := uint32(0); y < side; y++ {
			for x := uint32(0); x < side; x++ {
				tr.InteractionList(level, x, y, func(uint32, uint32, int32) { got++ })
			}
		}
		want := 0
		for ay := uint32(0); ay < side; ay++ {
			for ax := uint32(0); ax < side; ax++ {
				for by := uint32(0); by < side; by++ {
					for bx := uint32(0); bx < side; bx++ {
						a, b := geom.Pt(ax, ay), geom.Pt(bx, by)
						if geom.Chebyshev(a, b) <= 1 {
							continue
						}
						pa := geom.Pt(ax/2, ay/2)
						pb := geom.Pt(bx/2, by/2)
						if geom.Chebyshev(pa, pb) <= 1 {
							want++
						}
					}
				}
			}
		}
		if got != want {
			t.Fatalf("level %d: interaction pairs %d, brute force %d", level, got, want)
		}
	}
}
