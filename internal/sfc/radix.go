package sfc

import "sync"

// radixCutoff is the size below which a binary-insertion-free simple
// insertion sort beats setting up eight 256-entry histograms. 128 was
// picked by BenchmarkSortPoints on small inputs; anything in 64..256
// is within noise.
const radixCutoff = 128

// radixScratch pools the auxiliary permutation buffer used by the
// ping-pong passes so concurrent sweep cells sorting repeatedly do not
// fight the allocator.
var radixScratch = sync.Pool{New: func() any { return new([]int) }}

// SortPermByKeys stably sorts perm in place so that
// keys[perm[0]] <= keys[perm[1]] <= ... . Equal keys keep their
// relative order. It is an LSD radix sort on the full uint64 key
// (eight byte passes, all eight histograms filled in one scan,
// constant-byte passes skipped), falling back to insertion sort below
// radixCutoff. perm must hold valid indices into keys; keys is not
// modified.
func SortPermByKeys(perm []int, keys []uint64) {
	n := len(perm)
	if n < 2 {
		return
	}
	if n <= radixCutoff {
		insertionByKeys(perm, keys)
		return
	}

	// One scan fills the histogram of every byte position.
	var counts [8][256]int32
	for _, p := range perm {
		k := keys[p]
		counts[0][byte(k)]++
		counts[1][byte(k>>8)]++
		counts[2][byte(k>>16)]++
		counts[3][byte(k>>24)]++
		counts[4][byte(k>>32)]++
		counts[5][byte(k>>40)]++
		counts[6][byte(k>>48)]++
		counts[7][byte(k>>56)]++
	}

	scratch := radixScratch.Get().(*[]int)
	tmp := *scratch
	if cap(tmp) < n {
		tmp = make([]int, n)
	}
	tmp = tmp[:n]

	src, dst := perm, tmp
	for pass := 0; pass < 8; pass++ {
		shift := uint(pass * 8)
		c := &counts[pass]
		// If one bucket holds everything, every key shares this byte
		// and the pass is the identity permutation: skip it. Curve
		// keys of order k occupy 2k bits, so high passes are free.
		if c[byte(keys[src[0]]>>shift)] == int32(n) {
			continue
		}
		sum := int32(0)
		for i := range c {
			cnt := c[i]
			c[i] = sum
			sum += cnt
		}
		for _, p := range src {
			b := byte(keys[p] >> shift)
			dst[c[b]] = p
			c[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &perm[0] {
		copy(perm, src)
	}
	*scratch = tmp
	radixScratch.Put(scratch)
}

// insertionByKeys is the small-n stable fallback.
func insertionByKeys(perm []int, keys []uint64) {
	for i := 1; i < len(perm); i++ {
		p := perm[i]
		k := keys[p]
		j := i - 1
		for j >= 0 && keys[perm[j]] > k {
			perm[j+1] = perm[j]
			j--
		}
		perm[j+1] = p
	}
}
