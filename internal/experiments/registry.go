package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
)

// Result is the common surface every experiment result exposes: a
// human-readable rendering (the tables acdbench prints) and zero or
// more machine-readable CSV panels. Every result type also round-trips
// through encoding/json, which is how the serving layer stores and
// replays it.
type Result interface {
	Render(io.Writer) error
	CSVPanels() []CSVPanel
}

// CSVPanel is one machine-readable panel of a result.
type CSVPanel struct {
	// Name is the panel's file stem (acdbench writes <Name>.csv).
	Name string
	// Write emits the panel.
	Write func(io.Writer) error
}

// Output is what running one registry entry produces: the effective
// (fully derived) configuration and the structured result.
type Output struct {
	// Params is the effective configuration, recorded in run manifests
	// and cached alongside the result. Its concrete type varies per
	// experiment (Params, ThreeDParams, MetricsConfig, ...).
	Params any
	// Result is the experiment's structured result.
	Result Result
}

// Spec is one registry entry: an experiment name bound to its runner.
// The table below is the single source of truth shared by
// cmd/acdbench (flag help, -list, "all" expansion) and cmd/acdserverd
// (the POST /v1/experiments/{name} routes and registry listing).
type Spec struct {
	// Name is the experiment's stable identifier.
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Paper is the paper-scale preset of the shared knobs; scaled-down
	// defaults derive from it via Params.Scale.
	Paper Params
	// Run executes the experiment. Every experiment-specific
	// configuration (sweep schedules, 3D orders, metric grid sizes) is
	// a pure function of the shared knobs, so equal Params always mean
	// an equal Output — the invariant content-addressed caching rests
	// on.
	Run func(ctx context.Context, p Params) (*Output, error)
	// Decode reconstructs a Result of this experiment from its JSON
	// encoding, for rendering cache hits.
	Decode func([]byte) (Result, error)
}

// Registry returns the experiment table in display order.
func Registry() []Spec { return registry }

// Names returns the experiment names in display order.
func Names() []string {
	names := make([]string, len(registry))
	for i, s := range registry {
		names[i] = s.Name
	}
	return names
}

// Lookup finds a registry entry by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

var registry = []Spec{
	{
		Name:  "table12",
		Desc:  "Tables I-II: NFI/FFI ACD per particle x processor curve pair, all distributions",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunTable12(ctx, p)
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: Table12Set(res)}, nil
		},
		Decode: decodeResult[Table12Set],
	},
	{
		Name:  "fig6",
		Desc:  "Figure 6: NFI/FFI ACD across the six network topologies",
		Paper: Fig6Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunFig6(ctx, p)
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[Fig6Result],
	},
	{
		Name:  "fig7",
		Desc:  "Figure 7: ACD vs processor count on a torus",
		Paper: Fig7Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunFig7(ctx, p, fig7Orders(p))
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[Fig7Result],
	},
	{
		Name:  "radius",
		Desc:  "§VI-C: NFI ACD as the near-field radius grows",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunRadiusSweep(ctx, p, []int{1, 2, 4, 6, 8})
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[RadiusSweepResult],
	},
	{
		Name:  "nsweep",
		Desc:  "§VI-C: ACD as the particle count grows at fixed p",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			sizes := []int{p.Particles / 8, p.Particles / 4, p.Particles / 2, p.Particles}
			res, err := RunSizeSweep(ctx, p, sizes)
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[SizeSweepResult],
	},
	{
		Name:  "meshtorus",
		Desc:  "§VI-B: mesh vs torus wrap-link ablation",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunMeshTorus(ctx, p)
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[MeshTorusResult],
	},
	{
		Name:  "primitives",
		Desc:  "§VII: communication primitives under each placement curve",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res := RunPrimitives(p.ProcOrder, p.Workers)
			return &Output{Params: map[string]any{"procorder": p.ProcOrder}, Result: res}, nil
		},
		Decode: decodeResult[PrimitivesResult],
	},
	{
		Name:  "contention",
		Desc:  "NFI link congestion under XY routing (future-work item i)",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunContention(ctx, p)
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[ContentionResult],
	},
	{
		Name:  "dynamic",
		Desc:  "§VI-A: ACD over drift timesteps, static vs reordered assignment",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunDynamic(ctx, p, 8)
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[DynamicResult],
	},
	{
		Name:  "dynamicincr",
		Desc:  "Incremental pipeline: maintained order, assignment, and comm matrix over n-body ticks",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunDynamicIncr(ctx, p, 12)
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[DynamicIncrResult],
	},
	{
		Name:  "threed",
		Desc:  "3D validation: ACD and ANNS on a 3D torus (future-work item ii)",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			tp := ThreeDFromParams(p)
			res, err := RunThreeD(ctx, tp, p.Workers, p.engine())
			if err != nil {
				return nil, err
			}
			return &Output{Params: tp, Result: res}, nil
		},
		Decode: decodeResult[ThreeDResult],
	},
	{
		Name:  "clustering",
		Desc:  "Clustering metric: mean clusters per random square query",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			cfg := ClusteringFromParams(p)
			res, err := RunClustering(ctx, cfg.Order, cfg.QuerySides, cfg.QueryTrials, cfg.Seed, p.Workers)
			if err != nil {
				return nil, err
			}
			return &Output{Params: cfg, Result: res}, nil
		},
		Decode: decodeResult[ClusterResult],
	},
	{
		Name:  "loadbalance",
		Desc:  "Equal-count vs equal-work SFC chunking on a skewed input",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunLoadBalance(ctx, p)
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[LoadBalanceResult],
	},
	{
		Name:  "execmodel",
		Desc:  "ACD vs bulk-synchronous modeled makespan",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			res, err := RunExecModel(ctx, p)
			if err != nil {
				return nil, err
			}
			return &Output{Params: p, Result: res}, nil
		},
		Decode: decodeResult[ExecModelResult],
	},
	{
		Name:  "metrics",
		Desc:  "Metric landscape: proximity metrics vs application ACD",
		Paper: Table12Paper,
		Run: func(ctx context.Context, p Params) (*Output, error) {
			cfg := MetricsFromParams(p)
			res, err := RunMetrics(ctx, cfg)
			if err != nil {
				return nil, err
			}
			return &Output{Params: cfg, Result: res}, nil
		},
		Decode: decodeResult[MetricsResult],
	},
}

// decodeResult is the shared Decode implementation: unmarshal the JSON
// encoding into the experiment's concrete result type.
func decodeResult[T Result](data []byte) (Result, error) {
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// fig7Orders derives the processor-order sweep from the shared knobs:
// 4^(ProcOrder-3) up to 4^ProcOrder, the paper's 1,024..65,536 at full
// scale.
func fig7Orders(p Params) []uint {
	lo := uint(2)
	if p.ProcOrder > 3 {
		lo = p.ProcOrder - 3
	}
	var orders []uint
	for o := lo; o <= p.ProcOrder; o++ {
		orders = append(orders, o)
	}
	return orders
}

// ThreeDFromParams derives the 3D study configuration from the shared
// knobs: the laptop-scale ThreeDDefault geometry below paper scale, the
// 128^3-cell / 512-processor configuration at paper scale.
func ThreeDFromParams(p Params) ThreeDParams {
	t := ThreeDDefault
	if p.Particles >= 200000 {
		t.Particles, t.Order, t.ProcOrder, t.ANNSOrder = 200000, 7, 3, 5
	}
	t.Radius = p.Radius
	t.Seed = p.Seed
	return t
}

// ClusteringConfig is the derived configuration of the clustering
// study.
type ClusteringConfig struct {
	Order       uint
	QuerySides  []uint32
	QueryTrials int
	Seed        uint64
}

// ClusteringFromParams derives the clustering study from the shared
// knobs: the query-trial budget scales with the input size, clamped to
// [2000, 10000] (2,000 at the scaled default, 10,000 at paper scale).
func ClusteringFromParams(p Params) ClusteringConfig {
	trials := p.Particles / 25
	if trials < 2000 {
		trials = 2000
	}
	if trials > 10000 {
		trials = 10000
	}
	return ClusteringConfig{
		Order:       p.Order,
		QuerySides:  []uint32{2, 4, 8, 16, 32},
		QueryTrials: trials,
		Seed:        p.Seed,
	}
}

// MetricsFromParams derives the metric-landscape study from the shared
// knobs: the full-grid metric resolution tracks one order below the
// particle grid, clamped to [3, 9] (7 at the scaled default, 9 at
// paper scale).
func MetricsFromParams(p Params) MetricsConfig {
	mo := uint(3)
	if p.Order > 4 {
		mo = p.Order - 1
	}
	if mo > 9 {
		mo = 9
	}
	return MetricsConfig{Params: p, MetricOrder: mo, QuerySide: 8, QueryTrials: 5000}
}

// Table12Set is the table12 experiment's result: one Table12Result per
// input distribution.
type Table12Set []Table12Result

// renderPanels writes each panel followed by a blank separator line.
func renderPanels(w io.Writer, panels ...interface{ Render(io.Writer) error }) error {
	for i, p := range panels {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := p.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// Render writes both tables of every distribution.
func (s Table12Set) Render(w io.Writer) error {
	for _, res := range s {
		nfi, ffi := res.Matrices()
		if err := renderPanels(w, nfi, ffi); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// CSVPanels returns one panel per distribution.
func (s Table12Set) CSVPanels() []CSVPanel {
	panels := make([]CSVPanel, len(s))
	for i, res := range s {
		panels[i] = CSVPanel{Name: "table12_" + res.Distribution, Write: res.WriteCSV}
	}
	return panels
}

// Render writes the two panels of Figure 6.
func (f Fig6Result) Render(w io.Writer) error {
	nfi, ffi := f.Matrices()
	return renderPanels(w, nfi, ffi)
}

// CSVPanels returns the fig6 panel.
func (f Fig6Result) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "fig6", Write: f.WriteCSV}}
}

// Render writes the two panels of Figure 7.
func (f Fig7Result) Render(w io.Writer) error {
	nfi, ffi := f.SeriesTables()
	return renderPanels(w, nfi, ffi)
}

// CSVPanels returns the fig7 panel.
func (f Fig7Result) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "fig7", Write: f.WriteCSV}}
}

// Render writes the ANNS sweep table.
func (f Fig5Result) Render(w io.Writer) error { return f.SeriesTable().Render(w) }

// CSVPanels returns the fig5 panel.
func (f Fig5Result) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "fig5", Write: f.WriteCSV}}
}

// Render writes the radius sweep table.
func (r RadiusSweepResult) Render(w io.Writer) error { return r.SeriesTable().Render(w) }

// CSVPanels returns the radius panel.
func (r RadiusSweepResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "radius", Write: r.WriteCSV}}
}

// Render writes the two size-sweep panels.
func (r SizeSweepResult) Render(w io.Writer) error {
	nfi, ffi := r.SeriesTables()
	return renderPanels(w, nfi, ffi)
}

// CSVPanels returns the nsweep panel.
func (r SizeSweepResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "nsweep", Write: r.WriteCSV}}
}

// Render writes the mesh-vs-torus ablation table.
func (r MeshTorusResult) Render(w io.Writer) error { return r.Matrix().Render(w) }

// CSVPanels returns the meshtorus panel.
func (r MeshTorusResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "meshtorus", Write: r.WriteCSV}}
}

// Render writes the two primitive panels.
func (r PrimitivesResult) Render(w io.Writer) error {
	mesh, torus := r.Matrices()
	return renderPanels(w, mesh, torus)
}

// CSVPanels returns nil: the primitives study has no CSV form.
func (r PrimitivesResult) CSVPanels() []CSVPanel { return nil }

// Render writes the contention table.
func (r ContentionResult) Render(w io.Writer) error { return r.Matrix().Render(w) }

// CSVPanels returns the contention panel.
func (r ContentionResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "contention", Write: r.WriteCSV}}
}

// Render writes the two timestep-policy panels.
func (r DynamicResult) Render(w io.Writer) error {
	static, reorder := r.SeriesTables()
	return renderPanels(w, static, reorder)
}

// CSVPanels returns the dynamic panel.
func (r DynamicResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "dynamic", Write: r.WriteCSV}}
}

// Render writes the maintained-ACD and drift-gauge panels plus the
// per-curve repartition summary.
func (r DynamicIncrResult) Render(w io.Writer) error {
	acdT, gauge := r.SeriesTables()
	if err := renderPanels(w, acdT, gauge); err != nil {
		return err
	}
	for c, curve := range r.Curves {
		if _, err := fmt.Fprintf(w, "repartitions[%s] = %d\n", curve, r.Repartitions[c]); err != nil {
			return err
		}
	}
	return nil
}

// CSVPanels returns the dynamicincr panel.
func (r DynamicIncrResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "dynamicincr", Write: r.WriteCSV}}
}

// Render writes the 3D validation table.
func (r ThreeDResult) Render(w io.Writer) error { return r.Matrix().Render(w) }

// CSVPanels returns the threed panel.
func (r ThreeDResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "threed", Write: r.WriteCSV}}
}

// Render writes the clustering sweep table.
func (r ClusterResult) Render(w io.Writer) error { return r.SeriesTable().Render(w) }

// CSVPanels returns the clustering panel.
func (r ClusterResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "clustering", Write: r.WriteCSV}}
}

// Render writes the load-balancing table.
func (r LoadBalanceResult) Render(w io.Writer) error { return r.Matrix().Render(w) }

// CSVPanels returns the loadbalance panel.
func (r LoadBalanceResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "loadbalance", Write: r.WriteCSV}}
}

// Render writes the execution-model table.
func (r ExecModelResult) Render(w io.Writer) error { return r.Matrix().Render(w) }

// CSVPanels returns the execmodel panel.
func (r ExecModelResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "execmodel", Write: r.WriteCSV}}
}

// Render writes the metric-landscape table.
func (r MetricsResult) Render(w io.Writer) error { return r.Matrix().Render(w) }

// CSVPanels returns the metrics panel.
func (r MetricsResult) CSVPanels() []CSVPanel {
	return []CSVPanel{{Name: "metrics", Write: r.WriteCSV}}
}
