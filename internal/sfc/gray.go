package sfc

import "sfcacd/internal/geom"

// grayCurve implements the Gray order: points are visited in the order
// in which their Z-curve (Morton) codes appear in the binary reflected
// Gray code sequence. Equivalently, the index of a point is the Gray
// decoding (rank) of its Morton code, and the point at index d has
// Morton code GrayEncode(d).
type grayCurve struct{}

func (grayCurve) Name() string { return "gray" }

// GrayEncode returns the binary reflected Gray code of v.
func GrayEncode(v uint64) uint64 { return v ^ (v >> 1) }

// GrayDecode returns the rank of the Gray codeword g, inverting
// GrayEncode.
func GrayDecode(g uint64) uint64 {
	g ^= g >> 1
	g ^= g >> 2
	g ^= g >> 4
	g ^= g >> 8
	g ^= g >> 16
	g ^= g >> 32
	return g
}

func (grayCurve) Index(order uint, p geom.Point) uint64 {
	checkPoint(order, p)
	grayStats.countEncode(int(p.X))
	return GrayDecode(mortonEncode(p.X, p.Y))
}

func (grayCurve) Point(order uint, d uint64) geom.Point {
	checkIndex(order, d)
	grayStats.countDecode(int(d))
	x, y := mortonDecode(GrayEncode(d))
	return geom.Point{X: x, Y: y}
}
