// Package stats provides the small statistical toolkit behind the
// experiment harness: summary statistics and a deterministic parallel
// multi-trial runner (the paper reports "averages over multiple
// independent trials for each set of parameters").
package stats

import (
	"math"
	"sync"

	"sfcacd/internal/rng"
)

// Summary holds the usual summary statistics of a sample.
type Summary struct {
	N         int
	Mean      float64
	Std       float64 // sample standard deviation (n-1)
	Min, Max  float64
	HalfWidth float64 // 95% normal-approximation confidence half-width
}

// Summarize computes summary statistics; it returns the zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
		s.HalfWidth = 1.96 * s.Std / math.Sqrt(float64(s.N))
	}
	return s
}

// RunTrials runs f once per trial, each with an independent
// deterministic generator derived from baseSeed, in parallel, and
// returns the per-trial results in trial order. The same baseSeed
// always yields the same results regardless of scheduling.
func RunTrials(trials int, baseSeed uint64, f func(trial int, r *rng.Rand) float64) []float64 {
	out := make([]float64, trials)
	var wg sync.WaitGroup
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-trial seed: mix the trial index into the base seed so
			// streams are independent but reproducible.
			out[i] = f(i, rng.New(baseSeed+uint64(i)*0x9e3779b97f4a7c15))
		}(i)
	}
	wg.Wait()
	return out
}

// MeanOfTrials is RunTrials followed by Summarize.
func MeanOfTrials(trials int, baseSeed uint64, f func(trial int, r *rng.Rand) float64) Summary {
	return Summarize(RunTrials(trials, baseSeed, f))
}
