package quadtree

import (
	"cmp"
	"slices"
	"sort"

	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
)

// This file implements 2:1 balance refinement in the style of Sundar,
// Sampath & Biros (the paper's reference [20]): after balancing, any
// two edge- or corner-adjacent leaves differ by at most one level.
// Balanced trees are what adaptive FMM implementations require so that
// interaction lists stay O(1) per cell.

// Balance returns a new LinearTree whose leaves satisfy the 2:1
// condition: every pair of Chebyshev-adjacent leaves differs by at
// most one level. Particle counts are recomputed from the original
// leaf counts (each original leaf's particles land in its descendants
// proportionally — exact when the tree was built from points, since
// refinement only splits leaves).
func (t *LinearTree) Balance() *LinearTree {
	// Work on a set of leaf cells keyed by (level, x, y). The ripple
	// algorithm repeatedly splits any leaf that is more than one level
	// coarser than an adjacent leaf.
	leaves := make(map[Cell]bool, len(t.Leaves))
	for _, l := range t.Leaves {
		leaves[l] = true
	}
	// locate finds the leaf containing the cell c (c is at a level
	// deeper than or equal to the leaf's).
	locate := func(c Cell) (Cell, bool) {
		for lvl := int(c.Level); lvl >= 0; lvl-- {
			shift := c.Level - uint(lvl)
			cand := Cell{Level: uint(lvl), X: c.X >> shift, Y: c.Y >> shift}
			if leaves[cand] {
				return cand, true
			}
		}
		return Cell{}, false
	}
	changed := true
	for changed {
		changed = false
		// Snapshot: splitting while iterating a map is fine for
		// correctness here only if we collect splits first.
		var toSplit []Cell
		for leaf := range leaves {
			if leaf.Level == 0 {
				continue
			}
			// Examine the neighbors of leaf at its own level; if any
			// neighbor region is covered by a leaf more than one level
			// coarser, that coarser leaf must split.
			side := geom.Side(leaf.Level)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := int(leaf.X)+dx, int(leaf.Y)+dy
					if !geom.InBounds(nx, ny, side) {
						continue
					}
					n := Cell{Level: leaf.Level, X: uint32(nx), Y: uint32(ny)}
					owner, ok := locate(n)
					if !ok {
						continue
					}
					if leaf.Level > owner.Level+1 {
						toSplit = append(toSplit, owner)
					}
				}
			}
		}
		if len(toSplit) == 0 {
			break
		}
		for _, cell := range toSplit {
			if !leaves[cell] {
				continue // already split via another path
			}
			delete(leaves, cell)
			for i := 0; i < 4; i++ {
				leaves[cell.Child(i)] = true
			}
			changed = true
		}
	}
	// Rebuild the linear tree in Morton order and re-count particles.
	out := &LinearTree{Order: t.Order}
	out.Leaves = make([]Cell, 0, len(leaves))
	for l := range leaves {
		out.Leaves = append(out.Leaves, l)
	}
	slices.SortFunc(out.Leaves, func(a, b Cell) int {
		la, _ := a.MortonRange(t.Order)
		lb, _ := b.MortonRange(t.Order)
		return cmp.Compare(la, lb)
	})
	out.starts = make([]uint64, len(out.Leaves))
	out.Counts = make([]int, len(out.Leaves))
	for i, leaf := range out.Leaves {
		out.starts[i], _ = leaf.MortonRange(t.Order)
	}
	// Transfer counts: a leaf that survived keeps its count; a split
	// leaf's count is attached to its first descendant (the total is
	// preserved). Callers that need exact per-leaf counts after
	// balancing should use RebuildBalanced, which re-buckets the
	// original points.
	for i, leaf := range t.Leaves {
		if t.Counts[i] == 0 {
			continue
		}
		lo, _ := leaf.MortonRange(t.Order)
		j := sort.Search(len(out.starts), func(k int) bool { return out.starts[k] > lo }) - 1
		out.Counts[j] += t.Counts[i]
	}
	return out
}

// IsBalanced reports whether every pair of Chebyshev-adjacent leaves
// differs by at most one level.
func (t *LinearTree) IsBalanced() bool {
	leaves := make(map[Cell]bool, len(t.Leaves))
	for _, l := range t.Leaves {
		leaves[l] = true
	}
	locate := func(c Cell) (Cell, bool) {
		for lvl := int(c.Level); lvl >= 0; lvl-- {
			shift := c.Level - uint(lvl)
			cand := Cell{Level: uint(lvl), X: c.X >> shift, Y: c.Y >> shift}
			if leaves[cand] {
				return cand, true
			}
		}
		return Cell{}, false
	}
	for _, leaf := range t.Leaves {
		side := geom.Side(leaf.Level)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := int(leaf.X)+dx, int(leaf.Y)+dy
				if !geom.InBounds(nx, ny, side) {
					continue
				}
				owner, ok := locate(Cell{Level: leaf.Level, X: uint32(nx), Y: uint32(ny)})
				if ok && leaf.Level > owner.Level+1 {
					return false
				}
			}
		}
	}
	return true
}

// RebuildBalanced builds the adaptive tree from points and balances it
// with exact particle counts: the balanced structure is computed
// first, then particles are re-bucketed into the balanced leaves.
func RebuildBalanced(order uint, pts []geom.Point, maxPerLeaf int) *LinearTree {
	t := BuildLinear(order, pts, maxPerLeaf).Balance()
	// Re-count exactly from the points.
	for i := range t.Counts {
		t.Counts[i] = 0
	}
	codes := make([]uint64, len(pts))
	for i, p := range pts {
		codes[i] = sfc.Morton.Index(order, p)
	}
	slices.Sort(codes)
	for _, code := range codes {
		j := sort.Search(len(t.starts), func(k int) bool { return t.starts[k] > code }) - 1
		t.Counts[j]++
	}
	return t
}
