// Package resultcache is the serving layer's content-addressed result
// store: a byte-size-accounted in-memory LRU (Cache) in front of an
// optional on-disk store (DiskStore), both keyed by a stable hash of
// the experiment's identity.
//
// The key covers everything that determines a result — the experiment
// name, the canonical parameter encoding (experiments.CanonicalKey),
// and the result schema version — so a hit can be served without
// recomputation and a schema bump invalidates every stale entry at
// once. Hit, miss, and eviction counts register in internal/obs and
// therefore appear in run manifests and the daemon's /metrics.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
)

// Key is the content address of one cached result.
type Key [sha256.Size]byte

// String returns the key's lowercase hex form.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyFor derives the content address of an experiment run. The three
// identity components are length-framed before hashing so no two
// distinct (experiment, canonical, version) triples can collide by
// concatenation (e.g. "ab"+"c" vs "a"+"bc").
func KeyFor(experiment, canonical, version string) Key {
	h := sha256.New()
	var frame [8]byte
	for _, part := range []string{experiment, canonical, version} {
		n := len(part)
		for i := 0; i < 8; i++ {
			frame[i] = byte(n >> (8 * i))
		}
		h.Write(frame[:])
		h.Write([]byte(part))
	}
	var k Key
	h.Sum(k[:0])
	return k
}
