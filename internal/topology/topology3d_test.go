package topology

import (
	"testing"

	"sfcacd/internal/geom3"
	"sfcacd/internal/sfc"
)

func TestMesh3DMatchesBFS(t *testing.T) {
	for _, c := range []sfc.NDCurve{sfc.HilbertND{N: 3}, sfc.MortonND{N: 3}, sfc.RowMajorND{N: 3}} {
		verifyAgainstBFS(t, NewMesh3D(1, c)) // 8 procs
	}
	verifyAgainstBFS(t, NewMesh3D(2, sfc.HilbertND{N: 3})) // 64 procs
}

func TestTorus3DMatchesBFS(t *testing.T) {
	for _, c := range []sfc.NDCurve{sfc.HilbertND{N: 3}, sfc.GrayND{N: 3}} {
		verifyAgainstBFS(t, NewTorus3D(1, c))
	}
	verifyAgainstBFS(t, NewTorus3D(2, sfc.MortonND{N: 3}))
}

func TestOctreeNetDistances(t *testing.T) {
	o := NewOctreeNet(2) // 64 leaves
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 2},  // siblings
		{0, 7, 2},  // same parent
		{0, 8, 4},  // cousins
		{0, 63, 4}, // still only two levels
		{9, 15, 2},
	}
	for _, c := range cases {
		if got := o.Distance(c.a, c.b); got != c.want {
			t.Errorf("octree Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOctreeNetMatchesExplicitTree(t *testing.T) {
	const levels = 2
	o := NewOctreeNet(levels)
	// Build the 8-ary switch tree and BFS.
	offset := func(level int) int {
		off := 0
		for j := 0; j < level; j++ {
			off += 1 << (3 * j)
		}
		return off
	}
	total := offset(levels + 1)
	adj := make([][]int, total)
	for l := 0; l < levels; l++ {
		for i := 0; i < 1<<(3*l); i++ {
			p := offset(l) + i
			for c := 0; c < 8; c++ {
				ch := offset(l+1) + i*8 + c
				adj[p] = append(adj[p], ch)
				adj[ch] = append(adj[ch], p)
			}
		}
	}
	for src := 0; src < o.P(); src += 5 {
		distv := make([]int, total)
		for i := range distv {
			distv[i] = -1
		}
		start := offset(levels) + src
		distv[start] = 0
		queue := []int{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, n := range adj[cur] {
				if distv[n] == -1 {
					distv[n] = distv[cur] + 1
					queue = append(queue, n)
				}
			}
		}
		for dst := 0; dst < o.P(); dst++ {
			if got := o.Distance(src, dst); got != distv[offset(levels)+dst] {
				t.Fatalf("octree Distance(%d,%d) = %d, BFS %d", src, dst, got, distv[offset(levels)+dst])
			}
		}
	}
}

func Test3DGridAccessors(t *testing.T) {
	m := NewMesh3D(1, sfc.HilbertND{N: 3})
	if m.Side() != 2 || m.Placement() != "hilbert3d" {
		t.Fatalf("side=%d placement=%q", m.Side(), m.Placement())
	}
	for r := 0; r < m.P(); r++ {
		if got := m.RankAt(m.Coord(r)); got != r {
			t.Fatalf("RankAt(Coord(%d)) = %d", r, got)
		}
	}
}

func TestTorus3DWrapShortens(t *testing.T) {
	tor := NewTorus3D(2, sfc.RowMajorND{N: 3}) // 4x4x4
	mesh := NewMesh3D(2, sfc.RowMajorND{N: 3})
	a := mesh.RankAt(geom3.Pt3(0, 0, 0))
	b := mesh.RankAt(geom3.Pt3(3, 3, 3))
	if d := mesh.Distance(a, b); d != 9 {
		t.Fatalf("mesh3d corner distance = %d", d)
	}
	if d := tor.Distance(a, b); d != 3 {
		t.Fatalf("torus3d corner distance = %d", d)
	}
}

func TestHilbert3DPlacementKeepsRanksAdjacent(t *testing.T) {
	m := NewMesh3D(2, sfc.HilbertND{N: 3})
	for r := 0; r < m.P()-1; r++ {
		if d := m.Distance(r, r+1); d != 1 {
			t.Fatalf("ranks %d,%d at distance %d under hilbert3d placement", r, r+1, d)
		}
	}
}

func Test3DConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewMesh3D(11, sfc.HilbertND{N: 3}) },
		func() { NewMesh3D(2, sfc.HilbertND{N: 2}) },
		func() { NewOctreeNet(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func Test3DMetricProperties(t *testing.T) {
	topos := []Topology{
		NewMesh3D(1, sfc.HilbertND{N: 3}),
		NewTorus3D(1, sfc.MortonND{N: 3}),
		NewOctreeNet(1),
	}
	for _, topo := range topos {
		p := topo.P()
		for a := 0; a < p; a++ {
			if topo.Distance(a, a) != 0 {
				t.Fatalf("%s: self distance nonzero", topo.Name())
			}
			for b := 0; b < p; b++ {
				if topo.Distance(a, b) != topo.Distance(b, a) {
					t.Fatalf("%s: asymmetric", topo.Name())
				}
				if a != b && topo.Distance(a, b) <= 0 {
					t.Fatalf("%s: nonpositive", topo.Name())
				}
			}
		}
	}
}
