// Package nbody implements the application whose communication the
// paper models: a 2D Fast Multipole Method (Greengard & Rokhlin 1987)
// for the Laplace kernel, alongside the O(n^2) direct-summation
// baseline. The complex-potential formulation is used: a unit charge
// at z0 contributes log(z - z0) to the analytic potential Phi; the
// physical potential is Re(Phi) and the gradient of the potential is
// conj(Phi').
package nbody

import (
	"fmt"
	"math/cmplx"
	"runtime"
	"sync"
)

// System is a set of charged particles in the unit square.
type System struct {
	// Pos holds particle positions as complex x+iy, each in [0,1)^2.
	Pos []complex128
	// Q holds the particle charges, parallel to Pos.
	Q []float64
}

// Validate checks the system's shape and domain.
func (s System) Validate() error {
	if len(s.Pos) != len(s.Q) {
		return fmt.Errorf("nbody: %d positions for %d charges", len(s.Pos), len(s.Q))
	}
	for i, z := range s.Pos {
		x, y := real(z), imag(z)
		if x < 0 || x >= 1 || y < 0 || y >= 1 {
			return fmt.Errorf("nbody: particle %d at %v outside the unit square", i, z)
		}
	}
	return nil
}

// Result holds per-particle potentials and potential gradients.
type Result struct {
	// Potential[i] = sum_{j != i} Q[j] * log|Pos[i] - Pos[j]|.
	Potential []float64
	// Gradient[i] is the gradient of Potential at particle i, packed as
	// gx + i*gy.
	Gradient []complex128
}

// SolveDirect computes potentials and gradients by direct summation,
// parallelized over target particles. Coincident particle pairs are
// skipped (their interaction is singular).
func SolveDirect(s System, workers int) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(s.Pos)
	res := Result{
		Potential: make([]float64, n),
		Gradient:  make([]complex128, n),
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				zi := s.Pos[i]
				var pot float64
				var grad complex128
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					d := zi - s.Pos[j]
					if d == 0 {
						continue
					}
					pot += s.Q[j] * realLog(d)
					grad += complex(s.Q[j], 0) / d
				}
				res.Potential[i] = pot
				res.Gradient[i] = cmplx.Conj(grad)
			}
		}(lo, hi)
	}
	wg.Wait()
	return res, nil
}

// realLog returns log|d| for complex d.
func realLog(d complex128) float64 {
	return real(cmplx.Log(d))
}

// TotalEnergy returns the pairwise interaction energy
// 1/2 sum_i Q[i]*Potential[i] — a convenient scalar for conservation
// and regression checks.
func TotalEnergy(s System, r Result) float64 {
	var e float64
	for i, q := range s.Q {
		e += q * r.Potential[i]
	}
	return e / 2
}
