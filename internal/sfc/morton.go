package sfc

import "sfcacd/internal/geom"

// mortonCurve implements the Z-curve (Morton 1966): the index is the
// bitwise interleaving of the two coordinates. The recursive view —
// four copies of Z_k composed without rotation — is validated against
// this bit-twiddling form in tests.
type mortonCurve struct{}

func (mortonCurve) Name() string { return "morton" }

// part1by1 spreads the 32 bits of v to the even bit positions of a
// 64-bit word.
func part1by1(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact1by1 inverts part1by1, gathering the even bits of x.
func compact1by1(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// mortonEncode interleaves (x, y) with y in the odd (higher) positions,
// so the curve traces the familiar "Z" within each 2x2 block.
func mortonEncode(x, y uint32) uint64 {
	return part1by1(x) | part1by1(y)<<1
}

// mortonDecode inverts mortonEncode.
func mortonDecode(d uint64) (x, y uint32) {
	return compact1by1(d), compact1by1(d >> 1)
}

func (mortonCurve) Index(order uint, p geom.Point) uint64 {
	checkPoint(order, p)
	mortonStats.countEncode(int(p.X))
	return mortonEncode(p.X, p.Y)
}

func (mortonCurve) Point(order uint, d uint64) geom.Point {
	checkIndex(order, d)
	mortonStats.countDecode(int(d))
	x, y := mortonDecode(d)
	return geom.Point{X: x, Y: y}
}
