package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"sfcacd/internal/experiments"
	"sfcacd/internal/resultcache"
)

// stubPeers scripts a PeerSource so the serving layer's fleet hooks
// can be tested without real peers.
type stubPeers struct {
	self  MemberInfo
	owner MemberInfo // what Owner reports
	isOwn bool

	entry    resultcache.Entry // returned by Fetch when filled
	hasEntry bool
	fetches  atomic.Int64

	forwardFn func(experiment, preset string, body []byte) (*ForwardResult, error)
	forwards  atomic.Int64
}

func (s *stubPeers) Self() MemberInfo      { return s.self }
func (s *stubPeers) Members() []MemberInfo { return []MemberInfo{s.self, s.owner} }
func (s *stubPeers) Owner(resultcache.Key) (MemberInfo, bool) {
	if s.isOwn {
		return s.self, true
	}
	return s.owner, false
}
func (s *stubPeers) Fetch(ctx context.Context, key resultcache.Key) (resultcache.Entry, bool) {
	s.fetches.Add(1)
	return s.entry, s.hasEntry
}
func (s *stubPeers) Forward(ctx context.Context, owner MemberInfo, experiment, preset string, body []byte) (*ForwardResult, error) {
	s.forwards.Add(1)
	if s.forwardFn == nil {
		return nil, errors.New("no forward scripted")
	}
	return s.forwardFn(experiment, preset, body)
}

// newRequest and doRequest mirror postExperiment for tests that need
// to set headers on the request first.
func newRequest(t *testing.T, url, body string) *http.Request {
	t.Helper()
	return httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
}

func doRequest(h http.Handler, req *http.Request) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// peerEntry fabricates the finished entry a peer would hold for the
// given request.
func peerEntry(experiment string, p experiments.Params) resultcache.Entry {
	return resultcache.Entry{
		Key:        keyOf(experiment, p),
		Experiment: experiment,
		Params:     []byte(`{"from":"peer"}`),
		Result:     []byte(`{"rows":[]}`),
		Manifest:   []byte(`{"node":"other"}`),
	}
}

// TestDoPeerFillThenHit pins the miss path's peer hook: a miss that a
// peer can fill returns StatusPeer without running the experiment, and
// the filled entry serves the next request as a plain local hit.
func TestDoPeerFillThenHit(t *testing.T) {
	s := New(Options{Workers: 1})
	var runs atomic.Int64
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		runs.Add(1)
		return fakeOutput(p), nil
	}
	peers := &stubPeers{
		self:     MemberInfo{ID: "me", Self: true},
		owner:    MemberInfo{ID: "me", Self: true},
		isOwn:    true,
		entry:    peerEntry("table12", tinyParams),
		hasEntry: true,
	}
	s.SetPeers(peers)

	resp, err := s.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusPeer {
		t.Errorf("status = %q, want %q", resp.Status, StatusPeer)
	}
	if runs.Load() != 0 {
		t.Errorf("runner executed %d times; a peer fill must not compute", runs.Load())
	}
	if !bytes.Equal(resp.Entry.Result, peers.entry.Result) {
		t.Error("peer-filled response does not carry the peer's entry")
	}

	resp, err = s.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusHit {
		t.Errorf("second request status = %q, want %q (fill populates the cache)", resp.Status, StatusHit)
	}
	if peers.fetches.Load() != 1 {
		t.Errorf("peers consulted %d times, want 1", peers.fetches.Load())
	}
}

// TestDoPeerMissComputes pins that an empty fleet answer degrades to
// the normal compute path.
func TestDoPeerMissComputes(t *testing.T) {
	s := New(Options{Workers: 1})
	var runs atomic.Int64
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		runs.Add(1)
		return fakeOutput(p), nil
	}
	s.SetPeers(&stubPeers{self: MemberInfo{ID: "me", Self: true}, isOwn: true})

	resp, err := s.Do(context.Background(), "table12", tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusMiss || runs.Load() != 1 {
		t.Errorf("status %q after %d runs, want miss after exactly one", resp.Status, runs.Load())
	}
}

// TestHandlerForwardsToOwner pins the proxy path at the HTTP layer:
// the owner's relayed hit surfaces as X-Cache: peer with the owner's
// exact bytes, and a forwarded request is never forwarded again.
func TestHandlerForwardsToOwner(t *testing.T) {
	s := New(Options{Workers: 1})
	var runs atomic.Int64
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		runs.Add(1)
		return fakeOutput(p), nil
	}
	ownerBody := []byte(`{"experiment":"table12","key":"abc","params":{},"result":{}}` + "\n")
	peers := &stubPeers{
		self:  MemberInfo{ID: "me", Self: true},
		owner: MemberInfo{ID: "owner"},
		forwardFn: func(experiment, preset string, body []byte) (*ForwardResult, error) {
			return &ForwardResult{StatusCode: http.StatusOK, Cache: "hit", Body: ownerBody}, nil
		},
	}
	s.SetPeers(peers)
	h := NewHandler(s)

	rec := postExperiment(t, h, "/v1/experiments/table12", tinyBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Cache"); got != "peer" {
		t.Errorf("X-Cache = %q, want peer (owner hit relayed)", got)
	}
	if got := rec.Header().Get("X-Fleet-Node"); got != "owner" {
		t.Errorf("X-Fleet-Node = %q, want owner", got)
	}
	if !bytes.Equal(rec.Body.Bytes(), ownerBody) {
		t.Error("relayed body is not the owner's exact bytes")
	}
	if runs.Load() != 0 {
		t.Error("forwarded request also computed locally")
	}

	// The forwarded marker pins the request here: no second hop.
	req := newRequest(t, "/v1/experiments/table12", tinyBody)
	req.Header.Set(HeaderFleetForwarded, "1")
	rec = doRequest(h, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded request status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("forwarded request X-Cache = %q, want miss (served locally)", got)
	}
	if peers.forwards.Load() != 1 {
		t.Errorf("Forward called %d times, want 1", peers.forwards.Load())
	}
}

// TestHandlerForwardFailureDegradesLocally pins graceful degradation
// at the HTTP layer: a dead owner costs a local recompute, never an
// error surfaced to the client.
func TestHandlerForwardFailureDegradesLocally(t *testing.T) {
	s := New(Options{Workers: 1})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		return fakeOutput(p), nil
	}
	s.SetPeers(&stubPeers{
		self:  MemberInfo{ID: "me", Self: true},
		owner: MemberInfo{ID: "owner"},
		forwardFn: func(experiment, preset string, body []byte) (*ForwardResult, error) {
			return nil, errors.New("owner unreachable")
		},
	})
	h := NewHandler(s)

	rec := postExperiment(t, h, "/v1/experiments/table12", tinyBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss (local fallback)", got)
	}
}
