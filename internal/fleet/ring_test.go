package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys returns k deterministic pseudo-random 32-byte keys (the
// shape of resultcache content addresses).
func testKeys(k int) [][]byte {
	r := rand.New(rand.NewSource(7))
	keys := make([][]byte, k)
	for i := range keys {
		keys[i] = make([]byte, 32)
		r.Read(keys[i])
	}
	return keys
}

// TestRingDeterministicAcrossBuildOrder pins the property fleet
// routing rests on: every process that agrees on the member list
// agrees on every key's owner, regardless of the order the members
// were configured in.
func TestRingDeterministicAcrossBuildOrder(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	r1 := NewRing(members, 0)
	shuffled := []string{"d", "a", "e", "c", "b"}
	r2 := NewRing(shuffled, 0)
	for _, key := range testKeys(2000) {
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("owner differs across build order: %q vs %q", o1, o2)
		}
		rep1, rep2 := r1.Replicas(key, 3), r2.Replicas(key, 3)
		if fmt.Sprint(rep1) != fmt.Sprint(rep2) {
			t.Fatalf("replicas differ across build order: %v vs %v", rep1, rep2)
		}
	}
}

// TestRingRemapBound pins consistency: removing one of N members
// remaps only the keys that member owned (~K/N of them), and adding
// it back restores the original routing exactly. The tolerance allows
// the small imbalance 128 virtual nodes leave.
func TestRingRemapBound(t *testing.T) {
	const K = 10000
	members := []string{"n0", "n1", "n2", "n3", "n4"}
	full := NewRing(members, 0)
	reduced := NewRing(members[:4], 0) // n4 removed
	keys := testKeys(K)

	moved, ownedByRemoved := 0, 0
	for _, key := range keys {
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before == "n4" {
			ownedByRemoved++
			if after == "n4" {
				t.Fatal("removed member still owns a key")
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed member were remapped (consistent hashing must move only the removed member's keys)", moved)
	}
	// The removed member's share is ~K/N; 128 vnodes keep it within
	// 2x of fair share with a wide margin.
	if fair := K / len(members); ownedByRemoved > 2*fair {
		t.Errorf("removed member owned %d of %d keys, want about %d (share too uneven)", ownedByRemoved, K, fair)
	}
	if ownedByRemoved < K/(2*len(members)) {
		t.Errorf("removed member owned only %d of %d keys (share too uneven)", ownedByRemoved, K)
	}

	// Adding the member back restores the full ring's routing.
	restored := NewRing([]string{"n4", "n2", "n0", "n3", "n1"}, 0)
	for _, key := range keys {
		if full.Owner(key) != restored.Owner(key) {
			t.Fatal("re-adding a member did not restore routing")
		}
	}
}

// TestRingReplicas checks the replica walk: owner first, all members
// distinct, degenerate sizes handled.
func TestRingReplicas(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	for _, key := range testKeys(200) {
		reps := r.Replicas(key, 2)
		if len(reps) != 2 {
			t.Fatalf("Replicas(2) returned %v", reps)
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("first replica %q is not the owner %q", reps[0], r.Owner(key))
		}
		if reps[0] == reps[1] {
			t.Fatalf("duplicate members in %v", reps)
		}
		if all := r.Replicas(key, 99); len(all) != 3 {
			t.Fatalf("Replicas(99) = %v, want all 3 members", all)
		}
	}
	if got := NewRing(nil, 0).Owner(testKeys(1)[0]); got != "" {
		t.Errorf("empty ring owner = %q", got)
	}
	if got := NewRing([]string{"a", "a", "a"}, 0); len(got.Members()) != 1 {
		t.Errorf("duplicate members not collapsed: %v", got.Members())
	}
}

// TestRingSingleMember: a one-node fleet always routes to itself —
// the invariant the byte-identical single-node guarantee rests on.
func TestRingSingleMember(t *testing.T) {
	r := NewRing([]string{"solo"}, 0)
	for _, key := range testKeys(100) {
		if r.Owner(key) != "solo" {
			t.Fatal("single-member ring routed elsewhere")
		}
	}
}
