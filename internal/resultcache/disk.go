package resultcache

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// DiskStore is a content-addressed directory store: one JSON file per
// entry at <dir>/<hex[:2]>/<hex>.json. It lets acdbench warm a cache
// the daemon then serves from (and vice versa), and persists results
// across restarts. Writes go through a temp file and rename, so a
// crash can leave stray *.tmp files but never a truncated entry.
type DiskStore struct {
	dir string
}

// OpenDisk creates (if needed) and opens a disk store rooted at dir.
func OpenDisk(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: opening disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// path returns the entry file of k.
func (d *DiskStore) path(k Key) string {
	hexKey := k.String()
	return filepath.Join(d.dir, hexKey[:2], hexKey+".json")
}

// Get loads the entry stored under k. A missing entry returns ok ==
// false with a nil error; a present but unreadable or corrupt entry
// returns the error.
func (d *DiskStore) Get(k Key) (Entry, bool, error) {
	data, err := os.ReadFile(d.path(k))
	if os.IsNotExist(err) {
		return Entry{}, false, nil
	}
	if err != nil {
		return Entry{}, false, err
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, false, fmt.Errorf("resultcache: corrupt entry %s: %w", k, err)
	}
	if e.Key != k {
		return Entry{}, false, fmt.Errorf("resultcache: entry %s stored under key %s", e.Key, k)
	}
	return e, true, nil
}

// Put stores e under e.Key, atomically replacing any existing entry.
func (d *DiskStore) Put(e Entry) error {
	path := d.path(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "entry-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// parseHex fills k from its lowercase hex form.
func (k *Key) parseHex(s string) error {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(k) {
		return fmt.Errorf("resultcache: bad key %q", s)
	}
	copy(k[:], raw)
	return nil
}
