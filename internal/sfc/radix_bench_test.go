package sfc

import (
	"fmt"
	"testing"
)

// BenchmarkSortPoints compares the radix permutation sort against the
// stdlib stable comparator sort it replaced, on the uint64 curve keys
// the ordering phase actually sorts.
func BenchmarkSortPoints(b *testing.B) {
	for _, n := range []int{1_000, 100_000, 1_000_000} {
		keys := randomKeys(n, 1<<52, uint64(n))
		b.Run(fmt.Sprintf("radix/n=%d", n), func(b *testing.B) {
			perm := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range perm {
					perm[j] = j
				}
				SortPermByKeys(perm, keys)
			}
		})
		b.Run(fmt.Sprintf("stdlib/n=%d", n), func(b *testing.B) {
			perm := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range perm {
					perm[j] = j
				}
				oracleSort(perm, keys)
			}
		})
	}
}
