// Package execmodel estimates a parallel execution time from the
// communication event streams the ACD metric summarizes — a
// LogP-flavored bulk-synchronous cost with per-processor message
// counts, hop-weighted transfer terms, and local work. It addresses
// the validation half of the paper's future-work item (ii): do the
// communication trends the ACD projects actually order modeled
// execution times the same way?
package execmodel

import (
	"fmt"

	"sfcacd/internal/acd"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/obs"
	"sfcacd/internal/topology"
)

// Tally accumulates per-processor costs from a communication event
// stream.
type Tally struct {
	// Sends[p] counts messages originated by rank p (self-messages are
	// free and not counted).
	Sends []uint64
	// Hops[p] sums the network hop distances of p's messages.
	Hops []uint64
	// Work[p] counts local computation units at rank p.
	Work []uint64
}

// NewTally returns a tally for p processors.
func NewTally(p int) *Tally {
	return &Tally{
		Sends: make([]uint64, p),
		Hops:  make([]uint64, p),
		Work:  make([]uint64, p),
	}
}

// Message records one message from src over the given hop distance.
func (t *Tally) Message(src int32, hops int) {
	if hops == 0 {
		return
	}
	t.Sends[src]++
	t.Hops[src] += uint64(hops)
}

// AddWork records local computation units at a rank.
func (t *Tally) AddWork(rank int32, units int) {
	t.Work[rank] += uint64(units)
}

// CostParams is the bulk-synchronous cost model: per-message overhead
// Alpha, per-hop transfer cost Beta, per-work-unit cost Gamma. The
// step time is the maximum per-processor cost (everyone waits for the
// slowest).
type CostParams struct {
	Alpha, Beta, Gamma float64
}

// Validate rejects negative parameters.
func (c CostParams) Validate() error {
	if c.Alpha < 0 || c.Beta < 0 || c.Gamma < 0 {
		return fmt.Errorf("execmodel: negative cost parameter %+v", c)
	}
	return nil
}

// Makespan returns max_p (Alpha*Sends[p] + Beta*Hops[p] +
// Gamma*Work[p]).
func (t *Tally) Makespan(c CostParams) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	var worst float64
	for p := range t.Sends {
		cost := c.Alpha*float64(t.Sends[p]) + c.Beta*float64(t.Hops[p]) + c.Gamma*float64(t.Work[p])
		if cost > worst {
			worst = cost
		}
	}
	return worst, nil
}

// TotalCost returns the summed (non-max) cost, proportional to the
// aggregate resource usage.
func (t *Tally) TotalCost(c CostParams) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	var total float64
	for p := range t.Sends {
		total += c.Alpha*float64(t.Sends[p]) + c.Beta*float64(t.Hops[p]) + c.Gamma*float64(t.Work[p])
	}
	return total, nil
}

// CollectNFI tallies one FMM near-field step: every cross-processor
// pair exchange is a message charged to the sender, and every pair
// evaluation (including same-processor ones) is a unit of local work
// at the owner.
func CollectNFI(a *acd.Assignment, topo topology.Topology, opts fmmmodel.NFIOptions) *Tally {
	defer obs.StartSpan("accumulation.nfi").End()
	t := NewTally(topo.P())
	var queries uint64
	fmmmodel.VisitNFIPairs(a, opts, func(src, dst int32) {
		t.AddWork(src, 1)
		t.Message(src, topo.Distance(int(src), int(dst)))
		queries++
	})
	topology.CountDistanceQueries(queries)
	return t
}

// CollectFFI tallies one FMM far-field step: interpolation,
// anterpolation, and interaction-list exchanges as messages from their
// source representative, with one unit of work per event at the
// source.
func CollectFFI(a *acd.Assignment, topo topology.Topology) *Tally {
	defer obs.StartSpan("accumulation.ffi").End()
	t := NewTally(topo.P())
	var queries uint64
	fmmmodel.VisitFFIPairs(a, func(src, dst int32) {
		t.AddWork(src, 1)
		t.Message(src, topo.Distance(int(src), int(dst)))
		queries++
	})
	topology.CountDistanceQueries(queries)
	return t
}

// DefaultCost is a representative parameterization: message overhead
// dominates per-hop cost, and per-pair compute is cheap.
var DefaultCost = CostParams{Alpha: 1, Beta: 0.2, Gamma: 0.05}
