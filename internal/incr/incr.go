// Package incr maintains the §IV pipeline's derived state — curve
// order, balanced-chunk assignment, and the near-field communication
// matrix — across the timesteps of a drifting particle set, instead of
// rebuilding all three from scratch each tick.
//
// Between ticks only a small minority of particles move, so each
// derived structure admits a delta update:
//
//   - The sorted permutation is repaired by sfc.ResortPermByKeys,
//     which extracts the still-sorted backbone and merges the
//     displaced minority back, instead of re-running the full radix
//     sort.
//   - Ownership is repaired by acd.DeltaOwners, which recomputes
//     owners only where the recorded rank disagrees with the
//     balanced-chunk partition over the repaired order. The fraction
//     of disagreements is the tick's drift gauge.
//   - The near-field matrix is repaired in a commmat.Mutable by
//     retracting the rank-pair events incident to affected particles
//     in the pre-tick state and re-adding them in the post-tick state.
//
// When the drift gauge crosses the repartition policy's high-water
// mark the delta mechanism stops paying for itself and the state falls
// back to a full rebuild (keynav index refill plus matrix reset), with
// hysteresis so an oscillating gauge does not flap between mechanisms.
// Either way the maintained matrix is defined to be bit-identical to a
// from-scratch fmmmodel.NFIMatrix of the current configuration — the
// differential oracle the tests and CI enforce every tick.
package incr

import (
	"fmt"

	"sfcacd/internal/acd"
	"sfcacd/internal/commmat"
	"sfcacd/internal/geom"
	"sfcacd/internal/keynav"
	"sfcacd/internal/obs"
	"sfcacd/internal/partition"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

var (
	tickCounter        = obs.GetCounter("incr.ticks")
	repartitionCounter = obs.GetCounter("incr.repartitions")
	movedCounter       = obs.GetCounter("incr.moved")
	ownerMoveCounter   = obs.GetCounter("incr.owner_moves")
	retractCounter     = obs.GetCounter("incr.retracted")
	readdCounter       = obs.GetCounter("incr.readded")
)

// denseOccLimit mirrors acd's dense-table threshold: up to 4^12 cells
// the cell->particle occupancy is a flat array, beyond that a map.
const denseOccLimit = uint64(1) << 24

// Config fixes one maintained pipeline's parameters for its lifetime.
type Config struct {
	Curve  sfc.Curve
	Order  uint
	P      int
	Radius int
	Metric geom.Metric
	// Policy governs the fallback to full rebuilds. The zero value is
	// replaced by acd.DefaultRepartitionPolicy.
	Policy acd.RepartitionPolicy
	// ForceRebuild pins the maintenance mechanism to full rebuilds
	// regardless of the policy's decision. The policy still runs (and
	// TickStats still reports its decisions), so a forced-rebuild state
	// reports tick-for-tick identical stats to a delta state fed the
	// same drift — which is what lets an experiment output serve as a
	// cross-mechanism differential oracle.
	ForceRebuild bool
}

// TickStats reports what one tick did. Every field is a deterministic
// function of the particle trajectory alone — none depends on which
// mechanism (delta or rebuild) maintained the state.
type TickStats struct {
	// Moved counts particles whose cell changed this tick.
	Moved int
	// Displaced is the number of permutation entries the adaptive
	// re-sort had to extract and merge (n on its full-sort fallback).
	Displaced int
	// OwnerMoves counts particles whose owning rank changed.
	OwnerMoves int
	// Gauge is OwnerMoves / n, the drift fed to the policy.
	Gauge float64
	// Repartitioned is the policy's decision for this tick.
	Repartitioned bool
	// Retracted and Readded count the rank-pair events incident to
	// affected particles before and after the move was applied.
	Retracted int
	Readded   int
}

// State is one maintained pipeline: the derived state of a particle
// set under one curve, carried across ticks. Not safe for concurrent
// use.
type State struct {
	cfg  Config
	side uint32
	n    int

	// Identity-indexed views of the current configuration. A particle's
	// identity is its index in the initial (and every Tick's) slice.
	pts    []geom.Point
	keys   []uint64
	owners []int32
	// perm holds identities in curve order.
	perm []int

	// cell -> occupant identity (-1 / absent when empty).
	denseOcc  []int32
	sparseOcc map[uint64]int32

	counts *commmat.Mutable
	ix     *keynav.Index

	// epoch/mark implement the affected set without clearing: identity
	// id is affected this tick iff mark[id] == epoch. The retract and
	// re-add enumerations visit each affected-affected pair once, from
	// the lower identity.
	epoch uint64
	mark  []uint64

	deltaBuf     []acd.OwnerDelta
	movedBuf     []int
	affectedBuf  []int
	sortedBuf    []geom.Point
	repartitions int
}

// NewState builds the initial pipeline state from scratch: full curve
// sort, balanced-chunk ownership, occupancy, key-space index, and
// near-field matrix. Duplicate particle cells are rejected, as in
// acd.Assign.
func NewState(cfg Config, pts []geom.Point) (*State, error) {
	if cfg.Curve == nil {
		return nil, fmt.Errorf("incr: nil curve")
	}
	if cfg.P < 1 {
		return nil, fmt.Errorf("incr: p = %d must be positive", cfg.P)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("incr: no particles")
	}
	if cfg.Policy == (acd.RepartitionPolicy{}) {
		cfg.Policy = acd.DefaultRepartitionPolicy()
	}
	n := len(pts)
	s := &State{
		cfg:  cfg,
		side: geom.Side(cfg.Order),
		n:    n,
		pts:  append([]geom.Point(nil), pts...),
		mark: make([]uint64, n),
	}
	s.perm, s.keys = sfc.SortPointsKeys(cfg.Curve, cfg.Order, s.pts)
	for i := 1; i < n; i++ {
		if s.keys[s.perm[i]] == s.keys[s.perm[i-1]] {
			return nil, fmt.Errorf("incr: duplicate particle cell %v", s.pts[s.perm[i]])
		}
	}
	s.owners = make([]int32, n)
	for r := 0; r < cfg.P; r++ {
		lo, hi := partition.Start(r, n, cfg.P), partition.End(r, n, cfg.P)
		for i := lo; i < hi; i++ {
			s.owners[s.perm[i]] = int32(r)
		}
	}
	if geom.Cells(cfg.Order) <= denseOccLimit {
		s.denseOcc = make([]int32, geom.Cells(cfg.Order))
		for i := range s.denseOcc {
			s.denseOcc[i] = -1
		}
	} else {
		s.sparseOcc = make(map[uint64]int32, n)
	}
	for id, pt := range s.pts {
		s.occSet(pt, int32(id))
	}
	s.counts = commmat.NewMutable(cfg.P)
	s.ix = keynav.Build(cfg.Order, s.pts, s.owners)
	s.refill()
	return s, nil
}

func (s *State) occAt(q geom.Point) int32 {
	if s.denseOcc != nil {
		return s.denseOcc[geom.CellID(q, s.side)]
	}
	if id, ok := s.sparseOcc[geom.CellID(q, s.side)]; ok {
		return id
	}
	return -1
}

func (s *State) occSet(q geom.Point, id int32) {
	if s.denseOcc != nil {
		s.denseOcc[geom.CellID(q, s.side)] = id
	} else {
		s.sparseOcc[geom.CellID(q, s.side)] = id
	}
}

func (s *State) occClear(q geom.Point) {
	if s.denseOcc != nil {
		s.denseOcc[geom.CellID(q, s.side)] = -1
	} else {
		delete(s.sparseOcc, geom.CellID(q, s.side))
	}
}

// refill rebuilds the near-field matrix from the key-space index (one
// upper-pair traversal, as fmmmodel's keys engine does).
func (s *State) refill() {
	s.counts.Reset()
	s.ix.VisitUpperNeighborPairs(0, s.n, s.cfg.Radius, s.cfg.Metric, func(mine, r int32) {
		if r < mine {
			s.counts.Add(r, mine)
		} else {
			s.counts.Add(mine, r)
		}
	})
}

// forAffectedPairs enumerates, in the state's current configuration,
// every near-field pair with at least one affected member and calls fn
// with the members' current owners. Pairs between two affected
// particles are visited once, from the lower identity: the enumeration
// from the higher one skips them, so retract and re-add touch each
// pair's event exactly once regardless of processing order.
func (s *State) forAffectedPairs(affected []int, fn func(ra, rb int32)) int {
	count := 0
	for _, a := range affected {
		ra := s.owners[a]
		geom.VisitNeighborhood(s.pts[a], s.cfg.Radius, s.cfg.Metric, s.side, func(q geom.Point) {
			b := s.occAt(q)
			if b < 0 || (s.mark[b] == s.epoch && int(b) < a) {
				return
			}
			fn(ra, s.owners[b])
			count++
		})
	}
	return count
}

// apply moves the state to the new configuration: occupancy and
// positions for moved particles (old cells cleared before new ones are
// set, so moves that permute cells among themselves stay consistent)
// and recorded owners for the delta'd ones.
func (s *State) apply(newPts []geom.Point, moved []int, deltas []acd.OwnerDelta) {
	for _, id := range moved {
		s.occClear(s.pts[id])
	}
	for _, id := range moved {
		s.pts[id] = newPts[id]
		s.occSet(newPts[id], int32(id))
	}
	for _, d := range deltas {
		s.owners[d.ID] = d.New
	}
}

// Tick advances the state to the new particle configuration (same
// identities, same length; cells must stay distinct). It returns the
// tick's stats, which are identical whichever mechanism maintained the
// matrix. A duplicate-cell error leaves the state unusable.
func (s *State) Tick(newPts []geom.Point) (TickStats, error) {
	var st TickStats
	if len(newPts) != s.n {
		return st, fmt.Errorf("incr: tick with %d particles, state has %d", len(newPts), s.n)
	}
	tickCounter.Inc()

	moved := s.movedBuf[:0]
	for id := range newPts {
		if newPts[id] != s.pts[id] {
			moved = append(moved, id)
		}
	}
	s.movedBuf = moved
	st.Moved = len(moved)
	movedCounter.Add(uint64(len(moved)))

	for _, id := range moved {
		s.keys[id] = s.cfg.Curve.Index(s.cfg.Order, newPts[id])
	}
	resort := obs.StartSpan("incr.resort")
	st.Displaced = sfc.ResortPermByKeys(s.perm, s.keys)
	resort.End()
	for i := 1; i < s.n; i++ {
		if s.keys[s.perm[i]] == s.keys[s.perm[i-1]] {
			return st, fmt.Errorf("incr: duplicate particle cell %v", newPts[s.perm[i]])
		}
	}

	deltas := acd.DeltaOwners(s.perm, s.owners, s.cfg.P, s.deltaBuf[:0])
	s.deltaBuf = deltas
	st.OwnerMoves = len(deltas)
	ownerMoveCounter.Add(uint64(len(deltas)))
	st.Gauge = float64(len(deltas)) / float64(s.n)
	st.Repartitioned = s.cfg.Policy.Decide(st.Gauge)
	if st.Repartitioned {
		s.repartitions++
		repartitionCounter.Inc()
	}

	s.epoch++
	affected := s.affectedBuf[:0]
	for _, id := range moved {
		if s.mark[id] != s.epoch {
			s.mark[id] = s.epoch
			affected = append(affected, id)
		}
	}
	for _, d := range deltas {
		if s.mark[d.ID] != s.epoch {
			s.mark[d.ID] = s.epoch
			affected = append(affected, d.ID)
		}
	}
	s.affectedBuf = affected

	if rebuild := s.cfg.ForceRebuild || st.Repartitioned; !rebuild {
		span := obs.StartSpan("incr.maintain.delta")
		st.Retracted = s.forAffectedPairs(affected, func(ra, rb int32) {
			if ra > rb {
				ra, rb = rb, ra
			}
			s.counts.Sub(ra, rb)
		})
		s.apply(newPts, moved, deltas)
		st.Readded = s.forAffectedPairs(affected, func(ra, rb int32) {
			if ra > rb {
				ra, rb = rb, ra
			}
			s.counts.Add(ra, rb)
		})
		span.End()
	} else {
		// The retract/re-add counts are part of the tick's reported
		// stats, so a rebuild tick still runs the enumerations — in
		// counting-only form, under a span excluded from the maintenance
		// timings the mechanisms are compared on.
		stats := obs.StartSpan("incr.stats")
		st.Retracted = s.forAffectedPairs(affected, func(ra, rb int32) {})
		stats.End()
		s.apply(newPts, moved, deltas)
		stats = obs.StartSpan("incr.stats")
		st.Readded = s.forAffectedPairs(affected, func(ra, rb int32) {})
		stats.End()
		span := obs.StartSpan("incr.maintain.rebuild")
		s.ix.Rebuild(s.cfg.Order, s.pts, s.owners)
		s.refill()
		span.End()
	}
	retractCounter.Add(uint64(st.Retracted))
	readdCounter.Add(uint64(st.Readded))
	return st, nil
}

// N returns the particle count.
func (s *State) N() int { return s.n }

// P returns the processor count.
func (s *State) P() int { return s.cfg.P }

// Repartitions returns how many ticks the policy decided to rebuild
// on, since construction.
func (s *State) Repartitions() int { return s.repartitions }

// Matrix materializes the maintained near-field matrix — bit-identical
// to fmmmodel.NFIMatrix over a fresh assignment of the current
// configuration, which is the differential oracle CI compares against.
func (s *State) Matrix() *commmat.Matrix { return s.counts.Matrix() }

// ACD contracts the maintained matrix against a distance table without
// materializing it.
func (s *State) ACD(dt *topology.DistanceTable) acd.Accumulator {
	return s.ACDMulti([]*topology.DistanceTable{dt})[0]
}

// ACDMulti contracts the maintained matrix against several distance
// tables in one fused pass (commmat.Mutable.ContractTableMultiSym):
// each distinct pair is read once and evaluated against every table.
// Result k is exactly what ACD against table k would return.
func (s *State) ACDMulti(dts []*topology.DistanceTable) []acd.Accumulator {
	accs := make([]acd.Accumulator, len(dts))
	ptrs := make([]*acd.Accumulator, len(dts))
	for i := range accs {
		ptrs[i] = &accs[i]
	}
	s.counts.ContractTableMultiSym(dts, ptrs)
	return accs
}

// Assignment materializes the maintained order and ownership as a
// batch acd.Assignment (for the model paths the incremental layer does
// not maintain, like the far-field).
func (s *State) Assignment() (*acd.Assignment, error) {
	if cap(s.sortedBuf) < s.n {
		s.sortedBuf = make([]geom.Point, s.n)
	}
	s.sortedBuf = s.sortedBuf[:s.n]
	for i, id := range s.perm {
		s.sortedBuf[i] = s.pts[id]
	}
	return acd.FromSorted(s.sortedBuf, s.cfg.Order, s.cfg.P)
}

// Release returns the state's pooled resources (the key-space index).
// The state must not be used afterwards.
func (s *State) Release() {
	if s.ix != nil {
		s.ix.Release()
		s.ix = nil
	}
	s.counts = nil
}
