// Command sfcviz renders the paper's illustrative figures: the curves
// themselves (Figure 1), the input distributions (Figure 2), and the
// particle orderings induced by each curve (Figure 3).
//
// Usage:
//
//	sfcviz -order 4                       # ASCII paths of all curves
//	sfcviz -curve hilbert -order 5        # one curve
//	sfcviz -svg out/ -order 5             # write SVG files
//	sfcviz -distributions                 # ASCII density of the samplers
//	sfcviz -ordering exponential          # Figure 3: particle orders
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
	"sfcacd/internal/viz"
)

func main() {
	var (
		order         = flag.Uint("order", 4, "curve order (grid side 2^order)")
		curveName     = flag.String("curve", "", "curve to render (default: all)")
		svgDir        = flag.String("svg", "", "write SVG renderings into this directory")
		distributions = flag.Bool("distributions", false, "render sampler densities (Figure 2)")
		ordering      = flag.String("ordering", "", "render particle orderings for a distribution (Figure 3)")
		seed          = flag.Uint64("seed", 2013, "sampling seed")
	)
	flag.Parse()

	curves := sfc.Extended()
	if *curveName != "" {
		c, err := sfc.ByName(*curveName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfcviz:", err)
			os.Exit(2)
		}
		curves = []sfc.Curve{c}
	}

	switch {
	case *distributions:
		for _, s := range dist.All() {
			fmt.Printf("%s distribution (%d samples on 64x64):\n", s.Name(), 3000)
			fmt.Println(viz.DensityMap(s, *seed, 6, 3000))
		}
	case *ordering != "":
		if err := renderOrdering(*ordering, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "sfcviz:", err)
			os.Exit(1)
		}
	case *svgDir != "":
		for _, c := range curves {
			path := filepath.Join(*svgDir, fmt.Sprintf("%s_%d.svg", c.Name(), *order))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "sfcviz:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, []byte(viz.SVGPath(c, *order, 16)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sfcviz:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	default:
		for _, c := range curves {
			fmt.Printf("%s, order %d:\n%s\n", c.Name(), *order, viz.ASCIIPath(c, *order))
		}
	}
}

// renderOrdering prints Figure 3: the linear order each curve assigns
// to a small sample of the named distribution, as a list and as rank
// maps.
func renderOrdering(name string, seed uint64) error {
	sampler, err := dist.ByName(name)
	if err != nil {
		return err
	}
	const order, n = 4, 12
	pts, err := dist.SampleUnique(sampler, rng.New(seed), order, n)
	if err != nil {
		return err
	}
	fmt.Printf("%d %s-distributed particles on %dx%d; linear order under each curve:\n\n",
		n, sampler.Name(), geom.Side(order), geom.Side(order))
	for _, c := range sfc.Extended() {
		fmt.Printf("%-9s: %s\n", c.Name(), viz.OrderingList(c, order, pts))
	}
	fmt.Println("\nrank maps (y grows upward; '.' = empty cell):")
	for _, c := range sfc.Extended() {
		fmt.Printf("\n%s:\n%s", c.Name(), viz.RankMap(c, order, pts))
	}
	return nil
}
