package nbody

import (
	"math"
	"math/cmplx"
	"testing"

	"sfcacd/internal/rng"
)

// randomSystem builds a reproducible random system with zero-mean unit
// charges.
func randomSystem(seed uint64, n int) System {
	r := rng.New(seed)
	s := System{Pos: make([]complex128, n), Q: make([]float64, n)}
	for i := 0; i < n; i++ {
		s.Pos[i] = complex(r.Float64(), r.Float64())
		if i%2 == 0 {
			s.Q[i] = 1
		} else {
			s.Q[i] = -1
		}
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := (System{Pos: []complex128{0.5 + 0.5i}, Q: []float64{1}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (System{Pos: []complex128{0.5}, Q: nil}).Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := (System{Pos: []complex128{1.5 + 0.5i}, Q: []float64{1}}).Validate(); err == nil {
		t.Error("out-of-domain position accepted")
	}
}

func TestDirectTwoParticles(t *testing.T) {
	// Two unit charges at distance d: each sees potential log(d), and
	// the gradient points away from the other charge with magnitude
	// 1/d.
	s := System{
		Pos: []complex128{0.25 + 0.5i, 0.75 + 0.5i},
		Q:   []float64{1, 1},
	}
	res, err := SolveDirect(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.5)
	for i, p := range res.Potential {
		if math.Abs(p-want) > 1e-14 {
			t.Errorf("potential[%d] = %f, want %f", i, p, want)
		}
	}
	// Particle 0 at x=0.25: d/dx log|x - 0.75| = 1/(0.25-0.75) = -2.
	if g := res.Gradient[0]; math.Abs(real(g)+2) > 1e-12 || math.Abs(imag(g)) > 1e-12 {
		t.Errorf("gradient[0] = %v, want -2+0i", g)
	}
	if g := res.Gradient[1]; math.Abs(real(g)-2) > 1e-12 || math.Abs(imag(g)) > 1e-12 {
		t.Errorf("gradient[1] = %v, want 2+0i", g)
	}
}

func TestDirectGradientMatchesFiniteDifference(t *testing.T) {
	s := randomSystem(3, 40)
	res, err := SolveDirect(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Check the gradient of the potential field at particle 0 by
	// moving it slightly and recomputing.
	const h = 1e-6
	probe := func(dz complex128) float64 {
		s2 := System{Pos: append([]complex128(nil), s.Pos...), Q: s.Q}
		s2.Pos[0] += dz
		r2, err := SolveDirect(s2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r2.Potential[0]
	}
	gx := (probe(complex(h, 0)) - probe(complex(-h, 0))) / (2 * h)
	gy := (probe(complex(0, h)) - probe(complex(0, -h))) / (2 * h)
	if math.Abs(gx-real(res.Gradient[0])) > 1e-4*(1+math.Abs(gx)) {
		t.Errorf("gx = %f, analytic %f", gx, real(res.Gradient[0]))
	}
	if math.Abs(gy-imag(res.Gradient[0])) > 1e-4*(1+math.Abs(gy)) {
		t.Errorf("gy = %f, analytic %f", gy, imag(res.Gradient[0]))
	}
}

func TestDirectDeterministicAcrossWorkers(t *testing.T) {
	s := randomSystem(5, 300)
	a, err := SolveDirect(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveDirect(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Potential {
		if a.Potential[i] != b.Potential[i] || a.Gradient[i] != b.Gradient[i] {
			t.Fatalf("worker count changed result at %d", i)
		}
	}
}

func TestFMMMatchesDirect(t *testing.T) {
	s := randomSystem(7, 3000)
	direct, err := SolveDirect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmm, err := SolveFMM(s, FMMOptions{Terms: 24})
	if err != nil {
		t.Fatal(err)
	}
	if e := RelativeError(fmm, direct); e > 1e-7 {
		t.Fatalf("potential relative error %g", e)
	}
	// Gradients too.
	var maxDiff, maxMag float64
	for i := range direct.Gradient {
		d := cmplx.Abs(fmm.Gradient[i] - direct.Gradient[i])
		if d > maxDiff {
			maxDiff = d
		}
		if m := cmplx.Abs(direct.Gradient[i]); m > maxMag {
			maxMag = m
		}
	}
	if maxDiff/maxMag > 1e-6 {
		t.Fatalf("gradient relative error %g", maxDiff/maxMag)
	}
}

func TestFMMAccuracyImprovesWithTerms(t *testing.T) {
	s := randomSystem(11, 1500)
	direct, err := SolveDirect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for _, terms := range []int{4, 10, 18} {
		fmm, err := SolveFMM(s, FMMOptions{Terms: terms})
		if err != nil {
			t.Fatal(err)
		}
		e := RelativeError(fmm, direct)
		if e >= prev {
			t.Fatalf("terms=%d error %g did not improve on %g", terms, e, prev)
		}
		prev = e
	}
	if prev > 1e-5 {
		t.Fatalf("terms=18 error %g too large", prev)
	}
}

func TestFMMClusteredInput(t *testing.T) {
	// A tight cluster plus distant stragglers stresses deep leaves and
	// near-empty interaction lists.
	r := rng.New(13)
	var s System
	for i := 0; i < 800; i++ {
		s.Pos = append(s.Pos, complex(0.1+0.02*r.Float64(), 0.1+0.02*r.Float64()))
		s.Q = append(s.Q, r.Float64()*2-1)
	}
	for i := 0; i < 50; i++ {
		s.Pos = append(s.Pos, complex(r.Float64(), r.Float64()))
		s.Q = append(s.Q, 1)
	}
	direct, err := SolveDirect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmm, err := SolveFMM(s, FMMOptions{Terms: 24})
	if err != nil {
		t.Fatal(err)
	}
	if e := RelativeError(fmm, direct); e > 1e-6 {
		t.Fatalf("clustered relative error %g", e)
	}
}

func TestFMMDeterministicAcrossWorkers(t *testing.T) {
	s := randomSystem(17, 1000)
	a, err := SolveFMM(s, FMMOptions{Terms: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveFMM(s, FMMOptions{Terms: 12, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Potential {
		if a.Potential[i] != b.Potential[i] {
			t.Fatalf("worker count changed FMM result at %d", i)
		}
	}
}

func TestFMMSmallSystem(t *testing.T) {
	// Fewer particles than a single leaf: everything is near-field.
	s := randomSystem(19, 5)
	direct, err := SolveDirect(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	fmm, err := SolveFMM(s, FMMOptions{Terms: 30})
	if err != nil {
		t.Fatal(err)
	}
	if e := RelativeError(fmm, direct); e > 1e-10 {
		t.Fatalf("small system error %g", e)
	}
}

func TestFMMRejectsBadSystem(t *testing.T) {
	if _, err := SolveFMM(System{Pos: []complex128{2 + 2i}, Q: []float64{1}}, FMMOptions{}); err == nil {
		t.Error("bad system accepted")
	}
	if _, err := SolveDirect(System{Pos: []complex128{2 + 2i}, Q: []float64{1}}, 0); err == nil {
		t.Error("bad system accepted by direct")
	}
}

func TestTotalEnergySymmetry(t *testing.T) {
	// Energy computed from potentials must equal the explicit pair sum.
	s := randomSystem(23, 120)
	res, err := SolveDirect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < len(s.Pos); i++ {
		for j := i + 1; j < len(s.Pos); j++ {
			want += s.Q[i] * s.Q[j] * realLog(s.Pos[i]-s.Pos[j])
		}
	}
	if got := TotalEnergy(s, res); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("energy %f, pair sum %f", got, want)
	}
}

func TestNeutralClusterFarFieldDecays(t *testing.T) {
	// A +1/-1 dipole's far potential decays like 1/r: a probe far away
	// must see a small potential, and FMM must capture it.
	s := System{
		Pos: []complex128{0.100 + 0.1i, 0.101 + 0.1i, 0.9 + 0.9i},
		Q:   []float64{1, -1, 0},
	}
	res, err := SolveFMM(s, FMMOptions{Terms: 30})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SolveDirect(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Potential[2]-direct.Potential[2]) > 1e-10 {
		t.Fatalf("probe potential %g vs direct %g", res.Potential[2], direct.Potential[2])
	}
	if math.Abs(direct.Potential[2]) > 0.01 {
		t.Fatalf("dipole far potential %g unexpectedly large", direct.Potential[2])
	}
}

func TestCoincidentParticlesSkipped(t *testing.T) {
	s := System{
		Pos: []complex128{0.5 + 0.5i, 0.5 + 0.5i, 0.25 + 0.25i},
		Q:   []float64{1, 1, 1},
	}
	res, err := SolveDirect(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Potential {
		if math.IsInf(p, 0) || math.IsNaN(p) {
			t.Fatalf("potential[%d] = %f with coincident particles", i, p)
		}
	}
	fmm, err := SolveFMM(s, FMMOptions{Terms: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range fmm.Potential {
		if math.IsInf(p, 0) || math.IsNaN(p) {
			t.Fatalf("fmm potential[%d] = %f with coincident particles", i, p)
		}
	}
}

func TestRelativeErrorZeroBaseline(t *testing.T) {
	a := Result{Potential: []float64{0.5}}
	b := Result{Potential: []float64{0}}
	if got := RelativeError(a, b); got != 0.5 {
		t.Fatalf("RelativeError = %f", got)
	}
}
