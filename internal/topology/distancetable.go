// DistanceTable: precomputed rank-pair distances for contraction-style
// evaluation (internal/commmat). The table devirtualizes the hot path —
// a contraction over a dense communication matrix indexes a uint16 row
// instead of making one dynamic Distance interface call per pair — but
// only materializes distances when the lookup volume amortizes the
// build cost, so sparse contractions never pay for cells they skip.
package topology

import "sync"

const (
	// maxTableP is the largest processor count a table serves: hop
	// distances up to 65,535 fit the uint16 cells (the bus diameter is
	// P-1, so this bounds P).
	maxTableP = 1 << 16
	// eagerCells caps the full-table form at p*p cells (4096 x 4096,
	// 32 MiB of uint16). Larger networks fall back to lazily built and
	// cached single rows.
	eagerCells = 1 << 24
	// amortize is the build-cost multiplier: a table (or row) of c
	// cells is built only once at least c/amortize lookups have asked
	// for it, so a build never costs more than amortize times the work
	// it replaces.
	amortize = 4
	// fillerAmortize replaces amortize when the topology implements
	// RowFiller. An analytic fill is several times cheaper per cell
	// than a dispatched Distance call, but the threshold stays
	// conservative — the ski-rental bound wants pending lookups on the
	// order of cells x (fill cost / call cost) before a build is known
	// to repay, and a premature full-table build costs more than the
	// per-pair fallback it replaces.
	fillerAmortize = 4
	// rowBudgetCells bounds the lazy per-row cache (64 MiB of uint16).
	rowBudgetCells = 1 << 25
)

// DistanceTable memoizes a topology's rank-pair hop distances in flat
// uint16 storage. Small networks (p*p <= eagerCells) promote to one
// contiguous P x P table once enough lookups accumulate; larger ones
// cache individual source rows, each built on first sufficiently dense
// use. All methods are safe for concurrent use.
//
// DistanceTable itself implements Topology, so it can substitute for
// the underlying network anywhere.
type DistanceTable struct {
	topo     Topology
	p        int
	filler   RowFiller // non-nil when topo fills rows analytically
	amortize int

	mu      sync.Mutex
	full    []uint16
	rows    map[int][]uint16
	pending int // lookups served without a full table so far
	budget  int // remaining lazy-row cells
}

// NewDistanceTable wraps a topology. Construction is cheap: no
// distances are computed until lookups demand them.
func NewDistanceTable(t Topology) *DistanceTable {
	dt := &DistanceTable{topo: t, p: t.P(), amortize: amortize, budget: rowBudgetCells}
	if f, ok := t.(RowFiller); ok {
		dt.filler = f
		dt.amortize = fillerAmortize
	}
	return dt
}

// Underlying returns the wrapped topology.
func (dt *DistanceTable) Underlying() Topology { return dt.topo }

// Name implements Topology.
func (dt *DistanceTable) Name() string { return dt.topo.Name() }

// P implements Topology.
func (dt *DistanceTable) P() int { return dt.p }

// Distance implements Topology, answering from the table when the pair
// is materialized and from the underlying topology otherwise.
func (dt *DistanceTable) Distance(a, b int) int {
	dt.mu.Lock()
	if dt.full != nil {
		d := int(dt.full[a*dt.p+b])
		dt.mu.Unlock()
		return d
	}
	if row, ok := dt.rows[a]; ok {
		d := int(row[b])
		dt.mu.Unlock()
		return d
	}
	dt.mu.Unlock()
	CountDistanceQueries(1)
	return dt.topo.Distance(a, b)
}

// RowFor returns the distance row of src — row[dst] is the hop count
// src->dst — if one is materialized or the pending lookup volume
// (grown by pairs) now amortizes building it; otherwise nil, and the
// caller should fall back to per-pair Distance calls. pairs is the
// number of lookups the caller is about to perform against the row.
func (dt *DistanceTable) RowFor(src, pairs int) []uint16 {
	if dt.p > maxTableP {
		return nil
	}
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if dt.full != nil {
		return dt.full[src*dt.p : (src+1)*dt.p]
	}
	dt.pending += pairs
	if cells := dt.p * dt.p; cells <= eagerCells && dt.pending*dt.amortize >= cells {
		dt.full = make([]uint16, cells)
		for a := 0; a < dt.p; a++ {
			dt.fillRow(dt.full[a*dt.p:(a+1)*dt.p], a)
		}
		dt.rows = nil
		return dt.full[src*dt.p : (src+1)*dt.p]
	}
	if row, ok := dt.rows[src]; ok {
		return row
	}
	if pairs*dt.amortize < dt.p || dt.budget < dt.p {
		return nil
	}
	row := make([]uint16, dt.p)
	dt.fillRow(row, src)
	if dt.rows == nil {
		dt.rows = make(map[int][]uint16)
	}
	dt.rows[src] = row
	dt.budget -= dt.p
	return row
}

// fillRow computes one source row — through the topology's RowFiller
// when it has one — and accounts for the analytic queries it spends.
func (dt *DistanceTable) fillRow(row []uint16, src int) {
	if dt.filler != nil {
		dt.filler.FillDistanceRow(src, row)
	} else {
		for b := range row {
			row[b] = uint16(dt.topo.Distance(src, b))
		}
	}
	CountDistanceQueries(uint64(len(row)))
}
