package quadtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sfcacd/internal/dist"
	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
)

// TestQuickLinearTreePartition: for random point sets, the adaptive
// tree is always a partition, counts always total, and Locate is
// always right.
func TestQuickLinearTreePartition(t *testing.T) {
	f := func(seed uint64, nRaw, leafRaw uint8) bool {
		const order = 6
		n := int(nRaw)%200 + 1
		maxLeaf := int(leafRaw)%8 + 1
		pts, err := dist.SampleUnique(dist.Uniform, rng.New(seed), order, n)
		if err != nil {
			return false
		}
		tree := BuildLinear(order, pts, maxLeaf)
		var pos uint64
		for _, leaf := range tree.Leaves {
			lo, hi := leaf.MortonRange(order)
			if lo != pos {
				return false
			}
			pos = hi
		}
		if pos != geom.Cells(order) {
			return false
		}
		if tree.TotalParticles() != n {
			return false
		}
		for _, p := range pts {
			if !tree.Leaves[tree.Locate(p)].ContainsPoint(order, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickBalancePreservesPartitionAndCounts: balancing any random
// tree keeps the partition, the 2:1 condition, and the particle total.
func TestQuickBalancePreservesPartitionAndCounts(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		const order = 6
		n := int(nRaw)%60 + 1
		pts, err := dist.SampleUnique(dist.Exponential, rng.New(seed), order, n)
		if err != nil {
			return false
		}
		tree := BuildLinear(order, pts, 1)
		bal := tree.Balance()
		if !bal.IsBalanced() {
			return false
		}
		var pos uint64
		for _, leaf := range bal.Leaves {
			lo, hi := leaf.MortonRange(order)
			if lo != pos {
				return false
			}
			pos = hi
		}
		return pos == geom.Cells(order) && bal.TotalParticles() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCellAlgebra: Parent/Child/Contains satisfy their defining
// identities for random cells.
func TestQuickCellAlgebra(t *testing.T) {
	f := func(levelRaw, xRaw, yRaw uint16, child uint8) bool {
		level := uint(levelRaw%8) + 1
		side := geom.Side(level)
		c := Cell{Level: level, X: uint32(xRaw) % side, Y: uint32(yRaw) % side}
		ch := c.Child(int(child % 4))
		if ch.Parent() != c || !c.Contains(ch) || ch.Contains(c) {
			return false
		}
		if !c.Parent().Contains(c) {
			return false
		}
		// Sibling cells never contain each other.
		for i := 0; i < 4; i++ {
			s := c.Parent().Child(i)
			if s != c && (s.Contains(c) || c.Contains(s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickRankTreeMinProperty: for random particle/rank sets, every
// cell's representative is the minimum rank among the particles it
// contains, at every level.
func TestQuickRankTreeMinProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Uint64())
			vals[1] = reflect.ValueOf(uint8(r.Intn(64)))
		},
	}
	f := func(seed uint64, nRaw uint8) bool {
		const order = 4
		n := int(nRaw)%50 + 1
		pts, err := dist.SampleUnique(dist.Uniform, rng.New(seed), order, n)
		if err != nil {
			return false
		}
		ranks := make([]int32, n)
		rr := rng.New(seed ^ 0xABCD)
		for i := range ranks {
			ranks[i] = int32(rr.Intn(16))
		}
		tree := BuildRankTree(order, pts, ranks)
		for level := uint(0); level <= order; level++ {
			shift := order - level
			side := geom.Side(level)
			for y := uint32(0); y < side; y++ {
				for x := uint32(0); x < side; x++ {
					want := int32(-1)
					for i, p := range pts {
						if p.X>>shift == x && p.Y>>shift == y {
							if want == -1 || ranks[i] < want {
								want = ranks[i]
							}
						}
					}
					if tree.Rep(level, x, y) != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
