package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer builds a hierarchical wall-clock phase tree. Unlike a
// distributed-tracing span store, same-named phases under the same
// parent are merged: starting "sampling" fifteen times under one
// experiment yields a single node with Calls == 15 and the summed
// duration. That keeps run manifests compact and structurally
// deterministic for seeded runs even when call counts are large.
//
// Start/End follow stack (LIFO) discipline per goroutine. A single
// goroutine needs no setup. Worker goroutines that want their phases
// to nest under a specific span (rather than wherever the owning
// goroutine happens to be) call Span.Attach first: each attached
// goroutine then keeps its own cursor into the tree, and because
// same-named phases merge, any interleaving of attached workers folds
// into the same deterministic tree. Unattached concurrent use remains
// memory-safe but nests unpredictably.
type Tracer struct {
	mu      sync.Mutex
	gen     uint64
	root    *phase
	current *phase
	// scopes maps attached goroutine ids to their private cursor.
	// Empty (the common serial case) means Start never pays for a
	// goroutine-id lookup.
	scopes map[uint64]*scope
}

// scope is the per-goroutine cursor of an attached worker.
type scope struct {
	current *phase
}

// phase is one node of the live tree.
type phase struct {
	name     string
	calls    uint64
	ns       int64
	parent   *phase
	children []*phase
	index    map[string]*phase
	// attrs are key=value annotations set through Span.Annotate; on
	// merged phases the last write per key wins.
	attrs map[string]string
}

func (p *phase) child(name string) *phase {
	if c, ok := p.index[name]; ok {
		return c
	}
	c := &phase{name: name, parent: p}
	if p.index == nil {
		p.index = make(map[string]*phase)
	}
	p.index[name] = c
	p.children = append(p.children, c)
	return c
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	root := &phase{}
	return &Tracer{root: root, current: root}
}

var defaultTracer = NewTracer()

// DefaultTracer returns the process-wide tracer that StartSpan and
// TakeSpans operate on.
func DefaultTracer() *Tracer { return defaultTracer }

// Span is an in-progress timing of one phase activation. End it
// exactly once (End is idempotent; extra calls are no-ops).
type Span struct {
	t     *Tracer
	node  *phase
	prev  *phase
	scope *scope
	gen   uint64
	start time.Time
	done  bool
}

// Start opens (or re-enters) the named phase as a child of the
// currently open phase and makes it current. On a goroutine bound by
// Span.Attach, "currently open" is that goroutine's own cursor.
func (t *Tracer) Start(name string) *Span {
	var id uint64
	if t.hasScopes() {
		id = goid() // taken outside the lock: runtime.Stack is not free
	}
	return t.startID(name, id)
}

// startID is Start with the goroutine id (0 when unknown or
// irrelevant) already resolved, so callers that looked it up for
// binding dispatch do not pay for a second runtime.Stack.
func (t *Tracer) startID(name string, id uint64) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.current
	var sc *scope
	if id != 0 {
		if s, ok := t.scopes[id]; ok {
			sc = s
			cur = s.current
		}
	}
	node := cur.child(name)
	node.calls++
	if sc != nil {
		sc.current = node
	} else {
		t.current = node
	}
	return &Span{t: t, node: node, prev: cur, scope: sc, gen: t.gen, start: time.Now()}
}

func (t *Tracer) hasScopes() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.scopes) > 0
}

// Attach binds the calling goroutine to this span: until the returned
// detach function runs, Start calls made from this goroutine nest
// under the span's phase through a private cursor instead of the
// tracer-wide one. This is how sweep workers report their phases —
// every worker attaches to the shared "sweep" span, and merged-by-name
// children make the resulting tree independent of worker count and
// scheduling. Call detach from the same goroutine when it is done.
//
// Attaching to a span of a non-default tracer additionally binds the
// goroutine's package-level StartSpan and MarkActive calls to that
// tracer (see StartSpan), which is how a request-scoped trace captures
// the phases of library code that only knows the package-level API.
// Detach restores whatever binding and cursor were in effect before.
func (s *Span) Attach() (detach func()) {
	t := s.t
	id := goid()
	t.mu.Lock()
	gen := t.gen
	if t.scopes == nil {
		t.scopes = make(map[uint64]*scope)
	}
	prevScope, hadScope := t.scopes[id]
	t.scopes[id] = &scope{current: s.node}
	t.mu.Unlock()
	var prevBind *Tracer
	bound := t != defaultTracer
	if bound {
		prevBind = bindGoroutine(id, t)
	}
	return func() {
		t.mu.Lock()
		if t.gen == gen { // a Take since Attach already discarded the scopes
			if hadScope {
				t.scopes[id] = prevScope
			} else {
				delete(t.scopes, id)
			}
		}
		t.mu.Unlock()
		if bound {
			unbindGoroutine(id, prevBind)
		}
	}
}

// Goroutine-to-tracer bindings let package-level StartSpan route to a
// request-scoped tracer. The count is checked with one atomic load on
// the (overwhelmingly common) unbound fast path, so instrumented
// library code pays nothing extra when no request traces are live.
var (
	bindCount atomic.Int64
	bindMu    sync.Mutex
	bindings  map[uint64]*Tracer
)

// bindGoroutine binds the goroutine to t, returning the previous
// binding (nil if none) for the caller to restore on detach.
func bindGoroutine(id uint64, t *Tracer) (prev *Tracer) {
	bindMu.Lock()
	defer bindMu.Unlock()
	if bindings == nil {
		bindings = make(map[uint64]*Tracer)
	}
	prev = bindings[id]
	bindings[id] = t
	if prev == nil {
		bindCount.Add(1)
	}
	return prev
}

// unbindGoroutine restores the goroutine's previous binding.
func unbindGoroutine(id uint64, prev *Tracer) {
	bindMu.Lock()
	defer bindMu.Unlock()
	if prev != nil {
		bindings[id] = prev
		return
	}
	delete(bindings, id)
	bindCount.Add(-1)
}

// boundTracer returns the tracer the goroutine is bound to, or nil.
func boundTracer(id uint64) *Tracer {
	bindMu.Lock()
	defer bindMu.Unlock()
	return bindings[id]
}

// Annotate sets a key=value attribute on the span's phase node. On
// merged phases the last write per key wins; annotating a span that
// outlived a Take/Reset is a safe no-op.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gen != s.gen {
		return
	}
	if s.node.attrs == nil {
		s.node.attrs = make(map[string]string)
	}
	s.node.attrs[key] = value
}

// MarkActive records one zero-duration activation of the named phase
// under the calling goroutine's bound cursor: the phase's call count
// increments but no wall time is attributed. It is a no-op on an
// unbound goroutine (one atomic load), so low-level packages — fault
// injection, cache stores — can mark events unconditionally and the
// marks appear only in request-scoped traces.
func MarkActive(name string) {
	if bindCount.Load() == 0 {
		return
	}
	id := goid()
	if id == 0 {
		return
	}
	t := boundTracer(id)
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.current
	if sc, ok := t.scopes[id]; ok {
		cur = sc.current
	}
	cur.child(name).calls++
}

// goid returns the runtime id of the calling goroutine, parsed from
// the first stack-trace line ("goroutine N [running]:"). There is no
// exported API for this; the format has been stable since Go 1.4 and
// the parse is defensive (returns 0, never panics, on mismatch).
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	const prefix = "goroutine "
	if n <= len(prefix) || string(buf[:len(prefix)]) != prefix {
		return 0
	}
	var id uint64
	for _, c := range buf[len(prefix):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// End closes the span, folding its elapsed wall time into the phase
// node and restoring the parent as current. Ending a span that
// outlived a Take/Reset is a safe no-op.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	elapsed := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gen != s.gen {
		return // the tree this span belongs to was already collected
	}
	s.node.ns += int64(elapsed)
	if s.scope != nil {
		s.scope.current = s.prev
	} else {
		t.current = s.prev
	}
}

// PhaseSnapshot is one node of a collected phase tree.
type PhaseSnapshot struct {
	// Name is the phase name passed to Start.
	Name string `json:"name"`
	// Calls is how many times the phase was entered.
	Calls uint64 `json:"calls"`
	// Ns is the summed wall-clock time of completed activations.
	Ns int64 `json:"ns"`
	// Attrs are the key=value annotations set through Span.Annotate.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Children are nested phases in first-entered order.
	Children []PhaseSnapshot `json:"children,omitempty"`
}

func snapshotPhase(p *phase) PhaseSnapshot {
	s := PhaseSnapshot{Name: p.name, Calls: p.calls, Ns: p.ns}
	if len(p.attrs) > 0 {
		s.Attrs = make(map[string]string, len(p.attrs))
		for k, v := range p.attrs {
			s.Attrs[k] = v
		}
	}
	for _, c := range p.children {
		s.Children = append(s.Children, snapshotPhase(c))
	}
	return s
}

// Snapshot copies the current phase tree (top-level phases) without
// clearing it.
func (t *Tracer) Snapshot() []PhaseSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshotPhase(t.root).Children
}

// Take returns the current phase tree and resets the tracer to empty.
// Spans still open when Take is called are abandoned: their phases
// keep the call count, but the in-flight duration is dropped.
func (t *Tracer) Take() []PhaseSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := snapshotPhase(t.root).Children
	t.root = &phase{}
	t.current = t.root
	t.scopes = nil // attached cursors pointed into the collected tree
	t.gen++
	return out
}

// Reset discards the phase tree.
func (t *Tracer) Reset() { t.Take() }

// StartSpan opens a phase on the default tracer — unless the calling
// goroutine is bound to a request-scoped tracer through Span.Attach,
// in which case the phase opens there instead. The bound check is one
// atomic load when no bindings exist, so batch runs (acdbench) pay
// nothing for the serving path's request tracing.
func StartSpan(name string) *Span {
	if bindCount.Load() > 0 {
		if id := goid(); id != 0 {
			if t := boundTracer(id); t != nil {
				return t.startID(name, id)
			}
		}
	}
	return defaultTracer.Start(name)
}

// TakeSpans collects and clears the default tracer's phase tree.
func TakeSpans() []PhaseSnapshot { return defaultTracer.Take() }

// StartTimer returns a stop function that, when called, observes the
// elapsed nanoseconds into the histogram.
func StartTimer(h *Histogram) func() {
	start := time.Now()
	return func() { h.Observe(float64(time.Since(start).Nanoseconds())) }
}
