package experiments

import (
	"fmt"

	"sfcacd/internal/dist"
)

// ResultSchemaVersion identifies the result encoding the serving layer
// caches. It participates in every cache key, so bumping it invalidates
// all previously cached results. Bump whenever a result struct's JSON
// layout changes or a runner's output changes for equal Params.
const ResultSchemaVersion = "sfcacd/results/v1"

// CanonicalKey returns the canonical cache identity of p: a stable,
// self-describing encoding whose bytes never change for equal
// parameter values. The field order is fixed by this function, not by
// the struct layout, so reordering Params fields cannot silently
// change cache keys; TestCanonicalKeyPinned pins the exact bytes and
// TestCanonicalKeyCoversParams fails when Params gains a field this
// encoding does not account for.
//
// Workers, NFIEngine, and IncrMode are deliberately excluded: results
// are identical for any worker count, either neighbor engine, and
// either incremental-maintenance mechanism (documented invariants,
// enforced by the differential tests), so runs that differ only in
// those knobs share one cache entry. Distribution is included — it
// changes the sampled particles — but only when non-uniform, so every
// key minted before the knob existed stays valid; aliases normalize
// through dist.ByName first, so "exp" and "exponential" share a key.
func (p Params) CanonicalKey() string {
	key := fmt.Sprintf("params/v1:n=%d,k=%d,po=%d,r=%d,t=%d,s=%d",
		p.Particles, p.Order, p.ProcOrder, p.Radius, p.Trials, p.Seed)
	if s := p.sampler(); s != dist.Uniform {
		key += ",d=" + s.Name()
	}
	return key
}
