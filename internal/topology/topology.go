// Package topology implements the six communication network topologies
// studied in the paper (§II-B): bus (linear array), ring, mesh, torus,
// quadtree, and hypercube. Each exposes the shortest-path hop distance
// between processor ranks — the quantity the ACD metric averages.
//
// For the mesh and torus, processor ranks are placed onto the physical
// grid by a processor-order space-filling curve (§IV step 3): rank i
// sits at the grid cell the curve visits at position i. The remaining
// topologies use natural rank labels, as in the paper.
//
// Every distance function is analytic (O(1) or O(log p)); the flat
// networks also expose their adjacency so tests can cross-verify the
// analytic distances against BFS.
package topology

import (
	"fmt"
	"math/bits"

	"sfcacd/internal/geom"
	"sfcacd/internal/obs"
	"sfcacd/internal/sfc"
)

// Distance-query volume counters. Distance itself is deliberately not
// instrumented per call: it sits in multi-million-call inner loops
// (fmmmodel's NFI/FFI traversals) where even one uncontended atomic
// add per call is a measurable fraction of the work. Query-dominated
// pipelines therefore tally locally — usually for free, as the event
// count of the acd.Accumulator they are filling — and flush in bulk
// through CountDistanceQueries. BFS queries are rare and counted per
// call.
var (
	analyticQueries = obs.GetCounter("topology.distance.analytic")
	bfsQueries      = obs.GetCounter("topology.distance.bfs")
)

// CountDistanceQueries records n analytic Distance calls answered by
// some topology. See the counter comment for why this is a bulk API.
func CountDistanceQueries(n uint64) {
	if n > 0 {
		analyticQueries.Add(n)
	}
}

// BFSDistances computes single-source shortest-path hop counts over
// the topology's link graph, the ground truth the analytic Distance
// functions are verified against. Unreachable ranks get -1. The
// topology must implement NeighborLister.
func BFSDistances(t Topology, src int) []int {
	checkRank(t, src)
	bfsQueries.Inc()
	nl, ok := t.(NeighborLister)
	if !ok {
		panic(fmt.Sprintf("topology: %s does not expose neighbors for BFS", t.Name()))
	}
	dist := make([]int, t.P())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	var buf []int
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		buf = nl.Neighbors(cur, buf[:0])
		for _, n := range buf {
			if dist[n] == -1 {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// Topology is a network of P processors with a shortest-path hop
// metric over ranks 0..P-1.
type Topology interface {
	// Name returns the topology's canonical lower-case name.
	Name() string
	// P returns the number of processors.
	P() int
	// Distance returns the shortest-path hop count between the
	// processors ranked a and b. It is a metric: symmetric, zero iff
	// a == b, and satisfies the triangle inequality.
	Distance(a, b int) int
}

// NeighborLister is implemented by topologies whose processors are the
// only network nodes, exposing direct links for BFS verification.
type NeighborLister interface {
	// Neighbors appends the ranks adjacent to p to buf and returns it.
	Neighbors(p int, buf []int) []int
}

// checkRank is the cold path of the Distance guards: callers test the
// range with an inlinable concrete P() first, so the dynamic dispatch
// here is only paid on the way to a panic.
func checkRank(t Topology, r int) {
	if r < 0 || r >= t.P() {
		panic(fmt.Sprintf("topology: rank %d outside %s of %d processors", r, t.Name(), t.P()))
	}
}

// --- Bus (linear array) ---

// Bus is the paper's bus topology: processors on a line, each linked
// only to its two direct neighbors.
type Bus struct {
	n int
}

// NewBus returns a bus of p processors (p >= 1).
func NewBus(p int) *Bus {
	if p < 1 {
		panic("topology: bus needs at least 1 processor")
	}
	return &Bus{n: p}
}

// Name implements Topology.
func (b *Bus) Name() string { return "bus" }

// P implements Topology.
func (b *Bus) P() int { return b.n }

// Distance implements Topology.
func (b *Bus) Distance(x, y int) int {
	if uint(x) >= uint(b.P()) || uint(y) >= uint(b.P()) {
		checkRank(b, x)
		checkRank(b, y)
	}
	if x > y {
		return x - y
	}
	return y - x
}

// Neighbors implements NeighborLister.
func (b *Bus) Neighbors(p int, buf []int) []int {
	checkRank(b, p)
	if p > 0 {
		buf = append(buf, p-1)
	}
	if p < b.n-1 {
		buf = append(buf, p+1)
	}
	return buf
}

// --- Ring ---

// Ring is a bus with an extra wrap link between the first and last
// processors.
type Ring struct {
	n int
}

// NewRing returns a ring of p processors (p >= 1).
func NewRing(p int) *Ring {
	if p < 1 {
		panic("topology: ring needs at least 1 processor")
	}
	return &Ring{n: p}
}

// Name implements Topology.
func (r *Ring) Name() string { return "ring" }

// P implements Topology.
func (r *Ring) P() int { return r.n }

// Distance implements Topology.
func (r *Ring) Distance(x, y int) int {
	if uint(x) >= uint(r.P()) || uint(y) >= uint(r.P()) {
		checkRank(r, x)
		checkRank(r, y)
	}
	d := x - y
	if d < 0 {
		d = -d
	}
	if wrap := r.n - d; wrap < d {
		return wrap
	}
	return d
}

// Neighbors implements NeighborLister.
func (r *Ring) Neighbors(p int, buf []int) []int {
	checkRank(r, p)
	if r.n == 1 {
		return buf
	}
	prev := (p - 1 + r.n) % r.n
	next := (p + 1) % r.n
	buf = append(buf, prev)
	if next != prev {
		buf = append(buf, next)
	}
	return buf
}

// --- Mesh and Torus ---

// gridNet carries the shared state of the mesh and torus: a square
// 2^procOrder grid with an SFC-driven rank placement.
type gridNet struct {
	procOrder uint
	side      uint32
	coords    []geom.Point // rank -> grid position
	rankAt    []int32      // grid cell id -> rank
	placement string
}

func newGridNet(procOrder uint, placement sfc.Curve) gridNet {
	if procOrder > 15 {
		panic("topology: grid order too large")
	}
	side := geom.Side(procOrder)
	p := int(geom.Cells(procOrder))
	g := gridNet{
		procOrder: procOrder,
		side:      side,
		coords:    make([]geom.Point, p),
		rankAt:    make([]int32, p),
		placement: placement.Name(),
	}
	for rank := 0; rank < p; rank++ {
		pt := placement.Point(procOrder, uint64(rank))
		g.coords[rank] = pt
		g.rankAt[geom.CellID(pt, side)] = int32(rank)
	}
	return g
}

// Coord returns the grid position of a rank.
func (g *gridNet) Coord(rank int) geom.Point { return g.coords[rank] }

// RankAt returns the rank placed at a grid position.
func (g *gridNet) RankAt(pt geom.Point) int {
	return int(g.rankAt[geom.CellID(pt, g.side)])
}

// Side returns the grid side length.
func (g *gridNet) Side() uint32 { return g.side }

// Placement returns the name of the processor-order curve.
func (g *gridNet) Placement() string { return g.placement }

func (g *gridNet) gridNeighbors(p int, wrap bool, buf []int) []int {
	c := g.coords[p]
	side := int(g.side)
	if side == 1 {
		return buf
	}
	deltas := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for _, d := range deltas {
		x, y := int(c.X)+d[0], int(c.Y)+d[1]
		if wrap {
			x = (x + side) % side
			y = (y + side) % side
		} else if !geom.InBounds(x, y, g.side) {
			continue
		}
		n := g.RankAt(geom.Pt(uint32(x), uint32(y)))
		dup := false
		for _, v := range buf {
			if v == n {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, n)
		}
	}
	return buf
}

// Mesh is the 2D mesh/grid topology: a square grid of processors with
// links between horizontal and vertical neighbors.
type Mesh struct {
	gridNet
}

// NewMesh returns a 2^procOrder x 2^procOrder mesh (p = 4^procOrder
// processors) with ranks placed along the given processor-order curve.
func NewMesh(procOrder uint, placement sfc.Curve) *Mesh {
	return &Mesh{gridNet: newGridNet(procOrder, placement)}
}

// Name implements Topology.
func (m *Mesh) Name() string { return "mesh" }

// P implements Topology.
func (m *Mesh) P() int { return len(m.coords) }

// Distance implements Topology: the Manhattan distance between the
// ranks' grid positions.
func (m *Mesh) Distance(a, b int) int {
	if uint(a) >= uint(m.P()) || uint(b) >= uint(m.P()) {
		checkRank(m, a)
		checkRank(m, b)
	}
	return geom.Manhattan(m.coords[a], m.coords[b])
}

// Neighbors implements NeighborLister.
func (m *Mesh) Neighbors(p int, buf []int) []int {
	checkRank(m, p)
	return m.gridNeighbors(p, false, buf)
}

// torusLUTMaxSide bounds the delta-distance table: a side x side grid
// of uint16 (128 KiB at side 256). Beyond it the batched sum falls back
// to per-pair wrap arithmetic.
const torusLUTMaxSide = 256

// Torus is the mesh plus wrap-around links in both dimensions.
type Torus struct {
	gridNet
	// dlut[dy<<procOrder | dx] is the torus hop count for the
	// coordinate delta (dx, dy) taken mod side — the side is a power of
	// two, so the delta reduces with a mask and the whole wrapped
	// metric becomes one branch-free table load. Built only up to
	// torusLUTMaxSide; nil above it.
	dlut []uint16
}

// NewTorus returns a 2^procOrder x 2^procOrder torus with ranks placed
// along the given processor-order curve.
func NewTorus(procOrder uint, placement sfc.Curve) *Torus {
	t := &Torus{gridNet: newGridNet(procOrder, placement)}
	if t.side <= torusLUTMaxSide {
		t.dlut = make([]uint16, int(t.side)*int(t.side))
		for dy := uint32(0); dy < t.side; dy++ {
			for dx := uint32(0); dx < t.side; dx++ {
				t.dlut[dy<<procOrder|dx] = uint16(wrapDist(dx, 0, t.side) + wrapDist(dy, 0, t.side))
			}
		}
	}
	return t
}

// Name implements Topology.
func (t *Torus) Name() string { return "torus" }

// P implements Topology.
func (t *Torus) P() int { return len(t.coords) }

// Distance implements Topology: per-dimension wrapped Manhattan
// distance.
func (t *Torus) Distance(a, b int) int {
	if uint(a) >= uint(t.P()) || uint(b) >= uint(t.P()) {
		checkRank(t, a)
		checkRank(t, b)
	}
	ca, cb := t.coords[a], t.coords[b]
	return wrapDist(ca.X, cb.X, t.side) + wrapDist(ca.Y, cb.Y, t.side)
}

func wrapDist(a, b, side uint32) int {
	d := a - b
	if a < b {
		d = b - a
	}
	if wrap := side - d; wrap < d {
		return int(wrap)
	}
	return int(d)
}

// Neighbors implements NeighborLister.
func (t *Torus) Neighbors(p int, buf []int) []int {
	checkRank(t, p)
	return t.gridNeighbors(p, true, buf)
}

// --- Hypercube ---

// Hypercube is the classical binary hypercube: p = 2^dims processors,
// ranks adjacent iff their labels differ in exactly one bit.
type Hypercube struct {
	dims uint
}

// NewHypercube returns a hypercube with 2^dims processors.
func NewHypercube(dims uint) *Hypercube {
	if dims > 30 {
		panic("topology: hypercube dimension too large")
	}
	return &Hypercube{dims: dims}
}

// Name implements Topology.
func (h *Hypercube) Name() string { return "hypercube" }

// P implements Topology.
func (h *Hypercube) P() int { return 1 << h.dims }

// Distance implements Topology: the Hamming distance of the labels.
func (h *Hypercube) Distance(a, b int) int {
	if uint(a) >= uint(h.P()) || uint(b) >= uint(h.P()) {
		checkRank(h, a)
		checkRank(h, b)
	}
	return bits.OnesCount32(uint32(a) ^ uint32(b))
}

// Neighbors implements NeighborLister.
func (h *Hypercube) Neighbors(p int, buf []int) []int {
	checkRank(h, p)
	for d := uint(0); d < h.dims; d++ {
		buf = append(buf, p^(1<<d))
	}
	return buf
}

// --- Quadtree network ---

// QuadtreeNet is the quadtree topology: p = 4^levels processors at the
// leaves of a complete 4-ary switch tree; every message travels up to
// the lowest common ancestor and back down, so the hop distance is
// twice the depth below the LCA. Leaf ranks are labeled in quadrant
// (Morton) order so that rank prefixes encode the tree structure.
type QuadtreeNet struct {
	levels uint
}

// NewQuadtreeNet returns a quadtree network with 4^levels processors.
func NewQuadtreeNet(levels uint) *QuadtreeNet {
	if levels > 15 {
		panic("topology: quadtree levels too large")
	}
	return &QuadtreeNet{levels: levels}
}

// Name implements Topology.
func (q *QuadtreeNet) Name() string { return "quadtree" }

// P implements Topology.
func (q *QuadtreeNet) P() int { return 1 << (2 * q.levels) }

// Levels returns the tree depth.
func (q *QuadtreeNet) Levels() uint { return q.levels }

// Distance implements Topology: 2 * (levels - common prefix length in
// base-4 digits).
func (q *QuadtreeNet) Distance(a, b int) int {
	if uint(a) >= uint(q.P()) || uint(b) >= uint(q.P()) {
		checkRank(q, a)
		checkRank(q, b)
	}
	if a == b {
		return 0
	}
	diff := uint32(a) ^ uint32(b)
	// Highest differing bit, rounded up to a whole base-4 digit pair.
	top := uint(bits.Len32(diff)) // 1-based bit index of highest set bit
	digits := (top + 1) / 2       // number of base-4 digits below and including the difference
	return int(2 * digits)
}

// --- Factories ---

// Kind names the six topology families.
var Kinds = []string{"bus", "ring", "mesh", "torus", "quadtree", "hypercube"}

// New constructs a topology by name with exactly p processors. Mesh,
// torus, and quadtree require p to be a power of 4; the hypercube
// requires a power of 2. placement is consulted only by mesh and torus
// (pass nil for natural row-major placement).
func New(name string, p int, placement sfc.Curve) (Topology, error) {
	if p < 1 {
		return nil, fmt.Errorf("topology: p = %d must be positive", p)
	}
	if placement == nil {
		placement = sfc.RowMajor
	}
	switch name {
	case "bus":
		return NewBus(p), nil
	case "ring":
		return NewRing(p), nil
	case "mesh", "torus", "quadtree":
		order, ok := quarterLog(p)
		if !ok {
			return nil, fmt.Errorf("topology: %s requires a power-of-4 processor count, got %d", name, p)
		}
		switch name {
		case "mesh":
			return NewMesh(order, placement), nil
		case "torus":
			return NewTorus(order, placement), nil
		default:
			return NewQuadtreeNet(order), nil
		}
	case "hypercube":
		if p&(p-1) != 0 {
			return nil, fmt.Errorf("topology: hypercube requires a power-of-2 processor count, got %d", p)
		}
		return NewHypercube(uint(bits.TrailingZeros32(uint32(p)))), nil
	}
	return nil, fmt.Errorf("topology: unknown topology %q", name)
}

// quarterLog returns m with p == 4^m, if such m exists.
func quarterLog(p int) (uint, bool) {
	if p <= 0 || p&(p-1) != 0 {
		return 0, false
	}
	tz := bits.TrailingZeros32(uint32(p))
	if tz%2 != 0 {
		return 0, false
	}
	return uint(tz / 2), true
}
