package quadtree

import (
	"fmt"
	"slices"
	"sort"

	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
)

// Cell identifies a quadtree cell: a level (0 = root) and the cell's
// coordinates on the 2^Level x 2^Level grid of that level.
type Cell struct {
	Level uint
	X, Y  uint32
}

// Root is the level-0 cell covering the whole domain.
var Root = Cell{Level: 0}

// String renders the cell as "L<level>(x,y)".
func (c Cell) String() string { return fmt.Sprintf("L%d(%d,%d)", c.Level, c.X, c.Y) }

// Parent returns the cell's parent. Calling Parent on the root panics.
func (c Cell) Parent() Cell {
	if c.Level == 0 {
		panic("quadtree: root has no parent")
	}
	return Cell{Level: c.Level - 1, X: c.X / 2, Y: c.Y / 2}
}

// Child returns the i-th child (i in 0..3, Morton order: x is the low
// bit).
func (c Cell) Child(i int) Cell {
	if i < 0 || i > 3 {
		panic("quadtree: child index out of range")
	}
	return Cell{Level: c.Level + 1, X: 2*c.X + uint32(i&1), Y: 2*c.Y + uint32(i>>1)}
}

// Contains reports whether c contains d (every cell contains itself).
func (c Cell) Contains(d Cell) bool {
	if d.Level < c.Level {
		return false
	}
	shift := d.Level - c.Level
	return d.X>>shift == c.X && d.Y>>shift == c.Y
}

// ContainsPoint reports whether the finest-resolution point p (on the
// grid of the given order) lies inside c.
func (c Cell) ContainsPoint(order uint, p geom.Point) bool {
	if c.Level > order {
		panic("quadtree: cell finer than resolution")
	}
	shift := order - c.Level
	return p.X>>shift == c.X && p.Y>>shift == c.Y
}

// MortonRange returns the half-open range of finest-level Morton codes
// covered by c at resolution order.
func (c Cell) MortonRange(order uint) (lo, hi uint64) {
	if c.Level > order {
		panic("quadtree: cell finer than resolution")
	}
	shift := 2 * (order - c.Level)
	base := sfc.Morton.Index(c.Level, geom.Pt(c.X, c.Y))
	return base << shift, (base + 1) << shift
}

// LinearTree is a linear ("compressed") quadtree in the style of
// Sundar, Sampath & Biros: the sorted list of leaf cells — possibly of
// mixed levels — that partition the domain, refined so that no leaf
// holds more than a configured number of particles (or is at the
// finest resolution). Leaves are stored in Morton order of their
// covered ranges, which makes point location a binary search.
type LinearTree struct {
	// Order is the finest resolution order.
	Order uint
	// Leaves are the partition cells in Morton order.
	Leaves []Cell
	// Counts[i] is the number of particles inside Leaves[i].
	Counts []int
	// starts[i] is the first finest-level Morton code covered by
	// Leaves[i]; parallel to Leaves.
	starts []uint64
}

// BuildLinear constructs the adaptive linear quadtree over the given
// particles: starting from the root, any cell holding more than
// maxPerLeaf particles is split (until the finest level, where cells
// are never split — matching the paper's one-particle-per-finest-cell
// assumption when maxPerLeaf is 1 and particles are unique).
func BuildLinear(order uint, pts []geom.Point, maxPerLeaf int) *LinearTree {
	if maxPerLeaf < 1 {
		panic("quadtree: maxPerLeaf must be >= 1")
	}
	codes := make([]uint64, len(pts))
	for i, p := range pts {
		codes[i] = sfc.Morton.Index(order, p)
	}
	slices.Sort(codes)
	t := &LinearTree{Order: order}
	t.refine(Root, codes, maxPerLeaf)
	t.starts = make([]uint64, len(t.Leaves))
	for i, leaf := range t.Leaves {
		t.starts[i], _ = leaf.MortonRange(order)
	}
	return t
}

// refine recursively splits cell c over the (sorted) particle codes it
// covers.
func (t *LinearTree) refine(c Cell, codes []uint64, maxPerLeaf int) {
	if len(codes) <= maxPerLeaf || c.Level == t.Order {
		t.Leaves = append(t.Leaves, c)
		t.Counts = append(t.Counts, len(codes))
		return
	}
	for i := 0; i < 4; i++ {
		child := c.Child(i)
		lo, hi := child.MortonRange(t.Order)
		a := sort.Search(len(codes), func(j int) bool { return codes[j] >= lo })
		b := sort.Search(len(codes), func(j int) bool { return codes[j] >= hi })
		t.refine(child, codes[a:b], maxPerLeaf)
	}
}

// Locate returns the index of the leaf containing point p.
func (t *LinearTree) Locate(p geom.Point) int {
	code := sfc.Morton.Index(t.Order, p)
	// The leaf is the last one whose start is <= code.
	i := sort.Search(len(t.starts), func(j int) bool { return t.starts[j] > code }) - 1
	return i
}

// Depth returns the maximum leaf level.
func (t *LinearTree) Depth() uint {
	var d uint
	for _, l := range t.Leaves {
		if l.Level > d {
			d = l.Level
		}
	}
	return d
}

// TotalParticles returns the sum of leaf counts.
func (t *LinearTree) TotalParticles() int {
	n := 0
	for _, c := range t.Counts {
		n += c
	}
	return n
}
