package commmat

import (
	"fmt"
	"runtime"
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/obs"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

// sixTopologies instantiates one of every topology kind over p ranks
// (p must be a power of 4), placing mesh and torus along the given
// curve.
func sixTopologies(t *testing.T, p int, placement sfc.Curve) []topology.Topology {
	t.Helper()
	topos := make([]topology.Topology, 0, len(topology.Kinds))
	for _, kind := range topology.Kinds {
		topo, err := topology.New(kind, p, placement)
		if err != nil {
			t.Fatal(err)
		}
		topos = append(topos, topo)
	}
	return topos
}

// freshTables wraps each topology in its own unused distance table, so
// the ski-rental state (pending lookups, materialized rows) starts
// identical for every contraction path under comparison.
func freshTables(topos []topology.Topology) []*topology.DistanceTable {
	dts := make([]*topology.DistanceTable, len(topos))
	for i, topo := range topos {
		dts[i] = topology.NewDistanceTable(topo)
	}
	return dts
}

// TestFusedContractMultiEquivalence is the fused-vs-sequential
// property test: across matrix forms (dense, full-grid CSR, banded
// CSR), seeds, placement curves, all six topology kinds, Sym and
// non-Sym weighting, and worker counts, the fused pass must produce
// exactly (Sum/Count/Zeros) the per-topology ContractTable results.
func TestFusedContractMultiEquivalence(t *testing.T) {
	curves := sfc.All()
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	cases := []struct {
		name string
		p, n int
	}{
		{"dense", 64, 5000},      // p*p <= denseCells
		{"fullCSR", 1024, 20000}, // full grid, CSR output
		{"banded", 4096, 40000},  // p*p > maxScratchCells: delta band
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 2; seed++ {
			curve := curves[int(seed)%len(curves)]
			t.Run(fmt.Sprintf("%s/seed%d/%s", tc.name, seed, curve.Name()), func(t *testing.T) {
				m := buildWith(tc.p, 2, randomEvents(seed, tc.p, tc.n))
				topos := sixTopologies(t, tc.p, curve)

				// Sequential oracle on fresh tables, per weighting.
				seq := make([]acd.Accumulator, len(topos))
				seqSym := make([]acd.Accumulator, len(topos))
				for i, dt := range freshTables(topos) {
					m.ContractTable(dt, &seq[i])
				}
				for i, dt := range freshTables(topos) {
					m.ContractTableSym(dt, &seqSym[i])
				}

				for _, workers := range workerCounts {
					got := make([]acd.Accumulator, len(topos))
					accs := make([]*acd.Accumulator, len(topos))
					for i := range got {
						accs[i] = &got[i]
					}
					m.ContractTableMulti(freshTables(topos), accs, workers)
					for i := range topos {
						if got[i] != seq[i] {
							t.Fatalf("workers=%d topo=%s: fused %+v != sequential %+v",
								workers, topos[i].Name(), got[i], seq[i])
						}
						got[i] = acd.Accumulator{}
					}
					m.ContractTableMultiSym(freshTables(topos), accs, workers)
					for i := range topos {
						if got[i] != seqSym[i] {
							t.Fatalf("workers=%d topo=%s: fused Sym %+v != sequential %+v",
								workers, topos[i].Name(), got[i], seqSym[i])
						}
					}
				}
			})
		}
	}
}

// TestFusedDistanceQueryAccounting pins the fused pass's
// topology.distance.analytic accounting against the sequential path:
// the serial plan step replays the sequential RowFor sequence per
// table, so the same rows materialize and the same per-table direct
// Distance calls are tallied — at any worker count.
func TestFusedDistanceQueryAccounting(t *testing.T) {
	counter := obs.GetCounter("topology.distance.analytic")
	curves := sfc.All()
	for _, tc := range []struct {
		name string
		p, n int
	}{
		{"dense", 64, 5000},
		{"banded", 4096, 40000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := buildWith(tc.p, 2, randomEvents(int64(tc.p)+3, tc.p, tc.n))
			topos := sixTopologies(t, tc.p, curves[0])

			before := counter.Value()
			for _, dt := range freshTables(topos) {
				var acc acd.Accumulator
				m.ContractTableSym(dt, &acc)
			}
			seqDelta := counter.Value() - before

			for _, workers := range []int{1, 3, 8} {
				got := make([]acd.Accumulator, len(topos))
				accs := make([]*acd.Accumulator, len(topos))
				for i := range got {
					accs[i] = &got[i]
				}
				before = counter.Value()
				m.ContractTableMultiSym(freshTables(topos), accs, workers)
				if delta := counter.Value() - before; delta != seqDelta {
					t.Fatalf("workers=%d: fused pass recorded %d distance queries, sequential %d",
						workers, delta, seqDelta)
				}
			}
		})
	}
}

// TestMutableContractTableMultiEquivalence: the Mutable fused pass must
// equal per-table ContractTableSym exactly, including its distance-
// query accounting.
func TestMutableContractTableMultiEquivalence(t *testing.T) {
	const p, n = 1024, 20000
	counter := obs.GetCounter("topology.distance.analytic")
	mm := NewMutable(p)
	for _, e := range randomEvents(17, p, n) {
		src, dst := e[0], e[1]
		if dst < src {
			src, dst = dst, src
		}
		mm.Add(src, dst)
	}
	topos := sixTopologies(t, p, sfc.All()[0])

	before := counter.Value()
	seq := make([]acd.Accumulator, len(topos))
	for i, dt := range freshTables(topos) {
		mm.ContractTableSym(dt, &seq[i])
	}
	seqDelta := counter.Value() - before

	got := make([]acd.Accumulator, len(topos))
	accs := make([]*acd.Accumulator, len(topos))
	for i := range got {
		accs[i] = &got[i]
	}
	before = counter.Value()
	mm.ContractTableMultiSym(freshTables(topos), accs)
	fusedDelta := counter.Value() - before
	for i := range topos {
		if got[i] != seq[i] {
			t.Fatalf("topo=%s: fused %+v != sequential %+v", topos[i].Name(), got[i], seq[i])
		}
	}
	if fusedDelta != seqDelta {
		t.Fatalf("fused pass recorded %d distance queries, sequential %d", fusedDelta, seqDelta)
	}
}

// BenchmarkContractMulti measures the fused pass against the
// sequential per-topology loop at 1 and 6 topologies on both matrix
// forms. The 6-topology fused case is the headline: one pair stream
// instead of six, and the topology-independent tallies computed once.
func BenchmarkContractMulti(b *testing.B) {
	curves := sfc.All()
	for _, form := range []struct {
		name string
		p, n int
	}{
		{"dense", 256, 60000},
		{"csr", 4096, 120000},
	} {
		m := buildWith(form.p, 2, randomEvents(int64(form.p), form.p, form.n))
		allTopos := make([]topology.Topology, 0, len(topology.Kinds))
		for _, kind := range topology.Kinds {
			topo, err := topology.New(kind, form.p, curves[0])
			if err != nil {
				b.Fatal(err)
			}
			allTopos = append(allTopos, topo)
		}
		for _, k := range []int{1, 6} {
			topos := allTopos[:k]
			dts := freshTablesB(topos)
			// Warm the tables so both variants contract fully
			// materialized rows; the benchmark isolates contraction.
			warm := make([]acd.Accumulator, k)
			for i, dt := range dts {
				m.ContractTableSym(dt, &warm[i])
			}
			b.Run(fmt.Sprintf("%s/topos=%d/seq", form.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					accs := make([]acd.Accumulator, k)
					for j, dt := range dts {
						m.ContractTableSym(dt, &accs[j])
					}
				}
			})
			b.Run(fmt.Sprintf("%s/topos=%d/fused", form.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					accs := make([]acd.Accumulator, k)
					ptrs := make([]*acd.Accumulator, k)
					for j := range accs {
						ptrs[j] = &accs[j]
					}
					m.ContractTableMultiSym(dts, ptrs, 1)
				}
			})
		}
	}
}

func freshTablesB(topos []topology.Topology) []*topology.DistanceTable {
	dts := make([]*topology.DistanceTable, len(topos))
	for i, topo := range topos {
		dts[i] = topology.NewDistanceTable(topo)
	}
	return dts
}
