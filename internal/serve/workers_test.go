package serve

import (
	"context"
	"runtime"
	"testing"

	"sfcacd/internal/experiments"
)

// TestComputeDefaultsWorkers checks the machine split: a request that
// leaves Workers at zero is computed with GOMAXPROCS/s.workers sweep
// workers (floored at 1), so concurrent server computations don't each
// oversubscribe the whole machine.
func TestComputeDefaultsWorkers(t *testing.T) {
	s := New(Options{Workers: 2})
	var got int
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		got = p.Workers
		return fakeOutput(p), nil
	}
	if _, err := s.Do(context.Background(), "table12", tinyParams); err != nil {
		t.Fatalf("Do: %v", err)
	}
	want := runtime.GOMAXPROCS(0) / 2
	if want < 1 {
		want = 1
	}
	if got != want {
		t.Errorf("defaulted p.Workers = %d, want %d", got, want)
	}
}

// TestComputeKeepsExplicitWorkers checks that a request that pins
// Workers is passed through untouched.
func TestComputeKeepsExplicitWorkers(t *testing.T) {
	s := New(Options{Workers: 2})
	var got int
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		got = p.Workers
		return fakeOutput(p), nil
	}
	p := tinyParams
	p.Workers = 3
	if _, err := s.Do(context.Background(), "table12", p); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if got != 3 {
		t.Errorf("explicit p.Workers = %d, want 3", got)
	}
}
