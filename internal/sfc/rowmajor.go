package sfc

import "sfcacd/internal/geom"

// rowMajorCurve implements the paper's simple row/column-major order:
// "assign the points in the first column the values {1..2^k}", i.e. the
// i-th column is numbered (i-1)*2^k+1 .. i*2^k. With zero-based indices
// that is index = x*2^k + y. (The row-of-columns variant is its mirror
// and has identical metric behaviour by symmetry.)
type rowMajorCurve struct{}

func (rowMajorCurve) Name() string { return "rowmajor" }

func (rowMajorCurve) Index(order uint, p geom.Point) uint64 {
	checkPoint(order, p)
	rowMajorStats.countEncode(int(p.X))
	return uint64(p.X)*uint64(geom.Side(order)) + uint64(p.Y)
}

func (rowMajorCurve) Point(order uint, d uint64) geom.Point {
	checkIndex(order, d)
	rowMajorStats.countDecode(int(d))
	side := uint64(geom.Side(order))
	return geom.Point{X: uint32(d / side), Y: uint32(d % side)}
}

// snakeCurve implements the boustrophedon ("snake scan") order: like
// row-major, but every other column is traversed in reverse so that
// consecutive indices are always spatially adjacent. It is the discrete
// analog of the continuous snake scan that Xu and Tirthapura prove
// optimal for clustering, included here as an extension curve.
type snakeCurve struct{}

func (snakeCurve) Name() string { return "snake" }

func (snakeCurve) Index(order uint, p geom.Point) uint64 {
	checkPoint(order, p)
	snakeStats.countEncode(int(p.X))
	side := geom.Side(order)
	y := p.Y
	if p.X&1 == 1 {
		y = side - 1 - y
	}
	return uint64(p.X)*uint64(side) + uint64(y)
}

func (snakeCurve) Point(order uint, d uint64) geom.Point {
	checkIndex(order, d)
	snakeStats.countDecode(int(d))
	side := uint64(geom.Side(order))
	x := uint32(d / side)
	y := uint32(d % side)
	if x&1 == 1 {
		y = uint32(side) - 1 - y
	}
	return geom.Point{X: x, Y: y}
}
