package primitives

import (
	"fmt"

	"sfcacd/internal/acd"
	"sfcacd/internal/topology"
)

// Profile formalizes the §VII workflow: an application's per-timestep
// communication demand expressed as a weighted mix of primitives (plus
// optional data volumes), evaluated against candidate topologies or
// processor-order placements before any implementation work.
type Profile struct {
	// Entries are the application's communication phases.
	Entries []ProfileEntry
}

// ProfileEntry weights one primitive within the application profile.
type ProfileEntry struct {
	// Name labels the phase ("halo exchange", "global reduce", ...).
	Name string
	// Run computes the phase's accumulator on a topology.
	Run func(topology.Topology) acd.Accumulator
	// Weight is the phase's share of the application's message count
	// (any positive scale; weights are normalized internally).
	Weight float64
	// BytesPerMessage optionally weights the phase by data volume
	// (future-work item i); 0 means count messages only.
	BytesPerMessage float64
}

// Validate checks the profile is usable.
func (p Profile) Validate() error {
	if len(p.Entries) == 0 {
		return fmt.Errorf("primitives: empty profile")
	}
	var total float64
	for i, e := range p.Entries {
		if e.Run == nil {
			return fmt.Errorf("primitives: entry %d (%s) has no Run", i, e.Name)
		}
		if e.Weight < 0 || e.BytesPerMessage < 0 {
			return fmt.Errorf("primitives: entry %d (%s) has negative weight", i, e.Name)
		}
		total += e.Weight
	}
	if total == 0 {
		return fmt.Errorf("primitives: profile has zero total weight")
	}
	return nil
}

// Evaluate returns the profile's expected hops per message on the
// topology: the weighted mean of the entries' ACDs. When an entry
// carries BytesPerMessage, its contribution is volume-weighted.
func (p Profile) Evaluate(topo topology.Topology) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	var weighted acd.WeightedAccumulator
	for _, e := range p.Entries {
		if e.Weight == 0 {
			continue
		}
		accum := e.Run(topo)
		bytesPer := e.BytesPerMessage
		if bytesPer == 0 {
			bytesPer = 1
		}
		// Scale the phase so its share of total traffic matches Weight
		// regardless of how many raw events the primitive generates.
		if accum.Count == 0 {
			continue
		}
		scale := e.Weight * bytesPer / float64(accum.Count)
		weighted.Merge(acd.WeightedAccumulator{
			WeightedSum: float64(accum.Sum) * scale,
			Weight:      float64(accum.Count) * scale,
			Events:      accum.Count,
		})
	}
	return weighted.ACD(), nil
}

// Best evaluates the profile on every candidate and returns the index
// of the cheapest along with all scores.
func (p Profile) Best(candidates []topology.Topology) (int, []float64, error) {
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("primitives: no candidate topologies")
	}
	scores := make([]float64, len(candidates))
	best := 0
	for i, topo := range candidates {
		score, err := p.Evaluate(topo)
		if err != nil {
			return 0, nil, err
		}
		scores[i] = score
		if score < scores[best] {
			best = i
		}
	}
	return best, scores, nil
}
