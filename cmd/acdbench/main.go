// Command acdbench regenerates the paper's evaluation tables and
// figures (Tables I-II, Figures 6-7) and the extension studies, at
// paper scale or scaled down.
//
// Usage:
//
//	acdbench -experiment table12                 # scaled-down default
//	acdbench -experiment table12 -full           # exact paper parameters
//	acdbench -experiment fig6 -particles 100000  # custom overrides
//	acdbench -experiment all
//
// Experiments: table12 (Tables I and II), fig6, fig7, radius, nsweep,
// meshtorus, primitives, contention, dynamic, threed, clustering,
// loadbalance, execmodel, metrics, or all. Pass -csvdir to also write
// machine-readable CSVs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"sfcacd/internal/experiments"
)

// csvDir, when set, receives one CSV file per experiment result.
var csvDir string

// csvWriter is implemented by every experiment result with a CSV form.
type csvWriter interface {
	WriteCSV(io.Writer) error
}

// emitCSV writes the result's CSV into csvDir (no-op when unset).
func emitCSV(name string, r csvWriter) error {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteCSV(f); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func main() {
	var (
		experiment = flag.String("experiment", "table12", "experiment to run: table12, fig6, fig7, radius, nsweep, meshtorus, primitives, contention, all")
		full       = flag.Bool("full", false, "use exact paper-scale parameters (slow)")
		scale      = flag.Uint("scale", 2, "scale-down steps from paper parameters (each step quarters the input)")
		particles  = flag.Int("particles", 0, "override particle count")
		order      = flag.Uint("order", 0, "override spatial resolution order (grid side 2^order)")
		procOrder  = flag.Uint("procorder", 0, "override processor order (p = 4^procorder)")
		radius     = flag.Int("radius", 0, "override near-field radius")
		trials     = flag.Int("trials", 0, "override trial count")
		seed       = flag.Uint64("seed", 0, "override random seed")
		csvDirF    = flag.String("csvdir", "", "also write machine-readable CSVs into this directory")
	)
	flag.Parse()
	csvDir = *csvDirF

	params := func(paper experiments.Params) experiments.Params {
		p := paper
		if !*full {
			p = paper.Scale(*scale)
		}
		if *particles > 0 {
			p.Particles = *particles
		}
		if *order > 0 {
			p.Order = *order
		}
		if *procOrder > 0 {
			p.ProcOrder = *procOrder
		}
		if *radius > 0 {
			p.Radius = *radius
		}
		if *trials > 0 {
			p.Trials = *trials
		}
		if *seed > 0 {
			p.Seed = *seed
		}
		return p
	}

	runners := map[string]func() error{
		"table12":    func() error { return runTable12(params(experiments.Table12Paper)) },
		"fig6":       func() error { return runFig6(params(experiments.Fig6Paper)) },
		"fig7":       func() error { return runFig7(params(experiments.Fig7Paper)) },
		"radius":     func() error { return runRadius(params(experiments.Table12Paper)) },
		"nsweep":     func() error { return runNSweep(params(experiments.Table12Paper)) },
		"meshtorus":  func() error { return runMeshTorus(params(experiments.Table12Paper)) },
		"primitives": func() error { return runPrimitives(params(experiments.Table12Paper)) },
		"contention": func() error { return runContention(params(experiments.Table12Paper)) },
		"dynamic":    func() error { return runDynamic(params(experiments.Table12Paper)) },
		"threed":     func() error { return runThreeD(*full) },
		"clustering": func() error { return runClustering(*full) },
		"loadbalance": func() error {
			p := params(experiments.Table12Paper)
			announce(p)
			res, err := experiments.RunLoadBalance(p)
			if err != nil {
				return err
			}
			if err := emitCSV("loadbalance", res); err != nil {
				return err
			}
			return res.Matrix().Render(os.Stdout)
		},
		"execmodel": func() error {
			p := params(experiments.Table12Paper)
			announce(p)
			res, err := experiments.RunExecModel(p)
			if err != nil {
				return err
			}
			if err := emitCSV("execmodel", res); err != nil {
				return err
			}
			return res.Matrix().Render(os.Stdout)
		},
		"metrics": func() error {
			cfg := experiments.MetricsConfig{
				Params:      params(experiments.Table12Paper),
				MetricOrder: 7,
				QuerySide:   8,
				QueryTrials: 5000,
			}
			if *full {
				cfg.MetricOrder = 9
			}
			announce(cfg.Params)
			res, err := experiments.RunMetrics(cfg)
			if err != nil {
				return err
			}
			if err := emitCSV("metrics", res); err != nil {
				return err
			}
			return res.Matrix().Render(os.Stdout)
		},
	}
	names := []string{"table12", "fig6", "fig7", "radius", "nsweep", "meshtorus", "primitives", "contention", "dynamic", "threed", "clustering", "loadbalance", "execmodel", "metrics"}

	todo := []string{*experiment}
	if *experiment == "all" {
		todo = names
	}
	for _, name := range todo {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "acdbench: unknown experiment %q (choose from %v or all)\n", name, names)
			os.Exit(2)
		}
		start := time.Now()
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "acdbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func announce(p experiments.Params) {
	fmt.Printf("parameters: n=%d, resolution=%dx%d, p=%d, radius=%d, trials=%d, seed=%d\n\n",
		p.Particles, 1<<p.Order, 1<<p.Order, p.P(), p.Radius, p.Trials, p.Seed)
}

func runTable12(p experiments.Params) error {
	announce(p)
	results, err := experiments.RunTable12(p)
	if err != nil {
		return err
	}
	for _, res := range results {
		if err := emitCSV("table12_"+res.Distribution, res); err != nil {
			return err
		}
		nfi, ffi := res.Matrices()
		if err := nfi.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if err := ffi.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig6(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunFig6(p)
	if err != nil {
		return err
	}
	if err := emitCSV("fig6", res); err != nil {
		return err
	}
	nfi, ffi := res.Matrices()
	if err := nfi.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return ffi.Render(os.Stdout)
}

func runFig7(p experiments.Params) error {
	announce(p)
	// Sweep processor orders from 4^(ProcOrder-3) up to 4^ProcOrder,
	// the paper's 1,024..65,536 at full scale.
	var orders []uint
	lo := uint(2)
	if p.ProcOrder > 3 {
		lo = p.ProcOrder - 3
	}
	for o := lo; o <= p.ProcOrder; o++ {
		orders = append(orders, o)
	}
	res, err := experiments.RunFig7(p, orders)
	if err != nil {
		return err
	}
	if err := emitCSV("fig7", res); err != nil {
		return err
	}
	nfi, ffi := res.SeriesTables()
	if err := nfi.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return ffi.Render(os.Stdout)
}

func runRadius(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunRadiusSweep(p, []int{1, 2, 4, 6, 8})
	if err != nil {
		return err
	}
	if err := emitCSV("radius", res); err != nil {
		return err
	}
	return res.SeriesTable().Render(os.Stdout)
}

func runNSweep(p experiments.Params) error {
	announce(p)
	sizes := []int{p.Particles / 8, p.Particles / 4, p.Particles / 2, p.Particles}
	res, err := experiments.RunSizeSweep(p, sizes)
	if err != nil {
		return err
	}
	if err := emitCSV("nsweep", res); err != nil {
		return err
	}
	nfi, ffi := res.SeriesTables()
	if err := nfi.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return ffi.Render(os.Stdout)
}

func runMeshTorus(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunMeshTorus(p)
	if err != nil {
		return err
	}
	if err := emitCSV("meshtorus", res); err != nil {
		return err
	}
	return res.Matrix().Render(os.Stdout)
}

func runPrimitives(p experiments.Params) error {
	fmt.Printf("parameters: p=%d\n\n", p.P())
	res := experiments.RunPrimitives(p.ProcOrder)
	mesh, torus := res.Matrices()
	if err := mesh.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return torus.Render(os.Stdout)
}

func runContention(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunContention(p)
	if err != nil {
		return err
	}
	if err := emitCSV("contention", res); err != nil {
		return err
	}
	return res.Matrix().Render(os.Stdout)
}

func runDynamic(p experiments.Params) error {
	announce(p)
	res, err := experiments.RunDynamic(p, 8)
	if err != nil {
		return err
	}
	if err := emitCSV("dynamic", res); err != nil {
		return err
	}
	static, reorder := res.SeriesTables()
	if err := static.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return reorder.Render(os.Stdout)
}

func runClustering(full bool) error {
	order, trials := uint(8), 2000
	if full {
		order, trials = 10, 10000
	}
	fmt.Printf("parameters: resolution=%dx%d, trials=%d per query size\n\n", 1<<order, 1<<order, trials)
	res, err := experiments.RunClustering(order, []uint32{2, 4, 8, 16, 32}, trials, 2013)
	if err != nil {
		return err
	}
	if err := emitCSV("clustering", res); err != nil {
		return err
	}
	return res.SeriesTable().Render(os.Stdout)
}

func runThreeD(full bool) error {
	p := experiments.ThreeDDefault
	if full {
		p.Particles = 200000
		p.Order = 7     // 128^3 cells
		p.ProcOrder = 3 // 512 processors on an 8x8x8 torus
		p.ANNSOrder = 5 // 32^3 full grid
	}
	fmt.Printf("parameters: n=%d, resolution=%d^3, p=%d, radius=%d, trials=%d, seed=%d\n\n",
		p.Particles, 1<<p.Order, 1<<(3*p.ProcOrder), p.Radius, p.Trials, p.Seed)
	res, err := experiments.RunThreeD(p)
	if err != nil {
		return err
	}
	if err := emitCSV("threed", res); err != nil {
		return err
	}
	return res.Matrix().Render(os.Stdout)
}
