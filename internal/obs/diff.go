package obs

// Sub returns the change from prev to s: counters and histogram
// observation counts subtract (clamped at zero, so a Reset between
// the two snapshots cannot produce wrapped values), while gauges and
// histogram min/max keep their current values, since last-value
// metrics have no meaningful delta.
//
// The serving layer uses Sub to attribute process-wide metrics to one
// computation by snapshotting around it. That attribution is exact
// when computations run one at a time and approximate when they
// overlap — the registry is process-wide, so a concurrent neighbor's
// events land in the same counters.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{}
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]uint64, len(s.Counters))
		for name, v := range s.Counters {
			if old := prev.Counters[name]; v > old {
				d.Counters[name] = v - old
			} else {
				d.Counters[name] = 0
			}
		}
	}
	if len(s.Gauges) > 0 {
		d.Gauges = make(map[string]float64, len(s.Gauges))
		for name, v := range s.Gauges {
			d.Gauges[name] = v
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			old, ok := prev.Histograms[name]
			if !ok {
				d.Histograms[name] = h
				continue
			}
			diff := h
			if old.Count <= h.Count {
				diff.Count = h.Count - old.Count
			}
			diff.Counts = make([]uint64, len(h.Counts))
			for i, c := range h.Counts {
				if i < len(old.Counts) && old.Counts[i] <= c {
					diff.Counts[i] = c - old.Counts[i]
				} else {
					diff.Counts[i] = c
				}
			}
			if h.Sum >= old.Sum {
				diff.Sum = h.Sum - old.Sum
			}
			d.Histograms[name] = diff
		}
	}
	return d
}
