package primitives

import (
	"math"
	"testing"

	"sfcacd/internal/acd"
	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

func haloProfile() Profile {
	return Profile{Entries: []ProfileEntry{
		{Name: "halo", Run: RingExchange, Weight: 0.8},
		{Name: "reduce", Run: func(t topology.Topology) acd.Accumulator { return Reduce(t, 0) }, Weight: 0.2},
	}}
}

func TestProfileValidate(t *testing.T) {
	if err := haloProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Profile{}
	if bad.Validate() == nil {
		t.Error("empty profile accepted")
	}
	bad = Profile{Entries: []ProfileEntry{{Name: "x", Weight: 1}}}
	if bad.Validate() == nil {
		t.Error("nil Run accepted")
	}
	bad = Profile{Entries: []ProfileEntry{{Name: "x", Run: AllToAll, Weight: -1}}}
	if bad.Validate() == nil {
		t.Error("negative weight accepted")
	}
	bad = Profile{Entries: []ProfileEntry{{Name: "x", Run: AllToAll, Weight: 0}}}
	if bad.Validate() == nil {
		t.Error("zero total weight accepted")
	}
}

func TestProfileEvaluateWeightedMean(t *testing.T) {
	topo := topology.NewRing(16)
	p := haloProfile()
	got, err := p.Evaluate(topo)
	if err != nil {
		t.Fatal(err)
	}
	ring := RingExchange(topo).ACD()
	red := Reduce(topo, 0).ACD()
	want := 0.8*ring + 0.2*red
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Evaluate = %f, want %f", got, want)
	}
}

func TestProfileSingleEntryEqualsPrimitive(t *testing.T) {
	topo := topology.NewTorus(2, sfc.Hilbert)
	p := Profile{Entries: []ProfileEntry{{Name: "a2a", Run: AllToAll, Weight: 1}}}
	got, err := p.Evaluate(topo)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-AllToAll(topo).ACD()) > 1e-12 {
		t.Fatalf("single-entry profile %f != primitive %f", got, AllToAll(topo).ACD())
	}
}

func TestProfileBytesWeighting(t *testing.T) {
	// Doubling a phase's message size has the same effect as doubling
	// its weight.
	topo := topology.NewBus(16)
	base := Profile{Entries: []ProfileEntry{
		{Name: "x", Run: RingExchange, Weight: 1, BytesPerMessage: 2},
		{Name: "y", Run: AllToAll, Weight: 1, BytesPerMessage: 1},
	}}
	equiv := Profile{Entries: []ProfileEntry{
		{Name: "x", Run: RingExchange, Weight: 2},
		{Name: "y", Run: AllToAll, Weight: 1},
	}}
	a, err := base.Evaluate(topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := equiv.Evaluate(topo)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("bytes weighting %f != weight doubling %f", a, b)
	}
}

func TestProfileBest(t *testing.T) {
	p := Profile{Entries: []ProfileEntry{{Name: "ring", Run: RingExchange, Weight: 1}}}
	candidates := []topology.Topology{
		topology.NewMesh(3, sfc.RowMajor),
		topology.NewMesh(3, sfc.Hilbert),
	}
	best, scores, err := p.Best(candidates)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Fatalf("best = %d (scores %v); hilbert placement should win the ring exchange", best, scores)
	}
	if len(scores) != 2 || scores[1] >= scores[0] {
		t.Fatalf("scores %v", scores)
	}
	if _, _, err := p.Best(nil); err == nil {
		t.Error("empty candidates accepted")
	}
	badProfile := Profile{}
	if _, _, err := badProfile.Best(candidates); err == nil {
		t.Error("invalid profile accepted")
	}
}
