package sfc

import (
	"testing"

	"sfcacd/internal/geom"
)

func TestGrayNDMatches2DGray(t *testing.T) {
	g := GrayND{N: 2}
	const order = 4
	side := geom.Side(order)
	coords := make([]uint32, 2)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			coords[0], coords[1] = x, y
			want := Gray.Index(order, geom.Pt(x, y))
			if got := g.IndexND(order, coords); got != want {
				t.Fatalf("GrayND(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestRowMajorNDMatches2DTransposed(t *testing.T) {
	// RowMajorND{2} has the last coordinate fastest: index =
	// c0*side + c1, which matches the 2D rowmajor with (x, y) order.
	r := RowMajorND{N: 2}
	const order = 3
	side := geom.Side(order)
	coords := make([]uint32, 2)
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			coords[0], coords[1] = x, y
			want := RowMajor.Index(order, geom.Pt(x, y))
			if got := r.IndexND(order, coords); got != want {
				t.Fatalf("RowMajorND(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestNDExtraRoundTrip(t *testing.T) {
	for _, c := range []NDCurve{GrayND{N: 3}, RowMajorND{N: 3}, GrayND{N: 2}, RowMajorND{N: 4}} {
		for order := uint(1); order <= 3; order++ {
			total := uint64(1) << (uint(c.Dims()) * order)
			if total > 1<<13 {
				continue
			}
			out := make([]uint32, c.Dims())
			for d := uint64(0); d < total; d++ {
				c.CoordsND(order, d, out)
				if got := c.IndexND(order, out); got != d {
					t.Fatalf("%s: round trip %d -> %v -> %d", c.Name(), d, out, got)
				}
			}
		}
	}
}

func TestGrayNDSuccessiveCodesOneBitApart(t *testing.T) {
	// The defining Gray property in any dimension: consecutive cells'
	// Morton codes differ in exactly one bit.
	g := GrayND{N: 3}
	m := MortonND{N: 3}
	const order = 2
	out := make([]uint32, 3)
	var prev uint64
	for d := uint64(0); d < 1<<(3*order); d++ {
		g.CoordsND(order, d, out)
		code := m.IndexND(order, out)
		if d > 0 {
			diff := code ^ prev
			if diff == 0 || diff&(diff-1) != 0 {
				t.Fatalf("step %d: codes differ by %#x", d, diff)
			}
		}
		prev = code
	}
}

func TestAllND(t *testing.T) {
	curves := AllND(3)
	if len(curves) != 4 {
		t.Fatalf("AllND(3) has %d curves", len(curves))
	}
	names := map[string]bool{}
	for _, c := range curves {
		if c.Dims() != 3 {
			t.Errorf("%s has %d dims", c.Name(), c.Dims())
		}
		names[c.Name()] = true
	}
	for _, want := range []string{"hilbert3d", "morton3d", "gray3d", "rowmajor3d"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestNDExtraPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { RowMajorND{N: 2}.IndexND(3, []uint32{8, 0}) },         // coord out of range
		func() { RowMajorND{N: 2}.IndexND(3, []uint32{0}) },            // wrong count
		func() { RowMajorND{N: 2}.CoordsND(3, 64, make([]uint32, 2)) }, // index out of range
		func() { GrayND{N: 2}.CoordsND(3, 64, make([]uint32, 2)) },     // index out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
