package fmmmodel

import (
	"sync"

	"sfcacd/internal/acd"
	"sfcacd/internal/geom"
	"sfcacd/internal/obs"
	"sfcacd/internal/quadtree"
	"sfcacd/internal/topology"
)

// This file provides multi-topology evaluation: the communication
// event stream of an assignment does not depend on the network, so the
// paper's 4x4 SFC-combination tables (one particle order against four
// processor orders) can be computed with a single traversal per
// particle order, accumulating distances under every topology at once.

// NFIMulti computes the near-field accumulator of the assignment under
// each of the given topologies in one traversal.
func NFIMulti(a *acd.Assignment, topos []topology.Topology, opts NFIOptions) []acd.Accumulator {
	defer obs.StartSpan("accumulation.nfi").End()
	opts.normalize()
	n := a.N()
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	results := make(chan []acd.Accumulator, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			local := make([]acd.Accumulator, len(topos))
			for i := lo; i < hi; i++ {
				p := a.Particles[i]
				mine := int(a.Ranks[i])
				geom.VisitNeighborhood(p, opts.Radius, opts.Metric, a.Side(), func(q geom.Point) {
					if r := a.RankAt(q); r >= 0 {
						for t, topo := range topos {
							local[t].Add(topo.Distance(mine, int(r)))
						}
					}
				})
			}
			results <- local
		}(lo, hi)
	}
	total := make([]acd.Accumulator, len(topos))
	for w := 0; w < workers; w++ {
		local := <-results
		for t := range total {
			total[t].Merge(local[t])
		}
	}
	var queries uint64
	for t := range total {
		total[t].Record()
		queries += total[t].Count // one Distance call per event per topology
	}
	topology.CountDistanceQueries(queries)
	return total
}

// FFIMulti computes the far-field breakdown of the assignment under
// each of the given topologies, sharing one representative tree and
// one traversal of the interaction structure.
func FFIMulti(a *acd.Assignment, topos []topology.Topology, opts FFIOptions) []FFIResult {
	tree := quadtree.BuildRankTree(a.Order, a.Particles, a.Ranks)
	return FFIMultiFromTree(tree, topos, opts)
}

// FFIMultiFromTree is FFIMulti over a prebuilt representative tree.
func FFIMultiFromTree(tree *quadtree.RankTree, topos []topology.Topology, opts FFIOptions) []FFIResult {
	defer obs.StartSpan("accumulation.ffi").End()
	if opts.Workers <= 0 {
		opts.Workers = defaultWorkers()
	}
	res := make([]FFIResult, len(topos))
	for l := tree.Order; l >= 1; l-- {
		tree.VisitCells(l, func(x, y uint32, rep int32) {
			parentRep := tree.Rep(l-1, x/2, y/2)
			for t, topo := range topos {
				d := topo.Distance(int(rep), int(parentRep))
				res[t].Interpolation.Add(d)
				res[t].Anterpolation.Add(d)
			}
		})
	}
	for l := uint(2); l <= tree.Order; l++ {
		level := interactionLevelMulti(tree, topos, l, opts.Workers)
		for t := range res {
			res[t].InteractionList.Merge(level[t])
		}
	}
	for t := range res {
		res[t].record()
	}
	return res
}

func interactionLevelMulti(tree *quadtree.RankTree, topos []topology.Topology, level uint, workers int) []acd.Accumulator {
	side := geom.Side(level)
	if workers > int(side) {
		workers = int(side)
	}
	stripe := (int(side) + workers - 1) / workers
	var wg sync.WaitGroup
	results := make(chan []acd.Accumulator, workers)
	for w := 0; w < workers; w++ {
		yLo := uint32(w * stripe)
		yHi := yLo + uint32(stripe)
		if yHi > side {
			yHi = side
		}
		if yLo >= yHi {
			continue
		}
		wg.Add(1)
		go func(yLo, yHi uint32) {
			defer wg.Done()
			local := make([]acd.Accumulator, len(topos))
			for y := yLo; y < yHi; y++ {
				for x := uint32(0); x < side; x++ {
					rep := tree.Rep(level, x, y)
					if rep == -1 {
						continue
					}
					tree.InteractionList(level, x, y, func(_, _ uint32, other int32) {
						for t, topo := range topos {
							local[t].Add(topo.Distance(int(rep), int(other)))
						}
					})
				}
			}
			results <- local
		}(yLo, yHi)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	total := make([]acd.Accumulator, len(topos))
	for local := range results {
		for t := range total {
			total[t].Merge(local[t])
		}
	}
	return total
}
