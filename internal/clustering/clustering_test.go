package clustering

import (
	"testing"

	"sfcacd/internal/geom"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

func TestClustersFullGridIsOne(t *testing.T) {
	// The whole grid is one cluster under any bijective curve.
	for _, c := range sfc.Extended() {
		r := Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(7, 7)}
		if got := Clusters(c, 3, r); got != 1 {
			t.Errorf("%s: full grid clusters = %d", c.Name(), got)
		}
	}
}

func TestClustersSingleCell(t *testing.T) {
	for _, c := range sfc.Extended() {
		r := Rect{Lo: geom.Pt(3, 5), Hi: geom.Pt(3, 5)}
		if got := Clusters(c, 3, r); got != 1 {
			t.Errorf("%s: single cell clusters = %d", c.Name(), got)
		}
	}
}

func TestClustersRowMajorColumnQuery(t *testing.T) {
	// Under the paper's row-major (x-major) order, a full column
	// (fixed x) is one run; a full row (fixed y) is side runs.
	const order = 3
	side := geom.Side(order)
	col := Rect{Lo: geom.Pt(2, 0), Hi: geom.Pt(2, side-1)}
	if got := Clusters(sfc.RowMajor, order, col); got != 1 {
		t.Errorf("column query clusters = %d, want 1", got)
	}
	row := Rect{Lo: geom.Pt(0, 2), Hi: geom.Pt(side-1, 2)}
	if got := Clusters(sfc.RowMajor, order, row); got != int(side) {
		t.Errorf("row query clusters = %d, want %d", got, side)
	}
}

func TestClustersKnownHilbertQuadrant(t *testing.T) {
	// An aligned quadrant is a contiguous Hilbert (and Z, and Gray)
	// range: exactly one cluster.
	const order = 4
	half := geom.Side(order) / 2
	quad := Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(half-1, half-1)}
	for _, c := range []sfc.Curve{sfc.Hilbert, sfc.Morton, sfc.Gray} {
		if got := Clusters(c, order, quad); got != 1 {
			t.Errorf("%s: aligned quadrant clusters = %d", c.Name(), got)
		}
	}
}

func TestHilbertBeatsZCurveOnAverage(t *testing.T) {
	// The classical result (Jagadish 1990): Hilbert needs fewer
	// clusters than the Z-curve and Gray order for range queries —
	// the counterpoint to the paper's ANNS finding.
	const order = 6
	for _, qs := range []uint32{4, 8} {
		h := ExactAverageClusters(sfc.Hilbert, order, qs)
		z := ExactAverageClusters(sfc.Morton, order, qs)
		g := ExactAverageClusters(sfc.Gray, order, qs)
		if h >= z {
			t.Errorf("query %d: hilbert %f >= z %f", qs, h, z)
		}
		if h >= g {
			t.Errorf("query %d: hilbert %f >= gray %f", qs, h, g)
		}
	}
}

func TestAverageConvergesToExact(t *testing.T) {
	const order, qs = 5, 4
	exact := ExactAverageClusters(sfc.Hilbert, order, qs)
	est := AverageClusters(sfc.Hilbert, order, qs, 20000, rng.New(1))
	if diff := est - exact; diff > 0.1 || diff < -0.1 {
		t.Errorf("estimate %f vs exact %f", est, exact)
	}
}

func TestRandomQueryInBounds(t *testing.T) {
	r := rng.New(2)
	const order = 5
	for i := 0; i < 1000; i++ {
		q := RandomQuery(r, order, 7)
		if !q.Valid(order) {
			t.Fatalf("invalid query %v", q)
		}
		if q.Cells() != 49 {
			t.Fatalf("query cells = %d", q.Cells())
		}
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{Lo: geom.Pt(1, 2), Hi: geom.Pt(3, 5)}
	if !r.Valid(3) || r.Cells() != 12 {
		t.Fatalf("rect helpers wrong: valid=%v cells=%d", r.Valid(3), r.Cells())
	}
	bad := Rect{Lo: geom.Pt(5, 0), Hi: geom.Pt(3, 0)}
	if bad.Valid(3) {
		t.Error("inverted rect valid")
	}
	outside := Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(8, 0)}
	if outside.Valid(3) {
		t.Error("out-of-grid rect valid")
	}
}

func TestElongatedQueriesExposeRowMajor(t *testing.T) {
	// Under the paper's x-major order a wide horizontal window of
	// width w crosses w columns and is always exactly w runs, while
	// Hilbert keeps many of those columns contiguous. The transposed
	// window is the row-major best case (a single run).
	const order = 6
	r := rng.New(5)
	h := AverageClustersRect(sfc.Hilbert, order, 16, 1, 3000, r)
	rm := AverageClustersRect(sfc.RowMajor, order, 16, 1, 3000, r)
	if rm != 16 {
		t.Errorf("rowmajor wide query clusters %f, want exactly 16", rm)
	}
	if h >= rm {
		t.Errorf("hilbert wide query clusters %f >= rowmajor %f", h, rm)
	}
	// The transposed (1 x 16 vertical) window is a single run under
	// the column-scanning row-major order.
	if v := AverageClustersRect(sfc.RowMajor, order, 1, 16, 3000, r); v != 1 {
		t.Errorf("rowmajor tall query clusters %f, want 1", v)
	}
}

func TestRandomRectQueryBounds(t *testing.T) {
	r := rng.New(6)
	for i := 0; i < 500; i++ {
		q := RandomRectQuery(r, 5, 7, 3)
		if !q.Valid(5) || q.Cells() != 21 {
			t.Fatalf("bad rect %v", q)
		}
	}
}

func TestPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Clusters(sfc.Hilbert, 3, Rect{Lo: geom.Pt(4, 0), Hi: geom.Pt(2, 0)}) },
		func() { RandomQuery(rng.New(1), 3, 0) },
		func() { RandomQuery(rng.New(1), 3, 9) },
		func() { AverageClusters(sfc.Hilbert, 3, 2, 0, rng.New(1)) },
		func() { ExactAverageClusters(sfc.Hilbert, 3, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
