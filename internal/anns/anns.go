// Package anns implements the Average Nearest Neighbor Stretch metric
// of Xu and Tirthapura (IPDPS 2012) and the paper's generalization of
// it to larger neighborhood radii (§V).
//
// For a curve f over the 2^k x 2^k grid, the stretch of a spatial pair
// (p, q) is |f(p) - f(q)| / d(p, q): the multiplicative increase in
// distance as the pair is mapped into the linear order. ANNS averages
// the stretch over all pairs at Manhattan distance exactly 1; the
// radius-r generalization averages over all pairs within Manhattan
// distance r. The metric is application- and topology-independent.
//
// As the paper notes (§V), ANNS coincides with the near-field ACD when
// every cell of the resolution holds a particle, each particle lives
// on its own processor, and the processors form a bus in curve order.
package anns

import (
	"runtime"
	"sync"

	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
)

// Ball selects the neighborhood shape for the generalized stretch.
type Ball uint8

const (
	// ManhattanBall is the Xu-Tirthapura neighborhood ("points that are
	// separated by a Manhattan distance of 1") — the default.
	ManhattanBall Ball = iota
	// ChebyshevBall is the edge/corner (L∞) neighborhood, matching the
	// FMM near-field shape.
	ChebyshevBall
)

// geomMetric maps the ball to the shared geometry metric.
func (b Ball) geomMetric() geom.Metric {
	if b == ChebyshevBall {
		return geom.MetricChebyshev
	}
	return geom.MetricManhattan
}

// Options configures the stretch computation.
type Options struct {
	// Radius is the neighborhood radius (default 1 = classic ANNS).
	Radius int
	// Ball selects the neighborhood shape (default ManhattanBall).
	Ball Ball
	// Workers caps the worker goroutines; 0 means GOMAXPROCS.
	Workers int
}

func (o *Options) normalize() {
	if o.Radius == 0 {
		o.Radius = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Result carries the averaged stretch and the pair count it averages.
type Result struct {
	// Mean is the average stretch over all counted pairs.
	Mean float64
	// Pairs is the number of unordered pairs counted.
	Pairs uint64
}

// Stretch computes the (generalized) average nearest neighbor stretch
// of a curve at the given resolution order. Every unordered pair of
// grid points within the configured radius is counted exactly once.
func Stretch(c sfc.Curve, order uint, opts Options) Result {
	opts.normalize()
	metric := opts.Ball.geomMetric()
	side := geom.Side(order)
	// Precompute the linear index of every cell.
	idx := make([]uint64, geom.Cells(order))
	for y := uint32(0); y < side; y++ {
		for x := uint32(0); x < side; x++ {
			p := geom.Pt(x, y)
			idx[geom.CellID(p, side)] = c.Index(order, p)
		}
	}
	workers := opts.Workers
	if workers > int(side) {
		workers = int(side)
	}
	stripe := (int(side) + workers - 1) / workers
	type partial struct {
		sum   float64
		pairs uint64
	}
	results := make(chan partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		yLo := uint32(w * stripe)
		yHi := yLo + uint32(stripe)
		if yHi > side {
			yHi = side
		}
		if yLo >= yHi {
			continue
		}
		wg.Add(1)
		go func(yLo, yHi uint32) {
			defer wg.Done()
			var local partial
			for y := yLo; y < yHi; y++ {
				for x := uint32(0); x < side; x++ {
					p := geom.Pt(x, y)
					pi := idx[geom.CellID(p, side)]
					geom.VisitNeighborhood(p, opts.Radius, metric, side, func(q geom.Point) {
						// Count each unordered pair once: only the
						// lexicographically later endpoint tallies it.
						if q.Y > p.Y || (q.Y == p.Y && q.X > p.X) {
							return
						}
						qi := idx[geom.CellID(q, side)]
						var gap uint64
						if pi > qi {
							gap = pi - qi
						} else {
							gap = qi - pi
						}
						local.sum += float64(gap) / float64(metric.Dist(p, q))
						local.pairs++
					})
				}
			}
			results <- local
		}(yLo, yHi)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	var sum float64
	var pairs uint64
	for r := range results {
		sum += r.sum
		pairs += r.pairs
	}
	if pairs == 0 {
		return Result{}
	}
	return Result{Mean: sum / float64(pairs), Pairs: pairs}
}

// NearestNeighborPairs returns the number of unordered Manhattan-
// distance-1 pairs on a side x side grid: 2*side*(side-1). Used to
// validate pair counting.
func NearestNeighborPairs(side uint32) uint64 {
	return 2 * uint64(side) * uint64(side-1)
}

// RowMajorExact returns the exact classic ANNS (r=1, Manhattan) of the
// row-major curve on a 2^order grid: vertical neighbor pairs stretch 1,
// horizontal pairs stretch 2^order, in equal numbers — the closed form
// (side+1)/2 that Xu and Tirthapura's analysis yields. Used as an
// analytic cross-check of the empirical machinery.
func RowMajorExact(order uint) float64 {
	side := float64(geom.Side(order))
	return (side + 1) / 2
}
