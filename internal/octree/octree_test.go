package octree

import (
	"testing"

	"sfcacd/internal/geom3"
)

func TestBuildRankTreeMinRank(t *testing.T) {
	pts := []geom3.Point3{
		geom3.Pt3(0, 0, 0), geom3.Pt3(1, 1, 1), // lower octant
		geom3.Pt3(3, 0, 0), // +x octant
		geom3.Pt3(3, 3, 3), // far octant
	}
	ranks := []int32{4, 2, 7, 1}
	tr := BuildRankTree(2, pts, ranks)
	if got := tr.Rep(2, geom3.Pt3(0, 0, 0)); got != 4 {
		t.Errorf("finest rep = %d", got)
	}
	if got := tr.Rep(2, geom3.Pt3(2, 2, 2)); got != -1 {
		t.Errorf("empty cell rep = %d", got)
	}
	if got := tr.Rep(1, geom3.Pt3(0, 0, 0)); got != 2 {
		t.Errorf("lower octant rep = %d, want 2", got)
	}
	if got := tr.Rep(1, geom3.Pt3(1, 0, 0)); got != 7 {
		t.Errorf("+x octant rep = %d, want 7", got)
	}
	if got := tr.Rep(0, geom3.Pt3(0, 0, 0)); got != 1 {
		t.Errorf("root rep = %d, want 1", got)
	}
}

func TestNonEmptyAndVisit(t *testing.T) {
	pts := []geom3.Point3{geom3.Pt3(0, 0, 0), geom3.Pt3(7, 7, 7), geom3.Pt3(3, 4, 5)}
	tr := BuildRankTree(3, pts, []int32{0, 1, 2})
	if tr.NonEmpty(3) != 3 || tr.NonEmpty(0) != 1 {
		t.Fatalf("NonEmpty: %d, %d", tr.NonEmpty(3), tr.NonEmpty(0))
	}
	count := 0
	tr.VisitCells(3, func(p geom3.Point3, rep int32) {
		count++
		if rep == -1 {
			t.Error("visited empty cell")
		}
	})
	if count != 3 {
		t.Fatalf("visited %d", count)
	}
}

func TestInteractionListGeometry(t *testing.T) {
	// Fill a 4x4x4 level; a corner cell's interaction list holds every
	// cell outside its own octant: 64 - 8 = 56; an interior-ish cell
	// excludes its 3x3x3 Chebyshev ball.
	var pts []geom3.Point3
	var ranks []int32
	for z := uint32(0); z < 4; z++ {
		for y := uint32(0); y < 4; y++ {
			for x := uint32(0); x < 4; x++ {
				pts = append(pts, geom3.Pt3(x, y, z))
				ranks = append(ranks, int32(len(ranks)))
			}
		}
	}
	tr := BuildRankTree(2, pts, ranks)
	count := 0
	tr.InteractionList(2, geom3.Pt3(0, 0, 0), func(q geom3.Point3, _ int32) {
		count++
		if q.X < 2 && q.Y < 2 && q.Z < 2 {
			t.Fatalf("own-octant cell %v in corner list", q)
		}
	})
	if count != 56 {
		t.Fatalf("corner list has %d cells, want 56", count)
	}
	// Cell (2,1,1): all 64 cells minus its 27-cell Chebyshev ball = 37.
	count = 0
	tr.InteractionList(2, geom3.Pt3(2, 1, 1), func(q geom3.Point3, _ int32) {
		count++
		if geom3.Chebyshev(q, geom3.Pt3(2, 1, 1)) <= 1 {
			t.Fatalf("adjacent cell %v in list", q)
		}
	})
	if count != 37 {
		t.Fatalf("interior list has %d cells, want 37", count)
	}
}

func TestInteractionListMatchesBruteForce(t *testing.T) {
	var pts []geom3.Point3
	var ranks []int32
	// Sparse occupancy.
	for i := uint32(0); i < 8; i++ {
		pts = append(pts, geom3.Pt3(i, (i*3)%8, (i*5)%8))
		ranks = append(ranks, int32(i))
	}
	tr := BuildRankTree(3, pts, ranks)
	for level := uint(2); level <= 3; level++ {
		side := geom3.Side(level)
		for z := uint32(0); z < side; z++ {
			for y := uint32(0); y < side; y++ {
				for x := uint32(0); x < side; x++ {
					p := geom3.Pt3(x, y, z)
					got := map[geom3.Point3]bool{}
					tr.InteractionList(level, p, func(q geom3.Point3, _ int32) { got[q] = true })
					// Brute force: well separated, parents adjacent,
					// occupied.
					want := map[geom3.Point3]bool{}
					for qz := uint32(0); qz < side; qz++ {
						for qy := uint32(0); qy < side; qy++ {
							for qx := uint32(0); qx < side; qx++ {
								q := geom3.Pt3(qx, qy, qz)
								if geom3.Chebyshev(p, q) <= 1 {
									continue
								}
								pp := geom3.Pt3(p.X/2, p.Y/2, p.Z/2)
								qp := geom3.Pt3(q.X/2, q.Y/2, q.Z/2)
								if geom3.Chebyshev(pp, qp) > 1 {
									continue
								}
								if tr.Rep(level, q) != -1 {
									want[q] = true
								}
							}
						}
					}
					if len(got) != len(want) {
						t.Fatalf("level %d cell %v: %d members, want %d", level, p, len(got), len(want))
					}
					for q := range want {
						if !got[q] {
							t.Fatalf("missing member %v", q)
						}
					}
				}
			}
		}
	}
}

func TestInteractionListLowLevelsEmpty(t *testing.T) {
	tr := BuildRankTree(2, []geom3.Point3{geom3.Pt3(0, 0, 0)}, []int32{0})
	for level := uint(0); level < 2; level++ {
		tr.InteractionList(level, geom3.Pt3(0, 0, 0), func(geom3.Point3, int32) {
			t.Fatalf("level %d yielded members", level)
		})
	}
}

func TestPanics(t *testing.T) {
	tr := BuildRankTree(2, []geom3.Point3{geom3.Pt3(0, 0, 0)}, []int32{0})
	for i, fn := range []func(){
		func() { BuildRankTree(2, []geom3.Point3{geom3.Pt3(0, 0, 0)}, nil) },
		func() { tr.Rep(3, geom3.Pt3(0, 0, 0)) },
		func() { tr.Rep(1, geom3.Pt3(2, 0, 0)) },
		func() { tr.InteractionList(2, geom3.Pt3(4, 0, 0), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
