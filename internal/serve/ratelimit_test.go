package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRateLimiterBucket pins the token-bucket math with a fake clock:
// burst admits, exhaustion denies with an accurate Retry-After, and
// elapsed time refills at the configured rate.
func TestRateLimiterBucket(t *testing.T) {
	l := NewRateLimiter(1, 2) // 1 token/s, burst 2
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c", 1); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := l.Allow("c", 1)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry != time.Second {
		t.Errorf("retry = %v, want 1s (one token at 1/s)", retry)
	}

	now = now.Add(1500 * time.Millisecond)
	if ok, _ := l.Allow("c", 1); !ok {
		t.Error("request after refill denied")
	}
	// 0.5 tokens remain: a two-token spend needs 1.5s more.
	ok, retry = l.Allow("c", 2)
	if ok || retry != 1500*time.Millisecond {
		t.Errorf("Allow(2) = %v retry %v, want denied with 1.5s", ok, retry)
	}

	// Clients are isolated: a fresh client starts with a full bucket.
	if ok, _ := l.Allow("other", 2); !ok {
		t.Error("fresh client denied its burst")
	}
}

func TestRateLimiterUnlimited(t *testing.T) {
	if l := NewRateLimiter(0, 0); l != nil {
		t.Fatal("rate 0 should return the nil (unlimited) limiter")
	}
	var l *RateLimiter
	if ok, _ := l.Allow("anyone", 1000); !ok {
		t.Error("nil limiter denied")
	}
}

func TestRateLimiterEviction(t *testing.T) {
	l := NewRateLimiter(1, 1)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < maxTrackedClients+10; i++ {
		l.Allow(fmt.Sprintf("c%d", i), 1)
	}
	if len(l.clients) != maxTrackedClients {
		t.Errorf("tracking %d clients, want bound %d", len(l.clients), maxTrackedClients)
	}
	// The oldest client was evicted and restarts with a full bucket.
	if ok, _ := l.Allow("c0", 1); !ok {
		t.Error("evicted client did not restart with a full bucket")
	}
}

// TestHandlerRateLimit pins the middleware: per-client 429 with
// Retry-After, X-Client-Id separation, and the fleet-forwarded bypass.
func TestHandlerRateLimit(t *testing.T) {
	s := New(Options{Workers: 1, RateLimit: 0.001, RateBurst: 2})
	h := NewHandler(s)

	for i := 0; i < 2; i++ {
		if rec := postExperiment(t, h, "/v1/experiments/table12", tinyBody); rec.Code != http.StatusOK {
			t.Fatalf("request %d status %d: %s", i, rec.Code, rec.Body)
		}
	}
	rec := postExperiment(t, h, "/v1/experiments/table12", tinyBody)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request beyond burst status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// A different client has its own bucket.
	req := newRequest(t, "/v1/experiments/table12", tinyBody)
	req.Header.Set(HeaderClientID, "other-client")
	if rec := doRequest(h, req); rec.Code != http.StatusOK {
		t.Errorf("distinct client status %d, want 200", rec.Code)
	}

	// Fleet-internal traffic is never limited.
	req = newRequest(t, "/v1/experiments/table12", tinyBody)
	req.Header.Set(HeaderFleetForwarded, "1")
	if rec := doRequest(h, req); rec.Code != http.StatusOK {
		t.Errorf("forwarded request status %d, want 200 (bypass)", rec.Code)
	}

	// Non-API paths are never limited.
	if rec := doRequest(h, httptest.NewRequest(http.MethodGet, "/healthz", nil)); rec.Code != http.StatusOK {
		t.Errorf("/healthz status %d under rate limiting", rec.Code)
	}
}

// TestHandlerRateLimitBatchCost pins that a batch draws one token per
// cell: a 3-cell sweep cannot pass on a 2-token budget.
func TestHandlerRateLimitBatchCost(t *testing.T) {
	s := New(Options{Workers: 1, RateLimit: 0.001, RateBurst: 2})
	h := NewHandler(s)
	rec := postExperiment(t, h, "/v1/batch", `{"experiments":["table12"],
		"params":{"Particles":400,"Order":5,"ProcOrder":2,"Trials":1},
		"sweep":{"Seed":[1,2,3]}}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("3-cell batch on 2-token budget: status %d, want 429 (body %s)", rec.Code, rec.Body)
	}
}
