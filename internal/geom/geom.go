// Package geom provides the small geometric vocabulary shared by the
// rest of the library: integer cell coordinates on a 2^k x 2^k spatial
// resolution, the distance functions used by the ACD and ANNS metrics,
// and neighborhood iterators.
//
// Throughout the library a "spatial resolution" of order k is the square
// grid of side 2^k whose cells are addressed by (X, Y) with
// 0 <= X, Y < 2^k. Particles occupy cells; the paper assumes at most one
// particle per cell at the finest resolution.
package geom

import "fmt"

// Point is a cell coordinate on the spatial resolution grid.
type Point struct {
	X, Y uint32
}

// String renders the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Pt is a concise Point constructor.
func Pt(x, y uint32) Point { return Point{X: x, Y: y} }

// absDiff returns |a-b| for unsigned coordinates without conversion
// hazards.
func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// Manhattan returns the L1 (taxicab) distance between two points. The
// ANNS metric of Xu and Tirthapura defines spatial adjacency in terms of
// Manhattan distance.
func Manhattan(a, b Point) int {
	return int(absDiff(a.X, b.X)) + int(absDiff(a.Y, b.Y))
}

// Chebyshev returns the L∞ distance between two points. The FMM
// near-field neighborhood of radius r is the Chebyshev ball: for r=1 it
// is the 8 cells sharing an edge or corner, matching the paper's bound.
func Chebyshev(a, b Point) int {
	dx := absDiff(a.X, b.X)
	dy := absDiff(a.Y, b.Y)
	if dx > dy {
		return int(dx)
	}
	return int(dy)
}

// EuclideanSq returns the squared Euclidean distance between two points.
func EuclideanSq(a, b Point) int {
	dx := int(absDiff(a.X, b.X))
	dy := int(absDiff(a.Y, b.Y))
	return dx*dx + dy*dy
}

// Metric identifies which spatial distance defines a neighborhood.
type Metric uint8

const (
	// MetricChebyshev selects the L∞ ball (edge/corner adjacency).
	MetricChebyshev Metric = iota
	// MetricManhattan selects the L1 ball.
	MetricManhattan
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricChebyshev:
		return "chebyshev"
	case MetricManhattan:
		return "manhattan"
	default:
		return fmt.Sprintf("metric(%d)", uint8(m))
	}
}

// Dist returns the metric's distance between two points.
func (m Metric) Dist(a, b Point) int {
	if m == MetricManhattan {
		return Manhattan(a, b)
	}
	return Chebyshev(a, b)
}

// Side returns the side length 2^k of a resolution of order k.
func Side(order uint) uint32 {
	if order > 31 {
		panic(fmt.Sprintf("geom: resolution order %d exceeds 31", order))
	}
	return uint32(1) << order
}

// Cells returns the total number of cells 4^k of a resolution of order k.
func Cells(order uint) uint64 {
	return uint64(Side(order)) * uint64(Side(order))
}

// InBounds reports whether (x, y) lies on the grid of the given side,
// accepting signed inputs so window scans can probe outside the grid.
func InBounds(x, y int, side uint32) bool {
	return x >= 0 && y >= 0 && x < int(side) && y < int(side)
}

// CellID flattens a point to a row-major cell identifier on a grid of
// the given side. It is the canonical dense-array index for occupancy
// grids and is unrelated to any space-filling curve order.
func CellID(p Point, side uint32) uint64 {
	return uint64(p.Y)*uint64(side) + uint64(p.X)
}

// PointOfCellID inverts CellID.
func PointOfCellID(id uint64, side uint32) Point {
	return Point{X: uint32(id % uint64(side)), Y: uint32(id / uint64(side))}
}

// VisitNeighborhood calls fn for every grid point q != p with
// m.Dist(p, q) <= r, staying within the grid of the given side. The
// visit order is deterministic (window row-major).
func VisitNeighborhood(p Point, r int, m Metric, side uint32, fn func(q Point)) {
	if r <= 0 {
		return
	}
	for dy := -r; dy <= r; dy++ {
		y := int(p.Y) + dy
		if y < 0 || y >= int(side) {
			continue
		}
		span := r
		if m == MetricManhattan {
			span = r - abs(dy)
		}
		for dx := -span; dx <= span; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			x := int(p.X) + dx
			if x < 0 || x >= int(side) {
				continue
			}
			fn(Point{X: uint32(x), Y: uint32(y)})
		}
	}
}

// VisitUpperNeighborhood calls fn for every grid point q with
// m.Dist(p, q) <= r that follows p in row-major order (greater Y, or
// equal Y and greater X). The near-field relation is symmetric, so the
// upper visits of all points partition the full neighborhood visits
// into unordered pairs: every pair {p, q} within radius r is seen
// exactly once, from its row-major-lower endpoint. Callers that need
// the ordered stream count each visit twice.
func VisitUpperNeighborhood(p Point, r int, m Metric, side uint32, fn func(q Point)) {
	if r <= 0 {
		return
	}
	for dy := 0; dy <= r; dy++ {
		y := int(p.Y) + dy
		if y >= int(side) {
			break
		}
		span := r
		if m == MetricManhattan {
			span = r - dy
		}
		lo := -span
		if dy == 0 {
			lo = 1
		}
		for dx := lo; dx <= span; dx++ {
			x := int(p.X) + dx
			if x < 0 || x >= int(side) {
				continue
			}
			fn(Point{X: uint32(x), Y: uint32(y)})
		}
	}
}

// NeighborhoodSize returns the number of grid points q != p within
// distance r of p under metric m on an unbounded grid. Useful for
// validating iterators and sizing buffers.
func NeighborhoodSize(r int, m Metric) int {
	if r <= 0 {
		return 0
	}
	if m == MetricManhattan {
		// |B1(r)| = 2r^2 + 2r + 1 including the center.
		return 2*r*r + 2*r
	}
	side := 2*r + 1
	return side*side - 1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
