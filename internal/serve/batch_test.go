package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sfcacd/internal/experiments"
)

// TestExpandBatch pins the cell ordering contract: experiment-major,
// sweep fields in sorted name order, the last field varying fastest.
func TestExpandBatch(t *testing.T) {
	cells, err := expandBatch(BatchRequest{
		Experiments: []string{"table12", "fig6"},
		Params:      json.RawMessage(`{"Particles":400,"Order":5,"ProcOrder":2,"Trials":1}`),
		Sweep: map[string][]json.RawMessage{
			"Seed":   {json.RawMessage(`1`), json.RawMessage(`2`)},
			"Radius": {json.RawMessage(`1`), json.RawMessage(`2`)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("expanded %d cells, want 8", len(cells))
	}
	// Sorted fields: Radius before Seed; Seed varies fastest.
	wantOrder := []struct {
		experiment string
		radius     int
		seed       uint64
	}{
		{"table12", 1, 1}, {"table12", 1, 2}, {"table12", 2, 1}, {"table12", 2, 2},
		{"fig6", 1, 1}, {"fig6", 1, 2}, {"fig6", 2, 1}, {"fig6", 2, 2},
	}
	for i, want := range wantOrder {
		c := cells[i]
		if c.experiment != want.experiment || c.params.Radius != want.radius || c.params.Seed != want.seed {
			t.Errorf("cell %d = %s radius=%d seed=%d, want %s radius=%d seed=%d",
				i, c.experiment, c.params.Radius, c.params.Seed, want.experiment, want.radius, want.seed)
		}
		if c.params.Particles != 400 {
			t.Errorf("cell %d lost the shared params override", i)
		}
	}
}

func TestExpandBatchErrors(t *testing.T) {
	cases := []struct {
		name string
		req  BatchRequest
		want string
	}{
		{"no experiments", BatchRequest{}, "experiments list is empty"},
		{"unknown experiment", BatchRequest{Experiments: []string{"nonesuch"}}, "unknown experiment"},
		{"empty sweep field", BatchRequest{
			Experiments: []string{"table12"},
			Sweep:       map[string][]json.RawMessage{"Seed": {}},
		}, "has no values"},
		{"unknown sweep field", BatchRequest{
			Experiments: []string{"table12"},
			Sweep:       map[string][]json.RawMessage{"Sead": {json.RawMessage(`1`)}},
		}, "bad sweep value"},
		{"invalid cell", BatchRequest{
			Experiments: []string{"table12"},
			Sweep:       map[string][]json.RawMessage{"Trials": {json.RawMessage(`-1`)}},
		}, "cell 0"},
		{"too many cells", BatchRequest{
			Experiments: []string{"table12"},
			Sweep: map[string][]json.RawMessage{
				"Seed": make([]json.RawMessage, maxBatchCells+1),
			},
		}, "exceed"},
	}
	for i := range cases[5].req.Sweep["Seed"] {
		cases[5].req.Sweep["Seed"][i] = json.RawMessage(`1`)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := expandBatch(tc.req)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestBatchSSEStreamsIncrementally proves completions stream before
// the batch finishes: cell seeds 1 and 2 run concurrently, seed 2 is
// gated until the client has read seed 1's event off the wire.
func TestBatchSSEStreamsIncrementally(t *testing.T) {
	s := New(Options{Workers: 2})
	gate := make(chan struct{})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		if p.Seed == 2 {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return fakeOutput(p), nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	body := `{"experiments":["table12"],
		"params":{"Particles":400,"Order":5,"ProcOrder":2,"Trials":1},
		"sweep":{"Seed":[1,2]},"workers":2}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}

	// readEvent consumes one "event:"/"data:" frame.
	sc := bufio.NewScanner(resp.Body)
	readEvent := func() (string, []byte) {
		t.Helper()
		var name string
		var data []byte
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = []byte(strings.TrimPrefix(line, "data: "))
			case line == "" && name != "":
				return name, data
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return "", nil
	}

	// The first event arrives while cell seed=2 is still gated — that
	// is the incrementality proof.
	name, data := readEvent()
	if name != "cell" {
		t.Fatalf("first event %q, want cell", name)
	}
	var first CellEvent
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cell != 0 || first.Error != "" {
		t.Errorf("first event = %+v, want cell 0 without error", first)
	}
	close(gate)

	name, data = readEvent()
	var second CellEvent
	if name != "cell" || json.Unmarshal(data, &second) != nil || second.Cell != 1 {
		t.Fatalf("second event %q %s, want cell 1", name, data)
	}
	name, data = readEvent()
	if name != "done" {
		t.Fatalf("third event %q, want done", name)
	}
	var sum BatchSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Cells != 2 || sum.Errors != 0 || sum.Cache["miss"] != 2 {
		t.Errorf("summary = %+v, want 2 miss cells", sum)
	}
}

// TestBatchNDJSON pins the Accept-negotiated line-delimited framing
// and that per-cell failures surface as error events, not stream
// aborts.
func TestBatchNDJSON(t *testing.T) {
	s := New(Options{Workers: 1})
	s.runFn = func(ctx context.Context, spec experiments.Spec, p experiments.Params) (*experiments.Output, error) {
		if p.Seed == 2 {
			return nil, context.DeadlineExceeded
		}
		return fakeOutput(p), nil
	}
	h := NewHandler(s)

	req := newRequest(t, "/v1/batch", `{"experiments":["table12"],
		"params":{"Particles":400,"Order":5,"ProcOrder":2,"Trials":1},
		"sweep":{"Seed":[1,2]},"workers":1}`)
	req.Header.Set("Accept", "application/x-ndjson")
	rec := doRequest(h, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("streamed %d lines, want 3: %q", len(lines), lines)
	}
	var ev0, ev1 CellEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev1); err != nil {
		t.Fatal(err)
	}
	if ev0.Type != "cell" || ev0.Error != "" || ev0.Cache != "miss" {
		t.Errorf("cell 0 = %+v, want clean miss", ev0)
	}
	if ev1.Type != "cell" || ev1.Error == "" || ev1.Cache != "error" {
		t.Errorf("cell 1 = %+v, want an error event", ev1)
	}
	var sum BatchSummary
	if err := json.Unmarshal([]byte(lines[2]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Type != "done" || sum.Cells != 2 || sum.Errors != 1 {
		t.Errorf("summary = %+v, want 2 cells 1 error", sum)
	}
}

// TestBatchBadRequest pins that expansion problems fail the whole
// batch as a 400 before any streaming starts.
func TestBatchBadRequest(t *testing.T) {
	h := NewHandler(New(Options{Workers: 1}))
	rec := postExperiment(t, h, "/v1/batch", `{"experiments":[]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	rec = postExperiment(t, h, "/v1/batch", `{"experiments":["table12"],"nope":1}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field status %d, want 400", rec.Code)
	}
}
