package experiments

import (
	"context"
	"sfcacd/internal/acd"
	"sfcacd/internal/dist"
	"sfcacd/internal/execmodel"
	"sfcacd/internal/fmmmodel"
	"sfcacd/internal/geom"
	"sfcacd/internal/sfc"
	"sfcacd/internal/tablefmt"
	"sfcacd/internal/topology"
)

// ExecModelResult holds the ACD-validation study: per curve, the NFI
// ACD alongside the bulk-synchronous modeled makespan and total cost,
// so the correlation the ACD metric promises can be inspected
// directly.
type ExecModelResult struct {
	Curves []string
	// ACD is the plain near-field ACD.
	ACD []float64
	// Makespan is max over processors of alpha*sends + beta*hops +
	// gamma*work.
	Makespan []float64
	// MaxSends is the message count of the busiest processor.
	MaxSends []float64
}

// Matrix renders the study.
func (r ExecModelResult) Matrix() *tablefmt.Matrix {
	m := &tablefmt.Matrix{
		Title:  "ACD vs modeled execution time (NFI, torus)",
		Corner: "SFC",
		Cols:   []string{"ACD", "makespan", "max sends"},
		Rows:   r.Curves,
	}
	for i := range r.Curves {
		m.Cells = append(m.Cells, []float64{r.ACD[i], r.Makespan[i], r.MaxSends[i]})
	}
	return m
}

// RunExecModel computes ACD and modeled makespan per curve for a
// uniform input on a torus with the default cost parameters.
func RunExecModel(ctx context.Context, p Params) (ExecModelResult, error) {
	if err := p.Validate(); err != nil {
		return ExecModelResult{}, err
	}
	curves := sfc.All()
	n := len(curves)
	res := ExecModelResult{
		Curves:   curveNames(curves),
		ACD:      make([]float64, n),
		Makespan: make([]float64, n),
		MaxSends: make([]float64, n),
	}
	for trial := 0; trial < p.Trials; trial++ {
		pts, err := samplePoints(dist.Uniform, p, trial)
		if err != nil {
			return ExecModelResult{}, err
		}
		for c, curve := range curves {
			if err := ctx.Err(); err != nil {
				return ExecModelResult{}, err
			}
			a, err := acd.Assign(pts, curve, p.Order, p.P())
			if err != nil {
				return ExecModelResult{}, err
			}
			topo := topology.NewTorus(p.ProcOrder, curve)
			opts := fmmmodel.NFIOptions{Radius: p.Radius, Metric: geom.MetricChebyshev}
			tally := execmodel.CollectNFI(a, topo, opts)
			ms, err := tally.Makespan(execmodel.DefaultCost)
			if err != nil {
				return ExecModelResult{}, err
			}
			var maxSends uint64
			for _, s := range tally.Sends {
				if s > maxSends {
					maxSends = s
				}
			}
			f := 1 / float64(p.Trials)
			res.ACD[c] += fmmmodel.NFI(a, topo, opts).ACD() * f
			res.Makespan[c] += ms * f
			res.MaxSends[c] += float64(maxSends) * f
		}
	}
	return res, nil
}
