package partition

import "testing"

func TestChunksPartition(t *testing.T) {
	cases := []struct{ n, p int }{
		{10, 3}, {10, 10}, {10, 1}, {7, 4}, {100, 7}, {5, 8}, {1, 1}, {250000, 65536},
	}
	for _, c := range cases {
		// Starts/Ends tile [0, n) exactly.
		pos := 0
		for r := 0; r < c.p; r++ {
			if Start(r, c.n, c.p) != pos {
				t.Fatalf("n=%d p=%d: Start(%d) = %d, want %d", c.n, c.p, r, Start(r, c.n, c.p), pos)
			}
			pos = End(r, c.n, c.p)
			if s := Size(r, c.n, c.p); s != End(r, c.n, c.p)-Start(r, c.n, c.p) {
				t.Fatalf("Size inconsistent at r=%d", r)
			}
		}
		if pos != c.n {
			t.Fatalf("n=%d p=%d: chunks end at %d", c.n, c.p, pos)
		}
	}
}

func TestChunkSizesBalanced(t *testing.T) {
	for _, c := range []struct{ n, p int }{{10, 3}, {17, 5}, {100, 7}, {250000, 65536}} {
		min, max := c.n, 0
		for r := 0; r < c.p; r++ {
			s := Size(r, c.n, c.p)
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d p=%d: chunk sizes range [%d,%d]", c.n, c.p, min, max)
		}
	}
}

func TestChunkOfInverse(t *testing.T) {
	for _, c := range []struct{ n, p int }{{10, 3}, {10, 10}, {7, 4}, {97, 13}, {5, 8}} {
		for j := 0; j < c.n; j++ {
			r := ChunkOf(j, c.n, c.p)
			if j < Start(r, c.n, c.p) || j >= End(r, c.n, c.p) {
				t.Fatalf("n=%d p=%d: ChunkOf(%d) = %d but range is [%d,%d)",
					c.n, c.p, j, r, Start(r, c.n, c.p), End(r, c.n, c.p))
			}
		}
	}
}

func TestChunkOfMonotone(t *testing.T) {
	const n, p = 97, 13
	prev := 0
	for j := 0; j < n; j++ {
		r := ChunkOf(j, n, p)
		if r < prev {
			t.Fatalf("ChunkOf not monotone at %d: %d < %d", j, r, prev)
		}
		prev = r
	}
	if prev != p-1 {
		t.Fatalf("last element in chunk %d, want %d", prev, p-1)
	}
}

func TestChunkOfPanics(t *testing.T) {
	for _, bad := range [][3]int{{-1, 10, 2}, {10, 10, 2}, {0, 0, 2}, {0, 10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChunkOf(%v) did not panic", bad)
				}
			}()
			ChunkOf(bad[0], bad[1], bad[2])
		}()
	}
}

func TestMoreProcessorsThanElements(t *testing.T) {
	// n=5, p=8: some chunks are empty; elements must still map to
	// distinct increasing ranks.
	const n, p = 5, 8
	for j := 0; j < n; j++ {
		r := ChunkOf(j, n, p)
		if r < 0 || r >= p {
			t.Fatalf("ChunkOf(%d) = %d out of range", j, r)
		}
	}
}
