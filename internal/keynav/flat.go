package keynav

// Flat is a standalone single-level occupancy index: sorted
// (key, rank) pairs searched through a radix directory. It serves key
// spaces outside Index's 2D Morton hierarchy — the 3D model feeds it
// sfc.Morton3Key values to replace its per-neighbor map lookups.
type Flat struct {
	lv level
}

// NewFlat builds a flat index over parallel key/rank slices whose keys
// occupy at most keyBits low bits. The slices are taken over (and
// sorted in place when not already sorted); the caller must not reuse
// them.
func NewFlat(keys []uint64, ranks []int32, keyBits uint) *Flat {
	if len(keys) != len(ranks) {
		panic("keynav: keys and ranks length mismatch")
	}
	sorted := true
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			sorted = false
			break
		}
	}
	if !sorted {
		sortPairs(keys, ranks, keyBits)
	}
	f := &Flat{}
	f.lv.keys, f.lv.reps = keys, ranks
	f.lv.buildDir(keyBits)
	return f
}

// Rank returns the rank stored for key k, or -1 if absent.
func (f *Flat) Rank(k uint64) int32 {
	if i := f.lv.find(k); i >= 0 {
		return f.lv.reps[i]
	}
	return -1
}

// N returns the number of indexed keys.
func (f *Flat) N() int { return len(f.lv.keys) }
