package primitives

import (
	"testing"

	"sfcacd/internal/sfc"
	"sfcacd/internal/topology"
)

func TestBroadcastEventCount(t *testing.T) {
	// A binomial broadcast to p processors has exactly p-1 sends.
	for _, p := range []int{1, 2, 3, 5, 8, 16, 17, 64} {
		topo := topology.NewBus(p)
		res := Broadcast(topo, 0)
		if res.Count != uint64(p-1) {
			t.Errorf("p=%d: %d events, want %d", p, res.Count, p-1)
		}
	}
}

func TestBroadcastOnBusKnownSum(t *testing.T) {
	// Bus of 8, root 0: rounds send 0->1 (1), 0->2,1->3 (2+2),
	// 0->4,1->5,2->6,3->7 (4*4) -> sum 21.
	res := Broadcast(topology.NewBus(8), 0)
	if res.Sum != 21 || res.Count != 7 {
		t.Fatalf("bus broadcast = %+v", res)
	}
}

func TestBroadcastHypercubeOptimal(t *testing.T) {
	// On the hypercube the binomial tree maps perfectly: every send is
	// one hop.
	res := Broadcast(topology.NewHypercube(5), 0)
	if res.Sum != res.Count {
		t.Fatalf("hypercube broadcast not all unit hops: %+v", res)
	}
}

func TestBroadcastRootInvariantOnRing(t *testing.T) {
	// Ring distances depend only on rank differences, so rotating the
	// root leaves the broadcast accumulator unchanged.
	topo := topology.NewRing(16)
	base := Broadcast(topo, 0)
	for _, root := range []int{1, 5, 15} {
		if got := Broadcast(topo, root); got != base {
			t.Errorf("root %d: %+v != %+v", root, got, base)
		}
	}
}

func TestReduceEqualsBroadcast(t *testing.T) {
	topo := topology.NewRing(9)
	if Reduce(topo, 3) != Broadcast(topo, 3) {
		t.Error("reduce != broadcast")
	}
}

func TestAllToAll(t *testing.T) {
	topo := topology.NewRing(6)
	res := AllToAll(topo)
	if res.Count != 30 {
		t.Fatalf("events = %d, want 30", res.Count)
	}
	// Ring of 6: distances from any node sum to 1+2+3+2+1 = 9; total
	// 6*9 = 54.
	if res.Sum != 54 {
		t.Fatalf("sum = %d, want 54", res.Sum)
	}
}

func TestParallelPrefixEventCount(t *testing.T) {
	// Hillis-Steele on p=8: rounds have 7+6+4 = 17 receives.
	res := ParallelPrefix(topology.NewBus(8))
	if res.Count != 17 {
		t.Fatalf("events = %d, want 17", res.Count)
	}
	// On a bus the stride-s round costs s per receive:
	// 7*1 + 6*2 + 4*4 = 35.
	if res.Sum != 35 {
		t.Fatalf("sum = %d, want 35", res.Sum)
	}
}

func TestRingExchange(t *testing.T) {
	res := RingExchange(topology.NewRing(10))
	if res.Count != 10 || res.Sum != 10 {
		t.Fatalf("ring exchange on ring = %+v, want all unit hops", res)
	}
	// On a bus the wrap message costs p-1.
	res = RingExchange(topology.NewBus(10))
	if res.Count != 10 || res.Sum != 9+9 {
		t.Fatalf("ring exchange on bus = %+v", res)
	}
}

func TestQuadTreeGatherEventCount(t *testing.T) {
	// p=16: level 1 has 4 groups * 3 children, level 2 has 1 group * 3.
	res := QuadTreeGather(topology.NewBus(16))
	if res.Count != 15 {
		t.Fatalf("events = %d, want 15", res.Count)
	}
	// p=1: nothing to gather.
	if res := QuadTreeGather(topology.NewBus(1)); res.Count != 0 {
		t.Fatalf("p=1 gather = %+v", res)
	}
	// Ragged p=6: level 1 groups {0..3} (3 children) and {4,5}
	// (1 child), level 2 group {0,4} (1 child): 5 events.
	res = QuadTreeGather(topology.NewBus(6))
	if res.Count != 5 {
		t.Fatalf("ragged events = %d, want 5", res.Count)
	}
}

func TestHilbertPlacementImprovesPrimitivesOnMesh(t *testing.T) {
	// Rank-adjacent communication dominates these primitives, so a
	// locality-preserving placement must beat row-major on the mesh for
	// the ring exchange.
	h := RingExchange(topology.NewMesh(3, sfc.Hilbert))
	r := RingExchange(topology.NewMesh(3, sfc.RowMajor))
	if h.Sum >= r.Sum {
		t.Errorf("hilbert ring sum %d >= rowmajor %d", h.Sum, r.Sum)
	}
}

func TestPatternsRunAll(t *testing.T) {
	topo := topology.NewTorus(2, sfc.Hilbert)
	for _, p := range Patterns() {
		res := p.Run(topo)
		if res.Count == 0 {
			t.Errorf("pattern %s produced no events", p.Name)
		}
	}
	if len(Patterns()) != 5 {
		t.Errorf("expected 5 patterns")
	}
}
