// Package geom3 extends the library's geometric vocabulary to three
// dimensions, supporting the paper's future-work item (ii): validating
// the communication trends of the ACD metric in 3D. A spatial
// resolution of order k is the cube of side 2^k.
package geom3

import (
	"fmt"

	"sfcacd/internal/geom"
)

// Point3 is a cell coordinate on the 3D resolution grid.
type Point3 struct {
	X, Y, Z uint32
}

// Pt3 constructs a Point3.
func Pt3(x, y, z uint32) Point3 { return Point3{X: x, Y: y, Z: z} }

// String renders the point as "(x,y,z)".
func (p Point3) String() string { return fmt.Sprintf("(%d,%d,%d)", p.X, p.Y, p.Z) }

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// Manhattan returns the L1 distance.
func Manhattan(a, b Point3) int {
	return int(absDiff(a.X, b.X)) + int(absDiff(a.Y, b.Y)) + int(absDiff(a.Z, b.Z))
}

// Chebyshev returns the L∞ distance; the radius-1 ball is the 26
// face/edge/corner neighbors of the FMM near field in 3D.
func Chebyshev(a, b Point3) int {
	d := absDiff(a.X, b.X)
	if dy := absDiff(a.Y, b.Y); dy > d {
		d = dy
	}
	if dz := absDiff(a.Z, b.Z); dz > d {
		d = dz
	}
	return int(d)
}

// Dist returns the metric's 3D distance.
func Dist(m geom.Metric, a, b Point3) int {
	if m == geom.MetricManhattan {
		return Manhattan(a, b)
	}
	return Chebyshev(a, b)
}

// Side returns the cube side 2^k.
func Side(order uint) uint32 {
	if order > 20 {
		panic(fmt.Sprintf("geom3: resolution order %d exceeds 20", order))
	}
	return uint32(1) << order
}

// Cells returns the cell count 8^k.
func Cells(order uint) uint64 {
	s := uint64(Side(order))
	return s * s * s
}

// CellID flattens a point to a dense cell identifier.
func CellID(p Point3, side uint32) uint64 {
	return (uint64(p.Z)*uint64(side)+uint64(p.Y))*uint64(side) + uint64(p.X)
}

// PointOfCellID inverts CellID.
func PointOfCellID(id uint64, side uint32) Point3 {
	s := uint64(side)
	return Point3{
		X: uint32(id % s),
		Y: uint32(id / s % s),
		Z: uint32(id / (s * s)),
	}
}

// InBounds reports whether signed coordinates lie on the grid.
func InBounds(x, y, z int, side uint32) bool {
	return x >= 0 && y >= 0 && z >= 0 && x < int(side) && y < int(side) && z < int(side)
}

// VisitNeighborhood calls fn for every grid point q != p with
// Dist(m, p, q) <= r, staying inside the cube.
func VisitNeighborhood(p Point3, r int, m geom.Metric, side uint32, fn func(q Point3)) {
	if r <= 0 {
		return
	}
	for dz := -r; dz <= r; dz++ {
		z := int(p.Z) + dz
		if z < 0 || z >= int(side) {
			continue
		}
		rem := r
		if m == geom.MetricManhattan {
			rem = r - abs(dz)
		}
		for dy := -rem; dy <= rem; dy++ {
			y := int(p.Y) + dy
			if y < 0 || y >= int(side) {
				continue
			}
			span := rem
			if m == geom.MetricManhattan {
				span = rem - abs(dy)
			}
			for dx := -span; dx <= span; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				x := int(p.X) + dx
				if x < 0 || x >= int(side) {
					continue
				}
				fn(Point3{X: uint32(x), Y: uint32(y), Z: uint32(z)})
			}
		}
	}
}

// NeighborhoodSize returns |{q != p : d(p,q) <= r}| on an unbounded 3D
// grid.
func NeighborhoodSize(r int, m geom.Metric) int {
	if r <= 0 {
		return 0
	}
	if m == geom.MetricChebyshev {
		side := 2*r + 1
		return side*side*side - 1
	}
	// Octahedral numbers: |B1(r)| = (2r^3 + 3r^2 + 4r)/3 * ... compute
	// directly by summing layers to stay obviously correct.
	n := 0
	for dz := -r; dz <= r; dz++ {
		rem := r - abs(dz)
		// 2D Manhattan ball of radius rem, including center.
		n += 2*rem*rem + 2*rem + 1
	}
	return n - 1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
