package resultcache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"sfcacd/internal/obs"
)

// testEntry builds an entry whose accounted size is exactly
// entryOverhead + payload bytes (experiment name left empty, result
// padded to the requested payload size).
func testEntry(id byte, payload int) Entry {
	e := Entry{
		Key:    Key{0: id},
		Result: json.RawMessage(bytes.Repeat([]byte("x"), payload)),
	}
	return e
}

func TestKeyForStable(t *testing.T) {
	k := KeyFor("table12", "params/v1:n=15625,k=8,po=6,r=1,t=3,s=2013", "sfcacd/results/v1")
	// Pinned: the content address is the on-disk file name; changing the
	// hash construction silently orphans every stored entry.
	const want = "69a680ad14d76850f2b8e145e25ca2b1019b1cf68f84eca8980409a68c500471"
	if got := k.String(); got != want {
		t.Errorf("KeyFor = %s, want %s", got, want)
	}
	if k2 := KeyFor("table12", "params/v1:n=15625,k=8,po=6,r=1,t=3,s=2013", "sfcacd/results/v1"); k2 != k {
		t.Error("KeyFor is not deterministic")
	}
}

func TestKeyForFraming(t *testing.T) {
	// Length framing: moving a byte across a part boundary must change
	// the key even though the concatenation is identical.
	a := KeyFor("ab", "c", "v")
	b := KeyFor("a", "bc", "v")
	c := KeyFor("a", "b", "cv")
	if a == b || b == c || a == c {
		t.Errorf("part-boundary shifts collided: %s %s %s", a, b, c)
	}
	if KeyFor("x", "y", "v1") == KeyFor("x", "y", "v2") {
		t.Error("schema version does not participate in the key")
	}
}

func TestCacheGetPut(t *testing.T) {
	c := New(1 << 20)
	key := Key{0: 1}
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	e := Entry{Key: key, Experiment: "table12",
		Params: json.RawMessage(`{"n":1}`), Result: json.RawMessage(`[1,2]`)}
	c.Put(e)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Experiment != e.Experiment || !bytes.Equal(got.Params, e.Params) || !bytes.Equal(got.Result, e.Result) {
		t.Errorf("Get = %+v, want %+v", got, e)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if want := e.size(); c.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", c.Bytes(), want)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// Room for exactly two 100-byte-payload entries.
	c := New(2 * (entryOverhead + 100))
	before := obs.GetCounter("resultcache.evictions").Value()
	c.Put(testEntry(1, 100))
	c.Put(testEntry(2, 100))
	c.Get(Key{0: 1}) // touch 1: now 2 is least recently used
	c.Put(testEntry(3, 100))
	if _, ok := c.Get(Key{0: 2}); ok {
		t.Error("least-recently-used entry 2 survived eviction")
	}
	for _, id := range []byte{1, 3} {
		if _, ok := c.Get(Key{0: id}); !ok {
			t.Errorf("entry %d was evicted, want kept", id)
		}
	}
	if got := obs.GetCounter("resultcache.evictions").Value() - before; got != 1 {
		t.Errorf("evictions counter delta = %d, want 1", got)
	}
	if c.Bytes() > 2*(entryOverhead+100) {
		t.Errorf("Bytes = %d over budget", c.Bytes())
	}
}

func TestCacheRefreshSameKey(t *testing.T) {
	c := New(1 << 20)
	c.Put(testEntry(1, 100))
	c.Put(testEntry(1, 300))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after refresh, want 1", c.Len())
	}
	if want := testEntry(1, 300).size(); c.Bytes() != want {
		t.Errorf("Bytes = %d after refresh, want %d (accounting must track the new size)", c.Bytes(), want)
	}
	got, _ := c.Get(Key{0: 1})
	if len(got.Result) != 300 {
		t.Errorf("refreshed entry has %d result bytes, want 300", len(got.Result))
	}
}

func TestCacheDropsOversized(t *testing.T) {
	c := New(entryOverhead + 100)
	c.Put(testEntry(1, 50))
	c.Put(testEntry(2, 10_000)) // larger than the whole budget
	if _, ok := c.Get(Key{0: 2}); ok {
		t.Error("oversized entry was stored")
	}
	if _, ok := c.Get(Key{0: 1}); !ok {
		t.Error("oversized Put evicted the resident entry")
	}
}

func TestCacheZeroBudgetDisabled(t *testing.T) {
	c := New(0)
	c.Put(testEntry(1, 10))
	if _, ok := c.Get(Key{0: 1}); ok {
		t.Error("zero-budget cache stored an entry")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("zero-budget cache Len=%d Bytes=%d, want 0/0", c.Len(), c.Bytes())
	}
}

func TestCacheCounters(t *testing.T) {
	hits := obs.GetCounter("resultcache.hits")
	misses := obs.GetCounter("resultcache.misses")
	h0, m0 := hits.Value(), misses.Value()
	c := New(1 << 20)
	c.Get(Key{0: 9})
	c.Put(testEntry(9, 10))
	c.Get(Key{0: 9})
	if got := hits.Value() - h0; got != 1 {
		t.Errorf("hits delta = %d, want 1", got)
	}
	if got := misses.Value() - m0; got != 1 {
		t.Errorf("misses delta = %d, want 1", got)
	}
}

func TestKeyJSONRoundTrip(t *testing.T) {
	k := KeyFor("fig6", "params", "v1")
	data, err := json.Marshal(k)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%q", k.String()); string(data) != want {
		t.Errorf("MarshalJSON = %s, want %s", data, want)
	}
	var back Key
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Errorf("round trip changed the key: %s -> %s", k, back)
	}
	if err := json.Unmarshal([]byte(`"zz"`), &back); err == nil {
		t.Error("bad hex unmarshaled without error")
	}
}
