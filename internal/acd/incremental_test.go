package acd

import (
	"testing"

	"sfcacd/internal/geom"
	"sfcacd/internal/partition"
	"sfcacd/internal/rng"
	"sfcacd/internal/sfc"
)

// TestDeltaOwnersMatchesChunkOf checks the range-walk against the
// per-particle ChunkOf definition across sizes, rank counts, and churn.
func TestDeltaOwnersMatchesChunkOf(t *testing.T) {
	r := rng.New(42)
	for _, n := range []int{1, 7, 100, 5000} {
		for _, p := range []int{1, 3, 16, 64} {
			if p > n {
				continue
			}
			// owners as of "last tick": correct for a random permutation.
			lastPerm := make([]int, n)
			r.Perm(lastPerm)
			owners := make([]int32, n)
			for i, id := range lastPerm {
				owners[id] = int32(partition.ChunkOf(i, n, p))
			}
			// This tick's permutation: swap a few entries.
			perm := append([]int(nil), lastPerm...)
			for s := 0; s < n/10+1; s++ {
				i, j := r.Intn(n), r.Intn(n)
				perm[i], perm[j] = perm[j], perm[i]
			}
			got := DeltaOwners(perm, owners, p, nil)
			want := 0
			for i, id := range perm {
				nu := int32(partition.ChunkOf(i, n, p))
				if owners[id] != nu {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("n=%d p=%d: %d deltas, want %d", n, p, len(got), want)
			}
			for _, d := range got {
				if owners[d.ID] != d.Old {
					t.Fatalf("n=%d p=%d: delta for %d has Old=%d, owners say %d", n, p, d.ID, d.Old, owners[d.ID])
				}
				if d.Old == d.New {
					t.Fatalf("n=%d p=%d: no-op delta for %d", n, p, d.ID)
				}
			}
		}
	}
}

// TestDeltaOwnersNoChurn pins the fast path: matching owners produce
// no deltas and no allocation beyond the passed slice.
func TestDeltaOwnersNoChurn(t *testing.T) {
	n, p := 1000, 8
	perm := make([]int, n)
	owners := make([]int32, n)
	for i := range perm {
		perm[i] = i
		owners[i] = int32(partition.ChunkOf(i, n, p))
	}
	if got := DeltaOwners(perm, owners, p, nil); len(got) != 0 {
		t.Fatalf("stable permutation produced %d deltas", len(got))
	}
}

// TestRepartitionPolicyHysteresis pins the two-threshold loop: engage
// at Hi, hold through the band, release below Lo.
func TestRepartitionPolicyHysteresis(t *testing.T) {
	rp := RepartitionPolicy{Hi: 0.25, Lo: 0.10}
	seq := []struct {
		gauge float64
		want  bool
	}{
		{0.05, false},
		{0.20, false}, // below Hi: stays off
		{0.25, true},  // reaches Hi: engages
		{0.15, true},  // in the band: holds
		{0.10, true},  // Lo is exclusive: still holds
		{0.09, false}, // below Lo: releases
		{0.20, false}, // band entered from below: stays off
		{0.30, true},
	}
	for i, s := range seq {
		if got := rp.Decide(s.gauge); got != s.want {
			t.Fatalf("step %d (gauge %.2f): Decide = %v, want %v", i, s.gauge, got, s.want)
		}
	}
}

// TestFromSortedMatchesAssign feeds FromSorted the particles Assign
// sorted and requires identical assignments (particles, ranks, and
// rank lookups).
func TestFromSortedMatchesAssign(t *testing.T) {
	curve, err := sfc.ByName("hilbert")
	if err != nil {
		t.Fatal(err)
	}
	const order, p = 5, 7
	r := rng.New(9)
	side := geom.Side(order)
	seen := make(map[uint64]bool)
	var pts []geom.Point
	for len(pts) < 200 {
		pt := geom.Point{X: r.Uint32n(side), Y: r.Uint32n(side)}
		if id := geom.CellID(pt, side); !seen[id] {
			seen[id] = true
			pts = append(pts, pt)
		}
	}
	want, err := Assign(pts, curve, order, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromSorted(want.Particles, order, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Particles {
		if got.Particles[i] != want.Particles[i] || got.Ranks[i] != want.Ranks[i] {
			t.Fatalf("position %d: got (%v, %d), want (%v, %d)",
				i, got.Particles[i], got.Ranks[i], want.Particles[i], want.Ranks[i])
		}
	}
	for _, pt := range pts {
		if g, w := got.RankAt(pt), want.RankAt(pt); g != w {
			t.Fatalf("RankAt(%v): got %d, want %d", pt, g, w)
		}
	}
}

// TestFromSortedRejectsBadInput covers the argument checks.
func TestFromSortedRejectsBadInput(t *testing.T) {
	if _, err := FromSorted([]geom.Point{{X: 0, Y: 0}}, 3, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := FromSorted(nil, 3, 2); err == nil {
		t.Fatal("empty particles accepted")
	}
}
